#!/usr/bin/env bash
# Differential corpus judge for the fault-metric engine.
#
# Replays the SHA-pinned golden corpus (tests/test_corpus.cpp): full
# metric sweeps over every ITC'02 SoC (original + fault-tolerant) and the
# fixed-seed random RSNs, digested to SHA-256 and compared against
# tests/data/corpus/manifest.sha256.  Packed 64-lane digests must agree
# at 1/2/8 threads and match the pin; the cheap networks are additionally
# cross-checked against the scalar engine on every replay.
#
# Usage:
#   tools/judge.sh [build-dir]        replay the pinned corpus (default
#                                     build dir: build)
#   FTRSN_REGOLD=1 tools/judge.sh     regenerate the manifest (every
#                                     network is scalar cross-checked
#                                     before its digest is pinned)
#   FTRSN_CORPUS_SOCS=u226,d695 ...   subset replay (sanitizer runs)
#   FTRSN_CORPUS_SCALAR=1 ...         scalar cross-check on every network
#   FTRSN_SIMD=scalar|unrolled|...    pin the SIMD kernel under judgment
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

run() { echo "+ $*" >&2; "$@"; }

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  run cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
run cmake --build "$BUILD" -j "$JOBS" --target ftrsn_corpus_tests
run "$BUILD/tests/ftrsn_corpus_tests"

if [ "${FTRSN_REGOLD:-0}" = "1" ]; then
  echo "judge: manifest regenerated -> tests/data/corpus/manifest.sha256" >&2
  echo "judge: review and commit the diff" >&2
else
  echo "judge: corpus digests match the pinned manifest" >&2
fi
