#!/usr/bin/env bash
# CI driver for the ftrsn repository:
#   1. regular build + full test suite, then the SHA-pinned differential
#      corpus judge (tools/judge.sh: packed 64-lane sweeps of every
#      ITC'02 SoC digested and compared against
#      tests/data/corpus/manifest.sha256);
#   2. ASan+UBSan build + full test suite, then deeper soaks of the
#      oracle differential suite (ctest -L oracle, scaled by
#      FTRSN_ORACLE_ITERS), of the fault-metric engine equivalence
#      suite — including the packed lane-boundary and SIMD-kernel tests —
#      (ctest -L metric, scaled by FTRSN_METRIC_ITERS) and of the
#      SSP-vs-cost-scaling min-cost-flow differential suite (ctest -L ilp,
#      scaled by FTRSN_ILP_ITERS) under the sanitizers, plus a small-SoC
#      corpus replay with the scalar cross-check forced on every network;
#   3. TSan build (FTRSN_SANITIZE=thread) of the metric engine suite
#      (packed batches included), the batch runner suite and the serve
#      suite — the places the library spawns threads (the batch suite
#      exercises nested parallel_for scheduling, the serve suite the
#      single-flight cache handoff and the socket transport);
#   4. bench smokes: BENCH_fault_metric.json and BENCH_batch_flow.json
#      must be emitted with the expected schemas and bit-identical
#      aggregates; on hosts with >= 8 hardware threads the intra-network
#      and batch speedups are asserted too (skipped on small runners,
#      where wall-clock scaling is physically impossible);
#   4b. serve smoke: bench_serve under a reduced request storm must emit a
#      schema-valid BENCH_serve.json whose hardware-independent gates hold
#      (cache hit rate > 0.5, single-flight coalescing observed, LRU
#      evictions under the tiny budget, warm results byte-identical to a
#      cold service) — the same gates are re-checked on the checked-in
#      envelope; then a real daemon (`rsn_tool serve`) is driven through a
#      scripted tools/serve_client.py session that counter-asserts cache
#      hits and byte-identical repeated answers over the socket, ending in
#      a clean client-initiated shutdown;
#   4c. augment-scaling smoke: bench_augment_scaling on small synthetic
#      instances must emit a schema-valid envelope where both flow engines
#      agree on every objective and the hardware-independent work ratio
#      (SSP Dijkstra arc scans / cost-scaling pushes+relabels) clears 3x
#      on the largest common instance — the counters are deterministic,
#      so this gate is meaningful on any runner;
#   5. rsn-lint over generated and synthesized example networks
#      (must report zero error-severity findings, exit status 0), plus
#      JSON and SARIF emitter checks;
#   5b. fix-engine smoke: a deliberately broken network must repair to a
#      clean fixpoint via `rsn-lint --fix`, `--fix-dry-run` must leave the
#      input byte-identical, and the SARIF emitted in fix mode must carry
#      schema-valid `fix` records (deleted regions / inserted content);
#      the randomized differential soak (ctest -L lint, scaled by
#      FTRSN_FIX_ITERS) also reruns under ASan+UBSan in step 2;
#   6. obs smoke: a traced `rsn_tool flow` run on u226 must emit a valid
#      Chrome trace-event JSON and a schema-versioned run report (v2:
#      latency histograms with monotone quantiles and exact bucket totals,
#      span-attributed memory deltas) whose stage times are consistent
#      with the reported wall time;
#   6b. obs regression gate (hardware-independent): a fresh traced p34392
#      flow is diffed against the checked-in baseline report with
#      `rsn-obs diff` over counter-exact gates (metric.mask_evals,
#      ilp.flow_*, lint.*, ...) — the counters are deterministic at any
#      thread count, so any drift is an algorithm change, not noise; the
#      gate is also proven to bite (a perturbed counter must fail), and
#      two identical-seed `rsn_tool batch` runs must diff clean, merged
#      and per-network reports alike;
#   7. clang-tidy over src/ when available (advisory unless
#      FTRSN_REQUIRE_CLANG_TIDY=1, which fails if the tool is missing and
#      turns bugprone-*/performance-* findings into hard errors).
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"

run() { echo "+ $*" >&2; "$@"; }

# --- 1. regular build + tests ----------------------------------------------
run cmake -B "$PREFIX" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
run cmake --build "$PREFIX" -j "$JOBS"
run ctest --test-dir "$PREFIX" --output-on-failure

# Differential corpus judge: every pinned network replayed through the
# packed engine at 1/2/8 threads; any digest drift fails CI with the
# network name.
run tools/judge.sh "$PREFIX"

# --- 2. sanitizer build + tests --------------------------------------------
run cmake -B "$PREFIX-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFTRSN_SANITIZE=address,undefined
run cmake --build "$PREFIX-asan" -j "$JOBS"
run ctest --test-dir "$PREFIX-asan" --output-on-failure

# Deeper soak of the SAT-vs-tristate / incremental-vs-from-scratch
# differential properties under the sanitizers: any disagreement or memory
# error fails CI.
FTRSN_ORACLE_ITERS="${FTRSN_ORACLE_ITERS:-300}" \
  run ctest --test-dir "$PREFIX-asan" --output-on-failure -L oracle

# Engine-vs-legacy metric equivalence under ASan+UBSan: bit-identical
# aggregates and distributions at 1/2/8 threads, sampled ITC'02 + random
# networks scaled by FTRSN_METRIC_ITERS.
FTRSN_METRIC_ITERS="${FTRSN_METRIC_ITERS:-1}" \
  run ctest --test-dir "$PREFIX-asan" --output-on-failure -L metric

# Min-cost-flow differential soak under ASan+UBSan: randomized networks,
# degree-cover instances and every ITC'02 SoC solved by both the SSP
# oracle and the cost-scaling engine (all heuristic variants) must agree
# on objective and feasibility.  Scaled by FTRSN_ILP_ITERS.
FTRSN_ILP_ITERS="${FTRSN_ILP_ITERS:-10}" \
  run ctest --test-dir "$PREFIX-asan" --output-on-failure -L ilp

# Fix-engine soak under ASan+UBSan: the randomized differential trials
# (inject defects -> repair -> SAT + fault-metric cross-check) are where
# the rewrite machinery allocates and rewires most aggressively, so any
# lifetime bug surfaces here.  Scaled by FTRSN_FIX_ITERS.
FTRSN_FIX_ITERS="${FTRSN_FIX_ITERS:-8}" \
  run ctest --test-dir "$PREFIX-asan" --output-on-failure -L lint

# Corpus replay under ASan+UBSan on the small SoCs, with the
# packed-vs-scalar cross-check forced on every replayed network: the
# packed rebase/overlay machinery indexes lane words by slot and snapshot,
# so any out-of-bounds or uninitialised read surfaces here.
FTRSN_CORPUS_SOCS=u226,d695,rand0,rand1,rand2 FTRSN_CORPUS_SCALAR=1 \
  run ctest --test-dir "$PREFIX-asan" --output-on-failure -L corpus

# Obs suite under ASan+UBSan (explicitly, beyond the full-suite run
# above): the scoped-context registry, chunked counter/histogram cell
# tables and the diff engine's JSON reader are where the observability
# layer allocates and merges across threads.
run ctest --test-dir "$PREFIX-asan" --output-on-failure -L obs

# Serve suite under ASan+UBSan (explicitly, beyond the full-suite run
# above): the result cache's single-flight handoff, the engine-thread
# teardown and the per-connection socket readers are the lifetime-heavy
# paths of the daemon.
run ctest --test-dir "$PREFIX-asan" --output-on-failure -L serve

# --- 3. TSan build of the threaded metric engine + batch runner ------------
run cmake -B "$PREFIX-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFTRSN_SANITIZE=thread
run cmake --build "$PREFIX-tsan" -j "$JOBS" \
    --target ftrsn_metric_tests ftrsn_batch_tests ftrsn_obs_tests \
             ftrsn_serve_tests
FTRSN_METRIC_ITERS="${FTRSN_METRIC_ITERS:-1}" \
  run ctest --test-dir "$PREFIX-tsan" --output-on-failure -L metric
# One small SoC keeps the end-to-end sweep fast under TSan; the nested
# scheduling tests dominate the signal anyway.
FTRSN_BATCH_SOCS="${FTRSN_BATCH_SOCS:-u226}" \
  run ctest --test-dir "$PREFIX-tsan" --output-on-failure -L batch
# Histogram concurrency and pool context propagation under TSan: the
# relaxed-atomic bucket recording and the cross-thread context attach are
# the lock-free paths of the obs layer (bucket totals are asserted
# exactly, so a lost update is a failure even without a TSan report).
run ctest --test-dir "$PREFIX-tsan" --output-on-failure -L obs \
    -R 'ObsHist|ObsContextScoping'
# Serve suite under TSan: transport threads, the engine thread and the
# pool workers all meet on the cache's flight mutex and the coalescing
# cv handoff; the counter-asserted tests make a lost wakeup or a data
# race a deterministic failure, and TSan names the race when one exists.
run ctest --test-dir "$PREFIX-tsan" --output-on-failure -L serve

# --- 4. fault-metric bench smoke -------------------------------------------
# Small SoC, legacy baseline on: the emitted JSON must parse, carry the
# expected schema, and report aggregates_identical on every run.
BENCH_JSON="$PREFIX/BENCH_fault_metric.smoke.json"
FTRSN_SOCS=u226 FTRSN_BENCH_OUT="$BENCH_JSON" \
  run "$PREFIX/bench/bench_fault_metric"
if command -v python3 >/dev/null 2>&1; then
  run python3 - "$BENCH_JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["bench"] == "fault_metric", "bench tag"
nets = doc["networks"]
assert nets, "no networks"
for net in nets:
    for key in ("soc", "network", "nodes", "faults", "classes",
                "collapse_ratio", "legacy_seconds", "scalar_seconds",
                "scalar_mask_evals", "scalar_identical", "mask_evals_ratio",
                "runs", "thread_scaling_8v1"):
        assert key in net, f"missing {key}"
    assert net["faults"] >= net["classes"] > 0, "collapse counts"
    assert [r["threads"] for r in net["runs"]] == [1, 2, 8], "thread sweep"
    for r in net["runs"]:
        assert r["seconds"] >= 0 and r["faults_per_second"] > 0, "throughput"
        assert r["aggregates_identical"] is True, \
            f"engine/legacy mismatch on {net['soc']}-{net['network']}"
        # Packed lane accounting is hardware-independent: every mask eval
        # is a packed word eval, occupancy is a real fraction, and a SIMD
        # kernel was dispatched.
        assert r["packed_words"] == r["mask_evals"] > 0, "packed words"
        assert 0.0 < r["lane_utilization"] <= 1.0, "lane utilization"
        assert r["simd_kernel"], "no simd kernel recorded"
    # The bit-parallel lever itself (also hardware-independent): the packed
    # engine must do several-fold fewer mask evals than the scalar engine
    # on the same network — the counts are deterministic, so a regression
    # here means the lane packing stopped paying, not noise.
    assert net["scalar_identical"] is True, \
        f"packed/scalar mismatch on {net['soc']}-{net['network']}"
    assert net["mask_evals_ratio"] > 3.0, \
        f"bit-parallel lever regressed on {net['soc']}: {net['mask_evals_ratio']}"
# Intra-network scaling: the fault-class loop of the largest FT network
# must speed up meaningfully 8-vs-1.  Only meaningful with real cores —
# on small runners the ratio is pinned near 1.0 by hardware.
if doc["hardware_threads"] >= 8:
    big = max((n for n in nets if n["network"] == "ft"),
              key=lambda n: n["classes"])
    assert big["thread_scaling_8v1"] > 1.5, \
        f"flat scaling on {big['soc']}: {big['thread_scaling_8v1']}"
print("bench schema ok:", sys.argv[1])
EOF
else
  grep -q '"bench": "fault_metric"' "$BENCH_JSON"
  if grep -q '"aggregates_identical": false' "$BENCH_JSON"; then
    echo "bench smoke: aggregates mismatch" >&2; exit 1
  fi
  if grep -q '"scalar_identical": false' "$BENCH_JSON"; then
    echo "bench smoke: packed/scalar mismatch" >&2; exit 1
  fi
fi

# Batch flow runner smoke: the sharded sweep must reproduce the serial
# sweep bit for bit at every thread count.  Two small SoCs keep it quick.
BATCH_JSON="$PREFIX/BENCH_batch_flow.smoke.json"
FTRSN_SOCS=u226,d281 FTRSN_BENCH_OUT="$BATCH_JSON" \
  run "$PREFIX/bench/bench_batch_flow"
if command -v python3 >/dev/null 2>&1; then
  run python3 - "$BATCH_JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["bench"] == "batch_flow", "bench tag"
assert doc["serial_seconds"] > 0, "serial baseline"
assert doc["socs"], "no socs"
runs = doc["runs"]
assert [r["threads"] for r in runs] == [1, 2, 8], "thread sweep"
for r in runs:
    assert r["seconds"] > 0, "run time"
    assert r["aggregates_identical"] is True, \
        f"batch/serial mismatch at {r['threads']} threads"
    socs = {s["soc"] for s in r["socs"] if s["identical"]}
    assert socs == set(doc["socs"]), f"per-soc mismatch at {r['threads']}"
# Wall-clock scaling needs real cores; on small runners the sharded run
# only measures scheduling overhead, so the speedup gate is skipped.
if doc["hardware_threads"] >= 8:
    assert runs[-1]["speedup"] > 1.5, f"no batch speedup: {runs[-1]}"
print("batch bench schema ok:", sys.argv[1])
EOF
else
  grep -q '"bench": "batch_flow"' "$BATCH_JSON"
  if grep -q '"identical": false' "$BATCH_JSON"; then
    echo "batch bench smoke: aggregates mismatch" >&2; exit 1
  fi
fi

# --- 4b. serve bench smoke + daemon smoke -----------------------------------
# A reduced storm keeps the smoke quick; every asserted gate is
# hardware-independent (cache counters and byte comparisons), so this is
# meaningful on any runner.  The same validation then runs over the
# checked-in BENCH_serve.json so the committed envelope can never drift
# out of contract silently.
SERVE_WORK="$PREFIX/serve-smoke"
mkdir -p "$SERVE_WORK"
SERVE_JSON="$PREFIX/BENCH_serve.smoke.json"
FTRSN_SERVE_REQUESTS=300 FTRSN_BENCH_OUT="$SERVE_JSON" \
  run "$PREFIX/bench/bench_serve"
if command -v python3 >/dev/null 2>&1; then
  run python3 - "$SERVE_JSON" BENCH_serve.json <<'EOF'
import json, sys
for path in sys.argv[1:]:
    doc = json.load(open(path))
    assert doc["schema"] == "ftrsn-bench-1", "schema tag"
    assert doc["bench"] == "serve", "bench tag"
    storm = doc["storm"]
    assert storm["hits"] + storm["misses"] > 0, "empty storm"
    assert storm["hit_rate"] > 0.5, f"hit rate too low: {storm['hit_rate']}"
    assert 0 <= storm["p50_us"] <= storm["p99_us"] <= storm["max_us"], \
        "latency percentiles not monotone"
    assert doc["coalesce"]["coalesced"] > 0, "no single-flight coalescing"
    assert doc["eviction"]["evictions"] > 0, "tiny budget evicted nothing"
    assert doc["repeat_identical"] is True, \
        "warm results not byte-identical to a cold service"
    counters = doc["obs_counters"]
    assert counters.get("serve.coalesced", 0) > 0, "serve.coalesced counter"
    assert counters.get("serve.cache_hits", 0) > storm["misses"], \
        "cache hits did not dominate"
    hist = doc["histograms"]["serve.request_us"]
    assert hist["count"] >= storm["hits"] + storm["misses"], \
        "request histogram undercounts"
    print("serve bench ok:", path,
          f"(hit rate {storm['hit_rate']:.3f}, "
          f"coalesced {doc['coalesce']['coalesced']})")
EOF

  # Daemon smoke: a real `rsn_tool serve` process on an ephemeral port,
  # driven through a scripted client session (tools/serve_client.py) that
  # counter-asserts cache hits and byte-identical repeated answers over
  # the socket, then shuts the daemon down cleanly from the client side.
  run "$PREFIX/examples/example_rsn_tool" gen u226 "$SERVE_WORK/u226.rsn" \
    >/dev/null
  SERVE_PORT_FILE="$SERVE_WORK/serve.port"
  rm -f "$SERVE_PORT_FILE"
  "$PREFIX/examples/example_rsn_tool" serve --port=0 \
    --port-file="$SERVE_PORT_FILE" > "$SERVE_WORK/serve.log" 2>&1 &
  SERVE_PID=$!
  if ! run python3 tools/serve_client.py --port-file="$SERVE_PORT_FILE" \
      --rsn="$SERVE_WORK/u226.rsn" --shutdown; then
    kill "$SERVE_PID" 2>/dev/null || true
    echo "serve smoke: client session failed; daemon log:" >&2
    cat "$SERVE_WORK/serve.log" >&2
    exit 1
  fi
  if ! wait "$SERVE_PID"; then
    echo "serve smoke: daemon exited non-zero; log:" >&2
    cat "$SERVE_WORK/serve.log" >&2
    exit 1
  fi
else
  grep -q '"bench": "serve"' "$SERVE_JSON"
  if grep -q '"repeat_identical": false' "$SERVE_JSON"; then
    echo "serve bench smoke: warm/cold mismatch" >&2; exit 1
  fi
fi

# --- 4c. augment-scaling bench smoke ----------------------------------------
# Small synthetic instances keep the smoke fast; the assertions are on
# deterministic work counters, not wall time, so they hold on any host.
SCALE_JSON="$PREFIX/BENCH_augment_scaling.smoke.json"
FTRSN_SCALE_TARGETS=800,2000 FTRSN_SCALE_SSP_MAX=2000 \
  FTRSN_BENCH_OUT="$SCALE_JSON" \
  run "$PREFIX/bench/bench_augment_scaling"
if command -v python3 >/dev/null 2>&1; then
  run python3 - "$SCALE_JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "ftrsn-bench-1", "schema tag"
assert doc["bench"] == "augment_scaling", "bench tag"
insts = doc["instances"]
assert insts, "no instances"
for inst in insts:
    for key in ("target", "elements", "replicas", "vertices", "candidates",
                "cost", "edges", "bb_nodes", "cs_seconds", "cs_pushes",
                "cs_relabels", "ssp_ran", "ssp_work", "work_ratio"):
        assert key in inst, f"missing {key}"
    assert inst["elements"] > 0 and inst["vertices"] > inst["elements"]
    assert inst["cost"] > 0 and inst["edges"] > 0, "no augmentation"
    assert inst["cs_pushes"] + inst["cs_relabels"] > 0, "engine did no work"
    if inst["ssp_ran"]:
        # The bench itself FTRSN_CHECKs cost equality; re-assert from the
        # payload so a silent format change cannot mask a drift.
        assert inst["cost_match"] is True, f"engine drift at {inst['target']}"
        assert inst["ssp_work"] > 0, "oracle did no work"
# Hardware-independent speedup lever: deterministic SSP work over
# deterministic cost-scaling work on the largest instance both ran.
assert doc["largest_common_elements"] > 0, "no common instance"
assert doc["work_ratio_largest_common"] > 3.0, \
    f"work ratio regressed: {doc['work_ratio_largest_common']}"
print("augment scaling bench ok:", sys.argv[1],
      f"(ratio {doc['work_ratio_largest_common']:.0f}x)")
EOF
else
  grep -q '"bench": "augment_scaling"' "$SCALE_JSON"
  if grep -q '"cost_match": false' "$SCALE_JSON"; then
    echo "augment scaling smoke: engine cost mismatch" >&2; exit 1
  fi
fi

# --- 5. rsn-lint over example networks -------------------------------------
TOOL="$PREFIX/examples/example_rsn_tool"
LINT="$PREFIX/examples/example_rsn_lint"
WORK="$PREFIX/lint-networks"
mkdir -p "$WORK"

for soc in g1023 d281 u226; do
  run "$TOOL" gen "$soc" "$WORK/$soc.rsn" >/dev/null
  run "$LINT" "$WORK/$soc.rsn"
done

# Synthesized fault-tolerant networks must also be clean, including under
# the post-synthesis fault-tolerance profile (--ft).
for soc in g1023 d281; do
  run "$TOOL" synth "$WORK/$soc.rsn" "$WORK/$soc-ft.rsn" >/dev/null
  run "$LINT" --ft --lint-stats "$WORK/$soc-ft.rsn"
done

# Backend equivalence on a synthesized network (its hardened select cones
# exceed the 10-atom auto threshold): the SAT and raised-threshold
# tristate backends must report identical findings.
run "$LINT" --json --ft --cone-backend=sat "$WORK/g1023-ft.rsn" \
  > "$WORK/g1023-ft.sat.json"
run "$LINT" --json --ft --cone-backend=tristate "$WORK/g1023-ft.rsn" \
  > "$WORK/g1023-ft.tri.json"
run diff "$WORK/g1023-ft.sat.json" "$WORK/g1023-ft.tri.json"

# The machine-readable emitters stay parseable.
run "$LINT" --json "$WORK/g1023.rsn" >/dev/null
run "$LINT" --sarif "$WORK/g1023.rsn" > "$WORK/g1023.sarif"
if command -v python3 >/dev/null 2>&1; then
  run python3 - "$WORK/g1023.sarif" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["version"] == "2.1.0", "sarif version"
assert doc["runs"][0]["tool"]["driver"]["name"] == "rsn-lint", "driver"
print("sarif ok:", sys.argv[1])
EOF
fi

# --- 5b. fix-engine smoke ---------------------------------------------------
# A small network with one of every fixable defect: an unused primary-in,
# a mux with identical inputs, a constant-address mux, and a dead segment.
BROKEN="$WORK/broken.rsn"
cat > "$BROKEN" <<'EOF'
rsn
decl_in SI
decl_in SI_unused
decl_seg A len=2 shadow=1 role=instr
decl_seg B len=1 shadow=0 role=instr
decl_seg DEAD len=1 shadow=0 role=instr
decl_mux M_ID
decl_mux M_CONST
decl_out SO
in SI
in SI_unused
seg A len=2 shadow=1 rep=1 reset=0 role=instr mod=0 lvl=1 in=SI sel=1 cap=0 upd=0
mux M_ID mod=0 lvl=1 in0=A in1=A addr=@A.0.0
seg B len=1 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=M_ID sel=1 cap=0 upd=0
mux M_CONST mod=0 lvl=1 in0=B in1=DEAD addr=0
seg DEAD len=1 shadow=0 rep=1 reset=0 role=instr mod=0 lvl=1 in=SI sel=1 cap=0 upd=0
out SO in=M_CONST
EOF
cp "$BROKEN" "$WORK/broken.orig.rsn"

# Dry-run must report the repairs without touching the input file.
run "$LINT" --fix-dry-run "$BROKEN"
run cmp "$BROKEN" "$WORK/broken.orig.rsn"

# SARIF in fix mode carries the original findings plus machine-applicable
# fix records; validate their shape.
run "$LINT" --fix-dry-run --sarif "$BROKEN" > "$WORK/broken.sarif"
run cmp "$BROKEN" "$WORK/broken.orig.rsn"
if command -v python3 >/dev/null 2>&1; then
  run python3 - "$WORK/broken.sarif" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["version"] == "2.1.0", "sarif version"
results = doc["runs"][0]["results"]
fixed = [r for r in results if r.get("fixes")]
assert fixed, "no fix records in fix-mode sarif"
edits = 0
for r in fixed:
    for fix in r["fixes"]:
        assert fix["description"]["text"], "fix description"
        for ch in fix["artifactChanges"]:
            assert "uri" in ch["artifactLocation"], "artifact uri"
            assert ch["replacements"], "empty replacements"
            for rep in ch["replacements"]:
                region = rep["deletedRegion"]
                for key in ("startLine", "startColumn", "endLine", "endColumn"):
                    assert key in region, f"missing {key}"
                assert region["endLine"] > region["startLine"], "empty region"
                edits += 1
assert edits >= 3, f"expected several fix edits, got {edits}"
print("sarif fix records ok:", sys.argv[1], f"({edits} edits)")
EOF
fi

# Applying the fixes must rewrite the file to a lint-clean fixpoint:
# rerunning --fix on the repaired network is a no-op and plain lint passes.
run "$LINT" --fix "$BROKEN"
if cmp -s "$BROKEN" "$WORK/broken.orig.rsn"; then
  echo "fix smoke: --fix left a broken network unchanged" >&2; exit 1
fi
cp "$BROKEN" "$WORK/broken.fixed.rsn"
run "$LINT" --fix "$BROKEN"
run cmp "$BROKEN" "$WORK/broken.fixed.rsn"
run "$LINT" "$BROKEN"

# The metric-differential verification tier must agree with the SAT tier
# on this fixture.
cp "$WORK/broken.orig.rsn" "$BROKEN"
run "$LINT" --fix --fix-verify=metric "$BROKEN"
run cmp "$BROKEN" "$WORK/broken.fixed.rsn"

# --- 6. obs smoke: traced flow run -----------------------------------------
# One end-to-end flow with tracing, reporting and a BMC spot-check: both
# emitted JSON documents must parse and respect their schemas, and the
# report's stage breakdown must stay consistent with its wall time.
OBS_TRACE="$WORK/u226_trace.json"
OBS_REPORT="$WORK/u226_report.json"
# --threads=2 forces a multi-threaded metric pool even on 1-CPU runners so
# the trace always carries worker lanes.
run "$TOOL" flow u226 --trace="$OBS_TRACE" --report="$OBS_REPORT" \
  --bmc-check=4 --threads=2 >/dev/null
if command -v python3 >/dev/null 2>&1; then
  run python3 - "$OBS_TRACE" "$OBS_REPORT" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
names = {e["name"] for e in events if e.get("ph") == "X"}
for stage in ("flow.parse", "flow.synth", "flow.metric.original",
              "flow.metric.hardened", "flow.bmc", "synth.augment",
              "bmc.check"):
    assert stage in names, f"missing trace span {stage}"
lanes = {e["tid"] for e in events if e.get("ph") == "X"}
assert len(lanes) > 1, "no worker lanes in trace"
for e in events:
    if e.get("ph") == "X":
        assert e["dur"] >= 0 and e["ts"] >= 0, "bad event timestamps"

report = json.load(open(sys.argv[2]))
assert report["schema"] == "ftrsn-run-report", "report schema"
assert report["version"] == 2, "report version"
wall = report["wall_seconds"]
stages = {s["name"]: s["seconds"] for s in report["stages"]}
for stage in ("flow.parse", "flow.synth", "flow.bmc"):
    assert stage in stages, f"missing report stage {stage}"
total = report["stages_total_seconds"]
# The flow spends essentially all its time inside instrumented stages, so
# the stage sum must agree with the wall time to within 10%.
assert wall * 0.90 <= total <= wall * 1.10, \
    f"stage sum {total} vs wall {wall}"
assert report["counters"].get("bmc.sat_calls", 0) > 0, "bmc counters"
assert report["counters"].get("metric.faults", 0) > 0, "metric counters"
assert report["machine"]["peak_rss_kb"] > 0, "peak rss"

# v2 additions: latency histograms (per span family plus the explicit
# hot-path ones) with exact bucket totals and monotone quantiles, and
# span-attributed memory accounting.
hists = {h["name"]: h for h in report["histograms"]}
for name in ("flow.synth", "metric.packed_batch_us", "ilp.solve_us"):
    assert name in hists, f"missing histogram {name}"
for name, h in hists.items():
    assert h["count"] > 0, f"empty histogram emitted: {name}"
    assert h["p50"] <= h["p90"] <= h["p99"] <= h["max"], \
        f"quantiles not monotone: {name}"
    assert sum(c for _, c in h["buckets"]) == h["count"], \
        f"bucket totals != count: {name}"
    for lo, c in h["buckets"]:
        assert lo >= 0 and c > 0, f"bad bucket in {name}"
mem = report["mem"]
assert mem["peak_rss_kb"] > 0 and mem["current_rss_kb"] > 0, "mem rss"
mem_spans = {s["name"]: s for s in mem["spans"]}
assert "flow.synth" in mem_spans, "missing mem attribution for flow.synth"
for s in mem_spans.values():
    assert s["count"] > 0, "mem span count"
    for key in ("rss_delta_kb", "rss_delta_max_kb", "peak_delta_kb"):
        assert key in s, f"missing {key}"  # deltas may legitimately be < 0
print("obs smoke ok:", sys.argv[1], sys.argv[2])
EOF
else
  grep -q '"traceEvents"' "$OBS_TRACE"
  grep -q '"schema": "ftrsn-run-report"' "$OBS_REPORT"
fi

# --- 6b. obs regression gate (rsn-obs diff) ---------------------------------
# The gate counters are deterministic algorithm counts — identical at any
# thread count and on any hardware — so they are compared exactly; timing
# (histogram quantiles, wall clock) is deliberately excluded.
RSNOBS="$PREFIX/examples/example_rsn_obs"
OBS_BASELINE="tests/data/obs_baseline_p34392.json"
OBS_GATES='metric.mask_evals,metric.classes,metric.faults'
OBS_GATES="$OBS_GATES,metric.packed_batches,metric.packed_words"
OBS_GATES="$OBS_GATES,ilp.flow_*,ilp.lp_solves,augment.*,lint.*"

OBS_FRESH="$WORK/p34392_report.json"
run "$TOOL" flow p34392 --report="$OBS_FRESH" --threads=2 >/dev/null
if ! run "$RSNOBS" diff "$OBS_BASELINE" "$OBS_FRESH" --counters="$OBS_GATES"
then
  echo "obs regression gate: gate counters drifted from $OBS_BASELINE" >&2
  echo "if the algorithm change is intentional, regenerate the baseline:" >&2
  echo "  $TOOL flow p34392 --report=$OBS_BASELINE --threads=2" >&2
  exit 1
fi

# The gate must bite: a perturbed counter fails the diff with exit 1.
OBS_PERT="$WORK/p34392_perturbed.json"
sed 's/"metric.mask_evals": \([0-9]*\)/"metric.mask_evals": 1\1/' \
  "$OBS_FRESH" > "$OBS_PERT"
if "$RSNOBS" diff "$OBS_BASELINE" "$OBS_PERT" --counters="$OBS_GATES" \
  > /dev/null
then
  echo "obs regression gate: perturbed metric.mask_evals not detected" >&2
  exit 1
fi

# Two identical batch runs must agree counter-exactly — on the merged
# parent report and on every per-network child report (each flow runs in
# its own obs context; the parent counters are the child sums).
BATCH_A="$WORK/batch_run_a.json"
BATCH_B="$WORK/batch_run_b.json"
run "$TOOL" batch u226,d281 --report="$BATCH_A" --threads=2 >/dev/null
run "$TOOL" batch u226,d281 --report="$BATCH_B" --threads=2 >/dev/null
run "$RSNOBS" diff "$BATCH_A" "$BATCH_B" --counters="$OBS_GATES"
for soc in u226 d281; do
  for f in "$WORK/batch_run_a.$soc.json" "$WORK/batch_run_b.$soc.json"; do
    if [ ! -s "$f" ]; then
      echo "obs regression gate: missing per-network report $f" >&2
      exit 1
    fi
  done
  run "$RSNOBS" diff "$WORK/batch_run_a.$soc.json" \
    "$WORK/batch_run_b.$soc.json" --counters="$OBS_GATES"
done

# rsn-obs top must rank the fresh report without error.
run "$RSNOBS" top "$OBS_FRESH" --limit=10 >/dev/null

# --- 7. clang-tidy ----------------------------------------------------------
# Advisory locally; the GitHub workflow sets FTRSN_REQUIRE_CLANG_TIDY=1,
# which makes a missing tool a hard failure and promotes the bugprone-*
# and performance-* families to errors (--warnings-as-errors widens the
# gate beyond the .clang-tidy WarningsAsErrors baseline).
if command -v clang-tidy >/dev/null 2>&1; then
  run cmake -B "$PREFIX" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  if [ "${FTRSN_REQUIRE_CLANG_TIDY:-0}" = "1" ]; then
    find src -name '*.cpp' -print0 |
      xargs -0 -n 8 -P "$JOBS" clang-tidy -p "$PREFIX" --quiet \
        --warnings-as-errors='bugprone-*,performance-*'
  else
    find src -name '*.cpp' -print0 |
      xargs -0 -n 8 -P "$JOBS" clang-tidy -p "$PREFIX" --quiet || true
  fi
elif [ "${FTRSN_REQUIRE_CLANG_TIDY:-0}" = "1" ]; then
  echo "clang-tidy required (FTRSN_REQUIRE_CLANG_TIDY=1) but not found" >&2
  exit 1
else
  echo "clang-tidy not found; skipping (advisory)" >&2
fi

echo "ci: all checks passed" >&2
