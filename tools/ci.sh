#!/usr/bin/env bash
# CI driver for the ftrsn repository:
#   1. regular build + full test suite;
#   2. ASan+UBSan build + full test suite, then a deeper soak of the
#      oracle differential suite (ctest -L oracle) under the sanitizers —
#      iteration counts scale with FTRSN_ORACLE_ITERS (percent, default
#      300 here);
#   3. rsn-lint over generated and synthesized example networks
#      (must report zero error-severity findings, exit status 0);
#   4. clang-tidy over src/ when available (advisory).
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"

run() { echo "+ $*" >&2; "$@"; }

# --- 1. regular build + tests ----------------------------------------------
run cmake -B "$PREFIX" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
run cmake --build "$PREFIX" -j "$JOBS"
run ctest --test-dir "$PREFIX" --output-on-failure

# --- 2. sanitizer build + tests --------------------------------------------
run cmake -B "$PREFIX-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFTRSN_SANITIZE=address,undefined
run cmake --build "$PREFIX-asan" -j "$JOBS"
run ctest --test-dir "$PREFIX-asan" --output-on-failure

# Deeper soak of the SAT-vs-tristate / incremental-vs-from-scratch
# differential properties under the sanitizers: any disagreement or memory
# error fails CI.
FTRSN_ORACLE_ITERS="${FTRSN_ORACLE_ITERS:-300}" \
  run ctest --test-dir "$PREFIX-asan" --output-on-failure -L oracle

# --- 3. rsn-lint over example networks -------------------------------------
TOOL="$PREFIX/examples/example_rsn_tool"
LINT="$PREFIX/examples/example_rsn_lint"
WORK="$PREFIX/lint-networks"
mkdir -p "$WORK"

for soc in g1023 d281 u226; do
  run "$TOOL" gen "$soc" "$WORK/$soc.rsn" >/dev/null
  run "$LINT" "$WORK/$soc.rsn"
done

# Synthesized fault-tolerant networks must also be clean, including under
# the post-synthesis fault-tolerance profile (--ft).
for soc in g1023 d281; do
  run "$TOOL" synth "$WORK/$soc.rsn" "$WORK/$soc-ft.rsn" >/dev/null
  run "$LINT" --ft --lint-stats "$WORK/$soc-ft.rsn"
done

# Backend equivalence on a synthesized network (its hardened select cones
# exceed the 10-atom auto threshold): the SAT and raised-threshold
# tristate backends must report identical findings.
run "$LINT" --json --ft --cone-backend=sat "$WORK/g1023-ft.rsn" \
  > "$WORK/g1023-ft.sat.json"
run "$LINT" --json --ft --cone-backend=tristate "$WORK/g1023-ft.rsn" \
  > "$WORK/g1023-ft.tri.json"
run diff "$WORK/g1023-ft.sat.json" "$WORK/g1023-ft.tri.json"

# The machine-readable emitter stays parseable.
run "$LINT" --json "$WORK/g1023.rsn" >/dev/null

# --- 4. clang-tidy (advisory) ----------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  run cmake -B "$PREFIX" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src -name '*.cpp' -print0 |
    xargs -0 -n 8 -P "$JOBS" clang-tidy -p "$PREFIX" --quiet || true
else
  echo "clang-tidy not found; skipping (advisory)" >&2
fi

echo "ci: all checks passed" >&2
