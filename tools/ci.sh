#!/usr/bin/env bash
# CI driver for the ftrsn repository:
#   1. regular build + full test suite;
#   2. ASan+UBSan build + full test suite, then deeper soaks of the
#      oracle differential suite (ctest -L oracle, scaled by
#      FTRSN_ORACLE_ITERS) and of the fault-metric engine equivalence
#      suite (ctest -L metric, scaled by FTRSN_METRIC_ITERS) under the
#      sanitizers;
#   3. TSan build (FTRSN_SANITIZE=thread) of the metric engine suite and
#      the batch runner suite — the two places the library spawns threads
#      (the batch suite exercises nested parallel_for scheduling);
#   4. bench smokes: BENCH_fault_metric.json and BENCH_batch_flow.json
#      must be emitted with the expected schemas and bit-identical
#      aggregates; on hosts with >= 8 hardware threads the intra-network
#      and batch speedups are asserted too (skipped on small runners,
#      where wall-clock scaling is physically impossible);
#   5. rsn-lint over generated and synthesized example networks
#      (must report zero error-severity findings, exit status 0), plus
#      JSON and SARIF emitter checks;
#   6. obs smoke: a traced `rsn_tool flow` run on u226 must emit a valid
#      Chrome trace-event JSON and a schema-versioned run report whose
#      stage times are consistent with the reported wall time;
#   7. clang-tidy over src/ when available (advisory unless
#      FTRSN_REQUIRE_CLANG_TIDY=1, which fails if the tool is missing).
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"

run() { echo "+ $*" >&2; "$@"; }

# --- 1. regular build + tests ----------------------------------------------
run cmake -B "$PREFIX" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
run cmake --build "$PREFIX" -j "$JOBS"
run ctest --test-dir "$PREFIX" --output-on-failure

# --- 2. sanitizer build + tests --------------------------------------------
run cmake -B "$PREFIX-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFTRSN_SANITIZE=address,undefined
run cmake --build "$PREFIX-asan" -j "$JOBS"
run ctest --test-dir "$PREFIX-asan" --output-on-failure

# Deeper soak of the SAT-vs-tristate / incremental-vs-from-scratch
# differential properties under the sanitizers: any disagreement or memory
# error fails CI.
FTRSN_ORACLE_ITERS="${FTRSN_ORACLE_ITERS:-300}" \
  run ctest --test-dir "$PREFIX-asan" --output-on-failure -L oracle

# Engine-vs-legacy metric equivalence under ASan+UBSan: bit-identical
# aggregates and distributions at 1/2/8 threads, sampled ITC'02 + random
# networks scaled by FTRSN_METRIC_ITERS.
FTRSN_METRIC_ITERS="${FTRSN_METRIC_ITERS:-1}" \
  run ctest --test-dir "$PREFIX-asan" --output-on-failure -L metric

# --- 3. TSan build of the threaded metric engine + batch runner ------------
run cmake -B "$PREFIX-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFTRSN_SANITIZE=thread
run cmake --build "$PREFIX-tsan" -j "$JOBS" \
    --target ftrsn_metric_tests ftrsn_batch_tests
FTRSN_METRIC_ITERS="${FTRSN_METRIC_ITERS:-1}" \
  run ctest --test-dir "$PREFIX-tsan" --output-on-failure -L metric
# One small SoC keeps the end-to-end sweep fast under TSan; the nested
# scheduling tests dominate the signal anyway.
FTRSN_BATCH_SOCS="${FTRSN_BATCH_SOCS:-u226}" \
  run ctest --test-dir "$PREFIX-tsan" --output-on-failure -L batch

# --- 4. fault-metric bench smoke -------------------------------------------
# Small SoC, legacy baseline on: the emitted JSON must parse, carry the
# expected schema, and report aggregates_identical on every run.
BENCH_JSON="$PREFIX/BENCH_fault_metric.smoke.json"
FTRSN_SOCS=u226 FTRSN_BENCH_OUT="$BENCH_JSON" \
  run "$PREFIX/bench/bench_fault_metric"
if command -v python3 >/dev/null 2>&1; then
  run python3 - "$BENCH_JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["bench"] == "fault_metric", "bench tag"
nets = doc["networks"]
assert nets, "no networks"
for net in nets:
    for key in ("soc", "network", "nodes", "faults", "classes",
                "collapse_ratio", "legacy_seconds", "runs",
                "thread_scaling_8v1"):
        assert key in net, f"missing {key}"
    assert net["faults"] >= net["classes"] > 0, "collapse counts"
    assert [r["threads"] for r in net["runs"]] == [1, 2, 8], "thread sweep"
    for r in net["runs"]:
        assert r["seconds"] >= 0 and r["faults_per_second"] > 0, "throughput"
        assert r["aggregates_identical"] is True, \
            f"engine/legacy mismatch on {net['soc']}-{net['network']}"
# Intra-network scaling: the fault-class loop of the largest FT network
# must speed up meaningfully 8-vs-1.  Only meaningful with real cores —
# on small runners the ratio is pinned near 1.0 by hardware.
if doc["hardware_threads"] >= 8:
    big = max((n for n in nets if n["network"] == "ft"),
              key=lambda n: n["classes"])
    assert big["thread_scaling_8v1"] > 1.5, \
        f"flat scaling on {big['soc']}: {big['thread_scaling_8v1']}"
print("bench schema ok:", sys.argv[1])
EOF
else
  grep -q '"bench": "fault_metric"' "$BENCH_JSON"
  if grep -q '"aggregates_identical": false' "$BENCH_JSON"; then
    echo "bench smoke: aggregates mismatch" >&2; exit 1
  fi
fi

# Batch flow runner smoke: the sharded sweep must reproduce the serial
# sweep bit for bit at every thread count.  Two small SoCs keep it quick.
BATCH_JSON="$PREFIX/BENCH_batch_flow.smoke.json"
FTRSN_SOCS=u226,d281 FTRSN_BENCH_OUT="$BATCH_JSON" \
  run "$PREFIX/bench/bench_batch_flow"
if command -v python3 >/dev/null 2>&1; then
  run python3 - "$BATCH_JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["bench"] == "batch_flow", "bench tag"
assert doc["serial_seconds"] > 0, "serial baseline"
assert doc["socs"], "no socs"
runs = doc["runs"]
assert [r["threads"] for r in runs] == [1, 2, 8], "thread sweep"
for r in runs:
    assert r["seconds"] > 0, "run time"
    assert r["aggregates_identical"] is True, \
        f"batch/serial mismatch at {r['threads']} threads"
    socs = {s["soc"] for s in r["socs"] if s["identical"]}
    assert socs == set(doc["socs"]), f"per-soc mismatch at {r['threads']}"
# Wall-clock scaling needs real cores; on small runners the sharded run
# only measures scheduling overhead, so the speedup gate is skipped.
if doc["hardware_threads"] >= 8:
    assert runs[-1]["speedup"] > 1.5, f"no batch speedup: {runs[-1]}"
print("batch bench schema ok:", sys.argv[1])
EOF
else
  grep -q '"bench": "batch_flow"' "$BATCH_JSON"
  if grep -q '"identical": false' "$BATCH_JSON"; then
    echo "batch bench smoke: aggregates mismatch" >&2; exit 1
  fi
fi

# --- 5. rsn-lint over example networks -------------------------------------
TOOL="$PREFIX/examples/example_rsn_tool"
LINT="$PREFIX/examples/example_rsn_lint"
WORK="$PREFIX/lint-networks"
mkdir -p "$WORK"

for soc in g1023 d281 u226; do
  run "$TOOL" gen "$soc" "$WORK/$soc.rsn" >/dev/null
  run "$LINT" "$WORK/$soc.rsn"
done

# Synthesized fault-tolerant networks must also be clean, including under
# the post-synthesis fault-tolerance profile (--ft).
for soc in g1023 d281; do
  run "$TOOL" synth "$WORK/$soc.rsn" "$WORK/$soc-ft.rsn" >/dev/null
  run "$LINT" --ft --lint-stats "$WORK/$soc-ft.rsn"
done

# Backend equivalence on a synthesized network (its hardened select cones
# exceed the 10-atom auto threshold): the SAT and raised-threshold
# tristate backends must report identical findings.
run "$LINT" --json --ft --cone-backend=sat "$WORK/g1023-ft.rsn" \
  > "$WORK/g1023-ft.sat.json"
run "$LINT" --json --ft --cone-backend=tristate "$WORK/g1023-ft.rsn" \
  > "$WORK/g1023-ft.tri.json"
run diff "$WORK/g1023-ft.sat.json" "$WORK/g1023-ft.tri.json"

# The machine-readable emitters stay parseable.
run "$LINT" --json "$WORK/g1023.rsn" >/dev/null
run "$LINT" --sarif "$WORK/g1023.rsn" > "$WORK/g1023.sarif"
if command -v python3 >/dev/null 2>&1; then
  run python3 - "$WORK/g1023.sarif" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["version"] == "2.1.0", "sarif version"
assert doc["runs"][0]["tool"]["driver"]["name"] == "rsn-lint", "driver"
print("sarif ok:", sys.argv[1])
EOF
fi

# --- 6. obs smoke: traced flow run -----------------------------------------
# One end-to-end flow with tracing, reporting and a BMC spot-check: both
# emitted JSON documents must parse and respect their schemas, and the
# report's stage breakdown must stay consistent with its wall time.
OBS_TRACE="$WORK/u226_trace.json"
OBS_REPORT="$WORK/u226_report.json"
# --threads=2 forces a multi-threaded metric pool even on 1-CPU runners so
# the trace always carries worker lanes.
run "$TOOL" flow u226 --trace="$OBS_TRACE" --report="$OBS_REPORT" \
  --bmc-check=4 --threads=2 >/dev/null
if command -v python3 >/dev/null 2>&1; then
  run python3 - "$OBS_TRACE" "$OBS_REPORT" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
names = {e["name"] for e in events if e.get("ph") == "X"}
for stage in ("flow.parse", "flow.synth", "flow.metric.original",
              "flow.metric.hardened", "flow.bmc", "synth.augment",
              "bmc.check"):
    assert stage in names, f"missing trace span {stage}"
lanes = {e["tid"] for e in events if e.get("ph") == "X"}
assert len(lanes) > 1, "no worker lanes in trace"
for e in events:
    if e.get("ph") == "X":
        assert e["dur"] >= 0 and e["ts"] >= 0, "bad event timestamps"

report = json.load(open(sys.argv[2]))
assert report["schema"] == "ftrsn-run-report", "report schema"
assert report["version"] == 1, "report version"
wall = report["wall_seconds"]
stages = {s["name"]: s["seconds"] for s in report["stages"]}
for stage in ("flow.parse", "flow.synth", "flow.bmc"):
    assert stage in stages, f"missing report stage {stage}"
total = report["stages_total_seconds"]
# The flow spends essentially all its time inside instrumented stages, so
# the stage sum must agree with the wall time to within 10%.
assert wall * 0.90 <= total <= wall * 1.10, \
    f"stage sum {total} vs wall {wall}"
assert report["counters"].get("bmc.sat_calls", 0) > 0, "bmc counters"
assert report["counters"].get("metric.faults", 0) > 0, "metric counters"
assert report["machine"]["peak_rss_kb"] > 0, "peak rss"
print("obs smoke ok:", sys.argv[1], sys.argv[2])
EOF
else
  grep -q '"traceEvents"' "$OBS_TRACE"
  grep -q '"schema": "ftrsn-run-report"' "$OBS_REPORT"
fi

# --- 7. clang-tidy ----------------------------------------------------------
# Advisory locally; the GitHub workflow sets FTRSN_REQUIRE_CLANG_TIDY=1 so
# a missing tool is a hard failure there instead of a silent skip.
if command -v clang-tidy >/dev/null 2>&1; then
  run cmake -B "$PREFIX" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src -name '*.cpp' -print0 |
    xargs -0 -n 8 -P "$JOBS" clang-tidy -p "$PREFIX" --quiet || true
elif [ "${FTRSN_REQUIRE_CLANG_TIDY:-0}" = "1" ]; then
  echo "clang-tidy required (FTRSN_REQUIRE_CLANG_TIDY=1) but not found" >&2
  exit 1
else
  echo "clang-tidy not found; skipping (advisory)" >&2
fi

echo "ci: all checks passed" >&2
