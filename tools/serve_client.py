#!/usr/bin/env python3
"""Scripted JSONL client for the ftrsn analysis daemon (rsn_tool serve).

Connects to a running daemon (TCP port, --port-file for ephemeral ports, or
a Unix socket path in the port file), runs a fixed smoke session over an
uploaded .rsn file and asserts the daemon's caching contract:

  * a repeated request is answered from the cache (cached=true) and its
    result blob + result_sha256 are byte-identical to the first answer;
  * the stats op reports the cache hits/misses/insertions the session just
    caused (counter-asserted, hardware-independent);
  * malformed requests get ok=false responses and are never cached;
  * --shutdown ends with a clean server-side teardown.

Exit status 0 = every assertion held.  Used by tools/ci.sh; also handy
interactively:

  tools/serve_client.py --port-file=/tmp/serve.port --rsn=u226.rsn --shutdown
"""

import argparse
import json
import socket
import sys
import time


def fail(msg):
    print(f"serve_client: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def read_endpoint(args):
    """Resolves (host, port) or a unix path from the CLI arguments."""
    if args.port_file:
        deadline = time.monotonic() + args.connect_timeout
        while True:
            try:
                with open(args.port_file) as f:
                    contents = f.read().strip()
                if contents:
                    break
            except OSError:
                pass
            if time.monotonic() > deadline:
                fail(f"port file {args.port_file} never appeared")
            time.sleep(0.05)
        if contents.isdigit():
            return (args.host, int(contents)), None
        return None, contents  # unix socket path
    if args.port is None:
        fail("need --port or --port-file")
    return (args.host, args.port), None


def connect(args):
    tcp, unix_path = read_endpoint(args)
    deadline = time.monotonic() + args.connect_timeout
    while True:
        try:
            if unix_path:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.connect(unix_path)
            else:
                sock = socket.create_connection(tcp, timeout=args.connect_timeout)
            sock.settimeout(args.request_timeout)
            return sock
        except OSError as e:
            if time.monotonic() > deadline:
                fail(f"cannot connect: {e}")
            time.sleep(0.05)


class Session:
    def __init__(self, sock):
        self.file = sock.makefile("rw", encoding="utf-8", newline="\n")
        self.seq = 0

    def call(self, op, rsn=None, options=None, raw=None):
        """Sends one request, returns (parsed response, raw line)."""
        if raw is None:
            self.seq += 1
            req = {"id": f"c{self.seq}", "op": op}
            if rsn is not None:
                req["rsn"] = rsn
            if options is not None:
                req["options"] = options
            raw = json.dumps(req)
        self.file.write(raw + "\n")
        self.file.flush()
        line = self.file.readline()
        if not line:
            fail(f"connection closed mid-session (op {op})")
        return json.loads(line), line.rstrip("\n")


def result_blob(raw_response):
    """The rendered result JSON, carved bytewise out of the envelope (the
    service renders exactly '"result":<blob>,"result_sha256":')."""
    a = raw_response.find('"result":')
    b = raw_response.rfind(',"result_sha256":')
    if a < 0 or b <= a:
        fail(f"no result blob in: {raw_response[:200]}")
    return raw_response[a + len('"result":'):b]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int)
    parser.add_argument("--port-file",
                        help="file the daemon writes its endpoint to "
                             "(--port-file of rsn_tool serve)")
    parser.add_argument("--rsn", required=True,
                        help=".rsn network file to upload")
    parser.add_argument("--shutdown", action="store_true",
                        help="send {'op':'shutdown'} at the end")
    parser.add_argument("--connect-timeout", type=float, default=15.0)
    parser.add_argument("--request-timeout", type=float, default=300.0)
    args = parser.parse_args()

    with open(args.rsn) as f:
        rsn_text = f.read()

    session = Session(connect(args))
    before, _ = session.call("stats")
    if not before.get("ok"):
        fail(f"stats failed: {before}")
    base = before["result"]["cache"]

    # Cold -> warm for two distinct ops; warm answers must be cached and
    # byte-identical (blob and sha alike) to the cold ones.
    repeats = 0
    for op, options in (("parse", None), ("metric", None)):
        cold, cold_raw = session.call(op, rsn=rsn_text, options=options)
        if not cold.get("ok"):
            fail(f"cold {op} failed: {cold.get('error')}")
        warm, warm_raw = session.call(op, rsn=rsn_text, options=options)
        if not warm.get("ok"):
            fail(f"warm {op} failed: {warm.get('error')}")
        if not warm.get("cached"):
            fail(f"warm {op} was not served from the cache")
        if warm["result_sha256"] != cold["result_sha256"]:
            fail(f"{op} result_sha256 drifted between cold and warm")
        if result_blob(warm_raw) != result_blob(cold_raw):
            fail(f"{op} result blob not byte-identical cold vs warm")
        repeats += 1

    # One more warm hit on a key the session already owns.
    again, _ = session.call("parse", rsn=rsn_text)
    if not (again.get("ok") and again.get("cached")):
        fail("third parse of the same text missed the cache")

    # Malformed requests answer ok=false and must not pollute the cache.
    bad, _ = session.call(None, raw='{"id":"x","op":"nonsense"}')
    if bad.get("ok"):
        fail("unknown op was accepted")
    bad, _ = session.call(None, raw="this is not json")
    if bad.get("ok"):
        fail("malformed line was accepted")

    after, _ = session.call("stats")
    cache = after["result"]["cache"]
    hits = cache["hits"] - base["hits"]
    misses = cache["misses"] - base["misses"]
    inserts = cache["insertions"] - base["insertions"]
    if hits < repeats + 1:
        fail(f"expected >= {repeats + 1} cache hits this session, got {hits}")
    if misses < repeats or inserts < repeats:
        fail(f"expected >= {repeats} misses+insertions, "
             f"got {misses}/{inserts}")

    if args.shutdown:
        resp, _ = session.call(None, raw='{"op":"shutdown"}')
        if not resp.get("ok"):
            fail(f"shutdown refused: {resp}")

    print(f"serve_client: ok ({hits} hits, {misses} misses, "
          f"{inserts} insertions; repeats byte-identical)")


if __name__ == "__main__":
    main()
