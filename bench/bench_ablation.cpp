// Ablation study over the design choices called out in DESIGN.md:
//  * augmentation engine: flow branch & bound vs. literal ILP vs. greedy;
//  * backbone-skip hardening on/off;
//  * TMR address hardening on/off;
//  * select hardening on/off.
// Reported per variant: worst/average segment accessibility of the
// fault-tolerant RSN and the mux/area overhead.
//
// All (SoC, variant) flows are independent, so they run as one sharded
// batch (core/batch.hpp) and the rows are printed afterwards in the
// deterministic input order.
//
// FTRSN_SOCS selects the SoCs (default here: u226,x1331,q12710 to keep the
// run short; set FTRSN_SOCS to override).  FTRSN_BATCH_THREADS sizes the
// shared pool.
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "core/batch.hpp"

using namespace ftrsn;

namespace {

SynthOptions variant_synth(const char* name) {
  SynthOptions opt;
  const std::string v = name;
  if (v == "no backbone skips") {
    opt.augment.spof_repair = false;
  } else if (v == "greedy augmentation") {
    opt.augment.engine = AugmentOptions::Engine::kGreedy;
  } else if (v == "no TMR addresses") {
    opt.tmr_addresses = false;
  } else if (v == "no select hardening") {
    opt.harden_select = false;
  } else if (v == "single scan ports") {
    opt.duplicate_ports = false;
  } else if (v == "quadratic edge cost") {
    opt.augment.edge_cost = [](int delta) {
      return 1 + static_cast<long long>(delta) * delta;
    };
  }  // else: "full (default)"
  return opt;
}

constexpr const char* kVariants[] = {
    "full (default)",      "no backbone skips",  "greedy augmentation",
    "no TMR addresses",    "no select hardening", "single scan ports",
    "quadratic edge cost",
};

}  // namespace

int main() {
  if (!std::getenv("FTRSN_SOCS"))
    setenv("FTRSN_SOCS", "u226,x1331,q12710", 0);
  bench::BenchReport report("ablation");

  const auto socs = bench::selected_socs();
  std::vector<BatchFlow> flows;
  for (const auto& soc : socs) {
    const Rsn rsn = itc02::generate_sib_rsn(soc);
    for (const char* variant : kVariants) {
      BatchFlow flow;
      flow.name = soc.name + ":" + variant;
      flow.rsn = rsn;
      flow.options.synth = variant_synth(variant);
      flow.options.evaluate_original = false;
      flows.push_back(std::move(flow));
    }
  }
  BatchOptions bopt;
  if (const char* env = std::getenv("FTRSN_BATCH_THREADS"))
    bopt.threads = std::atoi(env);
  BatchRunner runner(bopt);
  const BatchResult batch = runner.run_flows(std::move(flows));

  std::string variants_json;
  std::size_t index = 0;
  for (const auto& soc : socs) {
    std::printf("%s\n", soc.name.c_str());
    bench::rule();
    for (const char* name : kVariants) {
      const FlowResult& r = batch.flows[index++];
      const auto& m = *r.hardened_metric;
      std::printf(
          "  %-22s seg worst=%.3f avg=%.4f | bits worst=%.3f avg=%.4f | "
          "mux %.2fx area %.2fx | %.1fs\n",
          name, m.seg_worst, m.seg_avg, m.bit_worst, m.bit_avg,
          r.overhead.mux, r.overhead.area,
          r.synth_seconds + r.metric_seconds);
      variants_json += strprintf(
          "%s\n    {\"soc\": \"%s\", \"variant\": \"%s\", "
          "\"seg_worst\": %.4f, \"seg_avg\": %.5f, "
          "\"bit_worst\": %.4f, \"bit_avg\": %.5f, "
          "\"mux_overhead\": %.3f, \"area_overhead\": %.3f, "
          "\"seconds\": %.2f}",
          variants_json.empty() ? "" : ",", soc.name.c_str(), name,
          m.seg_worst, m.seg_avg, m.bit_worst, m.bit_avg, r.overhead.mux,
          r.overhead.area, r.synth_seconds + r.metric_seconds);
    }
    std::printf("\n");
  }
  std::printf(
      "reading: every hardening stage contributes — dropping skips or TMR\n"
      "reintroduces catastrophic worst-case faults; greedy costs slightly\n"
      "more hardware for the same tolerance.\n");
  std::printf("batch: %zu flows on %d threads in %.2fs\n",
              batch.flows.size(), batch.threads, batch.wall_seconds);
  report.add("variants", "[" + variants_json + "\n  ]");
  report.add_count("batch_threads", batch.threads);
  report.add_number("batch_wall_seconds", batch.wall_seconds);
  return report.write() ? 0 : 1;
}
