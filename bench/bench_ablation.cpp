// Ablation study over the design choices called out in DESIGN.md:
//  * augmentation engine: flow branch & bound vs. literal ILP vs. greedy;
//  * backbone-skip hardening on/off;
//  * TMR address hardening on/off;
//  * select hardening on/off.
// Reported per variant: worst/average segment accessibility of the
// fault-tolerant RSN and the mux/area overhead.
//
// FTRSN_SOCS selects the SoCs (default here: u226,x1331,q12710 to keep the
// run short; set FTRSN_SOCS to override).
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "core/flow.hpp"

using namespace ftrsn;

namespace {

std::string variants_json;  // payload rows for the BENCH_ablation envelope

void run_variant(const char* name, const itc02::Soc& soc,
                 const SynthOptions& synth) {
  FlowOptions opt;
  opt.synth = synth;
  opt.evaluate_original = false;
  const FlowResult r = run_flow(itc02::generate_sib_rsn(soc), opt);
  const auto& m = *r.hardened_metric;
  std::printf("  %-22s seg worst=%.3f avg=%.4f | bits worst=%.3f avg=%.4f | "
              "mux %.2fx area %.2fx | %.1fs\n",
              name, m.seg_worst, m.seg_avg, m.bit_worst, m.bit_avg,
              r.overhead.mux, r.overhead.area,
              r.synth_seconds + r.metric_seconds);
  variants_json += strprintf(
      "%s\n    {\"soc\": \"%s\", \"variant\": \"%s\", "
      "\"seg_worst\": %.4f, \"seg_avg\": %.5f, "
      "\"bit_worst\": %.4f, \"bit_avg\": %.5f, "
      "\"mux_overhead\": %.3f, \"area_overhead\": %.3f, \"seconds\": %.2f}",
      variants_json.empty() ? "" : ",", soc.name.c_str(), name, m.seg_worst,
      m.seg_avg, m.bit_worst, m.bit_avg, r.overhead.mux, r.overhead.area,
      r.synth_seconds + r.metric_seconds);
}

}  // namespace

int main() {
  if (!std::getenv("FTRSN_SOCS"))
    setenv("FTRSN_SOCS", "u226,x1331,q12710", 0);
  bench::BenchReport report("ablation");
  for (const auto& soc : bench::selected_socs()) {
    std::printf("%s\n", soc.name.c_str());
    bench::rule();
    SynthOptions base;
    run_variant("full (default)", soc, base);

    SynthOptions flow_only = base;
    flow_only.augment.spof_repair = false;
    run_variant("no backbone skips", soc, flow_only);

    SynthOptions greedy = base;
    greedy.augment.engine = AugmentOptions::Engine::kGreedy;
    run_variant("greedy augmentation", soc, greedy);

    SynthOptions no_tmr = base;
    no_tmr.tmr_addresses = false;
    run_variant("no TMR addresses", soc, no_tmr);

    SynthOptions no_select = base;
    no_select.harden_select = false;
    run_variant("no select hardening", soc, no_select);

    SynthOptions no_ports = base;
    no_ports.duplicate_ports = false;
    run_variant("single scan ports", soc, no_ports);

    SynthOptions expensive = base;
    expensive.augment.edge_cost = [](int delta) {
      return 1 + static_cast<long long>(delta) * delta;
    };
    run_variant("quadratic edge cost", soc, expensive);
    std::printf("\n");
  }
  std::printf(
      "reading: every hardening stage contributes — dropping skips or TMR\n"
      "reintroduces catastrophic worst-case faults; greedy costs slightly\n"
      "more hardware for the same tolerance.\n");
  report.add("variants", "[" + variants_json + "\n  ]");
  return report.write() ? 0 : 1;
}
