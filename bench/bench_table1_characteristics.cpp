// Reproduces the "RSN Characteristics" columns of Table I: the SIB-based
// RSNs generated from the ITC'02 SoCs.  These must match the paper exactly
// (the embedded SoC descriptors are calibrated for it; see DESIGN.md §3).
#include <cstdio>

#include "bench_util.hpp"
#include "rsn/rsn.hpp"

using namespace ftrsn;

int main() {
  bench::BenchReport report("table1_characteristics");
  std::string rows;
  std::printf("Table I — RSN characteristics (paper value in parentheses)\n");
  bench::rule();
  std::printf("%-9s %17s %14s %12s %14s %18s\n", "SoC", "modules", "levels",
              "mux", "segments", "bits");
  bench::rule();
  bool all_match = true;
  for (const auto& soc : bench::selected_socs()) {
    const auto& row = bench::paper_row(soc.name);
    const Rsn rsn = itc02::generate_sib_rsn(soc);
    const RsnStats st = rsn.stats();
    const int modules = static_cast<int>(soc.modules.size());
    const auto cell = [&](long long got, long long want) {
      all_match &= got == want;
      return strprintf("%6lld (%5lld)%s", got, want, got == want ? " " : "!");
    };
    std::printf("%-9s %s %s %s %s %s\n", soc.name.c_str(),
                cell(modules, row.modules).c_str(),
                cell(st.levels, row.levels).c_str(),
                cell(st.muxes, row.mux).c_str(),
                cell(st.segments, row.segments).c_str(),
                cell(st.bits, row.bits).c_str());
    rows += strprintf(
        "%s\n    {\"soc\": \"%s\", \"modules\": %d, \"levels\": %lld, "
        "\"muxes\": %lld, \"segments\": %lld, \"bits\": %lld}",
        rows.empty() ? "" : ",", soc.name.c_str(), modules,
        static_cast<long long>(st.levels), static_cast<long long>(st.muxes),
        static_cast<long long>(st.segments), static_cast<long long>(st.bits));
  }
  bench::rule();
  std::printf("characteristics %s the paper\n",
              all_match ? "MATCH" : "DIFFER FROM");
  report.add_flag("matches_paper", all_match);
  report.add("socs", "[" + rows + "\n  ]");
  report.write();
  return all_match ? 0 : 1;
}
