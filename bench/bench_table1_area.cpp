// Reproduces the "RSN Area Overhead" columns of Table I: fault-tolerant /
// original ratios of scan mux count, scan bits, interconnects and area
// (NAND2-equivalent structural model; see DESIGN.md §3 for the
// commercial-synthesis substitution).
#include <cstdio>

#include "area/area.hpp"
#include "bench_util.hpp"
#include "core/flow.hpp"

using namespace ftrsn;

int main() {
  bench::BenchReport report("table1_area");
  std::string rows;
  std::printf("Table I — area overhead ratios (measured | paper)\n");
  bench::rule('-', 112);
  std::printf("%-9s %16s %16s %16s %16s %10s %12s\n", "SoC", "mux", "bits",
              "nets", "area", "pins", "added edges");
  bench::rule('-', 112);
  double weighted_area = 0.0, weight = 0.0;
  double paper_weighted = 0.0;
  for (const auto& soc : bench::selected_socs()) {
    const auto& row = bench::paper_row(soc.name);
    FlowOptions opt;
    opt.evaluate_original = false;
    opt.evaluate_hardened = false;
    const FlowResult r = run_soc_flow(soc.name, opt);
    const auto cell = [](double got, double want) {
      return strprintf("%5.2f |%5.2f", got, want);
    };
    std::printf("%-9s %16s %16s %16s %16s %10d %12d\n", soc.name.c_str(),
                cell(r.overhead.mux, row.r_mux).c_str(),
                cell(r.overhead.bits, row.r_bits).c_str(),
                cell(r.overhead.nets, row.r_nets).c_str(),
                cell(r.overhead.area, row.r_area).c_str(),
                r.augment_edges - r.synth_stats.added_registers,
                r.augment_edges);
    weighted_area += r.overhead.area * static_cast<double>(row.bits);
    paper_weighted += row.r_area * static_cast<double>(row.bits);
    weight += static_cast<double>(row.bits);
    rows += strprintf(
        "%s\n    {\"soc\": \"%s\", \"mux\": %.3f, \"bits\": %.3f, "
        "\"nets\": %.3f, \"area\": %.3f, \"added_edges\": %d}",
        rows.empty() ? "" : ",", soc.name.c_str(), r.overhead.mux,
        r.overhead.bits, r.overhead.nets, r.overhead.area, r.augment_edges);
  }
  bench::rule('-', 112);
  if (weight > 0)
    std::printf(
        "bit-weighted average area overhead: measured %+.1f%% | paper "
        "%+.1f%% (paper text: +8.2%%)\n",
        (weighted_area / weight - 1.0) * 100.0,
        (paper_weighted / weight - 1.0) * 100.0);
  report.add("socs", "[" + rows + "\n  ]");
  if (weight > 0)
    report.add_number("weighted_area_overhead", weighted_area / weight - 1.0);
  return report.write() ? 0 : 1;
}
