// Fault-metric engine benchmark: legacy serial loop vs FaultMetricEngine
// (packed 64-lane mode) at 1/2/8 threads, per SoC, on the original
// SIB-based RSN and on the synthesized fault-tolerant RSN.  Emits
// BENCH_fault_metric.json with the wall times, faults/s throughput,
// fault-class collapse ratio, packed lane accounting (packed_words,
// lane_utilization, SIMD kernel), a scalar-engine baseline per network
// with the packed-vs-scalar mask_evals ratio (the bit-parallel lever,
// hardware-independent), and a strict aggregates-identical flag (every
// report field including the full per-fault distribution is compared
// bitwise against the legacy loop).
//
//   FTRSN_SOCS=<comma list>   SoC subset (default u226,d695,p93791)
//   FTRSN_BENCH_LEGACY=0      skip the legacy baseline (speedups omitted)
//   FTRSN_BENCH_SCALAR=0      skip the scalar-engine baseline
//   FTRSN_BENCH_OUT=<path>    output path (default BENCH_fault_metric.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/metric.hpp"
#include "fault/metric_engine.hpp"
#include "synth/synth.hpp"

using namespace ftrsn;

namespace {

double now_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool reports_identical(const FaultToleranceReport& a,
                       const FaultToleranceReport& b) {
  return a.num_faults == b.num_faults &&
         a.counted_segments == b.counted_segments &&
         a.counted_bits == b.counted_bits && a.seg_worst == b.seg_worst &&
         a.seg_avg == b.seg_avg && a.bit_worst == b.bit_worst &&
         a.bit_avg == b.bit_avg &&
         a.worst_fault_index == b.worst_fault_index &&
         a.seg_fraction == b.seg_fraction && a.bit_fraction == b.bit_fraction;
}

struct RunRecord {
  int threads = 1;
  double seconds = 0.0;
  double faults_per_second = 0.0;
  double speedup = 0.0;  // vs legacy serial; 0 if legacy skipped
  bool aggregates_identical = false;
  std::size_t mask_evals = 0;
  std::size_t packed_words = 0;
  double lane_utilization = 0.0;
  const char* simd_kernel = "";
};

struct NetworkRecord {
  std::string soc, network;
  std::size_t nodes = 0, faults = 0, classes = 0;
  double collapse_ratio = 1.0;
  double legacy_seconds = 0.0;  // 0 if skipped
  // Scalar (packed=false) engine baseline at 1 thread; 0 if skipped.
  double scalar_seconds = 0.0;
  std::size_t scalar_mask_evals = 0;
  bool scalar_identical = false;
  std::vector<RunRecord> runs;

  /// Hardware-independent bit-parallel lever: scalar-engine mask evals
  /// over packed word evals (≈ effective lanes per packed word).
  double mask_evals_ratio() const {
    return scalar_mask_evals > 0 && !runs.empty() && runs[0].mask_evals > 0
               ? static_cast<double>(scalar_mask_evals) /
                     static_cast<double>(runs[0].mask_evals)
               : 0.0;
  }

  /// Intra-network thread scaling: serial engine time over the 8-thread
  /// engine time (1.0 = flat; hardware-limited to ~1.0 on 1-core hosts).
  double thread_scaling_8v1() const {
    double t1 = 0.0, t8 = 0.0;
    for (const RunRecord& run : runs) {
      if (run.threads == 1) t1 = run.seconds;
      if (run.threads == 8) t8 = run.seconds;
    }
    return t1 > 0.0 && t8 > 0.0 ? t1 / t8 : 0.0;
  }
};

NetworkRecord bench_network(const std::string& soc, const char* kind,
                            const Rsn& rsn, bool run_legacy) {
  NetworkRecord rec;
  rec.soc = soc;
  rec.network = kind;
  rec.nodes = rsn.num_nodes();

  MetricOptions mo;
  mo.keep_distribution = true;
  FaultToleranceReport legacy;
  if (run_legacy) {
    const auto t0 = std::chrono::steady_clock::now();
    legacy = compute_fault_tolerance(rsn, mo);
    rec.legacy_seconds = now_seconds(t0);
  }

  const FaultMetricEngine engine(rsn);
  MetricEngineOptions eo;
  eo.metric = mo;

  const char* scalar_env = std::getenv("FTRSN_BENCH_SCALAR");
  FaultToleranceReport scalar;
  bool run_scalar = !scalar_env || std::string(scalar_env) != "0";
  if (run_scalar) {
    eo.packed = false;
    eo.threads = 1;
    const auto t0 = std::chrono::steady_clock::now();
    scalar = engine.evaluate(eo);
    rec.scalar_seconds = now_seconds(t0);
    rec.scalar_mask_evals = engine.last_stats().mask_evals;
    eo.packed = true;
  }

  for (const int threads : {1, 2, 8}) {
    eo.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const FaultToleranceReport rep = engine.evaluate(eo);
    RunRecord run;
    run.threads = threads;
    run.seconds = now_seconds(t0);
    const MetricEngineStats& st = engine.last_stats();
    rec.faults = st.faults;
    rec.classes = st.classes;
    rec.collapse_ratio = st.collapse_ratio();
    run.faults_per_second =
        run.seconds > 0.0 ? static_cast<double>(st.faults) / run.seconds : 0.0;
    run.speedup = run_legacy && run.seconds > 0.0
                      ? rec.legacy_seconds / run.seconds
                      : 0.0;
    run.aggregates_identical = run_legacy && reports_identical(rep, legacy);
    run.mask_evals = st.mask_evals;
    run.packed_words = st.packed_words;
    run.lane_utilization = st.lane_utilization;
    run.simd_kernel = st.simd_kernel;
    if (run_scalar) rec.scalar_identical = reports_identical(rep, scalar);
    rec.runs.push_back(run);
    std::printf(
        "  %-4s t=%d  %8.3fs  %10.0f faults/s  ratio=%.2f  lanes=%.2f%s%s\n",
        kind, threads, run.seconds, run.faults_per_second, rec.collapse_ratio,
        run.lane_utilization,
        run_legacy
            ? (run.aggregates_identical ? "  identical" : "  MISMATCH")
            : "",
        run_scalar ? (rec.scalar_identical ? "" : "  SCALAR-MISMATCH") : "");
  }
  if (run_scalar && !rec.runs.empty())
    std::printf("  %-4s scalar %.3fs  mask_evals %zu -> %zu (%.1fx)\n", kind,
                rec.scalar_seconds, rec.scalar_mask_evals,
                rec.runs[0].mask_evals, rec.mask_evals_ratio());
  return rec;
}

}  // namespace

int main() {
  if (!std::getenv("FTRSN_SOCS")) setenv("FTRSN_SOCS", "u226,d695,p93791", 0);
  const char* legacy_env = std::getenv("FTRSN_BENCH_LEGACY");
  const bool run_legacy = !legacy_env || std::string(legacy_env) != "0";
  bench::BenchReport report("fault_metric");

  std::vector<NetworkRecord> records;
  for (const auto& soc : bench::selected_socs()) {
    std::printf("%s\n", soc.name.c_str());
    const Rsn original = itc02::generate_sib_rsn(soc);
    records.push_back(bench_network(soc.name, "orig", original, run_legacy));
    const Rsn ft = synthesize_fault_tolerant(original).rsn;
    records.push_back(bench_network(soc.name, "ft", ft, run_legacy));
  }

  std::string networks = "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const NetworkRecord& r = records[i];
    networks += strprintf(
        "    {\"soc\": \"%s\", \"network\": \"%s\", \"nodes\": %zu, "
        "\"faults\": %zu, \"classes\": %zu, "
        "\"collapse_ratio\": %.4f, \"legacy_seconds\": %.4f,\n"
        "     \"scalar_seconds\": %.4f, \"scalar_mask_evals\": %zu, "
        "\"scalar_identical\": %s, \"mask_evals_ratio\": %.2f,\n"
        "     \"runs\": [",
        r.soc.c_str(), r.network.c_str(), r.nodes, r.faults, r.classes,
        r.collapse_ratio, r.legacy_seconds, r.scalar_seconds,
        r.scalar_mask_evals, r.scalar_identical ? "true" : "false",
        r.mask_evals_ratio());
    for (std::size_t k = 0; k < r.runs.size(); ++k) {
      const RunRecord& run = r.runs[k];
      networks += strprintf(
          "%s\n      {\"threads\": %d, \"seconds\": %.4f, "
          "\"faults_per_second\": %.1f, \"speedup\": %.2f, "
          "\"aggregates_identical\": %s, \"mask_evals\": %zu, "
          "\"packed_words\": %zu, \"lane_utilization\": %.4f, "
          "\"simd_kernel\": \"%s\"}",
          k ? "," : "", run.threads, run.seconds, run.faults_per_second,
          run.speedup, run.aggregates_identical ? "true" : "false",
          run.mask_evals, run.packed_words, run.lane_utilization,
          run.simd_kernel);
    }
    networks += strprintf("\n    ], \"thread_scaling_8v1\": %.2f}%s\n",
                          r.thread_scaling_8v1(),
                          i + 1 < records.size() ? "," : "");
  }
  networks += "  ]";
  report.add_flag("legacy_baseline", run_legacy);
  report.add("networks", networks);
  bench::rule();
  bench::print_histograms("metric.");
  return report.write() ? 0 : 1;
}
