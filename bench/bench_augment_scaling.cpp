// Degree-cover augmentation at synthetic scale (10^5-10^6 scan elements).
//
// Generates ITC'02-shaped SoCs scaled to each target size (gen/scale.hpp),
// runs connectivity augmentation end to end with the cost-scaling
// min-cost-flow engine, and re-runs the flow relaxation with the SSP
// oracle on the sizes where it is still tractable.  Besides wall times the
// payload records the engines' deterministic work counters — SSP Dijkstra
// arc scans vs cost-scaling pushes+relabels — whose ratio is
// hardware-independent, so CI asserts on it across machines.
//
// Env knobs:
//   FTRSN_SCALE_TARGETS   comma list of target element counts
//                         (default "2000,20000,100000")
//   FTRSN_SCALE_SSP_MAX   largest target the SSP oracle runs at
//                         (default 20000 — the oracle's work grows
//                         quadratically; the ratio is reported on the
//                         largest target both engines completed)
//   FTRSN_BENCH_OUT       output path (default BENCH_augment_scaling.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "augment/augment.hpp"
#include "bench_util.hpp"
#include "gen/scale.hpp"
#include "graph/dataflow.hpp"
#include "obs/obs.hpp"

using namespace ftrsn;

namespace {

std::vector<long long> scale_targets() {
  const char* env = std::getenv("FTRSN_SCALE_TARGETS");
  std::vector<long long> targets;
  for (const std::string& piece : split(env && *env ? env : "2000,20000,100000", ','))
    targets.push_back(std::atoll(std::string(trim(piece)).c_str()));
  return targets;
}

struct EngineRun {
  bool ran = false;
  double seconds = 0;
  long long cost = 0;
  std::size_t edges = 0;
  int bb_nodes = 0;
  unsigned long long work = 0;  // ssp: arc scans; scaling: pushes+relabels
  unsigned long long pushes = 0, relabels = 0, price_refines = 0,
                     arcs_fixed = 0;
};

EngineRun run_engine(const DataflowGraph& g, bool cost_scaling) {
  EngineRun run;
  AugmentOptions opt;
  // Backbone-skip hardening would satisfy nearly every degree need before
  // the optimization runs; disable it so the bench measures the actual
  // degree-cover LP (paper eqs. 2-5) that the flow engines solve.
  opt.spof_repair = false;
  if (!cost_scaling)
    opt.mcf.algorithm = MinCostFlowOptions::Algorithm::kSsp;
  const auto c0 = obs::counters_snapshot();
  const auto t0 = std::chrono::steady_clock::now();
  const AugmentResult r = augment_connectivity(g, opt);
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto diff = [&](const char* name) -> unsigned long long {
    const auto it = c0.find(name);
    return obs::counter_value(name) - (it == c0.end() ? 0 : it->second);
  };
  run.ran = true;
  run.cost = r.cost;
  run.edges = r.added_edges.size();
  run.bb_nodes = r.bb_nodes;
  run.pushes = diff("ilp.flow_pushes");
  run.relabels = diff("ilp.flow_relabels");
  run.price_refines = diff("ilp.flow_price_refines");
  run.arcs_fixed = diff("ilp.flow_arcs_fixed");
  run.work = cost_scaling ? run.pushes + run.relabels
                          : diff("ilp.flow_ssp_work");
  return run;
}

}  // namespace

int main() {
  bench::BenchReport report("augment_scaling");
  const char* ssp_max_env = std::getenv("FTRSN_SCALE_SSP_MAX");
  const long long ssp_max = ssp_max_env ? std::atoll(ssp_max_env) : 20000;

  std::printf("Degree-cover augmentation at synthetic scale "
              "(cost-scaling vs SSP oracle)\n");
  bench::rule('-', 112);
  std::printf("%-10s %9s %10s %10s %9s %11s %12s %12s %8s\n", "elements",
              "vertices", "arcs", "cost", "cs_secs", "cs_work", "ssp_work",
              "ssp_secs", "ratio");
  bench::rule('-', 112);

  std::string rows;
  double largest_ratio = 0;
  long long largest_common = 0;
  for (const long long target : scale_targets()) {
    gen::ScaleOptions sopt;
    sopt.base = "u226";
    sopt.target_elements = target;
    const gen::ScaledSoc scaled = gen::scale_soc(sopt);
    const Rsn rsn = itc02::generate_sib_rsn(scaled.soc);
    const DataflowGraph g = DataflowGraph::from_rsn(rsn);
    AugmentOptions count_opt;
    const std::size_t candidates = potential_edges(g, count_opt).size();

    const EngineRun cs = run_engine(g, /*cost_scaling=*/true);
    EngineRun ssp;
    if (target <= ssp_max) ssp = run_engine(g, /*cost_scaling=*/false);

    const double ratio =
        ssp.ran && cs.work > 0
            ? static_cast<double>(ssp.work) / static_cast<double>(cs.work)
            : 0;
    if (ssp.ran) {
      // Both engines must agree on the optimum (differential contract).
      FTRSN_CHECK_MSG(ssp.cost == cs.cost,
                      strprintf("engine cost mismatch at %lld elements: "
                                "ssp %lld vs scaling %lld",
                                target, ssp.cost, cs.cost));
      if (scaled.elements >= largest_common) {
        largest_common = scaled.elements;
        largest_ratio = ratio;
      }
    }

    std::printf("%-10lld %9zu %10zu %10lld %9.2f %11llu %12llu %12.2f %8.1f\n",
                scaled.elements, g.num_vertices(), candidates, cs.cost,
                cs.seconds, cs.work, ssp.work, ssp.seconds, ratio);
    rows += strprintf(
        "%s\n    {\"target\": %lld, \"elements\": %lld, \"replicas\": %d, "
        "\"vertices\": %zu, \"candidates\": %zu, \"bits\": %lld, "
        "\"cost\": %lld, \"edges\": %zu, \"bb_nodes\": %d, "
        "\"cs_seconds\": %.4f, \"cs_pushes\": %llu, \"cs_relabels\": %llu, "
        "\"cs_price_refines\": %llu, \"cs_arcs_fixed\": %llu, "
        "\"ssp_ran\": %s, \"ssp_seconds\": %.4f, \"ssp_work\": %llu, "
        "\"cost_match\": %s, \"work_ratio\": %.3f}",
        rows.empty() ? "" : ",", target, scaled.elements, scaled.replicas,
        g.num_vertices(), candidates, scaled.bits, cs.cost, cs.edges,
        cs.bb_nodes, cs.seconds, cs.pushes, cs.relabels, cs.price_refines,
        cs.arcs_fixed, ssp.ran ? "true" : "false", ssp.seconds, ssp.work,
        ssp.ran ? (ssp.cost == cs.cost ? "true" : "false") : "null", ratio);
  }
  bench::rule('-', 112);
  std::printf("work ratio on largest common instance (%lld elements): %.1fx\n",
              largest_common, largest_ratio);

  report.add("instances", "[" + rows + "\n  ]");
  report.add_count("largest_common_elements", largest_common);
  report.add_number("work_ratio_largest_common", largest_ratio);
  return report.write() ? 0 : 1;
}
