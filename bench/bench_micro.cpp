// Micro-benchmarks of the substrates (google-benchmark): CDCL SAT, CSU
// simulation, max-flow connectivity checks, the fixpoint accessibility
// analyzer, min-cost-flow degree covering, and the full synthesis.
#include <benchmark/benchmark.h>

#include "augment/augment.hpp"
#include "bench_util.hpp"
#include "fault/accessibility.hpp"
#include "fault/metric.hpp"
#include "graph/dataflow.hpp"
#include "ilp/mincost_flow.hpp"
#include "itc02/itc02.hpp"
#include "sat/solver.hpp"
#include "sim/csu_sim.hpp"
#include "synth/synth.hpp"

namespace ftrsn {
namespace {

const Rsn& u226() {
  static const Rsn rsn = itc02::generate_sib_rsn(*itc02::find_soc("u226"));
  return rsn;
}
const Rsn& u226_ft() {
  static const Rsn rsn = synthesize_fault_tolerant(u226()).rsn;
  return rsn;
}

void BM_SatPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    std::vector<std::vector<int>> p(static_cast<std::size_t>(holes) + 1);
    for (auto& row : p)
      for (int h = 0; h < holes; ++h) row.push_back(s.new_var());
    for (const auto& row : p) {
      std::vector<sat::Lit> clause;
      for (int v : row) clause.push_back(sat::Lit(v, false));
      s.add_clause(clause);
    }
    for (int h = 0; h < holes; ++h)
      for (std::size_t i = 0; i <= static_cast<std::size_t>(holes); ++i)
        for (std::size_t j = i + 1; j <= static_cast<std::size_t>(holes); ++j)
          s.add_binary(sat::Lit(p[i][static_cast<std::size_t>(h)], true),
                       sat::Lit(p[j][static_cast<std::size_t>(h)], true));
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(7);

void BM_CsuShiftThroughU226(benchmark::State& state) {
  CsuSimulator sim(u226());
  const int bits = sim.active_path_bits();
  for (auto _ : state) {
    const CsuResult r =
        sim.csu(std::vector<std::uint8_t>(static_cast<std::size_t>(bits), 1));
    benchmark::DoNotOptimize(r.out_bits.data());
  }
  state.SetItemsProcessed(state.iterations() * bits);
}
BENCHMARK(BM_CsuShiftThroughU226);

void BM_VertexDisjointPaths(benchmark::State& state) {
  const DataflowGraph g = DataflowGraph::from_rsn(u226_ft());
  const NodeId root = g.roots().front();
  for (auto _ : state) {
    int total = 0;
    for (NodeId v = 0; v < g.num_vertices(); v += 7)
      total += g.vertex_disjoint_paths(root, v, 2);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_VertexDisjointPaths);

void BM_AccessAnalyzerPerFault(benchmark::State& state) {
  const Rsn& rsn = u226_ft();
  const AccessAnalyzer analyzer(rsn);
  const auto faults = enumerate_faults(rsn);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.accessible_under(&faults[i]));
    i = (i + 13) % faults.size();
  }
}
BENCHMARK(BM_AccessAnalyzerPerFault);

void BM_MetricU226Original(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(compute_fault_tolerance(u226()));
}
BENCHMARK(BM_MetricU226Original);

void BM_DegreeCover(benchmark::State& state) {
  const DataflowGraph g = DataflowGraph::from_rsn(u226());
  AugmentOptions opt;
  opt.spof_repair = false;
  for (auto _ : state)
    benchmark::DoNotOptimize(augment_connectivity(g, opt));
}
BENCHMARK(BM_DegreeCover);

void BM_FullSynthesisU226(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(synthesize_fault_tolerant(u226()));
}
BENCHMARK(BM_FullSynthesisU226);

}  // namespace
}  // namespace ftrsn

// Expanded BENCHMARK_MAIN(): identical google-benchmark behaviour, plus
// the shared BENCH_micro.json envelope (timings stay on stdout; the
// envelope records run metadata and the process obs counters).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ftrsn::bench::BenchReport report("micro");
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report.add_count("benchmarks_run", static_cast<long long>(ran));
  return report.write() ? 0 : 1;
}
