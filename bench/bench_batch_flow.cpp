// Batch flow runner benchmark: serial 13-SoC Table-I sweep vs the sharded
// BatchRunner (core/batch.hpp) at 1/2/8 threads.  Emits
// BENCH_batch_flow.json with the wall clocks, speedups and a strict
// per-SoC aggregates-identical flag: every metric aggregate (original and
// hardened, including the worst-fault tie-breaks), the augmentation cost
// and the hardened network stats are compared bitwise against the serial
// single-threaded sweep.
//
// On a 1-core host the sharded runs measure scheduling overhead only (the
// speedup column sits near 1.0); the aggregates_identical flags are the
// part that must hold everywhere.  hardware_threads in the envelope
// records which case this file was produced under.
//
//   FTRSN_SOCS=<comma list>   SoC subset (default: all 13)
//   FTRSN_BENCH_OUT=<path>    output path (default BENCH_batch_flow.json)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/batch.hpp"

using namespace ftrsn;

namespace {

bool metrics_identical(const FaultToleranceReport& a,
                       const FaultToleranceReport& b) {
  return a.num_faults == b.num_faults &&
         a.counted_segments == b.counted_segments &&
         a.counted_bits == b.counted_bits && a.seg_worst == b.seg_worst &&
         a.seg_avg == b.seg_avg && a.bit_worst == b.bit_worst &&
         a.bit_avg == b.bit_avg &&
         a.worst_fault_index == b.worst_fault_index;
}

bool flows_identical(const FlowResult& a, const FlowResult& b) {
  if (a.original_metric.has_value() != b.original_metric.has_value() ||
      a.hardened_metric.has_value() != b.hardened_metric.has_value())
    return false;
  if (a.original_metric &&
      !metrics_identical(*a.original_metric, *b.original_metric))
    return false;
  if (a.hardened_metric &&
      !metrics_identical(*a.hardened_metric, *b.hardened_metric))
    return false;
  return a.augment_cost == b.augment_cost &&
         a.augment_edges == b.augment_edges &&
         a.hardened_stats.segments == b.hardened_stats.segments &&
         a.hardened_stats.muxes == b.hardened_stats.muxes &&
         a.hardened_stats.bits == b.hardened_stats.bits;
}

}  // namespace

int main() {
  bench::BenchReport report("batch_flow");

  std::vector<std::string> names;
  for (const auto& soc : bench::selected_socs()) names.push_back(soc.name);

  // Serial baseline: the pre-batch sweep — one flow after another, one
  // metric thread, no shared pool.
  std::printf("serial baseline (%zu SoCs)\n", names.size());
  FlowOptions serial_opt;
  serial_opt.metric_threads = 1;
  std::vector<FlowResult> serial;
  const auto t_serial = std::chrono::steady_clock::now();
  for (const std::string& name : names) {
    serial.push_back(run_soc_flow(name, serial_opt));
    std::printf("  %-8s synth %6.2fs metric %6.2fs\n", name.c_str(),
                serial.back().synth_seconds, serial.back().metric_seconds);
  }
  const double serial_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_serial)
          .count();
  std::printf("serial: %.2fs\n\n", serial_seconds);

  std::string runs_json;
  for (const int threads : {1, 2, 8}) {
    BatchOptions bopt;
    bopt.threads = threads;
    BatchRunner runner(bopt);
    const BatchResult batch = runner.run_soc_flows(names);
    bool all_identical = true;
    std::string socs_json;
    for (std::size_t i = 0; i < names.size(); ++i) {
      const bool identical = flows_identical(serial[i], batch.flows[i]);
      all_identical = all_identical && identical;
      socs_json += strprintf(
          "%s\n        {\"soc\": \"%s\", \"identical\": %s}",
          socs_json.empty() ? "" : ",", names[i].c_str(),
          identical ? "true" : "false");
    }
    const double speedup =
        batch.wall_seconds > 0.0 ? serial_seconds / batch.wall_seconds : 0.0;
    std::printf("batch t=%d  %8.2fs  speedup %.2fx  %s\n", threads,
                batch.wall_seconds, speedup,
                all_identical ? "identical" : "MISMATCH");
    runs_json += strprintf(
        "%s\n    {\"threads\": %d, \"seconds\": %.4f, \"speedup\": %.2f, "
        "\"aggregates_identical\": %s,\n      \"socs\": [%s\n      ]}",
        runs_json.empty() ? "" : ",", threads, batch.wall_seconds, speedup,
        all_identical ? "true" : "false", socs_json.c_str());
  }

  std::string socs_list;
  for (const std::string& name : names)
    socs_list += strprintf("%s\"%s\"", socs_list.empty() ? "" : ", ",
                           name.c_str());
  report.add("socs", "[" + socs_list + "]");
  report.add_number("serial_seconds", serial_seconds);
  report.add("runs", "[" + runs_json + "\n  ]");
  bench::print_histograms();
  return report.write() ? 0 : 1;
}
