// Reproduces the accessibility columns of Table I: worst-case and average
// fraction of accessible scan bits and segments under all single stuck-at
// faults, for the original SIB-based RSNs and for the synthesized
// fault-tolerant RSNs.
//
// The 13 SoC flows are independent, so the sweep runs on the sharded
// BatchRunner (core/batch.hpp): whole networks fan out across one shared
// pool and each network's fault-class loop nests inside it.  Row printing
// happens after the batch in input order, and the engine's serial fold
// keeps every number bit-identical to the serial sweep at any pool size.
//
// Expected shapes (see EXPERIMENTS.md):
//  * original RSNs: worst = 0.00 everywhere (a fault on the serial trunk
//    disconnects the whole network);
//  * fault-tolerant RSNs: worst-case segments ~= all-but-one; worst-case
//    bits matches the paper by construction of the dominant chain; averages
//    > 0.99.
//
// FTRSN_SOCS=<comma list> restricts the run (the full set takes minutes).
// FTRSN_BATCH_THREADS sizes the shared pool (default: hardware).
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "core/batch.hpp"

using namespace ftrsn;

int main() {
  bench::BenchReport report("table1_accessibility");

  std::vector<std::string> names;
  for (const auto& soc : bench::selected_socs()) names.push_back(soc.name);
  BatchOptions bopt;
  if (const char* env = std::getenv("FTRSN_BATCH_THREADS"))
    bopt.threads = std::atoi(env);
  BatchRunner runner(bopt);
  const BatchResult batch = runner.run_soc_flows(names);

  std::string rows;
  std::printf(
      "Table I — accessibility under single stuck-at faults "
      "(measured | paper)\n");
  bench::rule('-', 132);
  std::printf("%-9s | %-33s | %-33s | %-10s\n", "",
              "SIB-RSN  bits worst/avg  seg worst/avg",
              "FT-RSN   bits worst/avg  seg worst/avg", "time");
  bench::rule('-', 132);
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& row = bench::paper_row(names[i]);
    const FlowResult& r = batch.flows[i];
    const auto& o = *r.original_metric;
    const auto& h = *r.hardened_metric;
    std::printf(
        "%-9s | %.2f|%.2f %.3f|%.3f  %.2f|%.2f %.3f|%.3f | "
        "%.2f|%.2f %.4f|%.3f  %.3f|%.3f %.4f|%.3f | %5.1fs+%5.1fs\n",
        names[i].c_str(),
        o.bit_worst, row.sib_bits_worst, o.bit_avg, row.sib_bits_avg,
        o.seg_worst, row.sib_seg_worst, o.seg_avg, row.sib_seg_avg,
        h.bit_worst, row.ft_bits_worst, h.bit_avg, row.ft_bits_avg,
        h.seg_worst, row.ft_seg_worst, h.seg_avg, row.ft_seg_avg,
        r.synth_seconds, r.metric_seconds);
    rows += strprintf(
        "%s\n    {\"soc\": \"%s\", "
        "\"orig\": {\"bit_worst\": %.4f, \"bit_avg\": %.5f, "
        "\"seg_worst\": %.4f, \"seg_avg\": %.5f}, "
        "\"ft\": {\"bit_worst\": %.4f, \"bit_avg\": %.5f, "
        "\"seg_worst\": %.4f, \"seg_avg\": %.5f}, "
        "\"synth_seconds\": %.2f, \"metric_seconds\": %.2f}",
        rows.empty() ? "" : ",", names[i].c_str(), o.bit_worst, o.bit_avg,
        o.seg_worst, o.seg_avg, h.bit_worst, h.bit_avg, h.seg_worst,
        h.seg_avg, r.synth_seconds, r.metric_seconds);
  }
  bench::rule('-', 132);
  std::printf(
      "column format: measured|paper.  SIB-RSN worst must be 0.00; FT-RSN\n"
      "bit worst tracks the paper (dominant-chain calibration); averages\n"
      "land above 0.99 as in the paper.\n");
  std::printf("sweep: %zu SoCs on %d threads in %.2fs\n", names.size(),
              batch.threads, batch.wall_seconds);
  report.add("socs", "[" + rows + "\n  ]");
  report.add_count("batch_threads", batch.threads);
  report.add_number("batch_wall_seconds", batch.wall_seconds);
  return report.write() ? 0 : 1;
}
