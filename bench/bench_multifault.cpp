// Extension beyond the paper: double-fault tolerance.
//
// The paper synthesizes for *single* stuck-at faults.  This bench samples
// random pairs of simultaneous faults and evaluates the accessible segment
// fraction of the original and fault-tolerant RSNs — quantifying how much
// of the hardening survives a second fault (the skip shingles were sized
// for one bypass per chain neighbourhood, so adjacent double faults can
// defeat them).
//
// FTRSN_SOCS selects SoCs (default u226,x1331); FTRSN_PAIRS the sample
// count (default 400).
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "fault/metric.hpp"
#include "fault/metric_engine.hpp"
#include "synth/synth.hpp"

using namespace ftrsn;

namespace {

struct PairStats {
  double worst = 1.0;
  double avg = 0.0;
  double frac_total_loss = 0.0;  // pairs losing > 50 % of segments
};

PairStats sample_pairs(const Rsn& rsn, int pairs, Rng& rng) {
  const FaultMetricEngine engine(rsn);
  const auto scratch = engine.make_scratch();
  const auto faults = enumerate_faults(rsn);
  MetricOptions mopt;
  long long counted = 0;
  std::vector<bool> is_counted(rsn.num_nodes(), false);
  for (NodeId id = 0; id < rsn.num_nodes(); ++id)
    if (rsn.node(id).is_segment() &&
        metric_counts_role(rsn.node(id).role, mopt)) {
      is_counted[id] = true;
      ++counted;
    }
  PairStats stats;
  for (int k = 0; k < pairs; ++k) {
    std::vector<Fault> pair{
        faults[rng.next_below(faults.size())],
        faults[rng.next_below(faults.size())]};
    const auto acc = engine.accessible_under_set(pair, *scratch);
    long long alive = 0;
    for (NodeId id = 0; id < rsn.num_nodes(); ++id)
      if (is_counted[id] && acc[id]) ++alive;
    const double frac =
        static_cast<double>(alive) / static_cast<double>(counted);
    stats.worst = std::min(stats.worst, frac);
    stats.avg += frac;
    if (frac < 0.5) stats.frac_total_loss += 1.0;
  }
  stats.avg /= pairs;
  stats.frac_total_loss /= pairs;
  return stats;
}

}  // namespace

int main() {
  if (!std::getenv("FTRSN_SOCS")) setenv("FTRSN_SOCS", "u226,x1331", 0);
  const int pairs =
      std::getenv("FTRSN_PAIRS") ? atoi(std::getenv("FTRSN_PAIRS")) : 400;
  bench::BenchReport report("multifault");
  std::string rows;
  std::printf("Double-fault tolerance (extension; %d random fault pairs, "
              "segment fraction accessible)\n",
              pairs);
  bench::rule('-', 108);
  std::printf("%-9s | %-34s | %-34s\n", "",
              "original: worst   avg   >50%-loss",
              "fault-tolerant: worst   avg   >50%-loss");
  bench::rule('-', 108);
  Rng rng(0xD0B1E);
  for (const auto& soc : bench::selected_socs()) {
    const Rsn original = itc02::generate_sib_rsn(soc);
    const Rsn ft = synthesize_fault_tolerant(original).rsn;
    const PairStats o = sample_pairs(original, pairs, rng);
    const PairStats h = sample_pairs(ft, pairs, rng);
    std::printf("%-9s |        %.3f  %.3f      %4.1f%%     |        %.3f  "
                "%.3f      %4.1f%%\n",
                soc.name.c_str(), o.worst, o.avg, 100.0 * o.frac_total_loss,
                h.worst, h.avg, 100.0 * h.frac_total_loss);
    rows += strprintf(
        "%s\n    {\"soc\": \"%s\", \"orig_worst\": %.4f, \"orig_avg\": %.4f, "
        "\"orig_loss_frac\": %.4f, \"ft_worst\": %.4f, \"ft_avg\": %.4f, "
        "\"ft_loss_frac\": %.4f}",
        rows.empty() ? "" : ",", soc.name.c_str(), o.worst, o.avg,
        o.frac_total_loss, h.worst, h.avg, h.frac_total_loss);
  }
  bench::rule('-', 108);
  std::printf(
      "reading: the single-fault synthesis still absorbs most double faults\n"
      "(average stays near 1.0 and catastrophic pairs become rare), but the\n"
      "worst pair can defeat a shingle and its neighbour — full double-fault\n"
      "tolerance would need 3-wide skips, exactly the generalization the\n"
      "paper leaves open.\n");
  report.add_count("pairs", pairs);
  report.add("socs", "[" + rows + "\n  ]");
  return report.write() ? 0 : 1;
}
