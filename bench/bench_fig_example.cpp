// Reproduces the running example of the paper:
//  * Fig. 2 — the example RSN with segments A, B, C, D and its reset-time
//    active scan path (A, B, D);
//  * Fig. 3 — the scan segment interface exercised by a CSU operation;
//  * Fig. 4 — the potential edge set and the minimal augmenting edge set
//    computed by the ILP (printed as an edge list and as DOT);
//  * Fig. 5 — the hardened select logic in the vicinity of segment B.
#include <cstdio>

#include "augment/augment.hpp"
#include "bench_util.hpp"
#include "graph/dataflow.hpp"
#include "sim/csu_sim.hpp"
#include "synth/synth.hpp"

using namespace ftrsn;

int main() {
  bench::BenchReport report("fig_example");
  const Rsn rsn = make_example_rsn();
  const auto names = rsn.node_names();

  std::printf("Fig. 2 — example RSN (A, B, C, D)\n");
  bench::rule();
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    switch (n.kind) {
      case NodeKind::kPrimaryIn:
        std::printf("  scan-in   %s\n", n.name.c_str());
        break;
      case NodeKind::kPrimaryOut:
        std::printf("  scan-out  %s <- %s\n", n.name.c_str(),
                    names[n.scan_in].c_str());
        break;
      case NodeKind::kSegment:
        std::printf("  segment   %s (%d bits) <- %s\n", n.name.c_str(),
                    n.length, names[n.scan_in].c_str());
        break;
      case NodeKind::kMux:
        std::printf("  scan mux  %s (in0=%s, in1=%s, addr=%s)\n",
                    n.name.c_str(), names[n.mux_in[0]].c_str(),
                    names[n.mux_in[1]].c_str(),
                    rsn.ctrl().to_string(n.addr, names).c_str());
        break;
    }
  }
  CsuSimulator sim(rsn);
  std::printf("  active path at reset:");
  for (NodeId seg : sim.active_path()) std::printf(" %s", names[seg].c_str());
  std::printf("  (%d bits)\n\n", sim.active_path_bits());

  std::printf("Fig. 3 — CSU operation through the active path\n");
  bench::rule();
  sim.set_data_in(2 /*B*/, {1, 0, 1});
  const CsuResult csu = sim.csu(std::vector<std::uint8_t>(7, 0));
  std::printf("  capture/shift/update over %d bits; B's captured data seen"
              " in the out-stream:", csu.path_bits);
  for (std::uint8_t b : csu.out_bits) std::printf(" %d", int(b));
  std::printf("\n\n");

  const DataflowGraph g = DataflowGraph::from_rsn(rsn);
  AugmentOptions aopt;
  aopt.window = 0;  // full potential edge set E_P as in the paper
  aopt.spof_repair = false;
  std::printf("Fig. 4 — potential edges E_P (level-forward) and the minimal "
              "augmenting edge set\n");
  bench::rule();
  const auto potentials = potential_edges(g, aopt);
  std::printf("  |V| = %zu, |E| = %zu, |E_P \\ E| = %zu\n", g.num_vertices(),
              g.num_edges(), potentials.size());
  const AugmentResult degree_only = augment_connectivity(g, aopt);
  std::printf("  ILP solution (degree constraints, cost %lld):",
              degree_only.cost);
  for (const DfEdge& e : degree_only.added_edges)
    std::printf(" %s->%s", names[e.from].c_str(), names[e.to].c_str());
  std::printf("\n");
  AugmentOptions full = aopt;
  full.spof_repair = true;
  const AugmentResult hardened = augment_connectivity(g, full);
  std::printf("  with backbone-skip hardening (cost %lld):", hardened.cost);
  for (const DfEdge& e : hardened.added_edges)
    std::printf(" %s->%s", names[e.from].c_str(), names[e.to].c_str());
  std::printf("\n  DOT (original solid, augmenting dashed):\n%s\n",
              g.to_dot(names, hardened.added_edges).c_str());

  std::printf("Fig. 5 — hardened select logic in the vicinity of B\n");
  bench::rule();
  const SynthResult synth = synthesize_fault_tolerant(rsn);
  const auto ft_names = synth.rsn.node_names();
  for (NodeId id = 0; id < synth.rsn.num_nodes(); ++id) {
    const RsnNode& n = synth.rsn.node(id);
    if (!n.is_segment() || n.name != "B") continue;
    std::printf("  Select(B) = %s\n",
                synth.rsn.ctrl().to_string(n.select, ft_names, 8).c_str());
  }
  std::printf(
      "  (paper: Select(B) = (Select(D) & !a) | (Select(C) & !b); the\n"
      "   synthesized form is the same OR-of-successor-terms structure,\n"
      "   duplicated for selective hardening)\n");
  report.add_count("vertices", static_cast<long long>(g.num_vertices()));
  report.add_count("potential_edges", static_cast<long long>(potentials.size()));
  report.add_count("degree_only_cost", degree_only.cost);
  report.add_count("hardened_cost", hardened.cost);
  report.add_count("added_edges",
                   static_cast<long long>(hardened.added_edges.size()));
  return report.write() ? 0 : 1;
}
