// Serve daemon benchmark: drives one in-process ServeService (the exact
// object behind `rsn_tool serve`) through four phases and emits
// BENCH_serve.json:
//
//   1. storm    — a skewed closed-loop load (FTRSN_SERVE_REQUESTS requests
//                 from FTRSN_SERVE_CLIENTS client threads, Zipf-weighted
//                 over ~14 distinct network/op/options combos on three
//                 ITC'02 SoCs) measuring the hit rate and the client-side
//                 p50/p99 request latency;
//   2. coalesce — a barrier of identical requests on a fresh key held in
//                 flight via the debug_sleep_ms hook, asserting
//                 single-flight coalescing on the CacheStats delta;
//   3. eviction — a dedicated tiny-budget service fed distinct networks
//                 until the LRU evicts;
//   4. repeat   — every storm combo replayed against a *fresh* service,
//                 asserting the warm (cached) result blob is byte-identical
//                 to the cold recomputation.
//
// All pass/fail signals are hardware-independent (cache counters and byte
// comparisons); the latency percentiles are the only wall-clock numbers
// and are reported, not asserted.  On a 1-core host the absolute latencies
// are inflated but the hit rate, coalescing and byte-identity are exactly
// what a many-core host produces.
//
//   FTRSN_SERVE_REQUESTS=N   storm request count (default 2000)
//   FTRSN_SERVE_CLIENTS=N    concurrent client threads (default 4)
//   FTRSN_BENCH_OUT=<path>   output path (default BENCH_serve.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "io/rsn_text.hpp"
#include "rsn/rsn.hpp"
#include "serve/service.hpp"

using namespace ftrsn;
using namespace ftrsn::serve;

namespace {

long long env_count(const char* name, long long fallback) {
  const char* env = std::getenv(name);
  return env && *env ? std::atoll(env) : fallback;
}

std::string soc_rsn_text(const char* name) {
  const auto soc = itc02::find_soc(name);
  FTRSN_CHECK_MSG(soc.has_value(), std::string("unknown SoC ") + name);
  return write_rsn_text(itc02::generate_sib_rsn(*soc));
}

/// First instrument segment name of the network — a valid `access` target.
std::string first_segment_name(const std::string& rsn_text) {
  const Rsn rsn = parse_rsn_text(rsn_text);
  for (NodeId id = 0; id < static_cast<NodeId>(rsn.num_nodes()); ++id)
    if (rsn.node(id).is_segment()) return rsn.node(id).name;
  FTRSN_CHECK_MSG(false, "network has no segment");
  __builtin_unreachable();
}

std::string request_line(const std::string& id, const std::string& op,
                         const std::string& rsn_text,
                         const std::string& options_json) {
  std::string line = "{\"id\":\"" + id + "\",\"op\":\"" + op + "\"";
  if (!rsn_text.empty())
    line += ",\"rsn\":\"" + obs::detail::json_escape(rsn_text) + "\"";
  if (!options_json.empty()) line += ",\"options\":" + options_json;
  return line + "}";
}

bool response_ok(const std::string& response) {
  return response.find("\"ok\":true") != std::string::npos;
}

/// Carves the rendered result blob out of a response envelope (everything
/// between `"result":` and `,"result_sha256":` — both rendered by the
/// service with this exact spelling).
std::string result_blob(const std::string& response) {
  const std::string open = "\"result\":";
  const std::string close = ",\"result_sha256\":";
  const auto a = response.find(open);
  const auto b = response.rfind(close);
  if (a == std::string::npos || b == std::string::npos || b <= a) return {};
  return response.substr(a + open.size(), b - a - open.size());
}

struct Combo {
  std::string name;
  std::string op;
  const std::string* rsn;
  std::string options;
};

}  // namespace

int main() {
  bench::BenchReport report("serve");

  const long long num_requests =
      std::max(1LL, env_count("FTRSN_SERVE_REQUESTS", 2000));
  const int num_clients = static_cast<int>(
      std::clamp(env_count("FTRSN_SERVE_CLIENTS", 4), 1LL, 64LL));

  const std::string u226 = soc_rsn_text("u226");
  const std::string d695 = soc_rsn_text("d695");
  const std::string g1023 = soc_rsn_text("g1023");
  const std::string target = first_segment_name(u226);

  // ~14 distinct cache keys.  Rank order = storm popularity (Zipf 1/rank),
  // so the cheap ops dominate the load the way an editor/CI client mixing
  // lint-on-save with occasional full metric runs would.
  std::vector<Combo> combos;
  for (const auto* soc : {&u226, &d695, &g1023}) {
    const char* tag = soc == &u226 ? "u226" : soc == &d695 ? "d695" : "g1023";
    combos.push_back({std::string("parse/") + tag, "parse", soc, ""});
    combos.push_back({std::string("lint/") + tag, "lint", soc, ""});
  }
  combos.push_back({"access/u226", "access", &u226,
                    "{\"target\":\"" + target + "\"}"});
  for (const auto* soc : {&u226, &d695, &g1023}) {
    const char* tag = soc == &u226 ? "u226" : soc == &d695 ? "d695" : "g1023";
    combos.push_back({std::string("metric/") + tag, "metric", soc, ""});
    combos.push_back({std::string("synth/") + tag, "synth", soc, ""});
  }
  combos.push_back({"metric/u226/dist", "metric", &u226,
                    "{\"distribution\":true}"});

  // Deterministic Zipf-skewed pick sequence shared by all client threads.
  std::vector<double> cumulative;
  double total = 0.0;
  for (std::size_t r = 0; r < combos.size(); ++r) {
    total += 1.0 / static_cast<double>(r + 1);
    cumulative.push_back(total);
  }
  std::vector<int> picks(static_cast<std::size_t>(num_requests));
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (auto& pick : picks) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u = total * static_cast<double>(state >> 11) /
                     static_cast<double>(1ULL << 53);
    pick = static_cast<int>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
  }

  ServeService service;
  std::printf("storm: %lld requests, %d clients, %zu distinct keys, "
              "%d service threads\n",
              num_requests, num_clients, combos.size(),
              service.num_threads());

  // --- phase 1: skewed request storm ---------------------------------------
  std::vector<std::vector<std::uint64_t>> lat_per_client(num_clients);
  std::vector<std::thread> clients;
  const auto t_storm = std::chrono::steady_clock::now();
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      auto& lat = lat_per_client[c];
      for (long long i = c; i < num_requests; i += num_clients) {
        const Combo& combo = combos[static_cast<std::size_t>(picks[i])];
        const std::string line = request_line(
            "s" + std::to_string(i), combo.op, *combo.rsn, combo.options);
        const auto t0 = std::chrono::steady_clock::now();
        const std::string response = service.handle_line(line);
        lat.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
        FTRSN_CHECK_MSG(response_ok(response),
                        "storm request failed: " + response);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double storm_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_storm)
          .count();

  std::vector<std::uint64_t> lat;
  for (const auto& part : lat_per_client)
    lat.insert(lat.end(), part.begin(), part.end());
  std::sort(lat.begin(), lat.end());
  const auto pct = [&](int p) {
    return lat.empty()
               ? std::uint64_t{0}
               : lat[std::min(lat.size() - 1, lat.size() * p / 100)];
  };
  const CacheStats storm_stats = service.cache_stats();
  const double hit_rate =
      static_cast<double>(storm_stats.hits) /
      static_cast<double>(std::max<std::uint64_t>(
          1, storm_stats.hits + storm_stats.misses));
  std::printf("storm: %.2fs  hits=%llu misses=%llu coalesced=%llu  "
              "hit_rate=%.3f  p50=%lluus p99=%lluus\n",
              storm_seconds,
              static_cast<unsigned long long>(storm_stats.hits),
              static_cast<unsigned long long>(storm_stats.misses),
              static_cast<unsigned long long>(storm_stats.coalesced),
              hit_rate, static_cast<unsigned long long>(pct(50)),
              static_cast<unsigned long long>(pct(99)));

  // --- phase 2: counter-asserted single-flight coalescing ------------------
  // A fresh key (chain network never seen by the storm) held in flight for
  // 250 ms via the debug hook; a barrier of identical requests lands while
  // the leader computes, so every follower coalesces onto its flight.
  const std::string chain = write_rsn_text(make_chain_rsn(8, 4));
  const std::uint64_t coalesced_before = service.cache_stats().coalesced;
  const int waiters = 4;
  std::vector<std::thread> herd;
  for (int c = 0; c < 1 + waiters; ++c) {
    herd.emplace_back([&] {
      const std::string response = service.handle_line(request_line(
          "herd", "metric", chain, "{\"debug_sleep_ms\":250}"));
      FTRSN_CHECK_MSG(response_ok(response),
                      "coalesce request failed: " + response);
    });
  }
  for (auto& t : herd) t.join();
  const std::uint64_t coalesced =
      service.cache_stats().coalesced - coalesced_before;
  std::printf("coalesce: %d identical requests -> coalesced=%llu\n",
              1 + waiters, static_cast<unsigned long long>(coalesced));
  FTRSN_CHECK_MSG(coalesced > 0, "no request coalesced");

  // --- phase 3: LRU eviction under a tiny byte budget ----------------------
  ServiceOptions tiny;
  tiny.cache.max_bytes = 16 << 10;
  std::uint64_t evictions = 0;
  {
    ServeService small(tiny);
    for (int n = 1; n <= 60; ++n) {
      const std::string text = write_rsn_text(make_chain_rsn(n, 3));
      const std::string response = small.handle_line(
          request_line("e" + std::to_string(n), "parse", text, ""));
      FTRSN_CHECK_MSG(response_ok(response),
                      "eviction request failed: " + response);
    }
    evictions = small.cache_stats().evictions;
    std::printf("eviction: 60 distinct networks under a %zu-byte budget -> "
                "evictions=%llu (resident: %llu entries, %llu bytes)\n",
                tiny.cache.max_bytes,
                static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(small.cache_stats().entries),
                static_cast<unsigned long long>(small.cache_stats().bytes));
    FTRSN_CHECK_MSG(evictions > 0, "tiny budget evicted nothing");
  }

  // --- phase 4: warm hits are byte-identical to a cold service -------------
  bool repeat_identical = true;
  {
    ServeService cold;
    for (const Combo& combo : combos) {
      const std::string line =
          request_line("r", combo.op, *combo.rsn, combo.options);
      const std::string warm = result_blob(service.handle_line(line));
      const std::string fresh = result_blob(cold.handle_line(line));
      const bool identical = !warm.empty() && warm == fresh;
      repeat_identical = repeat_identical && identical;
      if (!identical)
        std::printf("repeat MISMATCH: %s\n", combo.name.c_str());
    }
    std::printf("repeat: warm-vs-cold blobs %s over %zu combos\n",
                repeat_identical ? "byte-identical" : "MISMATCH",
                combos.size());
  }

  report.add_count("requests", num_requests);
  report.add_count("clients", num_clients);
  report.add_count("distinct_keys", static_cast<long long>(combos.size()));
  report.add(
      "storm",
      strprintf("{\"seconds\": %.4f, \"hits\": %llu, \"misses\": %llu, "
                "\"coalesced\": %llu, \"hit_rate\": %.4f, "
                "\"p50_us\": %llu, \"p99_us\": %llu, \"max_us\": %llu}",
                storm_seconds,
                static_cast<unsigned long long>(storm_stats.hits),
                static_cast<unsigned long long>(storm_stats.misses),
                static_cast<unsigned long long>(storm_stats.coalesced),
                hit_rate, static_cast<unsigned long long>(pct(50)),
                static_cast<unsigned long long>(pct(99)),
                static_cast<unsigned long long>(lat.empty() ? 0
                                                            : lat.back())));
  report.add("coalesce",
             strprintf("{\"requests\": %d, \"coalesced\": %llu}", 1 + waiters,
                       static_cast<unsigned long long>(coalesced)));
  report.add("eviction",
             strprintf("{\"networks\": 60, \"budget_bytes\": %zu, "
                       "\"evictions\": %llu}",
                       tiny.cache.max_bytes,
                       static_cast<unsigned long long>(evictions)));
  report.add_flag("repeat_identical", repeat_identical);
  bench::print_histograms("serve.");
  if (!report.write()) return 1;
  return repeat_identical && hit_rate > 0.5 ? 0 : 1;
}
