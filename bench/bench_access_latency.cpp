// Access latency before/after fault-tolerant synthesis.
//
// Paper §IV: "Since all scan paths of the original RSN are still
// configurable in the fault-tolerant RSN, the number of cycles to access a
// scan segment in an active scan path is not increased by the synthesis."
// Our realization splices the 1-bit address registers of the augmenting
// muxes *into* the scan chains (they must be scan-writable somewhere), so
// active paths grow by the registers they traverse.  This bench quantifies
// that honest deviation: total shift cycles of the hierarchical-opening
// access plan per segment, original vs. fault-tolerant, averaged over all
// original segments.
//
// FTRSN_SOCS selects SoCs (default u226,x1331,q12710,d695).
#include <cstdio>
#include <cstdlib>

#include "access/planner.hpp"
#include "bench_util.hpp"
#include "synth/synth.hpp"

using namespace ftrsn;

namespace {

struct Latency {
  double avg_cycles = 0.0;
  long long max_cycles = 0;
  double avg_ops = 0.0;
};

Latency measure_plans(const Rsn& rsn) {
  Latency lat;
  int count = 0;
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    if (!rsn.node(id).is_segment()) continue;
    const AccessPlan plan = plan_access(rsn, id);
    lat.avg_cycles += static_cast<double>(plan.shift_cycles());
    lat.avg_ops += static_cast<double>(plan.csu_streams.size());
    lat.max_cycles = std::max(lat.max_cycles, plan.shift_cycles());
    ++count;
  }
  if (count > 0) {
    lat.avg_cycles /= count;
    lat.avg_ops /= count;
  }
  return lat;
}

/// Active-path bits with every *SIB* register opened (detour address
/// registers stay at 0, i.e. the original topology): the longest original
/// scan path, plus whatever inline registers the synthesis spliced into it.
int full_open_bits(const Rsn& rsn) {
  CsuSimulator sim(rsn);
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    if (n.is_segment() && n.role == SegRole::kSibRegister)
      sim.poke_shadow(id, 0, true);
  }
  return sim.active_path_bits();
}

int reset_bits(const Rsn& rsn) {
  CsuSimulator sim(rsn);
  return sim.active_path_bits();
}

}  // namespace

int main() {
  if (!std::getenv("FTRSN_SOCS"))
    setenv("FTRSN_SOCS", "u226,x1331,q12710,d695", 0);
  bench::BenchReport report("access_latency");
  std::string rows;
  std::printf("Access latency: hierarchical-opening CSU plans on the original\n"
              "RSNs, and structural path-length overhead of the hardened RSNs\n");
  bench::rule('-', 110);
  std::printf("%-9s %22s %14s %18s %18s %14s\n", "SoC", "orig avg cycles (ops)",
              "orig max", "reset path FT/orig", "full-open FT/orig",
              "inline regs");
  bench::rule('-', 110);
  for (const auto& soc : bench::selected_socs()) {
    const Rsn original = itc02::generate_sib_rsn(soc);
    const SynthResult synth = synthesize_fault_tolerant(original);
    const Latency lo = measure_plans(original);
    const double reset_ratio = static_cast<double>(reset_bits(synth.rsn)) /
                               std::max(1, reset_bits(original));
    const double open_ratio = static_cast<double>(full_open_bits(synth.rsn)) /
                              std::max(1, full_open_bits(original));
    std::printf("%-9s %15.1f (%3.1f) %14lld %18.2f %18.3f %14d\n",
                soc.name.c_str(), lo.avg_cycles, lo.avg_ops, lo.max_cycles,
                reset_ratio, open_ratio, synth.stats.added_registers);
    rows += strprintf(
        "%s\n    {\"soc\": \"%s\", \"orig_avg_cycles\": %.1f, "
        "\"orig_avg_ops\": %.1f, \"orig_max_cycles\": %lld, "
        "\"reset_ratio\": %.4f, \"full_open_ratio\": %.4f, "
        "\"inline_registers\": %d}",
        rows.empty() ? "" : ",", soc.name.c_str(), lo.avg_cycles, lo.avg_ops,
        lo.max_cycles, reset_ratio, open_ratio, synth.stats.added_registers);
  }
  bench::rule('-', 110);
  std::printf(
      "paper: access cycles unchanged by the synthesis.  Our inline address\n"
      "registers lengthen the fully opened path by well under 1%% on real\n"
      "SoCs (they are 1-bit registers against multi-thousand-bit chains);\n"
      "the reset path grows more visibly because it contains only the 1-bit\n"
      "SIB registers.\n");
  report.add("socs", "[" + rows + "\n  ]");
  return report.write() ? 0 : 1;
}
