// Reproduces the §IV-B scaling claim: the paper's ILP solver finished in
// less than 8 minutes and 6.5 GB of RAM on the largest instance (p93791).
// Our flow-relaxation branch & bound solves every instance in seconds on a
// laptop core; this bench reports wall time, candidate-set sizes and
// branch & bound statistics per SoC.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "augment/augment.hpp"
#include "bench_util.hpp"
#include "gen/scale.hpp"
#include "graph/dataflow.hpp"
#include "synth/synth.hpp"

using namespace ftrsn;

int main() {
  bench::BenchReport report("ilp_scaling");
  std::string rows;
  std::printf("Connectivity augmentation scaling (paper: p93791 < 8 min, "
              "< 6.5 GB with a commercial ILP solver)\n");
  bench::rule('-', 110);
  std::printf("%-9s %9s %11s %11s %9s %9s %8s %10s %10s\n", "SoC", "|V|",
              "candidates", "edges", "skips", "cost", "bb", "cycles",
              "seconds");
  bench::rule('-', 110);
  for (const auto& soc : bench::selected_socs()) {
    const Rsn rsn = itc02::generate_sib_rsn(soc);
    const DataflowGraph g = DataflowGraph::from_rsn(rsn);
    // Same policy the synthesizer uses.
    SynthOptions synth_opt;
    const auto t0 = std::chrono::steady_clock::now();
    const SynthResult r = synthesize_fault_tolerant(rsn, synth_opt);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    AugmentOptions aopt;
    const auto candidates = potential_edges(g, aopt);
    std::printf("%-9s %9zu %11zu %11zu %9d %9lld %8d %10d %10.2f\n",
                soc.name.c_str(), g.num_vertices(), candidates.size(),
                r.augment.added_edges.size(), r.augment.spof_edges,
                r.augment.cost, r.augment.bb_nodes, r.augment.cycle_events,
                secs);
    rows += strprintf(
        "%s\n    {\"soc\": \"%s\", \"vertices\": %zu, \"candidates\": %zu, "
        "\"edges\": %zu, \"skips\": %d, \"cost\": %lld, \"bb_nodes\": %d, "
        "\"cycle_events\": %d, \"seconds\": %.2f}",
        rows.empty() ? "" : ",", soc.name.c_str(), g.num_vertices(),
        candidates.size(), r.augment.added_edges.size(), r.augment.spof_edges,
        r.augment.cost, r.augment.bb_nodes, r.augment.cycle_events, secs);
  }
  bench::rule('-', 110);
  report.add("socs", "[" + rows + "\n  ]");

  // Beyond Table I: synthetic-scale instances (gen/scale.hpp) solved with
  // the default cost-scaling flow engine.  Degree-cover augmentation only
  // (spof_repair off), so the row measures the LP the engine solves, not
  // the linear-time hardening pass.  FTRSN_ILP_SCALE_TARGETS overrides the
  // element-count list; bench_augment_scaling has the full engine duel.
  const char* scale_env = std::getenv("FTRSN_ILP_SCALE_TARGETS");
  std::string scaled_rows;
  std::printf("\nSynthetic-scale instances (degree-cover only)\n");
  bench::rule('-', 70);
  for (const std::string& piece :
       split(scale_env && *scale_env ? scale_env : "2000,10000", ',')) {
    gen::ScaleOptions sopt;
    sopt.base = "u226";
    sopt.target_elements = std::atoll(std::string(trim(piece)).c_str());
    const gen::ScaledSoc scaled = gen::scale_soc(sopt);
    const Rsn rsn = itc02::generate_sib_rsn(scaled.soc);
    const DataflowGraph g = DataflowGraph::from_rsn(rsn);
    AugmentOptions aopt;
    aopt.spof_repair = false;
    const auto t0 = std::chrono::steady_clock::now();
    const AugmentResult r = augment_connectivity(g, aopt);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("%-12lld elements %9zu vertices %9lld cost %8.2f s\n",
                scaled.elements, g.num_vertices(), r.cost, secs);
    scaled_rows += strprintf(
        "%s\n    {\"elements\": %lld, \"vertices\": %zu, \"edges\": %zu, "
        "\"cost\": %lld, \"bb_nodes\": %d, \"seconds\": %.2f}",
        scaled_rows.empty() ? "" : ",", scaled.elements, g.num_vertices(),
        r.added_edges.size(), r.cost, r.bb_nodes, secs);
  }
  bench::rule('-', 70);
  report.add("scaled", "[" + scaled_rows + "\n  ]");
  return report.write() ? 0 : 1;
}
