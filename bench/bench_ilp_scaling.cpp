// Reproduces the §IV-B scaling claim: the paper's ILP solver finished in
// less than 8 minutes and 6.5 GB of RAM on the largest instance (p93791).
// Our flow-relaxation branch & bound solves every instance in seconds on a
// laptop core; this bench reports wall time, candidate-set sizes and
// branch & bound statistics per SoC.
#include <chrono>
#include <cstdio>

#include "augment/augment.hpp"
#include "bench_util.hpp"
#include "graph/dataflow.hpp"
#include "synth/synth.hpp"

using namespace ftrsn;

int main() {
  bench::BenchReport report("ilp_scaling");
  std::string rows;
  std::printf("Connectivity augmentation scaling (paper: p93791 < 8 min, "
              "< 6.5 GB with a commercial ILP solver)\n");
  bench::rule('-', 110);
  std::printf("%-9s %9s %11s %11s %9s %9s %8s %10s %10s\n", "SoC", "|V|",
              "candidates", "edges", "skips", "cost", "bb", "cycles",
              "seconds");
  bench::rule('-', 110);
  for (const auto& soc : bench::selected_socs()) {
    const Rsn rsn = itc02::generate_sib_rsn(soc);
    const DataflowGraph g = DataflowGraph::from_rsn(rsn);
    // Same policy the synthesizer uses.
    SynthOptions synth_opt;
    const auto t0 = std::chrono::steady_clock::now();
    const SynthResult r = synthesize_fault_tolerant(rsn, synth_opt);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    AugmentOptions aopt;
    const auto candidates = potential_edges(g, aopt);
    std::printf("%-9s %9zu %11zu %11zu %9d %9lld %8d %10d %10.2f\n",
                soc.name.c_str(), g.num_vertices(), candidates.size(),
                r.augment.added_edges.size(), r.augment.spof_edges,
                r.augment.cost, r.augment.bb_nodes, r.augment.cycle_events,
                secs);
    rows += strprintf(
        "%s\n    {\"soc\": \"%s\", \"vertices\": %zu, \"candidates\": %zu, "
        "\"edges\": %zu, \"skips\": %d, \"cost\": %lld, \"bb_nodes\": %d, "
        "\"cycle_events\": %d, \"seconds\": %.2f}",
        rows.empty() ? "" : ",", soc.name.c_str(), g.num_vertices(),
        candidates.size(), r.augment.added_edges.size(), r.augment.spof_edges,
        r.augment.cost, r.augment.bb_nodes, r.augment.cycle_events, secs);
  }
  bench::rule('-', 110);
  report.add("socs", "[" + rows + "\n  ]");
  return report.write() ? 0 : 1;
}
