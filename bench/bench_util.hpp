// Shared helpers for the bench harness binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "itc02/itc02.hpp"
#include "obs/obs.hpp"
#include "util/common.hpp"

// Injected by bench/CMakeLists.txt (git rev-parse --short HEAD).
#ifndef FTRSN_GIT_SHA
#define FTRSN_GIT_SHA "unknown"
#endif

namespace ftrsn::bench {

/// SoC subset selection: FTRSN_SOCS="u226,d695" restricts a bench to the
/// listed SoCs (all 13 by default).  Used to keep smoke runs fast.
inline std::vector<itc02::Soc> selected_socs() {
  const char* env = std::getenv("FTRSN_SOCS");
  if (!env || !*env) return itc02::socs();
  std::vector<itc02::Soc> out;
  for (const std::string& name : split(env, ',')) {
    const auto soc = itc02::find_soc(std::string(trim(name)));
    FTRSN_CHECK_MSG(soc.has_value(), "unknown SoC in FTRSN_SOCS: " + name);
    out.push_back(*soc);
  }
  return out;
}

inline const itc02::TableRow& paper_row(const std::string& soc) {
  for (const auto& row : itc02::table1())
    if (row.soc == soc) return row;
  FTRSN_CHECK_MSG(false, "no Table I row for " + soc);
  __builtin_unreachable();
}

inline void rule(char c = '-', int n = 100) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

/// Prints one line per recorded obs histogram whose name starts with
/// `prefix` ("" = all): count and p50/p90/p99/max microseconds.
inline void print_histograms(std::string_view prefix = {}) {
  for (const auto& [name, h] : obs::histograms_snapshot()) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    std::printf(
        "hist %-26s count=%-9llu p50=%-8.0f p90=%-8.0f p99=%-8.0f max=%llu us\n",
        name.c_str(), static_cast<unsigned long long>(h.count), h.p50(),
        h.p90(), h.p99(), static_cast<unsigned long long>(h.max));
  }
}

/// Machine-readable result envelope shared by every bench binary
/// (schema "ftrsn-bench-1"):
///
///   { "schema": "ftrsn-bench-1", "bench": "<name>", "git_sha": "...",
///     "hardware_threads": N, "wall_seconds": X,
///     "obs_counters": { ... },          // process counters at write time
///     "histograms": { ... },            // non-empty obs histograms (p50..)
///     "mem": { ... },                   // current/peak RSS at write time
///     <payload members added via add_*> }
///
/// "histograms" and "mem" were added with obs report v2; all keys that
/// predate them are byte-compatible with the original envelope, and
/// "histograms" is omitted entirely when no histogram recorded anything.
///
/// Construct early in main() (wall_seconds is measured from construction),
/// add payload members, and call write() last.  The output path defaults
/// to BENCH_<name>.json in the working directory; FTRSN_BENCH_OUT
/// overrides it.
/// FTRSN_TRACE / FTRSN_REPORT (see obs::init_from_env) are honoured by
/// every bench through this class: when set, span recording is enabled at
/// construction and the trace / obs run report are written alongside the
/// envelope.
class BenchReport {
 public:
  explicit BenchReport(std::string bench)
      : bench_(std::move(bench)),
        env_(obs::init_from_env("BENCH_" + bench_)),
        t0_(std::chrono::steady_clock::now()) {}

  /// Adds one payload member; `json` must be fully rendered JSON.
  void add(const std::string& key, std::string json) {
    members_.emplace_back(key, std::move(json));
  }
  void add_count(const std::string& key, long long v) {
    add(key, strprintf("%lld", v));
  }
  void add_number(const std::string& key, double v) {
    add(key, strprintf("%.6g", v));
  }
  void add_flag(const std::string& key, bool v) {
    add(key, v ? "true" : "false");
  }
  void add_string(const std::string& key, const std::string& v) {
    add(key, "\"" + obs::detail::json_escape(v) + "\"");
  }

  std::string default_path() const {
    const char* env = std::getenv("FTRSN_BENCH_OUT");
    if (env && *env) return env;
    return "BENCH_" + bench_ + ".json";
  }

  bool write() const { return write(default_path()); }

  bool write(const std::string& path) const {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
    std::string json = "{\n";
    json += "  \"schema\": \"ftrsn-bench-1\",\n";
    json += "  \"bench\": \"" + obs::detail::json_escape(bench_) + "\",\n";
    json += strprintf("  \"git_sha\": \"%s\",\n", FTRSN_GIT_SHA);
    json += strprintf("  \"hardware_threads\": %u,\n",
                      std::thread::hardware_concurrency());
    json += strprintf("  \"wall_seconds\": %.4f,\n", wall);
    json += "  \"obs_counters\": {";
    bool first = true;
    for (const auto& [name, value] : obs::counters_snapshot()) {
      json += strprintf("%s\n    \"%s\": %llu", first ? "" : ",",
                        obs::detail::json_escape(name).c_str(),
                        static_cast<unsigned long long>(value));
      first = false;
    }
    json += first ? "},\n" : "\n  },\n";
    const auto hists = obs::histograms_snapshot();
    if (!hists.empty()) {
      json += "  \"histograms\": {";
      first = true;
      for (const auto& [name, h] : hists) {
        json += first ? "\n    " : ",\n    ";
        first = false;
        json += "\"" + obs::detail::json_escape(name) + "\": {\"count\": " +
                strprintf("%llu", static_cast<unsigned long long>(h.count)) +
                ", \"sum\": " +
                strprintf("%llu", static_cast<unsigned long long>(h.sum)) +
                ", \"max\": " +
                strprintf("%llu", static_cast<unsigned long long>(h.max)) +
                ", \"p50\": " + obs::detail::format_double(h.p50()) +
                ", \"p90\": " + obs::detail::format_double(h.p90()) +
                ", \"p99\": " + obs::detail::format_double(h.p99()) + "}";
      }
      json += "\n  },\n";
    }
    json += strprintf("  \"mem\": {\"current_rss_kb\": %ld, \"peak_rss_kb\": %ld},\n",
                      obs::detail::current_rss_kb(), obs::detail::peak_rss_kb());
    for (std::size_t i = 0; i < members_.size(); ++i) {
      json += "  \"" + obs::detail::json_escape(members_[i].first) +
              "\": " + members_[i].second;
      json += i + 1 < members_.size() ? ",\n" : "\n";
    }
    if (members_.empty()) json += "  \"payload\": {}\n";
    json += "}\n";
    if (!obs::write_file(path, json)) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    if (!env_.trace_path.empty() && obs::write_trace(env_.trace_path))
      std::printf("wrote %s\n", env_.trace_path.c_str());
    if (!env_.report_path.empty() && obs::write_report(env_.report_path))
      std::printf("wrote %s\n", env_.report_path.c_str());
    return true;
  }

 private:
  std::string bench_;
  obs::EnvConfig env_;
  std::chrono::steady_clock::time_point t0_;
  std::vector<std::pair<std::string, std::string>> members_;
};

}  // namespace ftrsn::bench
