// Shared helpers for the bench harness binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "itc02/itc02.hpp"
#include "util/common.hpp"

namespace ftrsn::bench {

/// SoC subset selection: FTRSN_SOCS="u226,d695" restricts a bench to the
/// listed SoCs (all 13 by default).  Used to keep smoke runs fast.
inline std::vector<itc02::Soc> selected_socs() {
  const char* env = std::getenv("FTRSN_SOCS");
  if (!env || !*env) return itc02::socs();
  std::vector<itc02::Soc> out;
  for (const std::string& name : split(env, ',')) {
    const auto soc = itc02::find_soc(std::string(trim(name)));
    FTRSN_CHECK_MSG(soc.has_value(), "unknown SoC in FTRSN_SOCS: " + name);
    out.push_back(*soc);
  }
  return out;
}

inline const itc02::TableRow& paper_row(const std::string& soc) {
  for (const auto& row : itc02::table1())
    if (row.soc == soc) return row;
  FTRSN_CHECK_MSG(false, "no Table I row for " + soc);
  __builtin_unreachable();
}

inline void rule(char c = '-', int n = 100) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace ftrsn::bench
