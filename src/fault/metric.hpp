// Fault-tolerance metric of an RSN (paper §III-A, §IV-B).
//
// For every single stuck-at-0/1 fault in the RSN's fault universe, the
// metric evaluates the fraction of scan segments (and of scan bits) that
// remain accessible, then aggregates the worst case and the average over
// all faults.
#pragma once

#include <cstddef>
#include <vector>

#include "fault/accessibility.hpp"
#include "fault/faults.hpp"
#include "rsn/rsn.hpp"

namespace ftrsn {

struct MetricOptions {
  /// Count SIB registers as scan segments (the paper's segment counts
  /// include them).
  bool count_sib_registers = true;
  /// Count control registers added by the fault-tolerant synthesis.  Off by
  /// default so that original and fault-tolerant RSNs are compared over the
  /// same segment population.
  bool count_address_registers = false;
  /// Record the per-fault accessibility distribution (for ablation plots).
  bool keep_distribution = false;
};

struct FaultToleranceReport {
  std::size_t num_faults = 0;
  std::size_t counted_segments = 0;
  long long counted_bits = 0;
  double seg_worst = 1.0, seg_avg = 1.0;
  double bit_worst = 1.0, bit_avg = 1.0;
  std::size_t worst_fault_index = 0;  ///< index into enumerate_faults()
  std::vector<double> seg_fraction;   ///< per fault, if keep_distribution
  std::vector<double> bit_fraction;
};

/// Evaluates the fault-tolerance metric of `rsn` over its complete single
/// stuck-at fault universe.
FaultToleranceReport compute_fault_tolerance(const Rsn& rsn,
                                             const MetricOptions& options = {});

/// Evaluates the metric over an explicit fault list (any order).  Polarity
/// reuse pairs faults by their exact site, not by list adjacency, so a
/// reordered or sampled fault list yields the same per-fault fractions as
/// the canonical enumeration.
FaultToleranceReport compute_fault_tolerance(const Rsn& rsn,
                                             const std::vector<Fault>& faults,
                                             const MetricOptions& options = {});

/// True if segment role `role` is counted under `options`.
bool metric_counts_role(SegRole role, const MetricOptions& options);

/// Canonical text serialization of a full metric sweep, used wherever a
/// report must be pinned or compared byte-exactly: the SHA-pinned golden
/// corpus (tests/test_corpus.cpp, tools/judge.sh) and the serve result
/// cache.  Hexfloat (%a) rendering is exact for doubles, so the text pins
/// the aggregates and the entire per-fault distribution bit for bit.  The
/// leading "ftrsn-corpus-v1" tag is part of the contract: changing any
/// byte of this format invalidates every pinned manifest digest.
std::string canonical_report_text(const std::string& name,
                                  const FaultToleranceReport& r);

/// SHA-256 hex digest of canonical_report_text(name, r) — the pin format
/// of tests/data/corpus/manifest.sha256.  Shared by the corpus judge and
/// the serve metric responses so the two can never drift.
std::string report_digest(const std::string& name,
                          const FaultToleranceReport& r);

/// Data-corruption faults are assessed once per site, under the stuck-at-0
/// polarity: the net carries a constant either way, and the metric has
/// always reported the sa0 analysis for both twins.  (The refined taint
/// model — a downstream register may latch the stuck constant — makes the
/// *raw* analysis polarity-sensitive, so the shared convention is what
/// keeps every fault-list order and both metric implementations
/// bit-identical.)  Shared by the legacy loop and FaultMetricEngine so
/// both collapse the same fault pairs.
bool fault_polarity_invariant(Forcing::Point p);

}  // namespace ftrsn
