// Fault-tolerance metric of an RSN (paper §III-A, §IV-B).
//
// For every single stuck-at-0/1 fault in the RSN's fault universe, the
// metric evaluates the fraction of scan segments (and of scan bits) that
// remain accessible, then aggregates the worst case and the average over
// all faults.
#pragma once

#include <cstddef>
#include <vector>

#include "fault/accessibility.hpp"
#include "fault/faults.hpp"
#include "rsn/rsn.hpp"

namespace ftrsn {

struct MetricOptions {
  /// Count SIB registers as scan segments (the paper's segment counts
  /// include them).
  bool count_sib_registers = true;
  /// Count control registers added by the fault-tolerant synthesis.  Off by
  /// default so that original and fault-tolerant RSNs are compared over the
  /// same segment population.
  bool count_address_registers = false;
  /// Record the per-fault accessibility distribution (for ablation plots).
  bool keep_distribution = false;
};

struct FaultToleranceReport {
  std::size_t num_faults = 0;
  std::size_t counted_segments = 0;
  long long counted_bits = 0;
  double seg_worst = 1.0, seg_avg = 1.0;
  double bit_worst = 1.0, bit_avg = 1.0;
  std::size_t worst_fault_index = 0;  ///< index into enumerate_faults()
  std::vector<double> seg_fraction;   ///< per fault, if keep_distribution
  std::vector<double> bit_fraction;
};

/// Evaluates the fault-tolerance metric of `rsn` over its complete single
/// stuck-at fault universe.
FaultToleranceReport compute_fault_tolerance(const Rsn& rsn,
                                             const MetricOptions& options = {});

/// True if segment role `role` is counted under `options`.
bool metric_counts_role(SegRole role, const MetricOptions& options);

}  // namespace ftrsn
