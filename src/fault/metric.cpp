#include "fault/metric.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/sha256.hpp"

namespace ftrsn {

bool metric_counts_role(SegRole role, const MetricOptions& options) {
  switch (role) {
    case SegRole::kInstrument:
    case SegRole::kOther:
      return true;
    case SegRole::kSibRegister:
      return options.count_sib_registers;
    case SegRole::kAddressRegister:
      return options.count_address_registers;
  }
  return true;
}

bool fault_polarity_invariant(Forcing::Point p) {
  switch (p) {
    case Forcing::Point::kSegmentIn:
    case Forcing::Point::kSegmentOut:
    case Forcing::Point::kMuxIn:
    case Forcing::Point::kMuxOut:
    case Forcing::Point::kPrimaryIn:
    case Forcing::Point::kPrimaryOut:
      return true;
    default:
      return false;
  }
}

namespace {

/// Pairing key for polarity reuse: the fault site, ignoring the stuck
/// value.  The previous implementation assumed the sa0 twin sat at `i - 1`
/// in the list (true for enumerate_faults, wrong for any reordered or
/// sampled list); keying by site makes the reuse order-independent.
struct FaultSite {
  std::uint8_t point;
  NodeId node;
  int index;
  CtrlRef ctrl;

  bool operator==(const FaultSite& o) const {
    return point == o.point && node == o.node && index == o.index &&
           ctrl == o.ctrl;
  }
};

struct FaultSiteHash {
  std::size_t operator()(const FaultSite& s) const {
    std::uint64_t h = 1469598103934665603ull;
    for (const std::uint64_t v :
         {static_cast<std::uint64_t>(s.point), static_cast<std::uint64_t>(s.node),
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.index)),
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.ctrl))}) {
      h ^= v;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

FaultToleranceReport compute_fault_tolerance(const Rsn& rsn,
                                             const std::vector<Fault>& faults,
                                             const MetricOptions& options) {
  const AccessAnalyzer analyzer(rsn);

  std::vector<bool> counted(rsn.num_nodes(), false);
  FaultToleranceReport report;
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    if (!n.is_segment() || !metric_counts_role(n.role, options)) continue;
    counted[id] = true;
    ++report.counted_segments;
    report.counted_bits += n.length;
  }
  FTRSN_CHECK_MSG(report.counted_segments > 0, "no segments to count");

  report.num_faults = faults.size();
  double seg_sum = 0.0, bit_sum = 0.0;
  report.seg_worst = 1.0;
  report.bit_worst = 1.0;

  std::unordered_map<FaultSite, std::pair<double, double>, FaultSiteHash>
      site_result;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Forcing& f = faults[i].forcing;
    double seg_frac, bit_frac;
    const bool pairable = fault_polarity_invariant(f.point);
    const FaultSite site{static_cast<std::uint8_t>(f.point), f.node, f.index,
                         f.ctrl};
    const auto it = pairable ? site_result.find(site) : site_result.end();
    if (it != site_result.end()) {
      seg_frac = it->second.first;
      bit_frac = it->second.second;
    } else {
      // Pairable sites are assessed under the stuck-at-0 polarity (the
      // refined taint model makes the raw analysis polarity-sensitive, so
      // order-independence requires a fixed convention; sa0 matches what
      // the canonical enumeration has always reported).
      Fault canon = faults[i];
      if (pairable) canon.forcing.value = false;
      const std::vector<bool> acc = analyzer.accessible_under(&canon);
      long long segs = 0, bits = 0;
      for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
        if (!counted[id] || !acc[id]) continue;
        ++segs;
        bits += rsn.node(id).length;
      }
      seg_frac = static_cast<double>(segs) /
                 static_cast<double>(report.counted_segments);
      bit_frac = static_cast<double>(bits) /
                 static_cast<double>(report.counted_bits);
      if (pairable) site_result.emplace(site, std::make_pair(seg_frac, bit_frac));
    }
    report.seg_fraction.push_back(seg_frac);
    report.bit_fraction.push_back(bit_frac);
    seg_sum += seg_frac;
    bit_sum += bit_frac;
    if (seg_frac < report.seg_worst ||
        (seg_frac == report.seg_worst && bit_frac < report.bit_worst)) {
      report.worst_fault_index = i;
    }
    report.seg_worst = std::min(report.seg_worst, seg_frac);
    report.bit_worst = std::min(report.bit_worst, bit_frac);
  }
  report.seg_avg = seg_sum / static_cast<double>(faults.size());
  report.bit_avg = bit_sum / static_cast<double>(faults.size());
  if (!options.keep_distribution) {
    report.seg_fraction.clear();
    report.bit_fraction.clear();
  }
  return report;
}

FaultToleranceReport compute_fault_tolerance(const Rsn& rsn,
                                             const MetricOptions& options) {
  return compute_fault_tolerance(rsn, enumerate_faults(rsn), options);
}

std::string canonical_report_text(const std::string& name,
                                  const FaultToleranceReport& r) {
  std::string out = "ftrsn-corpus-v1\n";
  out += strprintf("name %s\n", name.c_str());
  out += strprintf("faults %zu\n", r.num_faults);
  out += strprintf("counted %zu %lld\n", r.counted_segments, r.counted_bits);
  out += strprintf("agg %a %a %a %a\n", r.seg_worst, r.seg_avg, r.bit_worst,
                   r.bit_avg);
  out += strprintf("worst %zu\n", r.worst_fault_index);
  for (std::size_t i = 0; i < r.seg_fraction.size(); ++i)
    out += strprintf("%a %a\n", r.seg_fraction[i], r.bit_fraction[i]);
  return out;
}

std::string report_digest(const std::string& name,
                          const FaultToleranceReport& r) {
  return sha256_hex(canonical_report_text(name, r));
}

}  // namespace ftrsn
