#include "fault/metric.hpp"

#include <algorithm>

namespace ftrsn {

bool metric_counts_role(SegRole role, const MetricOptions& options) {
  switch (role) {
    case SegRole::kInstrument:
    case SegRole::kOther:
      return true;
    case SegRole::kSibRegister:
      return options.count_sib_registers;
    case SegRole::kAddressRegister:
      return options.count_address_registers;
  }
  return true;
}

namespace {

/// Data-corruption faults have identical analysis effects for both stuck-at
/// polarities: the net carries a constant either way.  Evaluating one
/// polarity and counting it twice halves the metric runtime without
/// changing any aggregate.
bool polarity_invariant(Forcing::Point p) {
  switch (p) {
    case Forcing::Point::kSegmentIn:
    case Forcing::Point::kSegmentOut:
    case Forcing::Point::kMuxIn:
    case Forcing::Point::kMuxOut:
    case Forcing::Point::kPrimaryIn:
    case Forcing::Point::kPrimaryOut:
      return true;
    default:
      return false;
  }
}

}  // namespace

FaultToleranceReport compute_fault_tolerance(const Rsn& rsn,
                                             const MetricOptions& options) {
  const std::vector<Fault> faults = enumerate_faults(rsn);
  const AccessAnalyzer analyzer(rsn);

  std::vector<bool> counted(rsn.num_nodes(), false);
  FaultToleranceReport report;
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    if (!n.is_segment() || !metric_counts_role(n.role, options)) continue;
    counted[id] = true;
    ++report.counted_segments;
    report.counted_bits += n.length;
  }
  FTRSN_CHECK_MSG(report.counted_segments > 0, "no segments to count");

  report.num_faults = faults.size();
  double seg_sum = 0.0, bit_sum = 0.0;
  report.seg_worst = 1.0;
  report.bit_worst = 1.0;

  for (std::size_t i = 0; i < faults.size(); ++i) {
    double seg_frac, bit_frac;
    // Stuck-at-0/1 pairs on pure data nets are enumerated adjacently
    // (add_site pushes sa0 then sa1); reuse the sa0 result for sa1.
    if (i > 0 && polarity_invariant(faults[i].forcing.point) &&
        faults[i].forcing.value) {
      seg_frac = report.seg_fraction.back();
      bit_frac = report.bit_fraction.back();
    } else {
      const std::vector<bool> acc = analyzer.accessible_under(&faults[i]);
      long long segs = 0, bits = 0;
      for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
        if (!counted[id] || !acc[id]) continue;
        ++segs;
        bits += rsn.node(id).length;
      }
      seg_frac = static_cast<double>(segs) /
                 static_cast<double>(report.counted_segments);
      bit_frac = static_cast<double>(bits) /
                 static_cast<double>(report.counted_bits);
    }
    report.seg_fraction.push_back(seg_frac);
    report.bit_fraction.push_back(bit_frac);
    seg_sum += seg_frac;
    bit_sum += bit_frac;
    if (seg_frac < report.seg_worst ||
        (seg_frac == report.seg_worst && bit_frac < report.bit_worst)) {
      report.worst_fault_index = i;
    }
    report.seg_worst = std::min(report.seg_worst, seg_frac);
    report.bit_worst = std::min(report.bit_worst, bit_frac);
  }
  report.seg_avg = seg_sum / static_cast<double>(faults.size());
  report.bit_avg = bit_sum / static_cast<double>(faults.size());
  if (!options.keep_distribution) {
    report.seg_fraction.clear();
    report.bit_fraction.clear();
  }
  return report;
}

}  // namespace ftrsn
