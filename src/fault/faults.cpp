#include "fault/faults.hpp"

#include <unordered_set>

namespace ftrsn {

namespace {

/// Collects every control expression node reachable from the refs used by
/// ports of the RSN (select / cap_dis / up_dis / mux address).
std::vector<CtrlRef> used_ctrl_nodes(const Rsn& rsn) {
  const CtrlPool& pool = rsn.ctrl();
  std::vector<bool> seen(pool.size(), false);
  std::vector<CtrlRef> stack;
  const auto push = [&](CtrlRef r) {
    if (r >= 0 && !seen[static_cast<std::size_t>(r)]) {
      seen[static_cast<std::size_t>(r)] = true;
      stack.push_back(r);
    }
  };
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    if (n.is_segment()) {
      push(n.select);
      push(n.cap_dis);
      push(n.up_dis);
    } else if (n.is_mux()) {
      push(n.addr);
    }
  }
  std::vector<CtrlRef> used;
  while (!stack.empty()) {
    const CtrlRef r = stack.back();
    stack.pop_back();
    used.push_back(r);
    const CtrlNode& n = pool.node(r);
    for (int i = 0; i < n.arity(); ++i) push(n.kid[i]);
  }
  return used;
}

Fault make_fault(Forcing::Point p, NodeId node, int index, int bit,
                 CtrlRef ctrl, bool value) {
  Fault f;
  f.forcing.point = p;
  f.forcing.node = node;
  f.forcing.index = index;
  f.forcing.bit = bit;
  f.forcing.ctrl = ctrl;
  f.forcing.value = value;
  return f;
}

void add_site(std::vector<Fault>& out, Forcing::Point p, NodeId node,
              int index = 0, CtrlRef ctrl = kCtrlInvalid) {
  out.push_back(make_fault(p, node, index, 0, ctrl, false));
  out.push_back(make_fault(p, node, index, 0, ctrl, true));
}

}  // namespace

std::vector<Fault> enumerate_faults(const Rsn& rsn) {
  std::vector<Fault> faults;
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    switch (n.kind) {
      case NodeKind::kPrimaryIn:
        add_site(faults, Forcing::Point::kPrimaryIn, id);
        break;
      case NodeKind::kPrimaryOut:
        add_site(faults, Forcing::Point::kPrimaryOut, id);
        break;
      case NodeKind::kSegment:
        add_site(faults, Forcing::Point::kSegmentIn, id);
        add_site(faults, Forcing::Point::kSegmentOut, id);
        break;
      case NodeKind::kMux: {
        add_site(faults, Forcing::Point::kMuxIn, id, 0);
        add_site(faults, Forcing::Point::kMuxIn, id, 1);
        add_site(faults, Forcing::Point::kMuxOut, id);
        // With TMR hardening the majority voter is folded into the mux's
        // address decoding, so the triplicated wires (enumerated as control
        // nets) are the address ports — a post-voter single point would
        // defeat §III-E-3 by construction.  Primary pins are global
        // control.  Plain (unhardened) addresses keep their port site.
        const CtrlOp op = rsn.ctrl().node(n.addr).op;
        if (op != CtrlOp::kMaj3 && op != CtrlOp::kPortSel &&
            op != CtrlOp::kConst)
          add_site(faults, Forcing::Point::kMuxAddr, id);
        break;
      }
    }
  }
  const CtrlPool& pool = rsn.ctrl();
  for (CtrlRef r : used_ctrl_nodes(rsn)) {
    const CtrlNode& n = pool.node(r);
    // Constants are not nets; the enable and port-select inputs are global
    // control, excluded as in the paper.  Voter outputs are mux-internal
    // (see the kMuxAddr note above); their triplicated inputs are the
    // fault sites.
    if (n.op == CtrlOp::kConst || n.op == CtrlOp::kEnable ||
        n.op == CtrlOp::kPortSel || n.op == CtrlOp::kMaj3)
      continue;
    add_site(faults, Forcing::Point::kCtrlNet, kInvalidNode, 0, r);
  }
  return faults;
}

std::size_t count_fault_sites(const Rsn& rsn) {
  return enumerate_faults(rsn).size() / 2;
}

std::string Fault::describe(const Rsn& rsn) const {
  const char* sa = forcing.value ? "sa1" : "sa0";
  const auto name = [&](NodeId id) {
    return id == kInvalidNode ? std::string("?") : rsn.node(id).name;
  };
  switch (forcing.point) {
    case Forcing::Point::kSegmentIn:
      return strprintf("%s.scan_in/%s", name(forcing.node).c_str(), sa);
    case Forcing::Point::kSegmentOut:
      return strprintf("%s.scan_out/%s", name(forcing.node).c_str(), sa);
    case Forcing::Point::kShadowReplica:
      return strprintf("%s.shadow[%d]{r%d}/%s", name(forcing.node).c_str(),
                       forcing.bit, forcing.index, sa);
    case Forcing::Point::kMuxIn:
      return strprintf("%s.in%d/%s", name(forcing.node).c_str(), forcing.index,
                       sa);
    case Forcing::Point::kMuxOut:
      return strprintf("%s.out/%s", name(forcing.node).c_str(), sa);
    case Forcing::Point::kMuxAddr:
      return strprintf("%s.addr/%s", name(forcing.node).c_str(), sa);
    case Forcing::Point::kCtrlNet:
      return strprintf("ctrl{%s}/%s",
                       rsn.ctrl().to_string(forcing.ctrl, rsn.node_names()).c_str(),
                       sa);
    case Forcing::Point::kPrimaryIn:
    case Forcing::Point::kPrimaryOut:
      return strprintf("%s/%s", name(forcing.node).c_str(), sa);
  }
  return "?";
}

}  // namespace ftrsn
