// Stuck-at fault universe of an RSN (paper §III-A).
//
// Faults are considered at all scan segment, register and multiplexer
// ports, at the primary scan ports, and at all control-logic nets (fanout
// stems and gate outputs).  Faults in global control signals (clock, reset,
// the primary enable) are excluded, as in the paper.
#pragma once

#include <string>
#include <vector>

#include "rsn/rsn.hpp"
#include "sim/csu_sim.hpp"

namespace ftrsn {

/// One stuck-at fault: a structural point forced to 0 or 1.  The forcing
/// representation is shared with the CSU simulator, so every fault in the
/// universe can be both *analyzed* (fault/accessibility.hpp) and
/// *simulated* (sim/csu_sim.hpp).
struct Fault {
  Forcing forcing;
  std::string describe(const Rsn& rsn) const;
};

/// Enumerates the single stuck-at fault universe of an RSN:
///  * scan-in and scan-out port of every scan segment (register ports);
///  * both data inputs, the output and the address port of every scan mux;
///  * every primary scan-in/scan-out port;
///  * every control expression node referenced by a select predicate or a
///    mux address: shadow-bit atoms (fanout stems) and gate outputs.
///    Constants and the global enable are excluded.
/// Every site yields two faults (stuck-at-0 and stuck-at-1).
std::vector<Fault> enumerate_faults(const Rsn& rsn);

/// Number of fault *sites* (half of enumerate_faults().size()).
std::size_t count_fault_sites(const Rsn& rsn);

}  // namespace ftrsn
