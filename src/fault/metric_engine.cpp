#include "fault/metric_engine.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstring>
#include <optional>
#include <unordered_map>

#include "obs/obs.hpp"
#include "util/common.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace ftrsn {

namespace {

constexpr std::uint8_t kCan0 = 1;
constexpr std::uint8_t kCan1 = 2;
constexpr std::uint8_t kCanBoth = kCan0 | kCan1;
constexpr int kMaxIterations = 256;  // mirrors the legacy fixpoint bound

inline bool bit_test(const std::vector<std::uint64_t>& w, std::size_t i) {
  return (w[i >> 6] >> (i & 63)) & 1;
}
inline void bit_set(std::vector<std::uint64_t>& w, std::size_t i) {
  w[i >> 6] |= std::uint64_t{1} << (i & 63);
}

/// Fault-equivalence class key: the static effect site of a fault.  Two
/// faults with equal keys produce identical analysis inputs (node_dead /
/// mux_pin / dead_mux_input / forced / taint cone), so one representative
/// decides the whole class.  `value` is wildcarded (-1) for
/// polarity-invariant points: a stuck data net carries a constant either
/// way, and the taint cone is determined by the site alone.
struct SiteKey {
  std::uint8_t point;
  NodeId node;
  std::int32_t index;
  CtrlRef ctrl;
  std::int32_t bit;
  std::int8_t value;  // -1 = both polarities equivalent

  bool operator==(const SiteKey& o) const {
    return point == o.point && node == o.node && index == o.index &&
           ctrl == o.ctrl && bit == o.bit && value == o.value;
  }
};

struct SiteKeyHash {
  std::size_t operator()(const SiteKey& k) const {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(k.point);
    mix(k.node);
    mix(static_cast<std::uint32_t>(k.index));
    mix(static_cast<std::uint32_t>(k.ctrl));
    mix(static_cast<std::uint32_t>(k.bit));
    mix(static_cast<std::uint8_t>(k.value));
    return static_cast<std::size_t>(h);
  }
};

SiteKey site_key(const Forcing& f) {
  SiteKey k;
  k.point = static_cast<std::uint8_t>(f.point);
  k.node = f.node;
  k.index = f.index;
  k.ctrl = f.ctrl;
  k.bit = f.bit;
  k.value = fault_polarity_invariant(f.point) ? -1 : (f.value ? 1 : 0);
  return k;
}

inline std::uint64_t replica_key(NodeId seg, int bit, int replica) {
  return (static_cast<std::uint64_t>(seg) << 24) |
         (static_cast<std::uint64_t>(bit & 0xffff) << 8) |
         static_cast<std::uint64_t>(replica & 0xff);
}

}  // namespace

// ---------------------------------------------------------------------------
// Scratch arena: every mutable byte a worker needs to evaluate one fault
// set.  Allocated once per worker, reused across faults; per-fault state is
// restored via touched lists (sparse effects) or memset (dense fixpoint
// state), so the steady-state inner loop performs no heap allocation.
// ---------------------------------------------------------------------------
class FaultMetricEngine::Scratch {
 public:
  // Static fault effects (sparse, touched-list reset).
  std::vector<std::uint8_t> node_dead;
  std::vector<NodeId> node_dead_touched;
  std::vector<std::int8_t> mux_pin;  // -1 free, 0/1 pinned
  std::vector<NodeId> mux_pin_touched;
  std::vector<std::uint8_t> dead_mux_in;  // index node*2 + input
  std::vector<std::int32_t> dead_mux_touched;
  std::vector<std::uint8_t> own_in_bad, own_out_bad;
  std::vector<NodeId> own_touched;
  std::vector<std::int8_t> forced;  // per pool node, -1 free
  std::vector<std::int32_t> forced_touched;
  std::vector<std::uint8_t> extra;  // per node: taint mask for its atoms
  std::vector<NodeId> extra_touched;
  std::vector<std::uint8_t> seen;  // taint DFS visited
  std::vector<NodeId> dfs_stack;

  // Control possibility masks, maintained incrementally.  Dirty pool nodes
  // are flagged in `in_prop` and drained by a watermark-bounded linear
  // sweep (pool indices are topological, so low-to-high order re-evaluates
  // kids before parents).
  std::vector<std::uint8_t> mask;
  std::vector<std::uint8_t> in_prop;
  std::size_t prop_lo = 0, prop_hi = 0;  // dirty index range [lo, hi]
  std::size_t prop_count = 0;

  // Per-iteration dataflow state.
  std::vector<std::uint8_t> edge_routable, edge_clean;
  std::vector<std::uint8_t> sel_assert, cap_ok, upd_ok, term_alive;
  std::vector<std::uint8_t> route_fwd, clean_fwd, route_bwd, clean_bwd;

  // Fixpoint state (packed bitsets over nodes).
  std::vector<std::uint64_t> writable, accessible;
  std::vector<NodeId> newly_writable;
  // Used atoms whose mask actually deviates under the fault's taint while
  // their segment is unwritable (precomputed once per fault).
  std::vector<std::int32_t> taint_seed_atoms;

  // --- Packed (64-lane) state; allocated lazily by init_packed_scratch
  // because the scalar paths (accessible_under_set, baseline recording)
  // never touch it. ---
  bool packed_ready = false;
  // Static per-batch fault effects: lane l of each word carries fault l of
  // the batch, restored via touched lists exactly like the scalar arrays.
  std::vector<std::uint64_t> p_node_dead;  // per node
  std::vector<NodeId> p_node_dead_touched;
  std::vector<std::uint64_t> p_mux_pinned, p_mux_pin_val;  // per node
  std::vector<NodeId> p_mux_touched;
  std::vector<std::uint64_t> p_dead_mux_in;  // index node*2 + input
  std::vector<std::int32_t> p_dead_mux_touched;
  std::vector<std::uint64_t> p_own_in_bad, p_own_out_bad;  // per slot
  std::vector<std::int32_t> p_own_touched;
  std::vector<std::uint64_t> p_forced_mask, p_forced_val;  // per pool node
  std::vector<std::int32_t> p_forced_touched;
  std::vector<std::uint64_t> p_extra0, p_extra1;  // per slot: taint lanes
  std::vector<std::int32_t> p_extra_touched;
  // Taint rebase seeds: used atom + the lanes that deviate at reset.
  std::vector<std::int32_t> p_seed_atoms;
  std::vector<std::uint64_t> p_seed_lanes;
  // Control possibility masks as lane words (bit l set = lane l's fault
  // leaves this net able to carry 0 / 1), drained through the same
  // in_prop watermark machinery as the scalar `mask`.
  std::vector<std::uint64_t> p_mask0, p_mask1;
  // Per-iteration dataflow state.
  std::vector<std::uint64_t> p_edge_routable, p_edge_clean;
  std::vector<std::uint64_t> p_route_fwd, p_clean_fwd;
  std::vector<std::uint64_t> p_route_bwd, p_clean_bwd;
  std::vector<std::uint64_t> p_sel_assert, p_cap_ok, p_upd_ok;  // per slot
  std::vector<std::uint64_t> p_gcf, p_grb, p_grf, p_gcb;  // slot gathers
  std::vector<std::uint64_t> p_write_acc, p_read_acc;
  std::vector<std::uint64_t> p_accessible, p_writable;  // per slot

  // Counters folded into MetricEngineStats after a run.
  std::uint64_t iterations = 0;
  std::uint64_t mask_evals = 0;
  std::uint64_t mask_cold_reused = 0;
  std::uint64_t packed_batches = 0;
  std::uint64_t packed_lanes = 0;
  std::uint64_t packed_words = 0;
};

void FaultMetricEngine::ScratchDeleter::operator()(Scratch* s) const {
  delete s;
}

/// Snapshot sink for the fault-free trajectory recording run.
struct FaultMetricEngine::BaselineRecorder {
  std::vector<std::vector<std::uint8_t>>* masks;
  std::vector<std::vector<std::uint64_t>>* writable;
};

FaultMetricEngine::ScratchPtr FaultMetricEngine::make_scratch() const {
  auto* s = new Scratch();
  const std::size_t n = n_nodes_;
  s->node_dead.assign(n, 0);
  s->mux_pin.assign(n, -1);
  s->dead_mux_in.assign(n * 2, 0);
  s->own_in_bad.assign(n, 0);
  s->own_out_bad.assign(n, 0);
  s->forced.assign(pool_size_, -1);
  s->extra.assign(n, 0);
  s->seen.assign(n, 0);
  s->mask.assign(pool_size_, 0);
  s->in_prop.assign(pool_size_, 0);
  s->prop_lo = pool_size_;
  s->edge_routable.assign(edges_.size(), 0);
  s->edge_clean.assign(edges_.size(), 0);
  s->sel_assert.assign(n, 0);
  s->cap_ok.assign(n, 0);
  s->upd_ok.assign(n, 0);
  s->term_alive.assign(n, 0);
  s->route_fwd.assign(n, 0);
  s->clean_fwd.assign(n, 0);
  s->route_bwd.assign(n, 0);
  s->clean_bwd.assign(n, 0);
  const std::size_t words = (n + 63) / 64;
  s->writable.assign(words, 0);
  s->accessible.assign(words, 0);
  return ScratchPtr(s);
}

// ---------------------------------------------------------------------------
// Construction: packed graph + control-pool arrays and fault-free baseline.
// ---------------------------------------------------------------------------
FaultMetricEngine::FaultMetricEngine(const Rsn& rsn) : rsn_(&rsn) {
  n_nodes_ = rsn.num_nodes();
  pool_size_ = rsn.ctrl().size();
  const CtrlPool& pool = rsn.ctrl();

  // Scan graph, mirroring AccessAnalyzer's edge construction.
  std::vector<std::int32_t> out_count(n_nodes_, 0), in_count(n_nodes_, 0);
  for (NodeId id = 0; id < n_nodes_; ++id) {
    const RsnNode& n = rsn.node(id);
    if (n.kind == NodeKind::kSegment || n.kind == NodeKind::kPrimaryOut) {
      edges_.push_back({n.scan_in, id, -1});
    } else if (n.is_mux()) {
      edges_.push_back({n.mux_in[0], id, 0});
      edges_.push_back({n.mux_in[1], id, 1});
    }
  }
  for (const EngineEdge& e : edges_) {
    ++out_count[e.from];
    ++in_count[e.to];
  }
  out_start_.assign(n_nodes_ + 1, 0);
  in_start_.assign(n_nodes_ + 1, 0);
  for (std::size_t i = 0; i < n_nodes_; ++i) {
    out_start_[i + 1] = out_start_[i] + out_count[i];
    in_start_[i + 1] = in_start_[i] + in_count[i];
  }
  out_edge_.resize(edges_.size());
  in_edge_.resize(edges_.size());
  std::vector<std::int32_t> out_fill(out_start_.begin(), out_start_.end() - 1);
  std::vector<std::int32_t> in_fill(in_start_.begin(), in_start_.end() - 1);
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    out_edge_[static_cast<std::size_t>(out_fill[edges_[e].from]++)] =
        static_cast<std::int32_t>(e);
    in_edge_[static_cast<std::size_t>(in_fill[edges_[e].to]++)] =
        static_cast<std::int32_t>(e);
  }
  topo_ = rsn.topo_order();
  topo_pos_.assign(n_nodes_, 0);
  for (std::size_t i = 0; i < topo_.size(); ++i)
    topo_pos_[static_cast<std::size_t>(topo_[i])] = static_cast<std::int32_t>(i);
  primary_ins_ = rsn.primary_ins();
  primary_outs_ = rsn.primary_outs();

  // Node structure-of-arrays.
  is_segment_.assign(n_nodes_, 0);
  has_shadow_.assign(n_nodes_, 0);
  is_primary_out_.assign(n_nodes_, 0);
  node_sel_.assign(n_nodes_, -1);
  node_cap_.assign(n_nodes_, -1);
  node_upd_.assign(n_nodes_, -1);
  node_addr_.assign(n_nodes_, -1);
  node_len_.assign(n_nodes_, 0);
  for (NodeId id = 0; id < n_nodes_; ++id) {
    const RsnNode& n = rsn.node(id);
    is_primary_out_[id] = n.kind == NodeKind::kPrimaryOut;
    node_len_[id] = n.length;
    if (n.is_segment()) {
      is_segment_[id] = 1;
      has_shadow_[id] = n.has_shadow;
      node_sel_[id] = n.select;
      node_cap_[id] = n.cap_dis;
      node_upd_[id] = n.up_dis;
      segments_.push_back(id);
    } else if (n.is_mux()) {
      node_addr_[id] = n.addr;
    }
  }

  // Control-pool structure-of-arrays + leaf masks.
  pool_op_.assign(pool_size_, 0);
  pool_kid0_.assign(pool_size_, -1);
  pool_kid1_.assign(pool_size_, -1);
  pool_kid2_.assign(pool_size_, -1);
  atom_seg_.assign(pool_size_, -1);
  atom_reset_mask_.assign(pool_size_, 0);
  for (CtrlRef r = 0; static_cast<std::size_t>(r) < pool_size_; ++r) {
    const CtrlNode& c = pool.node(r);
    const auto idx = static_cast<std::size_t>(r);
    pool_op_[idx] = static_cast<std::uint8_t>(c.op);
    const int arity = c.arity();
    if (arity >= 1) pool_kid0_[idx] = c.kid[0];
    if (arity >= 2) pool_kid1_[idx] = c.kid[1];
    if (arity >= 3) pool_kid2_[idx] = c.kid[2];
    switch (c.op) {
      case CtrlOp::kConst:
        atom_reset_mask_[idx] = c.bit ? kCan1 : kCan0;
        break;
      case CtrlOp::kEnable:
        atom_reset_mask_[idx] = kCan1;  // accesses run with the RSN enabled
        break;
      case CtrlOp::kPortSel:
        atom_reset_mask_[idx] = kCanBoth;  // free primary input
        break;
      case CtrlOp::kShadowBit: {
        atom_seg_[idx] = static_cast<std::int32_t>(c.seg);
        const bool v = (rsn.node(c.seg).reset_shadow >> c.bit) & 1;
        atom_reset_mask_[idx] = v ? kCan1 : kCan0;
        break;
      }
      default:
        break;
    }
  }

  // Select-term metadata (term -> matching out-edges of the segment).
  has_terms_.assign(n_nodes_, 0);
  for (const auto& st : rsn.select_terms()) {
    TermUse t;
    t.seg = st.seg;
    t.term = st.term;
    t.edge_begin = static_cast<std::int32_t>(term_edge_.size());
    for (std::int32_t k = out_start_[st.seg]; k < out_start_[st.seg + 1]; ++k) {
      const std::int32_t e = out_edge_[static_cast<std::size_t>(k)];
      if (edges_[static_cast<std::size_t>(e)].to == st.succ)
        term_edge_.push_back(e);
    }
    t.edge_end = static_cast<std::int32_t>(term_edge_.size());
    terms_.push_back(t);
    if (!has_terms_[st.seg]) {
      has_terms_[st.seg] = 1;
      term_segs_.push_back(st.seg);
    }
  }
  std::sort(term_segs_.begin(), term_segs_.end());

  // Mark the pool cone actually queried by the analysis: segment
  // select/capture/update roots, mux address roots, select terms.
  pool_used_.assign(pool_size_, 0);
  std::vector<CtrlRef> stack;
  const auto mark = [&](std::int32_t r) {
    if (r >= 0 && !pool_used_[static_cast<std::size_t>(r)]) {
      pool_used_[static_cast<std::size_t>(r)] = 1;
      stack.push_back(r);
    }
  };
  for (NodeId seg : segments_) {
    mark(node_sel_[seg]);
    mark(node_cap_[seg]);
    mark(node_upd_[seg]);
  }
  for (NodeId id = 0; id < n_nodes_; ++id) mark(node_addr_[id]);
  for (const TermUse& t : terms_) mark(t.term);
  while (!stack.empty()) {
    const auto idx = static_cast<std::size_t>(stack.back());
    stack.pop_back();
    mark(pool_kid0_[idx]);
    mark(pool_kid1_[idx]);
    mark(pool_kid2_[idx]);
  }
  used_count_ = static_cast<std::size_t>(
      std::count(pool_used_.begin(), pool_used_.end(), 1));

  // Parent CSR over used nodes: when a node's mask changes, these are the
  // (queried) nodes that must be re-evaluated.
  std::vector<std::int32_t> parent_count(pool_size_, 0);
  const auto each_used_kid = [&](std::size_t idx, const auto& fn) {
    if (pool_kid0_[idx] >= 0) fn(pool_kid0_[idx]);
    if (pool_kid1_[idx] >= 0) fn(pool_kid1_[idx]);
    if (pool_kid2_[idx] >= 0) fn(pool_kid2_[idx]);
  };
  for (std::size_t idx = 0; idx < pool_size_; ++idx) {
    if (!pool_used_[idx]) continue;
    each_used_kid(idx, [&](std::int32_t k) {
      ++parent_count[static_cast<std::size_t>(k)];
    });
  }
  parent_start_.assign(pool_size_ + 1, 0);
  for (std::size_t i = 0; i < pool_size_; ++i)
    parent_start_[i + 1] = parent_start_[i] + parent_count[i];
  parent_.resize(static_cast<std::size_t>(parent_start_[pool_size_]));
  std::vector<std::int32_t> parent_fill(parent_start_.begin(),
                                        parent_start_.end() - 1);
  for (std::size_t idx = 0; idx < pool_size_; ++idx) {
    if (!pool_used_[idx]) continue;
    each_used_kid(idx, [&](std::int32_t k) {
      parent_[static_cast<std::size_t>(
          parent_fill[static_cast<std::size_t>(k)]++)] =
          static_cast<std::int32_t>(idx);
    });
  }

  // Used shadow atoms grouped by owning segment (for writability-driven
  // mask updates and taint seeding).
  std::vector<std::int32_t> atom_count(n_nodes_, 0);
  for (std::size_t idx = 0; idx < pool_size_; ++idx)
    if (pool_used_[idx] && atom_seg_[idx] >= 0)
      ++atom_count[static_cast<std::size_t>(atom_seg_[idx])];
  atom_start_.assign(n_nodes_ + 1, 0);
  for (std::size_t i = 0; i < n_nodes_; ++i)
    atom_start_[i + 1] = atom_start_[i] + atom_count[i];
  atom_node_.resize(static_cast<std::size_t>(atom_start_[n_nodes_]));
  std::vector<std::int32_t> atom_fill(atom_start_.begin(),
                                      atom_start_.end() - 1);
  for (std::size_t idx = 0; idx < pool_size_; ++idx)
    if (pool_used_[idx] && atom_seg_[idx] >= 0)
      atom_node_[static_cast<std::size_t>(
          atom_fill[static_cast<std::size_t>(atom_seg_[idx])]++)] =
          static_cast<std::int32_t>(idx);

  // Replica lookup for kShadowReplica forcings (hash-consing guarantees at
  // most one pool node per (seg, bit, replica); unused atoms are never
  // queried, so forcing them is a no-op in the legacy engine too).
  for (CtrlRef r = 0; static_cast<std::size_t>(r) < pool_size_; ++r) {
    const auto idx = static_cast<std::size_t>(r);
    if (!pool_used_[idx] || atom_seg_[idx] < 0) continue;
    const CtrlNode& c = pool.node(r);
    replica_atoms_.emplace(replica_key(c.seg, c.bit, c.replica),
                           static_cast<std::int32_t>(r));
  }

  // Record the fault-free baseline trajectory: one cold (non-seeded) run,
  // snapshotting masks and the writable set at the top of every fixpoint
  // iteration.  Per-fault evaluation later rebases onto these snapshots.
  BaselineRecorder recorder{&base_mask_, &base_writable_};
  const ScratchPtr scratch = make_scratch();
  eval_fault_set(*scratch, nullptr, 0, /*seed_baseline=*/false, &recorder);

  // Packed-path precompute: segment slots in segments_ order and the mux
  // edge list (the only edges whose usability varies per lane).
  const std::size_t n_slots = segments_.size();
  seg_slot_.assign(n_nodes_, -1);
  slot_sel_.resize(n_slots);
  slot_cap_.resize(n_slots);
  slot_upd_.resize(n_slots);
  slot_seg_.resize(n_slots);
  slot_shadow_.resize(n_slots);
  for (std::size_t t = 0; t < n_slots; ++t) {
    const NodeId seg = segments_[t];
    seg_slot_[seg] = static_cast<std::int32_t>(t);
    slot_sel_[t] = node_sel_[seg];
    slot_cap_[t] = node_cap_[seg];
    slot_upd_[t] = node_upd_[seg];
    slot_seg_[t] = static_cast<std::int32_t>(seg);
    slot_shadow_[t] = has_shadow_[seg] ? ~std::uint64_t{0} : 0;
  }
  atom_slot_.assign(pool_size_, -1);
  for (std::size_t idx = 0; idx < pool_size_; ++idx)
    if (atom_seg_[idx] >= 0)
      atom_slot_[idx] = seg_slot_[static_cast<std::size_t>(atom_seg_[idx])];
  for (std::size_t e = 0; e < edges_.size(); ++e)
    if (edges_[e].mux_input >= 0)
      mux_edges_.push_back(static_cast<std::int32_t>(e));
}

FaultMetricEngine::~FaultMetricEngine() = default;

// ---------------------------------------------------------------------------
// Incremental control-mask maintenance.
// ---------------------------------------------------------------------------
std::uint8_t FaultMetricEngine::compute_mask(const Scratch& s,
                                             std::int32_t i) const {
  const auto idx = static_cast<std::size_t>(i);
  if (s.forced[idx] >= 0) return s.forced[idx] ? kCan1 : kCan0;
  switch (static_cast<CtrlOp>(pool_op_[idx])) {
    case CtrlOp::kConst:
    case CtrlOp::kEnable:
    case CtrlOp::kPortSel:
      return atom_reset_mask_[idx];
    case CtrlOp::kShadowBit: {
      const auto seg = static_cast<std::size_t>(atom_seg_[idx]);
      if (bit_test(s.writable, seg)) return kCanBoth;
      // A register downstream of a stuck data net can additionally latch
      // the stuck constant by updating on a corrupted path.
      return static_cast<std::uint8_t>(atom_reset_mask_[idx] | s.extra[seg]);
    }
    case CtrlOp::kNot: {
      const std::uint8_t a = s.mask[static_cast<std::size_t>(pool_kid0_[idx])];
      return static_cast<std::uint8_t>(((a & kCan0) ? kCan1 : 0) |
                                       ((a & kCan1) ? kCan0 : 0));
    }
    case CtrlOp::kAnd: {
      const std::uint8_t a = s.mask[static_cast<std::size_t>(pool_kid0_[idx])];
      const std::uint8_t b = s.mask[static_cast<std::size_t>(pool_kid1_[idx])];
      return static_cast<std::uint8_t>(
          (((a & kCan1) && (b & kCan1)) ? kCan1 : 0) |
          (((a & kCan0) || (b & kCan0)) ? kCan0 : 0));
    }
    case CtrlOp::kOr: {
      const std::uint8_t a = s.mask[static_cast<std::size_t>(pool_kid0_[idx])];
      const std::uint8_t b = s.mask[static_cast<std::size_t>(pool_kid1_[idx])];
      return static_cast<std::uint8_t>(
          (((a & kCan1) || (b & kCan1)) ? kCan1 : 0) |
          (((a & kCan0) && (b & kCan0)) ? kCan0 : 0));
    }
    case CtrlOp::kMaj3: {
      int can1 = 0, can0 = 0;
      for (const std::int32_t k :
           {pool_kid0_[idx], pool_kid1_[idx], pool_kid2_[idx]}) {
        const std::uint8_t a = s.mask[static_cast<std::size_t>(k)];
        can1 += (a & kCan1) ? 1 : 0;
        can0 += (a & kCan0) ? 1 : 0;
      }
      return static_cast<std::uint8_t>((can1 >= 2 ? kCan1 : 0) |
                                       (can0 >= 2 ? kCan0 : 0));
    }
  }
  return 0;
}

/// Value-driven upward propagation.  Dirty nodes are visited in increasing
/// pool-index order (topological: kids interned before parents), so when a
/// node is re-evaluated every kid update is already final and each node is
/// evaluated at most once per call.  Propagation stops where the
/// recomputed mask equals the stored one, which is what makes baseline
/// seeding sound: untouched cones keep their fault-free masks because the
/// recomputation would provably reproduce them.  Parents always have a
/// higher index than the node being drained, so flagging them mid-sweep is
/// safe; the hi watermark grows as needed.
void FaultMetricEngine::propagate_masks(Scratch& s) const {
  for (std::size_t i = s.prop_lo; s.prop_count > 0 && i <= s.prop_hi; ++i) {
    if (!s.in_prop[i]) continue;
    s.in_prop[i] = 0;
    --s.prop_count;
    const std::uint8_t m = compute_mask(s, static_cast<std::int32_t>(i));
    ++s.mask_evals;
    if (m == s.mask[i]) continue;
    s.mask[i] = m;
    for (std::int32_t k = parent_start_[i]; k < parent_start_[i + 1]; ++k) {
      const auto p = static_cast<std::size_t>(parent_[static_cast<std::size_t>(k)]);
      if (s.in_prop[p]) continue;
      s.in_prop[p] = 1;
      ++s.prop_count;
      if (p > s.prop_hi) s.prop_hi = p;
    }
  }
  s.prop_lo = pool_size_;
  s.prop_hi = 0;
  s.prop_count = 0;
}

namespace {
inline void prop_push(FaultMetricEngine::Scratch& s, std::int32_t i) {
  const auto idx = static_cast<std::size_t>(i);
  if (s.in_prop[idx]) return;
  s.in_prop[idx] = 1;
  ++s.prop_count;
  if (idx < s.prop_lo) s.prop_lo = idx;
  if (idx > s.prop_hi) s.prop_hi = idx;
}
}  // namespace

void FaultMetricEngine::eval_fault_set(Scratch& s, const Fault* faults,
                                       std::size_t n_faults,
                                       bool seed_baseline,
                                       BaselineRecorder* recorder) const {
  // Restore the arena to its pristine state (previous fault's effects).
  for (const NodeId id : s.node_dead_touched) s.node_dead[id] = 0;
  s.node_dead_touched.clear();
  for (const NodeId id : s.mux_pin_touched) s.mux_pin[id] = -1;
  s.mux_pin_touched.clear();
  for (const std::int32_t k : s.dead_mux_touched)
    s.dead_mux_in[static_cast<std::size_t>(k)] = 0;
  s.dead_mux_touched.clear();
  for (const NodeId id : s.own_touched) {
    s.own_in_bad[id] = 0;
    s.own_out_bad[id] = 0;
  }
  s.own_touched.clear();
  for (const std::int32_t r : s.forced_touched)
    s.forced[static_cast<std::size_t>(r)] = -1;
  s.forced_touched.clear();
  for (const NodeId id : s.extra_touched) s.extra[id] = 0;
  s.extra_touched.clear();
  std::memset(s.writable.data(), 0, s.writable.size() * sizeof(std::uint64_t));
  std::memset(s.accessible.data(), 0,
              s.accessible.size() * sizeof(std::uint64_t));

  // Static fault effects, applied in fault order (later faults override
  // earlier mux pins / forcings exactly like the legacy loop).
  for (std::size_t i = 0; i < n_faults; ++i) {
    const Forcing& f = faults[i].forcing;
    switch (f.point) {
      case Forcing::Point::kSegmentIn:
      case Forcing::Point::kSegmentOut:
        if (!s.node_dead[f.node]) {
          s.node_dead[f.node] = 1;
          s.node_dead_touched.push_back(f.node);
        }
        if (!s.own_in_bad[f.node] && !s.own_out_bad[f.node])
          s.own_touched.push_back(f.node);
        if (f.point == Forcing::Point::kSegmentIn)
          s.own_in_bad[f.node] = 1;
        else
          s.own_out_bad[f.node] = 1;
        break;
      case Forcing::Point::kShadowReplica: {
        const auto it =
            replica_atoms_.find(replica_key(f.node, f.bit, f.index));
        if (it != replica_atoms_.end()) {
          const std::int32_t r = it->second;
          if (s.forced[static_cast<std::size_t>(r)] < 0)
            s.forced_touched.push_back(r);
          s.forced[static_cast<std::size_t>(r)] = f.value ? 1 : 0;
        }
        break;
      }
      case Forcing::Point::kMuxIn: {
        const std::int32_t k =
            static_cast<std::int32_t>(f.node) * 2 + f.index;
        if (!s.dead_mux_in[static_cast<std::size_t>(k)]) {
          s.dead_mux_in[static_cast<std::size_t>(k)] = 1;
          s.dead_mux_touched.push_back(k);
        }
        break;
      }
      case Forcing::Point::kMuxOut:
        if (!s.node_dead[f.node]) {
          s.node_dead[f.node] = 1;
          s.node_dead_touched.push_back(f.node);
        }
        break;
      case Forcing::Point::kMuxAddr:
        if (s.mux_pin[f.node] < 0) s.mux_pin_touched.push_back(f.node);
        s.mux_pin[f.node] = f.value ? 1 : 0;
        break;
      case Forcing::Point::kCtrlNet:
        if (s.forced[static_cast<std::size_t>(f.ctrl)] < 0)
          s.forced_touched.push_back(f.ctrl);
        s.forced[static_cast<std::size_t>(f.ctrl)] = f.value ? 1 : 0;
        break;
      case Forcing::Point::kPrimaryIn:
      case Forcing::Point::kPrimaryOut:
        if (!s.node_dead[f.node]) {
          s.node_dead[f.node] = 1;
          s.node_dead_touched.push_back(f.node);
        }
        break;
    }
  }

  // Taint cones: a data fault taints every segment structurally downstream
  // with the stuck constant (see AccessAnalyzer for the modeling argument).
  for (std::size_t i = 0; i < n_faults; ++i) {
    const Forcing& f = faults[i].forcing;
    const bool starts_at_input = f.point == Forcing::Point::kSegmentIn;
    const bool data_fault = starts_at_input ||
                            f.point == Forcing::Point::kSegmentOut ||
                            f.point == Forcing::Point::kMuxIn ||
                            f.point == Forcing::Point::kMuxOut ||
                            f.point == Forcing::Point::kPrimaryIn;
    if (!data_fault) continue;
    const std::uint8_t bit = f.value ? kCan1 : kCan0;
    std::memset(s.seen.data(), 0, n_nodes_);
    s.dfs_stack.clear();
    s.seen[f.node] = 1;
    s.dfs_stack.push_back(f.node);
    const auto taint = [&](NodeId v) {
      if (!s.extra[v]) s.extra_touched.push_back(v);
      s.extra[v] = static_cast<std::uint8_t>(s.extra[v] | bit);
    };
    if (starts_at_input) taint(f.node);
    while (!s.dfs_stack.empty()) {
      const NodeId v = s.dfs_stack.back();
      s.dfs_stack.pop_back();
      for (std::int32_t k = out_start_[v]; k < out_start_[v + 1]; ++k) {
        const NodeId w =
            edges_[static_cast<std::size_t>(
                       out_edge_[static_cast<std::size_t>(k)])]
                .to;
        if (s.seen[w]) continue;
        s.seen[w] = 1;
        if (is_segment_[w]) taint(w);
        s.dfs_stack.push_back(w);
      }
    }
  }

  // Atoms actually perturbed by taint: only an atom whose reset mask lacks
  // the stuck bit can deviate from the fault-free baseline while its
  // segment is unwritable.  Precomputed once; reused as rebase seeds by
  // every fixpoint iteration below.
  s.taint_seed_atoms.clear();
  for (const NodeId node : s.extra_touched) {
    const std::uint8_t extra = s.extra[node];
    for (std::int32_t k = atom_start_[node]; k < atom_start_[node + 1]; ++k) {
      const std::int32_t a = atom_node_[static_cast<std::size_t>(k)];
      if (!(extra & ~atom_reset_mask_[static_cast<std::size_t>(a)])) continue;
      s.taint_seed_atoms.push_back(a);
    }
  }

  // Iteration-0 masks.  Masks are a pure function of (writable set, forced
  // overrides, taint); both sides start from writable = ∅, so rebasing onto
  // the cold fault-free snapshot and seeding every deviating leaf — forced
  // nodes and taint-perturbed atoms — reproduces the exact cold-start
  // masks while touching only the fault's cone.
  if (seed_baseline) {
    std::memcpy(s.mask.data(), base_mask_[0].data(), pool_size_);
    for (const std::int32_t r : s.forced_touched)
      if (pool_used_[static_cast<std::size_t>(r)]) prop_push(s, r);
    for (const std::int32_t a : s.taint_seed_atoms) prop_push(s, a);
    const std::uint64_t before = s.mask_evals;
    propagate_masks(s);
    s.mask_cold_reused += used_count_ - (s.mask_evals - before);
  } else {
    // Cold start: full bottom-up pass with the fault effects applied.
    for (std::size_t idx = 0; idx < pool_size_; ++idx) {
      if (!pool_used_[idx]) continue;
      s.mask[idx] = compute_mask(s, static_cast<std::int32_t>(idx));
      ++s.mask_evals;
    }
  }

  // Grow-from-∅ least fixpoint over writability, mirroring the legacy
  // iteration structure statement by statement.
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    // The recording run snapshots the state entering every iteration; the
    // snapshot taken when the loop observes no change is the fixpoint.
    if (recorder) {
      recorder->masks->push_back(s.mask);
      recorder->writable->push_back(s.writable);
    }
    ++s.iterations;

    // Edge usability under the current masks.
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      const EngineEdge& edge = edges_[e];
      std::uint8_t routable = 1;
      std::uint8_t clean = 1;
      if (edge.mux_input >= 0) {
        const NodeId m = edge.to;
        if (s.mux_pin[m] >= 0) {
          routable = s.mux_pin[m] == edge.mux_input;
        } else {
          const std::uint8_t mask =
              s.mask[static_cast<std::size_t>(node_addr_[m])];
          const std::uint8_t need = edge.mux_input == 0 ? kCan0 : kCan1;
          routable = (mask & need) != 0;
        }
        // A stuck mux data input corrupts data through this direction but
        // does not prevent routing.
        clean = static_cast<std::uint8_t>(
            routable &&
            !s.dead_mux_in[static_cast<std::size_t>(m) * 2 +
                           static_cast<std::size_t>(edge.mux_input)]);
      }
      s.edge_routable[e] = routable;
      s.edge_clean[e] = clean;
    }

    // Per-segment control conditions.
    for (const NodeId seg : segments_) {
      s.cap_ok[seg] =
          (s.mask[static_cast<std::size_t>(node_cap_[seg])] & kCan0) != 0;
      s.upd_ok[seg] =
          (s.mask[static_cast<std::size_t>(node_upd_[seg])] & kCan0) != 0;
      s.sel_assert[seg] =
          (s.mask[static_cast<std::size_t>(node_sel_[seg])] & kCan1) != 0;
    }
    // Hardened-select direction coupling: with per-successor term metadata
    // the select is assertable iff some direction is routable with a live
    // term (see AccessAnalyzer).
    if (!terms_.empty()) {
      for (const NodeId seg : term_segs_) s.term_alive[seg] = 0;
      for (const TermUse& t : terms_) {
        if (!(s.mask[static_cast<std::size_t>(t.term)] & kCan1)) continue;
        for (std::int32_t k = t.edge_begin; k < t.edge_end; ++k) {
          if (s.edge_routable[static_cast<std::size_t>(
                  term_edge_[static_cast<std::size_t>(k)])]) {
            s.term_alive[t.seg] = 1;
            break;
          }
        }
      }
      for (const NodeId seg : term_segs_) s.sel_assert[seg] = s.term_alive[seg];
    }

    // Forward/backward reachability sweeps in topological order.
    std::memset(s.route_fwd.data(), 0, n_nodes_);
    std::memset(s.clean_fwd.data(), 0, n_nodes_);
    std::memset(s.route_bwd.data(), 0, n_nodes_);
    std::memset(s.clean_bwd.data(), 0, n_nodes_);
    for (const NodeId r : primary_ins_) {
      s.route_fwd[r] = 1;
      s.clean_fwd[r] = !s.node_dead[r];
    }
    for (const NodeId v : topo_) {
      const std::uint8_t rf = s.route_fwd[v];
      const std::uint8_t cf = s.clean_fwd[v];
      if (!rf && !cf) continue;
      const std::uint8_t v_passes = !s.node_dead[v];
      for (std::int32_t k = out_start_[v]; k < out_start_[v + 1]; ++k) {
        const auto e =
            static_cast<std::size_t>(out_edge_[static_cast<std::size_t>(k)]);
        const NodeId w = edges_[e].to;
        if (rf && s.edge_routable[e]) s.route_fwd[w] = 1;
        if (cf && v_passes && s.edge_clean[e]) s.clean_fwd[w] = 1;
      }
    }
    for (const NodeId p : primary_outs_) {
      s.route_bwd[p] = 1;
      s.clean_bwd[p] = !s.node_dead[p];
    }
    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
      const NodeId w = *it;
      const std::uint8_t rb = s.route_bwd[w];
      const std::uint8_t cb = s.clean_bwd[w];
      if (!rb && !cb) continue;
      const std::uint8_t w_passes = is_primary_out_[w] || !s.node_dead[w];
      for (std::int32_t k = in_start_[w]; k < in_start_[w + 1]; ++k) {
        const auto e =
            static_cast<std::size_t>(in_edge_[static_cast<std::size_t>(k)]);
        const NodeId v = edges_[e].from;
        if (rb && s.edge_routable[e]) s.route_bwd[v] = 1;
        if (cb && w_passes && s.edge_clean[e]) s.clean_bwd[v] = 1;
      }
    }

    // Accessibility / writability update.
    bool changed = false;
    s.newly_writable.clear();
    for (const NodeId seg : segments_) {
      const bool write_acc = s.clean_fwd[seg] && s.route_bwd[seg] &&
                             s.sel_assert[seg] && !s.own_in_bad[seg] &&
                             (!has_shadow_[seg] || s.upd_ok[seg]);
      const bool read_acc = s.route_fwd[seg] && s.clean_bwd[seg] &&
                            s.sel_assert[seg] && !s.own_out_bad[seg] &&
                            s.cap_ok[seg];
      if (write_acc && read_acc && !bit_test(s.accessible, seg)) {
        bit_set(s.accessible, seg);
        changed = true;
      }
      if (write_acc && has_shadow_[seg] && !bit_test(s.writable, seg)) {
        bit_set(s.writable, seg);
        changed = true;
        s.newly_writable.push_back(seg);
      }
    }
    if (!changed) break;

    // Prepare next iteration's masks.  A faulty run's writability cascade
    // closely shadows the fault-free one (most faults barely perturb the
    // network), so instead of propagating this fault's newly-writable
    // flips through the huge shared select cones, rebase onto the
    // fault-free snapshot of the *next* iteration and seed only the
    // per-fault deviation: forced nodes, taint-perturbed atoms of
    // segments still unwritable, and atoms of every segment whose
    // writability differs from that snapshot (word-wise XOR scan).  The
    // masks are a pure function of (writable, forced, taint), so seeding
    // every deviating leaf makes the rebase exact; the baseline is fixed
    // per engine, so the result is independent of the worker schedule.
    if (seed_baseline) {
      const std::size_t r = std::min(static_cast<std::size_t>(iter) + 1,
                                     base_mask_.size() - 1);
      std::memcpy(s.mask.data(), base_mask_[r].data(), pool_size_);
      for (const std::int32_t f : s.forced_touched)
        if (pool_used_[static_cast<std::size_t>(f)]) prop_push(s, f);
      for (const std::int32_t a : s.taint_seed_atoms)
        if (!bit_test(s.writable, static_cast<std::size_t>(
                                      atom_seg_[static_cast<std::size_t>(a)])))
          prop_push(s, a);
      const std::vector<std::uint64_t>& bw = base_writable_[r];
      for (std::size_t w = 0; w < s.writable.size(); ++w) {
        std::uint64_t diff = s.writable[w] ^ bw[w];
        while (diff) {
          const std::size_t seg =
              w * 64 + static_cast<std::size_t>(std::countr_zero(diff));
          diff &= diff - 1;
          for (std::int32_t k = atom_start_[seg]; k < atom_start_[seg + 1];
               ++k)
            prop_push(s, atom_node_[static_cast<std::size_t>(k)]);
        }
      }
      const std::uint64_t before = s.mask_evals;
      propagate_masks(s);
      s.mask_cold_reused += used_count_ - (s.mask_evals - before);
    } else {
      // Cold path: propagate the newly-writable flips upward directly.
      for (const NodeId seg : s.newly_writable)
        for (std::int32_t k = atom_start_[seg]; k < atom_start_[seg + 1]; ++k)
          prop_push(s, atom_node_[static_cast<std::size_t>(k)]);
      propagate_masks(s);
    }
  }
}

// ---------------------------------------------------------------------------
// Packed (64-lane) evaluation: one fault class per bit of a uint64_t word.
//
// Every per-fault quantity of the scalar path (node_dead, mux pins, forced
// overrides, taint, masks, reachability, accessibility) becomes a lane
// word, and every combination step is a bitwise formula on those words —
// so lane l's state after iteration i is, by induction, exactly the scalar
// state of fault l after iteration i.  The only semantic deltas are
// harmless: all lanes share the iteration count (a converged lane is a
// fixpoint of the monotone iteration map, so extra iterations leave it
// unchanged — both paths also share the same kMaxIterations bound), and
// unused tail lanes evaluate the fault-free network and are ignored.
// ---------------------------------------------------------------------------
void FaultMetricEngine::init_packed_scratch(Scratch& s) const {
  if (s.packed_ready) return;
  const std::size_t n_slots = segments_.size();
  s.p_node_dead.assign(n_nodes_, 0);
  s.p_mux_pinned.assign(n_nodes_, 0);
  s.p_mux_pin_val.assign(n_nodes_, 0);
  s.p_dead_mux_in.assign(n_nodes_ * 2, 0);
  s.p_own_in_bad.assign(n_slots, 0);
  s.p_own_out_bad.assign(n_slots, 0);
  s.p_forced_mask.assign(pool_size_, 0);
  s.p_forced_val.assign(pool_size_, 0);
  s.p_extra0.assign(n_slots, 0);
  s.p_extra1.assign(n_slots, 0);
  s.p_mask0.assign(pool_size_, 0);
  s.p_mask1.assign(pool_size_, 0);
  s.p_edge_routable.assign(edges_.size(), 0);
  s.p_edge_clean.assign(edges_.size(), 0);
  s.p_route_fwd.assign(n_nodes_, 0);
  s.p_clean_fwd.assign(n_nodes_, 0);
  s.p_route_bwd.assign(n_nodes_, 0);
  s.p_clean_bwd.assign(n_nodes_, 0);
  s.p_sel_assert.assign(n_slots, 0);
  s.p_cap_ok.assign(n_slots, 0);
  s.p_upd_ok.assign(n_slots, 0);
  s.p_gcf.assign(n_slots, 0);
  s.p_grb.assign(n_slots, 0);
  s.p_grf.assign(n_slots, 0);
  s.p_gcb.assign(n_slots, 0);
  s.p_write_acc.assign(n_slots, 0);
  s.p_read_acc.assign(n_slots, 0);
  s.p_accessible.assign(n_slots, 0);
  s.p_writable.assign(n_slots, 0);
  s.packed_ready = true;
}

/// Lane-word transcription of compute_mask (one word eval decides up to 64
/// fault classes).  Per lane: kCan1 lives in m1, kCan0 in m0.
void FaultMetricEngine::compute_mask_packed(const Scratch& s, std::int32_t i,
                                            std::uint64_t& m0,
                                            std::uint64_t& m1) const {
  const auto idx = static_cast<std::size_t>(i);
  m0 = 0;
  m1 = 0;
  switch (static_cast<CtrlOp>(pool_op_[idx])) {
    case CtrlOp::kConst:
    case CtrlOp::kEnable:
    case CtrlOp::kPortSel:
      m0 = (atom_reset_mask_[idx] & kCan0) ? ~std::uint64_t{0} : 0;
      m1 = (atom_reset_mask_[idx] & kCan1) ? ~std::uint64_t{0} : 0;
      break;
    case CtrlOp::kShadowBit: {
      const auto t = static_cast<std::size_t>(atom_slot_[idx]);
      // writable lane -> kCanBoth; unwritable -> reset value plus any
      // taint-latched constant (the extra bits are redundant on writable
      // lanes, so OR-ing them unconditionally is exact).
      const std::uint64_t w = s.p_writable[t];
      m0 = w | ((atom_reset_mask_[idx] & kCan0) ? ~std::uint64_t{0} : 0) |
           s.p_extra0[t];
      m1 = w | ((atom_reset_mask_[idx] & kCan1) ? ~std::uint64_t{0} : 0) |
           s.p_extra1[t];
      break;
    }
    case CtrlOp::kNot: {
      const auto k = static_cast<std::size_t>(pool_kid0_[idx]);
      m0 = s.p_mask1[k];
      m1 = s.p_mask0[k];
      break;
    }
    case CtrlOp::kAnd: {
      const auto a = static_cast<std::size_t>(pool_kid0_[idx]);
      const auto b = static_cast<std::size_t>(pool_kid1_[idx]);
      m1 = s.p_mask1[a] & s.p_mask1[b];
      m0 = s.p_mask0[a] | s.p_mask0[b];
      break;
    }
    case CtrlOp::kOr: {
      const auto a = static_cast<std::size_t>(pool_kid0_[idx]);
      const auto b = static_cast<std::size_t>(pool_kid1_[idx]);
      m1 = s.p_mask1[a] | s.p_mask1[b];
      m0 = s.p_mask0[a] & s.p_mask0[b];
      break;
    }
    case CtrlOp::kMaj3: {
      const auto a = static_cast<std::size_t>(pool_kid0_[idx]);
      const auto b = static_cast<std::size_t>(pool_kid1_[idx]);
      const auto c = static_cast<std::size_t>(pool_kid2_[idx]);
      m1 = (s.p_mask1[a] & s.p_mask1[b]) | (s.p_mask1[a] & s.p_mask1[c]) |
           (s.p_mask1[b] & s.p_mask1[c]);
      m0 = (s.p_mask0[a] & s.p_mask0[b]) | (s.p_mask0[a] & s.p_mask0[c]) |
           (s.p_mask0[b] & s.p_mask0[c]);
      break;
    }
  }
  // Forced lanes override whatever the op computed (the scalar path checks
  // `forced` before the op; masking afterwards is the same function).
  const std::uint64_t fm = s.p_forced_mask[idx];
  if (fm) {
    const std::uint64_t fv = s.p_forced_val[idx];
    m0 = (m0 & ~fm) | (fm & ~fv);
    m1 = (m1 & ~fm) | (fm & fv);
  }
}

/// propagate_masks with lane-word payloads; shares in_prop / the watermark
/// with the scalar drain (both leave it fully cleared).
void FaultMetricEngine::propagate_masks_packed(Scratch& s) const {
  for (std::size_t i = s.prop_lo; s.prop_count > 0 && i <= s.prop_hi; ++i) {
    if (!s.in_prop[i]) continue;
    s.in_prop[i] = 0;
    --s.prop_count;
    std::uint64_t m0, m1;
    compute_mask_packed(s, static_cast<std::int32_t>(i), m0, m1);
    ++s.packed_words;
    ++s.mask_evals;
    if (m0 == s.p_mask0[i] && m1 == s.p_mask1[i]) continue;
    s.p_mask0[i] = m0;
    s.p_mask1[i] = m1;
    for (std::int32_t k = parent_start_[i]; k < parent_start_[i + 1]; ++k) {
      const auto p =
          static_cast<std::size_t>(parent_[static_cast<std::size_t>(k)]);
      if (s.in_prop[p]) continue;
      s.in_prop[p] = 1;
      ++s.prop_count;
      if (p > s.prop_hi) s.prop_hi = p;
    }
  }
  s.prop_lo = pool_size_;
  s.prop_hi = 0;
  s.prop_count = 0;
}

namespace {
/// Expand a byte-mask baseline snapshot into the two lane-word arrays
/// (every lane gets the fault-free value; the seeds patch the deviations).
inline void rebase_packed(FaultMetricEngine::Scratch& s,
                          const std::vector<std::uint8_t>& base,
                          std::size_t pool_size);
}  // namespace

void FaultMetricEngine::eval_fault_batch(Scratch& s, const Fault* faults,
                                         std::size_t n_lanes,
                                         const simd::Ops& ops) const {
  const std::size_t n_slots = segments_.size();

  // Restore the packed arena (previous batch's effects).
  for (const NodeId id : s.p_node_dead_touched) s.p_node_dead[id] = 0;
  s.p_node_dead_touched.clear();
  for (const NodeId id : s.p_mux_touched) {
    s.p_mux_pinned[id] = 0;
    s.p_mux_pin_val[id] = 0;
  }
  s.p_mux_touched.clear();
  for (const std::int32_t k : s.p_dead_mux_touched)
    s.p_dead_mux_in[static_cast<std::size_t>(k)] = 0;
  s.p_dead_mux_touched.clear();
  for (const std::int32_t t : s.p_own_touched) {
    s.p_own_in_bad[static_cast<std::size_t>(t)] = 0;
    s.p_own_out_bad[static_cast<std::size_t>(t)] = 0;
  }
  s.p_own_touched.clear();
  for (const std::int32_t r : s.p_forced_touched) {
    s.p_forced_mask[static_cast<std::size_t>(r)] = 0;
    s.p_forced_val[static_cast<std::size_t>(r)] = 0;
  }
  s.p_forced_touched.clear();
  for (const std::int32_t t : s.p_extra_touched) {
    s.p_extra0[static_cast<std::size_t>(t)] = 0;
    s.p_extra1[static_cast<std::size_t>(t)] = 0;
  }
  s.p_extra_touched.clear();
  std::memset(s.p_accessible.data(), 0, n_slots * sizeof(std::uint64_t));
  std::memset(s.p_writable.data(), 0, n_slots * sizeof(std::uint64_t));

  // Static fault effects, one lane per fault (the scalar later-fault
  // override rule is vacuous with a single fault per lane).
  for (std::size_t l = 0; l < n_lanes; ++l) {
    const Forcing& f = faults[l].forcing;
    const std::uint64_t bit = std::uint64_t{1} << l;
    switch (f.point) {
      case Forcing::Point::kSegmentIn:
      case Forcing::Point::kSegmentOut: {
        if (!s.p_node_dead[f.node]) s.p_node_dead_touched.push_back(f.node);
        s.p_node_dead[f.node] |= bit;
        const std::int32_t slot = seg_slot_[f.node];
        if (slot >= 0) {
          const auto t = static_cast<std::size_t>(slot);
          if (!s.p_own_in_bad[t] && !s.p_own_out_bad[t])
            s.p_own_touched.push_back(slot);
          if (f.point == Forcing::Point::kSegmentIn)
            s.p_own_in_bad[t] |= bit;
          else
            s.p_own_out_bad[t] |= bit;
        }
        break;
      }
      case Forcing::Point::kShadowReplica: {
        const auto it =
            replica_atoms_.find(replica_key(f.node, f.bit, f.index));
        if (it != replica_atoms_.end()) {
          const auto r = static_cast<std::size_t>(it->second);
          if (!s.p_forced_mask[r]) s.p_forced_touched.push_back(it->second);
          s.p_forced_mask[r] |= bit;
          if (f.value) s.p_forced_val[r] |= bit;
        }
        break;
      }
      case Forcing::Point::kMuxIn: {
        const std::size_t k =
            static_cast<std::size_t>(f.node) * 2 +
            static_cast<std::size_t>(f.index);
        if (!s.p_dead_mux_in[k])
          s.p_dead_mux_touched.push_back(static_cast<std::int32_t>(k));
        s.p_dead_mux_in[k] |= bit;
        break;
      }
      case Forcing::Point::kMuxAddr:
        if (!s.p_mux_pinned[f.node]) s.p_mux_touched.push_back(f.node);
        s.p_mux_pinned[f.node] |= bit;
        if (f.value) s.p_mux_pin_val[f.node] |= bit;
        break;
      case Forcing::Point::kCtrlNet: {
        const auto r = static_cast<std::size_t>(f.ctrl);
        if (!s.p_forced_mask[r])
          s.p_forced_touched.push_back(static_cast<std::int32_t>(f.ctrl));
        s.p_forced_mask[r] |= bit;
        if (f.value) s.p_forced_val[r] |= bit;
        break;
      }
      case Forcing::Point::kMuxOut:
      case Forcing::Point::kPrimaryIn:
      case Forcing::Point::kPrimaryOut:
        if (!s.p_node_dead[f.node]) s.p_node_dead_touched.push_back(f.node);
        s.p_node_dead[f.node] |= bit;
        break;
    }
  }

  // Taint cones, one DFS per data-fault lane (same traversal as the scalar
  // path; the stuck polarity picks which extra word gets the lane bit).
  for (std::size_t l = 0; l < n_lanes; ++l) {
    const Forcing& f = faults[l].forcing;
    const bool starts_at_input = f.point == Forcing::Point::kSegmentIn;
    const bool data_fault = starts_at_input ||
                            f.point == Forcing::Point::kSegmentOut ||
                            f.point == Forcing::Point::kMuxIn ||
                            f.point == Forcing::Point::kMuxOut ||
                            f.point == Forcing::Point::kPrimaryIn;
    if (!data_fault) continue;
    const std::uint64_t bit = std::uint64_t{1} << l;
    std::vector<std::uint64_t>& extra = f.value ? s.p_extra1 : s.p_extra0;
    std::memset(s.seen.data(), 0, n_nodes_);
    s.dfs_stack.clear();
    s.seen[f.node] = 1;
    s.dfs_stack.push_back(f.node);
    const auto taint = [&](NodeId v) {
      const std::int32_t slot = seg_slot_[v];
      if (slot < 0) return;
      const auto t = static_cast<std::size_t>(slot);
      if (!s.p_extra0[t] && !s.p_extra1[t]) s.p_extra_touched.push_back(slot);
      extra[t] |= bit;
    };
    if (starts_at_input) taint(f.node);
    while (!s.dfs_stack.empty()) {
      const NodeId v = s.dfs_stack.back();
      s.dfs_stack.pop_back();
      for (std::int32_t k = out_start_[v]; k < out_start_[v + 1]; ++k) {
        const NodeId w =
            edges_[static_cast<std::size_t>(
                       out_edge_[static_cast<std::size_t>(k)])]
                .to;
        if (s.seen[w]) continue;
        s.seen[w] = 1;
        if (is_segment_[w]) taint(w);
        s.dfs_stack.push_back(w);
      }
    }
  }

  // Rebase seeds: used atoms with at least one lane whose taint deviates
  // from the atom's reset value (the packed analogue of taint_seed_atoms).
  s.p_seed_atoms.clear();
  s.p_seed_lanes.clear();
  for (const std::int32_t t : s.p_extra_touched) {
    const auto slot = static_cast<std::size_t>(t);
    const std::uint64_t e0 = s.p_extra0[slot];
    const std::uint64_t e1 = s.p_extra1[slot];
    const auto seg = static_cast<std::size_t>(slot_seg_[slot]);
    for (std::int32_t k = atom_start_[seg]; k < atom_start_[seg + 1]; ++k) {
      const std::int32_t a = atom_node_[static_cast<std::size_t>(k)];
      const std::uint8_t rm = atom_reset_mask_[static_cast<std::size_t>(a)];
      const std::uint64_t dev =
          ((rm & kCan0) ? 0 : e0) | ((rm & kCan1) ? 0 : e1);
      if (!dev) continue;
      s.p_seed_atoms.push_back(a);
      s.p_seed_lanes.push_back(dev);
    }
  }

  // Iteration-0 masks: broadcast the cold fault-free snapshot into every
  // lane and seed the deviating leaves (see the scalar seed_baseline
  // argument; it holds per lane because every op above is bitwise).
  rebase_packed(s, base_mask_[0], pool_size_);
  for (const std::int32_t r : s.p_forced_touched)
    if (pool_used_[static_cast<std::size_t>(r)]) prop_push(s, r);
  for (const std::int32_t a : s.p_seed_atoms) prop_push(s, a);
  std::uint64_t before = s.packed_words;
  propagate_masks_packed(s);
  s.mask_cold_reused += used_count_ - (s.packed_words - before);

  // Grow-from-∅ least fixpoint, all lanes in lock-step.
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    ++s.iterations;

    // Edge usability (non-mux edges are usable in every lane).
    std::memset(s.p_edge_routable.data(), 0xff,
                edges_.size() * sizeof(std::uint64_t));
    std::memset(s.p_edge_clean.data(), 0xff,
                edges_.size() * sizeof(std::uint64_t));
    for (const std::int32_t me : mux_edges_) {
      const auto e = static_cast<std::size_t>(me);
      const EngineEdge& edge = edges_[e];
      const NodeId m = edge.to;
      const auto addr = static_cast<std::size_t>(node_addr_[m]);
      const std::uint64_t pinned = s.p_mux_pinned[m];
      const std::uint64_t want =
          edge.mux_input ? s.p_mux_pin_val[m] : ~s.p_mux_pin_val[m];
      const std::uint64_t maskw =
          edge.mux_input ? s.p_mask1[addr] : s.p_mask0[addr];
      const std::uint64_t routable = (pinned & want) | (~pinned & maskw);
      s.p_edge_routable[e] = routable;
      s.p_edge_clean[e] =
          routable &
          ~s.p_dead_mux_in[static_cast<std::size_t>(m) * 2 +
                           static_cast<std::size_t>(edge.mux_input)];
    }

    // Per-slot control conditions: kCan0 of the capture/update roots,
    // kCan1 of the select root, then the hardened-select term overlay.
    ops.gather(s.p_cap_ok.data(), s.p_mask0.data(), slot_cap_.data(),
               n_slots);
    ops.gather(s.p_upd_ok.data(), s.p_mask0.data(), slot_upd_.data(),
               n_slots);
    ops.gather(s.p_sel_assert.data(), s.p_mask1.data(), slot_sel_.data(),
               n_slots);
    if (!terms_.empty()) {
      for (const NodeId seg : term_segs_)
        s.p_sel_assert[static_cast<std::size_t>(seg_slot_[seg])] = 0;
      for (const TermUse& t : terms_) {
        const std::uint64_t lanes =
            s.p_mask1[static_cast<std::size_t>(t.term)];
        if (!lanes) continue;
        std::uint64_t routable = 0;
        for (std::int32_t k = t.edge_begin; k < t.edge_end; ++k)
          routable |= s.p_edge_routable[static_cast<std::size_t>(
              term_edge_[static_cast<std::size_t>(k)])];
        s.p_sel_assert[static_cast<std::size_t>(seg_slot_[t.seg])] |=
            lanes & routable;
      }
    }

    // Forward/backward reachability sweeps in topological order.
    std::memset(s.p_route_fwd.data(), 0, n_nodes_ * sizeof(std::uint64_t));
    std::memset(s.p_clean_fwd.data(), 0, n_nodes_ * sizeof(std::uint64_t));
    std::memset(s.p_route_bwd.data(), 0, n_nodes_ * sizeof(std::uint64_t));
    std::memset(s.p_clean_bwd.data(), 0, n_nodes_ * sizeof(std::uint64_t));
    for (const NodeId r : primary_ins_) {
      s.p_route_fwd[r] = ~std::uint64_t{0};
      s.p_clean_fwd[r] = ~s.p_node_dead[r];
    }
    for (const NodeId v : topo_) {
      const std::uint64_t rf = s.p_route_fwd[v];
      const std::uint64_t cfp = s.p_clean_fwd[v] & ~s.p_node_dead[v];
      if (!(rf | cfp)) continue;
      for (std::int32_t k = out_start_[v]; k < out_start_[v + 1]; ++k) {
        const auto e =
            static_cast<std::size_t>(out_edge_[static_cast<std::size_t>(k)]);
        const NodeId w = edges_[e].to;
        s.p_route_fwd[w] |= rf & s.p_edge_routable[e];
        s.p_clean_fwd[w] |= cfp & s.p_edge_clean[e];
      }
    }
    for (const NodeId p : primary_outs_) {
      s.p_route_bwd[p] = ~std::uint64_t{0};
      s.p_clean_bwd[p] = ~s.p_node_dead[p];
    }
    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
      const NodeId w = *it;
      const std::uint64_t rb = s.p_route_bwd[w];
      const std::uint64_t cbp =
          s.p_clean_bwd[w] &
          (is_primary_out_[w] ? ~std::uint64_t{0} : ~s.p_node_dead[w]);
      if (!(rb | cbp)) continue;
      for (std::int32_t k = in_start_[w]; k < in_start_[w + 1]; ++k) {
        const auto e =
            static_cast<std::size_t>(in_edge_[static_cast<std::size_t>(k)]);
        const NodeId v = edges_[e].from;
        s.p_route_bwd[v] |= rb & s.p_edge_routable[e];
        s.p_clean_bwd[v] |= cbp & s.p_edge_clean[e];
      }
    }

    // Accessibility / writability update over the dense slot arrays — the
    // hot lane-word passes, dispatched to the active SIMD kernel.
    ops.gather(s.p_gcf.data(), s.p_clean_fwd.data(), slot_seg_.data(),
               n_slots);
    ops.gather(s.p_grb.data(), s.p_route_bwd.data(), slot_seg_.data(),
               n_slots);
    ops.gather(s.p_grf.data(), s.p_route_fwd.data(), slot_seg_.data(),
               n_slots);
    ops.gather(s.p_gcb.data(), s.p_clean_bwd.data(), slot_seg_.data(),
               n_slots);
    ops.write_acc(s.p_write_acc.data(), s.p_gcf.data(), s.p_grb.data(),
                  s.p_sel_assert.data(), s.p_own_in_bad.data(),
                  s.p_upd_ok.data(), slot_shadow_.data(), n_slots);
    ops.read_acc(s.p_read_acc.data(), s.p_grf.data(), s.p_gcb.data(),
                 s.p_sel_assert.data(), s.p_own_out_bad.data(),
                 s.p_cap_ok.data(), n_slots);
    std::uint64_t fresh =
        ops.or_and2_new(s.p_accessible.data(), s.p_write_acc.data(),
                        s.p_read_acc.data(), n_slots);
    fresh |= ops.or_and2_new(s.p_writable.data(), s.p_write_acc.data(),
                             slot_shadow_.data(), n_slots);
    if (!fresh) break;

    // Rebase onto the next fault-free snapshot and seed the per-lane
    // deviation (the scalar seed_baseline rebase, per lane): forced nodes,
    // taint-perturbed atoms with a still-unwritable deviating lane, and
    // atoms of every slot whose writability word differs from the
    // broadcast baseline bit.
    const std::size_t r = std::min(static_cast<std::size_t>(iter) + 1,
                                   base_mask_.size() - 1);
    rebase_packed(s, base_mask_[r], pool_size_);
    for (const std::int32_t f : s.p_forced_touched)
      if (pool_used_[static_cast<std::size_t>(f)]) prop_push(s, f);
    for (std::size_t i = 0; i < s.p_seed_atoms.size(); ++i) {
      const std::int32_t a = s.p_seed_atoms[i];
      const auto slot =
          static_cast<std::size_t>(atom_slot_[static_cast<std::size_t>(a)]);
      if (s.p_seed_lanes[i] & ~s.p_writable[slot]) prop_push(s, a);
    }
    const std::vector<std::uint64_t>& bw = base_writable_[r];
    for (std::size_t t = 0; t < n_slots; ++t) {
      const auto seg = static_cast<std::size_t>(slot_seg_[t]);
      const std::uint64_t basew = bit_test(bw, seg) ? ~std::uint64_t{0} : 0;
      if (s.p_writable[t] == basew) continue;
      for (std::int32_t k = atom_start_[seg]; k < atom_start_[seg + 1]; ++k)
        prop_push(s, atom_node_[static_cast<std::size_t>(k)]);
    }
    before = s.packed_words;
    propagate_masks_packed(s);
    s.mask_cold_reused += used_count_ - (s.packed_words - before);
  }
}

namespace {
inline void rebase_packed(FaultMetricEngine::Scratch& s,
                          const std::vector<std::uint8_t>& base,
                          std::size_t pool_size) {
  for (std::size_t i = 0; i < pool_size; ++i) {
    const std::uint8_t m = base[i];
    // 0 -> all-zero word, 1 -> all-one word (kCan0 == 1, kCan1 == 2).
    s.p_mask0[i] = -static_cast<std::uint64_t>(m & 1u);
    s.p_mask1[i] = -static_cast<std::uint64_t>((m >> 1) & 1u);
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------
std::vector<bool> FaultMetricEngine::accessible_under_set(
    const std::vector<Fault>& faults, Scratch& scratch) const {
  eval_fault_set(scratch, faults.data(), faults.size(), /*seed_baseline=*/true);
  std::vector<bool> acc(n_nodes_, false);
  for (std::size_t id = 0; id < n_nodes_; ++id)
    if (bit_test(scratch.accessible, id)) acc[id] = true;
  return acc;
}

std::vector<bool> FaultMetricEngine::accessible_under_set(
    const std::vector<Fault>& faults) const {
  ScratchPtr s = make_scratch();
  return accessible_under_set(faults, *s);
}

std::vector<bool> FaultMetricEngine::accessible_fault_free() const {
  return accessible_under_set({});
}

FaultToleranceReport FaultMetricEngine::evaluate(
    const MetricEngineOptions& options) const {
  return evaluate_faults(enumerate_faults(*rsn_), options);
}

FaultToleranceReport FaultMetricEngine::evaluate_faults(
    const std::vector<Fault>& faults,
    const MetricEngineOptions& options) const {
  OBS_SPAN("metric.evaluate");
  const auto t0 = std::chrono::steady_clock::now();
  const Rsn& rsn = *rsn_;

  FaultToleranceReport report;
  std::vector<NodeId> counted_ids;
  for (const NodeId seg : segments_) {
    if (!metric_counts_role(rsn.node(seg).role, options.metric)) continue;
    counted_ids.push_back(seg);
    ++report.counted_segments;
    report.counted_bits += node_len_[seg];
  }
  FTRSN_CHECK_MSG(report.counted_segments > 0, "no segments to count");

  // Fault-equivalence collapse: class id per fault, representative = first
  // occurrence (lowest fault index), matching the legacy evaluate-first
  // ordering bit for bit.
  std::vector<std::int32_t> class_of(faults.size());
  std::vector<std::int32_t> rep;
  rep.reserve(faults.size());
  if (options.collapse_equivalent) {
    std::unordered_map<SiteKey, std::int32_t, SiteKeyHash> ids;
    ids.reserve(faults.size() * 2);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const auto [it, inserted] = ids.try_emplace(
          site_key(faults[i].forcing), static_cast<std::int32_t>(rep.size()));
      if (inserted) rep.push_back(static_cast<std::int32_t>(i));
      class_of[i] = it->second;
    }
  } else {
    rep.resize(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
      rep[i] = static_cast<std::int32_t>(i);
      class_of[i] = static_cast<std::int32_t>(i);
    }
  }

  // Evaluate one representative per class, sharded across the pool.
  // Results land in per-class slots; nothing downstream depends on the
  // worker schedule.
  struct ClassResult {
    long long segs = 0, bits = 0;
  };
  std::vector<ClassResult> results(rep.size());
  std::optional<ThreadPool> own_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr) {
    own_pool.emplace(options.threads, "metric");
    pool = &*own_pool;
  }
  const auto num_workers = static_cast<std::size_t>(pool->num_threads());
  while (scratch_cache_.size() < num_workers)
    scratch_cache_.push_back(make_scratch());
  for (std::size_t w = 0; w < num_workers; ++w) {
    Scratch& s = *scratch_cache_[w];
    s.iterations = 0;
    s.mask_evals = 0;
    s.mask_cold_reused = 0;
    s.packed_batches = 0;
    s.packed_lanes = 0;
    s.packed_words = 0;
  }

  // Chunk auto-tune: aim for ~16 chunks per worker so uneven fixpoint
  // depths still average out, but cap the chunk count on big fault lists —
  // every claim is a fetch_add on one shared cache line, and the old fixed
  // chunk of 8 cost p93791 ~11k claim round-trips per sweep.  In packed
  // mode the schedulable unit is a 64-class block, not a class.
  const std::size_t n_units =
      options.packed ? (rep.size() + 63) / 64 : rep.size();
  std::size_t chunk = options.chunk;
  if (chunk == 0)
    chunk = std::clamp<std::size_t>(n_units / (num_workers * 16), 1, 128);

  const simd::Ops* simd_ops = options.packed ? &simd::active_ops() : nullptr;
  if (options.packed) {
    // Packed sweep: 64 class representatives per batch, one lane each.
    // Results still land in per-class slots, so the serial fold below is
    // shared with the scalar path and stays bit-identical at any thread
    // count and any lane occupancy.
    OBS_SPAN("metric.packed_sweep");
    std::vector<std::int32_t> counted_slots;
    counted_slots.reserve(counted_ids.size());
    for (const NodeId id : counted_ids)
      counted_slots.push_back(seg_slot_[id]);
    // Levelized lane assignment: batch class representatives whose fault
    // sites are topologically close, so the 64 lanes of one word share
    // effect cones and converge at similar fixpoint depths — a distant
    // straggler lane would drag every early-converged lane through extra
    // rebase + re-derivation iterations.  This only permutes which class
    // rides which lane; results still land in per-class slots, so the
    // serial fold (and every report bit) is unaffected.
    std::vector<std::int32_t> order(rep.size());
    for (std::size_t c = 0; c < order.size(); ++c)
      order[c] = static_cast<std::int32_t>(c);
    const auto site_pos = [&](std::int32_t c) {
      const Forcing& f = faults[static_cast<std::size_t>(rep[c])].forcing;
      return f.point == Forcing::Point::kCtrlNet
                 ? static_cast<std::int32_t>(topo_.size()) + f.ctrl
                 : topo_pos_[static_cast<std::size_t>(f.node)];
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::int32_t a, std::int32_t b) {
                       return site_pos(a) < site_pos(b);
                     });
    pool->parallel_for(
        n_units, chunk,
        [&](int worker, std::size_t begin, std::size_t end) {
          Scratch& s = *scratch_cache_[static_cast<std::size_t>(worker)];
          init_packed_scratch(s);
          std::array<Fault, 64> canon;
          for (std::size_t b = begin; b < end; ++b) {
            const std::size_t lo = b * 64;
            const std::size_t lanes = std::min<std::size_t>(64, rep.size() - lo);
            for (std::size_t l = 0; l < lanes; ++l) {
              // Same stuck-at-0 canonicalization for polarity-invariant
              // sites as the scalar path (fixed convention).
              canon[l] =
                  faults[static_cast<std::size_t>(rep[order[lo + l]])];
              if (fault_polarity_invariant(canon[l].forcing.point))
                canon[l].forcing.value = false;
            }
            {
              // Always-on latency histogram: one 64-lane fixpoint batch.
              static obs::Histogram batch_hist("metric.packed_batch_us");
              obs::ScopedLatency timer(batch_hist);
              eval_fault_batch(s, canon.data(), lanes, *simd_ops);
            }
            ++s.packed_batches;
            s.packed_lanes += lanes;
            for (std::size_t l = 0; l < lanes; ++l) {
              const std::uint64_t bit = std::uint64_t{1} << l;
              long long segs = 0, bits = 0;
              for (std::size_t t = 0; t < counted_slots.size(); ++t) {
                if (!(s.p_accessible[static_cast<std::size_t>(
                          counted_slots[t])] &
                      bit))
                  continue;
                ++segs;
                bits += node_len_[counted_ids[t]];
              }
              results[static_cast<std::size_t>(order[lo + l])] = {segs, bits};
            }
          }
        });
  } else {
    pool->parallel_for(
        rep.size(), chunk,
        [&](int worker, std::size_t begin, std::size_t end) {
          Scratch& s = *scratch_cache_[static_cast<std::size_t>(worker)];
          for (std::size_t c = begin; c < end; ++c) {
            // Polarity-invariant sites are assessed under the stuck-at-0
            // polarity (fixed convention, see fault_polarity_invariant), so
            // the result is independent of which twin heads the class.
            Fault canon = faults[static_cast<std::size_t>(rep[c])];
            if (fault_polarity_invariant(canon.forcing.point))
              canon.forcing.value = false;
            {
              // Always-on latency histogram: one scalar class fixpoint.
              static obs::Histogram class_hist("metric.class_eval_us");
              obs::ScopedLatency timer(class_hist);
              eval_fault_set(s, &canon, 1, options.seed_baseline);
            }
            long long segs = 0, bits = 0;
            for (const NodeId id : counted_ids) {
              if (!bit_test(s.accessible, id)) continue;
              ++segs;
              bits += node_len_[id];
            }
            results[c] = {segs, bits};
          }
        });
  }

  // Serial fold in fault-index order: every double operation happens in
  // the same sequence as the legacy loop, so aggregates are bit-identical
  // at any thread count.
  report.num_faults = faults.size();
  double seg_sum = 0.0, bit_sum = 0.0;
  report.seg_worst = 1.0;
  report.bit_worst = 1.0;
  report.seg_fraction.reserve(faults.size());
  report.bit_fraction.reserve(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const ClassResult& r = results[static_cast<std::size_t>(class_of[i])];
    const double seg_frac = static_cast<double>(r.segs) /
                            static_cast<double>(report.counted_segments);
    const double bit_frac = static_cast<double>(r.bits) /
                            static_cast<double>(report.counted_bits);
    report.seg_fraction.push_back(seg_frac);
    report.bit_fraction.push_back(bit_frac);
    seg_sum += seg_frac;
    bit_sum += bit_frac;
    if (seg_frac < report.seg_worst ||
        (seg_frac == report.seg_worst && bit_frac < report.bit_worst)) {
      report.worst_fault_index = i;
    }
    report.seg_worst = std::min(report.seg_worst, seg_frac);
    report.bit_worst = std::min(report.bit_worst, bit_frac);
  }
  report.seg_avg = seg_sum / static_cast<double>(faults.size());
  report.bit_avg = bit_sum / static_cast<double>(faults.size());
  if (!options.metric.keep_distribution) {
    report.seg_fraction.clear();
    report.bit_fraction.clear();
  }

  stats_ = MetricEngineStats{};
  stats_.faults = faults.size();
  stats_.classes = rep.size();
  stats_.threads = pool->num_threads();
  stats_.chunk = chunk;
  std::uint64_t lanes_total = 0;
  for (std::size_t w = 0; w < num_workers; ++w) {
    stats_.fixpoint_iterations += scratch_cache_[w]->iterations;
    stats_.mask_evals += scratch_cache_[w]->mask_evals;
    stats_.mask_cold_reused += scratch_cache_[w]->mask_cold_reused;
    stats_.packed_batches += scratch_cache_[w]->packed_batches;
    stats_.packed_words += scratch_cache_[w]->packed_words;
    lanes_total += scratch_cache_[w]->packed_lanes;
  }
  if (stats_.packed_batches > 0)
    stats_.lane_utilization =
        static_cast<double>(lanes_total) /
        (64.0 * static_cast<double>(stats_.packed_batches));
  stats_.simd_kernel = simd_ops ? simd_ops->name : "";
  stats_.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  obs::count("metric.faults", stats_.faults);
  obs::count("metric.classes", stats_.classes);
  obs::count("metric.fixpoint_iterations", stats_.fixpoint_iterations);
  obs::count("metric.mask_evals", stats_.mask_evals);
  obs::count("metric.mask_cold_reused", stats_.mask_cold_reused);
  if (stats_.packed_batches > 0) {
    obs::count("metric.packed_batches", stats_.packed_batches);
    obs::count("metric.packed_words", stats_.packed_words);
    obs::gauge_set("metric.lane_utilization", stats_.lane_utilization);
  }
  return report;
}

}  // namespace ftrsn
