#include "fault/accessibility.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>

namespace ftrsn {

namespace {
constexpr std::uint8_t kCan0 = 1;
constexpr std::uint8_t kCan1 = 2;
constexpr std::uint8_t kCanBoth = kCan0 | kCan1;
}  // namespace

AccessAnalyzer::AccessAnalyzer(const Rsn& rsn) : rsn_(&rsn) {
  out_edges_.resize(rsn.num_nodes());
  in_edges_.resize(rsn.num_nodes());
  const auto add_edge = [this](NodeId from, NodeId to, int mux_input) {
    const int e = static_cast<int>(edges_.size());
    edges_.push_back({from, to, mux_input});
    out_edges_[from].push_back(e);
    in_edges_[to].push_back(e);
  };
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    if (n.kind == NodeKind::kSegment || n.kind == NodeKind::kPrimaryOut) {
      add_edge(n.scan_in, id, -1);
    } else if (n.is_mux()) {
      add_edge(n.mux_in[0], id, 0);
      add_edge(n.mux_in[1], id, 1);
    }
  }
  topo_ = rsn.topo_order();
}

std::uint8_t AccessAnalyzer::possible(
    CtrlRef r, const std::vector<bool>& writable,
    const std::vector<std::int8_t>& forced, Memo& memo,
    const std::vector<std::uint8_t>* extra_atom) const {
  const auto idx = static_cast<std::size_t>(r);
  if (memo.epoch[idx] == memo.current) return memo.value[idx];
  std::uint8_t result = 0;
  if (forced[idx] >= 0) {
    result = forced[idx] ? kCan1 : kCan0;
  } else {
    const CtrlNode& n = rsn_->ctrl().node(r);
    switch (n.op) {
      case CtrlOp::kConst:
        result = n.bit ? kCan1 : kCan0;
        break;
      case CtrlOp::kEnable:
        // Accesses run with the RSN enabled.
        result = kCan1;
        break;
      case CtrlOp::kPortSel:
        // Primary input, freely controllable by the access procedure.
        result = kCanBoth;
        break;
      case CtrlOp::kShadowBit: {
        if (writable[n.seg]) {
          result = kCanBoth;
        } else {
          const bool v = (rsn_->node(n.seg).reset_shadow >> n.bit) & 1;
          result = v ? kCan1 : kCan0;
          // A register downstream of a stuck data net can additionally
          // *latch the stuck constant* by updating on a corrupted path.
          if (extra_atom) result |= (*extra_atom)[n.seg];
        }
        break;
      }
      case CtrlOp::kNot: {
        const std::uint8_t a = possible(n.kid[0], writable, forced, memo, extra_atom);
        result = static_cast<std::uint8_t>(((a & kCan0) ? kCan1 : 0) |
                                           ((a & kCan1) ? kCan0 : 0));
        break;
      }
      case CtrlOp::kAnd: {
        const std::uint8_t a = possible(n.kid[0], writable, forced, memo, extra_atom);
        const std::uint8_t b = possible(n.kid[1], writable, forced, memo, extra_atom);
        result = static_cast<std::uint8_t>(
            (((a & kCan1) && (b & kCan1)) ? kCan1 : 0) |
            (((a & kCan0) || (b & kCan0)) ? kCan0 : 0));
        break;
      }
      case CtrlOp::kOr: {
        const std::uint8_t a = possible(n.kid[0], writable, forced, memo, extra_atom);
        const std::uint8_t b = possible(n.kid[1], writable, forced, memo, extra_atom);
        result = static_cast<std::uint8_t>(
            (((a & kCan1) || (b & kCan1)) ? kCan1 : 0) |
            (((a & kCan0) && (b & kCan0)) ? kCan0 : 0));
        break;
      }
      case CtrlOp::kMaj3: {
        // Majority: value v possible if at least two children can be v.
        int can1 = 0, can0 = 0;
        for (int i = 0; i < 3; ++i) {
          const std::uint8_t k = possible(n.kid[i], writable, forced, memo, extra_atom);
          can1 += (k & kCan1) ? 1 : 0;
          can0 += (k & kCan0) ? 1 : 0;
        }
        result = static_cast<std::uint8_t>((can1 >= 2 ? kCan1 : 0) |
                                           (can0 >= 2 ? kCan0 : 0));
        break;
      }
    }
  }
  memo.value[idx] = result;
  memo.epoch[idx] = memo.current;
  return result;
}

std::vector<bool> AccessAnalyzer::accessible_under(const Fault* fault) const {
  std::vector<Fault> faults;
  if (fault) faults.push_back(*fault);
  return accessible_under_set(faults);
}

std::vector<bool> AccessAnalyzer::accessible_under_set(
    const std::vector<Fault>& faults) const {
  const Rsn& rsn = *rsn_;
  const std::size_t n_nodes = rsn.num_nodes();

  // --- static fault effects -------------------------------------------------
  std::vector<std::int8_t> forced(rsn.ctrl().size(), -1);
  std::vector<bool> node_dead(n_nodes, false);
  // mux_pin[m]: -1 = free, 0/1 = address pinned by a fault at the mux's
  // address port.
  std::vector<std::int8_t> mux_pin(n_nodes, -1);
  // dead_mux_input[m][i]: data input i of mux m unusable.
  std::vector<std::array<bool, 2>> dead_mux_input(n_nodes, {false, false});

  for (const Fault& fault : faults) {
    const Forcing& f = fault.forcing;
    switch (f.point) {
      case Forcing::Point::kSegmentIn:
      case Forcing::Point::kSegmentOut:
        node_dead[f.node] = true;
        break;
      case Forcing::Point::kShadowReplica: {
        // A stuck shadow latch replica behaves like a stuck control atom.
        const CtrlPool& pool = rsn.ctrl();
        for (CtrlRef r = 0; static_cast<std::size_t>(r) < pool.size(); ++r) {
          const CtrlNode& c = pool.node(r);
          if (c.op == CtrlOp::kShadowBit && c.seg == f.node &&
              c.bit == f.bit && c.replica == f.index)
            forced[static_cast<std::size_t>(r)] = f.value ? 1 : 0;
        }
        break;
      }
      case Forcing::Point::kMuxIn:
        dead_mux_input[f.node][static_cast<std::size_t>(f.index)] = true;
        break;
      case Forcing::Point::kMuxOut:
        node_dead[f.node] = true;
        break;
      case Forcing::Point::kMuxAddr:
        mux_pin[f.node] = f.value ? 1 : 0;
        break;
      case Forcing::Point::kCtrlNet:
        forced[static_cast<std::size_t>(f.ctrl)] = f.value ? 1 : 0;
        break;
      case Forcing::Point::kPrimaryIn:
      case Forcing::Point::kPrimaryOut:
        node_dead[f.node] = true;
        break;
    }
  }

  // --- fixpoint over writability ---------------------------------------------
  //
  // Two path notions per direction:
  //  * "routable": the path can be configured as the active scan path
  //    (mux addresses achievable); data cleanliness is irrelevant.
  //  * "clean": routable and the scan data is not corrupted anywhere
  //    strictly along the path.
  // Write access to s needs a clean upstream path and a routable downstream
  // path; read access needs the converse.  The metric's accessibility is
  // full (read + write) access.  Writability (for mux reconfiguration) only
  // needs write access, which is why registers upstream of a fault can
  // still steer the network (paper §III-A: the stuck-at value propagates
  // only to *subsequent* registers on the active path).
  // Taint mask: a register structurally downstream of a stuck data net can
  // latch the stuck constant by updating while on a corrupted path, so the
  // constant is an achievable value for its control atoms even when free
  // writes are impossible (the BMC engine models this exactly; tests keep
  // the two engines in agreement).
  std::vector<std::uint8_t> extra_atom(n_nodes, 0);
  for (const Fault& fault : faults) {
    const Forcing& f = fault.forcing;
    const bool starts_at_input = f.point == Forcing::Point::kSegmentIn;
    const bool data_fault = starts_at_input ||
                            f.point == Forcing::Point::kSegmentOut ||
                            f.point == Forcing::Point::kMuxIn ||
                            f.point == Forcing::Point::kMuxOut ||
                            f.point == Forcing::Point::kPrimaryIn;
    if (!data_fault) continue;
    const std::uint8_t bit = f.value ? kCan1 : kCan0;
    std::vector<bool> seen(n_nodes, false);
    std::vector<NodeId> stack;
    seen[f.node] = true;
    stack.push_back(f.node);
    if (starts_at_input) extra_atom[f.node] |= bit;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (int ei : out_edges_[v]) {
        const NodeId w = edges_[static_cast<std::size_t>(ei)].to;
        if (seen[w]) continue;
        seen[w] = true;
        if (rsn.node(w).is_segment()) extra_atom[w] |= bit;
        stack.push_back(w);
      }
    }
  }

  std::vector<bool> writable(n_nodes, false);
  std::vector<bool> accessible(n_nodes, false);
  static thread_local Memo memo;
  for (int iter = 0; iter < 256; ++iter) {
    memo.begin(rsn.ctrl().size());

    // Per-segment control conditions.
    std::vector<bool> sel_ok(n_nodes, true), cap_ok(n_nodes, true),
        upd_ok(n_nodes, true);
    for (NodeId id = 0; id < n_nodes; ++id) {
      const RsnNode& n = rsn.node(id);
      if (!n.is_segment()) continue;
      sel_ok[id] = (possible(n.select, writable, forced, memo, &extra_atom) & kCan1) != 0;
      cap_ok[id] = (possible(n.cap_dis, writable, forced, memo, &extra_atom) & kCan0) != 0;
      upd_ok[id] = (possible(n.up_dis, writable, forced, memo, &extra_atom) & kCan0) != 0;
    }

    // Does a vertex propagate scan data cleanly when it lies on the path?
    // Shift enables are structural in SIB-style RSNs (a segment on the
    // active path always shifts); the select predicate gates capture and
    // update only, so select faults never corrupt the data stream — they
    // cost the affected segments their own accesses.
    const auto passes_clean = [&](NodeId v) { return !node_dead[v]; };

    // Edge usability.
    std::vector<bool> edge_routable(edges_.size(), false);
    std::vector<bool> edge_clean(edges_.size(), false);
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      const Edge& edge = edges_[e];
      bool routable = true;
      bool clean = true;
      if (edge.mux_input >= 0) {
        const NodeId m = edge.to;
        if (mux_pin[m] >= 0) {
          routable = mux_pin[m] == edge.mux_input;
        } else {
          const std::uint8_t mask =
              possible(rsn.node(m).addr, writable, forced, memo, &extra_atom);
          const std::uint8_t need = edge.mux_input == 0 ? kCan0 : kCan1;
          routable = (mask & need) != 0;
        }
        // A stuck mux data input corrupts data through this direction but
        // does not prevent routing.
        clean = !dead_mux_input[m][static_cast<std::size_t>(edge.mux_input)];
      }
      edge_routable[e] = routable;
      edge_clean[e] = routable && clean;
    }
    // Hardened-select direction coupling: a segment's own capture/update
    // needs its select asserted *in the routing actually used*.  With the
    // per-successor term metadata from the synthesizer, the select is
    // assertable iff some outgoing direction is both usable and has a live
    // term; without metadata, the plain possibility mask decides.
    std::vector<bool> sel_assertable = sel_ok;
    std::vector<bool> has_terms(n_nodes, false);
    if (!rsn.select_terms().empty()) {
      std::vector<bool> term_alive(n_nodes, false);
      for (const auto& st : rsn.select_terms()) {
        has_terms[st.seg] = true;
        if (!(possible(st.term, writable, forced, memo, &extra_atom) & kCan1)) continue;
        for (int e : out_edges_[st.seg])
          if (edges_[static_cast<std::size_t>(e)].to == st.succ &&
              edge_routable[static_cast<std::size_t>(e)])
            term_alive[st.seg] = true;
      }
      for (NodeId v = 0; v < n_nodes; ++v)
        if (has_terms[v]) sel_assertable[v] = term_alive[v];
    }

    // Reachability.  *_fwd[v]: path from some scan-in port to v's input;
    // *_bwd[v]: path from v's output to some scan-out port.
    std::vector<bool> clean_fwd(n_nodes, false), route_fwd(n_nodes, false);
    std::vector<bool> clean_bwd(n_nodes, false), route_bwd(n_nodes, false);
    for (NodeId r : rsn.primary_ins()) {
      route_fwd[r] = true;
      clean_fwd[r] = !node_dead[r];
    }
    for (NodeId v : topo_) {
      if (!route_fwd[v] && !clean_fwd[v]) continue;
      const bool v_passes = passes_clean(v);
      for (int ei : out_edges_[v]) {
        const auto e = static_cast<std::size_t>(ei);
        const NodeId w = edges_[e].to;
        if (route_fwd[v] && edge_routable[e]) route_fwd[w] = true;
        if (clean_fwd[v] && v_passes && edge_clean[e]) clean_fwd[w] = true;
      }
    }
    for (NodeId s : rsn.primary_outs()) {
      route_bwd[s] = true;
      clean_bwd[s] = !node_dead[s];
    }
    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
      const NodeId w = *it;
      if (!route_bwd[w] && !clean_bwd[w]) continue;
      const bool w_passes =
          rsn.node(w).kind == NodeKind::kPrimaryOut || passes_clean(w);
      for (int ei : in_edges_[w]) {
        const auto e = static_cast<std::size_t>(ei);
        const NodeId v = edges_[e].from;
        if (route_bwd[w] && edge_routable[e]) route_bwd[v] = true;
        if (clean_bwd[w] && w_passes && edge_clean[e]) clean_bwd[v] = true;
      }
    }

    if (const char* dbg = std::getenv("FTRSN_DEBUG_NODE")) {
      for (NodeId id = 0; id < n_nodes; ++id) {
        if (rsn.node(id).name != dbg) continue;
        std::uint8_t selmask = 0;
        if (rsn.node(id).is_segment())
          selmask = possible(rsn.node(id).select, writable, forced, memo, &extra_atom);
        std::fprintf(stderr,
                     "[%s] iter=%d cf=%d rf=%d cb=%d rb=%d sel_ok=%d "
                     "sel_assert=%d selmask=%d writable=%d\n",
                     dbg, iter, int(clean_fwd[id]), int(route_fwd[id]),
                     int(clean_bwd[id]), int(route_bwd[id]), int(sel_ok[id]),
                     int(sel_assertable[id]), int(selmask),
                     int(writable[id]));
      }
    }
    if (std::getenv("FTRSN_DEBUG_ACCESS")) {
      int nw = 0, cf = 0, cb = 0, rf = 0, rb = 0, sa = 0;
      for (NodeId id = 0; id < n_nodes; ++id) {
        nw += writable[id];
        cf += clean_fwd[id];
        cb += clean_bwd[id];
        rf += route_fwd[id];
        rb += route_bwd[id];
        sa += sel_assertable[id] && rsn.node(id).is_segment();
      }
      std::fprintf(stderr,
                   "iter=%d writable=%d clean_fwd=%d clean_bwd=%d "
                   "route_fwd=%d route_bwd=%d sel=%d\n",
                   iter, nw, cf, cb, rf, rb, sa);
    }
    bool changed = false;
    for (NodeId id = 0; id < n_nodes; ++id) {
      const RsnNode& n = rsn.node(id);
      if (!n.is_segment()) continue;
      bool own_in_ok = true, own_out_ok = true;
      for (const Fault& fault : faults) {
        if (fault.forcing.node != id) continue;
        if (fault.forcing.point == Forcing::Point::kSegmentIn)
          own_in_ok = false;
        if (fault.forcing.point == Forcing::Point::kSegmentOut)
          own_out_ok = false;
      }
      const bool write_acc = clean_fwd[id] && route_bwd[id] &&
                             sel_assertable[id] && own_in_ok &&
                             (!n.has_shadow || upd_ok[id]);
      const bool read_acc = route_fwd[id] && clean_bwd[id] &&
                            sel_assertable[id] && own_out_ok && cap_ok[id];
      const bool acc = write_acc && read_acc;
      if (acc && !accessible[id]) {
        accessible[id] = true;
        changed = true;
      }
      if (write_acc && n.has_shadow && !writable[id]) {
        writable[id] = true;
        changed = true;
        if (std::getenv("FTRSN_DEBUG_ACCESS"))
          std::fprintf(stderr, "  + writable %s (cf=%d rb=%d sel=%d)\n",
                       n.name.c_str(), int(clean_fwd[id]), int(route_bwd[id]),
                       int(sel_assertable[id]));
      }
    }
    if (!changed) break;
  }
  return accessible;
}

}  // namespace ftrsn
