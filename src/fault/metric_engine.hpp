// FaultMetricEngine: parallel, equivalence-collapsed, baseline-seeded
// evaluation of the fault-tolerance metric (paper §III-A, §IV-B).
//
// Semantics-preserving replacement for the serial loop in
// compute_fault_tolerance / AccessAnalyzer::accessible_under_set.  Four
// stacked optimisations (see DESIGN.md "Fault-metric engine"):
//
//  1. Fault-equivalence collapse: faults are grouped by their static
//     effect site; one representative per class is analysed and its
//     result weighted by the class multiplicity.  This generalises the
//     legacy sa0/sa1 polarity reuse to arbitrary fault-list orders.
//  2. Baseline-seeded masks: the iteration-0 control possibility masks
//     (writable = ∅, no fault) are computed once per engine and patched
//     per fault only inside the fault's effect cone, instead of
//     re-deriving the whole hash-consed pool per fault per iteration.
//     Across iterations, masks are updated by value-driven upward
//     propagation from segments that became writable.  The fixpoint is
//     still the grow-from-∅ least fixpoint — a shrink-from-baseline
//     iteration would compute a *greatest* fixpoint and overapproximate
//     accessibility on mutual-support select cycles.
//  3. Allocation-free inner loop: all per-fault and per-iteration state
//     lives in a per-worker Scratch arena of flat arrays and packed
//     uint64_t bitsets; evaluating a fault performs no heap allocation.
//  4. Deterministic parallelism: class representatives are sharded
//     across a ThreadPool; per-class counts land in indexed slots and
//     the report is folded serially in fault-index order, so every
//     aggregate (including worst_fault_index tie-breaks and double
//     rounding) is bit-identical at any thread count.
//
// The engine performs no SAT solving and keeps no cross-fault solver
// state (PR 2 cone-oracle lessons: persistent solver state is a perf
// trap; all reuse here is pure dataflow over the control pool).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fault/faults.hpp"
#include "fault/metric.hpp"
#include "rsn/rsn.hpp"

namespace ftrsn {

class ThreadPool;
namespace simd {
struct Ops;
}

struct MetricEngineOptions {
  MetricOptions metric;
  /// Worker threads; <= 0 resolves to the hardware concurrency.  Ignored
  /// when `pool` is set.
  int threads = 0;
  /// Shared worker pool (non-owning).  When set, the evaluation's
  /// fault-class parallel_for runs as a nested job on this pool instead of
  /// a private per-call "metric" pool — this is how BatchRunner gets
  /// two-level (network × fault-class) parallelism on one pool.  The pool
  /// may be shared with other engines running concurrently; a single
  /// engine's evaluate calls must still not overlap each other.
  ThreadPool* pool = nullptr;
  /// parallel_for chunk size in fault classes; 0 auto-tunes from the class
  /// and worker counts (the perf default — fixed sizes either starve load
  /// balancing or drown small networks in chunk-claim overhead).
  std::size_t chunk = 0;
  /// Evaluate one representative per fault-equivalence class (bit-identical
  /// either way; off only for benchmarking the lever).
  bool collapse_equivalent = true;
  /// Seed per-fault control masks from the fault-free baseline and patch
  /// only the effect cone (bit-identical either way; off only for
  /// benchmarking the lever).  The packed path always rebases onto the
  /// baseline, so this lever only affects the scalar path.
  bool seed_baseline = true;
  /// Bit-parallel evaluation: 64 fault classes become forced-bit lanes in
  /// one uint64_t word per signal, so a single levelized fixpoint pass
  /// decides 64 faults at once (DESIGN.md §5h).  Bit-identical to the
  /// scalar path at any thread count and any lane occupancy; off only for
  /// differential testing and for benchmarking the lever.
  bool packed = true;
};

struct MetricEngineStats {
  std::size_t faults = 0;
  std::size_t classes = 0;  ///< representatives actually analysed
  std::size_t fixpoint_iterations = 0;
  /// Control-pool mask computations performed (cone patches + incremental
  /// re-evaluations over all analysed faults).
  std::size_t mask_evals = 0;
  /// Control-pool masks served unchanged from the fault-free baseline.
  std::size_t mask_cold_reused = 0;
  /// Packed mode: 64-lane batches evaluated and packed mask words computed
  /// (each packed word eval covers up to 64 fault lanes; in packed mode
  /// mask_evals counts the same events, so mask_evals / packed_words == 1
  /// and the per-lane work is packed_words * 64 * lane_utilization).
  std::size_t packed_batches = 0;
  std::size_t packed_words = 0;
  /// Mean lane occupancy of the evaluated batches in (0, 1]; < 1 only for
  /// the partial tail word of the class list.
  double lane_utilization = 0.0;
  /// SIMD kernel the packed path dispatched to ("" when packed unused).
  const char* simd_kernel = "";
  int threads = 1;
  /// parallel_for chunk size actually used (auto-tuned unless pinned; in
  /// packed mode the unit is 64-class blocks, not classes).
  std::size_t chunk = 0;
  double seconds = 0.0;

  double collapse_ratio() const {
    return classes ? static_cast<double>(faults) / static_cast<double>(classes)
                   : 1.0;
  }
};

class FaultMetricEngine {
 public:
  /// Precomputes the packed graph/control-pool arrays and the fault-free
  /// baseline masks.  The engine keeps a reference to `rsn`; the network
  /// must outlive it and stay unmodified.
  explicit FaultMetricEngine(const Rsn& rsn);
  ~FaultMetricEngine();

  FaultMetricEngine(const FaultMetricEngine&) = delete;
  FaultMetricEngine& operator=(const FaultMetricEngine&) = delete;

  /// Metric over the complete single stuck-at fault universe
  /// (bit-identical to compute_fault_tolerance(rsn, options.metric)).
  FaultToleranceReport evaluate(const MetricEngineOptions& options = {}) const;

  /// Metric over an explicit fault list (bit-identical to the legacy
  /// fault-list overload of compute_fault_tolerance).
  FaultToleranceReport evaluate_faults(
      const std::vector<Fault>& faults,
      const MetricEngineOptions& options = {}) const;

  /// Per-worker scratch arena for repeated accessibility queries.
  class Scratch;
  struct ScratchDeleter {
    void operator()(Scratch* s) const;
  };
  using ScratchPtr = std::unique_ptr<Scratch, ScratchDeleter>;
  ScratchPtr make_scratch() const;

  /// Accessible segments under a simultaneous multi-fault set
  /// (bit-identical to AccessAnalyzer::accessible_under_set).
  std::vector<bool> accessible_under_set(const std::vector<Fault>& faults,
                                         Scratch& scratch) const;
  std::vector<bool> accessible_under_set(const std::vector<Fault>& faults) const;
  std::vector<bool> accessible_fault_free() const;

  /// Statistics of the most recent evaluate/evaluate_faults call.  Not
  /// synchronised: read only after the call returns, from the same thread.
  const MetricEngineStats& last_stats() const { return stats_; }

 private:
  struct CountedInfo;
  struct ClassCounts;

  struct BaselineRecorder;
  void eval_fault_set(Scratch& s, const Fault* faults, std::size_t n_faults,
                      bool seed_baseline,
                      BaselineRecorder* recorder = nullptr) const;
  void propagate_masks(Scratch& s) const;
  std::uint8_t compute_mask(const Scratch& s, std::int32_t i) const;

  // Packed (64-lane) path: one fault class per bit of a uint64_t word.
  void init_packed_scratch(Scratch& s) const;
  void eval_fault_batch(Scratch& s, const Fault* faults, std::size_t n_lanes,
                        const simd::Ops& ops) const;
  void propagate_masks_packed(Scratch& s) const;
  void compute_mask_packed(const Scratch& s, std::int32_t i,
                           std::uint64_t& m0, std::uint64_t& m1) const;

  const Rsn* rsn_;
  std::size_t n_nodes_ = 0;
  std::size_t pool_size_ = 0;

  // Packed scan graph (CSR, edge-indexed).
  struct EngineEdge {
    NodeId from, to;
    std::int32_t mux_input;  // -1 for non-mux edges
  };
  std::vector<EngineEdge> edges_;
  std::vector<std::int32_t> out_start_, out_edge_;
  std::vector<std::int32_t> in_start_, in_edge_;
  std::vector<NodeId> topo_;
  std::vector<std::int32_t> topo_pos_;  // node -> index in topo_
  std::vector<NodeId> primary_ins_, primary_outs_;

  // Per-node structure-of-arrays mirrors of the RsnNode fields the inner
  // loop touches (RsnNode carries a std::string and is cache-hostile).
  std::vector<std::uint8_t> is_segment_, has_shadow_, is_primary_out_;
  std::vector<std::int32_t> node_sel_, node_cap_, node_upd_, node_addr_;
  std::vector<std::int32_t> node_len_;

  // Control pool structure-of-arrays.
  std::vector<std::uint8_t> pool_op_;
  std::vector<std::int32_t> pool_kid0_, pool_kid1_, pool_kid2_;
  std::vector<std::int32_t> atom_seg_;       // kShadowBit: owning segment
  std::vector<std::uint8_t> atom_reset_mask_;  // kShadowBit: mask when unwritable
  std::vector<std::uint8_t> pool_used_;      // in some queried cone
  std::size_t used_count_ = 0;
  std::vector<std::int32_t> parent_start_, parent_;  // used-node parents (CSR)
  std::vector<std::int32_t> atom_start_, atom_node_;  // per node: used atoms
  // Fault-free baseline trajectory: control masks and writable set at the
  // top of every fixpoint iteration of the fault-free run (index 0 is the
  // cold writable = ∅ state, the last entry is the fixpoint).  Per-fault
  // evaluation rebases each iteration onto the matching snapshot and
  // patches only the diff, which stays small for almost every fault.
  std::vector<std::vector<std::uint8_t>> base_mask_;
  std::vector<std::vector<std::uint64_t>> base_writable_;
  // (seg, bit, replica) -> used kShadowBit pool node, for replica forcings.
  std::unordered_map<std::uint64_t, std::int32_t> replica_atoms_;

  // Select-term metadata, flattened.
  struct TermUse {
    NodeId seg;
    std::int32_t term;
    std::int32_t edge_begin, edge_end;  // into term_edge_
  };
  std::vector<TermUse> terms_;
  std::vector<std::int32_t> term_edge_;
  std::vector<NodeId> term_segs_;  // segments with at least one term
  std::vector<std::uint8_t> has_terms_;

  std::vector<NodeId> segments_;

  // Packed-path precompute.  Segment "slots" are the dense indices of
  // segments_ (ascending node id); the per-iteration lane-word passes run
  // over slot-ordered arrays so the SIMD kernels see contiguous memory.
  std::vector<std::int32_t> seg_slot_;  // node -> slot, -1 for non-segments
  std::vector<std::int32_t> slot_sel_, slot_cap_, slot_upd_;  // ctrl roots
  std::vector<std::int32_t> slot_seg_;        // slot -> node id (int32)
  std::vector<std::uint64_t> slot_shadow_;    // ~0 for shadowed slots
  std::vector<std::int32_t> atom_slot_;       // pool idx -> owning slot, -1
  std::vector<std::int32_t> mux_edges_;       // edge ids with mux_input >= 0

  // Per-worker Scratch arenas, grown on demand and reused across evaluate
  // calls (constructing a Scratch touches every dense array once, which
  // used to dominate small-network evaluations).  Like stats_, this makes
  // concurrent evaluate calls on one engine unsupported; distinct engines
  // sharing one ThreadPool are fine because each indexes its own cache by
  // the pool-wide worker id.
  mutable std::vector<ScratchPtr> scratch_cache_;
  mutable MetricEngineStats stats_;
};

}  // namespace ftrsn
