// Scan-path computation in faulty RSNs (paper §III-A, fast engine).
//
// A scan segment s is *accessible* under a stuck-at fault f iff there is a
// path from a primary scan-in through s to a primary scan-out such that
//  (1) no element on the path corrupts the scan data (the fault site is
//      not on the path, or the faulty mux input is not the one used),
//  (2) every scan mux on the path can be configured to forward the path:
//      its address is either already correct in the reset configuration,
//      pinned to the required value by the fault itself, or driven by a
//      shadow register that is in turn *writable* under f, and
//  (3) the select predicate of every path segment can be asserted despite
//      the fault (hardened select logic may lose one of its OR terms).
//
// Writability is the fixpoint: a register is writable iff its segment is
// accessible, and accessibility grows monotonically from what the reset
// configuration reaches.  This mirrors how an access procedure would
// bootstrap: first access what the reset scan path reaches, use it to
// reconfigure, and so on.  The SAT/BMC engine (bmc/) implements the
// paper's exact unrolled formulation and cross-checks this engine on
// small networks.
#pragma once

#include <vector>

#include "fault/faults.hpp"
#include "rsn/rsn.hpp"

namespace ftrsn {

class AccessAnalyzer {
 public:
  explicit AccessAnalyzer(const Rsn& rsn);

  /// Per-node accessibility under a fault (entries for non-segment nodes
  /// are false).  Pass nullptr for the fault-free case.
  std::vector<bool> accessible_under(const Fault* fault) const;

  /// Generalization to simultaneous multiple faults (the paper assumes
  /// single stuck-at faults; this powers the double-fault extension
  /// analysis in bench_multifault).
  std::vector<bool> accessible_under_set(
      const std::vector<Fault>& faults) const;

  /// Convenience: fault-free accessibility (a valid RSN must have every
  /// segment accessible).
  std::vector<bool> accessible_fault_free() const {
    return accessible_under(nullptr);
  }

  /// True if segment `seg` is accessible under `fault`.
  bool is_accessible(NodeId seg, const Fault& fault) const {
    return accessible_under(&fault)[seg];
  }

 private:
  struct Edge {
    NodeId from, to;
    int mux_input;  ///< -1 for segment/primary-out scan-in edges
  };

  // Possibility mask of a control expression: bit0 = can evaluate to 0,
  // bit1 = can evaluate to 1, given forced nets, frozen (unwritable)
  // registers at reset values, and writable registers free.  The memo is
  // epoch-stamped so iterating over tens of thousands of faults does not
  // reallocate pool-sized buffers (see Memo).
  struct Memo {
    std::vector<std::uint8_t> value;
    std::vector<std::uint32_t> epoch;
    std::uint32_t current = 0;
    void begin(std::size_t size) {
      if (value.size() < size) {
        value.resize(size, 0);
        epoch.resize(size, 0);
      }
      ++current;
    }
  };
  std::uint8_t possible(CtrlRef r, const std::vector<bool>& writable,
                        const std::vector<std::int8_t>& forced, Memo& memo,
                        const std::vector<std::uint8_t>* extra_atom = nullptr) const;

  const Rsn* rsn_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> out_edges_;  // node -> edge indices
  std::vector<std::vector<int>> in_edges_;
  std::vector<NodeId> topo_;
};

}  // namespace ftrsn
