#include "area/area.hpp"

#include <vector>

namespace ftrsn {

namespace {

/// Control expression nodes referenced (transitively) by any port of the
/// RSN — these are the nets/gates that physically exist.
std::vector<bool> used_ctrl(const Rsn& rsn) {
  const CtrlPool& pool = rsn.ctrl();
  std::vector<bool> used(pool.size(), false);
  std::vector<CtrlRef> stack;
  const auto push = [&](CtrlRef r) {
    if (r >= 0 && !used[static_cast<std::size_t>(r)]) {
      used[static_cast<std::size_t>(r)] = true;
      stack.push_back(r);
    }
  };
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    if (n.is_segment()) {
      push(n.select);
      push(n.cap_dis);
      push(n.up_dis);
    } else if (n.is_mux()) {
      push(n.addr);
    }
  }
  while (!stack.empty()) {
    const CtrlRef r = stack.back();
    stack.pop_back();
    const CtrlNode& n = pool.node(r);
    for (int i = 0; i < n.arity(); ++i) push(n.kid[i]);
  }
  return used;
}

}  // namespace

AreaReport estimate_area(const Rsn& rsn, const TechLibrary& lib) {
  AreaReport rep;
  const auto succ = rsn.successors();
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    if (n.is_segment()) {
      rep.shift_ffs += n.length;
      if (n.has_shadow)
        rep.shadow_latches +=
            static_cast<long long>(n.length) * n.shadow_replicas;
    } else if (n.is_mux()) {
      ++rep.scan_muxes;
    }
    if (!succ[id].empty()) ++rep.nets;  // one net per driven scan output
  }
  const std::vector<bool> used = used_ctrl(rsn);
  const CtrlPool& pool = rsn.ctrl();
  for (CtrlRef r = 0; static_cast<std::size_t>(r) < pool.size(); ++r) {
    if (!used[static_cast<std::size_t>(r)]) continue;
    switch (pool.node(r).op) {
      case CtrlOp::kNot:
        ++rep.inverters;
        ++rep.nets;
        break;
      case CtrlOp::kAnd:
        ++rep.and_gates;
        ++rep.nets;
        break;
      case CtrlOp::kOr:
        ++rep.or_gates;
        ++rep.nets;
        break;
      case CtrlOp::kMaj3:
        ++rep.voters;
        ++rep.nets;
        break;
      case CtrlOp::kShadowBit:
        ++rep.nets;  // the shadow output wire of this replica
        break;
      case CtrlOp::kEnable:
      case CtrlOp::kPortSel:
        ++rep.nets;  // primary control distribution
        break;
      case CtrlOp::kConst:
        break;
    }
  }
  rep.area = lib.dff * static_cast<double>(rep.shift_ffs) +
             lib.latch * static_cast<double>(rep.shadow_latches) +
             lib.mux2 * static_cast<double>(rep.scan_muxes) +
             lib.inv * static_cast<double>(rep.inverters) +
             lib.and2 * static_cast<double>(rep.and_gates) +
             lib.or2 * static_cast<double>(rep.or_gates) +
             lib.maj3 * static_cast<double>(rep.voters);
  return rep;
}

OverheadRatios compute_overhead(const Rsn& original, const Rsn& fault_tolerant,
                                const TechLibrary& lib) {
  const AreaReport a = estimate_area(original, lib);
  const AreaReport b = estimate_area(fault_tolerant, lib);
  OverheadRatios r;
  const auto ratio = [](double num, double den) {
    return den > 0 ? num / den : 1.0;
  };
  r.mux = ratio(static_cast<double>(b.scan_muxes),
                static_cast<double>(a.scan_muxes));
  r.bits = ratio(static_cast<double>(b.shift_ffs),
                 static_cast<double>(a.shift_ffs));
  r.nets = ratio(static_cast<double>(b.nets), static_cast<double>(a.nets));
  r.area = ratio(b.area, a.area);
  return r;
}

}  // namespace ftrsn
