// Structural area model (substitute for the paper's commercial logic
// synthesis tool; DESIGN.md §3).
//
// Costs are NAND2-equivalent gate areas.  Table I reports fault-tolerant /
// original *ratios* of mux count, scan bits, interconnects and area; a
// consistent structural model preserves those ratio shapes (the area of
// large RSNs is dominated by the scan flip-flops, so the ratio approaches
// 1.0 as the bit count grows).
#pragma once

#include "rsn/rsn.hpp"

namespace ftrsn {

/// Gate areas in NAND2 equivalents.
struct TechLibrary {
  double inv = 0.7;
  double and2 = 1.5;
  double or2 = 1.5;
  double mux2 = 3.0;
  double dff = 6.0;    ///< scan flip-flop (shift register bit)
  double latch = 4.0;  ///< shadow latch
  double maj3 = 4.5;   ///< TMR majority voter
};

struct AreaReport {
  long long scan_muxes = 0;
  long long shift_ffs = 0;       ///< scan bits (Table I "bits")
  long long shadow_latches = 0;  ///< including TMR replicas
  long long inverters = 0;
  long long and_gates = 0;
  long long or_gates = 0;
  long long voters = 0;
  long long nets = 0;  ///< driven scan + control interconnects
  double area = 0.0;   ///< NAND2 equivalents
};

/// Walks the structural netlist and control logic of `rsn`.
AreaReport estimate_area(const Rsn& rsn, const TechLibrary& lib = {});

/// Table I "RSN Area Overhead" ratios: fault-tolerant / original.
struct OverheadRatios {
  double mux = 1.0;
  double bits = 1.0;
  double nets = 1.0;
  double area = 1.0;
};
OverheadRatios compute_overhead(const Rsn& original, const Rsn& fault_tolerant,
                                const TechLibrary& lib = {});

}  // namespace ftrsn
