#include "augment/augment.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <set>

#include "ilp/ilp.hpp"
#include "ilp/mincost_flow.hpp"
#include "lint/augment_cache.hpp"
#include "obs/obs.hpp"

namespace ftrsn {

namespace {

long long default_cost(int level_delta) { return 1 + level_delta; }

struct Instance {
  std::vector<Candidate> candidates;
  std::vector<int> need_out, need_in;
  std::vector<int> level;
};

/// Degree needs per vertex: two in-edges from / out-edges to distinct
/// vertices, clamped to what is satisfiable in principle.
Instance build_instance(const DataflowGraph& g, const AugmentOptions& opt) {
  Instance inst;
  const std::size_t n = g.num_vertices();
  inst.level = g.levels();

  std::vector<bool> is_root(n, false), is_sink(n, false);
  for (NodeId r : g.roots()) is_root[r] = true;
  for (NodeId s : g.sinks()) is_sink[s] = true;

  std::vector<bool> target_ok = opt.target_allowed;
  if (target_ok.empty()) target_ok.assign(n, true);
  FTRSN_CHECK(target_ok.size() == n);
  for (NodeId v = 0; v < n; ++v)
    if (is_root[v]) target_ok[v] = false;

  // Existing distinct neighbor counts.
  std::vector<std::set<NodeId>> preds(n), succs(n);
  for (const DfEdge& e : g.edges()) {
    preds[e.to].insert(e.from);
    succs[e.from].insert(e.to);
  }

  const auto cost_fn = opt.edge_cost ? opt.edge_cost : default_cost;

  // Candidate generation: nearest level-forward targets/sources per vertex.
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const DfEdge& e : g.edges()) seen.insert({e.from, e.to});
  const auto add_candidate = [&](NodeId u, NodeId w) {
    if (u == w || is_sink[u] || !target_ok[w]) return;
    if (inst.level[w] < inst.level[u]) return;
    if (!seen.insert({u, w}).second) return;
    inst.candidates.push_back(
        {{u, w}, cost_fn(inst.level[w] - inst.level[u])});
  };

  // Vertices sorted by level for windowed scans.
  std::vector<NodeId> by_level(n);
  for (NodeId v = 0; v < n; ++v) by_level[v] = v;
  std::sort(by_level.begin(), by_level.end(), [&](NodeId a, NodeId b) {
    return inst.level[a] != inst.level[b] ? inst.level[a] < inst.level[b]
                                          : a < b;
  });
  std::vector<int> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[by_level[i]] = static_cast<int>(i);

  const int window = opt.window;
  for (NodeId v = 0; v < n; ++v) {
    // Out-candidates: next vertices at >= level.
    int taken = 0;
    for (std::size_t i = static_cast<std::size_t>(pos[v]);
         i < n && (window <= 0 || taken < window); ++i) {
      const NodeId w = by_level[i];
      if (w == v || inst.level[w] < inst.level[v]) continue;
      const std::size_t before = inst.candidates.size();
      add_candidate(v, w);
      if (inst.candidates.size() > before) ++taken;
    }
    // Also vertices at the same level *before* v in the order (level equal,
    // lower id) are valid targets; include a window of them.
    taken = 0;
    for (int i = pos[v] - 1;
         i >= 0 && (window <= 0 || taken < window); --i) {
      const NodeId w = by_level[static_cast<std::size_t>(i)];
      if (inst.level[w] != inst.level[v]) break;
      const std::size_t before = inst.candidates.size();
      add_candidate(v, w);
      if (inst.candidates.size() > before) ++taken;
    }
    // In-candidates: previous vertices at <= level.
    taken = 0;
    for (int i = pos[v] - 1;
         i >= 0 && (window <= 0 || taken < window); --i) {
      const NodeId u = by_level[static_cast<std::size_t>(i)];
      const std::size_t before = inst.candidates.size();
      add_candidate(u, v);
      if (inst.candidates.size() > before) ++taken;
    }
  }

  // Needs, clamped by what's possible with distinct endpoints.
  std::vector<int> extra_out(n, 0), extra_in(n, 0);
  for (const Candidate& c : inst.candidates) {
    ++extra_out[c.edge.from];
    ++extra_in[c.edge.to];
  }
  inst.need_out.assign(n, 0);
  inst.need_in.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (!is_sink[v]) {
      const int have = static_cast<int>(succs[v].size());
      const int possible = have + extra_out[v];
      inst.need_out[v] = std::max(0, std::min(2, possible) - have);
    }
    if (!is_root[v] && target_ok[v]) {
      const int have = static_cast<int>(preds[v].size());
      const int possible = have + extra_in[v];
      inst.need_in[v] = std::max(0, std::min(2, possible) - have);
    }
  }
  return inst;
}

/// Finds a directed cycle among the chosen candidate edges (cycles can only
/// involve same-level edges, since every other edge strictly increases the
/// topological level).  Returns candidate indices of the cycle edges.
///
/// `cache` carries the chosen edge set from the previous engine iterate:
/// assign() applies only the suffix delta and the cycle query touches only
/// the same-level edges, instead of rebuilding a DataflowGraph per call.
std::vector<int> find_cycle_among(const Instance& inst,
                                  const std::vector<int>& chosen,
                                  lint::AugmentLintCache& cache) {
  std::vector<DfEdge> edges;
  edges.reserve(chosen.size());
  for (int ci : chosen)
    edges.push_back(inst.candidates[static_cast<std::size_t>(ci)].edge);
  cache.assign(edges);
  const std::vector<NodeId> cycle_vertices = cache.same_level_cycle();
  if (cycle_vertices.empty()) return {};
  std::vector<int> cycle;
  for (std::size_t i = 0; i < cycle_vertices.size(); ++i) {
    const NodeId from = cycle_vertices[i];
    const NodeId to = cycle_vertices[(i + 1) % cycle_vertices.size()];
    for (int ci : chosen) {
      const Candidate& c = inst.candidates[static_cast<std::size_t>(ci)];
      if (inst.level[c.edge.from] != inst.level[c.edge.to]) continue;
      if (c.edge.from == from && c.edge.to == to) {
        cycle.push_back(ci);
        break;
      }
    }
  }
  FTRSN_CHECK(!cycle.empty());
  return cycle;
}

AugmentResult solve_flow(const DataflowGraph& g, const Instance& inst,
                         const AugmentOptions& opt) {
  AugmentResult result;
  struct Node {
    std::vector<int> forbidden;
    long long bound;
  };
  const auto cmp = [](const Node& a, const Node& b) {
    return a.bound > b.bound;
  };
  std::priority_queue<Node, std::vector<Node>, decltype(cmp)> open(cmp);
  open.push({{}, 0});
  long long incumbent_cost = std::numeric_limits<long long>::max();
  std::vector<int> incumbent;
  bool exhausted = true;
  lint::AugmentLintCache cycle_cache(g);

  while (!open.empty()) {
    if (result.bb_nodes >= opt.max_bb_nodes) {
      exhausted = false;
      break;
    }
    Node node = open.top();
    open.pop();
    if (node.bound >= incumbent_cost) continue;
    ++result.bb_nodes;

    std::vector<DegreeCoverSolver::Edge> edges;
    edges.reserve(inst.candidates.size());
    for (const Candidate& c : inst.candidates)
      edges.push_back({static_cast<int>(c.edge.from),
                       static_cast<int>(c.edge.to), c.cost});
    DegreeCoverSolver solver(static_cast<int>(g.num_vertices()),
                             std::move(edges), inst.need_out, inst.need_in);
    solver.set_flow_options(opt.mcf);
    for (int f : node.forbidden) solver.forbid(f);
    const auto sol = solver.solve();
    if (!sol.feasible || sol.cost >= incumbent_cost) continue;

    const std::vector<int> cycle =
        find_cycle_among(inst, sol.chosen, cycle_cache);
    if (cycle.empty()) {
      incumbent_cost = sol.cost;
      incumbent = sol.chosen;
      continue;
    }
    ++result.cycle_events;
    for (int ci : cycle) {
      Node child = node;
      child.forbidden.push_back(ci);
      child.bound = sol.cost;  // forbidding can only increase the cost
      open.push(std::move(child));
    }
  }

  if (!incumbent.empty() ||
      incumbent_cost != std::numeric_limits<long long>::max()) {
    result.cost = incumbent_cost;
    for (int ci : incumbent)
      result.added_edges.push_back(
          inst.candidates[static_cast<std::size_t>(ci)].edge);
    result.optimal = exhausted;
  }
  return result;
}

AugmentResult solve_ilp(const DataflowGraph& g, const Instance& inst,
                        const AugmentOptions& opt) {
  (void)opt;
  AugmentResult result;
  LpProblem p;
  for (const Candidate& c : inst.candidates)
    p.add_variable(static_cast<double>(c.cost), 1.0);
  for (NodeId v = 0; v < g.num_vertices(); ++v) {
    if (inst.need_out[v] > 0) {
      LinearConstraint c;
      c.sense = Sense::kGe;
      c.rhs = inst.need_out[v];
      for (std::size_t e = 0; e < inst.candidates.size(); ++e)
        if (inst.candidates[e].edge.from == v)
          c.terms.push_back({static_cast<int>(e), 1.0});
      p.add_constraint(std::move(c));
    }
    if (inst.need_in[v] > 0) {
      LinearConstraint c;
      c.sense = Sense::kGe;
      c.rhs = inst.need_in[v];
      for (std::size_t e = 0; e < inst.candidates.size(); ++e)
        if (inst.candidates[e].edge.to == v)
          c.terms.push_back({static_cast<int>(e), 1.0});
      p.add_constraint(std::move(c));
    }
  }
  IlpSolver solver(std::move(p));
  int cuts = 0;
  lint::AugmentLintCache cycle_cache(g);
  solver.set_lazy_cuts([&](const std::vector<double>& x) {
    std::vector<int> chosen;
    for (std::size_t e = 0; e < x.size(); ++e)
      if (x[e] > 0.5) chosen.push_back(static_cast<int>(e));
    const std::vector<int> cycle = find_cycle_among(inst, chosen, cycle_cache);
    std::vector<LinearConstraint> out;
    if (!cycle.empty()) {
      // Subtour elimination (paper eq. 4): sum over the cycle's edges
      // <= |cycle| - 1.
      LinearConstraint c;
      c.sense = Sense::kLe;
      c.rhs = static_cast<double>(cycle.size()) - 1.0;
      for (int ci : cycle) c.terms.push_back({ci, 1.0});
      out.push_back(std::move(c));
      ++cuts;
    }
    return out;
  });
  const IlpResult ir = solver.solve();
  result.cycle_events = cuts;
  result.bb_nodes = ir.explored_nodes;
  if (ir.feasible) {
    result.cost = std::llround(ir.objective);
    result.optimal = ir.optimal;
    for (std::size_t e = 0; e < ir.x.size(); ++e)
      if (ir.x[e] > 0.5)
        result.added_edges.push_back(inst.candidates[e].edge);
  }
  return result;
}

AugmentResult solve_greedy(const DataflowGraph& g, const Instance& inst,
                           const AugmentOptions& opt) {
  (void)opt;
  AugmentResult result;
  lint::AugmentLintCache cycle_cache(g);
  std::vector<int> need_out = inst.need_out;
  std::vector<int> need_in = inst.need_in;
  std::vector<std::size_t> order(inst.candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (inst.candidates[a].cost != inst.candidates[b].cost)
      return inst.candidates[a].cost < inst.candidates[b].cost;
    return a < b;
  });
  std::vector<bool> banned(inst.candidates.size(), false);
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<int> chosen;
    std::vector<int> out_left = need_out, in_left = need_in;
    // Pass 1: cheapest edges that serve both endpoints' needs, then pass 2
    // for edges serving a single remaining need.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t oi : order) {
        if (banned[oi]) continue;
        const Candidate& c = inst.candidates[oi];
        const bool serves_out = out_left[c.edge.from] > 0;
        const bool serves_in = in_left[c.edge.to] > 0;
        const bool take =
            pass == 0 ? (serves_out && serves_in) : (serves_out || serves_in);
        if (!take) continue;
        if (std::find(chosen.begin(), chosen.end(), static_cast<int>(oi)) !=
            chosen.end())
          continue;
        chosen.push_back(static_cast<int>(oi));
        if (serves_out) --out_left[c.edge.from];
        if (serves_in) --in_left[c.edge.to];
      }
    }
    const std::vector<int> cycle = find_cycle_among(inst, chosen, cycle_cache);
    if (cycle.empty()) {
      for (int ci : chosen) {
        result.added_edges.push_back(
            inst.candidates[static_cast<std::size_t>(ci)].edge);
        result.cost += inst.candidates[static_cast<std::size_t>(ci)].cost;
      }
      return result;
    }
    ++result.cycle_events;
    banned[static_cast<std::size_t>(cycle.front())] = true;  // repair & retry
  }
  FTRSN_CHECK_MSG(false, "greedy augmentation failed to break cycles");
  return result;
}

/// Guard-class decomposition of the dataflow graph: vertices sharing one
/// configuration guard set form a serial backbone chain; `entry` is the
/// predecessor of the chain's first element outside the chain (the vertex
/// from which the chain is fed).
struct GuardGroups {
  std::map<std::vector<NodeId>, std::vector<NodeId>> members;  // topo order
  std::map<std::vector<NodeId>, NodeId> entry;
};

GuardGroups build_groups(const DataflowGraph& g,
                         const std::vector<std::vector<NodeId>>& guards) {
  GuardGroups gg;
  const std::vector<NodeId> topo = g.topo_order();
  std::vector<bool> is_root(g.num_vertices(), false);
  for (NodeId r : g.roots()) is_root[r] = true;
  if (guards.empty()) {
    gg.members[{}] = topo;
    gg.entry[{}] = kInvalidNode;
    return gg;
  }
  for (NodeId v : topo) {
    if (is_root[v]) continue;
    gg.members[guards[v]].push_back(v);
  }
  for (auto& [guard, members] : gg.members) {
    const NodeId first = members.front();
    NodeId entry = kInvalidNode;
    for (NodeId p : g.predecessors(first)) {
      if (is_root[p] || guards[p] != guard) {
        entry = p;
        break;
      }
    }
    if (entry == kInvalidNode && !g.predecessors(first).empty())
      entry = g.predecessors(first).front();
    gg.entry[guard] = entry;
  }
  return gg;
}

/// Backbone skip hardening.
///
/// The dataflow graph of a SIB-style RSN decomposes into serial "backbone"
/// chains of elements sharing one configuration guard set (the registers
/// that must be asserted to put the chain on an active scan path).  A data
/// fault at a chain element corrupts everything downstream *and* blocks
/// writing every downstream register, so degree-based augmentation alone
/// cannot recover: detours sourced inside gated sub-networks can never be
/// bootstrapped.  The robust structure is a shingle of skip edges along
/// each chain: every segment s_t receives an edge from the element two
/// segment-positions back (s_{t-2}, or the chain entry), so any single
/// element fault -- including faults in the skip hardware itself -- is
/// bypassed by a neighbouring skip whose address register remains writable
/// through the clean chain prefix.  The chain exit anchor extends beyond
/// the owning SIB register so a gated sub-network can still drain when its
/// own SIB register dies.  This realizes the paper's observation that every
/// scan segment of the fault-tolerant RSN gains one extra multiplexer at
/// its scan-in port.
void add_backbone_skips(const DataflowGraph& g, const AugmentOptions& opt,
                        const std::vector<bool>& target_ok,
                        AugmentResult& result) {
  const auto cost_fn = opt.edge_cost ? opt.edge_cost : default_cost;
  const std::vector<int> level = g.levels();
  std::vector<bool> is_root(g.num_vertices(), false);
  for (NodeId r : g.roots()) is_root[r] = true;

  std::set<std::pair<NodeId, NodeId>> have;
  for (const DfEdge& e : g.edges()) have.insert({e.from, e.to});
  for (const DfEdge& e : result.added_edges) have.insert({e.from, e.to});
  const auto add = [&](NodeId src, NodeId dst) {
    if (src == dst || !have.insert({src, dst}).second) return;
    result.added_edges.push_back({src, dst});
    result.cost += cost_fn(std::max(0, level[dst] - level[src]));
    ++result.spof_edges;
  };

  const GuardGroups gg = build_groups(g, opt.vertex_guards);
  for (const auto& [guard, members] : gg.members) {
    std::vector<NodeId> anchors;
    const NodeId entry = gg.entry.at(guard);
    if (entry != kInvalidNode) {
      // Pre-entry anchor: the chain must stay bootstrappable even when the
      // entry vertex itself (typically the trunk element feeding this
      // sub-network) is the fault site.
      if (!g.predecessors(entry).empty()) {
        const NodeId pre = g.predecessors(entry).front();
        if (pre != entry) anchors.push_back(pre);
      }
      anchors.push_back(entry);
    }
    for (NodeId v : members)
      if (target_ok[v]) anchors.push_back(v);
    // Exit anchors: the first two allowed vertices downstream of the chain
    // tail outside the group (typically the owning SIB register and the
    // next backbone segment) so that the sub-network can drain even when
    // its own SIB register is the fault site.
    {
      std::vector<NodeId> frontier{members.back()};
      std::set<NodeId> seen(frontier.begin(), frontier.end());
      int exits = 0;
      while (!frontier.empty() && exits < 2) {
        std::vector<NodeId> next;
        for (NodeId v : frontier)
          for (NodeId w : g.successors(v)) {
            if (!seen.insert(w).second) continue;
            const bool outside = opt.vertex_guards.empty() ||
                                 opt.vertex_guards[w] != guard;
            if (outside && target_ok[w] && exits < 2) {
              anchors.push_back(w);
              ++exits;
            }
            next.push_back(w);
          }
        frontier = std::move(next);
      }
    }
    // Shingled skips: every anchor (from the 2nd onward) receives an edge
    // from the anchor two positions back, bypassing the one in between.
    for (std::size_t t = 2; t < anchors.size(); ++t)
      if (target_ok[anchors[t]]) add(anchors[t - 2], anchors[t]);
  }
}

/// Bootstrap anchor of an added edge (see AugmentResult::edge_anchor).
NodeId edge_bootstrap_anchor(const DfEdge& e, const DataflowGraph& g,
                             const std::vector<std::vector<NodeId>>& guards,
                             const GuardGroups& gg) {
  std::vector<bool> is_root(g.num_vertices(), false);
  for (NodeId r : g.roots()) is_root[r] = true;
  if (is_root[e.from]) return kInvalidNode;
  if (guards.empty()) return e.from;
  NodeId a = e.from;
  for (int step = 0; step < 64; ++step) {
    if (std::includes(guards[e.to].begin(), guards[e.to].end(),
                      guards[a].begin(), guards[a].end()))
      return a;
    const auto it = gg.entry.find(guards[a]);
    if (it == gg.entry.end() || it->second == kInvalidNode) return a;
    a = it->second;
    if (is_root[a]) return kInvalidNode;
  }
  return a;
}

}  // namespace

std::vector<Candidate> potential_edges(const DataflowGraph& g,
                                       const AugmentOptions& options) {
  return build_instance(g, options).candidates;
}

AugmentResult augment_connectivity(const DataflowGraph& g,
                                   const AugmentOptions& options) {
  OBS_SPAN("augment.solve");
  AugmentResult result;

  // Backbone-skip hardening first: its shingle edges already satisfy most
  // of the degree requirements, so the degree optimization afterwards only
  // tops up what is still missing (matching the paper's "one extra mux per
  // segment" overall shape without duplicating edges).
  if (options.spof_repair) {
    std::vector<bool> target_ok = options.target_allowed;
    if (target_ok.empty()) target_ok.assign(g.num_vertices(), true);
    for (NodeId r : g.roots()) target_ok[r] = false;
    for (NodeId s : g.sinks()) target_ok[s] = true;
    add_backbone_skips(g, options, target_ok, result);
  }

  std::vector<DfEdge> base_edges = g.edges();
  base_edges.insert(base_edges.end(), result.added_edges.begin(),
                    result.added_edges.end());
  const DataflowGraph g_hardened = DataflowGraph::from_edges(
      g.num_vertices(), base_edges, g.roots(), g.sinks());

  const Instance inst = build_instance(g_hardened, options);
  AugmentResult degree;
  switch (options.engine) {
    case AugmentOptions::Engine::kFlow:
      degree = solve_flow(g_hardened, inst, options);
      break;
    case AugmentOptions::Engine::kIlp:
      degree = solve_ilp(g_hardened, inst, options);
      break;
    case AugmentOptions::Engine::kGreedy:
      degree = solve_greedy(g_hardened, inst, options);
      break;
  }
  result.added_edges.insert(result.added_edges.end(),
                            degree.added_edges.begin(),
                            degree.added_edges.end());
  result.cost += degree.cost;
  result.bb_nodes = degree.bb_nodes;
  result.cycle_events = degree.cycle_events;
  result.optimal = degree.optimal;

  if (options.strict_two_connectivity) {
    // Audit with Menger checks on the augmented graph; repair remaining
    // violations with direct port edges (always vertex-independent).
    std::vector<DfEdge> edges = g.edges();
    edges.insert(edges.end(), result.added_edges.begin(),
                 result.added_edges.end());
    DataflowGraph ga = DataflowGraph::from_edges(g.num_vertices(), edges,
                                                 g.roots(), g.sinks());
    const NodeId root = g.roots().front();
    const NodeId sink = g.sinks().front();
    const auto cost_fn =
        options.edge_cost ? options.edge_cost : default_cost;
    const auto lv = g.levels();
    std::set<std::pair<NodeId, NodeId>> have;
    for (const DfEdge& e : edges) have.insert({e.from, e.to});
    for (NodeId v : ga.connectivity_violations()) {
      if (ga.vertex_disjoint_paths(root, v, 2) < 2 &&
          have.insert({root, v}).second) {
        result.added_edges.push_back({root, v});
        result.cost += cost_fn(lv[v]);
      }
      if (ga.vertex_disjoint_paths(v, sink, 2) < 2 &&
          have.insert({v, sink}).second) {
        result.added_edges.push_back({v, sink});
        result.cost += cost_fn(lv[sink] - lv[v]);
      }
    }
  }

  // Bootstrap anchors for every added edge (used by the synthesizer to
  // place the mux address registers).
  const GuardGroups gg = build_groups(g, options.vertex_guards);
  result.edge_anchor.reserve(result.added_edges.size());
  for (const DfEdge& e : result.added_edges)
    result.edge_anchor.push_back(
        edge_bootstrap_anchor(e, g, options.vertex_guards, gg));
  obs::count("augment.runs");
  obs::count("augment.added_edges", result.added_edges.size());
  obs::count("augment.bb_nodes", static_cast<std::uint64_t>(result.bb_nodes));
  obs::count("augment.cycle_events",
             static_cast<std::uint64_t>(result.cycle_events));
  obs::count("augment.spof_edges",
             static_cast<std::uint64_t>(result.spof_edges));
  return result;
}

}  // namespace ftrsn
