// Connectivity augmentation of the RSN dataflow graph (paper §III-D).
//
// Computes a minimal-cost set of augmenting edges such that every vertex of
// the dataflow graph has at least two incoming and two outgoing edges to
// distinct vertices (where satisfiable in principle) and the augmented
// graph stays acyclic.  Potential edges run level-forward
// (level(j) >= level(i)); the edge cost grows with the level distance so
// that minimizing cost avoids long signal lines.
//
// Engines:
//  * kFlow (default): branch & bound whose relaxation is a min-cost flow —
//    the degree-covering LP is a transportation problem with an integral
//    polytope, so each node solves the ILP-without-acyclicity exactly;
//    cycles (possible only among same-level edges) are eliminated by
//    branching on the cycle's edges.
//  * kIlp: the paper's formulation (eqs. 2-5) solved literally with the
//    in-tree 0/1 ILP solver and lazily separated acyclicity cuts.  For
//    small instances and cross-checking.
//  * kGreedy: cost-ordered sweep with cycle repair; linear-time fallback
//    and ablation baseline.
#pragma once

#include <functional>
#include <vector>

#include "graph/dataflow.hpp"
#include "ilp/mincost_flow.hpp"

namespace ftrsn {

struct AugmentOptions {
  enum class Engine { kFlow, kIlp, kGreedy };
  Engine engine = Engine::kFlow;

  /// Candidate targets kept per vertex and direction, nearest level first.
  /// <= 0 means no pruning (the full level-forward potential edge set E_P).
  int window = 8;

  /// Edge cost as a function of the level difference (>= 0).  Must be
  /// positive; defaults to 1 + delta as in DESIGN.md.
  std::function<long long(int)> edge_cost;

  /// After the degree-based optimization, audit the augmented graph for
  /// remaining single points of failure (the degree constraints are
  /// necessary but not sufficient for the vertex-independence requirement
  /// of §III-C) and add minimal-cost "jump" edges over each SPOF.  On by
  /// default: this realizes the actual fault-tolerance requirement.
  bool spof_repair = true;

  /// Additionally audit true 2-vertex-connectivity with Menger (max-flow)
  /// checks and repair remaining violations with direct root->v / v->sink
  /// edges (ablation mode; strictly stronger and more expensive).
  bool strict_two_connectivity = false;

  /// Vertices that may receive augmenting edges (targets).  Empty = the
  /// caller accepts the default policy (segments and sinks only), supplied
  /// via `target_allowed`.
  std::vector<bool> target_allowed;

  /// Configuration guards per vertex: the set of control registers (SIB
  /// registers) that must be asserted for the vertex's position to lie on
  /// an active scan path.  When provided, a candidate edge (i, j) is only
  /// admitted if guards[i] is a subset of guards[j] ("guard-monotone"):
  /// otherwise the detour could never be bootstrapped in exactly the fault
  /// scenarios it is meant to survive (a source inside a bypassed
  /// sub-network is unreachable when the sub-network's own SIB is faulty).
  /// Each inner vector must be sorted.
  std::vector<std::vector<NodeId>> vertex_guards;

  int max_bb_nodes = 4000;

  /// Min-cost-flow engine used by the kFlow relaxation (cost-scaling by
  /// default; set algorithm = kSsp to run the differential oracle).
  MinCostFlowOptions mcf;
};

struct AugmentResult {
  std::vector<DfEdge> added_edges;
  /// Bootstrap anchor per added edge (parallel to added_edges): the vertex
  /// after which the edge's mux address register must be spliced so it
  /// remains writable in exactly the fault scenarios the edge bypasses —
  /// the last vertex towards the source whose configuration guards are a
  /// subset of the target's.  kInvalidNode = the anchor is a primary
  /// scan-in (steer the mux from a primary control pin instead).
  std::vector<NodeId> edge_anchor;
  long long cost = 0;
  int bb_nodes = 0;       ///< explored branch & bound nodes (flow engine)
  int cycle_events = 0;   ///< cycles eliminated (branching or repair)
  int spof_edges = 0;     ///< shingle edges added by backbone-skip hardening
  bool optimal = false;   ///< engine proved optimality of the relaxation+cuts
};

/// Augments `g` so the degree requirements hold.  `target_allowed[v]` marks
/// vertices that may receive new incoming edges (and thus a mux in front);
/// sources can be any non-sink vertex.
AugmentResult augment_connectivity(const DataflowGraph& g,
                                   const AugmentOptions& options = {});

/// The candidate (potential) edge set the engines optimize over — exposed
/// for tests and the Fig. 4 reproduction.
struct Candidate {
  DfEdge edge;
  long long cost;
};
std::vector<Candidate> potential_edges(const DataflowGraph& g,
                                       const AugmentOptions& options);

}  // namespace ftrsn
