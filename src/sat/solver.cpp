#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

namespace ftrsn::sat {

int Solver::new_var() {
  const int v = num_vars();
  assign_.push_back(kUndef);
  level_.push_back(-1);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

void Solver::add_clause(std::vector<Lit> lits) {
  // Simplify: drop duplicate literals, detect tautologies, strip literals
  // already false at level 0.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code < b.code; });
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 0; i + 1 < lits.size(); ++i)
    if (lits[i].var() == lits[i + 1].var()) return;  // tautology (l, ~l)
  std::vector<Lit> kept;
  for (Lit l : lits) {
    FTRSN_CHECK(l.var() >= 0 && l.var() < num_vars());
    const std::int8_t v = lit_value(l);
    if (v == kTrue && level_[static_cast<std::size_t>(l.var())] == 0)
      return;  // satisfied forever
    if (v == kFalse && level_[static_cast<std::size_t>(l.var())] == 0)
      continue;  // falsified forever
    kept.push_back(l);
  }
  if (kept.empty()) {
    unsat_ = true;
    return;
  }
  if (kept.size() == 1) {
    FTRSN_CHECK(trail_lim_.empty());
    if (!enqueue(kept[0], -1)) unsat_ = true;
    if (propagate() != -1) unsat_ = true;
    return;
  }
  clauses_.push_back({std::move(kept), false, 0.0});
  attach(static_cast<int>(clauses_.size()) - 1);
}

void Solver::attach(int ci) {
  const Clause& c = clauses_[static_cast<std::size_t>(ci)];
  watches_[static_cast<std::size_t>(c.lits[0].code)].push_back(ci);
  watches_[static_cast<std::size_t>(c.lits[1].code)].push_back(ci);
}

bool Solver::enqueue(Lit l, int reason) {
  const std::int8_t v = lit_value(l);
  if (v == kFalse) return false;
  if (v == kTrue) return true;
  assign_[static_cast<std::size_t>(l.var())] = l.neg() ? kFalse : kTrue;
  level_[static_cast<std::size_t>(l.var())] =
      static_cast<int>(trail_lim_.size());
  reason_[static_cast<std::size_t>(l.var())] = reason;
  trail_.push_back(l);
  return true;
}

int Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_propagations_;
    // Clauses watching ~p must find a new watch or propagate/conflict.
    std::vector<int>& watch_list =
        watches_[static_cast<std::size_t>((~p).code)];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const int ci = watch_list[i];
      Clause& c = clauses_[static_cast<std::size_t>(ci)];
      // Normalize: watched literal ~p at position 1.
      if (c.lits[0] == ~p) std::swap(c.lits[0], c.lits[1]);
      if (lit_value(c.lits[0]) == kTrue) {
        watch_list[keep++] = ci;  // satisfied; keep watch
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (lit_value(c.lits[k]) != kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[static_cast<std::size_t>(c.lits[1].code)].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      watch_list[keep++] = ci;
      if (!enqueue(c.lits[0], ci)) {
        // Conflict: restore remaining watches and report.
        for (std::size_t k = i + 1; k < watch_list.size(); ++k)
          watch_list[keep++] = watch_list[k];
        watch_list.resize(keep);
        return ci;
      }
    }
    watch_list.resize(keep);
  }
  return -1;
}

void Solver::bump_var(int var) {
  activity_[static_cast<std::size_t>(var)] += activity_inc_;
  if (activity_[static_cast<std::size_t>(var)] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    activity_inc_ *= 1e-100;
  }
}

void Solver::decay_activities() { activity_inc_ /= 0.95; }

void Solver::analyze(int conflict, std::vector<Lit>& learnt,
                     int& backtrack_level) {
  // First-UIP resolution.
  learnt.clear();
  learnt.push_back(Lit());  // slot for the asserting literal
  std::vector<bool> seen(static_cast<std::size_t>(num_vars()), false);
  int counter = 0;
  Lit p;
  int reason = conflict;
  std::size_t index = trail_.size();
  const int current_level = static_cast<int>(trail_lim_.size());

  do {
    FTRSN_CHECK(reason != -1);
    Clause& c = clauses_[static_cast<std::size_t>(reason)];
    if (c.learnt) c.activity += 1.0;
    for (std::size_t j = (p.code == -1 ? 0 : 1); j < c.lits.size(); ++j) {
      const Lit q = c.lits[j];
      if (seen[static_cast<std::size_t>(q.var())]) continue;
      if (level_[static_cast<std::size_t>(q.var())] <= 0) continue;
      seen[static_cast<std::size_t>(q.var())] = true;
      bump_var(q.var());
      if (level_[static_cast<std::size_t>(q.var())] >= current_level) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Next literal on the trail to resolve on.
    while (!seen[static_cast<std::size_t>(trail_[index - 1].var())]) --index;
    p = trail_[--index];
    seen[static_cast<std::size_t>(p.var())] = false;
    reason = reason_[static_cast<std::size_t>(p.var())];
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  backtrack_level = 0;
  if (learnt.size() > 1) {
    // Second-highest decision level among the learnt literals.
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i)
      if (level_[static_cast<std::size_t>(learnt[i].var())] >
          level_[static_cast<std::size_t>(learnt[max_i].var())])
        max_i = i;
    std::swap(learnt[1], learnt[max_i]);
    backtrack_level = level_[static_cast<std::size_t>(learnt[1].var())];
  }
}

void Solver::backtrack(int target_level) {
  if (static_cast<int>(trail_lim_.size()) <= target_level) return;
  const std::size_t bound =
      static_cast<std::size_t>(trail_lim_[static_cast<std::size_t>(target_level)]);
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const int v = trail_[i].var();
    assign_[static_cast<std::size_t>(v)] = kUndef;
    reason_[static_cast<std::size_t>(v)] = -1;
    level_[static_cast<std::size_t>(v)] = -1;
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<std::size_t>(target_level));
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch() {
  int best = -1;
  double best_activity = -1.0;
  for (int v = 0; v < num_vars(); ++v) {
    if (assign_[static_cast<std::size_t>(v)] != kUndef) continue;
    if (activity_[static_cast<std::size_t>(v)] > best_activity) {
      best_activity = activity_[static_cast<std::size_t>(v)];
      best = v;
    }
  }
  if (best < 0) return Lit();
  return Lit(best, true);  // negative polarity first
}

SolveResult Solver::solve(const std::vector<Lit>& assumptions,
                          std::int64_t conflict_limit) {
  if (unsat_) return SolveResult::kUnsat;
  backtrack(0);
  std::int64_t conflicts_here = 0;
  std::int64_t restart_limit = 128;

  // Assumption levels are the first |assumptions| decision levels.
  const auto establish_assumptions = [&]() -> int {
    for (const Lit a : assumptions) {
      if (lit_value(a) == kTrue) continue;
      if (lit_value(a) == kFalse) return -2;  // conflicting assumptions
      trail_lim_.push_back(static_cast<int>(trail_.size()));
      if (!enqueue(a, -1)) return -2;
      const int confl = propagate();
      if (confl != -1) return confl;
    }
    return -1;
  };

  {
    const int confl = establish_assumptions();
    if (confl == -2) return SolveResult::kUnsat;
    if (confl != -1) return SolveResult::kUnsat;
  }
  const int assumption_levels = static_cast<int>(trail_lim_.size());

  while (true) {
    const int confl = propagate();
    if (confl != -1) {
      ++stats_conflicts_;
      ++conflicts_here;
      if (static_cast<int>(trail_lim_.size()) <= assumption_levels)
        return SolveResult::kUnsat;
      std::vector<Lit> learnt;
      int back_level = 0;
      analyze(confl, learnt, back_level);
      backtrack(std::max(back_level, assumption_levels));
      if (learnt.size() == 1) {
        backtrack(assumption_levels == 0 ? 0 : assumption_levels);
        if (static_cast<int>(trail_lim_.size()) > 0 && back_level == 0) {
          // fall through; enqueue below at current level
        }
        if (!enqueue(learnt[0], -1)) return SolveResult::kUnsat;
      } else {
        clauses_.push_back({learnt, true, 1.0});
        attach(static_cast<int>(clauses_.size()) - 1);
        if (!enqueue(learnt[0], static_cast<int>(clauses_.size()) - 1))
          return SolveResult::kUnsat;
      }
      decay_activities();
      if (conflict_limit >= 0 && conflicts_here >= conflict_limit)
        return SolveResult::kLimit;
      if (conflicts_here >= restart_limit) {
        restart_limit = restart_limit + restart_limit / 2;
        backtrack(assumption_levels);
      }
      continue;
    }
    const Lit branch = pick_branch();
    if (branch.code == -1) {
      // Full model.
      model_.assign(static_cast<std::size_t>(num_vars()), false);
      for (int v = 0; v < num_vars(); ++v)
        model_[static_cast<std::size_t>(v)] =
            assign_[static_cast<std::size_t>(v)] == kTrue;
      backtrack(0);
      return SolveResult::kSat;
    }
    ++stats_decisions_;
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    enqueue(branch, -1);
  }
}

}  // namespace ftrsn::sat
