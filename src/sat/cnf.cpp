#include "sat/cnf.hpp"

#include <algorithm>
#include <vector>

namespace ftrsn::sat {

CnfEncoder::CnfEncoder(const CtrlPool& pool, Solver& solver)
    : pool_(pool), solver_(solver) {
  lit_true_ = Lit(solver_.new_var(), false);
  solver_.add_unit(lit_true_);
}

Lit CnfEncoder::encode(CtrlRef r) {
  const auto hit = memo_.find(r);
  if (hit != memo_.end()) return hit->second;

  // Interning appends parents after their children, so ascending CtrlRef
  // order is a valid bottom-up encoding order of the cone.  An explicit
  // worklist (instead of recursion) keeps deep select cascades of large
  // ITC'02 networks off the call stack.
  std::vector<CtrlRef> stack{r}, cone;
  std::vector<char> seen_local;
  const auto seen = [&](CtrlRef t) -> char& {
    const auto i = static_cast<std::size_t>(t);
    if (i >= seen_local.size()) seen_local.resize(i + 1, 0);
    return seen_local[i];
  };
  seen(r) = 1;
  while (!stack.empty()) {
    const CtrlRef t = stack.back();
    stack.pop_back();
    if (memo_.count(t)) continue;  // subterm of an earlier encode() call
    cone.push_back(t);
    const CtrlNode& n = pool_.node(t);
    for (int i = 0; i < n.arity(); ++i)
      if (!seen(n.kid[i])) {
        seen(n.kid[i]) = 1;
        stack.push_back(n.kid[i]);
      }
  }
  std::sort(cone.begin(), cone.end());

  for (CtrlRef t : cone) {
    const CtrlNode& n = pool_.node(t);
    Lit y;
    switch (n.op) {
      case CtrlOp::kConst:
        y = n.bit ? lit_true_ : ~lit_true_;
        break;
      case CtrlOp::kEnable:
      case CtrlOp::kPortSel:
      case CtrlOp::kShadowBit:
        y = Lit(solver_.new_var(), false);
        break;
      case CtrlOp::kNot:
        y = ~memo_.at(n.kid[0]);
        break;
      case CtrlOp::kAnd: {
        const Lit a = memo_.at(n.kid[0]), b = memo_.at(n.kid[1]);
        y = Lit(solver_.new_var(), false);
        solver_.add_binary(~y, a);
        solver_.add_binary(~y, b);
        solver_.add_ternary(y, ~a, ~b);
        break;
      }
      case CtrlOp::kOr: {
        const Lit a = memo_.at(n.kid[0]), b = memo_.at(n.kid[1]);
        y = Lit(solver_.new_var(), false);
        solver_.add_binary(y, ~a);
        solver_.add_binary(y, ~b);
        solver_.add_ternary(~y, a, b);
        break;
      }
      case CtrlOp::kMaj3: {
        const Lit a = memo_.at(n.kid[0]), b = memo_.at(n.kid[1]),
                  c = memo_.at(n.kid[2]);
        y = Lit(solver_.new_var(), false);
        // y <-> at least two of {a, b, c}.
        solver_.add_ternary(~y, a, b);
        solver_.add_ternary(~y, a, c);
        solver_.add_ternary(~y, b, c);
        solver_.add_ternary(y, ~a, ~b);
        solver_.add_ternary(y, ~a, ~c);
        solver_.add_ternary(y, ~b, ~c);
        break;
      }
    }
    memo_.emplace(t, y);
  }
  return memo_.at(r);
}

}  // namespace ftrsn::sat
