// CDCL SAT solver (substrate for the bounded-model-checking accessibility
// engine, paper §II-B / [24]).
//
// Standard conflict-driven clause learning: two-watched-literal scheme,
// VSIDS-style activity ordering, first-UIP learning with clause
// minimization hooks omitted for clarity, and Luby-free geometric restarts.
// Supports incremental solving under assumptions.
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace ftrsn::sat {

/// A literal: variable index with sign.  Internally encoded as 2*var+sign.
struct Lit {
  int code = -1;

  Lit() = default;
  Lit(int var, bool negative) : code(2 * var + (negative ? 1 : 0)) {}

  int var() const { return code >> 1; }
  bool neg() const { return code & 1; }
  Lit operator~() const {
    Lit l;
    l.code = code ^ 1;
    return l;
  }
  bool operator==(const Lit&) const = default;
};

enum class SolveResult { kSat, kUnsat, kLimit };

class Solver {
 public:
  /// Creates a fresh variable; returns its index.
  int new_var();
  int num_vars() const { return static_cast<int>(assign_.size()); }

  /// Adds a clause (disjunction of literals).  Empty clause makes the
  /// instance trivially unsatisfiable.
  void add_clause(std::vector<Lit> lits);
  void add_unit(Lit a) { add_clause({a}); }
  void add_binary(Lit a, Lit b) { add_clause({a, b}); }
  void add_ternary(Lit a, Lit b, Lit c) { add_clause({a, b, c}); }

  /// Solves under the given assumptions.
  SolveResult solve(const std::vector<Lit>& assumptions = {},
                    std::int64_t conflict_limit = -1);

  /// Model access (valid after kSat).
  bool value(int var) const { return model_[static_cast<std::size_t>(var)]; }

  std::int64_t conflicts() const { return stats_conflicts_; }
  std::int64_t decisions() const { return stats_decisions_; }
  std::int64_t propagations() const { return stats_propagations_; }
  std::size_t num_clauses() const { return clauses_.size(); }

 private:
  enum : std::int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

  struct Clause {
    std::vector<Lit> lits;
    bool learnt = false;
    double activity = 0.0;
  };

  std::int8_t lit_value(Lit l) const {
    const std::int8_t v = assign_[static_cast<std::size_t>(l.var())];
    if (v == kUndef) return kUndef;
    return (v == kTrue) != l.neg() ? kTrue : kFalse;
  }

  bool enqueue(Lit l, int reason);
  int propagate();  // returns conflicting clause index or -1
  void analyze(int conflict, std::vector<Lit>& learnt, int& backtrack_level);
  void backtrack(int level);
  void bump_var(int var);
  void decay_activities();
  Lit pick_branch();
  void attach(int clause_index);

  std::vector<Clause> clauses_;
  std::vector<std::vector<int>> watches_;  // per literal code
  std::vector<std::int8_t> assign_;        // per var
  std::vector<int> level_;                 // per var
  std::vector<int> reason_;                // per var, clause index or -1
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t propagate_head_ = 0;
  std::vector<double> activity_;
  double activity_inc_ = 1.0;
  std::vector<bool> model_;
  bool unsat_ = false;
  std::int64_t stats_conflicts_ = 0;
  std::int64_t stats_decisions_ = 0;
  std::int64_t stats_propagations_ = 0;
};

}  // namespace ftrsn::sat
