// CtrlPool -> CNF Tseitin encoder.
//
// Translates hash-consed control expressions (rsn/ctrl.hpp) into clauses of
// the CDCL solver so that control-cone properties (satisfiability, provable
// constness, forced-value queries) can be decided exactly for cones of any
// size.  Each pool node gets at most one solver variable (the encoder is
// memoized over the expression DAG, so shared subterms are encoded once);
// atoms (enable / port-select / shadow bits) map to free variables, gates
// to Tseitin-defined variables.
//
// The encoding is equivalence-complete, not merely equisatisfiable: every
// gate variable is constrained in both directions (y <-> f(kids)), so the
// same encoder instance can serve positive and negative queries about any
// subterm under assumptions.
#pragma once

#include <unordered_map>

#include "rsn/ctrl.hpp"
#include "sat/solver.hpp"

namespace ftrsn::sat {

class CnfEncoder {
 public:
  /// Both the pool and the solver must outlive the encoder.
  CnfEncoder(const CtrlPool& pool, Solver& solver);

  /// Literal whose value equals expression `r` in every model; encodes the
  /// cone of `r` on first use and is memoized afterwards.
  Lit encode(CtrlRef r);

  /// The constant-true literal of this instance (its negation is FALSE).
  Lit lit_true() const { return lit_true_; }

  /// Solver variables created so far for this encoder (atoms + gates + the
  /// constant), for diagnostics and tests.
  std::size_t num_encoded() const { return memo_.size(); }

 private:
  const CtrlPool& pool_;
  Solver& solver_;
  Lit lit_true_;
  std::unordered_map<CtrlRef, Lit> memo_;
};

}  // namespace ftrsn::sat
