// RSN dataflow graph (paper §III-B).
//
// Vertices represent scan segments, scan multiplexers and primary scan
// ports; edges represent the scan interconnects between them.  Control
// logic is not part of the graph — only the dataflow is modeled.  The graph
// is a DAG whose unique roots are the primary scan-in ports and whose sinks
// are the primary scan-out ports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rsn/rsn.hpp"

namespace ftrsn {

/// Directed edge between dataflow vertices (vertex ids == RSN NodeIds).
struct DfEdge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  bool operator==(const DfEdge&) const = default;
  bool operator<(const DfEdge& o) const {
    return from != o.from ? from < o.from : to < o.to;
  }
};

/// Dataflow graph of an RSN.
class DataflowGraph {
 public:
  /// Extracts the graph from a structural RSN.  Vertex ids coincide with
  /// the RSN's NodeIds (every node is a vertex).
  static DataflowGraph from_rsn(const Rsn& rsn);

  /// Builds a graph from an explicit vertex/edge list (used by tests and
  /// by the augmentation engine when evaluating candidate edge sets).
  /// Throws std::invalid_argument listing *all* out-of-range vertex ids in
  /// `edges`, `roots` and `sinks` (instead of relying on .at() later).
  static DataflowGraph from_edges(std::size_t num_vertices,
                                  std::vector<DfEdge> edges,
                                  std::vector<NodeId> roots,
                                  std::vector<NodeId> sinks);

  std::size_t num_vertices() const { return succ_.size(); }
  std::size_t num_edges() const { return edges_.size(); }
  const std::vector<DfEdge>& edges() const { return edges_; }
  const std::vector<NodeId>& successors(NodeId v) const { return succ_.at(v); }
  const std::vector<NodeId>& predecessors(NodeId v) const { return pred_.at(v); }
  const std::vector<NodeId>& roots() const { return roots_; }
  const std::vector<NodeId>& sinks() const { return sinks_; }

  /// Topological order (roots first).  Checks acyclicity.
  std::vector<NodeId> topo_order() const;

  /// Topological level of every vertex: length of the longest path from any
  /// root (roots have level 0).  Unreachable vertices get level 0.
  std::vector<int> levels() const;

  bool has_cycle() const;

  /// Returns one directed cycle (vertex sequence) if the graph has one;
  /// empty vector otherwise.  Used for lazy acyclicity cuts.
  std::vector<NodeId> find_cycle() const;

  /// Maximum number of *internally vertex-disjoint* paths from `s` to `t`
  /// (Menger), computed by unit-vertex-capacity max-flow on the split
  /// graph.  `s` and `t` themselves are uncapacitated.  `cap` bounds the
  /// computed flow (2 suffices for the fault-tolerance audit).
  int vertex_disjoint_paths(NodeId s, NodeId t, int cap = 2) const;

  /// Fault-tolerance connectivity audit (paper §III-C): for every vertex v
  /// (other than ports), are there two vertex-independent paths root -> v
  /// and v -> sink?  Returns the list of vertices that fail.
  std::vector<NodeId> connectivity_violations() const;

  /// DOT export; `name` maps vertex -> label, `extra` edges are drawn
  /// dashed (used to render Fig. 4-style augmentation pictures).
  std::string to_dot(const std::vector<std::string>& name,
                     const std::vector<DfEdge>& extra = {}) const;

 private:
  void add_edge(NodeId from, NodeId to);

  std::vector<DfEdge> edges_;
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  std::vector<NodeId> roots_;
  std::vector<NodeId> sinks_;
};

}  // namespace ftrsn
