#include "graph/dataflow.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace ftrsn {

void DataflowGraph::add_edge(NodeId from, NodeId to) {
  edges_.push_back({from, to});
  succ_[from].push_back(to);
  pred_[to].push_back(from);
}

DataflowGraph DataflowGraph::from_rsn(const Rsn& rsn) {
  DataflowGraph g;
  g.succ_.resize(rsn.num_nodes());
  g.pred_.resize(rsn.num_nodes());
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    switch (n.kind) {
      case NodeKind::kPrimaryIn:
        g.roots_.push_back(id);
        break;
      case NodeKind::kPrimaryOut:
        g.sinks_.push_back(id);
        g.add_edge(n.scan_in, id);
        break;
      case NodeKind::kSegment:
        g.add_edge(n.scan_in, id);
        break;
      case NodeKind::kMux:
        g.add_edge(n.mux_in[0], id);
        g.add_edge(n.mux_in[1], id);
        break;
    }
  }
  return g;
}

DataflowGraph DataflowGraph::from_edges(std::size_t num_vertices,
                                        std::vector<DfEdge> edges,
                                        std::vector<NodeId> roots,
                                        std::vector<NodeId> sinks) {
  // Aggregate every out-of-range id into one diagnostic instead of relying
  // on the first .at() throw deep inside a later traversal.
  std::string bad;
  for (std::size_t i = 0; i < edges.size(); ++i)
    if (edges[i].from >= num_vertices || edges[i].to >= num_vertices)
      bad += strprintf("  edge #%zu (%u -> %u) outside [0, %zu)\n", i,
                       edges[i].from, edges[i].to, num_vertices);
  for (NodeId r : roots)
    if (r >= num_vertices)
      bad += strprintf("  root %u outside [0, %zu)\n", r, num_vertices);
  for (NodeId s : sinks)
    if (s >= num_vertices)
      bad += strprintf("  sink %u outside [0, %zu)\n", s, num_vertices);
  if (!bad.empty())
    throw std::invalid_argument("DataflowGraph::from_edges: out-of-range "
                                "vertex ids:\n" +
                                bad);
  DataflowGraph g;
  g.succ_.resize(num_vertices);
  g.pred_.resize(num_vertices);
  g.roots_ = std::move(roots);
  g.sinks_ = std::move(sinks);
  for (const DfEdge& e : edges) g.add_edge(e.from, e.to);
  return g;
}

std::vector<NodeId> DataflowGraph::topo_order() const {
  std::vector<int> indeg(num_vertices(), 0);
  for (const DfEdge& e : edges_) ++indeg[e.to];
  std::vector<NodeId> queue;
  for (NodeId v = 0; v < num_vertices(); ++v)
    if (indeg[v] == 0) queue.push_back(v);
  std::vector<NodeId> order;
  order.reserve(num_vertices());
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    order.push_back(v);
    for (NodeId s : succ_[v])
      if (--indeg[s] == 0) queue.push_back(s);
  }
  FTRSN_CHECK_MSG(order.size() == num_vertices(), "dataflow graph has a cycle");
  return order;
}

std::vector<int> DataflowGraph::levels() const {
  const std::vector<NodeId> order = topo_order();
  std::vector<int> level(num_vertices(), 0);
  for (NodeId v : order)
    for (NodeId s : succ_[v]) level[s] = std::max(level[s], level[v] + 1);
  return level;
}

bool DataflowGraph::has_cycle() const { return !find_cycle().empty(); }

std::vector<NodeId> DataflowGraph::find_cycle() const {
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(num_vertices(), kWhite);
  std::vector<NodeId> parent(num_vertices(), kInvalidNode);
  // Iterative DFS with explicit stack of (vertex, next-successor-index).
  for (NodeId start = 0; start < num_vertices(); ++start) {
    if (color[start] != kWhite) continue;
    std::vector<std::pair<NodeId, std::size_t>> stack{{start, 0}};
    color[start] = kGray;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      if (i < succ_[v].size()) {
        const NodeId s = succ_[v][i++];
        if (color[s] == kGray) {
          // Found a back edge v -> s; reconstruct the cycle s ... v.
          std::vector<NodeId> cycle{s};
          for (NodeId u = v; u != s; u = parent[u]) cycle.push_back(u);
          std::reverse(cycle.begin() + 1, cycle.end());
          return cycle;
        }
        if (color[s] == kWhite) {
          color[s] = kGray;
          parent[s] = v;
          stack.push_back({s, 0});
        }
      } else {
        color[v] = kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

namespace {

/// Unit-vertex-capacity max-flow on the split graph (Menger's theorem).
/// Vertex v becomes v_in = 2v and v_out = 2v+1 with an internal arc of
/// capacity 1 (infinite for s and t).  Edges get capacity 1.
class SplitFlow {
 public:
  explicit SplitFlow(std::size_t n) : head_(2 * n + 4, -1) {}

  int in(NodeId v) const { return static_cast<int>(2 * v); }
  int out(NodeId v) const { return static_cast<int>(2 * v + 1); }

  void add_arc(int from, int to, int cap) {
    arcs_.push_back({to, head_[static_cast<std::size_t>(from)], cap});
    head_[static_cast<std::size_t>(from)] = static_cast<int>(arcs_.size() - 1);
    arcs_.push_back({from, head_[static_cast<std::size_t>(to)], 0});
    head_[static_cast<std::size_t>(to)] = static_cast<int>(arcs_.size() - 1);
  }

  /// Edmonds-Karp bounded by `limit`.
  int max_flow(int s, int t, int limit) {
    int flow = 0;
    while (flow < limit) {
      std::vector<int> pred_arc(head_.size(), -1);
      std::queue<int> bfs;
      bfs.push(s);
      pred_arc[static_cast<std::size_t>(s)] = -2;
      bool found = false;
      while (!bfs.empty() && !found) {
        const int v = bfs.front();
        bfs.pop();
        for (int a = head_[static_cast<std::size_t>(v)]; a != -1;
             a = arcs_[static_cast<std::size_t>(a)].next) {
          const Arc& arc = arcs_[static_cast<std::size_t>(a)];
          if (arc.cap <= 0 || pred_arc[static_cast<std::size_t>(arc.to)] != -1)
            continue;
          pred_arc[static_cast<std::size_t>(arc.to)] = a;
          if (arc.to == t) {
            found = true;
            break;
          }
          bfs.push(arc.to);
        }
      }
      if (!found) break;
      for (int v = t; v != s;) {
        const int a = pred_arc[static_cast<std::size_t>(v)];
        arcs_[static_cast<std::size_t>(a)].cap -= 1;
        arcs_[static_cast<std::size_t>(a ^ 1)].cap += 1;
        v = arcs_[static_cast<std::size_t>(a ^ 1)].to;
      }
      ++flow;
    }
    return flow;
  }

 private:
  struct Arc {
    int to;
    int next;
    int cap;
  };
  std::vector<int> head_;
  std::vector<Arc> arcs_;
};

}  // namespace

int DataflowGraph::vertex_disjoint_paths(NodeId s, NodeId t, int cap) const {
  if (s == t) return cap;
  SplitFlow flow(num_vertices());
  for (NodeId v = 0; v < num_vertices(); ++v) {
    const int c = (v == s || v == t) ? cap : 1;
    flow.add_arc(flow.in(v), flow.out(v), c);
  }
  for (const DfEdge& e : edges_) flow.add_arc(flow.out(e.from), flow.in(e.to), 1);
  return flow.max_flow(flow.out(s), flow.in(t), cap);
}

namespace {

/// Disjoint paths between a *set* of terminals and one vertex, with a
/// virtual super-terminal so that paths from/to different ports only need
/// to be internally disjoint.
int disjoint_paths_set(const DataflowGraph& g, const std::vector<NodeId>& set,
                       NodeId v, bool from_set, int cap) {
  SplitFlow flow(g.num_vertices());
  const int super = static_cast<int>(2 * g.num_vertices() + 2);
  for (NodeId u = 0; u < g.num_vertices(); ++u) {
    const bool uncap = u == v || std::find(set.begin(), set.end(), u) != set.end();
    flow.add_arc(flow.in(u), flow.out(u), uncap ? cap : 1);
  }
  for (const DfEdge& e : g.edges())
    flow.add_arc(flow.out(e.from), flow.in(e.to), 1);
  for (NodeId t : set) {
    if (from_set)
      flow.add_arc(super, flow.in(t), cap);
    else
      flow.add_arc(flow.out(t), super, cap);
  }
  return from_set ? flow.max_flow(super, flow.in(v), cap)
                  : flow.max_flow(flow.out(v), super, cap);
}

}  // namespace

std::vector<NodeId> DataflowGraph::connectivity_violations() const {
  std::vector<NodeId> bad;
  const auto is_port = [&](NodeId v) {
    return std::find(roots_.begin(), roots_.end(), v) != roots_.end() ||
           std::find(sinks_.begin(), sinks_.end(), v) != sinks_.end();
  };
  for (NodeId v = 0; v < num_vertices(); ++v) {
    if (is_port(v)) continue;
    const int from_root = disjoint_paths_set(*this, roots_, v, true, 2);
    const int to_sink = disjoint_paths_set(*this, sinks_, v, false, 2);
    if (from_root < 2 || to_sink < 2) bad.push_back(v);
  }
  return bad;
}

std::string DataflowGraph::to_dot(const std::vector<std::string>& name,
                                  const std::vector<DfEdge>& extra) const {
  std::string dot = "digraph rsn_dataflow {\n  rankdir=LR;\n";
  const auto label = [&](NodeId v) {
    return v < name.size() && !name[v].empty() ? name[v]
                                               : strprintf("v%u", v);
  };
  for (NodeId v = 0; v < num_vertices(); ++v)
    dot += strprintf("  n%u [label=\"%s\"];\n", v, label(v).c_str());
  for (const DfEdge& e : edges_)
    dot += strprintf("  n%u -> n%u;\n", e.from, e.to);
  for (const DfEdge& e : extra)
    dot += strprintf("  n%u -> n%u [style=dashed, color=blue];\n", e.from, e.to);
  dot += "}\n";
  return dot;
}

}  // namespace ftrsn
