#include "bmc/bmc.hpp"

#include <map>

#include "obs/obs.hpp"
#include "sat/solver.hpp"

namespace ftrsn {

namespace {

using sat::Lit;
using sat::SolveResult;
using sat::Solver;

/// One SAT instance: the RSN configuration unrolled over `steps` CSU
/// operations, with optional stuck-at forcing.
class Encoder {
 public:
  Encoder(const Rsn& rsn, int steps, const Fault* fault)
      : rsn_(rsn), steps_(steps), fault_(fault) {
    topo_ = rsn.topo_order();
    topo_pos_.resize(rsn.num_nodes());
    for (std::size_t i = 0; i < topo_.size(); ++i) topo_pos_[topo_[i]] = i;
    collect_atoms();
    lit_true_ = Lit(solver_.new_var(), false);
    solver_.add_unit(lit_true_);
    build_frames();
  }

  bool target_accessible(NodeId target, std::int64_t conflict_limit) {
    // Write access at some frame AND read access at some (possibly other)
    // frame.
    std::vector<Lit> writes, reads;
    for (int t = 0; t <= steps_; ++t) {
      writes.push_back(access_ok(target, t, /*write=*/true));
      reads.push_back(access_ok(target, t, /*write=*/false));
    }
    const Lit w = or_of(writes);
    const Lit r = or_of(reads);
    return solver_.solve({w, r}, conflict_limit) == SolveResult::kSat;
  }

  const Solver& solver() const { return solver_; }

 private:
  struct Atom {
    NodeId seg;
    std::uint16_t bit;
  };

  // --- atom collection ------------------------------------------------------
  void collect_atoms() {
    const CtrlPool& pool = rsn_.ctrl();
    for (CtrlRef r = 0; static_cast<std::size_t>(r) < pool.size(); ++r) {
      const CtrlNode& n = pool.node(r);
      if (n.op != CtrlOp::kShadowBit) continue;
      const auto key = std::make_pair(n.seg, n.bit);
      if (!atom_index_.count(key)) {
        atom_index_[key] = static_cast<int>(atoms_.size());
        atoms_.push_back({n.seg, n.bit});
      }
    }
    // Primary pins are free in every frame (chosen by the access procedure).
  }

  // --- generic gate helpers -------------------------------------------------
  Lit new_lit() { return Lit(solver_.new_var(), false); }
  Lit lit_false() { return ~lit_true_; }

  Lit and_of(const std::vector<Lit>& xs) {
    if (xs.empty()) return lit_true_;
    if (xs.size() == 1) return xs[0];
    const Lit y = new_lit();
    std::vector<Lit> clause{y};
    for (Lit x : xs) {
      solver_.add_binary(~y, x);
      clause.push_back(~x);
    }
    solver_.add_clause(clause);
    return y;
  }
  Lit or_of(const std::vector<Lit>& xs) {
    if (xs.empty()) return lit_false();
    if (xs.size() == 1) return xs[0];
    std::vector<Lit> neg;
    for (Lit x : xs) neg.push_back(~x);
    return ~and_of(neg);
  }
  Lit ite(Lit c, Lit a, Lit b) {  // c ? a : b
    const Lit y = new_lit();
    solver_.add_ternary(~c, ~a, y);
    solver_.add_ternary(~c, a, ~y);
    solver_.add_ternary(c, ~b, y);
    solver_.add_ternary(c, b, ~y);
    return y;
  }

  // --- per-frame state ------------------------------------------------------
  struct Frame {
    std::vector<Lit> atom;        // per collected atom
    std::vector<Lit> pins;        // per PSEL index used (created on demand)
    std::vector<Lit> on;          // per node: on the active path
    std::vector<Lit> addr;        // per node (muxes): address value
    std::vector<Lit> select;      // per node (segments)
    std::map<CtrlRef, Lit> expr;  // Tseitin cache
  };

  Lit pin_lit(Frame& f, std::uint16_t index) {
    while (f.pins.size() <= index) f.pins.push_back(new_lit());
    return f.pins[index];
  }

  Lit encode_expr(Frame& f, CtrlRef r) {
    const auto it = f.expr.find(r);
    if (it != f.expr.end()) return it->second;
    const CtrlPool& pool = rsn_.ctrl();
    const CtrlNode& n = pool.node(r);
    Lit result;
    // Control-net stuck-at forcing applies to the node's output.
    if (fault_ && fault_->forcing.point == Forcing::Point::kCtrlNet &&
        fault_->forcing.ctrl == r) {
      result = fault_->forcing.value ? lit_true_ : lit_false();
      f.expr[r] = result;
      return result;
    }
    switch (n.op) {
      case CtrlOp::kConst:
        result = n.bit ? lit_true_ : lit_false();
        break;
      case CtrlOp::kEnable:
        result = lit_true_;  // accesses run enabled
        break;
      case CtrlOp::kPortSel:
        result = pin_lit(f, n.bit);
        break;
      case CtrlOp::kShadowBit: {
        if (fault_ &&
            fault_->forcing.point == Forcing::Point::kShadowReplica &&
            fault_->forcing.node == n.seg && fault_->forcing.bit == n.bit &&
            fault_->forcing.index == n.replica) {
          result = fault_->forcing.value ? lit_true_ : lit_false();
        } else {
          result = f.atom[static_cast<std::size_t>(
              atom_index_.at(std::make_pair(n.seg, n.bit)))];
        }
        break;
      }
      case CtrlOp::kNot:
        result = ~encode_expr(f, n.kid[0]);
        break;
      case CtrlOp::kAnd:
        result = and_of({encode_expr(f, n.kid[0]), encode_expr(f, n.kid[1])});
        break;
      case CtrlOp::kOr:
        result = or_of({encode_expr(f, n.kid[0]), encode_expr(f, n.kid[1])});
        break;
      case CtrlOp::kMaj3: {
        const Lit a = encode_expr(f, n.kid[0]);
        const Lit b = encode_expr(f, n.kid[1]);
        const Lit c = encode_expr(f, n.kid[2]);
        result = or_of({and_of({a, b}), and_of({a, c}), and_of({b, c})});
        break;
      }
    }
    f.expr[r] = result;
    return result;
  }

  /// Active-path predicate per node: on(v) = OR over consumers c of
  /// (on(c) and c-forwards-v); scan-out ports are always observed.
  void encode_frame(Frame& f) {
    const std::size_t n_nodes = rsn_.num_nodes();
    f.on.assign(n_nodes, lit_false());
    f.addr.assign(n_nodes, lit_false());
    f.select.assign(n_nodes, lit_false());
    for (NodeId id = 0; id < n_nodes; ++id) {
      const RsnNode& n = rsn_.node(id);
      if (n.is_mux()) {
        Lit a = encode_expr(f, n.addr);
        if (fault_ && fault_->forcing.point == Forcing::Point::kMuxAddr &&
            fault_->forcing.node == id)
          a = fault_->forcing.value ? lit_true_ : lit_false();
        f.addr[id] = a;
      }
      if (n.is_segment()) f.select[id] = encode_expr(f, n.select);
    }
    const auto succ = rsn_.successors();
    // Reverse topological order: consumers are encoded before producers.
    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
      const NodeId v = *it;
      if (rsn_.node(v).kind == NodeKind::kPrimaryOut) {
        f.on[v] = lit_true_;
        continue;
      }
      std::vector<Lit> uses;
      for (NodeId c : succ[v]) {
        const RsnNode& cn = rsn_.node(c);
        if (cn.is_mux()) {
          const Lit side =
              cn.mux_in[1] == v ? f.addr[c] : ~f.addr[c];
          uses.push_back(and_of({f.on[c], side}));
        } else {
          uses.push_back(f.on[c]);
        }
      }
      f.on[v] = or_of(uses);
    }
  }

  /// Corruption predicate of the fault at one frame: true when the fault
  /// site corrupts the data stream of the active path.
  Lit corruption(Frame& f) {
    if (!fault_) return lit_false();
    const Forcing& fc = fault_->forcing;
    switch (fc.point) {
      case Forcing::Point::kSegmentIn:
      case Forcing::Point::kSegmentOut:
      case Forcing::Point::kMuxOut:
      case Forcing::Point::kPrimaryIn:
      case Forcing::Point::kPrimaryOut:
        return f.on[fc.node];
      case Forcing::Point::kMuxIn: {
        const Lit side = fc.index == 1 ? f.addr[fc.node] : ~f.addr[fc.node];
        return and_of({f.on[fc.node], side});
      }
      default:
        return lit_false();  // control faults do not corrupt data directly
    }
  }

  /// Topological position of the fault site (for upstream/downstream
  /// reasoning along the active path, which follows topological order).
  std::size_t fault_pos() const {
    const Forcing& fc = fault_->forcing;
    return topo_pos_[fc.node];
  }

  void build_frames() {
    frames_.resize(static_cast<std::size_t>(steps_) + 1);
    // Frame 0: reset configuration.
    Frame& f0 = frames_[0];
    f0.atom.resize(atoms_.size());
    for (std::size_t a = 0; a < atoms_.size(); ++a) {
      const bool v =
          (rsn_.node(atoms_[a].seg).reset_shadow >> atoms_[a].bit) & 1;
      f0.atom[a] = v ? lit_true_ : lit_false();
    }
    encode_frame(f0);

    for (int t = 1; t <= steps_; ++t) {
      Frame& prev = frames_[static_cast<std::size_t>(t - 1)];
      Frame& cur = frames_[static_cast<std::size_t>(t)];
      const Lit prev_corrupt = corruption(prev);
      cur.atom.resize(atoms_.size());
      for (std::size_t a = 0; a < atoms_.size(); ++a) {
        const NodeId seg = atoms_[a].seg;
        const RsnNode& sn = rsn_.node(seg);
        // Updated(seg) in the previous CSU: on path, selected, not
        // update-disabled (eq. 1).
        const Lit updated = and_of({prev.on[seg], prev.select[seg],
                                    ~encode_expr(prev, sn.up_dis)});
        // New value: free, unless the fault corrupts data upstream of the
        // segment on the active path or pins the segment's own input.
        Lit fresh = new_lit();
        if (fault_) {
          const Forcing& fc = fault_->forcing;
          const bool own_input =
              fc.point == Forcing::Point::kSegmentIn && fc.node == seg;
          const bool data_fault =
              fc.point == Forcing::Point::kSegmentIn ||
              fc.point == Forcing::Point::kSegmentOut ||
              fc.point == Forcing::Point::kMuxIn ||
              fc.point == Forcing::Point::kMuxOut ||
              fc.point == Forcing::Point::kPrimaryIn;
          if (own_input) {
            fresh = fc.value ? lit_true_ : lit_false();
          } else if (data_fault && fault_pos() < topo_pos_[seg]) {
            // The stuck-at value propagates to subsequent updatable
            // registers on the active path (paper §III-A): when the fault
            // corrupts the stream, the latched value is the stuck constant.
            fresh = ite(prev_corrupt, fc.value ? lit_true_ : lit_false(),
                        fresh);
          }
        }
        cur.atom[a] = ite(updated, fresh, prev.atom[a]);
      }
      encode_frame(cur);
    }
  }

  /// Access condition for `target` at frame t.
  Lit access_ok(NodeId target, int t, bool write) {
    Frame& f = frames_[static_cast<std::size_t>(t)];
    const RsnNode& n = rsn_.node(target);
    std::vector<Lit> conds{f.on[target], f.select[target]};
    if (write) {
      conds.push_back(~encode_expr(f, n.up_dis));
    } else {
      conds.push_back(~encode_expr(f, n.cap_dis));
    }
    if (fault_) {
      const Forcing& fc = fault_->forcing;
      const bool data_fault = fc.point == Forcing::Point::kSegmentIn ||
                              fc.point == Forcing::Point::kSegmentOut ||
                              fc.point == Forcing::Point::kMuxIn ||
                              fc.point == Forcing::Point::kMuxOut ||
                              fc.point == Forcing::Point::kPrimaryIn ||
                              fc.point == Forcing::Point::kPrimaryOut;
      if (data_fault) {
        if (fc.node == target) {
          // A stuck scan-out loses read access; a stuck scan-in loses
          // write access.
          if ((write && fc.point == Forcing::Point::kSegmentIn) ||
              (!write && fc.point == Forcing::Point::kSegmentOut))
            return lit_false();
        } else if (write && fault_pos() < topo_pos_[target]) {
          conds.push_back(~corruption(f));
        } else if (!write && fault_pos() > topo_pos_[target]) {
          conds.push_back(~corruption(f));
        }
      }
    }
    return and_of(conds);
  }

  const Rsn& rsn_;
  int steps_;
  const Fault* fault_;
  Solver solver_;
  Lit lit_true_;
  std::vector<NodeId> topo_;
  std::vector<std::size_t> topo_pos_;
  std::vector<Atom> atoms_;
  std::map<std::pair<NodeId, std::uint16_t>, int> atom_index_;
  std::vector<Frame> frames_;
};

}  // namespace

BmcAccessChecker::BmcAccessChecker(const Rsn& rsn, BmcOptions options)
    : rsn_(&rsn), options_(options) {
  steps_ = options.steps > 0 ? options.steps : rsn.stats().levels + 2;
}

bool BmcAccessChecker::accessible(NodeId target, const Fault* fault) const {
  FTRSN_CHECK(rsn_->node(target).is_segment());
  OBS_SPAN("bmc.check");
  static obs::Counter calls("bmc.sat_calls");
  static obs::Counter conflicts("bmc.sat_conflicts");
  static obs::Counter decisions("bmc.sat_decisions");
  static obs::Counter propagations("bmc.sat_propagations");
  static obs::Counter clauses("bmc.sat_clauses");
  Encoder encoder = [&] {
    OBS_SPAN("bmc.encode");
    return Encoder(*rsn_, steps_, fault);
  }();
  bool ok;
  {
    OBS_SPAN("bmc.solve");
    ok = encoder.target_accessible(target, options_.conflict_limit);
  }
  calls.add();
  conflicts.add(static_cast<std::uint64_t>(encoder.solver().conflicts()));
  decisions.add(static_cast<std::uint64_t>(encoder.solver().decisions()));
  propagations.add(
      static_cast<std::uint64_t>(encoder.solver().propagations()));
  clauses.add(encoder.solver().num_clauses());
  return ok;
}

std::vector<bool> BmcAccessChecker::accessible_under(const Fault* fault) const {
  std::vector<bool> acc(rsn_->num_nodes(), false);
  for (NodeId id = 0; id < rsn_->num_nodes(); ++id)
    if (rsn_->node(id).is_segment()) acc[id] = accessible(id, fault);
  return acc;
}

}  // namespace ftrsn
