// Bounded-model-checking accessibility engine (paper §II-B and §III-A).
//
// Implements the formal RSN model M = {S, H, I, V, C, c0, Select, Updis,
// Capdis, Active}: the configuration (control shadow registers + primary
// control inputs) is unrolled over n+1 CSU operations; the transition
// relation (eq. 1) lets a shadow register change only when its segment is
// on the active scan path, is selected and not update-disabled.  Stuck-at
// faults add forcing constraints, lock multiplexer addresses, and corrupt
// the values latched by registers downstream of the fault site on the
// active path.  A scan segment is accessible iff a sequence of CSU
// operations reaches a configuration where it can be written (no fault
// upstream on its path) and one where it can be read (no fault
// downstream).
//
// This engine is the gold reference for the fast fixpoint analyzer
// (fault/accessibility.hpp); tests cross-check the two on small networks.
#pragma once

#include "fault/faults.hpp"
#include "rsn/rsn.hpp"

namespace ftrsn {

struct BmcOptions {
  /// CSU operations to unroll (n+1 configurations).  <= 0 derives a bound
  /// from the RSN's hierarchy depth (levels + 2).
  int steps = 0;
  std::int64_t conflict_limit = 1 << 20;
};

class BmcAccessChecker {
 public:
  explicit BmcAccessChecker(const Rsn& rsn, BmcOptions options = {});

  /// True iff `target` is fully (write + read) accessible under `fault`
  /// (nullptr = fault-free) within the unrolling bound.  Each call builds
  /// and solves one SAT instance.
  bool accessible(NodeId target, const Fault* fault) const;

  /// Accessibility of every segment under one fault (one SAT call each).
  std::vector<bool> accessible_under(const Fault* fault) const;

  int steps() const { return steps_; }

 private:
  const Rsn* rsn_;
  BmcOptions options_;
  int steps_ = 0;
};

}  // namespace ftrsn
