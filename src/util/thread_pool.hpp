// Minimal work-queue thread pool for deterministic data parallelism.
//
// The pool owns `threads - 1` worker threads; the calling thread always
// participates as worker 0, so a pool of size 1 degenerates to a plain
// serial loop with no synchronisation.  Work is handed out as dynamically
// sized index chunks from a shared atomic cursor, which load-balances
// uneven per-item costs (fault classes differ wildly in fixpoint depth)
// without any work-stealing machinery.
//
// Determinism contract: the pool guarantees nothing about *which* worker
// runs *which* chunk.  Callers that need bit-identical results across
// thread counts must write results into per-index slots and fold them in
// a fixed order afterwards (see FaultMetricEngine).
//
// Exception contract: parallel_for attempts every chunk of [0, n) even
// after a chunk throws (later chunks may observe side effects of the
// failed one; per-index result slots make that benign).  The first
// exception thrown — serial fast path included — is rethrown from
// parallel_for after the job completes; subsequent exceptions are
// swallowed.  The pool stays usable after a throwing job.
//
// Observability: when obs tracing is enabled, every worker's participation
// in a job is recorded as a "<name>.lane" span on its own thread lane and
// worker threads are named "<name>-w<k>" in the exported trace.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ftrsn {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers (including the caller).
  /// `threads <= 0` resolves to the hardware concurrency (at least 1).
  /// `name` labels the pool's worker lanes in exported traces.
  explicit ThreadPool(int threads = 0, const char* name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Resolves a requested thread count the same way the constructor does:
  /// any `requested <= 0` normalizes to the hardware concurrency, and a
  /// zero/unknown hardware concurrency normalizes to 1.
  static int resolve_threads(int requested);

  /// Runs `fn(worker, begin, end)` over disjoint chunks covering [0, n).
  /// Chunks are at most `chunk` indices long (`chunk == 0` picks a default).
  /// `worker` is in [0, num_threads()); each worker sees only its own id, so
  /// per-worker scratch arenas need no locking.  Blocks until all of [0, n)
  /// has been attempted; the first exception thrown by `fn` is rethrown
  /// here (see the exception contract above).  Not reentrant: `fn` must not
  /// call parallel_for on this pool.
  void parallel_for(std::size_t n, std::size_t chunk,
                    const std::function<void(int, std::size_t, std::size_t)>& fn);

 private:
  void worker_main(int worker);
  void run_chunks(int worker);

  int num_threads_ = 1;
  std::string name_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  // Guarded by mutex_ (generation/done counts) or atomically via cursor_.
  std::size_t generation_ = 0;
  int workers_done_ = 0;
  bool shutdown_ = false;

  // Current job (valid while a parallel_for is in flight).
  const std::function<void(int, std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_chunk_ = 1;
  std::atomic<std::size_t> cursor_{0};
  std::exception_ptr first_error_;
};

}  // namespace ftrsn
