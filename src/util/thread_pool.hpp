// Work-queue thread pool for deterministic data parallelism, with safe
// nested submission.
//
// The pool owns `threads - 1` worker threads; the submitting thread always
// participates in its own job, so a pool of size 1 degenerates to a plain
// serial loop with no synchronisation.  Work is handed out as dynamically
// sized index chunks from a per-job atomic cursor, which load-balances
// uneven per-item costs (fault classes differ wildly in fixpoint depth).
//
// Nesting (help-first execution): parallel_for may be called from inside a
// chunk running on this same pool.  The inner call registers a new job and
// the calling thread immediately starts draining that job's chunks itself
// ("help first"), so progress never depends on another thread being free —
// a pool of size 1 simply runs the nested loop inline and can never
// deadlock.  Idle workers pick the *oldest* job with unclaimed chunks
// (coarse-grain first: outer network-level tasks before inner fault-class
// loops); a thread waiting for its own job's tail steals chunks only from
// *younger* jobs, which bounds its stack depth (every stolen job was
// submitted by a job at most as deep as its own) while letting it help the
// nested loops it is transitively waiting on.
//
// Worker ids: each pool thread has a stable id in [1, num_threads()); any
// thread that is not a pool worker participates as worker 0.  At most one
// non-worker thread may run a parallel_for on a given pool at a time (two
// external threads would alias worker 0's scratch slot); nested calls from
// worker threads are unrestricted.
//
// Determinism contract: the pool guarantees nothing about *which* worker
// runs *which* chunk.  Callers that need bit-identical results across
// thread counts must write results into per-index slots and fold them in
// a fixed order afterwards (see FaultMetricEngine).
//
// Exception contract: parallel_for attempts every chunk of [0, n) even
// after a chunk throws (later chunks may observe side effects of the
// failed one; per-index result slots make that benign).  The first
// exception thrown — serial fast path included — is rethrown from
// parallel_for after the job completes; subsequent exceptions are
// swallowed.  A nested parallel_for that rethrows inside an outer chunk
// simply makes that outer chunk throw, so the error propagates outward one
// nesting level per job.  The pool stays usable after a throwing job.
//
// Observability: when obs tracing is enabled, every worker's participation
// in a job is recorded as a "<name>.lane" span on its own thread lane and
// worker threads are named "<name>-w<k>" in the exported trace.  Every job
// captures the submitting thread's obs context, and workers attach it while
// draining that job's chunks — counters/histograms/spans recorded inside a
// chunk fold into the submitter's ObsContext no matter which thread runs it
// (DESIGN.md §5j).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ftrsn {

namespace obs {
class ObsContext;
}  // namespace obs

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers (including the caller).
  /// `threads <= 0` resolves to the hardware concurrency (at least 1).
  /// `name` labels the pool's worker lanes in exported traces.
  explicit ThreadPool(int threads = 0, const char* name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Resolves a requested thread count the same way the constructor does:
  /// any `requested <= 0` normalizes to the hardware concurrency, and a
  /// zero/unknown hardware concurrency normalizes to 1.
  static int resolve_threads(int requested);

  /// Runs `fn(worker, begin, end)` over disjoint chunks covering [0, n).
  /// Chunks are at most `chunk` indices long (`chunk == 0` picks a default).
  /// `worker` is in [0, num_threads()); a given id is never active in two
  /// threads at once, so per-worker scratch arenas need no locking.  Blocks
  /// until all of [0, n) has been attempted; the first exception thrown by
  /// `fn` is rethrown here (see the exception contract above).  Reentrant:
  /// `fn` may call parallel_for on this same pool (see Nesting above).
  void parallel_for(std::size_t n, std::size_t chunk,
                    const std::function<void(int, std::size_t, std::size_t)>& fn);

 private:
  // One in-flight parallel_for.  Lives on the submitting thread's stack;
  // registered in jobs_ until every chunk has completed.  cursor is the
  // claim point; chunks_done / first_error are guarded by the pool mutex.
  struct Job {
    const std::function<void(int, std::size_t, std::size_t)>* fn = nullptr;
    obs::ObsContext* ctx = nullptr;  // submitter's obs context
    std::size_t n = 0;
    std::size_t chunk = 1;
    std::atomic<std::size_t> cursor{0};
    std::size_t chunks_total = 0;
    std::size_t chunks_done = 0;
    std::exception_ptr first_error;
    std::uint64_t seq = 0;
  };

  void worker_main(int worker);
  /// Runs the pre-claimed chunk at `begin` (no-op if begin >= n), then
  /// drains further chunks until the cursor is exhausted, then publishes
  /// this thread's completion count (waking waiters if the job finished).
  void run_chunks(Job& job, int worker, std::size_t begin);
  /// Oldest job with seq >= min_seq that still has unclaimed chunks; on
  /// success the first chunk is already claimed (`begin`), which pins the
  /// job alive until the caller's run_chunks publishes (a Job with an
  /// unpublished claimed chunk can never reach chunks_done == chunks_total).
  Job* pick_job_locked(std::uint64_t min_seq, std::size_t& begin);
  /// Stable worker id of the calling thread on *this* pool (0 for any
  /// thread that is not one of this pool's workers).
  int current_worker_id() const;

  int num_threads_ = 1;
  std::string name_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable cv_;  // signalled on job submission + completion
  std::vector<Job*> jobs_;      // live jobs, ascending seq (oldest first)
  std::uint64_t next_seq_ = 1;
  bool shutdown_ = false;
};

}  // namespace ftrsn
