#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdint>

namespace ftrsn::json {

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;
  // Defence against adversarial / corrupted inputs: the reports this
  // parser consumes nest a handful of levels, so any deep recursion is a
  // malformed file, not a real document.
  int depth = 0;
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& message) {
    if (error.empty())
      error = message + " at byte " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parse_value(Value& out) {
    if (++depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    bool ok = false;
    switch (text[pos]) {
      case '{': ok = parse_object(out); break;
      case '[': ok = parse_array(out); break;
      case '"': ok = parse_string(out); break;
      case 't':
      case 'f': ok = parse_bool(out); break;
      case 'n': ok = parse_null(out); break;
      default: ok = parse_number(out); break;
    }
    --depth;
    return ok;
  }

  bool parse_object(Value& out) {
    out.kind = Value::Kind::kObject;
    ++pos;  // '{'
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    for (;;) {
      skip_ws();
      Value key;
      if (pos >= text.size() || text[pos] != '"')
        return fail("expected object key");
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      Value value;
      if (!parse_value(value)) return false;
      out.members.emplace_back(std::move(key.text), std::move(value));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(Value& out) {
    out.kind = Value::Kind::kArray;
    ++pos;  // '['
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    for (;;) {
      Value item;
      if (!parse_value(item)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_string(Value& out) {
    out.kind = Value::Kind::kString;
    ++pos;  // '"'
    std::string s;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        out.text = std::move(s);
        return true;
      }
      if (c == '\\') {
        if (pos + 1 >= text.size()) return fail("dangling escape");
        const char e = text[pos + 1];
        pos += 2;
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad \\u escape");
            }
            pos += 4;
            // UTF-8 encode (no surrogate-pair handling: the repo's own
            // writers only \u-escape control characters).
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      s += c;
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parse_bool(Value& out) {
    if (text.substr(pos, 4) == "true") {
      out.kind = Value::Kind::kBool;
      out.boolean = true;
      pos += 4;
      return true;
    }
    if (text.substr(pos, 5) == "false") {
      out.kind = Value::Kind::kBool;
      out.boolean = false;
      pos += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(Value& out) {
    if (text.substr(pos, 4) == "null") {
      out.kind = Value::Kind::kNull;
      pos += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos])))
      ++pos;
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    if (pos == start) return fail("expected a value");
    out.kind = Value::Kind::kNumber;
    out.text = std::string(text.substr(start, pos - start));
    double v = 0.0;
    const auto [p, ec] =
        std::from_chars(out.text.data(), out.text.data() + out.text.size(), v);
    if (ec != std::errc() || p != out.text.data() + out.text.size()) {
      pos = start;
      return fail("bad number");
    }
    out.number = v;
    return true;
  }
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

double Value::num_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::optional<Value> parse(std::string_view text, std::string* error) {
  Parser p;
  p.text = text;
  Value root;
  if (!p.parse_value(root)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != p.text.size()) {
    if (error != nullptr)
      *error = "trailing garbage at byte " + std::to_string(p.pos);
    return std::nullopt;
  }
  return root;
}

std::optional<Value> parse_file(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string contents;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::string parse_error;
  auto v = parse(contents, &parse_error);
  if (!v && error != nullptr) *error = path + ": " + parse_error;
  return v;
}

}  // namespace ftrsn::json
