// Runtime-dispatched SIMD kernels for the packed (64 fault lanes per
// uint64_t word) fault-metric fixpoint (DESIGN.md §5h).
//
// The packed engine spends its per-iteration time in four dense passes
// over lane words: gathering control-mask words into segment-slot order,
// combining the write/read accessibility conditions, and accumulating the
// newly accessible / newly writable lanes.  Those passes are exposed here
// as a table of function pointers so one binary can carry several
// implementations and pick the best one for the host at runtime:
//
//   kScalar   — plain uint64_t loops, the reference semantics.  Every
//               other kernel must be *byte-identical* to it on any input
//               (asserted by tests/test_simd.cpp on every host).
//   kUnrolled — portable 4-wide unrolled scalar; always available, so the
//               scalar-vs-vector differential test runs even on hosts
//               without AVX2 or NEON.
//   kAvx2     — 256-bit AVX2 (4 lane words per op, vpgatherqq for the
//               slot gathers); compiled with a function-level target
//               attribute, selected only if the CPU reports AVX2.
//   kNeon     — 128-bit NEON (2 lane words per op; gathers stay scalar —
//               NEON has no gather); aarch64 only.
//
// Selection: set_kernel() (tests) > FTRSN_SIMD env (scalar | unrolled |
// avx2 | neon) > best available.  Requesting an unavailable kernel via the
// env falls back to the best available one (a corpus replay on a non-AVX2
// host must not abort); set_kernel() on an unavailable kernel is an error.
//
// Contract: all kernels are pure element-wise/gather loops — no ordering,
// no overlap between dst and any src, callers pass n in words.  Bit
// identity across kernels is part of the public contract, not an
// accident: the SHA-pinned corpus (tools/judge.sh) digests metric sweeps
// produced through these kernels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace ftrsn::simd {

enum class Kernel { kScalar, kUnrolled, kAvx2, kNeon };

struct Ops {
  const char* name;
  /// dst[i] = src[idx[i]]   (idx entries are non-negative, in range)
  void (*gather)(std::uint64_t* dst, const std::uint64_t* src,
                 const std::int32_t* idx, std::size_t n);
  /// dst[i] = cf[i] & rb[i] & sel[i] & ~bad[i] & (upd[i] | ~shadow[i])
  /// (write-accessibility of a segment slot: clean forward path, routable
  /// backward path, assertable select, own input healthy, and — for
  /// shadowed segments only — deassertable update).
  void (*write_acc)(std::uint64_t* dst, const std::uint64_t* cf,
                    const std::uint64_t* rb, const std::uint64_t* sel,
                    const std::uint64_t* bad, const std::uint64_t* upd,
                    const std::uint64_t* shadow, std::size_t n);
  /// dst[i] = rf[i] & cb[i] & sel[i] & ~bad[i] & cap[i]
  void (*read_acc)(std::uint64_t* dst, const std::uint64_t* rf,
                   const std::uint64_t* cb, const std::uint64_t* sel,
                   const std::uint64_t* bad, const std::uint64_t* cap,
                   std::size_t n);
  /// t = a[i] & b[i] & ~acc[i]; acc[i] |= t; returns OR of every t
  /// (the lanes that became set anywhere — the fixpoint "changed" signal).
  std::uint64_t (*or_and2_new)(std::uint64_t* acc, const std::uint64_t* a,
                               const std::uint64_t* b, std::size_t n);
};

/// Ops table for `k`, or nullptr when the host cannot run it.
const Ops* ops(Kernel k);

/// Kernels runnable on this host (kScalar and kUnrolled always included).
std::vector<Kernel> available();

/// The kernel active_ops() resolves to right now.
Kernel active_kernel();
const Ops& active_ops();

/// Pin the active kernel (tests / benches).  FTRSN_CHECKs that the kernel
/// is available on this host.
void set_kernel(Kernel k);
/// Drop the pin; back to FTRSN_SIMD / auto selection (re-reads the env).
void reset_kernel();

const char* kernel_name(Kernel k);
/// Parses "scalar" / "unrolled" / "avx2" / "neon"; false on anything else.
bool parse_kernel(std::string_view text, Kernel& out);

}  // namespace ftrsn::simd
