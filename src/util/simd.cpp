#include "util/simd.hpp"

#include <cstdlib>
#include <mutex>

#include "util/common.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define FTRSN_SIMD_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define FTRSN_SIMD_NEON 1
#endif

namespace ftrsn::simd {

namespace {

// --- scalar reference --------------------------------------------------------

void scalar_gather(std::uint64_t* dst, const std::uint64_t* src,
                   const std::int32_t* idx, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = src[static_cast<std::size_t>(idx[i])];
}

void scalar_write_acc(std::uint64_t* dst, const std::uint64_t* cf,
                      const std::uint64_t* rb, const std::uint64_t* sel,
                      const std::uint64_t* bad, const std::uint64_t* upd,
                      const std::uint64_t* shadow, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = cf[i] & rb[i] & sel[i] & ~bad[i] & (upd[i] | ~shadow[i]);
}

void scalar_read_acc(std::uint64_t* dst, const std::uint64_t* rf,
                     const std::uint64_t* cb, const std::uint64_t* sel,
                     const std::uint64_t* bad, const std::uint64_t* cap,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = rf[i] & cb[i] & sel[i] & ~bad[i] & cap[i];
}

std::uint64_t scalar_or_and2_new(std::uint64_t* acc, const std::uint64_t* a,
                                 const std::uint64_t* b, std::size_t n) {
  std::uint64_t fresh = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t t = a[i] & b[i] & ~acc[i];
    acc[i] |= t;
    fresh |= t;
  }
  return fresh;
}

constexpr Ops kScalarOps = {"scalar", scalar_gather, scalar_write_acc,
                            scalar_read_acc, scalar_or_and2_new};

// --- portable unrolled -------------------------------------------------------
//
// 4-wide manual unroll: gives the compiler straight-line independent word
// ops to schedule (and auto-vectorize where it can) without any ISA
// assumption, so every host has a second kernel to diff against scalar.

void unrolled_gather(std::uint64_t* dst, const std::uint64_t* src,
                     const std::int32_t* idx, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint64_t a = src[static_cast<std::size_t>(idx[i])];
    const std::uint64_t b = src[static_cast<std::size_t>(idx[i + 1])];
    const std::uint64_t c = src[static_cast<std::size_t>(idx[i + 2])];
    const std::uint64_t d = src[static_cast<std::size_t>(idx[i + 3])];
    dst[i] = a;
    dst[i + 1] = b;
    dst[i + 2] = c;
    dst[i + 3] = d;
  }
  for (; i < n; ++i) dst[i] = src[static_cast<std::size_t>(idx[i])];
}

void unrolled_write_acc(std::uint64_t* dst, const std::uint64_t* cf,
                        const std::uint64_t* rb, const std::uint64_t* sel,
                        const std::uint64_t* bad, const std::uint64_t* upd,
                        const std::uint64_t* shadow, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    dst[i] = cf[i] & rb[i] & sel[i] & ~bad[i] & (upd[i] | ~shadow[i]);
    dst[i + 1] =
        cf[i + 1] & rb[i + 1] & sel[i + 1] & ~bad[i + 1] & (upd[i + 1] | ~shadow[i + 1]);
    dst[i + 2] =
        cf[i + 2] & rb[i + 2] & sel[i + 2] & ~bad[i + 2] & (upd[i + 2] | ~shadow[i + 2]);
    dst[i + 3] =
        cf[i + 3] & rb[i + 3] & sel[i + 3] & ~bad[i + 3] & (upd[i + 3] | ~shadow[i + 3]);
  }
  for (; i < n; ++i)
    dst[i] = cf[i] & rb[i] & sel[i] & ~bad[i] & (upd[i] | ~shadow[i]);
}

void unrolled_read_acc(std::uint64_t* dst, const std::uint64_t* rf,
                       const std::uint64_t* cb, const std::uint64_t* sel,
                       const std::uint64_t* bad, const std::uint64_t* cap,
                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    dst[i] = rf[i] & cb[i] & sel[i] & ~bad[i] & cap[i];
    dst[i + 1] = rf[i + 1] & cb[i + 1] & sel[i + 1] & ~bad[i + 1] & cap[i + 1];
    dst[i + 2] = rf[i + 2] & cb[i + 2] & sel[i + 2] & ~bad[i + 2] & cap[i + 2];
    dst[i + 3] = rf[i + 3] & cb[i + 3] & sel[i + 3] & ~bad[i + 3] & cap[i + 3];
  }
  for (; i < n; ++i) dst[i] = rf[i] & cb[i] & sel[i] & ~bad[i] & cap[i];
}

std::uint64_t unrolled_or_and2_new(std::uint64_t* acc, const std::uint64_t* a,
                                   const std::uint64_t* b, std::size_t n) {
  std::uint64_t f0 = 0, f1 = 0, f2 = 0, f3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint64_t t0 = a[i] & b[i] & ~acc[i];
    const std::uint64_t t1 = a[i + 1] & b[i + 1] & ~acc[i + 1];
    const std::uint64_t t2 = a[i + 2] & b[i + 2] & ~acc[i + 2];
    const std::uint64_t t3 = a[i + 3] & b[i + 3] & ~acc[i + 3];
    acc[i] |= t0;
    acc[i + 1] |= t1;
    acc[i + 2] |= t2;
    acc[i + 3] |= t3;
    f0 |= t0;
    f1 |= t1;
    f2 |= t2;
    f3 |= t3;
  }
  std::uint64_t fresh = (f0 | f1) | (f2 | f3);
  for (; i < n; ++i) {
    const std::uint64_t t = a[i] & b[i] & ~acc[i];
    acc[i] |= t;
    fresh |= t;
  }
  return fresh;
}

constexpr Ops kUnrolledOps = {"unrolled", unrolled_gather, unrolled_write_acc,
                              unrolled_read_acc, unrolled_or_and2_new};

// --- AVX2 --------------------------------------------------------------------
//
// Compiled with function-level target attributes so the translation unit
// builds with the default flags; the dispatcher only hands these out after
// __builtin_cpu_supports("avx2") succeeds.

#ifdef FTRSN_SIMD_X86

__attribute__((target("avx2"))) void avx2_gather(std::uint64_t* dst,
                                                 const std::uint64_t* src,
                                                 const std::int32_t* idx,
                                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vidx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    const __m256i v = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(src), vidx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < n; ++i) dst[i] = src[static_cast<std::size_t>(idx[i])];
}

__attribute__((target("avx2"))) void avx2_write_acc(
    std::uint64_t* dst, const std::uint64_t* cf, const std::uint64_t* rb,
    const std::uint64_t* sel, const std::uint64_t* bad,
    const std::uint64_t* upd, const std::uint64_t* shadow, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vcf = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cf + i));
    const __m256i vrb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rb + i));
    const __m256i vsel = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + i));
    const __m256i vbad = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bad + i));
    const __m256i vupd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(upd + i));
    const __m256i vsh = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(shadow + i));
    // andnot(x, y) = ~x & y
    __m256i v = _mm256_and_si256(vcf, vrb);
    v = _mm256_and_si256(v, vsel);
    v = _mm256_andnot_si256(vbad, v);
    const __m256i vnotsh = _mm256_xor_si256(vsh, _mm256_set1_epi64x(-1));
    v = _mm256_and_si256(v, _mm256_or_si256(vupd, vnotsh));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < n; ++i)
    dst[i] = cf[i] & rb[i] & sel[i] & ~bad[i] & (upd[i] | ~shadow[i]);
}

__attribute__((target("avx2"))) void avx2_read_acc(
    std::uint64_t* dst, const std::uint64_t* rf, const std::uint64_t* cb,
    const std::uint64_t* sel, const std::uint64_t* bad,
    const std::uint64_t* cap, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vrf = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rf + i));
    const __m256i vcb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cb + i));
    const __m256i vsel = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + i));
    const __m256i vbad = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bad + i));
    const __m256i vcap = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cap + i));
    __m256i v = _mm256_and_si256(vrf, vcb);
    v = _mm256_and_si256(v, vsel);
    v = _mm256_andnot_si256(vbad, v);
    v = _mm256_and_si256(v, vcap);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < n; ++i) dst[i] = rf[i] & cb[i] & sel[i] & ~bad[i] & cap[i];
}

__attribute__((target("avx2"))) std::uint64_t avx2_or_and2_new(
    std::uint64_t* acc, const std::uint64_t* a, const std::uint64_t* b,
    std::size_t n) {
  __m256i vfresh = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vacc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i t = _mm256_andnot_si256(vacc, _mm256_and_si256(va, vb));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_or_si256(vacc, t));
    vfresh = _mm256_or_si256(vfresh, t);
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vfresh);
  std::uint64_t fresh = (lanes[0] | lanes[1]) | (lanes[2] | lanes[3]);
  for (; i < n; ++i) {
    const std::uint64_t t = a[i] & b[i] & ~acc[i];
    acc[i] |= t;
    fresh |= t;
  }
  return fresh;
}

constexpr Ops kAvx2Ops = {"avx2", avx2_gather, avx2_write_acc, avx2_read_acc,
                          avx2_or_and2_new};

bool avx2_supported() { return __builtin_cpu_supports("avx2") != 0; }

#endif  // FTRSN_SIMD_X86

// --- NEON --------------------------------------------------------------------

#ifdef FTRSN_SIMD_NEON

void neon_gather(std::uint64_t* dst, const std::uint64_t* src,
                 const std::int32_t* idx, std::size_t n) {
  // NEON has no gather instruction; keep the unrolled scalar form.
  unrolled_gather(dst, src, idx, n);
}

void neon_write_acc(std::uint64_t* dst, const std::uint64_t* cf,
                    const std::uint64_t* rb, const std::uint64_t* sel,
                    const std::uint64_t* bad, const std::uint64_t* upd,
                    const std::uint64_t* shadow, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t v = vandq_u64(vld1q_u64(cf + i), vld1q_u64(rb + i));
    v = vandq_u64(v, vld1q_u64(sel + i));
    v = vbicq_u64(v, vld1q_u64(bad + i));  // v & ~bad
    v = vandq_u64(v, vorrq_u64(vld1q_u64(upd + i),
                               veorq_u64(vld1q_u64(shadow + i),
                                         vdupq_n_u64(~0ull))));
    vst1q_u64(dst + i, v);
  }
  for (; i < n; ++i)
    dst[i] = cf[i] & rb[i] & sel[i] & ~bad[i] & (upd[i] | ~shadow[i]);
}

void neon_read_acc(std::uint64_t* dst, const std::uint64_t* rf,
                   const std::uint64_t* cb, const std::uint64_t* sel,
                   const std::uint64_t* bad, const std::uint64_t* cap,
                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t v = vandq_u64(vld1q_u64(rf + i), vld1q_u64(cb + i));
    v = vandq_u64(v, vld1q_u64(sel + i));
    v = vbicq_u64(v, vld1q_u64(bad + i));
    v = vandq_u64(v, vld1q_u64(cap + i));
    vst1q_u64(dst + i, v);
  }
  for (; i < n; ++i) dst[i] = rf[i] & cb[i] & sel[i] & ~bad[i] & cap[i];
}

std::uint64_t neon_or_and2_new(std::uint64_t* acc, const std::uint64_t* a,
                               const std::uint64_t* b, std::size_t n) {
  uint64x2_t vfresh = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t vacc = vld1q_u64(acc + i);
    const uint64x2_t t =
        vbicq_u64(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)), vacc);
    vst1q_u64(acc + i, vorrq_u64(vacc, t));
    vfresh = vorrq_u64(vfresh, t);
  }
  std::uint64_t fresh =
      vgetq_lane_u64(vfresh, 0) | vgetq_lane_u64(vfresh, 1);
  for (; i < n; ++i) {
    const std::uint64_t t = a[i] & b[i] & ~acc[i];
    acc[i] |= t;
    fresh |= t;
  }
  return fresh;
}

constexpr Ops kNeonOps = {"neon", neon_gather, neon_write_acc, neon_read_acc,
                          neon_or_and2_new};

#endif  // FTRSN_SIMD_NEON

// --- selection ---------------------------------------------------------------

Kernel best_available() {
#ifdef FTRSN_SIMD_X86
  if (avx2_supported()) return Kernel::kAvx2;
#endif
#ifdef FTRSN_SIMD_NEON
  return Kernel::kNeon;
#endif
  return Kernel::kUnrolled;
}

Kernel resolve_default() {
  if (const char* env = std::getenv("FTRSN_SIMD")) {
    Kernel k;
    if (parse_kernel(env, k) && ops(k) != nullptr) return k;
    // Unknown or unavailable request: fall back rather than abort — a
    // corpus replay pinned to avx2 must still run on a NEON host.
  }
  return best_available();
}

std::mutex g_mutex;
Kernel g_active = Kernel::kScalar;
bool g_resolved = false;

}  // namespace

const Ops* ops(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return &kScalarOps;
    case Kernel::kUnrolled:
      return &kUnrolledOps;
    case Kernel::kAvx2:
#ifdef FTRSN_SIMD_X86
      return avx2_supported() ? &kAvx2Ops : nullptr;
#else
      return nullptr;
#endif
    case Kernel::kNeon:
#ifdef FTRSN_SIMD_NEON
      return &kNeonOps;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

std::vector<Kernel> available() {
  std::vector<Kernel> out{Kernel::kScalar, Kernel::kUnrolled};
  if (ops(Kernel::kAvx2)) out.push_back(Kernel::kAvx2);
  if (ops(Kernel::kNeon)) out.push_back(Kernel::kNeon);
  return out;
}

Kernel active_kernel() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_resolved) {
    g_active = resolve_default();
    g_resolved = true;
  }
  return g_active;
}

const Ops& active_ops() { return *ops(active_kernel()); }

void set_kernel(Kernel k) {
  FTRSN_CHECK_MSG(ops(k) != nullptr,
                  strprintf("SIMD kernel '%s' unavailable on this host",
                            kernel_name(k)));
  std::lock_guard<std::mutex> lock(g_mutex);
  g_active = k;
  g_resolved = true;
}

void reset_kernel() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_resolved = false;
}

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kUnrolled:
      return "unrolled";
    case Kernel::kAvx2:
      return "avx2";
    case Kernel::kNeon:
      return "neon";
  }
  return "?";
}

bool parse_kernel(std::string_view text, Kernel& out) {
  if (text == "scalar") out = Kernel::kScalar;
  else if (text == "unrolled") out = Kernel::kUnrolled;
  else if (text == "avx2") out = Kernel::kAvx2;
  else if (text == "neon") out = Kernel::kNeon;
  else return false;
  return true;
}

}  // namespace ftrsn::simd
