#include "util/thread_pool.hpp"

#include <algorithm>
#include <optional>

#include "obs/obs.hpp"

namespace ftrsn {

int ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads, const char* name)
    : num_threads_(resolve_threads(threads)), name_(name) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w)
    workers_.emplace_back([this, w] { worker_main(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_chunks(int worker) {
  // One span per worker per job: the trace shows each lane's share of the
  // job, including idle tails from load imbalance.
  std::optional<obs::Span> lane;
  if (obs::enabled()) lane.emplace(name_ + ".lane");
  static obs::Counter chunk_counter("pool.chunks");
  for (;;) {
    const std::size_t begin =
        cursor_.fetch_add(job_chunk_, std::memory_order_relaxed);
    if (begin >= job_n_) break;
    const std::size_t end = std::min(begin + job_chunk_, job_n_);
    chunk_counter.add();
    try {
      (*job_)(worker, begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      // Keep draining chunks so the job still covers [0, n); later chunks
      // may throw too, but only the first exception is reported.
    }
  }
}

void ThreadPool::worker_main(int worker) {
  if (obs::enabled())
    obs::set_thread_name(name_ + "-w" + std::to_string(worker));
  std::size_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    run_chunks(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t chunk,
    const std::function<void(int, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  if (num_threads_ == 1 || n <= chunk) {
    // Serial fast path: no fences, no wakeups.  Same exception contract as
    // the threaded path: every chunk is attempted, the first error is
    // rethrown at the end.
    std::exception_ptr first_error;
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      try {
        fn(0, begin, std::min(begin + chunk, n));
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_n_ = n;
    job_chunk_ = chunk;
    cursor_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunks(/*worker=*/0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return workers_done_ == num_threads_ - 1; });
    job_ = nullptr;
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }
}

}  // namespace ftrsn
