#include "util/thread_pool.hpp"

#include <algorithm>
#include <optional>

#include "obs/obs.hpp"

namespace ftrsn {

namespace {
// Stable per-thread worker identity: set once in worker_main, consulted by
// parallel_for so nested submissions keep the submitting worker's id (its
// scratch slot) instead of aliasing worker 0.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local int tl_worker = 0;
}  // namespace

int ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads, const char* name)
    : num_threads_(resolve_threads(threads)), name_(name) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w)
    workers_.emplace_back([this, w] { worker_main(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::current_worker_id() const {
  return tl_pool == this ? tl_worker : 0;
}

ThreadPool::Job* ThreadPool::pick_job_locked(std::uint64_t min_seq,
                                             std::size_t& begin) {
  // Claiming the first chunk *here, under the mutex* is what keeps the
  // returned Job alive: a merely-pointed-at job could have its remaining
  // chunks claimed and completed by other threads between unlock and the
  // first cursor access, letting the owner free the stack-allocated Job.
  // An unpublished claimed chunk pins chunks_done < chunks_total instead.
  for (Job* job : jobs_) {
    if (job->seq < min_seq) continue;
    const std::size_t b =
        job->cursor.fetch_add(job->chunk, std::memory_order_relaxed);
    if (b < job->n) {
      begin = b;
      return job;
    }
    // Exhausted job: the overshoot is harmless (the cursor only grows and
    // claims past n are no-ops), at most one bump per wake-up per waiter.
  }
  return nullptr;
}

void ThreadPool::run_chunks(Job& job, int worker, std::size_t begin) {
  if (begin >= job.n) return;
  std::size_t completed = 0;
  {
    // Aggregate into the submitter's context: a chunk's counters, spans and
    // histograms belong to whichever flow submitted the job, not to whatever
    // context this worker happened to be in (no-op on the submitting thread).
    obs::ContextScope ctx_scope(*job.ctx);
    // One span per worker per drain: the trace shows each lane's share of
    // the job, including idle tails from load imbalance.
    std::optional<obs::Span> lane;
    if (obs::enabled()) lane.emplace(name_ + ".lane");
    static obs::Counter chunk_counter("pool.chunks");
    for (;;) {
      const std::size_t end = std::min(begin + job.chunk, job.n);
      chunk_counter.add();
      try {
        (*job.fn)(worker, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!job.first_error) job.first_error = std::current_exception();
        // Keep draining chunks so the job still covers [0, n); later chunks
        // may throw too, but only the first exception is reported.
      }
      ++completed;
      // Safe even on a stolen job: our `completed` chunks are unpublished,
      // so the job cannot finish (and be freed) before the publish below.
      begin = job.cursor.fetch_add(job.chunk, std::memory_order_relaxed);
      if (begin >= job.n) break;
    }
    // The lane span and context scope MUST close before the publish below:
    // our unpublished chunks are the only thing keeping the submitter's
    // parallel_for from returning, and with it *job.ctx alive (BatchRunner
    // destroys the per-flow ObsContext right after the nested jobs finish).
    // Folding the span after the publish would race that destruction.
  }
  bool finished = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.chunks_done += completed;
    finished = job.chunks_done == job.chunks_total;
  }
  // The owner frees the Job once it observes completion, so `job` must not
  // be touched past this point.
  if (finished) cv_.notify_all();
}

void ThreadPool::worker_main(int worker) {
  tl_pool = this;
  tl_worker = worker;
  if (obs::enabled())
    obs::set_thread_name(name_ + "-w" + std::to_string(worker));
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (shutdown_) return;
    // Oldest-first: prefer coarse outer jobs (whole networks) over nested
    // fault-class loops; the tail of an outer job is covered anyway because
    // once it has no unclaimed chunks workers fall through to inner jobs.
    std::size_t begin = 0;
    if (Job* job = pick_job_locked(/*min_seq=*/0, begin)) {
      lock.unlock();
      run_chunks(*job, worker, begin);
      lock.lock();
      continue;
    }
    cv_.wait(lock);
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t chunk,
    const std::function<void(int, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const int self = current_worker_id();
  if (num_threads_ == 1 || n <= chunk) {
    // Serial fast path: no fences, no wakeups; nested calls recurse right
    // back in here.  Same exception contract as the threaded path: every
    // chunk is attempted, the first error (here: the lowest-index one) is
    // rethrown at the end.  The worker id is the calling thread's own slot
    // so a nested inline loop keeps using the scratch arena it already owns.
    std::exception_ptr first_error;
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      try {
        fn(self, begin, std::min(begin + chunk, n));
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  Job job;
  job.fn = &fn;
  job.ctx = &obs::current_context();
  job.n = n;
  job.chunk = chunk;
  job.chunks_total = (n + chunk - 1) / chunk;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.seq = next_seq_++;
    jobs_.push_back(&job);
  }
  cv_.notify_all();
  // Help first: drain our own job before even considering blocking, so a
  // nested submission makes progress on the submitting thread alone.  The
  // unlocked first claim is safe here — only we free our own Job.
  run_chunks(job, self,
             job.cursor.fetch_add(chunk, std::memory_order_relaxed));
  std::unique_lock<std::mutex> lock(mutex_);
  while (job.chunks_done != job.chunks_total) {
    // Our chunks are all claimed but some are still running on other
    // threads.  Steal from strictly younger jobs while we wait: those are
    // exactly the nested loops our outstanding chunks may be blocked on,
    // and stealing only downward bounds the recursion depth.
    std::size_t begin = 0;
    if (Job* other = pick_job_locked(job.seq + 1, begin)) {
      lock.unlock();
      run_chunks(*other, self, begin);
      lock.lock();
      continue;
    }
    cv_.wait(lock);
  }
  jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
  std::exception_ptr err = job.first_error;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

}  // namespace ftrsn
