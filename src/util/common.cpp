#include "util/common.hpp"

#include <cstdarg>
#include <stdexcept>

namespace ftrsn {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::string what = strprintf("ftrsn invariant violated: %s at %s:%d", expr,
                               file, line);
  if (!msg.empty()) {
    what += ": ";
    what += msg;
  }
  throw std::logic_error(what);
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  FTRSN_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * (UINT64_MAX / bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  FTRSN_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::vector<std::string> split(std::string_view text, char delim,
                               bool keep_empty) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(delim, start);
    const std::size_t end = (pos == std::string_view::npos) ? text.size() : pos;
    if (end > start || keep_empty)
      parts.emplace_back(text.substr(start, end - start));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return parts;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char ch) {
    return ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

}  // namespace ftrsn
