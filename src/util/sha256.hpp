// Minimal SHA-256 (FIPS 180-4) for the differential golden corpus
// (tests/data/corpus/, tools/judge.sh): full metric sweeps are serialized
// to a canonical text form and digested, and the digests are checked in.
// No external dependency; performance is irrelevant here (the inputs are
// kilobytes of report text, not the networks themselves).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ftrsn {

/// Incremental SHA-256.  update() any number of times, then hex() (which
/// finalizes a copy, so the hasher can keep accumulating afterwards).
class Sha256 {
 public:
  Sha256();
  void update(const void* data, std::size_t len);
  void update(std::string_view text) { update(text.data(), text.size()); }
  /// Digest of everything updated so far, as 64 lowercase hex chars.
  std::string hex() const;

 private:
  void compress(const std::uint8_t* block);
  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience.
std::string sha256_hex(std::string_view data);

}  // namespace ftrsn
