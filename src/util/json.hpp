// Minimal JSON reader for the tooling side of the repo (rsn-obs diff,
// obs tests).  Strict recursive-descent parser over UTF-8 text: objects,
// arrays, strings (with escapes), numbers, booleans, null.  Numbers keep
// their source text alongside the double so integer-valued counters can
// be compared exactly; object members keep source order.
//
// This is a *reader* — every JSON writer in the repo renders by hand so
// output stays byte-pinned (goldens, SHA-pinned corpus).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ftrsn::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Number: verbatim source token.  String: decoded contents.
  std::string text;
  std::vector<Value> items;                             // kArray
  std::vector<std::pair<std::string, Value>> members;   // kObject, in order

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup (first match), nullptr when absent or not an
  /// object.
  const Value* find(std::string_view key) const;
  /// number value or `fallback` when absent / not a number.
  double num_or(std::string_view key, double fallback) const;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// On failure returns nullopt and, if `error` is non-null, a one-line
/// message with the byte offset.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

/// Reads and parses a file; file-system errors land in `error` too.
std::optional<Value> parse_file(const std::string& path,
                                std::string* error = nullptr);

}  // namespace ftrsn::json
