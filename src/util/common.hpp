// Common small utilities used across all ftrsn modules: assertions,
// formatting helpers, deterministic RNG, and index-typed vectors.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace ftrsn {

/// Library-level invariant check. Unlike assert(), stays active in release
/// builds: a violated invariant in a synthesis tool must never silently
/// produce a wrong netlist.
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);

#define FTRSN_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) ::ftrsn::check_failed(#expr, __FILE__, __LINE__, {});     \
  } while (0)

#define FTRSN_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) ::ftrsn::check_failed(#expr, __FILE__, __LINE__, (msg));  \
  } while (0)

/// printf-style formatting into std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Deterministic 64-bit RNG (xoshiro256**). Used wherever pseudo-random
/// data is needed (benchmark chain-length synthesis, fuzz tests) so that
/// every run of the tool is reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();
  /// Uniform in [0, bound), bound > 0.
  std::uint64_t next_below(std::uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);
  /// Uniform real in [0, 1).
  double next_double();
  bool next_bool() { return (next_u64() >> 63) != 0; }

 private:
  std::uint64_t s_[4];
};

/// Split a string by a delimiter, dropping empty pieces if requested.
std::vector<std::string> split(std::string_view text, char delim,
                               bool keep_empty = false);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

}  // namespace ftrsn
