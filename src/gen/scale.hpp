// Synthetic-scale SoC generator: ITC'02-shaped SIB topologies scaled to
// 10^5-10^6 scan elements.
//
// Table I tops out at p93791 (~1.7k scan elements); the ROADMAP's
// production-scale direction needs augmentation inputs two to three
// orders of magnitude larger.  Real SoCs of that size are hierarchies of
// replicated subsystems, so the generator takes one embedded ITC'02
// descriptor as the *shape template* and replicates its module forest
// under a balanced tree of synthetic cluster modules until the target
// scan-element count is reached.  Each replica's chain lengths are
// jittered deterministically (seeded xoshiro) so replicas are not
// bit-identical, module names are prefixed per replica, and parent
// indices stay topologically ordered — the result is an ordinary
// itc02::Soc that flows through generate_sib_rsn, potential_edges and
// synthesize_fault_tolerant unchanged.
//
// "Scan elements" counts every 1-bit SIB register and every scan chain
// segment (== the vertices the degree-cover augmentation optimizes over,
// up to the per-SoC muxes and ports).
#pragma once

#include <cstdint>
#include <string>

#include "itc02/itc02.hpp"

namespace ftrsn::gen {

struct ScaleOptions {
  /// Shape template: name of an embedded ITC'02 SoC descriptor.
  std::string base = "p93791";
  /// Desired number of scan elements (SIB registers + chain segments) in
  /// the generated SoC; the replica count is derived from it.  The actual
  /// count can overshoot by up to one replica plus the cluster SIBs.
  long long target_elements = 100000;
  /// Deterministic seed for the per-replica chain-length jitter.
  std::uint64_t seed = 1;
  /// Relative jitter applied to every chain length (0 disables; 0.25
  /// draws lengths uniformly from [0.75*len, 1.25*len], floored at 1).
  double jitter = 0.25;
  /// Fan-out of the synthetic cluster-module tree above the replicas
  /// (adds log_fanout(replicas) hierarchy levels, as on real SoCs).
  int cluster_fanout = 16;
};

struct ScaledSoc {
  itc02::Soc soc;
  int replicas = 0;          ///< template copies emitted
  int clusters = 0;          ///< synthetic cluster modules added
  long long elements = 0;    ///< exact scan elements (sibs + chains)
  long long bits = 0;        ///< total shift bits (from itc02::summarize)
};

/// Builds the scaled SoC descriptor.  Deterministic: equal options yield
/// a byte-identical descriptor (and therefore an identical RSN).
ScaledSoc scale_soc(const ScaleOptions& options = {});

}  // namespace ftrsn::gen
