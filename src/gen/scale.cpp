#include "gen/scale.hpp"

#include <algorithm>
#include <cmath>

#include "util/common.hpp"

namespace ftrsn::gen {

namespace {

/// Appends one jittered copy of the template module forest under parent
/// index `parent`, prefixing every module name with "r<idx>_".
void emit_replica(const itc02::Soc& base, int replica_idx, int parent,
                  double jitter, Rng& rng, itc02::Soc& out) {
  const int offset = static_cast<int>(out.modules.size());
  for (const itc02::Module& m : base.modules) {
    itc02::Module copy;
    copy.name = strprintf("r%d_%s", replica_idx, m.name.c_str());
    copy.parent = m.parent < 0 ? parent : offset + m.parent;
    copy.chain_bits.reserve(m.chain_bits.size());
    for (int bits : m.chain_bits) {
      int jittered = bits;
      if (jitter > 0) {
        // Uniform in [1 - jitter, 1 + jitter]; every replica consumes the
        // same number of draws, so replica k's contents depend only on
        // (seed, k) and the template — not on the target size.
        const double f = 1.0 + jitter * (2.0 * rng.next_double() - 1.0);
        jittered = std::max(1, static_cast<int>(std::lround(bits * f)));
      }
      copy.chain_bits.push_back(jittered);
    }
    out.modules.push_back(std::move(copy));
  }
}

}  // namespace

ScaledSoc scale_soc(const ScaleOptions& options) {
  const auto base = itc02::find_soc(options.base);
  FTRSN_CHECK_MSG(base.has_value(),
                  "scale_soc: unknown base SoC " + options.base);
  FTRSN_CHECK(options.target_elements > 0);
  FTRSN_CHECK(options.jitter >= 0 && options.jitter < 1.0);
  const int fanout = std::max(2, options.cluster_fanout);

  const itc02::SocSummary base_sum = itc02::summarize(*base);
  const long long per_replica =
      static_cast<long long>(base_sum.sibs) + base_sum.chains;
  FTRSN_CHECK(per_replica > 0);
  const long long replicas = std::max<long long>(
      1, (options.target_elements + per_replica / 2) / per_replica);
  FTRSN_CHECK_MSG(replicas <= 1 << 22,
                  "scale_soc: target too large for the module-index space");

  ScaledSoc result;
  result.replicas = static_cast<int>(replicas);
  result.soc.name = strprintf("%s-x%lld-s%llu", options.base.c_str(),
                              replicas,
                              static_cast<unsigned long long>(options.seed));
  Rng rng(options.seed);

  // Balanced cluster tree: leaves are the replicas, internal nodes are
  // synthetic cluster modules with `fanout` children each.  Built
  // top-down so parent indices precede children (generate_sib_rsn
  // requires topological module order).
  struct Range {
    long long lo, hi;  // replica interval [lo, hi)
    int parent;        // module index of the owning cluster, -1 = top
  };
  std::vector<Range> work;
  work.push_back({0, replicas, -1});
  int next_replica = 0;
  for (std::size_t q = 0; q < work.size(); ++q) {
    const Range r = work[q];
    const long long span = r.hi - r.lo;
    if (span == 1) {
      // A single replica hangs directly off its cluster (the replica's
      // own top modules become the SIB hierarchy).
      emit_replica(*base, next_replica++, r.parent, options.jitter, rng,
                   result.soc);
      continue;
    }
    // Split the interval into at most `fanout` children; wrap each child
    // interval of size > 1 in a cluster module.
    const long long step = (span + fanout - 1) / fanout;
    for (long long lo = r.lo; lo < r.hi; lo += step) {
      const long long hi = std::min(lo + step, r.hi);
      if (hi - lo == 1) {
        work.push_back({lo, hi, r.parent});
        continue;
      }
      itc02::Module cluster;
      cluster.name = strprintf("cl%zu", result.soc.modules.size());
      cluster.parent = r.parent;
      const int cluster_idx = static_cast<int>(result.soc.modules.size());
      result.soc.modules.push_back(std::move(cluster));
      ++result.clusters;
      work.push_back({lo, hi, cluster_idx});
    }
  }

  const itc02::SocSummary sum = itc02::summarize(result.soc);
  result.elements = static_cast<long long>(sum.sibs) + sum.chains;
  result.bits = sum.bits;
  return result;
}

}  // namespace ftrsn::gen
