// Text serialization of structural RSNs (an ICL-like exchange format).
//
// One element per line, names are whitespace-free identifiers; control
// expressions use a prefix s-expression syntax:
//   0 | 1 | EN | PSEL<k> | @<seg>.<bit>.<replica>
//   (! <salt> a) | (& <salt> a b) | (| <salt> a b) | (M <salt> a b c)
// `@` atoms reference segments by name.  Example:
//
//   rsn
//   in SI
//   seg A len=2 shadow=1 rep=1 reset=1 role=instr mod=0 lvl=1 in=SI
//       sel=(& 0 EN @A.0.0) cap=0 upd=0   (one line in the actual format)
//   mux mux1 in0=A in1=B addr=@A.0.0
//   out SO in=D
//   term B mux1 (& 0 EN @A.0.0)
#pragma once

#include <iosfwd>
#include <string>

#include "rsn/rsn.hpp"

namespace ftrsn {

/// Serializes the RSN to the text format.
std::string write_rsn_text(const Rsn& rsn);

/// Parses the text format; throws std::logic_error with a line/position
/// message on malformed input.  With `validate` the parsed netlist is also
/// structurally validated (validate_or_die); pass false to load a broken
/// network for analysis (the rsn-lint CLI does).
Rsn parse_rsn_text(const std::string& text, bool validate = true);

/// File helpers.
void save_rsn(const Rsn& rsn, const std::string& path);
Rsn load_rsn(const std::string& path, bool validate = true);

}  // namespace ftrsn
