// Text serialization of structural RSNs (an ICL-like exchange format).
//
// One element per line, names are whitespace-free identifiers; control
// expressions use a prefix s-expression syntax:
//   0 | 1 | EN | PSEL<k> | @<seg>.<bit>.<replica>
//   (! <salt> a) | (& <salt> a b) | (| <salt> a b) | (M <salt> a b c)
// `@` atoms reference segments by name.  Example:
//
//   rsn
//   in SI
//   seg A len=2 shadow=1 rep=1 reset=1 role=instr mod=0 lvl=1 in=SI
//       sel=(& 0 EN @A.0.0) cap=0 upd=0   (one line in the actual format)
//   mux mux1 in0=A in1=B addr=@A.0.0
//   out SO in=D
//   term B mux1 (& 0 EN @A.0.0)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rsn/rsn.hpp"

namespace ftrsn {

/// Line provenance of a parsed network: 1-based source line numbers of the
/// declaration, element and term lines each node / select term came from
/// (0 = the line does not exist in the source).  The fix engine
/// (lint/fix.hpp) uses this to render SARIF fix records as textual edits of
/// the original .rsn file.
struct RsnSourceMap {
  std::vector<int> decl_line;  ///< NodeId -> decl_in/out/seg/mux line
  std::vector<int> elem_line;  ///< NodeId -> in/out/seg/mux element line
  std::vector<int> term_line;  ///< select-term index -> term line
};

/// Serializes the RSN to the text format.
std::string write_rsn_text(const Rsn& rsn);

/// Parses the text format; throws std::logic_error with a line/position
/// message on malformed input.  With `validate` the parsed netlist is also
/// structurally validated (validate_or_die); pass false to load a broken
/// network for analysis (the rsn-lint CLI does).  `src_map`, when non-null,
/// receives the line provenance of every parsed node and term.
Rsn parse_rsn_text(const std::string& text, bool validate = true,
                   RsnSourceMap* src_map = nullptr);

/// File helpers.
void save_rsn(const Rsn& rsn, const std::string& path);
Rsn load_rsn(const std::string& path, bool validate = true,
             RsnSourceMap* src_map = nullptr);

}  // namespace ftrsn
