#include "io/rsn_text.hpp"

#include <fstream>
#include <map>
#include <sstream>

namespace ftrsn {

namespace {

const char* role_name(SegRole role) {
  switch (role) {
    case SegRole::kInstrument: return "instr";
    case SegRole::kSibRegister: return "sib";
    case SegRole::kAddressRegister: return "addr";
    case SegRole::kOther: return "other";
  }
  return "other";
}

SegRole role_from(const std::string& s) {
  if (s == "instr") return SegRole::kInstrument;
  if (s == "sib") return SegRole::kSibRegister;
  if (s == "addr") return SegRole::kAddressRegister;
  FTRSN_CHECK_MSG(s == "other", "unknown segment role '" + s + "'");
  return SegRole::kOther;
}

/// Serializes one expression node reference.  Gate nodes (which may be
/// shared subexpressions of many selects) are referenced by their "def"
/// name eK; atoms and constants print inline.
std::string expr_operand(const CtrlPool& pool, CtrlRef r,
                         const std::vector<std::string>& names) {
  const CtrlNode& n = pool.node(r);
  switch (n.op) {
    case CtrlOp::kConst:
      return n.bit ? "1" : "0";
    case CtrlOp::kEnable:
      return "EN";
    case CtrlOp::kPortSel:
      return strprintf("PSEL%u", n.bit);
    case CtrlOp::kShadowBit:
      return strprintf("@%s.%u.%u", names[n.seg].c_str(), n.bit, n.replica);
    default:
      return strprintf("e%d", r);
  }
}

class ExprParser {
 public:
  ExprParser(std::string_view text, CtrlPool& pool,
             const std::map<std::string, NodeId>& seg_ids,
             const std::map<std::string, CtrlRef>& defs)
      : text_(text), pool_(pool), seg_ids_(seg_ids), defs_(defs) {}

  CtrlRef parse() {
    const CtrlRef r = expr();
    skip_ws();
    FTRSN_CHECK_MSG(pos_ == text_.size(),
                    "trailing characters in expression: " + std::string(text_));
    return r;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
  }
  char peek() { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void expect(char c) {
    FTRSN_CHECK_MSG(peek() == c, strprintf("expected '%c' in expression", c));
    ++pos_;
  }
  std::string ident() {
    std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ' ' && text_[pos_] != ')' &&
           text_[pos_] != '.')
      ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }
  unsigned number() {
    FTRSN_CHECK_MSG(isdigit(peek()), "expected a number in expression");
    unsigned v = 0;
    while (isdigit(peek())) v = v * 10 + static_cast<unsigned>(text_[pos_++] - '0');
    return v;
  }

  CtrlRef expr() {
    skip_ws();
    const char c = peek();
    if (c == '0' || c == '1') {
      ++pos_;
      return pool_.constant(c == '1');
    }
    if (c == '@') {
      ++pos_;
      const std::string name = ident();
      const auto it = seg_ids_.find(name);
      FTRSN_CHECK_MSG(it != seg_ids_.end(),
                      "expression references unknown segment '" + name + "'");
      expect('.');
      const unsigned bit = number();
      expect('.');
      const unsigned rep = number();
      return pool_.shadow_bit(it->second, static_cast<std::uint16_t>(bit),
                              static_cast<std::uint8_t>(rep));
    }
    if (c == 'E') {
      FTRSN_CHECK_MSG(text_.substr(pos_, 2) == "EN", "bad token in expression");
      pos_ += 2;
      return pool_.enable_input();
    }
    if (c == 'e' && pos_ + 1 < text_.size() && isdigit(text_[pos_ + 1])) {
      const std::string name = ident();
      const auto it = defs_.find(name);
      FTRSN_CHECK_MSG(it != defs_.end(),
                      "expression references undefined '" + name + "'");
      return it->second;
    }
    if (c == 'P') {
      FTRSN_CHECK_MSG(text_.substr(pos_, 4) == "PSEL", "bad token in expression");
      pos_ += 4;
      return pool_.port_select_input(static_cast<std::uint16_t>(number()));
    }
    expect('(');
    const char op = peek();
    ++pos_;
    skip_ws();
    const auto salt = static_cast<std::uint16_t>(number());
    CtrlRef result = kCtrlInvalid;
    if (op == '!') {
      result = pool_.mk_not(expr(), salt);
    } else if (op == '&') {
      const CtrlRef a = expr();
      result = pool_.mk_and(a, expr(), salt);
    } else if (op == '|') {
      const CtrlRef a = expr();
      result = pool_.mk_or(a, expr(), salt);
    } else if (op == 'M') {
      const CtrlRef a = expr();
      const CtrlRef b = expr();
      result = pool_.mk_maj3(a, b, expr(), salt);
    } else {
      FTRSN_CHECK_MSG(false, strprintf("unknown operator '%c'", op));
    }
    skip_ws();
    expect(')');
    return result;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  CtrlPool& pool_;
  const std::map<std::string, NodeId>& seg_ids_;
  const std::map<std::string, CtrlRef>& defs_;
};

std::map<std::string, std::string> parse_kv(const std::vector<std::string>& parts,
                                            std::size_t from) {
  std::map<std::string, std::string> kv;
  for (std::size_t i = from; i < parts.size(); ++i) {
    const std::size_t eq = parts[i].find('=');
    FTRSN_CHECK_MSG(eq != std::string::npos,
                    "expected key=value, got '" + parts[i] + "'");
    kv[parts[i].substr(0, eq)] = parts[i].substr(eq + 1);
  }
  return kv;
}

/// Splits a line into space-separated tokens, keeping parenthesized
/// expressions (which contain spaces) together with their key.
std::vector<std::string> tokenize_line(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) break;
    std::size_t start = i;
    int depth = 0;
    while (i < line.size() && (depth > 0 || line[i] != ' ')) {
      if (line[i] == '(') ++depth;
      if (line[i] == ')') --depth;
      ++i;
    }
    out.push_back(line.substr(start, i - start));
  }
  return out;
}

}  // namespace

std::string write_rsn_text(const Rsn& rsn) {
  const std::vector<std::string> names = rsn.node_names();
  const CtrlPool& pool = rsn.ctrl();
  std::string out = "rsn\n";
  const auto expr_str = [&](CtrlRef r) { return expr_operand(pool, r, names); };
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    switch (n.kind) {
      case NodeKind::kPrimaryIn:
        out += strprintf("decl_in %s\n", n.name.c_str());
        break;
      case NodeKind::kPrimaryOut:
        out += strprintf("decl_out %s\n", n.name.c_str());
        break;
      case NodeKind::kSegment:
        out += strprintf("decl_seg %s len=%d shadow=%d role=%s\n",
                         n.name.c_str(), n.length, n.has_shadow ? 1 : 0,
                         role_name(n.role));
        break;
      case NodeKind::kMux:
        out += strprintf("decl_mux %s\n", n.name.c_str());
        break;
    }
  }
  // Shared gate definitions, in pool order (children precede parents).
  for (CtrlRef r = 0; static_cast<std::size_t>(r) < pool.size(); ++r) {
    const CtrlNode& n = pool.node(r);
    if (!CtrlPool::is_gate(n)) continue;
    const char op = n.op == CtrlOp::kNot   ? '!'
                    : n.op == CtrlOp::kAnd ? '&'
                    : n.op == CtrlOp::kOr  ? '|'
                                           : 'M';
    out += strprintf("def e%d (%c %u", r, op, n.bit);
    for (int i = 0; i < n.arity(); ++i)
      out += " " + expr_operand(pool, n.kid[i], names);
    out += ")\n";
  }
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    const RsnNode& n = rsn.node(id);
    switch (n.kind) {
      case NodeKind::kPrimaryIn:
        out += strprintf("in %s\n", n.name.c_str());
        break;
      case NodeKind::kPrimaryOut:
        out += strprintf("out %s in=%s\n", n.name.c_str(),
                         names[n.scan_in].c_str());
        break;
      case NodeKind::kSegment:
        out += strprintf(
            "seg %s len=%d shadow=%d rep=%d reset=%llu role=%s mod=%d lvl=%d "
            "in=%s sel=%s cap=%s upd=%s\n",
            n.name.c_str(), n.length, n.has_shadow ? 1 : 0, n.shadow_replicas,
            static_cast<unsigned long long>(n.reset_shadow), role_name(n.role),
            n.module, n.hier_level, names[n.scan_in].c_str(),
            expr_str(n.select).c_str(), expr_str(n.cap_dis).c_str(),
            expr_str(n.up_dis).c_str());
        break;
      case NodeKind::kMux:
        out += strprintf("mux %s mod=%d lvl=%d in0=%s in1=%s addr=%s\n",
                         n.name.c_str(), n.module, n.hier_level,
                         names[n.mux_in[0]].c_str(), names[n.mux_in[1]].c_str(),
                         expr_str(n.addr).c_str());
        break;
    }
  }
  for (const auto& st : rsn.select_terms())
    out += strprintf("term %s %s %s\n", names[st.seg].c_str(),
                     names[st.succ].c_str(), expr_str(st.term).c_str());
  return out;
}

Rsn parse_rsn_text(const std::string& text, bool validate,
                   RsnSourceMap* src_map) {
  // Pass 1: create all nodes so names and forward references resolve.
  struct Pending {
    int line_no;
    std::vector<std::string> tokens;
  };
  std::vector<Pending> lines;
  {
    std::istringstream stream(text);
    std::string line;
    int no = 0;
    bool header_seen = false;
    while (std::getline(stream, line)) {
      ++no;
      const std::string_view trimmed = trim(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      if (!header_seen) {
        FTRSN_CHECK_MSG(trimmed == "rsn", "missing 'rsn' header");
        header_seen = true;
        continue;
      }
      lines.push_back({no, tokenize_line(std::string(trimmed))});
    }
    FTRSN_CHECK_MSG(header_seen, "missing 'rsn' header");
  }

  Rsn rsn;
  std::map<std::string, NodeId> ids;
  for (const Pending& p : lines) {
    FTRSN_CHECK_MSG(p.tokens.size() >= 2,
                    strprintf("line %d: too few tokens", p.line_no));
    const std::string& kind = p.tokens[0];
    const std::string& name = p.tokens[1];
    if (kind.rfind("decl_", 0) != 0) continue;
    FTRSN_CHECK_MSG(!ids.count(name),
                    strprintf("line %d: duplicate name '%s'", p.line_no,
                              name.c_str()));
    if (kind == "decl_in") {
      ids[name] = rsn.add_primary_in(name);
    } else if (kind == "decl_out") {
      ids[name] = rsn.add_primary_out(name, kInvalidNode);
    } else if (kind == "decl_seg") {
      const auto kv = parse_kv(p.tokens, 2);
      ids[name] = rsn.add_segment(name, std::stoi(kv.at("len")), kInvalidNode,
                                  kv.at("shadow") == "1",
                                  role_from(kv.at("role")));
    } else if (kind == "decl_mux") {
      ids[name] = rsn.add_mux(name, kInvalidNode, kInvalidNode, kCtrlFalse);
    } else {
      FTRSN_CHECK_MSG(false, strprintf("line %d: unknown declaration '%s'",
                                       p.line_no, kind.c_str()));
    }
    if (src_map) {
      src_map->decl_line.resize(rsn.num_nodes(), 0);
      src_map->decl_line[ids[name]] = p.line_no;
    }
  }
  if (src_map) {
    src_map->decl_line.resize(rsn.num_nodes(), 0);
    src_map->elem_line.assign(rsn.num_nodes(), 0);
  }

  // Pass 2: wire inputs and parse expressions.
  const auto node_of = [&](const std::string& name, int line_no) {
    const auto it = ids.find(name);
    FTRSN_CHECK_MSG(it != ids.end(), strprintf("line %d: unknown element '%s'",
                                               line_no, name.c_str()));
    return it->second;
  };
  std::map<std::string, CtrlRef> defs;
  for (const Pending& p : lines) {
    const std::string& kind = p.tokens[0];
    if (kind == "in") {
      if (src_map) src_map->elem_line[node_of(p.tokens[1], p.line_no)] = p.line_no;
      continue;
    }
    if (kind.rfind("decl_", 0) == 0) continue;
    if (kind == "def") {
      FTRSN_CHECK_MSG(p.tokens.size() == 3,
                      strprintf("line %d: def needs a name and a body",
                                p.line_no));
      ExprParser ep(p.tokens[2], rsn.ctrl(), ids, defs);
      defs[p.tokens[1]] = ep.parse();
      continue;
    }
    if (kind == "term") {
      FTRSN_CHECK_MSG(p.tokens.size() == 4,
                      strprintf("line %d: term needs 3 operands", p.line_no));
      ExprParser ep(p.tokens[3], rsn.ctrl(), ids, defs);
      rsn.add_select_term(node_of(p.tokens[1], p.line_no),
                          node_of(p.tokens[2], p.line_no), ep.parse());
      if (src_map) src_map->term_line.push_back(p.line_no);
      continue;
    }
    const NodeId id = node_of(p.tokens[1], p.line_no);
    if (src_map) src_map->elem_line[id] = p.line_no;
    const auto kv = parse_kv(p.tokens, 2);
    const auto expr = [&](const std::string& key) {
      ExprParser ep(kv.at(key), rsn.ctrl(), ids, defs);
      return ep.parse();
    };
    if (kind == "out") {
      rsn.set_scan_in(id, node_of(kv.at("in"), p.line_no));
    } else if (kind == "seg") {
      rsn.set_scan_in(id, node_of(kv.at("in"), p.line_no));
      rsn.set_shadow_replicas(id, std::stoi(kv.at("rep")));
      rsn.set_reset_shadow(id, std::stoull(kv.at("reset")));
      rsn.set_hier(id, std::stoi(kv.at("mod")), std::stoi(kv.at("lvl")));
      rsn.set_select(id, expr("sel"));
      rsn.set_cap_dis(id, expr("cap"));
      rsn.set_up_dis(id, expr("upd"));
    } else if (kind == "mux") {
      rsn.set_mux_in(id, 0, node_of(kv.at("in0"), p.line_no));
      rsn.set_mux_in(id, 1, node_of(kv.at("in1"), p.line_no));
      rsn.set_hier(id, std::stoi(kv.at("mod")), std::stoi(kv.at("lvl")));
      rsn.node_mut(id).addr = expr("addr");
    }
  }
  if (validate) rsn.validate_or_die();
  return rsn;
}

void save_rsn(const Rsn& rsn, const std::string& path) {
  std::ofstream out(path);
  FTRSN_CHECK_MSG(out.good(), "cannot open '" + path + "' for writing");
  out << write_rsn_text(rsn);
}

Rsn load_rsn(const std::string& path, bool validate, RsnSourceMap* src_map) {
  std::ifstream in(path);
  FTRSN_CHECK_MSG(in.good(), "cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_rsn_text(buffer.str(), validate, src_map);
}

}  // namespace ftrsn
