#include "synth/synth.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <iterator>
#include <map>
#include <optional>

#include "lint/lint.hpp"
#include "obs/obs.hpp"

namespace ftrsn {

namespace {

/// Creates the (optionally TMR-hardened) address expression for a 1-bit
/// address register.  With TMR, the register drives three shadow latch
/// replicas voted by a per-mux majority gate.
CtrlRef make_address(Rsn& rsn, NodeId reg, bool tmr, std::uint16_t salt) {
  CtrlPool& ctrl = rsn.ctrl();
  if (!tmr) return ctrl.shadow_bit(reg, 0);
  rsn.set_shadow_replicas(reg, 3);
  return ctrl.mk_maj3(ctrl.shadow_bit(reg, 0, 0), ctrl.shadow_bit(reg, 0, 1),
                      ctrl.shadow_bit(reg, 0, 2), salt);
}

}  // namespace

SynthResult synthesize_fault_tolerant(const Rsn& original,
                                      const SynthOptions& options) {
  if (options.repair_input) {
    // Pre-synthesis auto-repair: fix the mechanical lint findings first so
    // the dataflow graph / AugmentLintCache below see the repaired network.
    OBS_SPAN("synth.repair");
    lint::FixOptions fopts;
    fopts.verify = options.repair_verify;
    const lint::FixResult fr = lint::fix_rsn(original, fopts);
    if (fr.changed) {
      SynthOptions inner = options;
      inner.repair_input = false;
      SynthResult out = synthesize_fault_tolerant(fr.rsn, inner);
      out.stats.repaired_findings = static_cast<int>(fr.applied);
      return out;
    }
  }
  SynthResult out{original, {}, {}, {}};
  Rsn& ft = out.rsn;
  const std::size_t n_orig = original.num_nodes();

  // One rolling span per synthesis stage: emplace() ends the previous stage
  // before the next one starts, so the trace shows contiguous stage lanes.
  std::optional<obs::Span> stage;

  // --- step 0: connectivity augmentation (paper §III-D) ---------------------
  stage.emplace("synth.augment");
  const DataflowGraph g = DataflowGraph::from_rsn(original);
  AugmentOptions aopt = options.augment;
  if (aopt.target_allowed.empty()) {
    // New incoming edges (and the mux in front) only at scan segments and
    // the primary scan-out; muxes already have two distinct predecessors.
    aopt.target_allowed.assign(n_orig, false);
    for (NodeId id = 0; id < n_orig; ++id) {
      const NodeKind k = original.node(id).kind;
      if (k == NodeKind::kSegment || k == NodeKind::kPrimaryOut)
        aopt.target_allowed[id] = true;
    }
  }
  if (aopt.vertex_guards.empty()) {
    // Configuration guards, derived from the original select predicates:
    // the shadow-register atoms of a segment's select are exactly the
    // control registers that must be asserted for it to join an active
    // path.  Muxes and ports inherit the intersection of their consumers'
    // guards (their position is usable whenever any consumer's is).
    aopt.vertex_guards.resize(n_orig);
    const CtrlPool& pool = original.ctrl();
    const std::function<void(CtrlRef, std::vector<NodeId>&)> collect =
        [&](CtrlRef r, std::vector<NodeId>& guard) {
          const CtrlNode& c = pool.node(r);
          if (c.op == CtrlOp::kShadowBit) guard.push_back(c.seg);
          for (int k = 0; k < c.arity(); ++k) collect(c.kid[k], guard);
        };
    const auto succ = original.successors();
    const auto order = original.topo_order();
    std::vector<bool> own(n_orig, false);
    for (NodeId id = 0; id < n_orig; ++id) {
      if (!original.node(id).is_segment()) continue;
      collect(original.node(id).select, aopt.vertex_guards[id]);
      std::sort(aopt.vertex_guards[id].begin(), aopt.vertex_guards[id].end());
      aopt.vertex_guards[id].erase(std::unique(aopt.vertex_guards[id].begin(),
                                               aopt.vertex_guards[id].end()),
                                   aopt.vertex_guards[id].end());
      own[id] = true;
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId v = *it;
      if (own[v]) continue;
      // Intersection over consumers with their own/propagated guards.
      bool first = true;
      std::vector<NodeId> acc;
      for (NodeId c : succ[v]) {
        if (first) {
          acc = aopt.vertex_guards[c];
          first = false;
        } else {
          std::vector<NodeId> merged;
          std::set_intersection(acc.begin(), acc.end(),
                                aopt.vertex_guards[c].begin(),
                                aopt.vertex_guards[c].end(),
                                std::back_inserter(merged));
          acc = std::move(merged);
        }
      }
      aopt.vertex_guards[v] = std::move(acc);
    }
  }
  out.augment = augment_connectivity(g, aopt);

  // --- step 1: integrate the augmenting edge set (§III-E-1) -----------------
  stage.emplace("synth.integrate");
  //
  // Each augmenting edge (i, j) is realized by a 2:1 mux in front of j.
  // The mux's 1-bit address register is spliced in series after the edge's
  // *bootstrap anchor* (see AugmentResult::edge_anchor): the last vertex
  // towards the source whose configuration guards are a subset of the
  // target's, so the register stays writable through a clean path prefix
  // exactly in the fault scenarios where the detour is needed.  An address
  // register parked behind its own mux, or inside a gated sub-network,
  // could never be configured once the region it bypasses is broken (a
  // bootstrap deadlock).  Edges whose anchor degenerates to a primary
  // scan-in are steered by dedicated primary control pins instead: the
  // root region cannot host fault-tolerant configuration state (the same
  // external-control argument as the duplicated-port selection).
  // Pin 0 is reserved for the scan-in port muxes.
  int next_pin = 1;

  const auto& added = out.augment.added_edges;
  const auto& anchors = out.augment.edge_anchor;
  FTRSN_CHECK(anchors.size() == added.size());
  out.stats.added_edges = static_cast<int>(added.size());

  // 1a. Splice one 1-bit address register per edge after the edge's
  // bootstrap anchor (stacking when an anchor hosts several).
  std::map<NodeId, std::vector<std::size_t>> by_anchor;
  for (std::size_t i = 0; i < added.size(); ++i)
    if (anchors[i] != kInvalidNode) by_anchor[anchors[i]].push_back(i);
  std::vector<NodeId> edge_reg(added.size(), kInvalidNode);
  std::uint16_t mux_salt = 0;
  std::vector<std::pair<NodeId, NodeId>> reg_target;  // (addr reg, target)
  for (auto& [anchor, edge_ids] : by_anchor) {
    // Original consumers of the anchor, collected before splicing.
    struct Consumer {
      NodeId node;
      int mux_input;  // -1: scan_in
    };
    std::vector<Consumer> consumers;
    for (NodeId id = 0; id < ft.num_nodes(); ++id) {
      const RsnNode& n = ft.node(id);
      if ((n.kind == NodeKind::kSegment || n.kind == NodeKind::kPrimaryOut) &&
          n.scan_in == anchor)
        consumers.push_back({id, -1});
      if (n.kind == NodeKind::kMux)
        for (int k = 0; k < 2; ++k)
          if (n.mux_in[static_cast<std::size_t>(k)] == anchor)
            consumers.push_back({id, k});
    }
    const int module = ft.node(anchor).module;
    const int level = ft.node(anchor).hier_level;
    NodeId tail = anchor;
    for (std::size_t ei : edge_ids) {
      const NodeId reg = ft.add_segment(
          strprintf("ftr_%u_%u", added[ei].from, added[ei].to), 1, tail,
          /*has_shadow=*/true, SegRole::kAddressRegister);
      ft.set_hier(reg, module, level);
      edge_reg[ei] = reg;
      reg_target.emplace_back(reg, added[ei].to);
      tail = reg;
      ++out.stats.added_registers;
      ++out.stats.added_bits;
    }
    // Splice: everything that consumed the anchor now sees the stack tail.
    for (const Consumer& c : consumers) {
      if (c.mux_input < 0)
        ft.set_scan_in(c.node, tail);
      else
        ft.set_mux_in(c.node, c.mux_input, tail);
    }
  }

  // 1b. One 2:1 mux per edge in front of its target, cascading; the mux
  // taps the edge source's output directly (the address register is pure
  // control).  Root-anchored edges are steered by primary pins.
  std::map<NodeId, std::vector<std::size_t>> by_target;
  for (std::size_t i = 0; i < added.size(); ++i)
    by_target[added[i].to].push_back(i);
  // Alternate feeders of each primary scan-out (kept for the secondary
  // scan-out mux tree of SIII-E-4).
  std::map<NodeId, std::vector<NodeId>> sink_feeders;
  std::map<NodeId, NodeId> sink_orig_pred;
  for (auto& [target, edge_ids] : by_target) {
    std::sort(edge_ids.begin(), edge_ids.end(),
              [&](std::size_t a, std::size_t b) {
                return added[a].from < added[b].from;
              });
    NodeId pred = ft.node(target).scan_in;
    if (ft.node(target).kind == NodeKind::kPrimaryOut)
      sink_orig_pred[target] = pred;
    const int module = ft.node(target).module;
    const int level = ft.node(target).hier_level;
    for (std::size_t ei : edge_ids) {
      CtrlRef addr;
      if (edge_reg[ei] == kInvalidNode) {
        addr = ft.ctrl().port_select_input(
            static_cast<std::uint16_t>(next_pin++));
      } else {
        addr = make_address(ft, edge_reg[ei], options.tmr_addresses,
                            ++mux_salt);
      }
      const NodeId feeder = added[ei].from;
      const NodeId mux =
          ft.add_mux(strprintf("ftm_%u_%u", added[ei].from, added[ei].to),
                     pred, feeder, addr);
      ft.set_hier(mux, module, level);
      if (ft.node(target).kind == NodeKind::kPrimaryOut)
        sink_feeders[target].push_back(feeder);
      pred = mux;
      ++out.stats.added_muxes;
    }
    ft.set_scan_in(target, pred);
  }

  // --- step 3 (part): TMR for the original mux addresses (§III-E-3) ---------
  stage.emplace("synth.tmr");
  if (options.tmr_addresses) {
    for (NodeId id = 0; id < n_orig; ++id) {
      if (!ft.node(id).is_mux()) continue;
      const CtrlRef addr = ft.node(id).addr;
      // Copy, not reference: interning the voter below may reallocate the pool.
      const CtrlNode a = ft.ctrl().node(addr);
      if (a.op != CtrlOp::kShadowBit) continue;
      ft.set_shadow_replicas(a.seg, 3);
      CtrlPool& ctrl = ft.ctrl();
      ft.node_mut(id).addr =
          ctrl.mk_maj3(ctrl.shadow_bit(a.seg, a.bit, 0),
                       ctrl.shadow_bit(a.seg, a.bit, 1),
                       ctrl.shadow_bit(a.seg, a.bit, 2), ++mux_salt);
    }
  }

  // --- step 4: duplicate primary scan ports (§III-E-4) ----------------------
  stage.emplace("synth.ports");
  if (options.duplicate_ports) {
    const NodeId si = ft.primary_in();
    const NodeId si2 = ft.add_primary_in("SI2");
    const CtrlRef psel = ft.ctrl().port_select_input();
    // Every consumer of the original scan-in gets a port mux SI/SI2.
    // Collect consumers first: adding muxes reallocates the node table.
    struct Consumer {
      NodeId node;
      int mux_input;  // -1 for scan_in consumers
    };
    std::vector<Consumer> consumers;
    for (NodeId id = 0; id < ft.num_nodes(); ++id) {
      if (id == si2) continue;
      const RsnNode& n = ft.node(id);
      if ((n.kind == NodeKind::kSegment || n.kind == NodeKind::kPrimaryOut) &&
          n.scan_in == si) {
        consumers.push_back({id, -1});
      } else if (n.kind == NodeKind::kMux) {
        for (int k = 0; k < 2; ++k)
          if (n.mux_in[static_cast<std::size_t>(k)] == si)
            consumers.push_back({id, k});
      }
    }
    int port_muxes = 0;
    for (const Consumer& c : consumers) {
      const NodeId pm =
          ft.add_mux(strprintf("ftport%d", port_muxes++), si, si2, psel);
      if (c.mux_input < 0)
        ft.set_scan_in(c.node, pm);
      else
        ft.set_mux_in(c.node, c.mux_input, pm);
      ++out.stats.added_muxes;
    }
    // Secondary scan-out: every predecessor of the original scan-out is
    // connected to the new port through a dedicated mux tree so that a
    // fault in the original port's final mux cascade cannot blind both
    // ports (paper §III-E-4).
    const NodeId so = ft.primary_out();
    NodeId pred2 = sink_orig_pred.count(so) ? sink_orig_pred.at(so)
                                            : ft.node(so).scan_in;
    if (sink_feeders.count(so)) {
      int k = 0;
      for (NodeId feeder : sink_feeders.at(so)) {
        const NodeId m2 = ft.add_mux(
            strprintf("ftso2_%d", k++), pred2, feeder,
            ft.ctrl().port_select_input(static_cast<std::uint16_t>(next_pin++)));
        pred2 = m2;
        ++out.stats.added_muxes;
      }
    }
    ft.add_primary_out("SO2", pred2);
  }

  // --- step 2: recursive select hardening (§III-E-2) ------------------------
  stage.emplace("synth.select");
  if (options.harden_select) {
    // The select network is synthesized as two physically independent gate
    // trees (salted interning) whose outputs are OR-ed per segment:
    // a single stuck-at in one copy can never deassert a select globally
    // ("selective hardening of control logic").  Voters / mux address
    // stems are deliberately shared with the muxes so that control faults
    // affect routing and selection consistently.
    CtrlPool& ctrl = ft.ctrl();
    const CtrlRef en = ctrl.enable_input();
    const auto succ = ft.successors();
    const auto order = ft.topo_order();
    std::array<std::vector<CtrlRef>, 2> sel_of;
    std::array<std::vector<std::vector<std::pair<NodeId, CtrlRef>>>, 2>
        terms_of;
    for (int copy = 0; copy < 2; ++copy) {
      const auto salt = static_cast<std::uint16_t>(copy + 1);
      sel_of[copy].assign(ft.num_nodes(), kCtrlFalse);
      terms_of[copy].resize(ft.num_nodes());
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const NodeId v = *it;
        const RsnNode& n = ft.node(v);
        if (n.kind == NodeKind::kPrimaryOut) {
          sel_of[copy][v] = en;
          continue;
        }
        CtrlRef acc = kCtrlFalse;
        for (NodeId c : succ[v]) {
          const RsnNode& cn = ft.node(c);
          CtrlRef term = sel_of[copy][c];
          if (cn.is_mux()) {
            // The consumer mux must forward v to its output.
            const int side = cn.mux_in[1] == v ? 1 : 0;
            term = ctrl.mk_and(
                term, side == 1 ? cn.addr : ctrl.mk_not(cn.addr, salt), salt);
          }
          terms_of[copy][v].push_back({c, term});
          acc = ctrl.mk_or(acc, term, salt);
        }
        sel_of[copy][v] = acc;
      }
    }
    for (NodeId v = 0; v < ft.num_nodes(); ++v) {
      if (!ft.node(v).is_segment()) continue;
      ft.set_select(v, ctrl.mk_or(sel_of[0][v], sel_of[1][v]));
      for (std::size_t t = 0; t < terms_of[0][v].size(); ++t) {
        const auto& [c, term0] = terms_of[0][v][t];
        const CtrlRef term1 = terms_of[1][v][t].second;
        ft.add_select_term(v, c, ctrl.mk_or(term0, term1));
      }
    }
  } else {
    // Keep the original selects; a new address register participates
    // exactly when its target does (it sits directly on the target's
    // scan-in path).
    for (const auto& [reg, target] : reg_target) {
      const CtrlRef sel = ft.node(target).is_segment()
                              ? ft.node(target).select
                              : ft.ctrl().enable_input();
      ft.set_select(reg, sel);
    }
  }

  // --- static analysis of the result (lint/) --------------------------------
  // Error-severity findings abort the synthesis; warnings (e.g. accepted
  // residual single points of failure) stay in `out.lint` for the caller.
  stage.emplace("synth.lint");
  out.lint = lint::lint_augmentation(g, added, aopt.target_allowed);
  {
    const auto netlist = ft.validate();
    out.lint.insert(out.lint.end(), netlist.begin(), netlist.end());
  }
  lint::throw_if_errors(out.lint, "synthesized fault-tolerant RSN",
                        ft.node_names());
  stage.reset();
  return out;
}

}  // namespace ftrsn
