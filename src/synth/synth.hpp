// Final synthesis of the fault-tolerant RSN (paper §III-E).
//
// Starting from the original RSN and the augmenting edge set:
//  1. every augmenting edge (i, j) is realized with a new 2:1 scan mux in
//     front of j, cascading when j receives several new edges; each new mux
//     is steered by a fresh 1-bit address register spliced into the scan
//     path directly before j (writable from the reset configuration, local
//     single point of failure for j only);
//  2. select signals are re-derived recursively from the successors of each
//     scan element so that every segment has at least two independent ways
//     of asserting its select (Fig. 5); the original select logic is not
//     used;
//  3. multiplexer address signals are hardened with triple modular
//     redundancy: triplicated shadow latches and one voter per driven mux;
//  4. the primary scan-in and scan-out ports are duplicated; the scan-in
//     choice is steered by a dedicated primary port-select input (a fault
//     inside the network cannot lock out both ports).
//
// The reset configuration of the fault-tolerant RSN reproduces the original
// scan topology, so every scan path configurable in the original RSN
// remains configurable.
#pragma once

#include "augment/augment.hpp"
#include "lint/fix.hpp"
#include "rsn/rsn.hpp"

namespace ftrsn {

struct SynthOptions {
  AugmentOptions augment;
  bool harden_select = true;    ///< §III-E-2
  bool tmr_addresses = true;    ///< §III-E-3
  bool duplicate_ports = true;  ///< §III-E-4
  /// Run the verified lint auto-repair engine (lint/fix.hpp) on the input
  /// before synthesis: the dataflow graph, the AugmentLintCache and all
  /// downstream stages then consume the pre-repaired network instead of
  /// tripping over mechanically fixable defects (dead cones, constant
  /// muxes, unused ports).
  bool repair_input = false;
  /// Verification mode for the pre-synthesis repair.
  lint::FixVerify repair_verify = lint::FixVerify::kSat;
};

struct SynthStats {
  int added_muxes = 0;
  int added_registers = 0;     ///< new address registers
  long long added_bits = 0;    ///< shift bits added
  int added_edges = 0;         ///< augmenting edges realized
  int repaired_findings = 0;   ///< lint findings auto-repaired pre-synthesis
};

struct SynthResult {
  Rsn rsn;  ///< the fault-tolerant RSN
  AugmentResult augment;
  SynthStats stats;
  /// Full static-analysis report of the result (lint/lint.hpp): the
  /// augmentation postconditions on the abstract dataflow graph followed by
  /// the structural/control rules on the synthesized netlist.  Synthesis
  /// throws if any diagnostic has error severity, so a returned result can
  /// only carry warnings/infos (e.g. residual single points of failure).
  std::vector<lint::Diagnostic> lint;
};

/// Synthesizes the fault-tolerant version of `original`.
SynthResult synthesize_fault_tolerant(const Rsn& original,
                                      const SynthOptions& options = {});

}  // namespace ftrsn
