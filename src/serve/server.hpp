// JSONL socket front end for ServeService (DESIGN.md §5k).
//
// One ServeServer listens on either a loopback TCP port (default; port 0
// picks an ephemeral one) or a Unix-domain socket, accepts any number of
// concurrent connections, and runs one reader thread per connection:
// requests are newline-delimited JSON objects, each answered with exactly
// one newline-terminated JSON response in request order (per connection;
// the service interleaves work across connections freely).
//
// The transport adds a single op of its own: {"op":"shutdown"} answers,
// then stops the listener and unblocks wait() — the CI smoke and the bench
// use it for a clean client-driven teardown.  Everything else is passed to
// ServeService::handle_line verbatim.
//
// The server borrows the service; the service (and its cache/pool) may
// outlive the server or serve several transports in sequence.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "serve/service.hpp"

namespace ftrsn::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;           ///< TCP port; 0 = ephemeral (read back via port())
  std::string unix_path;  ///< when set, Unix-domain socket instead of TCP
  int backlog = 16;
  /// When set, the bound TCP port (or the unix path) is written here after
  /// listen() — the race-free way for scripts to find an ephemeral port.
  std::string port_file;
};

class ServeServer {
 public:
  ServeServer(ServeService& service, const ServerOptions& options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds, listens and starts the accept thread.  Returns false with a
  /// message in `error` on any socket failure.
  bool start(std::string* error);

  /// Bound TCP port (resolved after start() for port 0), -1 for unix.
  int port() const;

  /// Blocks until a shutdown request arrives or stop() is called.
  void wait();

  /// Stops accepting, unblocks every connection reader, joins all threads.
  /// Idempotent; also run by the destructor.
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Shared driver behind `rsn_tool serve` and the example_rsn_serve binary:
/// parses flags, builds the service and server, prints the endpoint, runs
/// until shutdown.  Flags:
///   --port=N --host=H --unix=PATH --port-file=PATH --threads=N
///   --cache-mb=N --cache-entries=N --timeout-ms=N
/// Honours FTRSN_TRACE / FTRSN_REPORT (prefix "rsn_serve").
int serve_main(const std::vector<std::string>& args);

}  // namespace ftrsn::serve
