#include "serve/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "util/common.hpp"
#include "util/json.hpp"

namespace ftrsn::serve {

namespace {

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// True only for a well-formed {"op":"shutdown"} request.  The substring
/// pre-filter keeps the common path to one JSON parse (in handle_line): a
/// multi-megabyte .rsn upload is only re-parsed here if it happens to
/// contain the word "shutdown" somewhere.
bool is_shutdown_request(const std::string& line) {
  if (line.find("shutdown") == std::string::npos) return false;
  const auto doc = json::parse(line);
  if (!doc || !doc->is_object()) return false;
  const json::Value* op = doc->find("op");
  return op && op->is_string() && op->text == "shutdown";
}

std::string shutdown_response(const std::string& line) {
  std::string id;
  if (const auto doc = json::parse(line); doc && doc->is_object())
    if (const json::Value* v = doc->find("id"); v && v->is_string())
      id = v->text;
  return strprintf(
      "{\"id\":\"%s\",\"ok\":true,\"op\":\"shutdown\","
      "\"result\":{\"stopping\":true},\"micros\":0}",
      obs::detail::json_escape(id).c_str());
}

}  // namespace

struct ServeServer::Impl {
  ServeService* service = nullptr;
  ServerOptions options;

  // The accept thread reads the listener while stop() retires it, so the
  // handoff is an atomic exchange: stop() takes ownership of the fd,
  // shutdown() unblocks the blocked accept(), and the close() waits until
  // the accept thread has been joined (no fd-reuse window).
  std::atomic<int> listen_fd{-1};
  int bound_port = -1;

  std::mutex mutex;
  std::condition_variable cv;
  bool stopping = false;
  std::vector<int> conn_fds;
  std::vector<std::thread> conn_threads;
  std::thread accept_thread;

  void accept_main();
  void connection_main(int fd);
  void request_stop();
};

ServeServer::ServeServer(ServeService& service, const ServerOptions& options)
    : impl_(new Impl) {
  impl_->service = &service;
  impl_->options = options;
}

ServeServer::~ServeServer() { stop(); }

int ServeServer::port() const { return impl_->bound_port; }

bool ServeServer::start(std::string* error) {
  const auto fail = [&](const char* what) {
    if (error)
      *error = strprintf("%s: %s", what, std::strerror(errno));
    if (impl_->listen_fd >= 0) {
      ::close(impl_->listen_fd);
      impl_->listen_fd = -1;
    }
    return false;
  };

  if (!impl_->options.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (impl_->options.unix_path.size() >= sizeof(addr.sun_path)) {
      if (error) *error = "unix socket path too long";
      return false;
    }
    std::strncpy(addr.sun_path, impl_->options.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(impl_->options.unix_path.c_str());  // stale socket from a crash
    impl_->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (impl_->listen_fd < 0) return fail("socket");
    if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0)
      return fail("bind");
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(impl_->options.port));
    if (::inet_pton(AF_INET, impl_->options.host.c_str(), &addr.sin_addr) !=
        1) {
      if (error)
        *error = strprintf("bad host \"%s\"", impl_->options.host.c_str());
      return false;
    }
    impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (impl_->listen_fd < 0) return fail("socket");
    const int one = 1;
    ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0)
      return fail("bind");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                      &len) < 0)
      return fail("getsockname");
    impl_->bound_port = static_cast<int>(ntohs(bound.sin_port));
  }
  if (::listen(impl_->listen_fd, impl_->options.backlog) < 0)
    return fail("listen");

  if (!impl_->options.port_file.empty()) {
    const std::string contents =
        impl_->options.unix_path.empty()
            ? strprintf("%d\n", impl_->bound_port)
            : impl_->options.unix_path + "\n";
    if (!obs::write_file(impl_->options.port_file, contents)) {
      if (error)
        *error = strprintf("cannot write port file %s",
                           impl_->options.port_file.c_str());
      ::close(impl_->listen_fd);
      impl_->listen_fd = -1;
      return false;
    }
  }
  impl_->accept_thread = std::thread([this] { impl_->accept_main(); });
  return true;
}

void ServeServer::Impl::accept_main() {
  obs::set_thread_name("serve-accept");
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    std::lock_guard<std::mutex> lock(mutex);
    if (stopping) {
      ::close(fd);
      break;
    }
    conn_fds.push_back(fd);
    conn_threads.emplace_back([this, fd] { connection_main(fd); });
  }
}

void ServeServer::Impl::connection_main(int fd) {
  obs::set_thread_name(strprintf("serve-conn-%d", fd));
  obs::count("serve.connections");
  std::string buffer;
  char chunk[4096];
  bool shutdown_requested = false;
  bool alive = true;
  while (alive) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed or stop() shut the socket down
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         alive && nl != std::string::npos; nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (is_shutdown_request(line)) {
        send_all(fd, shutdown_response(line) + "\n");
        shutdown_requested = true;
        alive = false;
        break;
      }
      obs::count("serve.requests");
      alive = send_all(fd, service->handle_line(line) + "\n");
    }
    buffer.erase(0, start);
  }
  ::shutdown(fd, SHUT_RDWR);
  if (shutdown_requested) request_stop();
}

void ServeServer::Impl::request_stop() {
  {
    std::lock_guard<std::mutex> lock(mutex);
    stopping = true;
  }
  cv.notify_all();
}

void ServeServer::wait() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->cv.wait(lock, [&] { return impl_->stopping; });
}

void ServeServer::stop() {
  impl_->request_stop();
  const int listener = impl_->listen_fd.exchange(-1);
  if (listener >= 0) ::shutdown(listener, SHUT_RDWR);  // unblocks accept()
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  if (listener >= 0) ::close(listener);
  std::vector<int> fds;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    fds.swap(impl_->conn_fds);
    threads.swap(impl_->conn_threads);
  }
  for (const int fd : fds) ::shutdown(fd, SHUT_RDWR);  // unblock readers
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
  for (const int fd : fds) ::close(fd);
  if (!impl_->options.unix_path.empty())
    ::unlink(impl_->options.unix_path.c_str());
}

// --- CLI driver --------------------------------------------------------------

int serve_main(const std::vector<std::string>& args) {
  ServiceOptions sopt;
  ServerOptions nopt;
  const obs::EnvConfig env = obs::init_from_env("rsn_serve");
  for (const std::string& arg : args) {
    if (arg.rfind("--port=", 0) == 0) {
      nopt.port = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--host=", 0) == 0) {
      nopt.host = arg.substr(7);
    } else if (arg.rfind("--unix=", 0) == 0) {
      nopt.unix_path = arg.substr(7);
    } else if (arg.rfind("--port-file=", 0) == 0) {
      nopt.port_file = arg.substr(12);
    } else if (arg.rfind("--threads=", 0) == 0) {
      sopt.threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--cache-mb=", 0) == 0) {
      sopt.cache.max_bytes =
          static_cast<std::size_t>(std::atoll(arg.c_str() + 11)) << 20;
    } else if (arg.rfind("--cache-entries=", 0) == 0) {
      sopt.cache.max_entries =
          static_cast<std::size_t>(std::atoll(arg.c_str() + 16));
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      sopt.limits.timeout_ms =
          static_cast<std::uint64_t>(std::atoll(arg.c_str() + 13));
    } else {
      std::fprintf(
          stderr,
          "usage: serve [--port=N] [--host=H] [--unix=PATH]\n"
          "             [--port-file=PATH] [--threads=N] [--cache-mb=N]\n"
          "             [--cache-entries=N] [--timeout-ms=N]\n");
      return 2;
    }
  }

  ServeService service(sopt);
  ServeServer server(service, nopt);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "serve: %s\n", error.c_str());
    return 1;
  }
  if (!nopt.unix_path.empty())
    std::printf("listening on unix:%s (%d threads)\n", nopt.unix_path.c_str(),
                service.num_threads());
  else
    std::printf("listening on %s:%d (%d threads)\n", nopt.host.c_str(),
                server.port(), service.num_threads());
  std::fflush(stdout);

  server.wait();
  server.stop();

  const CacheStats cs = service.cache_stats();
  std::printf("serve: %llu hits, %llu misses, %llu coalesced, "
              "%llu evictions (%zu entries, %zu bytes cached)\n",
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.coalesced),
              static_cast<unsigned long long>(cs.evictions), cs.entries,
              cs.bytes);
  if (!env.trace_path.empty()) obs::write_trace(env.trace_path);
  if (!env.report_path.empty()) obs::write_report(env.report_path);
  return 0;
}

}  // namespace ftrsn::serve
