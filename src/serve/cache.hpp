// Content-addressed result cache with single-flight coalescing
// (DESIGN.md §5k).
//
// The cache maps a content key — SHA-256 of (canonical network
// serialization, options fingerprint), computed by the serve service — to
// an immutable result blob (the fully rendered result JSON).  Because the
// key is content-addressed, a hit is *correct by construction*: the blob
// was rendered from a byte-identical input under byte-identical options,
// and the engines it fronts are deterministic, so a hit response is
// byte-identical to what a cold run would produce.
//
// Single flight: the first acquire of an absent key becomes the *leader*
// (kLead) and owns the computation; every concurrent acquire of the same
// key *coalesces* onto the leader's Flight (kShared) and blocks until the
// leader publishes — N identical concurrent requests cost one computation.
// The leader must resolve its flight exactly once, with complete() (blob
// is inserted and all waiters wake with it) or fail() (waiters wake with
// the error and the cache is left untouched — a failed or cancelled
// computation never poisons the key; the next acquire leads a fresh one).
//
// Eviction: LRU over both an entry-count cap and a byte budget (key +
// blob + fixed per-entry overhead).  A blob larger than the byte budget
// is served to the waiters but never inserted.  Hits refresh recency;
// coalesced waiters inherit the recency of the leader's insert.
//
// Cancellation: Flight::cancelled is a cooperative flag.  Anyone may set
// it (request_cancel); the leader's computation polls it at stage
// boundaries and resolves the flight with fail("cancelled ...").  Waiters
// own their own deadlines: a waiter that times out stops waiting without
// disturbing the flight.
//
// Counters: serve.cache_hits / cache_misses / coalesced / evictions /
// insertions / failures / uncacheable are recorded on the caller's obs
// context *and* mirrored in CacheStats, so tests and the bench can assert
// them without obs context juggling.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace ftrsn::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;       ///< acquires that became leader
  std::uint64_t coalesced = 0;    ///< acquires that joined an in-flight leader
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t failures = 0;     ///< flights resolved by fail()
  std::uint64_t uncacheable = 0;  ///< blobs too large for the byte budget
  std::size_t entries = 0;
  std::size_t bytes = 0;  ///< charged bytes (keys + blobs + overhead)
};

class ResultCache {
 public:
  struct Options {
    std::size_t max_bytes = std::size_t{64} << 20;
    std::size_t max_entries = 4096;
  };

  /// One in-flight computation.  Created by the leading acquire, resolved
  /// exactly once by complete()/fail(), shared by every coalesced waiter.
  class Flight {
   public:
    /// Cooperative cancellation flag, polled by the leader's computation.
    std::atomic<bool> cancelled{false};

   private:
    friend class ResultCache;
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    std::string payload;  ///< blob when ok, error text otherwise
  };
  using FlightPtr = std::shared_ptr<Flight>;

  struct Lookup {
    enum class Kind {
      kHit,     ///< value is the cached blob
      kLead,    ///< caller owns the computation; resolve `flight`
      kShared,  ///< value is the blob another flight computed
      kFailed,  ///< value is an error message (failed flight or timeout)
    };
    Kind kind = Kind::kFailed;
    std::string value;
    FlightPtr flight;  ///< set for kLead
  };

  ResultCache();  // default budgets
  explicit ResultCache(const Options& options);

  /// Single-flight lookup.  kHit returns immediately; an absent key with
  /// no flight in progress returns kLead (the caller MUST later call
  /// complete() or fail() with the returned flight); a key with a flight
  /// in progress blocks until the flight resolves or `deadline` passes
  /// (nullopt = wait forever), returning kShared / kFailed.
  Lookup acquire(
      const std::string& key,
      std::optional<std::chrono::steady_clock::time_point> deadline =
          std::nullopt);

  /// Blocks the *leader* on its own flight the same way coalesced waiters
  /// block (the serve service resolves flights on pool workers, so the
  /// leading request thread waits too).  Returns kShared / kFailed.
  Lookup await(const FlightPtr& flight,
               std::optional<std::chrono::steady_clock::time_point> deadline =
                   std::nullopt) const;

  /// Publishes the leader's result: inserts the blob under `key` (evicting
  /// LRU entries past the budgets; oversized blobs are counted uncacheable
  /// and not inserted), wakes every waiter with it, and retires the flight.
  void complete(const std::string& key, const FlightPtr& flight,
                std::string blob);

  /// Resolves the leader's flight as failed: wakes every waiter with
  /// `error` and retires the flight without touching the cache — the next
  /// acquire of `key` leads a fresh computation (no poisoned entries).
  void fail(const std::string& key, const FlightPtr& flight,
            std::string error);

  /// Sets the cancellation flag of the in-flight computation of `key`.
  /// Returns false when no flight is in progress for it.
  bool request_cancel(const std::string& key);

  /// Cached blob without touching recency (tests / introspection).
  std::optional<std::string> peek(const std::string& key) const;

  CacheStats stats() const;
  void clear();

 private:
  struct Entry {
    std::string blob;
    std::size_t charged = 0;
    std::list<std::string>::iterator lru;  // position in lru_ (front = MRU)
  };

  /// Per-entry bookkeeping overhead charged against the byte budget on
  /// top of key and blob bytes (map node, LRU node, Entry itself).
  static constexpr std::size_t kEntryOverhead = 128;

  void evict_locked();

  Options options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, FlightPtr> flights_;
  CacheStats stats_;
};

}  // namespace ftrsn::serve
