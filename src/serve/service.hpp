// ServeService — the analysis engine behind `ftrsn serve` (DESIGN.md §5k).
//
// One service owns one ThreadPool, one ResultCache and one *engine
// thread*.  Any number of transport threads (socket connections, bench
// clients) call handle_line() concurrently; each call turns one JSONL
// request into one JSONL response:
//
//   {"id":"r1","op":"metric","rsn":"<.rsn text>","options":{...},
//    "timeout_ms":5000}
//   -> {"id":"r1","ok":true,"op":"metric","cached":false,"coalesced":false,
//       "key":"<sha256>","result":{...},"result_sha256":"<sha256>",
//       "micros":N}
//
// Ops: parse | lint | synth | metric | access (cacheable analyses over the
// uploaded network), plus stats (service introspection, uncached) and
// cancel (cooperative cancellation of an in-flight request by id).
//
// Execution model (BatchRunner-style nested submission): compute never
// runs on a transport thread.  The leading request enqueues a task and
// waits on its cache flight; the engine thread drains the pending queue in
// rounds, running each round as one pool parallel_for with one request per
// chunk — the fault-metric engine's fault-class loop then nests on the
// same pool (MetricEngineOptions::pool), exactly like a batch flow.  The
// engine thread is the pool's only external submitter, which is what the
// ThreadPool's worker-0 aliasing rule requires.  Cache hits never touch
// the engine: they are served on the transport thread in microseconds.
//
// Caching: key = SHA-256(domain tag, Rsn::content_hash(), canonical
// options fingerprint).  The fingerprint renders the *normalized* options
// (defaults filled in), so `{}` and an explicitly-default options object
// share one key.  The blob is the rendered result JSON; every renderer is
// deterministic (fixed key order, shortest-round-trip doubles), so a hit
// is byte-identical to a cold run.  Errors are never cached.
//
// Limits: max_input_bytes rejects oversized uploads before parsing;
// max_result_bytes fails a computation whose blob would exceed it;
// timeout_ms bounds how long a request waits for its result (per-request
// "timeout_ms" may lower, never raise, the service limit).  A timed-out
// leader cancels its own flight; cancellation is cooperative — compute
// polls the flag at stage boundaries — and a cancelled flight fails all
// coalesced waiters but never poisons the cache.
//
// Observability: each computed request runs under its own child
// ObsContext (merged into the context current at service construction),
// and every request — hits included — records its latency into the
// serve.request_us histogram plus the per-family serve.request_us.<op>
// one, all surfaced by the v2 run report's optional histograms section.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/cache.hpp"

namespace ftrsn::serve {

struct ServeLimits {
  /// Max wall time a request waits for its result; 0 = unlimited.  The
  /// per-request "timeout_ms" field is clamped to this when both are set.
  std::uint64_t timeout_ms = 120000;
  /// Max size of an uploaded .rsn text.
  std::size_t max_input_bytes = std::size_t{16} << 20;
  /// Max size of a rendered result blob.
  std::size_t max_result_bytes = std::size_t{16} << 20;
};

struct ServiceOptions {
  /// Shared pool size including the engine thread's slot; <= 0 resolves to
  /// the hardware concurrency.
  int threads = 0;
  ResultCache::Options cache;
  ServeLimits limits;
  /// Parsed-network memo entries (raw-text digest -> parsed Rsn), so
  /// repeated uploads of byte-identical text skip the parser even on a
  /// result-cache miss (same network, new options).
  std::size_t ingest_entries = 32;
  /// Labels the pool's worker lanes ("<name>-w<k>") in traces.
  std::string pool_name = "serve";
};

class ServeService {
 public:
  explicit ServeService(const ServiceOptions& options = {});
  ~ServeService();

  ServeService(const ServeService&) = delete;
  ServeService& operator=(const ServeService&) = delete;

  /// Handles one JSONL request line, returns one JSONL response line (no
  /// trailing newline).  Thread-safe; blocks until the result is ready,
  /// the request times out, or it fails.  Never throws on bad input — a
  /// malformed line yields an {"ok":false,...} response.
  std::string handle_line(const std::string& line);

  /// Cooperatively cancels the in-flight request with this id (the id the
  /// *leading* request carried).  Returns false when no such request is
  /// currently computing.
  bool cancel_request(const std::string& id);

  int num_threads() const;
  const ServiceOptions& options() const { return options_; }
  CacheStats cache_stats() const { return cache_.stats(); }

  /// True once the service refuses new requests (destructor in progress).
  bool stopping() const;

 private:
  struct Impl;
  ServiceOptions options_;
  ResultCache cache_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ftrsn::serve
