#include "serve/cache.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "util/common.hpp"

namespace ftrsn::serve {

namespace {

obs::Counter& hits_counter() {
  static obs::Counter c("serve.cache_hits");
  return c;
}
obs::Counter& misses_counter() {
  static obs::Counter c("serve.cache_misses");
  return c;
}
obs::Counter& coalesced_counter() {
  static obs::Counter c("serve.coalesced");
  return c;
}
obs::Counter& evictions_counter() {
  static obs::Counter c("serve.evictions");
  return c;
}

}  // namespace

ResultCache::ResultCache() : ResultCache(Options{}) {}

ResultCache::ResultCache(const Options& options) : options_(options) {
  FTRSN_CHECK_MSG(options_.max_entries > 0, "cache needs at least one entry");
}

ResultCache::Lookup ResultCache::acquire(
    const std::string& key,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  FlightPtr flight;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      // Refresh recency: move to MRU position.
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      ++stats_.hits;
      hits_counter().add();
      return {Lookup::Kind::kHit, it->second.blob, nullptr};
    }
    const auto fit = flights_.find(key);
    if (fit == flights_.end()) {
      flight = std::make_shared<Flight>();
      flights_.emplace(key, flight);
      ++stats_.misses;
      misses_counter().add();
      return {Lookup::Kind::kLead, {}, flight};
    }
    flight = fit->second;
    ++stats_.coalesced;
    coalesced_counter().add();
  }
  return await(flight, deadline);
}

ResultCache::Lookup ResultCache::await(
    const FlightPtr& flight,
    std::optional<std::chrono::steady_clock::time_point> deadline) const {
  std::unique_lock<std::mutex> lock(flight->mutex);
  const auto resolved = [&] { return flight->done; };
  if (deadline) {
    if (!flight->cv.wait_until(lock, *deadline, resolved))
      return {Lookup::Kind::kFailed,
              "timeout waiting for in-flight computation", nullptr};
  } else {
    flight->cv.wait(lock, resolved);
  }
  return {flight->ok ? Lookup::Kind::kShared : Lookup::Kind::kFailed,
          flight->payload, nullptr};
}

void ResultCache::evict_locked() {
  while (!lru_.empty() && (stats_.bytes > options_.max_bytes ||
                           stats_.entries > options_.max_entries)) {
    const std::string& victim = lru_.back();
    const auto it = entries_.find(victim);
    FTRSN_CHECK(it != entries_.end());
    stats_.bytes -= it->second.charged;
    --stats_.entries;
    ++stats_.evictions;
    evictions_counter().add();
    entries_.erase(it);
    lru_.pop_back();
  }
}

void ResultCache::complete(const std::string& key, const FlightPtr& flight,
                           std::string blob) {
  FTRSN_CHECK_MSG(flight != nullptr, "complete() needs the leader's flight");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t charged = key.size() + blob.size() + kEntryOverhead;
    if (charged > options_.max_bytes) {
      ++stats_.uncacheable;
      obs::count("serve.cache_uncacheable");
    } else if (!entries_.count(key)) {
      lru_.push_front(key);
      Entry entry;
      entry.blob = blob;
      entry.charged = charged;
      entry.lru = lru_.begin();
      entries_.emplace(key, std::move(entry));
      stats_.bytes += charged;
      ++stats_.entries;
      ++stats_.insertions;
      obs::count("serve.cache_insertions");
      evict_locked();
    }
    flights_.erase(key);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->done = true;
    flight->ok = true;
    flight->payload = std::move(blob);
  }
  flight->cv.notify_all();
}

void ResultCache::fail(const std::string& key, const FlightPtr& flight,
                       std::string error) {
  FTRSN_CHECK_MSG(flight != nullptr, "fail() needs the leader's flight");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    flights_.erase(key);
    ++stats_.failures;
  }
  obs::count("serve.cache_failures");
  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->done = true;
    flight->ok = false;
    flight->payload = std::move(error);
  }
  flight->cv.notify_all();
}

bool ResultCache::request_cancel(const std::string& key) {
  FlightPtr flight;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = flights_.find(key);
    if (it == flights_.end()) return false;
    flight = it->second;
  }
  flight->cancelled.store(true, std::memory_order_relaxed);
  return true;
}

std::optional<std::string> ResultCache::peek(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second.blob;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  stats_.entries = 0;
  stats_.bytes = 0;
}

}  // namespace ftrsn::serve
