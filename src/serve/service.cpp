#include "serve/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "access/planner.hpp"
#include "area/area.hpp"
#include "fault/metric.hpp"
#include "fault/metric_engine.hpp"
#include "io/rsn_text.hpp"
#include "lint/lint.hpp"
#include "obs/obs.hpp"
#include "rsn/rsn.hpp"
#include "synth/synth.hpp"
#include "util/common.hpp"
#include "util/json.hpp"
#include "util/sha256.hpp"
#include "util/thread_pool.hpp"

namespace ftrsn::serve {

namespace {

using Clock = std::chrono::steady_clock;

enum class Op : std::uint8_t {
  kParse,
  kLint,
  kSynth,
  kMetric,
  kAccess,
  kStats,
  kCancel,
};

const char* op_name(Op op) {
  switch (op) {
    case Op::kParse: return "parse";
    case Op::kLint: return "lint";
    case Op::kSynth: return "synth";
    case Op::kMetric: return "metric";
    case Op::kAccess: return "access";
    case Op::kStats: return "stats";
    case Op::kCancel: return "cancel";
  }
  return "?";
}

std::optional<Op> parse_op(std::string_view name) {
  if (name == "parse") return Op::kParse;
  if (name == "lint") return Op::kLint;
  if (name == "synth") return Op::kSynth;
  if (name == "metric") return Op::kMetric;
  if (name == "access") return Op::kAccess;
  if (name == "stats") return Op::kStats;
  if (name == "cancel") return Op::kCancel;
  return std::nullopt;
}

bool op_is_cacheable(Op op) { return op != Op::kStats && op != Op::kCancel; }

/// Normalized per-op options.  Every field has the default the fingerprint
/// renders, so an empty options object and an explicitly-default one key
/// identically.
struct OpOptions {
  bool ft = false;                 // lint: enable the post-synthesis rules
  bool harden_select = true;       // synth
  bool tmr_addresses = true;       // synth
  bool duplicate_ports = true;     // synth
  bool return_rsn = false;         // synth: include the hardened .rsn text
  bool count_sib = true;           // metric (MetricOptions defaults)
  bool count_address = false;      // metric
  bool distribution = false;       // metric: per-fault fractions in result
  bool packed = true;              // metric: 64-lane engine path
  std::string target;              // access: segment name (required)
  std::uint64_t debug_sleep_ms = 0;  // test hook: cancellation-poll sleep
};

std::string fp_bool(const char* key, bool v) {
  return strprintf("%s %d\n", key, v ? 1 : 0);
}

/// Canonical options fingerprint: one line per *relevant* option in fixed
/// order, defaults filled in.  Part of the cache key — any byte change
/// here invalidates (correctly) every cached result for the op.
std::string options_fingerprint(Op op, const OpOptions& o) {
  std::string fp = strprintf("op %s\n", op_name(op));
  switch (op) {
    case Op::kParse:
      break;
    case Op::kLint:
      fp += fp_bool("ft", o.ft);
      break;
    case Op::kSynth:
      fp += fp_bool("harden_select", o.harden_select);
      fp += fp_bool("tmr_addresses", o.tmr_addresses);
      fp += fp_bool("duplicate_ports", o.duplicate_ports);
      fp += fp_bool("return_rsn", o.return_rsn);
      break;
    case Op::kMetric:
      fp += fp_bool("count_sib", o.count_sib);
      fp += fp_bool("count_address", o.count_address);
      fp += fp_bool("distribution", o.distribution);
      // `packed` is deliberately absent: both engine paths are
      // bit-identical (the corpus judge pins that), so they must share
      // one cache entry.
      break;
    case Op::kAccess:
      fp += strprintf("target %s\n", o.target.c_str());
      break;
    case Op::kStats:
    case Op::kCancel:
      break;
  }
  if (o.debug_sleep_ms > 0)
    fp += strprintf("debug_sleep_ms %llu\n",
                    static_cast<unsigned long long>(o.debug_sleep_ms));
  return fp;
}

/// Strict option extraction: only the keys the op understands are
/// accepted, so a typo fails loudly instead of silently keying a default.
std::string parse_options(Op op, const json::Value* obj, OpOptions& out) {
  if (obj == nullptr) {
    if (op == Op::kAccess) return "access requires options.target";
    return {};
  }
  if (!obj->is_object()) return "\"options\" must be an object";
  const auto get_bool = [](const json::Value& v, bool& slot) -> bool {
    if (v.is_bool()) {
      slot = v.boolean;
      return true;
    }
    if (v.is_number() && (v.number == 0.0 || v.number == 1.0)) {
      slot = v.number != 0.0;
      return true;
    }
    return false;
  };
  for (const auto& [key, value] : obj->members) {
    bool ok = false;
    if (key == "debug_sleep_ms" && value.is_number() && value.number >= 0) {
      out.debug_sleep_ms = static_cast<std::uint64_t>(value.number);
      ok = true;
    } else if (op == Op::kLint && key == "ft") {
      ok = get_bool(value, out.ft);
    } else if (op == Op::kSynth) {
      if (key == "harden_select") ok = get_bool(value, out.harden_select);
      else if (key == "tmr_addresses") ok = get_bool(value, out.tmr_addresses);
      else if (key == "duplicate_ports")
        ok = get_bool(value, out.duplicate_ports);
      else if (key == "return_rsn") ok = get_bool(value, out.return_rsn);
    } else if (op == Op::kMetric) {
      if (key == "count_sib") ok = get_bool(value, out.count_sib);
      else if (key == "count_address") ok = get_bool(value, out.count_address);
      else if (key == "distribution") ok = get_bool(value, out.distribution);
      else if (key == "packed") ok = get_bool(value, out.packed);
    } else if (op == Op::kAccess && key == "target" && value.is_string()) {
      out.target = value.text;
      ok = true;
    }
    if (!ok)
      return strprintf("op %s: bad or unknown option \"%s\"", op_name(op),
                       key.c_str());
  }
  if (op == Op::kAccess && out.target.empty())
    return "access requires options.target";
  return {};
}

std::string jstr(std::string_view s) {
  return "\"" + obs::detail::json_escape(s) + "\"";
}

obs::Histogram& request_hist() {
  static obs::Histogram h("serve.request_us");
  return h;
}

obs::Histogram& op_hist(Op op) {
  static obs::Histogram parse_h("serve.request_us.parse");
  static obs::Histogram lint_h("serve.request_us.lint");
  static obs::Histogram synth_h("serve.request_us.synth");
  static obs::Histogram metric_h("serve.request_us.metric");
  static obs::Histogram access_h("serve.request_us.access");
  static obs::Histogram stats_h("serve.request_us.stats");
  static obs::Histogram cancel_h("serve.request_us.cancel");
  switch (op) {
    case Op::kParse: return parse_h;
    case Op::kLint: return lint_h;
    case Op::kSynth: return synth_h;
    case Op::kMetric: return metric_h;
    case Op::kAccess: return access_h;
    case Op::kStats: return stats_h;
    case Op::kCancel: return cancel_h;
  }
  return parse_h;
}

struct Cancelled : std::runtime_error {
  Cancelled() : std::runtime_error("cancelled") {}
};

/// Lint severity counts as a JSON fragment (shared by parse/synth results).
std::string lint_counts_json(const std::vector<lint::Diagnostic>& diags) {
  const auto counts = lint::count_by_severity(diags);
  return strprintf("{\"errors\":%d,\"warnings\":%d,\"infos\":%d}",
                   counts[static_cast<int>(lint::Severity::kError)],
                   counts[static_cast<int>(lint::Severity::kWarning)],
                   counts[static_cast<int>(lint::Severity::kInfo)]);
}

std::string stats_json(const RsnStats& s) {
  return strprintf(
      "{\"segments\":%d,\"muxes\":%d,\"bits\":%lld,\"nets\":%d,"
      "\"levels\":%d,\"primary_ins\":%d,\"primary_outs\":%d}",
      s.segments, s.muxes, s.bits, s.nets, s.levels, s.primary_ins,
      s.primary_outs);
}

}  // namespace

// --- Impl --------------------------------------------------------------------

struct ServeService::Impl {
  struct Task {
    Op op = Op::kParse;
    OpOptions options;
    std::string key;
    ResultCache::FlightPtr flight;
    std::shared_ptr<const Rsn> rsn;
  };
  using TaskPtr = std::shared_ptr<Task>;

  ServeService* self = nullptr;
  std::unique_ptr<ThreadPool> pool;
  /// Context current at service construction; every per-request child
  /// context merges into it (BatchRunner's parent-context pattern).
  obs::ObsContext* parent = nullptr;

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<TaskPtr> pending;
  bool stop = false;
  /// Leading request id -> cache key, for the cancel op.
  std::unordered_map<std::string, std::string> inflight;

  // Parsed-network memo (raw-text digest -> parsed network), LRU.
  struct IngestEntry {
    std::shared_ptr<const Rsn> rsn;
    std::string content_hash;
    std::list<std::string>::iterator lru;
  };
  std::mutex ingest_mutex;
  std::unordered_map<std::string, IngestEntry> ingest;
  std::list<std::string> ingest_lru;  // front = MRU
  std::atomic<std::uint64_t> ingest_hits{0}, ingest_misses{0};

  std::thread engine;

  void engine_main();
  void run_task(Task& task);
  std::string compute(Task& task);
  void sleep_hook(const Task& task);

  std::string ingest_network(const std::string& text,
                             std::shared_ptr<const Rsn>& rsn_out,
                             std::string& content_hash_out);
  std::string render_stats_result();
};

// --- construction / teardown -------------------------------------------------

ServeService::ServeService(const ServiceOptions& options)
    : options_(options), cache_(options.cache), impl_(new Impl) {
  impl_->self = this;
  impl_->parent = &obs::current_context();
  impl_->pool = std::make_unique<ThreadPool>(options_.threads,
                                             options_.pool_name.c_str());
  impl_->engine = std::thread([this] { impl_->engine_main(); });
}

ServeService::~ServeService() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  impl_->engine.join();
}

int ServeService::num_threads() const { return impl_->pool->num_threads(); }

bool ServeService::stopping() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stop;
}

// --- engine thread -----------------------------------------------------------

void ServeService::Impl::engine_main() {
  obs::set_thread_name("serve-engine");
  for (;;) {
    std::vector<TaskPtr> batch;
    bool stopping = false;
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return stop || !pending.empty(); });
      stopping = stop;
      if (pending.empty()) break;  // stop requested, queue drained
      batch.assign(pending.begin(), pending.end());
      pending.clear();
    }
    if (stopping) {
      // Shutdown drains by failing, never by dropping: every leader (and
      // its coalesced waiters) wakes with a definite error.
      for (const TaskPtr& t : batch)
        self->cache_.fail(t->key, t->flight, "service stopping");
      continue;
    }
    // One round = one pool job, one request per chunk; the fault-metric
    // engine then nests its fault-class parallel_for on the same pool
    // (two-level parallelism, exactly like a batch flow).  This thread is
    // the pool's only external submitter, as its contract requires.
    pool->parallel_for(batch.size(), 1,
                       [&](int, std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i)
                           run_task(*batch[i]);
                       });
  }
}

void ServeService::Impl::run_task(Task& task) {
  if (task.flight->cancelled.load(std::memory_order_relaxed)) {
    self->cache_.fail(task.key, task.flight, "cancelled");
    return;
  }
  // Child context per request, merged into the construction-time parent —
  // the request's engine counters/histograms/spans land in the service
  // owner's report no matter which worker ran it.
  obs::ObsContext ctx;
  {
    obs::ContextScope scope(ctx);
    std::optional<obs::Span> span;
    if (obs::enabled())
      span.emplace(std::string("serve.") + op_name(task.op));
    std::string blob, error;
    try {
      blob = compute(task);
    } catch (const std::exception& e) {
      error = e.what();
    }
    // Resolve the flight inside the scope: the cache records its
    // insertion/failure counters on the current context, and they belong
    // to this request's child context like everything else it did.
    if (!error.empty()) {
      self->cache_.fail(task.key, task.flight, std::move(error));
    } else if (task.flight->cancelled.load(std::memory_order_relaxed)) {
      self->cache_.fail(task.key, task.flight, "cancelled");
    } else if (blob.size() > self->options_.limits.max_result_bytes) {
      self->cache_.fail(
          task.key, task.flight,
          strprintf("result too large: %zu bytes (limit %zu)", blob.size(),
                    self->options_.limits.max_result_bytes));
    } else {
      self->cache_.complete(task.key, task.flight, std::move(blob));
    }
  }
  ctx.merge_into(*parent);
}

void ServeService::Impl::sleep_hook(const Task& task) {
  // Test hook: sleep in 1 ms increments, polling the cancellation flag —
  // this is the documented "stage boundary" granularity of the tests.
  for (std::uint64_t slept = 0; slept < task.options.debug_sleep_ms; ++slept) {
    if (task.flight->cancelled.load(std::memory_order_relaxed))
      throw Cancelled();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// --- per-op computation ------------------------------------------------------

std::string ServeService::Impl::compute(Task& task) {
  using obs::detail::format_double;
  const Rsn& rsn = *task.rsn;
  const std::string content_hash = rsn.content_hash();
  sleep_hook(task);

  const auto require_valid = [&] {
    const std::vector<lint::Diagnostic> diags = rsn.validate();
    if (lint::has_errors(diags)) {
      const auto counts = lint::count_by_severity(diags);
      throw std::runtime_error(strprintf(
          "input network has %d lint error(s); run op \"lint\" for details",
          counts[static_cast<int>(lint::Severity::kError)]));
    }
  };

  switch (task.op) {
    case Op::kParse: {
      const std::vector<lint::Diagnostic> diags = rsn.validate();
      return strprintf("{\"content_hash\":%s,\"stats\":%s,\"lint\":%s}",
                       jstr(content_hash).c_str(),
                       stats_json(rsn.stats()).c_str(),
                       lint_counts_json(diags).c_str());
    }
    case Op::kLint: {
      lint::LintOptions lo;
      lo.ft_rules = task.options.ft;
      const std::vector<lint::Diagnostic> diags = lint_rsn(rsn, lo);
      // lint::to_json renders with a stable key order — embeddable as-is.
      return strprintf("{\"content_hash\":%s,\"report\":%s}",
                       jstr(content_hash).c_str(),
                       lint::to_json(diags, rsn.node_names()).c_str());
    }
    case Op::kSynth: {
      require_valid();
      if (task.flight->cancelled.load(std::memory_order_relaxed))
        throw Cancelled();
      SynthOptions so;
      so.harden_select = task.options.harden_select;
      so.tmr_addresses = task.options.tmr_addresses;
      so.duplicate_ports = task.options.duplicate_ports;
      const SynthResult result = synthesize_fault_tolerant(rsn, so);
      const OverheadRatios oh = compute_overhead(rsn, result.rsn);
      std::string out = strprintf(
          "{\"content_hash\":%s,"
          "\"stats\":{\"added_muxes\":%d,\"added_registers\":%d,"
          "\"added_bits\":%lld,\"added_edges\":%d},",
          jstr(content_hash).c_str(), result.stats.added_muxes,
          result.stats.added_registers, result.stats.added_bits,
          result.stats.added_edges);
      out += strprintf(
          "\"overhead\":{\"mux\":%s,\"bits\":%s,\"nets\":%s,\"area\":%s},",
          format_double(oh.mux).c_str(), format_double(oh.bits).c_str(),
          format_double(oh.nets).c_str(), format_double(oh.area).c_str());
      out += strprintf("\"ft_stats\":%s,\"hardened_hash\":%s,\"lint\":%s",
                       stats_json(result.rsn.stats()).c_str(),
                       jstr(result.rsn.content_hash()).c_str(),
                       lint_counts_json(result.lint).c_str());
      if (task.options.return_rsn)
        out += ",\"rsn\":" + jstr(write_rsn_text(result.rsn));
      out += "}";
      return out;
    }
    case Op::kMetric: {
      require_valid();
      if (task.flight->cancelled.load(std::memory_order_relaxed))
        throw Cancelled();
      const FaultMetricEngine engine(rsn);
      MetricEngineOptions eo;
      eo.metric.count_sib_registers = task.options.count_sib;
      eo.metric.count_address_registers = task.options.count_address;
      eo.metric.keep_distribution = task.options.distribution;
      eo.packed = task.options.packed;
      eo.pool = pool.get();
      const FaultToleranceReport report = engine.evaluate(eo);
      // The digest is the corpus-judge pin format (report_digest), keyed
      // by the network's content hash — a serve response can be checked
      // against a manifest built from the same library routine.
      std::string out = strprintf(
          "{\"content_hash\":%s,\"digest\":%s,"
          "\"faults\":%zu,\"counted_segments\":%zu,\"counted_bits\":%lld,",
          jstr(content_hash).c_str(),
          jstr(report_digest(content_hash, report)).c_str(), report.num_faults,
          report.counted_segments, report.counted_bits);
      out += strprintf(
          "\"seg_worst\":%s,\"seg_avg\":%s,\"bit_worst\":%s,\"bit_avg\":%s,"
          "\"worst_fault_index\":%zu",
          format_double(report.seg_worst).c_str(),
          format_double(report.seg_avg).c_str(),
          format_double(report.bit_worst).c_str(),
          format_double(report.bit_avg).c_str(), report.worst_fault_index);
      if (task.options.distribution) {
        out += ",\"seg_fraction\":[";
        for (std::size_t i = 0; i < report.seg_fraction.size(); ++i) {
          if (i) out += ",";
          out += format_double(report.seg_fraction[i]);
        }
        out += "],\"bit_fraction\":[";
        for (std::size_t i = 0; i < report.bit_fraction.size(); ++i) {
          if (i) out += ",";
          out += format_double(report.bit_fraction[i]);
        }
        out += "]";
      }
      out += "}";
      return out;
    }
    case Op::kAccess: {
      require_valid();
      NodeId target = kInvalidNode;
      for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
        if (rsn.node(id).name == task.options.target) {
          target = id;
          break;
        }
      }
      if (target == kInvalidNode)
        throw std::runtime_error(
            strprintf("no node named \"%s\"", task.options.target.c_str()));
      if (!rsn.node(target).is_segment())
        throw std::runtime_error(strprintf("node \"%s\" is not a segment",
                                           task.options.target.c_str()));
      const AccessPlan plan = plan_access(rsn, target);
      const bool validated = validate_plan(rsn, plan);
      return strprintf(
          "{\"content_hash\":%s,\"target\":%s,\"csu_operations\":%zu,"
          "\"shift_cycles\":%lld,\"validated\":%s}",
          jstr(content_hash).c_str(), jstr(task.options.target).c_str(),
          plan.csu_streams.size(), plan.shift_cycles(),
          validated ? "true" : "false");
    }
    case Op::kStats:
    case Op::kCancel:
      break;  // handled on the transport thread, never enqueued
  }
  throw std::logic_error("uncacheable op reached the engine");
}

// --- ingest memo -------------------------------------------------------------

std::string ServeService::Impl::ingest_network(
    const std::string& text, std::shared_ptr<const Rsn>& rsn_out,
    std::string& content_hash_out) {
  const std::string raw_digest = sha256_hex(text);
  {
    std::lock_guard<std::mutex> lock(ingest_mutex);
    const auto it = ingest.find(raw_digest);
    if (it != ingest.end()) {
      ingest_lru.splice(ingest_lru.begin(), ingest_lru, it->second.lru);
      rsn_out = it->second.rsn;
      content_hash_out = it->second.content_hash;
      ingest_hits.fetch_add(1, std::memory_order_relaxed);
      obs::count("serve.ingest_hits");
      return {};
    }
  }
  ingest_misses.fetch_add(1, std::memory_order_relaxed);
  obs::count("serve.ingest_misses");
  std::shared_ptr<const Rsn> parsed;
  try {
    // validate=false: broken networks are ingestable (parse/lint report
    // on them); ops that need validity check it themselves.
    parsed = std::make_shared<const Rsn>(parse_rsn_text(text, false));
  } catch (const std::exception& e) {
    return strprintf("parse error: %s", e.what());
  }
  rsn_out = parsed;
  content_hash_out = parsed->content_hash();
  std::lock_guard<std::mutex> lock(ingest_mutex);
  if (!ingest.count(raw_digest)) {
    ingest_lru.push_front(raw_digest);
    ingest.emplace(raw_digest,
                   IngestEntry{parsed, content_hash_out, ingest_lru.begin()});
    while (ingest.size() > std::max<std::size_t>(1, self->options_.ingest_entries)) {
      ingest.erase(ingest_lru.back());
      ingest_lru.pop_back();
    }
  }
  return {};
}

// --- uncached ops ------------------------------------------------------------

std::string ServeService::Impl::render_stats_result() {
  const CacheStats cs = self->cache_.stats();
  return strprintf(
      "{\"threads\":%d,"
      "\"cache\":{\"hits\":%llu,\"misses\":%llu,\"coalesced\":%llu,"
      "\"evictions\":%llu,\"insertions\":%llu,\"failures\":%llu,"
      "\"uncacheable\":%llu,\"entries\":%zu,\"bytes\":%zu},"
      "\"ingest\":{\"hits\":%llu,\"misses\":%llu}}",
      pool->num_threads(), static_cast<unsigned long long>(cs.hits),
      static_cast<unsigned long long>(cs.misses),
      static_cast<unsigned long long>(cs.coalesced),
      static_cast<unsigned long long>(cs.evictions),
      static_cast<unsigned long long>(cs.insertions),
      static_cast<unsigned long long>(cs.failures),
      static_cast<unsigned long long>(cs.uncacheable), cs.entries, cs.bytes,
      static_cast<unsigned long long>(
          ingest_hits.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          ingest_misses.load(std::memory_order_relaxed)));
}

bool ServeService::cancel_request(const std::string& id) {
  std::string key;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->inflight.find(id);
    if (it == impl_->inflight.end()) return false;
    key = it->second;
  }
  return cache_.request_cancel(key);
}

// --- request handling --------------------------------------------------------

std::string ServeService::handle_line(const std::string& line) {
  const auto t0 = Clock::now();
  std::string id, op_text, error, result, key;
  bool cached = false, coalesced = false;
  std::optional<Op> op;

  do {  // single-exit error funnel; `break` jumps to envelope rendering
    std::string parse_error;
    const std::optional<json::Value> doc = json::parse(line, &parse_error);
    if (!doc || !doc->is_object()) {
      error = "bad request: " +
              (parse_error.empty() ? std::string("not a JSON object")
                                   : parse_error);
      break;
    }
    if (const json::Value* v = doc->find("id"); v && v->is_string())
      id = v->text;
    const json::Value* op_v = doc->find("op");
    if (!op_v || !op_v->is_string()) {
      error = "bad request: missing \"op\"";
      break;
    }
    op_text = op_v->text;
    op = parse_op(op_text);
    if (!op) {
      error = strprintf("bad request: unknown op \"%s\"", op_text.c_str());
      break;
    }

    if (*op == Op::kStats) {
      result = impl_->render_stats_result();
      break;
    }
    if (*op == Op::kCancel) {
      const json::Value* t = doc->find("target_id");
      if (!t || !t->is_string()) {
        error = "cancel requires \"target_id\"";
        break;
      }
      result = strprintf("{\"cancelled\":%s}",
                         cancel_request(t->text) ? "true" : "false");
      break;
    }

    // Cacheable analysis op: ingest, key, single-flight lookup.
    const json::Value* rsn_v = doc->find("rsn");
    if (!rsn_v || !rsn_v->is_string()) {
      error = strprintf("op %s requires \"rsn\"", op_name(*op));
      break;
    }
    if (rsn_v->text.size() > options_.limits.max_input_bytes) {
      error = strprintf("input too large: %zu bytes (limit %zu)",
                        rsn_v->text.size(), options_.limits.max_input_bytes);
      break;
    }
    OpOptions opts;
    error = parse_options(*op, doc->find("options"), opts);
    if (!error.empty()) break;

    if (stopping()) {
      error = "service stopping";
      break;
    }
    std::shared_ptr<const Rsn> rsn;
    std::string content_hash;
    error = impl_->ingest_network(rsn_v->text, rsn, content_hash);
    if (!error.empty()) break;

    key = sha256_hex("ftrsn-serve-key-v1\nnet " + content_hash + "\n" +
                     options_fingerprint(*op, opts));

    // Effective deadline: the request may lower the service limit, never
    // raise it (0 = unlimited on either side).
    std::uint64_t timeout_ms = options_.limits.timeout_ms;
    if (const json::Value* t = doc->find("timeout_ms");
        t && t->is_number() && t->number >= 0) {
      const auto requested = static_cast<std::uint64_t>(t->number);
      if (requested > 0)
        timeout_ms = timeout_ms == 0 ? requested
                                     : std::min(timeout_ms, requested);
    }
    std::optional<Clock::time_point> deadline;
    if (timeout_ms > 0)
      deadline = t0 + std::chrono::milliseconds(timeout_ms);

    ResultCache::Lookup lookup = cache_.acquire(key, deadline);
    switch (lookup.kind) {
      case ResultCache::Lookup::Kind::kHit:
        cached = true;
        result = std::move(lookup.value);
        break;
      case ResultCache::Lookup::Kind::kShared:
        coalesced = true;
        result = std::move(lookup.value);
        break;
      case ResultCache::Lookup::Kind::kFailed:
        coalesced = true;
        error = std::move(lookup.value);
        break;
      case ResultCache::Lookup::Kind::kLead: {
        auto task = std::make_shared<Impl::Task>();
        task->op = *op;
        task->options = std::move(opts);
        task->key = key;
        task->flight = lookup.flight;
        task->rsn = std::move(rsn);
        bool rejected = false;
        {
          std::lock_guard<std::mutex> lock(impl_->mutex);
          if (impl_->stop) {
            rejected = true;
          } else {
            impl_->pending.push_back(task);
            if (!id.empty()) impl_->inflight[id] = key;
          }
        }
        if (rejected) {
          // The lead must still resolve its flight, or coalesced waiters
          // would hang on a key nobody computes.
          cache_.fail(key, task->flight, "service stopping");
          error = "service stopping";
          break;
        }
        impl_->cv.notify_all();
        const ResultCache::Lookup done = cache_.await(task->flight, deadline);
        if (!id.empty()) {
          std::lock_guard<std::mutex> lock(impl_->mutex);
          const auto it = impl_->inflight.find(id);
          if (it != impl_->inflight.end() && it->second == key)
            impl_->inflight.erase(it);
        }
        if (done.kind == ResultCache::Lookup::Kind::kShared) {
          result = done.value;
        } else {
          error = done.value;
          // A leader abandoning its flight on timeout cancels the
          // computation, so a dead client's work is not finished for
          // nobody (coalesced waiters see "cancelled").
          task->flight->cancelled.store(true, std::memory_order_relaxed);
        }
        break;
      }
    }
  } while (false);

  const auto micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());
  request_hist().record(micros);
  if (op) op_hist(*op).record(micros);

  std::string out = strprintf("{\"id\":%s,\"ok\":%s,\"op\":%s,",
                              jstr(id).c_str(),
                              error.empty() ? "true" : "false",
                              jstr(op_text).c_str());
  if (error.empty()) {
    out += strprintf(
        "\"cached\":%s,\"coalesced\":%s,\"key\":%s,\"result\":%s,"
        "\"result_sha256\":%s,",
        cached ? "true" : "false", coalesced ? "true" : "false",
        jstr(key).c_str(), result.c_str(), jstr(sha256_hex(result)).c_str());
  } else {
    out += strprintf("\"error\":%s,", jstr(error).c_str());
  }
  out += strprintf("\"micros\":%llu}",
                   static_cast<unsigned long long>(micros));
  return out;
}

}  // namespace ftrsn::serve
