// ITC'02 SoC benchmark descriptors and the SIB-based RSN generator
// (paper §IV-A, following the segment-insertion-bit construction of
// Zadegan et al., "Design Automation for IEEE P1687", DATE 2011).
//
// The original ITC'02 benchmark files are public but not shipped here; the
// embedded descriptors (soc_data.cpp) are synthesized so that the generated
// SIB-based RSNs match Table I of the paper *exactly* in every
// characteristic column (modules, levels, mux, segments, bits).  See
// DESIGN.md §3 for the substitution rationale.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rsn/rsn.hpp"

namespace ftrsn::itc02 {

/// One hardware module of a SoC, connected to the RSN.
struct Module {
  std::string name;
  int parent = -1;              ///< index of parent module, -1 = top level
  std::vector<int> chain_bits;  ///< internal scan chain lengths
};

/// A SoC benchmark: a forest of modules with scan chains.
struct Soc {
  std::string name;
  std::vector<Module> modules;
};

/// Paper Table I row (expected values, used by tests and the paper-vs-
/// measured reports in the bench harness).
struct TableRow {
  std::string_view soc;
  int modules, levels, mux, segments;
  long long bits;
  // Accessibility in SIB-RSNs / fault-tolerant RSNs.
  double sib_bits_worst, sib_bits_avg, sib_seg_worst, sib_seg_avg;
  double ft_bits_worst, ft_bits_avg, ft_seg_worst, ft_seg_avg;
  // Area overhead ratios (fault-tolerant / original).
  double r_mux, r_bits, r_nets, r_area;
};

/// All 13 Table I rows, in paper order.
const std::vector<TableRow>& table1();

/// All embedded SoC descriptors, in Table I order.
const std::vector<Soc>& socs();

/// Finds a SoC descriptor by name (e.g. "d695"); nullopt if unknown.
std::optional<Soc> find_soc(std::string_view name);

/// Generates the SIB-based RSN for a SoC:
///  * one SIB per module (nested modules nest their SIB in the parent's
///    sub-network);
///  * a module with more than one sub-element wraps each scan chain in its
///    own SIB; a module with exactly one chain and no children hosts the
///    chain directly behind its module SIB;
///  * every SIB contributes one 2:1 scan multiplexer and one 1-bit scan
///    segment with a shadow register driving the mux address;
///  * select predicates follow the SIB hierarchy (a segment is selected iff
///    all SIBs on its hierarchy path are asserted and the RSN is enabled).
Rsn generate_sib_rsn(const Soc& soc);

/// Characteristics summary of a SoC descriptor (counts the generator will
/// produce, computed from the descriptor alone).
struct SocSummary {
  int modules = 0;
  int levels = 0;
  int sibs = 0;
  int chains = 0;
  long long bits = 0;
};
SocSummary summarize(const Soc& soc);

}  // namespace ftrsn::itc02
