#include "itc02/itc02.hpp"

#include <algorithm>

namespace ftrsn::itc02 {

namespace {

struct GenCtx {
  const Soc* soc = nullptr;
  Rsn* rsn = nullptr;
  CtrlRef en = kCtrlInvalid;
  std::vector<std::vector<int>> children;  // module index -> child indices
};

/// Emits the SIB wrapping `inner_tail` (the last node of the sub-network
/// whose first node is fed by `source`).  Returns the SIB register node.
NodeId emit_sib(GenCtx& ctx, const std::string& name, NodeId source,
                NodeId inner_tail, NodeId sib_reg, int module, int depth) {
  Rsn& rsn = *ctx.rsn;
  CtrlPool& ctrl = rsn.ctrl();
  const CtrlRef open = ctrl.shadow_bit(sib_reg, 0);
  const NodeId mux = rsn.add_mux(name + "_mux", source, inner_tail, open);
  rsn.set_scan_in(sib_reg, mux);
  rsn.set_hier(mux, module, depth);
  rsn.set_hier(sib_reg, module, depth);
  return sib_reg;
}

NodeId emit_module(GenCtx& ctx, int mi, NodeId source, int depth,
                   CtrlRef sel_ctx);

/// Emits the sub-network of module `mi` starting from `source`; returns its
/// tail node.  `sub_sel` is the select context inside the module.
NodeId emit_module_contents(GenCtx& ctx, int mi, NodeId source, int depth,
                            CtrlRef sub_sel) {
  Rsn& rsn = *ctx.rsn;
  CtrlPool& ctrl = rsn.ctrl();
  const Module& m = ctx.soc->modules[static_cast<std::size_t>(mi)];
  NodeId cursor = source;
  for (int child : ctx.children[static_cast<std::size_t>(mi)])
    cursor = emit_module(ctx, child, cursor, depth + 1, sub_sel);

  const bool single_chain =
      ctx.children[static_cast<std::size_t>(mi)].empty() &&
      m.chain_bits.size() == 1;
  for (std::size_t ci = 0; ci < m.chain_bits.size(); ++ci) {
    const std::string cname = strprintf("%s_c%zu", m.name.c_str(), ci);
    if (single_chain) {
      // Exactly one chain, no children: host the chain directly behind the
      // module SIB (no chain-level SIB).
      const NodeId chain = rsn.add_segment(cname, m.chain_bits[ci], cursor,
                                           /*has_shadow=*/true);
      rsn.set_select(chain, sub_sel);
      rsn.set_hier(chain, mi, depth);
      cursor = chain;
    } else {
      // Chain wrapped in its own SIB one hierarchy level down.
      const NodeId sib_reg = rsn.add_segment(cname + "_sib", 1, kInvalidNode,
                                             /*has_shadow=*/true,
                                             SegRole::kSibRegister);
      rsn.set_select(sib_reg, sub_sel);
      const CtrlRef open = ctrl.shadow_bit(sib_reg, 0);
      const NodeId chain = rsn.add_segment(cname, m.chain_bits[ci], cursor,
                                           /*has_shadow=*/true);
      rsn.set_select(chain, ctrl.mk_and(sub_sel, open));
      rsn.set_hier(chain, mi, depth + 1);
      cursor = emit_sib(ctx, cname, cursor, chain, sib_reg, mi, depth + 1);
    }
  }
  return cursor;
}

NodeId emit_module(GenCtx& ctx, int mi, NodeId source, int depth,
                   CtrlRef sel_ctx) {
  Rsn& rsn = *ctx.rsn;
  CtrlPool& ctrl = rsn.ctrl();
  const Module& m = ctx.soc->modules[static_cast<std::size_t>(mi)];
  const NodeId sib_reg = rsn.add_segment(m.name + "_sib", 1, kInvalidNode,
                                         /*has_shadow=*/true,
                                         SegRole::kSibRegister);
  rsn.set_select(sib_reg, sel_ctx);
  const CtrlRef sub_sel = ctrl.mk_and(sel_ctx, ctrl.shadow_bit(sib_reg, 0));
  const NodeId tail = emit_module_contents(ctx, mi, source, depth, sub_sel);
  FTRSN_CHECK_MSG(tail != source,
                  strprintf("module %s is empty", m.name.c_str()));
  return emit_sib(ctx, m.name, source, tail, sib_reg, mi, depth);
}

}  // namespace

Rsn generate_sib_rsn(const Soc& soc) {
  Rsn rsn;
  GenCtx ctx;
  ctx.soc = &soc;
  ctx.rsn = &rsn;
  ctx.en = rsn.ctrl().enable_input();
  ctx.children.resize(soc.modules.size());
  std::vector<int> top;
  for (std::size_t i = 0; i < soc.modules.size(); ++i) {
    const int parent = soc.modules[i].parent;
    if (parent < 0) {
      top.push_back(static_cast<int>(i));
    } else {
      FTRSN_CHECK(static_cast<std::size_t>(parent) < i);
      ctx.children[static_cast<std::size_t>(parent)].push_back(
          static_cast<int>(i));
    }
  }
  NodeId cursor = rsn.add_primary_in("SI");
  for (int mi : top) cursor = emit_module(ctx, mi, cursor, 1, ctx.en);
  rsn.add_primary_out("SO", cursor);
  rsn.validate_or_die();
  return rsn;
}

SocSummary summarize(const Soc& soc) {
  SocSummary s;
  s.modules = static_cast<int>(soc.modules.size());
  std::vector<std::vector<int>> children(soc.modules.size());
  std::vector<int> depth(soc.modules.size(), 1);
  for (std::size_t i = 0; i < soc.modules.size(); ++i) {
    const int p = soc.modules[i].parent;
    if (p >= 0) {
      children[static_cast<std::size_t>(p)].push_back(static_cast<int>(i));
      depth[i] = depth[static_cast<std::size_t>(p)] + 1;
    }
  }
  for (std::size_t i = 0; i < soc.modules.size(); ++i) {
    const Module& m = soc.modules[i];
    const bool single = children[i].empty() && m.chain_bits.size() == 1;
    ++s.sibs;  // module SIB
    s.levels = std::max(s.levels, depth[i]);
    for (int bits : m.chain_bits) {
      ++s.chains;
      s.bits += bits;
      if (!single) {
        ++s.sibs;  // chain SIB
        s.levels = std::max(s.levels, depth[i] + 1);
      }
    }
  }
  s.bits += s.sibs;  // every SIB register is a 1-bit segment
  return s;
}

std::optional<Soc> find_soc(std::string_view name) {
  for (const Soc& soc : socs())
    if (soc.name == name) return soc;
  return std::nullopt;
}

}  // namespace ftrsn::itc02
