// Embedded ITC'02-derived SoC descriptors.
//
// The descriptors are synthesized (deterministically, from per-SoC seeds)
// such that the SIB-based RSN generator reproduces the paper's Table I
// characteristics exactly: module count, hierarchy levels, number of scan
// multiplexers, scan segments and scan bits.  Chain-length distributions
// are log-normal with the largest chain sized so that the share of the
// biggest single segment matches the paper's worst-case bit accessibility
// of the fault-tolerant RSN (losing exactly the largest segment).
#include <algorithm>
#include <cmath>

#include "itc02/itc02.hpp"
#include "util/common.hpp"

namespace ftrsn::itc02 {

namespace {

struct SocSpec {
  TableRow row;
  std::vector<std::pair<int, int>> nesting;  // (child, parent)
  std::uint64_t seed;
};

Soc build_soc(const SocSpec& spec) {
  const TableRow& r = spec.row;
  const int m_count = r.modules;
  const int chains = r.segments - r.mux;                  // instrument chains
  const int single = r.segments + r.modules - 2 * r.mux;  // single-chain mods
  FTRSN_CHECK_MSG(single == 0 || single == 1,
                  strprintf("inconsistent Table I row for %.*s",
                            int(r.soc.size()), r.soc.data()));
  const long long chain_bits_total = r.bits - r.mux;  // SIB regs are 1 bit

  Soc soc;
  soc.name = std::string(r.soc);
  soc.modules.resize(static_cast<std::size_t>(m_count));
  for (int i = 0; i < m_count; ++i)
    soc.modules[static_cast<std::size_t>(i)].name = strprintf("m%d", i);
  for (auto [child, parent] : spec.nesting) {
    FTRSN_CHECK(parent < child && child < m_count);
    soc.modules[static_cast<std::size_t>(child)].parent = parent;
  }

  // Chain count per module: the designated single-chain module (index
  // m_count-1, always a top-level leaf) gets 1; the rest get >= 2 each plus
  // a pseudo-random share of the remainder.
  Rng rng(spec.seed);
  std::vector<int> per_module(static_cast<std::size_t>(m_count), 2);
  int remaining = chains;
  const int multi_count = m_count - single;
  if (single == 1) {
    per_module.back() = 1;
    remaining -= 1;
  }
  remaining -= 2 * multi_count;
  FTRSN_CHECK(remaining >= 0);
  for (int i = 0; i < remaining; ++i)
    per_module[rng.next_below(static_cast<std::uint64_t>(multi_count))] += 1;

  // Chain lengths: one dominant chain of l1 bits (worst-case bit loss in the
  // fault-tolerant RSN = losing this chain), the rest log-normal.
  const long long l1 = std::max<long long>(
      1, std::llround((1.0 - r.ft_bits_worst) * static_cast<double>(r.bits)));
  FTRSN_CHECK(l1 <= chain_bits_total - (chains - 1));
  std::vector<long long> lengths(static_cast<std::size_t>(chains), 0);
  lengths[0] = l1;
  const long long rest_total = chain_bits_total - l1;
  std::vector<double> weights(static_cast<std::size_t>(chains - 1));
  double weight_sum = 0.0;
  for (double& w : weights) {
    // Box-Muller standard normal -> log-normal weight.
    const double u1 = std::max(rng.next_double(), 1e-12);
    const double u2 = rng.next_double();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.14159265358979323846 * u2);
    w = std::exp(0.9 * z);
    weight_sum += w;
  }
  long long assigned = 0;
  for (int i = 0; i < chains - 1; ++i) {
    long long v = static_cast<long long>(
        static_cast<double>(rest_total) * weights[static_cast<std::size_t>(i)] /
        weight_sum);
    v = std::clamp<long long>(v, 1, l1);
    lengths[static_cast<std::size_t>(i + 1)] = v;
    assigned += v;
  }
  // Fix rounding so lengths sum exactly to chain_bits_total, respecting the
  // [1, l1] bounds of the non-dominant chains.
  long long diff = rest_total - assigned;
  std::size_t idx = 1;
  while (diff != 0) {
    long long& v = lengths[idx];
    if (diff > 0 && v < l1) {
      const long long add = std::min(diff, l1 - v);
      v += add;
      diff -= add;
    } else if (diff < 0 && v > 1) {
      const long long sub = std::min(-diff, v - 1);
      v -= sub;
      diff += sub;
    }
    idx = (idx + 1 < lengths.size()) ? idx + 1 : 1;
  }

  // Deal chains to modules: dominant chain to module 0, then round-robin.
  std::size_t next_chain = 0;
  for (int i = 0; i < m_count; ++i) {
    Module& mod = soc.modules[static_cast<std::size_t>(i)];
    for (int c = 0; c < per_module[static_cast<std::size_t>(i)]; ++c) {
      FTRSN_CHECK(next_chain < lengths.size());
      mod.chain_bits.push_back(static_cast<int>(lengths[next_chain++]));
    }
  }
  FTRSN_CHECK(next_chain == lengths.size());
  return soc;
}

// Table I of the paper, verbatim.
const std::vector<SocSpec>& specs() {
  static const std::vector<SocSpec> kSpecs = {
      // soc, modules, levels, mux, segments, bits,
      // sib: bits worst/avg, seg worst/avg; ft: bits worst/avg, seg worst/avg
      // ratios: mux, bits, nets, area
      {{"u226", 10, 2, 49, 89, 1465, 0.00, 0.71, 0.00, 0.76, 0.93, 0.994,
        0.975, 0.994, 3.67, 1.38, 1.54, 1.56},
       {},
       0xA226},
      {{"d281", 9, 2, 58, 108, 3871, 0.00, 0.81, 0.00, 0.83, 0.79, 0.995,
        0.980, 0.995, 3.62, 1.17, 1.24, 1.25},
       {},
       0xD281},
      {{"d695", 11, 2, 167, 324, 8396, 0.00, 0.90, 0.00, 0.90, 0.96, 0.998,
        0.994, 0.998, 3.54, 1.21, 1.32, 1.32},
       {},
       0xD695},
      {{"h953", 9, 2, 54, 100, 5640, 0.00, 0.85, 0.00, 0.85, 0.94, 0.995,
        0.978, 0.995, 3.59, 1.10, 1.15, 1.16},
       {},
       0x1953},
      {{"g1023", 15, 2, 79, 144, 5385, 0.00, 0.86, 0.00, 0.86, 0.93, 0.997,
        0.985, 0.996, 3.53, 1.16, 1.23, 1.24},
       {},
       0x6023},
      {{"x1331", 7, 4, 31, 56, 4023, 0.00, 0.75, 0.00, 0.78, 0.86, 0.991,
        0.960, 0.991, 3.81, 1.09, 1.13, 1.14},
       {{1, 0}, {2, 1}},
       0x1331},
      {{"f2126", 5, 2, 40, 76, 15829, 0.00, 0.78, 0.00, 0.78, 0.94, 0.993,
        0.972, 0.993, 3.60, 1.03, 1.04, 1.04},
       {},
       0xF2126},
      {{"q12710", 5, 2, 25, 46, 26183, 0.00, 0.80, 0.00, 0.80, 0.86, 0.988,
        0.952, 0.988, 3.56, 1.01, 1.02, 1.02},
       {},
       0x12710},
      {{"t512505", 31, 2, 159, 287, 77005, 0.00, 0.85, 0.00, 0.87, 0.98,
        0.998, 0.992, 0.998, 3.58, 1.02, 1.03, 1.03},
       {},
       0x512505},
      {{"a586710", 8, 3, 39, 71, 41674, 0.00, 0.78, 0.00, 0.79, 0.94, 0.993,
        0.969, 0.993, 3.72, 1.01, 1.02, 1.02},
       {{1, 0}, {2, 0}},
       0x586710},
      {{"p22081", 29, 3, 282, 536, 30110, 0.00, 0.92, 0.00, 0.93, 0.99, 0.999,
        0.996, 0.999, 3.54, 1.10, 1.15, 1.15},
       {{1, 0}, {2, 0}, {3, 0}, {5, 4}},
       0x22081},
      {{"p34392", 20, 3, 122, 225, 23241, 0.00, 0.87, 0.00, 0.86, 0.97, 0.998,
        0.990, 0.998, 3.68, 1.06, 1.09, 1.09},
       {{1, 0}, {2, 0}, {4, 3}},
       0x34392},
      {{"p93791", 33, 3, 620, 1208, 98604, 0.00, 0.66, 0.00, 0.67, 0.99,
        0.999, 0.999, 0.999, 3.55, 1.07, 1.11, 1.10},
       {{1, 0}, {2, 0}, {3, 0}, {5, 4}, {6, 4}, {8, 7}},
       0x93791},
  };
  return kSpecs;
}

}  // namespace

const std::vector<TableRow>& table1() {
  static const std::vector<TableRow> kRows = [] {
    std::vector<TableRow> rows;
    for (const SocSpec& s : specs()) rows.push_back(s.row);
    return rows;
  }();
  return kRows;
}

const std::vector<Soc>& socs() {
  static const std::vector<Soc> kSocs = [] {
    std::vector<Soc> out;
    for (const SocSpec& s : specs()) out.push_back(build_soc(s));
    return out;
  }();
  return kSocs;
}

}  // namespace ftrsn::itc02
