#include "core/flow.hpp"

#include <chrono>

#include "fault/metric_engine.hpp"
#include "itc02/itc02.hpp"

namespace ftrsn {

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

FlowResult run_flow(const Rsn& original, const FlowOptions& options) {
  FlowResult result;
  result.original_stats = original.stats();

  const auto t_synth = std::chrono::steady_clock::now();
  SynthResult synth = synthesize_fault_tolerant(original, options.synth);
  result.synth_seconds = seconds_since(t_synth);
  result.synth_stats = synth.stats;
  result.augment_cost = synth.augment.cost;
  result.augment_edges = static_cast<int>(synth.augment.added_edges.size());
  result.skip_edges = synth.augment.spof_edges;
  result.hardened = std::move(synth.rsn);
  result.hardened_stats = result.hardened.stats();
  result.overhead = compute_overhead(original, result.hardened, options.tech);

  const auto t_metric = std::chrono::steady_clock::now();
  MetricEngineOptions engine_options;
  engine_options.metric = options.metric;
  engine_options.threads = options.metric_threads;
  if (options.evaluate_original) {
    const FaultMetricEngine engine(original);
    result.original_metric = engine.evaluate(engine_options);
  }
  if (options.evaluate_hardened) {
    const FaultMetricEngine engine(result.hardened);
    result.hardened_metric = engine.evaluate(engine_options);
  }
  result.metric_seconds = seconds_since(t_metric);
  return result;
}

FlowResult run_soc_flow(std::string_view soc_name, const FlowOptions& options) {
  const auto soc = itc02::find_soc(soc_name);
  FTRSN_CHECK_MSG(soc.has_value(),
                  strprintf("unknown ITC'02 SoC '%.*s'",
                            static_cast<int>(soc_name.size()), soc_name.data()));
  return run_flow(itc02::generate_sib_rsn(*soc), options);
}

}  // namespace ftrsn
