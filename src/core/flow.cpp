#include "core/flow.hpp"

#include <chrono>

#include "bmc/bmc.hpp"
#include "fault/metric_engine.hpp"
#include "itc02/itc02.hpp"
#include "obs/obs.hpp"

namespace ftrsn {

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

FlowResult run_flow(const Rsn& original, const FlowOptions& options) {
  if (!options.trace_path.empty() || !options.report_path.empty())
    obs::enable(true);

  FlowResult result;
  result.original_stats = original.stats();

  const auto t_synth = std::chrono::steady_clock::now();
  SynthResult synth = [&] {
    OBS_SPAN("flow.synth");
    return synthesize_fault_tolerant(original, options.synth);
  }();
  result.synth_seconds = seconds_since(t_synth);
  result.synth_stats = synth.stats;
  result.augment_cost = synth.augment.cost;
  result.augment_edges = static_cast<int>(synth.augment.added_edges.size());
  result.skip_edges = synth.augment.spof_edges;
  result.hardened = std::move(synth.rsn);
  result.hardened_stats = result.hardened.stats();
  result.overhead = compute_overhead(original, result.hardened, options.tech);

  const auto t_metric = std::chrono::steady_clock::now();
  MetricEngineOptions engine_options;
  engine_options.metric = options.metric;
  engine_options.threads = options.metric_threads;
  engine_options.pool = options.metric_pool;
  engine_options.packed = options.metric_packed;
  if (options.evaluate_original) {
    OBS_SPAN("flow.metric.original");
    const FaultMetricEngine engine(original);
    result.original_metric = engine.evaluate(engine_options);
  }
  if (options.evaluate_hardened) {
    OBS_SPAN("flow.metric.hardened");
    const FaultMetricEngine engine(result.hardened);
    result.hardened_metric = engine.evaluate(engine_options);
  }
  result.metric_seconds = seconds_since(t_metric);

  if (options.bmc_spotcheck > 0) {
    OBS_SPAN("flow.bmc");
    const BmcAccessChecker bmc(result.hardened);
    for (NodeId id = 0;
         id < result.hardened.num_nodes() &&
         result.bmc_checked < options.bmc_spotcheck;
         ++id) {
      if (!result.hardened.node(id).is_segment()) continue;
      ++result.bmc_checked;
      if (bmc.accessible(id, nullptr)) ++result.bmc_accessible;
    }
  }

  if (!options.trace_path.empty()) obs::write_trace(options.trace_path);
  if (!options.report_path.empty()) obs::write_report(options.report_path);
  return result;
}

FlowResult run_soc_flow(std::string_view soc_name, const FlowOptions& options) {
  if (!options.trace_path.empty() || !options.report_path.empty())
    obs::enable(true);  // before parsing, so "flow.parse" is recorded
  const auto soc = itc02::find_soc(soc_name);
  FTRSN_CHECK_MSG(soc.has_value(),
                  strprintf("unknown ITC'02 SoC '%.*s'",
                            static_cast<int>(soc_name.size()), soc_name.data()));
  Rsn rsn = [&] {
    OBS_SPAN("flow.parse");
    return itc02::generate_sib_rsn(*soc);
  }();
  return run_flow(rsn, options);
}

}  // namespace ftrsn
