// End-to-end synthesis flow (paper Fig. 1):
//   structural RSN -> dataflow graph -> connectivity requirements ->
//   ILP/flow augmentation (+ backbone-skip hardening) -> final synthesis
//   (mux insertion, select hardening, TMR, port duplication) ->
//   fault-tolerance metric + area overhead.
//
// One call of `run_flow` reproduces one row of the paper's Table I.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "area/area.hpp"
#include "fault/metric.hpp"
#include "synth/synth.hpp"

namespace ftrsn {

class ThreadPool;

struct FlowOptions {
  SynthOptions synth;
  MetricOptions metric;
  TechLibrary tech;
  /// Also evaluate the metric of the original RSN (Table I columns
  /// "Accessibility in SIB-RSNs").
  bool evaluate_original = true;
  /// Evaluate the metric of the fault-tolerant RSN.
  bool evaluate_hardened = true;
  /// Worker threads for the fault-metric engine; <= 0 resolves to the
  /// hardware concurrency.  Results are bit-identical at any setting.
  int metric_threads = 0;
  /// Shared worker pool for the fault-metric engine (non-owning; see
  /// core/batch.hpp).  When set, metric evaluations run as nested jobs on
  /// this pool — so a flow executing inside an outer parallel_for shares
  /// workers with its siblings instead of oversubscribing the machine —
  /// and `metric_threads` is ignored.
  ThreadPool* metric_pool = nullptr;
  /// Bit-parallel 64-lane metric evaluation (MetricEngineOptions::packed);
  /// bit-identical either way, off only for differential runs.
  bool metric_packed = true;
  /// Observability (obs/obs.hpp): when either path is non-empty, span
  /// recording is enabled for this run and the Chrome trace-event JSON /
  /// schema-versioned run report is written there at the end of the flow.
  std::string trace_path;
  std::string report_path;
  /// Formally spot-check the hardened RSN with the BMC engine: verify
  /// fault-free accessibility of the first N scan segments (0 = off).
  /// Shows up as the "flow.bmc" stage in the trace/report.
  int bmc_spotcheck = 0;
};

struct FlowResult {
  RsnStats original_stats;
  RsnStats hardened_stats;
  std::optional<FaultToleranceReport> original_metric;
  std::optional<FaultToleranceReport> hardened_metric;
  SynthStats synth_stats;
  long long augment_cost = 0;
  int augment_edges = 0;
  int skip_edges = 0;
  OverheadRatios overhead;
  double synth_seconds = 0.0;
  double metric_seconds = 0.0;
  int bmc_checked = 0;     ///< segments spot-checked by the BMC engine
  int bmc_accessible = 0;  ///< of those, how many are fault-free accessible
  Rsn hardened;  ///< the synthesized fault-tolerant RSN
};

/// Runs the complete flow on `original`.
FlowResult run_flow(const Rsn& original, const FlowOptions& options = {});

/// Convenience: generates the SIB-based RSN of the named ITC'02 SoC and
/// runs the flow.  Throws std::logic_error for unknown SoC names.
FlowResult run_soc_flow(std::string_view soc_name,
                        const FlowOptions& options = {});

}  // namespace ftrsn
