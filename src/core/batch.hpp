// Sharded multi-network flow runner (DESIGN.md §5f).
//
// Executes many independent run_flow pipelines (parse -> synth -> metric ->
// BMC spot-check) concurrently on ONE shared ThreadPool with two-level
// parallelism: each network is an outer task (one parallel_for chunk), and
// the fault-metric engine's fault-class parallel_for nests on the same pool
// via FlowOptions::metric_pool.  Idle workers prefer whole networks
// (coarse-grain first); once every network has been claimed they drain the
// fault-class loops of the networks still in flight, so the p93791 tail
// does not serialise the sweep.
//
// Determinism: results land in per-input slots (BatchResult::flows keeps
// the input order regardless of the schedule), and the metric engine's
// serial fold makes every per-network aggregate bit-identical to a serial
// single-threaded sweep at any pool size.  Obs counters are atomic sums,
// so totals are schedule-independent too; only span timings vary.
//
// Exceptions: a throwing flow leaves its slot default-constructed; the
// first exception is rethrown from run_flows after every flow has been
// attempted (the ThreadPool contract, one nesting level at a time).
//
// Observability: every network runs under a "batch.<name>" span, so an
// FTRSN_TRACE of a batch run shows the shard schedule across worker lanes.
// Long sweeps should bound trace memory with obs::stream_trace_to (the
// runner does this automatically when BatchOptions::trace_path is set).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "rsn/rsn.hpp"

namespace ftrsn {

class ThreadPool;

/// One flow of a batch: either a named ITC'02 SoC (parsed inside the
/// worker task, so parsing shards too) or an explicit input network.
struct BatchFlow {
  /// Label for the "batch.<name>" span and result rows; defaults to `soc`
  /// (or "flow<i>" for anonymous explicit networks).
  std::string name;
  /// Non-empty: generate the SIB-based RSN of this ITC'02 SoC.
  std::string soc;
  /// Explicit input network (used when `soc` is empty).
  std::optional<Rsn> rsn;
  /// Per-flow options.  trace_path/report_path are cleared (the batch owns
  /// observability output) and metric_pool is overwritten with the shared
  /// batch pool.
  FlowOptions options;
};

struct BatchOptions {
  /// Pool size including the calling thread; <= 0 resolves to the hardware
  /// concurrency.  1 degenerates to the plain serial sweep.
  int threads = 0;
  /// Labels the pool's worker lanes ("<name>-w<k>") in traces.
  std::string pool_name = "batch";
  /// When non-empty, tracing is enabled for the run and the trace /
  /// run-report JSON is written here after the last flow.
  std::string trace_path;
  std::string report_path;
  /// Trace spans buffered in memory before streaming flushes them to
  /// trace_path (obs::stream_trace_to); 0 keeps everything in RAM.
  std::size_t trace_stream_events = 65536;
};

struct BatchResult {
  /// One entry per input flow, in input order (schedule-independent).
  std::vector<FlowResult> flows;
  double wall_seconds = 0.0;
  int threads = 1;
};

class BatchRunner {
 public:
  explicit BatchRunner(const BatchOptions& options = {});
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  int num_threads() const;

  /// Runs every flow on the shared pool and returns results in input
  /// order.  May be called repeatedly; the pool is reused.
  BatchResult run_flows(std::vector<BatchFlow> flows);

  /// Convenience for the Table-I sweep: one flow per ITC'02 SoC name, all
  /// with the same base options.
  BatchResult run_soc_flows(const std::vector<std::string>& socs,
                            const FlowOptions& base = {});

 private:
  BatchOptions options_;
  std::unique_ptr<ThreadPool> pool_;
};

/// One-shot convenience wrapper around BatchRunner.
BatchResult run_flows(std::vector<BatchFlow> flows,
                      const BatchOptions& options = {});

}  // namespace ftrsn
