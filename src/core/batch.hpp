// Sharded multi-network flow runner (DESIGN.md §5f).
//
// Executes many independent run_flow pipelines (parse -> synth -> metric ->
// BMC spot-check) concurrently on ONE shared ThreadPool with two-level
// parallelism: each network is an outer task (one parallel_for chunk), and
// the fault-metric engine's fault-class parallel_for nests on the same pool
// via FlowOptions::metric_pool.  Idle workers prefer whole networks
// (coarse-grain first); once every network has been claimed they drain the
// fault-class loops of the networks still in flight, so the p93791 tail
// does not serialise the sweep.
//
// Determinism: results land in per-input slots (BatchResult::flows keeps
// the input order regardless of the schedule), and the metric engine's
// serial fold makes every per-network aggregate bit-identical to a serial
// single-threaded sweep at any pool size.  Obs counters are atomic sums,
// so totals are schedule-independent too; only span timings vary.
//
// Exceptions: a throwing flow leaves its slot default-constructed; the
// first exception is rethrown from run_flows after every flow has been
// attempted (the ThreadPool contract, one nesting level at a time).
//
// Observability: every network runs under a "batch.<name>" span, so an
// FTRSN_TRACE of a batch run shows the shard schedule across worker lanes.
// Long sweeps should bound trace memory with obs::stream_trace_to (the
// runner does this automatically when BatchOptions::trace_path is set).
// When a trace/report is requested, every flow additionally runs in its own
// obs::ObsContext (DESIGN.md §5j): the per-network run report is captured
// in BatchResult::flow_reports (and written next to report_path as
// "<stem>.<name>.json"), then the child context is merged into the
// caller's context, so the merged report's counters are the sums of the
// children (scheduling counters like pool.chunks of the outer network-level
// job excepted — those belong to the parent job's own context).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "rsn/rsn.hpp"

namespace ftrsn {

class ThreadPool;

/// One flow of a batch: either a named ITC'02 SoC (parsed inside the
/// worker task, so parsing shards too) or an explicit input network.
struct BatchFlow {
  /// Label for the "batch.<name>" span and result rows; defaults to `soc`
  /// (or "flow<i>" for anonymous explicit networks).
  std::string name;
  /// Non-empty: generate the SIB-based RSN of this ITC'02 SoC.
  std::string soc;
  /// Explicit input network (used when `soc` is empty).
  std::optional<Rsn> rsn;
  /// Per-flow options.  trace_path/report_path are cleared (the batch owns
  /// observability output) and metric_pool is overwritten with the shared
  /// batch pool.
  FlowOptions options;
};

struct BatchOptions {
  /// Pool size including the calling thread; <= 0 resolves to the hardware
  /// concurrency.  1 degenerates to the plain serial sweep.
  int threads = 0;
  /// Labels the pool's worker lanes ("<name>-w<k>") in traces.
  std::string pool_name = "batch";
  /// When non-empty, tracing is enabled for the run and the trace /
  /// run-report JSON is written here after the last flow.
  std::string trace_path;
  std::string report_path;
  /// Trace spans buffered in memory before streaming flushes them to
  /// trace_path (obs::stream_trace_to); 0 keeps everything in RAM.
  std::size_t trace_stream_events = 65536;
};

struct BatchResult {
  /// One entry per input flow, in input order (schedule-independent).
  std::vector<FlowResult> flows;
  /// Per-flow run reports (ftrsn-run-report v2 JSON), in input order.
  /// Populated only when BatchOptions requested a trace or report.
  std::vector<std::string> flow_reports;
  /// Flow labels, in input order (the "batch.<label>" span names).
  std::vector<std::string> flow_labels;
  double wall_seconds = 0.0;
  int threads = 1;
};

/// Where run_flows writes the per-network report of flow `label` when
/// BatchOptions::report_path is set: inserts ".<label>" before a trailing
/// ".json" ("reports/run.json" + "u226" -> "reports/run.u226.json"), or
/// appends ".<label>.json" when the path has no .json suffix.
std::string per_flow_report_path(const std::string& report_path,
                                 const std::string& label);

class BatchRunner {
 public:
  explicit BatchRunner(const BatchOptions& options = {});
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  int num_threads() const;

  /// Runs every flow on the shared pool and returns results in input
  /// order.  May be called repeatedly; the pool is reused.
  BatchResult run_flows(std::vector<BatchFlow> flows);

  /// Convenience for the Table-I sweep: one flow per ITC'02 SoC name, all
  /// with the same base options.
  BatchResult run_soc_flows(const std::vector<std::string>& socs,
                            const FlowOptions& base = {});

 private:
  BatchOptions options_;
  std::unique_ptr<ThreadPool> pool_;
};

/// One-shot convenience wrapper around BatchRunner.
BatchResult run_flows(std::vector<BatchFlow> flows,
                      const BatchOptions& options = {});

}  // namespace ftrsn
