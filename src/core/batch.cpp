#include "core/batch.hpp"

#include <chrono>
#include <string_view>
#include <utility>

#include "obs/obs.hpp"
#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace ftrsn {

BatchRunner::BatchRunner(const BatchOptions& options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.threads,
                                         options.pool_name.c_str())) {}

BatchRunner::~BatchRunner() = default;

int BatchRunner::num_threads() const { return pool_->num_threads(); }

std::string per_flow_report_path(const std::string& report_path,
                                 const std::string& label) {
  constexpr std::string_view kSuffix = ".json";
  if (report_path.size() > kSuffix.size() &&
      report_path.compare(report_path.size() - kSuffix.size(), kSuffix.size(),
                          kSuffix) == 0)
    return report_path.substr(0, report_path.size() - kSuffix.size()) + "." +
           label + ".json";
  return report_path + "." + label + ".json";
}

BatchResult BatchRunner::run_flows(std::vector<BatchFlow> flows) {
  const auto t0 = std::chrono::steady_clock::now();
  const bool want_obs =
      !options_.trace_path.empty() || !options_.report_path.empty();
  if (want_obs) {
    obs::enable(true);
    if (!options_.trace_path.empty() && options_.trace_stream_events > 0)
      obs::stream_trace_to(options_.trace_path, options_.trace_stream_events);
  }
  // Children merge into whatever context the batch was submitted from
  // (normally the process default), so the merged report covers the run.
  obs::ObsContext& parent = obs::current_context();

  BatchResult result;
  result.threads = pool_->num_threads();
  result.flows.resize(flows.size());
  result.flow_labels.resize(flows.size());
  if (want_obs) result.flow_reports.resize(flows.size());

  // One chunk per network: the pool's oldest-first policy hands whole
  // networks to idle workers until none are left, then they fall through
  // to the nested fault-class jobs of the flows still running.
  pool_->parallel_for(
      flows.size(), /*chunk=*/1,
      [&](int /*worker*/, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          BatchFlow& flow = flows[i];
          std::string label = flow.name;
          if (label.empty())
            label = !flow.soc.empty() ? flow.soc
                                      : "flow" + std::to_string(i);
          result.flow_labels[i] = label;
          FlowOptions opt = flow.options;
          opt.trace_path.clear();  // the batch owns observability output
          opt.report_path.clear();
          opt.metric_pool = pool_.get();
          const auto run_one = [&] {
            if (!flow.soc.empty()) {
              result.flows[i] = run_soc_flow(flow.soc, opt);
            } else {
              FTRSN_CHECK_MSG(flow.rsn.has_value(),
                              "BatchFlow needs a soc name or an explicit rsn");
              result.flows[i] = run_flow(*flow.rsn, opt);
            }
          };
          if (!want_obs) {
            run_one();
            continue;
          }
          // Each network gets its own ObsContext: nested metric/ILP jobs
          // inherit it through the pool, so the per-network report isolates
          // this flow's counters/spans/histograms no matter how the sweep
          // was scheduled.  Render the child report before merging, then
          // fold everything into the parent so the merged report still
          // equals the sum of the children.
          obs::ObsContext ctx;
          try {
            obs::ContextScope scope(ctx);
            std::optional<obs::Span> span;
            if (obs::enabled()) span.emplace("batch." + label);
            run_one();
          } catch (...) {
            ctx.merge_into(parent);
            throw;
          }
          {
            obs::ContextScope scope(ctx);
            result.flow_reports[i] = obs::report_json();
          }
          ctx.merge_into(parent);
        }
      });

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!options_.trace_path.empty()) obs::write_trace(options_.trace_path);
  if (!options_.report_path.empty()) {
    obs::write_report(options_.report_path);
    for (std::size_t i = 0; i < result.flow_reports.size(); ++i)
      obs::write_file(
          per_flow_report_path(options_.report_path, result.flow_labels[i]),
          result.flow_reports[i]);
  }
  return result;
}

BatchResult BatchRunner::run_soc_flows(const std::vector<std::string>& socs,
                                       const FlowOptions& base) {
  std::vector<BatchFlow> flows;
  flows.reserve(socs.size());
  for (const std::string& soc : socs) {
    BatchFlow flow;
    flow.name = soc;
    flow.soc = soc;
    flow.options = base;
    flows.push_back(std::move(flow));
  }
  return run_flows(std::move(flows));
}

BatchResult run_flows(std::vector<BatchFlow> flows,
                      const BatchOptions& options) {
  BatchRunner runner(options);
  return runner.run_flows(std::move(flows));
}

}  // namespace ftrsn
