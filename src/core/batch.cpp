#include "core/batch.hpp"

#include <chrono>
#include <utility>

#include "obs/obs.hpp"
#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace ftrsn {

BatchRunner::BatchRunner(const BatchOptions& options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.threads,
                                         options.pool_name.c_str())) {}

BatchRunner::~BatchRunner() = default;

int BatchRunner::num_threads() const { return pool_->num_threads(); }

BatchResult BatchRunner::run_flows(std::vector<BatchFlow> flows) {
  const auto t0 = std::chrono::steady_clock::now();
  const bool want_obs =
      !options_.trace_path.empty() || !options_.report_path.empty();
  if (want_obs) {
    obs::enable(true);
    if (!options_.trace_path.empty() && options_.trace_stream_events > 0)
      obs::stream_trace_to(options_.trace_path, options_.trace_stream_events);
  }

  BatchResult result;
  result.threads = pool_->num_threads();
  result.flows.resize(flows.size());

  // One chunk per network: the pool's oldest-first policy hands whole
  // networks to idle workers until none are left, then they fall through
  // to the nested fault-class jobs of the flows still running.
  pool_->parallel_for(
      flows.size(), /*chunk=*/1,
      [&](int /*worker*/, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          BatchFlow& flow = flows[i];
          std::string label = flow.name;
          if (label.empty())
            label = !flow.soc.empty() ? flow.soc
                                      : "flow" + std::to_string(i);
          std::optional<obs::Span> span;
          if (obs::enabled()) span.emplace("batch." + label);
          FlowOptions opt = flow.options;
          opt.trace_path.clear();  // the batch owns observability output
          opt.report_path.clear();
          opt.metric_pool = pool_.get();
          if (!flow.soc.empty()) {
            result.flows[i] = run_soc_flow(flow.soc, opt);
          } else {
            FTRSN_CHECK_MSG(flow.rsn.has_value(),
                            "BatchFlow needs a soc name or an explicit rsn");
            result.flows[i] = run_flow(*flow.rsn, opt);
          }
        }
      });

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!options_.trace_path.empty()) obs::write_trace(options_.trace_path);
  if (!options_.report_path.empty()) obs::write_report(options_.report_path);
  return result;
}

BatchResult BatchRunner::run_soc_flows(const std::vector<std::string>& socs,
                                       const FlowOptions& base) {
  std::vector<BatchFlow> flows;
  flows.reserve(socs.size());
  for (const std::string& soc : socs) {
    BatchFlow flow;
    flow.name = soc;
    flow.soc = soc;
    flow.options = base;
    flows.push_back(std::move(flow));
  }
  return run_flows(std::move(flows));
}

BatchResult run_flows(std::vector<BatchFlow> flows,
                      const BatchOptions& options) {
  BatchRunner runner(options);
  return runner.run_flows(std::move(flows));
}

}  // namespace ftrsn
