#include "lint/augment_cache.hpp"

#include <algorithm>

#include "lint/cone_oracle.hpp"
#include "lint/lint.hpp"

// Diagnostics are built with designated initializers that leave the
// trailing members for stamp() to fill in, as in lint.cpp.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

namespace ftrsn::lint {

namespace {

const RuleInfo& rule_info(const char* id) {
  for (const RuleInfo& info : LintRunner::rules())
    if (info.id == id) return info;
  FTRSN_CHECK_MSG(false, strprintf("unknown augment rule '%s'", id));
}

void stamp(std::vector<Diagnostic>& out, std::size_t from, const char* id) {
  const RuleInfo& info = rule_info(id);
  for (std::size_t i = from; i < out.size(); ++i) {
    out[i].rule = info.id;
    out[i].severity = info.severity;
  }
}

/// Iterative white/gray/black DFS with cycle reconstruction — the same
/// traversal as DataflowGraph::find_cycle, over a caller-supplied adjacency
/// view, so witnesses match the from-scratch graph byte for byte.
template <typename SuccSize, typename SuccAt>
std::vector<NodeId> find_cycle_view(std::size_t num_vertices,
                                    SuccSize succ_size, SuccAt succ_at) {
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(num_vertices, kWhite);
  std::vector<NodeId> parent(num_vertices, kInvalidNode);
  for (NodeId start = 0; start < num_vertices; ++start) {
    if (color[start] != kWhite) continue;
    std::vector<std::pair<NodeId, std::size_t>> stack{{start, 0}};
    color[start] = kGray;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      if (i < succ_size(v)) {
        const NodeId s = succ_at(v, i++);
        if (color[s] == kGray) {
          std::vector<NodeId> cycle{s};
          for (NodeId u = v; u != s; u = parent[u]) cycle.push_back(u);
          std::reverse(cycle.begin() + 1, cycle.end());
          return cycle;
        }
        if (color[s] == kWhite) {
          color[s] = kGray;
          parent[s] = v;
          stack.push_back({s, 0});
        }
      } else {
        color[v] = kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

bool same_diag(const Diagnostic& a, const Diagnostic& b) {
  return a.rule == b.rule && a.severity == b.severity && a.node == b.node &&
         a.ctrl == b.ctrl && a.message == b.message && a.hint == b.hint &&
         a.witness == b.witness;
}

}  // namespace

AugmentLintCache::AugmentLintCache(const DataflowGraph& g,
                                   std::vector<bool> target_allowed,
                                   bool check_with_full_recompute)
    : g_(g),
      allowed_(std::move(target_allowed)),
      check_(check_with_full_recompute),
      n_(g.num_vertices()),
      base_cyclic_(g.has_cycle()) {
  if (!base_cyclic_) level_ = g.levels();
  is_root_.assign(n_, 0);
  is_sink_.assign(n_, 0);
  for (NodeId r : g.roots()) is_root_[r] = 1;
  for (NodeId s : g.sinks()) is_sink_[s] = 1;
  base_in_.assign(n_, 0);
  base_out_.assign(n_, 0);
  for (NodeId v = 0; v < n_; ++v) {
    base_in_[v] = static_cast<int>(g.predecessors(v).size());
    base_out_[v] = static_cast<int>(g.successors(v).size());
  }
  add_in_.assign(n_, 0);
  add_out_.assign(n_, 0);
  detail::count_full_recompute();
}

void AugmentLintCache::ensure_degree_caps() const {
  if (caps_ready_ || base_cyclic_) return;
  const auto allowed = [&](NodeId v) {
    return allowed_.empty() || (v < allowed_.size() && allowed_[v]);
  };
  possible_in_.assign(n_, 0);
  possible_out_.assign(n_, 0);
  for (NodeId v = 0; v < n_; ++v) {
    int& pin = possible_in_[v];
    for (NodeId u = 0; u < n_ && pin < 2; ++u)
      if (u != v && !is_sink_[u] && level_[u] <= level_[v]) ++pin;
    int& pout = possible_out_[v];
    for (NodeId u = 0; u < n_ && pout < 2; ++u)
      if (u != v && !is_root_[u] && level_[u] >= level_[v] &&
          (allowed(u) || std::find(g_.successors(v).begin(),
                                   g_.successors(v).end(),
                                   u) != g_.successors(v).end()))
        ++pout;
  }
  caps_ready_ = true;
}

void AugmentLintCache::add_edge(const DfEdge& e) {
  added_.push_back(e);
  if (e.from < n_ && e.to < n_) {
    ++add_out_[e.from];
    ++add_in_[e.to];
    if (!base_cyclic_ && level_[e.to] <= level_[e.from]) ++suspect_count_;
  }
  detail::count_incremental_update();
}

void AugmentLintCache::remove_edge(const DfEdge& e) {
  // Copy before mutating: callers may pass a reference into added_ itself
  // (e.g. remove_edge(added().back())), which the erase would invalidate.
  const DfEdge edge = e;
  for (std::size_t i = added_.size(); i-- > 0;) {
    if (added_[i].from != edge.from || added_[i].to != edge.to) continue;
    added_.erase(added_.begin() + static_cast<std::ptrdiff_t>(i));
    if (edge.from < n_ && edge.to < n_) {
      --add_out_[edge.from];
      --add_in_[edge.to];
      if (!base_cyclic_ && level_[edge.to] <= level_[edge.from])
        --suspect_count_;
    }
    detail::count_incremental_update();
    return;
  }
}

void AugmentLintCache::assign(const std::vector<DfEdge>& edges) {
  std::size_t keep = 0;
  while (keep < added_.size() && keep < edges.size() &&
         added_[keep].from == edges[keep].from &&
         added_[keep].to == edges[keep].to)
    ++keep;
  while (added_.size() > keep) remove_edge(added_.back());
  for (std::size_t i = keep; i < edges.size(); ++i) add_edge(edges[i]);
}

std::vector<NodeId> AugmentLintCache::same_level_cycle() const {
  if (base_cyclic_) return {};
  std::vector<DfEdge> edges;
  std::size_t max_vertex = 0;
  for (const DfEdge& e : added_) {
    if (e.from >= n_ || e.to >= n_) continue;
    if (level_[e.from] != level_[e.to]) continue;
    edges.push_back(e);
    max_vertex = std::max<std::size_t>(max_vertex,
                                       std::max(e.from, e.to) + 1);
  }
  if (edges.empty()) return {};
  std::vector<std::vector<NodeId>> succ(max_vertex);
  for (const DfEdge& e : edges) succ[e.from].push_back(e.to);
  return find_cycle_view(
      max_vertex, [&](NodeId v) { return succ[v].size(); },
      [&](NodeId v, std::size_t i) { return succ[v][i]; });
}

std::vector<NodeId> AugmentLintCache::combined_find_cycle() const {
  // Adjacency of DataflowGraph::from_edges(n, g.edges() ++ valid added):
  // the base successor lists followed by the valid added edges in
  // insertion order.
  std::vector<std::vector<NodeId>> extra(n_);
  for (const DfEdge& e : added_)
    if (e.from < n_ && e.to < n_) extra[e.from].push_back(e.to);
  return find_cycle_view(
      n_,
      [&](NodeId v) { return g_.successors(v).size() + extra[v].size(); },
      [&](NodeId v, std::size_t i) {
        const auto& base = g_.successors(v);
        return i < base.size() ? base[i] : extra[v][i - base.size()];
      });
}

std::vector<Diagnostic> AugmentLintCache::diagnostics() const {
  std::vector<Diagnostic> out;

  {
    const std::size_t from = out.size();
    for (std::size_t i = 0; i < added_.size(); ++i) {
      const DfEdge& e = added_[i];
      if (e.from >= n_ || e.to >= n_)
        out.push_back({.message = strprintf(
                           "augmenting edge #%zu (%u -> %u) leaves the "
                           "%zu-vertex graph",
                           i, e.from, e.to, n_)});
    }
    stamp(out, from, "aug-edge-range");
  }

  {
    const std::size_t from = out.size();
    // Base edges strictly increase the topological level, so the augmented
    // graph is certainly acyclic while no added edge runs level-flat or
    // level-backward; the DFS only runs once a suspect edge appears.
    auto cycle = (base_cyclic_ || suspect_count_ > 0)
                     ? combined_find_cycle()
                     : std::vector<NodeId>{};
    if (!cycle.empty())
      out.push_back({.node = cycle.front(),
                     .message = strprintf("augmenting edges close a cycle "
                                          "through %zu vertices (eq. 5 "
                                          "violated)",
                                          cycle.size()),
                     .hint = "drop or re-anchor one edge of the witness",
                     .witness = std::move(cycle)});
    stamp(out, from, "aug-cycle");
  }

  if (!base_cyclic_) {
    {
      const std::size_t from = out.size();
      for (const DfEdge& e : added_)
        if (e.from < n_ && e.to < n_ && level_[e.to] < level_[e.from])
          out.push_back(
              {.node = e.from,
               .message = strprintf("augmenting edge %u -> %u runs level-"
                                    "backward (%d -> %d); potential edges "
                                    "must satisfy level(j) >= level(i)",
                                    e.from, e.to, level_[e.from],
                                    level_[e.to]),
               .witness = {e.from, e.to}});
      stamp(out, from, "aug-level-backward");
    }

    ensure_degree_caps();
    const auto allowed = [&](NodeId v) {
      return allowed_.empty() || (v < allowed_.size() && allowed_[v]);
    };
    {
      const std::size_t from = out.size();
      for (NodeId v = 0; v < n_; ++v) {
        if (is_root_[v] || !allowed(v)) continue;
        const int indeg = base_in_[v] + add_in_[v];
        if (indeg < std::min(2, possible_in_[v]))
          out.push_back(
              {.node = v,
               .message = strprintf("in-degree %d after augmentation (eq. 3 "
                                    "requires 2; %d source(s) available)",
                                    indeg, possible_in_[v])});
      }
      stamp(out, from, "aug-low-in-degree");
    }
    {
      const std::size_t from = out.size();
      for (NodeId v = 0; v < n_; ++v) {
        if (is_sink_[v]) continue;
        const int outdeg = base_out_[v] + add_out_[v];
        if (outdeg < std::min(2, possible_out_[v]))
          out.push_back(
              {.node = v,
               .message = strprintf("out-degree %d after augmentation (eq. 4 "
                                    "requires 2; %d target(s) available)",
                                    outdeg, possible_out_[v])});
      }
      stamp(out, from, "aug-low-out-degree");
    }
  }

  if (check_) {
    const std::vector<Diagnostic> ref =
        lint_augmentation(g_, added_, allowed_);
    FTRSN_CHECK_MSG(ref.size() == out.size(),
                    strprintf("AugmentLintCache disagrees with the "
                              "from-scratch lint: %zu vs %zu diagnostics",
                              out.size(), ref.size()));
    for (std::size_t i = 0; i < out.size(); ++i)
      FTRSN_CHECK_MSG(same_diag(out[i], ref[i]),
                      strprintf("AugmentLintCache diagnostic #%zu diverges "
                                "from the from-scratch lint: '%s' vs '%s'",
                                i, out[i].message.c_str(),
                                ref[i].message.c_str()));
  }
  return out;
}

}  // namespace ftrsn::lint
