// Verified auto-repair of mechanical lint findings (rsn-lint --fix).
//
// The FixEngine maps the *mechanical* subset of the lint catalog — findings
// whose repair is a local, semantics-preserving rewrite — onto four rewrite
// primitives:
//
//   unused-primary-in     -> drop the unconnected primary scan-in port
//   mux-identical-inputs  -> bypass the mux (rewire consumers to the input)
//   const-mux-addr        -> collapse the mux onto its forwarded input
//   unreachable-scan /
//   dead-end-scan         -> prune the dead scan cone (successor- and
//                            shadow-closed: nothing surviving may reference
//                            a pruned node or read a pruned shadow bit)
//
// and applies them to fixpoint: each pass re-lints the patched network and
// re-applies until no fixable diagnostic remains (every accepted rewrite
// strictly decreases the node count, so the loop terminates in at most
// num_nodes passes; FixOptions::max_passes caps it regardless).
//
// Every rewrite is *verified before it is accepted*, not trusted: the
// engine proves — with the same cone-oracle/SAT substrate the lint rules
// use (sat/cnf.hpp Tseitin encoding) — that for every surviving scan
// element the set of possible scan-in sources and the mux-address guard
// under which each source is forwarded are equivalent before and after the
// rewrite, and that select / capture-disable / update-disable semantics are
// untouched.  Rewrites that fail the proof are rejected and the diagnostic
// is left in place.  With FixVerify::kMetric the repaired network is
// additionally cross-checked against the original by a differential
// fault-metric run (fault/metric_engine.hpp) over the shared fault
// universe.
//
// Results map back to the *original* network: node / ctrl provenance maps
// plus per-fix edit records, which sarif_fix_records() renders as SARIF
// 2.1.0 `fix` objects (whole-line textual edits of the original .rsn file,
// via the io/rsn_text.hpp RsnSourceMap).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "io/rsn_text.hpp"
#include "lint/diagnostic.hpp"
#include "lint/lint.hpp"
#include "lint/sarif.hpp"
#include "rsn/rsn.hpp"

namespace ftrsn::lint {

/// How each rewrite is checked before it is accepted.
enum class FixVerify : std::uint8_t {
  kOff,     ///< trust the rewrite primitives (structural guards only)
  kSat,     ///< per-rewrite SAT equivalence proof (the default)
  kMetric,  ///< kSat plus an end-to-end differential fault-metric check
};

struct FixOptions {
  /// Lint configuration used for the initial run and every re-lint pass.
  LintOptions lint;
  FixVerify verify = FixVerify::kSat;
  /// Hard cap on fix passes (cycle guard; the node-count argument already
  /// bounds the loop, this bounds it against future non-shrinking fixes).
  int max_passes = 32;
  /// The differential fault-metric check runs only on networks up to this
  /// many nodes (it simulates the full shared fault universe).
  std::size_t metric_max_nodes = 400;
  /// Fault cap for the differential check (deterministic stride sample).
  std::size_t metric_max_faults = 512;
  /// Test hook: deliberately rewire mux bypasses to a wrong driver so the
  /// verification layer can be shown to reject bad rewrites.  0 = off.
  int debug_miswire = 0;
};

/// The rewrite vocabulary.
enum class FixKind : std::uint8_t {
  kDropUnusedPrimaryIn,
  kDedupeMuxInputs,
  kCollapseConstMux,
  kPruneDeadScan,
};

const char* fix_kind_name(FixKind kind);

/// What happened to one fixable diagnostic.
enum class FixStatus : std::uint8_t {
  kApplied,   ///< rewrite applied (and verified, unless FixVerify::kOff)
  kRejected,  ///< rewrite attempted but the equivalence proof failed
  kSkipped,   ///< structural guard kept the network unchanged (see note)
};

/// One scan-input rewire, in original-network coordinates.
struct FixRewire {
  NodeId consumer = kInvalidNode;
  int input = -1;  ///< -1 = scan_in (segment / primary-out), 0/1 = mux input
  NodeId new_driver = kInvalidNode;
};

/// Record of one fix attempt, in original-network coordinates.
struct AppliedFix {
  FixKind kind = FixKind::kDropUnusedPrimaryIn;
  std::string rule;            ///< lint rule id that triggered the fix
  NodeId node = kInvalidNode;  ///< diagnosed node
  int pass = 0;                ///< 1-based fix pass
  FixStatus status = FixStatus::kSkipped;
  std::string note;            ///< reject/skip reason, or a short summary
  std::vector<NodeId> removed;            ///< nodes deleted by this fix
  std::vector<FixRewire> rewires;         ///< consumer rewires
  std::vector<std::size_t> removed_terms; ///< original select-term indices
};

struct FixResult {
  Rsn rsn;              ///< the repaired network
  bool changed = false;
  int passes = 0;       ///< passes that applied at least one fix
  std::size_t applied = 0;
  std::size_t rejected = 0;
  std::vector<AppliedFix> fixes;
  std::vector<Diagnostic> initial;   ///< lint of the input network
  std::vector<Diagnostic> residual;  ///< lint of the repaired network
  /// Original NodeId -> repaired NodeId (kInvalidNode = removed).
  std::vector<NodeId> node_map;
  /// Repaired-pool CtrlRef -> original-pool CtrlRef (kCtrlInvalid if the
  /// expression has no original counterpart; does not happen for
  /// expressions referenced by the repaired netlist).
  std::vector<CtrlRef> ctrl_map;
  bool metric_check_ran = false;
  bool metric_check_ok = true;
  std::string metric_check_note;
};

class FixEngine {
 public:
  FixEngine() = default;
  explicit FixEngine(FixOptions options) : options_(std::move(options)) {}

  FixResult run(const Rsn& rsn) const;

  const FixOptions& options() const { return options_; }

  /// True if diagnostics of this rule id are mechanically fixable.
  static bool fixable_rule(const std::string& rule);
  static const std::vector<std::string>& fixable_rules();

 private:
  FixOptions options_;
};

/// Convenience wrapper.
FixResult fix_rsn(const Rsn& rsn, const FixOptions& options = {});

/// Differential fault-metric check of a fix result against the original
/// network: maps the repaired network's fault universe back to original
/// coordinates via node_map/ctrl_map, compares per-fault accessibility of
/// every surviving segment, requires pruned segments to be inaccessible in
/// the original, and folds the shared-universe aggregates on both sides in
/// identical order (bit-identical doubles).  Returns true on equivalence;
/// `why`, when non-null, receives the first discrepancy.  Networks above
/// `max_nodes` (or networks the metric engine rejects) are not checked:
/// the function returns true, sets `why` to "skipped...", and leaves
/// `*ran` false; `*ran` is set true only when a comparison actually ran.
bool metric_differential_check(const Rsn& original, const FixResult& result,
                               std::string* why = nullptr,
                               std::size_t max_nodes = 400,
                               std::size_t max_faults = 512,
                               bool* ran = nullptr);

/// Renders the applied fixes of `result` as SARIF fix records keyed by the
/// index of the matching diagnostic in `result.initial`: whole-line edits
/// of `source_text` (the original .rsn file) located via `src_map`.  Fixes
/// whose diagnosed node only appeared in a later pass (no initial
/// diagnostic) or whose edits have no source line are omitted.
std::map<std::size_t, SarifFix> sarif_fix_records(const FixResult& result,
                                                  const Rsn& original,
                                                  const std::string& source_text,
                                                  const RsnSourceMap& src_map);

}  // namespace ftrsn::lint
