// Exact control-cone analysis for the lint rules.
//
// The cone-based rules (const-false-select, const-mux-addr, the disable
// rules, select-term satisfiability and the select-bootstrap deadlock
// check) ask the same three questions about a control expression:
//
//   * is it provably constant 0/1 under every atom assignment?
//   * is it satisfiable (some assignment makes it 0/1)?
//   * given forced values for some atoms (e.g. a segment's own shadow bits
//     at reset), is it provably constant for every completion?
//
// Historically these were answered best-effort by exhaustive tristate
// enumeration that gave up above 10 cone atoms — exactly the large
// ITC'02-derived networks of the paper's Table I got "cone too large;
// skip".  The ConeOracle answers them *exactly for cones of any size*: it
// keeps the cheap exhaustive enumerator for small cones and switches to
// the CDCL SAT solver (via the sat/cnf.hpp Tseitin encoder, the same
// substrate the paper uses for scan-path existence) above a configurable
// atom threshold.  Results are memoized per pool and query.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "rsn/ctrl.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"

namespace ftrsn::lint {

/// How cone queries are decided.
enum class ConeBackend : std::uint8_t {
  kTristate,  ///< exhaustive enumeration, whatever the cone size
  kSat,       ///< CDCL SAT on the Tseitin-encoded cone, always
  kAuto,      ///< enumeration up to `max_atoms` free atoms, SAT above
};

/// Counters of the analysis machinery, for `rsn-lint --lint-stats` and the
/// perf-regression tests.  Since the obs subsystem landed these are a
/// *snapshot* of the process-wide `lint.*` obs counters (obs/obs.hpp), so
/// the same numbers appear in the run report; reset explicitly between
/// measurements.
struct LintStats {
  std::uint64_t cones_solved_sat = 0;       ///< oracle queries decided by SAT
  std::uint64_t cones_solved_tristate = 0;  ///< ... by exhaustive enumeration
  std::uint64_t cache_hits = 0;             ///< oracle memo-cache hits
  std::uint64_t incremental_updates = 0;    ///< AugmentLintCache edge deltas
  std::uint64_t full_recomputes = 0;        ///< from-scratch augment analyses
};

/// Snapshot of the `lint.*` obs counters.
LintStats lint_stats();
/// Zeroes exactly the counters reported by `lint_stats()`.
void reset_lint_stats();

namespace detail {
/// Increment hooks for the AugmentLintCache / lint driver (the counter
/// handles live in cone_oracle.cpp).
void count_incremental_update();
void count_full_recompute();
}  // namespace detail

/// The expression cone of `r` (all transitively reachable pool nodes,
/// `r` included) in ascending ref order — a valid bottom-up evaluation
/// order, since interning appends parents after their children.  Returns
/// empty when the cone has *more* than `max_nodes` nodes; a cone of
/// exactly `max_nodes` is returned in full (boundary pinned by tests).
std::vector<CtrlRef> cone_of(const CtrlPool& pool, CtrlRef r,
                             std::size_t max_nodes = static_cast<std::size_t>(-1));

/// True for the leaf ops the oracle treats as free variables.
bool is_ctrl_atom(CtrlOp op);

constexpr int kTristateX = 2;  ///< three-valued "unknown"

/// Three-valued bottom-up evaluation over `cone` (ascending ref order);
/// atoms not in `forced` evaluate to unknown.  Returns 0, 1 or kTristateX.
int tristate_eval(const CtrlPool& pool, const std::vector<CtrlRef>& cone,
                  CtrlRef root, const std::map<CtrlRef, int>& forced);

class ConeOracle {
 public:
  explicit ConeOracle(const CtrlPool& pool,
                      ConeBackend backend = ConeBackend::kAuto,
                      std::size_t max_atoms = 10)
      : pool_(pool), backend_(backend), max_atoms_(max_atoms) {}

  /// Exists an assignment of the unforced atoms, extending `forced`
  /// (CtrlRef -> 0/1), under which the expression evaluates to `value`?
  bool satisfiable(CtrlRef root, bool value,
                   const std::map<CtrlRef, int>& forced = {});

  /// Does the expression evaluate to `want` under *every* assignment
  /// extending `forced`?
  bool provably_const(CtrlRef root, bool want,
                      const std::map<CtrlRef, int>& forced = {}) {
    return !satisfiable(root, !want, forced);
  }

  ConeBackend backend() const { return backend_; }
  std::size_t max_atoms() const { return max_atoms_; }

 private:
  /// `screened` holds the per-position tristate values of the screening
  /// pass; enumeration re-evaluates only its X positions.
  bool solve_enum(const std::vector<CtrlRef>& cone,
                  const std::vector<std::int8_t>& screened, CtrlRef root,
                  bool value) const;
  bool solve_sat(CtrlRef root, bool value,
                 const std::map<CtrlRef, int>& forced) const;

  const CtrlPool& pool_;
  ConeBackend backend_;
  std::size_t max_atoms_;

  /// Pool-indexed scratch: position of each ref in the current query's
  /// cone, -1 outside it.  Reused across queries (entries are reset on
  /// exit) so cone membership and kid lookups are O(1) instead of a
  /// per-access binary search — the rules fire thousands of queries whose
  /// cones cover most of a many-thousand-node pool.
  mutable std::vector<std::int32_t> pos_;

  /// Memo per (root, wanted value, forced assignment).
  using Key = std::pair<std::pair<CtrlRef, bool>,
                        std::vector<std::pair<CtrlRef, int>>>;
  std::map<Key, bool> cache_;
};

}  // namespace ftrsn::lint
