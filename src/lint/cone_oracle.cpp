#include "lint/cone_oracle.hpp"

#include <algorithm>
#include <set>

#include "obs/obs.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"

namespace ftrsn::lint {

namespace {
// The LintStats fields live as process-wide obs counters so they appear in
// the run report under the same names.  Cached handles: incrementing is a
// single relaxed atomic add, as cheap as the old plain struct fields.
obs::Counter& c_sat() {
  static obs::Counter c("lint.cones_solved_sat");
  return c;
}
obs::Counter& c_tristate() {
  static obs::Counter c("lint.cones_solved_tristate");
  return c;
}
obs::Counter& c_cache_hits() {
  static obs::Counter c("lint.cache_hits");
  return c;
}
obs::Counter& c_incremental() {
  static obs::Counter c("lint.incremental_updates");
  return c;
}
obs::Counter& c_full() {
  static obs::Counter c("lint.full_recomputes");
  return c;
}
}  // namespace

namespace detail {
void count_incremental_update() { c_incremental().add(); }
void count_full_recompute() { c_full().add(); }
}  // namespace detail

LintStats lint_stats() {
  LintStats s;
  s.cones_solved_sat = c_sat().value();
  s.cones_solved_tristate = c_tristate().value();
  s.cache_hits = c_cache_hits().value();
  s.incremental_updates = c_incremental().value();
  s.full_recomputes = c_full().value();
  return s;
}

void reset_lint_stats() {
  c_sat().reset();
  c_tristate().reset();
  c_cache_hits().reset();
  c_incremental().reset();
  c_full().reset();
}

bool is_ctrl_atom(CtrlOp op) {
  return op == CtrlOp::kEnable || op == CtrlOp::kPortSel ||
         op == CtrlOp::kShadowBit;
}

std::vector<CtrlRef> cone_of(const CtrlPool& pool, CtrlRef r,
                             std::size_t max_nodes) {
  std::vector<CtrlRef> stack{r};
  std::set<CtrlRef> seen{r};
  std::vector<CtrlRef> cone;
  while (!stack.empty()) {
    const CtrlRef t = stack.back();
    stack.pop_back();
    // A cone of exactly `max_nodes` nodes is analyzable and must be
    // returned in full; only strictly larger cones are rejected (boundary
    // pinned by tests).
    if (cone.size() >= max_nodes) return {};
    cone.push_back(t);
    const CtrlNode& n = pool.node(t);
    for (int i = 0; i < n.arity(); ++i)
      if (seen.insert(n.kid[i]).second) stack.push_back(n.kid[i]);
  }
  std::sort(cone.begin(), cone.end());
  return cone;
}

int tristate_eval(const CtrlPool& pool, const std::vector<CtrlRef>& cone,
                  CtrlRef root, const std::map<CtrlRef, int>& forced) {
  std::map<CtrlRef, int> val;
  for (CtrlRef r : cone) {
    const CtrlNode& n = pool.node(r);
    const auto kid = [&](int i) { return val.at(n.kid[i]); };
    int v = kTristateX;
    switch (n.op) {
      case CtrlOp::kConst:
        v = n.bit ? 1 : 0;
        break;
      case CtrlOp::kEnable:
      case CtrlOp::kPortSel:
      case CtrlOp::kShadowBit: {
        const auto it = forced.find(r);
        v = it == forced.end() ? kTristateX : it->second;
        break;
      }
      case CtrlOp::kNot: {
        const int a = kid(0);
        v = a == kTristateX ? kTristateX : 1 - a;
        break;
      }
      case CtrlOp::kAnd: {
        const int a = kid(0), b = kid(1);
        v = (a == 0 || b == 0) ? 0 : (a == 1 && b == 1) ? 1 : kTristateX;
        break;
      }
      case CtrlOp::kOr: {
        const int a = kid(0), b = kid(1);
        v = (a == 1 || b == 1) ? 1 : (a == 0 && b == 0) ? 0 : kTristateX;
        break;
      }
      case CtrlOp::kMaj3: {
        int ones = 0, zeros = 0;
        for (int i = 0; i < 3; ++i) {
          if (kid(i) == 1) ++ones;
          if (kid(i) == 0) ++zeros;
        }
        v = ones >= 2 ? 1 : zeros >= 2 ? 0 : kTristateX;
        break;
      }
    }
    val[r] = v;
  }
  return val.at(root);
}

namespace {

/// Exhaustive enumeration is cut off here even in kTristate mode: 2^26
/// evaluations is the largest budget that stays interactive, and the SAT
/// path is exact anyway.
constexpr std::size_t kEnumHardLimit = 26;

}  // namespace

bool ConeOracle::satisfiable(CtrlRef root, bool value,
                             const std::map<CtrlRef, int>& forced) {
  Key key{{root, value}, {forced.begin(), forced.end()}};
  const auto hit = cache_.find(key);
  if (hit != cache_.end()) {
    c_cache_hits().add();
    return hit->second;
  }

  if (pos_.size() < pool_.size()) pos_.resize(pool_.size(), -1);
  std::vector<CtrlRef> cone{root};
  {
    std::vector<CtrlRef> stack{root};
    pos_[static_cast<std::size_t>(root)] = -2;
    while (!stack.empty()) {
      const CtrlRef t = stack.back();
      stack.pop_back();
      const CtrlNode& n = pool_.node(t);
      for (int i = 0; i < n.arity(); ++i) {
        std::int32_t& p = pos_[static_cast<std::size_t>(n.kid[i])];
        if (p != -2) {
          p = -2;
          stack.push_back(n.kid[i]);
          cone.push_back(n.kid[i]);
        }
      }
    }
  }
  std::sort(cone.begin(), cone.end());
  for (std::size_t i = 0; i < cone.size(); ++i)
    pos_[static_cast<std::size_t>(cone[i])] = static_cast<std::int32_t>(i);
  const auto pos = [&](CtrlRef r) {
    return static_cast<std::size_t>(pos_[static_cast<std::size_t>(r)]);
  };

  // Screening pass: one positional tristate sweep with only `forced` bound.
  // A definite root answers the query outright.  An X root also answers it
  // when no X-valued node is shared (has two in-cone parents): sibling
  // subtrees are then independent in their free atoms, and by induction
  // over the ops every X node can reach both 0 and 1 — so the query value
  // is satisfiable whichever it is.  Only genuinely reconvergent cones
  // (shared free atoms or shared X subterms, e.g. hardened selects reusing
  // one TMR voter) fall through to enumeration/SAT.
  std::vector<std::int8_t> val(cone.size(), kTristateX);
  std::vector<std::uint8_t> refs(cone.size(), 0);
  std::size_t free_atom_count = 0;
  for (std::size_t i = 0; i < cone.size(); ++i) {
    const CtrlNode& n = pool_.node(cone[i]);
    const auto kid = [&](int k) {
      return static_cast<int>(val[pos(n.kid[k])]);
    };
    for (int k = 0; k < n.arity(); ++k) {
      std::uint8_t& c = refs[pos(n.kid[k])];
      if (c < 2) ++c;
    }
    int v = kTristateX;
    switch (n.op) {
      case CtrlOp::kConst:
        v = n.bit ? 1 : 0;
        break;
      case CtrlOp::kEnable:
      case CtrlOp::kPortSel:
      case CtrlOp::kShadowBit: {
        const auto it = forced.find(cone[i]);
        if (it == forced.end()) ++free_atom_count;
        v = it == forced.end() ? kTristateX : it->second;
        break;
      }
      case CtrlOp::kNot: {
        const int a = kid(0);
        v = a == kTristateX ? kTristateX : 1 - a;
        break;
      }
      case CtrlOp::kAnd: {
        const int a = kid(0), b = kid(1);
        v = (a == 0 || b == 0) ? 0 : (a == 1 && b == 1) ? 1 : kTristateX;
        break;
      }
      case CtrlOp::kOr: {
        const int a = kid(0), b = kid(1);
        v = (a == 1 || b == 1) ? 1 : (a == 0 && b == 0) ? 0 : kTristateX;
        break;
      }
      case CtrlOp::kMaj3: {
        int ones = 0, zeros = 0;
        for (int k = 0; k < 3; ++k) {
          if (kid(k) == 1) ++ones;
          if (kid(k) == 0) ++zeros;
        }
        v = ones >= 2 ? 1 : zeros >= 2 ? 0 : kTristateX;
        break;
      }
    }
    val[i] = static_cast<std::int8_t>(v);
  }

  bool result = false;
  bool decided = false;
  if (val[pos(root)] != kTristateX) {
    result = (val[pos(root)] != 0) == value;
    decided = true;
  } else if (backend_ != ConeBackend::kSat) {
    // (The pure-SAT backend skips the satisfiability shortcuts below so the
    // differential tests exercise the solver for real; they are shortcuts,
    // not approximations, so every backend returns the same answers.)
    bool shared_x = false;
    for (std::size_t i = 0; i < cone.size() && !shared_x; ++i)
      shared_x = val[i] == kTristateX && refs[i] >= 2;
    if (!shared_x) {
      result = true;  // X on a tree: both values achievable
      decided = true;
    }
  }

  // Directed probe: one desire-propagation sweep (parents before children,
  // i.e. descending ref order) picks atom values aimed at driving the root
  // to the queried value, then a single concrete evaluation checks the
  // pick.  On reconvergent-but-benign cones — the common case, hardened
  // selects sharing healthy TMR voters — this proves satisfiability in
  // O(|cone|), so clean networks need no SAT queries at all; only a failed
  // probe falls through to the exact engines.
  if (!decided && backend_ != ConeBackend::kSat) {
    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < cone.size(); ++i)
      if (val[i] == kTristateX) active.push_back(i);
    std::vector<std::int8_t> desired(cone.size(), -1);
    desired[pos(root)] = value ? 1 : 0;
    for (std::size_t j = active.size(); j-- > 0;) {
      const std::size_t i = active[j];
      const std::int8_t d = desired[i];
      if (d < 0) continue;
      const CtrlNode& n = pool_.node(cone[i]);
      const auto want = [&](int k, std::int8_t w) {
        const std::size_t p = pos(n.kid[k]);
        if (val[p] == kTristateX && desired[p] < 0) desired[p] = w;
      };
      switch (n.op) {
        case CtrlOp::kNot:
          want(0, static_cast<std::int8_t>(1 - d));
          break;
        case CtrlOp::kAnd:
        case CtrlOp::kOr: {
          const std::int8_t forcing = n.op == CtrlOp::kAnd ? 0 : 1;
          if (d != forcing) {  // non-controlling output: need both kids
            want(0, d);
            want(1, d);
          } else {  // one controlling kid suffices; prefer one that already
                    // wants (or is still free to take) that value
            int k = 0;
            for (int c = 0; c < 2; ++c) {
              const std::size_t p = pos(n.kid[c]);
              if (val[p] == kTristateX &&
                  (desired[p] == d || desired[p] < 0)) {
                k = c;
                break;
              }
            }
            want(k, d);
          }
          break;
        }
        case CtrlOp::kMaj3:
          for (int k = 0; k < 3; ++k) want(k, d);
          break;
        default:
          break;
      }
    }
    std::vector<std::int8_t> pv = val;
    for (const std::size_t i : active)
      if (is_ctrl_atom(pool_.node(cone[i]).op))
        pv[i] = desired[i] < 0 ? 0 : desired[i];
    for (const std::size_t i : active) {
      const CtrlNode& n = pool_.node(cone[i]);
      const auto kid = [&](int k) { return pv[pos(n.kid[k])]; };
      switch (n.op) {
        case CtrlOp::kNot:
          pv[i] = static_cast<std::int8_t>(1 - kid(0));
          break;
        case CtrlOp::kAnd:
          pv[i] = static_cast<std::int8_t>(kid(0) & kid(1));
          break;
        case CtrlOp::kOr:
          pv[i] = static_cast<std::int8_t>(kid(0) | kid(1));
          break;
        case CtrlOp::kMaj3:
          pv[i] = static_cast<std::int8_t>(kid(0) + kid(1) + kid(2) >= 2);
          break;
        default:
          break;  // atoms keep their picked value; consts are never X
      }
    }
    if ((pv[pos(root)] != 0) == value) {
      result = true;
      decided = true;
    }
  }

  if (decided) {
    c_tristate().add();
  } else {
    const std::size_t enum_limit =
        backend_ == ConeBackend::kTristate ? kEnumHardLimit
        : backend_ == ConeBackend::kSat    ? 0
                                           : std::min(max_atoms_,
                                                      kEnumHardLimit);
    if (free_atom_count <= enum_limit) {
      result = solve_enum(cone, val, root, value);
      c_tristate().add();
    } else {
      result = solve_sat(root, value, forced);
      c_sat().add();
    }
  }
  for (const CtrlRef c : cone) pos_[static_cast<std::size_t>(c)] = -1;
  cache_.emplace(std::move(key), result);
  return result;
}

bool ConeOracle::solve_enum(const std::vector<CtrlRef>& cone,
                            const std::vector<std::int8_t>& screened,
                            CtrlRef root, bool value) const {
  // Exhaustive enumeration restricted to the X-support: positions the
  // screening pass could not decide.  Definite positions keep their
  // screened value; only X positions are re-evaluated per mask, so a huge
  // cone with a small undecided core costs 2^k * |core|, not 2^k * |cone|.
  const auto pos = [&](CtrlRef r) {
    return static_cast<std::size_t>(pos_[static_cast<std::size_t>(r)]);
  };
  std::vector<std::size_t> active;
  std::vector<int> free_bit(cone.size(), -1);
  int num_free = 0;
  for (std::size_t i = 0; i < cone.size(); ++i) {
    if (screened[i] != kTristateX) continue;
    active.push_back(i);
    if (is_ctrl_atom(pool_.node(cone[i]).op)) free_bit[i] = num_free++;
  }

  std::vector<std::int8_t> val = screened;
  const std::size_t root_pos = pos(root);
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << num_free); ++m) {
    for (const std::size_t i : active) {
      const CtrlNode& n = pool_.node(cone[i]);
      const auto kid = [&](int k) { return val[pos(n.kid[k])]; };
      switch (n.op) {
        case CtrlOp::kConst:
          val[i] = n.bit ? 1 : 0;
          break;
        case CtrlOp::kEnable:
        case CtrlOp::kPortSel:
        case CtrlOp::kShadowBit:
          val[i] = static_cast<std::int8_t>((m >> free_bit[i]) & 1);
          break;
        case CtrlOp::kNot:
          val[i] = static_cast<std::int8_t>(1 - kid(0));
          break;
        case CtrlOp::kAnd:
          val[i] = static_cast<std::int8_t>(kid(0) & kid(1));
          break;
        case CtrlOp::kOr:
          val[i] = static_cast<std::int8_t>(kid(0) | kid(1));
          break;
        case CtrlOp::kMaj3:
          val[i] = static_cast<std::int8_t>(kid(0) + kid(1) + kid(2) >= 2);
          break;
      }
    }
    if ((val[root_pos] != 0) == value) return true;
  }
  return false;
}

bool ConeOracle::solve_sat(CtrlRef root, bool value,
                           const std::map<CtrlRef, int>& forced) const {
  // One fresh solver per query keeps the formula proportional to the
  // queried cone.  (A persistent incremental instance looks attractive —
  // the hash-consed pool shares subterms between cones — but it grows to
  // cover the whole pool, and every solve then pays for the accumulated
  // variables and learnt clauses instead of the one cone it asks about.)
  sat::Solver solver;
  sat::CnfEncoder encoder(pool_, solver);
  const sat::Lit root_lit = encoder.encode(root);
  for (const auto& [atom, v] : forced) {
    const sat::Lit a = encoder.encode(atom);
    solver.add_clause({v ? a : ~a});
  }
  solver.add_clause({value ? root_lit : ~root_lit});
  return solver.solve() == sat::SolveResult::kSat;
}

}  // namespace ftrsn::lint
