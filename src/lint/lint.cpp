#include "lint/lint.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "lint/cone_oracle.hpp"
#include "obs/obs.hpp"

// Rules build Diagnostics with designated initializers that deliberately
// leave the trailing members (rule id, severity) default-initialized — the
// runner stamps them from the rule catalog afterwards.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

namespace ftrsn::lint {

namespace {

// ---------------------------------------------------------------------------
// Shared per-run context: guarded adjacency (tolerates dangling/out-of-range
// references, unlike Rsn::successors()) and reachability closures.

struct Ctx {
  const Rsn& rsn;
  const CtrlPool& pool;
  std::vector<std::string> names;
  std::vector<std::vector<NodeId>> succ;
  std::vector<std::vector<NodeId>> pred;
  std::vector<char> reach;    ///< reachable from some primary scan-in
  std::vector<char> coreach;  ///< reaches some primary scan-out
  bool refs_ok = true;        ///< every scan reference is in range
  /// Exact control-cone analysis, shared across all cone-based rules of one
  /// run so identical queries (e.g. a select expression reused by several
  /// segments) hit the memo cache.
  std::unique_ptr<ConeOracle> oracle;
};

bool node_ok(const Ctx& c, NodeId id) {
  return id != kInvalidNode && id < c.rsn.num_nodes();
}

bool ctrl_ok(const Ctx& c, CtrlRef r) {
  return r >= 0 && static_cast<std::size_t>(r) < c.pool.size();
}

Ctx make_ctx(const Rsn& rsn, const LintOptions& opts) {
  Ctx c{rsn, rsn.ctrl(), rsn.node_names(), {}, {}, {}, {}, true, nullptr};
  c.oracle = std::make_unique<ConeOracle>(c.pool, opts.cone_backend,
                                          opts.cone_max_atoms);
  const std::size_t n = rsn.num_nodes();
  c.succ.resize(n);
  c.pred.resize(n);
  for (NodeId id = 0; id < n; ++id) {
    const RsnNode& node = rsn.node(id);
    const auto link = [&](NodeId from) {
      if (node_ok(c, from)) {
        c.succ[from].push_back(id);
        c.pred[id].push_back(from);
      } else {
        c.refs_ok = false;
      }
    };
    if (node.kind == NodeKind::kSegment || node.kind == NodeKind::kPrimaryOut)
      link(node.scan_in);
    if (node.kind == NodeKind::kMux)
      for (NodeId in : node.mux_in) link(in);
  }
  const auto bfs = [&](const std::vector<NodeId>& seeds,
                       const std::vector<std::vector<NodeId>>& adj) {
    std::vector<char> seen(n, 0);
    std::vector<NodeId> queue;
    for (NodeId s : seeds)
      if (s < n && !seen[s]) {
        seen[s] = 1;
        queue.push_back(s);
      }
    while (!queue.empty()) {
      const NodeId v = queue.back();
      queue.pop_back();
      for (NodeId w : adj[v])
        if (!seen[w]) {
          seen[w] = 1;
          queue.push_back(w);
        }
    }
    return seen;
  };
  c.reach = bfs(rsn.primary_ins(), c.succ);
  c.coreach = bfs(rsn.primary_outs(), c.pred);
  return c;
}

// Cone queries (provably-constant / satisfiable / forced-value, exact for
// cones of any size) go through Ctx::oracle — see lint/cone_oracle.hpp.

// ---------------------------------------------------------------------------
// Rsn rules.  A rule pushes bare diagnostics (node/ctrl/message/hint/
// witness); the runner stamps rule id and severity afterwards.

using RsnRuleFn = void (*)(const Ctx&, std::vector<Diagnostic>&);

void rule_no_primary_in(const Ctx& c, std::vector<Diagnostic>& out) {
  if (c.rsn.primary_ins().empty())
    out.push_back({.message = "RSN has no primary scan-in port",
                   .hint = "add a primary scan-in as the dataflow root"});
}

void rule_no_primary_out(const Ctx& c, std::vector<Diagnostic>& out) {
  if (c.rsn.primary_outs().empty())
    out.push_back({.message = "RSN has no primary scan-out port",
                   .hint = "add a primary scan-out as the dataflow sink"});
}

void rule_dangling_scan_in(const Ctx& c, std::vector<Diagnostic>& out) {
  for (NodeId id = 0; id < c.rsn.num_nodes(); ++id) {
    const RsnNode& n = c.rsn.node(id);
    if (n.kind != NodeKind::kSegment && n.kind != NodeKind::kPrimaryOut)
      continue;
    if (!node_ok(c, n.scan_in))
      out.push_back(
          {.node = id,
           .message = n.scan_in == kInvalidNode
                          ? "node has no scan-in driver"
                          : strprintf("scan-in reference %u is out of range",
                                      n.scan_in),
           .hint = "wire the scan-in to an existing upstream element"});
  }
}

void rule_dangling_mux_input(const Ctx& c, std::vector<Diagnostic>& out) {
  for (NodeId id = 0; id < c.rsn.num_nodes(); ++id) {
    const RsnNode& n = c.rsn.node(id);
    if (!n.is_mux()) continue;
    for (int k = 0; k < 2; ++k) {
      const NodeId in = n.mux_in[static_cast<std::size_t>(k)];
      if (!node_ok(c, in))
        out.push_back(
            {.node = id,
             .message = in == kInvalidNode
                            ? strprintf("mux input %d is dangling", k)
                            : strprintf("mux input %d reference %u is out of "
                                        "range",
                                        k, in),
             .hint = "wire both mux data inputs"});
    }
  }
}

void rule_primary_out_drives(const Ctx& c, std::vector<Diagnostic>& out) {
  for (NodeId id = 0; id < c.rsn.num_nodes(); ++id) {
    for (NodeId from : c.pred[id]) {
      if (c.rsn.node(from).kind == NodeKind::kPrimaryOut)
        out.push_back({.node = id,
                       .message = strprintf(
                           "driven by primary scan-out '%s' (scan-outs are "
                           "dataflow sinks)",
                           c.names[from].c_str()),
                       .hint = "tap the scan-out's driver instead",
                       .witness = {from}});
    }
  }
}

void rule_mux_identical_inputs(const Ctx& c, std::vector<Diagnostic>& out) {
  for (NodeId id = 0; id < c.rsn.num_nodes(); ++id) {
    const RsnNode& n = c.rsn.node(id);
    if (n.is_mux() && n.mux_in[0] != kInvalidNode &&
        n.mux_in[0] == n.mux_in[1])
      out.push_back({.node = id,
                     .message = "both mux inputs are the same node; the mux "
                                "adds no routing redundancy",
                     .hint = "drop the mux or wire a distinct second input"});
  }
}

void rule_scan_cycle(const Ctx& c, std::vector<Diagnostic>& out) {
  // Iterative DFS with cycle reconstruction (cf. DataflowGraph::find_cycle)
  // over the guarded successor lists.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  const std::size_t n = c.rsn.num_nodes();
  std::vector<std::uint8_t> color(n, kWhite);
  std::vector<NodeId> parent(n, kInvalidNode);
  for (NodeId start = 0; start < n; ++start) {
    if (color[start] != kWhite) continue;
    std::vector<std::pair<NodeId, std::size_t>> stack{{start, 0}};
    color[start] = kGray;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      if (i < c.succ[v].size()) {
        const NodeId s = c.succ[v][i++];
        if (color[s] == kGray) {
          std::vector<NodeId> cycle{s};
          for (NodeId u = v; u != s; u = parent[u]) cycle.push_back(u);
          std::reverse(cycle.begin() + 1, cycle.end());
          out.push_back(
              {.node = s,
               .message = strprintf("scan interconnect cycle through %zu "
                                    "node(s); the scan dataflow must be a DAG",
                                    cycle.size()),
               .hint = "re-route one interconnect of the witness cycle",
               .witness = std::move(cycle)});
          return;  // one witness is enough; fixing it may dissolve the rest
        }
        if (color[s] == kWhite) {
          color[s] = kGray;
          parent[s] = v;
          stack.push_back({s, 0});
        }
      } else {
        color[v] = kBlack;
        stack.pop_back();
      }
    }
  }
}

void rule_unreachable_scan(const Ctx& c, std::vector<Diagnostic>& out) {
  for (NodeId id = 0; id < c.rsn.num_nodes(); ++id) {
    if (c.rsn.node(id).kind == NodeKind::kPrimaryIn) continue;
    if (!c.reach[id])
      out.push_back({.node = id,
                     .message = "dead scan element: not reachable from any "
                                "primary scan-in",
                     .hint = "connect it to the scan dataflow or remove it"});
  }
}

void rule_dead_end_scan(const Ctx& c, std::vector<Diagnostic>& out) {
  for (NodeId id = 0; id < c.rsn.num_nodes(); ++id) {
    if (c.rsn.node(id).kind == NodeKind::kPrimaryOut) continue;
    if (!c.coreach[id])
      out.push_back({.node = id,
                     .message = "scan data through this element never reaches "
                                "a primary scan-out",
                     .hint = "route the element (transitively) into a sink"});
  }
}

void rule_unused_primary_in(const Ctx& c, std::vector<Diagnostic>& out) {
  for (NodeId id : c.rsn.primary_ins()) {
    if (c.succ[id].empty())
      out.push_back({.node = id,
                     .message = "primary scan-in drives nothing",
                     .hint = "remove the port or attach consumers"});
  }
}

void rule_invalid_ctrl_ref(const Ctx& c, std::vector<Diagnostic>& out) {
  const auto check = [&](NodeId id, CtrlRef r, const char* what) {
    if (!ctrl_ok(c, r))
      out.push_back({.node = id,
                     .ctrl = r,
                     .message = strprintf("%s references control expression "
                                          "%d outside the pool",
                                          what, r)});
  };
  for (NodeId id = 0; id < c.rsn.num_nodes(); ++id) {
    const RsnNode& n = c.rsn.node(id);
    if (n.is_segment()) {
      check(id, n.select, "select");
      check(id, n.cap_dis, "capture-disable");
      check(id, n.up_dis, "update-disable");
    }
    if (n.is_mux()) check(id, n.addr, "mux address");
  }
}

void rule_shadow_ref_no_shadow(const Ctx& c, std::vector<Diagnostic>& out) {
  for (CtrlRef r = 0; static_cast<std::size_t>(r) < c.pool.size(); ++r) {
    const CtrlNode& n = c.pool.node(r);
    if (n.op != CtrlOp::kShadowBit) continue;
    if (!node_ok(c, n.seg)) {
      out.push_back({.ctrl = r,
                     .message = strprintf("shadow-bit atom references node %u "
                                          "outside the netlist",
                                          n.seg)});
    } else if (!c.rsn.node(n.seg).is_segment()) {
      out.push_back({.node = n.seg,
                     .ctrl = r,
                     .message = "shadow-bit atom references a non-segment "
                                "node (only segments own shadow registers)"});
    } else if (!c.rsn.node(n.seg).has_shadow) {
      out.push_back({.node = n.seg,
                     .ctrl = r,
                     .message = "control logic reads the shadow register of "
                                "a segment that has none",
                     .hint = "declare the segment with a shadow register"});
    }
  }
}

void rule_shadow_ref_out_of_range(const Ctx& c, std::vector<Diagnostic>& out) {
  for (CtrlRef r = 0; static_cast<std::size_t>(r) < c.pool.size(); ++r) {
    const CtrlNode& n = c.pool.node(r);
    if (n.op != CtrlOp::kShadowBit || !node_ok(c, n.seg)) continue;
    const RsnNode& seg = c.rsn.node(n.seg);
    if (!seg.is_segment() || !seg.has_shadow) continue;
    if (n.bit >= seg.length)
      out.push_back(
          {.node = n.seg,
           .ctrl = r,
           .message = strprintf("control reads shadow bit %d of the %d-bit "
                                "segment",
                                static_cast<int>(n.bit), seg.length)});
    if (n.replica >= seg.shadow_replicas)
      out.push_back(
          {.node = n.seg,
           .ctrl = r,
           .message = strprintf("control reads shadow replica %d but the "
                                "segment has %d replica(s)",
                                static_cast<int>(n.replica),
                                seg.shadow_replicas),
           .hint = "triplicate the shadow latches (set_shadow_replicas)"});
  }
}

void rule_const_false_select(const Ctx& c, std::vector<Diagnostic>& out) {
  for (NodeId id = 0; id < c.rsn.num_nodes(); ++id) {
    const RsnNode& n = c.rsn.node(id);
    if (!n.is_segment() || !ctrl_ok(c, n.select)) continue;
    std::string how;
    if (n.select == kCtrlFalse) {
      how = "is the constant FALSE";
    } else if (c.oracle->provably_const(n.select, false)) {
      how = "evaluates to FALSE under every control assignment";
    }
    if (!how.empty())
      out.push_back({.node = id,
                     .ctrl = n.select,
                     .message = "select predicate " + how +
                                ": the segment can never capture or update "
                                "on any scan path",
                     .hint = "derive the select from reachable control "
                             "state"});
  }
}

void rule_select_self_loop(const Ctx& c, std::vector<Diagnostic>& out) {
  for (NodeId id = 0; id < c.rsn.num_nodes(); ++id) {
    const RsnNode& n = c.rsn.node(id);
    if (!n.is_segment() || !n.has_shadow || !ctrl_ok(c, n.select)) continue;
    const auto cone = cone_of(c.pool, n.select);
    std::map<CtrlRef, int> forced;
    for (CtrlRef r : cone) {
      const CtrlNode& a = c.pool.node(r);
      if (a.op == CtrlOp::kShadowBit && a.seg == id && a.bit < 64)
        forced[r] = static_cast<int>((n.reset_shadow >> a.bit) & 1);
    }
    if (forced.empty()) continue;  // select independent of own shadow
    if (c.oracle->provably_const(n.select, false, forced))
      out.push_back(
          {.node = id,
           .ctrl = n.select,
           .message = "select depends on the segment's own shadow register "
                      "and is FALSE in the reset configuration: the segment "
                      "can never bootstrap its own select (§III-E "
                      "bootstrap deadlock)",
           .hint = "seed reset_shadow so the select is asserted, or gate "
                   "the select with independent control"});
  }
}

void rule_const_mux_addr(const Ctx& c, std::vector<Diagnostic>& out) {
  for (NodeId id = 0; id < c.rsn.num_nodes(); ++id) {
    const RsnNode& n = c.rsn.node(id);
    if (!n.is_mux() || !ctrl_ok(c, n.addr)) continue;
    int stuck = -1;
    if (n.addr == kCtrlFalse || n.addr == kCtrlTrue) {
      stuck = n.addr == kCtrlTrue ? 1 : 0;
    } else if (c.oracle->provably_const(n.addr, false)) {
      stuck = 0;
    } else if (c.oracle->provably_const(n.addr, true)) {
      stuck = 1;
    }
    if (stuck >= 0)
      out.push_back(
          {.node = id,
           .ctrl = n.addr,
           .message = strprintf("mux address is constant %d: input %d is "
                                "never forwarded (its cone may be dead)",
                                stuck, 1 - stuck),
           .hint = "steer the address from a writable shadow register"});
  }
}

void rule_const_true_disable(const Ctx& c, std::vector<Diagnostic>& out) {
  for (NodeId id = 0; id < c.rsn.num_nodes(); ++id) {
    const RsnNode& n = c.rsn.node(id);
    if (!n.is_segment()) continue;
    const auto check = [&](CtrlRef r, const char* what) {
      if (!ctrl_ok(c, r) || r == kCtrlFalse) return;  // kCtrlFalse = inactive
      std::string how;
      if (r == kCtrlTrue) {
        how = "is the constant TRUE";
      } else if (c.oracle->provably_const(r, true)) {
        how = "evaluates to TRUE under every control assignment";
      }
      if (!how.empty())
        out.push_back({.node = id,
                       .ctrl = r,
                       .message = strprintf("%s-disable ", what) + how +
                                  ": the segment's system register is "
                                  "permanently cut off from that operation",
                       .hint = "derive the disable from configurable control "
                               "state (or drop it)"});
    };
    check(n.cap_dis, "capture");
    check(n.up_dis, "update");
  }
}

void rule_tmr_voter_shape(const Ctx& c, std::vector<Diagnostic>& out) {
  for (CtrlRef r = 0; static_cast<std::size_t>(r) < c.pool.size(); ++r) {
    const CtrlNode& n = c.pool.node(r);
    if (n.op != CtrlOp::kMaj3) continue;
    if (n.kid[0] == n.kid[1] || n.kid[0] == n.kid[2] ||
        n.kid[1] == n.kid[2]) {
      out.push_back({.ctrl = r,
                     .message = "TMR voter inputs are not pairwise distinct; "
                                "a single fault flips the majority",
                     .hint = "vote three physically distinct replicas"});
      continue;
    }
    bool all_shadow = true;
    for (CtrlRef k : n.kid)
      all_shadow = all_shadow && ctrl_ok(c, k) &&
                   c.pool.node(k).op == CtrlOp::kShadowBit;
    if (!all_shadow) continue;
    const CtrlNode& a = c.pool.node(n.kid[0]);
    const CtrlNode& b = c.pool.node(n.kid[1]);
    const CtrlNode& d = c.pool.node(n.kid[2]);
    if (a.seg != b.seg || a.seg != d.seg || a.bit != b.bit || a.bit != d.bit)
      out.push_back({.node = node_ok(c, a.seg) ? a.seg : kInvalidNode,
                     .ctrl = r,
                     .message = "TMR voter mixes shadow bits of different "
                                "registers/bits instead of voting three "
                                "replicas of one address bit (§III-E-3)",
                     .hint = "vote replicas 0/1/2 of the same shadow bit"});
  }
}

void rule_tmr_voter_shared(const Ctx& c, std::vector<Diagnostic>& out) {
  std::map<CtrlRef, std::vector<NodeId>> users;
  for (NodeId id = 0; id < c.rsn.num_nodes(); ++id) {
    const RsnNode& n = c.rsn.node(id);
    if (n.is_mux() && ctrl_ok(c, n.addr) &&
        c.pool.node(n.addr).op == CtrlOp::kMaj3)
      users[n.addr].push_back(id);
  }
  for (const auto& [voter, muxes] : users) {
    if (muxes.size() < 2) continue;
    out.push_back(
        {.node = muxes[0],
         .ctrl = voter,
         .message = strprintf("one TMR voter drives %zu mux addresses; the "
                              "voter output becomes a shared single point "
                              "of failure",
                              muxes.size()),
         .hint = "instantiate one voter per driven mux (salted interning)",
         .witness = muxes});
  }
}

void rule_select_term_stale(const Ctx& c, std::vector<Diagnostic>& out) {
  for (const Rsn::SelectTerm& t : c.rsn.select_terms()) {
    if (!node_ok(c, t.seg) || !c.rsn.node(t.seg).is_segment()) {
      out.push_back({.node = t.seg,
                     .message = "hardened-select term attached to a node "
                                "that is not a segment"});
      continue;
    }
    if (!ctrl_ok(c, t.term))
      out.push_back({.node = t.seg,
                     .ctrl = t.term,
                     .message = "hardened-select term expression is outside "
                                "the control pool"});
    if (!node_ok(c, t.succ) ||
        std::find(c.succ[t.seg].begin(), c.succ[t.seg].end(), t.succ) ==
            c.succ[t.seg].end())
      out.push_back(
          {.node = t.seg,
           .message = strprintf("hardened-select term asserts successor "
                                "direction '%s' which is not a scan-fanout "
                                "successor of the segment",
                                node_ok(c, t.succ) ? c.names[t.succ].c_str()
                                                   : "?"),
           .hint = "regenerate the select metadata after editing the "
                   "netlist",
           .witness = {t.succ}});
  }
}

void rule_select_term_coverage(const Ctx& c, std::vector<Diagnostic>& out) {
  if (c.rsn.select_terms().empty()) return;  // not a hardened RSN
  std::map<NodeId, std::set<NodeId>> covered;
  for (const Rsn::SelectTerm& t : c.rsn.select_terms())
    if (node_ok(c, t.seg)) covered[t.seg].insert(t.succ);
  for (NodeId id = 0; id < c.rsn.num_nodes(); ++id) {
    if (!c.rsn.node(id).is_segment() || c.succ[id].empty()) continue;
    const auto it = covered.find(id);
    std::vector<NodeId> missing;
    for (NodeId s : c.succ[id])
      if (it == covered.end() || !it->second.count(s)) missing.push_back(s);
    if (!missing.empty())
      out.push_back(
          {.node = id,
           .message = strprintf("hardened select covers only %zu of %zu "
                                "scan-fanout directions; uncovered detours "
                                "cannot be fault-analyzed (§IV-C)",
                                c.succ[id].size() - missing.size(),
                                c.succ[id].size()),
           .hint = "emit one OR-term per successor direction",
           .witness = std::move(missing)});
  }
}

void rule_select_term_unsat(const Ctx& c, std::vector<Diagnostic>& out) {
  for (const Rsn::SelectTerm& t : c.rsn.select_terms()) {
    if (!ctrl_ok(c, t.term)) continue;  // select-term-stale reports it
    std::string how;
    if (t.term == kCtrlFalse) {
      how = "is the constant FALSE";
    } else if (c.oracle->provably_const(t.term, false)) {
      how = "is unsatisfiable";
    }
    if (!how.empty())
      out.push_back(
          {.node = t.seg,
           .ctrl = t.term,
           .message = strprintf("hardened-select term for direction '%s' ",
                                node_ok(c, t.succ) ? c.names[t.succ].c_str()
                                                   : "?") +
                      how +
                      ": that detour can never be activated (§III-E-2)",
           .hint = "regenerate the hardened select terms",
           .witness = {t.succ}});
  }
}

// --- post-synthesis (fault-tolerance profile) rules ------------------------

void rule_ft_single_scan_port(const Ctx& c, std::vector<Diagnostic>& out) {
  if (c.rsn.primary_ins().size() < 2)
    out.push_back({.message = "only one primary scan-in: a fault near the "
                              "root can lock out the whole network "
                              "(§III-E-4 expects duplicated ports)",
                   .hint = "synthesize with duplicate_ports enabled"});
  if (c.rsn.primary_outs().size() < 2)
    out.push_back({.message = "only one primary scan-out: a fault in the "
                              "final mux cascade blinds all observation "
                              "(§III-E-4 expects duplicated ports)",
                   .hint = "synthesize with duplicate_ports enabled"});
}

void rule_ft_untriplicated_address(const Ctx& c,
                                   std::vector<Diagnostic>& out) {
  for (NodeId id = 0; id < c.rsn.num_nodes(); ++id) {
    const RsnNode& n = c.rsn.node(id);
    if (!n.is_mux() || !ctrl_ok(c, n.addr)) continue;
    if (c.pool.node(n.addr).op == CtrlOp::kShadowBit)
      out.push_back(
          {.node = id,
           .ctrl = n.addr,
           .message = "mux address is a bare shadow bit without a TMR "
                      "voter; a single stuck-at locks the route "
                      "(§III-E-3)",
           .hint = "triplicate the shadow latches and vote per mux"});
  }
}

void rule_ft_spof(const Ctx& c, std::vector<Diagnostic>& out) {
  // Menger audit (paper §III-C) of the netlist's *abstract* dataflow graph:
  // scan muxes are contracted away (an address fault still forwards one of
  // the two data inputs, so a mux is not a total-failure vertex in the
  // paper's fault model), and so are the address registers the synthesis
  // splices in series (accepted local single points of failure by
  // construction).  On the contracted graph the mux redundancy shows up as
  // in-degree >= 2 and connectivity_violations() means what §III-C means.
  if (!c.refs_ok) return;
  const std::size_t n = c.rsn.num_nodes();
  const auto exempt = [&](NodeId v) {
    const RsnNode& node = c.rsn.node(v);
    return node.is_mux() ||
           (node.is_segment() && node.role == SegRole::kAddressRegister);
  };
  // expand(v): the non-exempt vertices feeding v through exempt chains.
  std::vector<std::vector<NodeId>> memo(n);
  std::vector<std::uint8_t> state(n, 0);  // 0 = new, 1 = visiting, 2 = done
  const std::function<const std::vector<NodeId>&(NodeId)> expand =
      [&](NodeId v) -> const std::vector<NodeId>& {
    if (state[v] == 2) return memo[v];
    if (state[v] == 1) return memo[v];  // cycle: scan-cycle reports it
    state[v] = 1;
    std::vector<NodeId> srcs;
    if (!exempt(v)) {
      srcs.push_back(v);
    } else {
      for (NodeId d : c.pred[v])
        for (NodeId s : expand(d)) srcs.push_back(s);
      std::sort(srcs.begin(), srcs.end());
      srcs.erase(std::unique(srcs.begin(), srcs.end()), srcs.end());
    }
    memo[v] = std::move(srcs);
    state[v] = 2;
    return memo[v];
  };
  std::vector<DfEdge> edges;
  for (NodeId v = 0; v < n; ++v) {
    if (exempt(v)) continue;
    for (NodeId d : c.pred[v])
      for (NodeId s : expand(d)) edges.push_back({s, v});
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  const DataflowGraph g = DataflowGraph::from_edges(
      n, std::move(edges), c.rsn.primary_ins(), c.rsn.primary_outs());
  if (g.has_cycle()) return;  // already reported by scan-cycle
  for (NodeId v : g.connectivity_violations()) {
    if (exempt(v) || !c.rsn.node(v).is_segment()) continue;
    out.push_back(
        {.node = v,
         .message = "segment lacks two vertex-disjoint root->v and v->sink "
                    "paths: one element fault can disconnect it (§III-C)",
         .hint = "augment connectivity around this segment"});
  }
}

struct RsnRule {
  RuleInfo info;
  RsnRuleFn fn;
};

const std::vector<RsnRule>& rsn_rule_table() {
  static const std::vector<RsnRule> kRules = {
      {{"no-primary-in", "RSN must have a primary scan-in root",
        Severity::kError, RuleStage::kStructure, "SII-A"},
       rule_no_primary_in},
      {{"no-primary-out", "RSN must have a primary scan-out sink",
        Severity::kError, RuleStage::kStructure, "SII-A"},
       rule_no_primary_out},
      {{"dangling-scan-in", "segments and scan-outs need a scan-in driver",
        Severity::kError, RuleStage::kStructure, "SII-A"},
       rule_dangling_scan_in},
      {{"dangling-mux-input", "scan muxes need two wired data inputs",
        Severity::kError, RuleStage::kStructure, "SII-A"},
       rule_dangling_mux_input},
      {{"primary-out-drives", "primary scan-outs are sinks, not drivers",
        Severity::kError, RuleStage::kStructure, "SII-A"},
       rule_primary_out_drives},
      {{"mux-identical-inputs", "mux data inputs must be distinct",
        Severity::kError, RuleStage::kStructure, "SIII-D"},
       rule_mux_identical_inputs},
      {{"scan-cycle", "scan interconnect must be a DAG (cycle witness)",
        Severity::kError, RuleStage::kStructure, "SIII-B"},
       rule_scan_cycle},
      {{"unreachable-scan", "dead scan segment: unreachable from scan-in",
        Severity::kWarning, RuleStage::kStructure, "SIII-B"},
       rule_unreachable_scan},
      {{"dead-end-scan", "element never reaches a primary scan-out",
        Severity::kWarning, RuleStage::kStructure, "SIII-B"},
       rule_dead_end_scan},
      {{"unused-primary-in", "primary scan-in without consumers",
        Severity::kWarning, RuleStage::kStructure, "SII-A"},
       rule_unused_primary_in},
      {{"invalid-ctrl-ref", "control references must stay inside the pool",
        Severity::kError, RuleStage::kControl, "SII-A"},
       rule_invalid_ctrl_ref},
      {{"shadow-ref-no-shadow", "control may only read existing shadows",
        Severity::kError, RuleStage::kControl, "SII-A"},
       rule_shadow_ref_no_shadow},
      {{"shadow-ref-out-of-range", "shadow bit/replica indices in range",
        Severity::kError, RuleStage::kControl, "SII-A"},
       rule_shadow_ref_out_of_range},
      {{"const-false-select", "select predicates must be satisfiable",
        Severity::kWarning, RuleStage::kControl, "SII-B"},
       rule_const_false_select},
      {{"select-self-loop", "select must not deadlock on its own shadow",
        Severity::kWarning, RuleStage::kControl, "SIII-E"},
       rule_select_self_loop},
      {{"const-mux-addr", "mux addresses must be steerable",
        Severity::kWarning, RuleStage::kControl, "SII-B"},
       rule_const_mux_addr},
      {{"const-true-disable", "capture/update disables must be escapable",
        Severity::kWarning, RuleStage::kControl, "SII-B"},
       rule_const_true_disable},
      {{"tmr-voter-shape", "Maj3 voters vote three distinct replicas",
        Severity::kError, RuleStage::kSynthesis, "SIII-E-3"},
       rule_tmr_voter_shape},
      {{"tmr-voter-shared", "one voter instance per driven mux",
        Severity::kWarning, RuleStage::kSynthesis, "SIII-E-3"},
       rule_tmr_voter_shared},
      {{"select-term-stale", "hardened-select terms must match the netlist",
        Severity::kError, RuleStage::kSynthesis, "SIII-E-2"},
       rule_select_term_stale},
      {{"select-term-coverage", "hardened select covers every direction",
        Severity::kWarning, RuleStage::kSynthesis, "SIV-C"},
       rule_select_term_coverage},
      {{"select-term-unsat", "hardened-select terms must be satisfiable",
        Severity::kWarning, RuleStage::kSynthesis, "SIII-E-2"},
       rule_select_term_unsat},
      {{"ft-single-scan-port", "fault-tolerant RSNs duplicate scan ports",
        Severity::kWarning, RuleStage::kFaultTolerance, "SIII-E-4"},
       rule_ft_single_scan_port},
      {{"ft-untriplicated-address", "mux addresses voted under TMR",
        Severity::kWarning, RuleStage::kFaultTolerance, "SIII-E-3"},
       rule_ft_untriplicated_address},
      {{"ft-spof", "segments keep two vertex-disjoint access paths",
        Severity::kWarning, RuleStage::kFaultTolerance, "SIII-C"},
       rule_ft_spof},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// DataflowGraph rules.

using GraphRuleFn = void (*)(const DataflowGraph&, std::vector<Diagnostic>&);

void rule_df_no_root(const DataflowGraph& g, std::vector<Diagnostic>& out) {
  if (g.roots().empty())
    out.push_back({.message = "dataflow graph has no root vertex"});
}

void rule_df_no_sink(const DataflowGraph& g, std::vector<Diagnostic>& out) {
  if (g.sinks().empty())
    out.push_back({.message = "dataflow graph has no sink vertex"});
}

void rule_df_cycle(const DataflowGraph& g, std::vector<Diagnostic>& out) {
  auto cycle = g.find_cycle();
  if (!cycle.empty())
    out.push_back({.node = cycle.front(),
                   .message = strprintf("dataflow graph contains a cycle "
                                        "through %zu vertices",
                                        cycle.size()),
                   .witness = std::move(cycle)});
}

void rule_df_root_in_edges(const DataflowGraph& g,
                           std::vector<Diagnostic>& out) {
  for (NodeId r : g.roots())
    if (r < g.num_vertices() && !g.predecessors(r).empty())
      out.push_back({.node = r,
                     .message = "root vertex has incoming edges",
                     .hint = "roots model primary scan-ins (in-degree 0)"});
}

void rule_df_sink_out_edges(const DataflowGraph& g,
                            std::vector<Diagnostic>& out) {
  for (NodeId s : g.sinks())
    if (s < g.num_vertices() && !g.successors(s).empty())
      out.push_back({.node = s,
                     .message = "sink vertex has outgoing edges",
                     .hint = "sinks model primary scan-outs (out-degree 0)"});
}

void rule_df_unreachable(const DataflowGraph& g,
                         std::vector<Diagnostic>& out) {
  std::vector<char> seen(g.num_vertices(), 0);
  std::vector<NodeId> queue;
  for (NodeId r : g.roots())
    if (r < g.num_vertices() && !seen[r]) {
      seen[r] = 1;
      queue.push_back(r);
    }
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    for (NodeId s : g.successors(v))
      if (!seen[s]) {
        seen[s] = 1;
        queue.push_back(s);
      }
  }
  for (NodeId v = 0; v < g.num_vertices(); ++v)
    if (!seen[v])
      out.push_back({.node = v,
                     .message = "vertex unreachable from every root"});
}

struct GraphRule {
  RuleInfo info;
  GraphRuleFn fn;
};

const std::vector<GraphRule>& graph_rule_table() {
  static const std::vector<GraphRule> kRules = {
      {{"df-no-root", "dataflow graph needs a root", Severity::kError,
        RuleStage::kDataflow, "SIII-B"},
       rule_df_no_root},
      {{"df-no-sink", "dataflow graph needs a sink", Severity::kError,
        RuleStage::kDataflow, "SIII-B"},
       rule_df_no_sink},
      {{"df-cycle", "dataflow graph must be acyclic", Severity::kError,
        RuleStage::kDataflow, "SIII-B"},
       rule_df_cycle},
      {{"df-root-in-edges", "roots have in-degree 0", Severity::kWarning,
        RuleStage::kDataflow, "SIII-B"},
       rule_df_root_in_edges},
      {{"df-sink-out-edges", "sinks have out-degree 0", Severity::kWarning,
        RuleStage::kDataflow, "SIII-B"},
       rule_df_sink_out_edges},
      {{"df-unreachable", "all vertices reachable from roots",
        Severity::kWarning, RuleStage::kDataflow, "SIII-B"},
       rule_df_unreachable},
  };
  return kRules;
}

const std::vector<RuleInfo>& augment_rule_infos() {
  static const std::vector<RuleInfo> kInfos = {
      {"aug-edge-range", "augmenting edges stay inside the vertex set",
       Severity::kError, RuleStage::kAugment, "SIII-D"},
      {"aug-cycle", "the augmented graph stays acyclic", Severity::kError,
       RuleStage::kAugment, "SIII-D (eq. 5)"},
      {"aug-level-backward", "augmenting edges run level-forward",
       Severity::kWarning, RuleStage::kAugment, "SIII-D"},
      {"aug-low-in-degree", "in-degree >= 2 where satisfiable",
       Severity::kWarning, RuleStage::kAugment, "SIII-D (eq. 3)"},
      {"aug-low-out-degree", "out-degree >= 2 where satisfiable",
       Severity::kWarning, RuleStage::kAugment, "SIII-D (eq. 4)"},
  };
  return kInfos;
}

const RuleInfo& augment_info(const char* id) {
  for (const RuleInfo& info : augment_rule_infos())
    if (info.id == id) return info;
  FTRSN_CHECK_MSG(false, strprintf("unknown augment rule '%s'", id));
}

void stamp(std::vector<Diagnostic>& out, std::size_t from,
           const RuleInfo& info, Severity severity) {
  for (std::size_t i = from; i < out.size(); ++i) {
    out[i].rule = info.id;
    out[i].severity = severity;
  }
}

}  // namespace

const std::vector<RuleInfo>& LintRunner::rules() {
  static const std::vector<RuleInfo> kAll = [] {
    std::vector<RuleInfo> all;
    for (const RsnRule& r : rsn_rule_table()) all.push_back(r.info);
    for (const GraphRule& r : graph_rule_table()) all.push_back(r.info);
    for (const RuleInfo& r : augment_rule_infos()) all.push_back(r);
    return all;
  }();
  return kAll;
}

namespace {

bool rule_enabled(const LintOptions& opts, const RuleInfo& info) {
  const auto it = opts.enabled.find(info.id);
  if (it != opts.enabled.end()) return it->second;
  if (info.stage == RuleStage::kFaultTolerance) return opts.ft_rules;
  return true;
}

Severity rule_severity(const LintOptions& opts, const RuleInfo& info) {
  const auto it = opts.severity.find(info.id);
  return it != opts.severity.end() ? it->second : info.severity;
}

}  // namespace

std::vector<Diagnostic> LintRunner::run(const Rsn& rsn) const {
  const Ctx ctx = make_ctx(rsn, options_);
  std::vector<Diagnostic> out;
  for (const RsnRule& rule : rsn_rule_table()) {
    if (!rule_enabled(options_, rule.info)) continue;
    const std::size_t from = out.size();
    rule.fn(ctx, out);
    stamp(out, from, rule.info, rule_severity(options_, rule.info));
  }
  return out;
}

std::vector<Diagnostic> LintRunner::run(const DataflowGraph& g) const {
  std::vector<Diagnostic> out;
  for (const GraphRule& rule : graph_rule_table()) {
    if (!rule_enabled(options_, rule.info)) continue;
    const std::size_t from = out.size();
    rule.fn(g, out);
    stamp(out, from, rule.info, rule_severity(options_, rule.info));
  }
  return out;
}

std::vector<Diagnostic> lint_rsn(const Rsn& rsn, const LintOptions& opts) {
  OBS_SPAN("lint.rsn");
  return LintRunner(opts).run(rsn);
}

std::vector<Diagnostic> lint_dataflow(const DataflowGraph& g,
                                      const LintOptions& opts) {
  return LintRunner(opts).run(g);
}

std::vector<Diagnostic> lint_augmentation(
    const DataflowGraph& g, const std::vector<DfEdge>& added,
    const std::vector<bool>& target_allowed) {
  detail::count_full_recompute();  // AugmentLintCache is the incremental path
  std::vector<Diagnostic> out;
  const std::size_t n = g.num_vertices();

  // aug-edge-range: aggregate every out-of-range endpoint.
  std::vector<DfEdge> valid;
  {
    const std::size_t from = out.size();
    for (std::size_t i = 0; i < added.size(); ++i) {
      const DfEdge& e = added[i];
      if (e.from >= n || e.to >= n) {
        out.push_back({.message = strprintf(
                           "augmenting edge #%zu (%u -> %u) leaves the "
                           "%zu-vertex graph",
                           i, e.from, e.to, n)});
      } else {
        valid.push_back(e);
      }
    }
    const RuleInfo& info = augment_info("aug-edge-range");
    stamp(out, from, info, info.severity);
  }

  std::vector<DfEdge> combined = g.edges();
  combined.insert(combined.end(), valid.begin(), valid.end());
  const DataflowGraph augmented = DataflowGraph::from_edges(
      n, std::move(combined), g.roots(), g.sinks());

  {
    const std::size_t from = out.size();
    auto cycle = augmented.find_cycle();
    if (!cycle.empty())
      out.push_back({.node = cycle.front(),
                     .message = strprintf("augmenting edges close a cycle "
                                          "through %zu vertices (eq. 5 "
                                          "violated)",
                                          cycle.size()),
                     .hint = "drop or re-anchor one edge of the witness",
                     .witness = std::move(cycle)});
    const RuleInfo& info = augment_info("aug-cycle");
    stamp(out, from, info, info.severity);
  }

  if (g.has_cycle()) return out;  // level structure undefined below
  const std::vector<int> level = g.levels();

  {
    const std::size_t from = out.size();
    for (const DfEdge& e : valid)
      if (level[e.to] < level[e.from])
        out.push_back(
            {.node = e.from,
             .message = strprintf("augmenting edge %u -> %u runs level-"
                                  "backward (%d -> %d); potential edges "
                                  "must satisfy level(j) >= level(i)",
                                  e.from, e.to, level[e.from], level[e.to]),
             .witness = {e.from, e.to}});
    const RuleInfo& info = augment_info("aug-level-backward");
    stamp(out, from, info, info.severity);
  }

  // Degree targets (eqs. 3-4): required degree is capped by what the level
  // structure (and the target policy) makes satisfiable in principle.
  std::vector<char> is_root(n, 0), is_sink(n, 0);
  for (NodeId r : g.roots()) is_root[r] = 1;
  for (NodeId s : g.sinks()) is_sink[s] = 1;
  const auto allowed = [&](NodeId v) {
    return target_allowed.empty() ||
           (v < target_allowed.size() && target_allowed[v]);
  };
  {
    const std::size_t from = out.size();
    for (NodeId v = 0; v < n; ++v) {
      if (is_root[v] || !allowed(v)) continue;
      int possible = 0;
      for (NodeId u = 0; u < n && possible < 2; ++u)
        if (u != v && !is_sink[u] && level[u] <= level[v]) ++possible;
      const int indeg = static_cast<int>(augmented.predecessors(v).size());
      if (indeg < std::min(2, possible))
        out.push_back(
            {.node = v,
             .message = strprintf("in-degree %d after augmentation (eq. 3 "
                                  "requires 2; %d source(s) available)",
                                  indeg, possible)});
    }
    const RuleInfo& info = augment_info("aug-low-in-degree");
    stamp(out, from, info, info.severity);
  }
  {
    const std::size_t from = out.size();
    for (NodeId v = 0; v < n; ++v) {
      if (is_sink[v]) continue;
      int possible = 0;
      for (NodeId u = 0; u < n && possible < 2; ++u)
        if (u != v && !is_root[u] && level[u] >= level[v] &&
            (allowed(u) || std::find(g.successors(v).begin(),
                                     g.successors(v).end(),
                                     u) != g.successors(v).end()))
          ++possible;
      const int outdeg = static_cast<int>(augmented.successors(v).size());
      if (outdeg < std::min(2, possible))
        out.push_back(
            {.node = v,
             .message = strprintf("out-degree %d after augmentation (eq. 4 "
                                  "requires 2; %d target(s) available)",
                                  outdeg, possible)});
    }
    const RuleInfo& info = augment_info("aug-low-out-degree");
    stamp(out, from, info, info.severity);
  }
  return out;
}

}  // namespace ftrsn::lint
