// Incremental augmentation lint for the connectivity-augmentation loop.
//
// The augmentation engines (src/augment/) explore many candidate edge sets
// that differ by a handful of edges; re-running lint_augmentation from
// scratch on each one rebuilds the augmented DataflowGraph, recomputes the
// topological levels and rescans all O(V^2) source/target pairs for the
// degree caps every time.  AugmentLintCache computes that base-graph state
// once and then tracks the candidate set by single-edge deltas:
//
//   * levels, root/sink flags and the per-vertex degree caps of eqs. 3-4
//     depend only on the base graph — computed once (caps lazily);
//   * in/out-degree tallies are maintained per add_edge/remove_edge;
//   * cycle detection exploits that base edges strictly increase the
//     topological level, so a cycle in the augmented graph must use an
//     added edge with level(to) <= level(from) ("suspect" edges).  While
//     no suspect edge is present, acyclicity is certain and no DFS runs at
//     all; the engines' in-loop query (same_level_cycle) only ever walks
//     the few same-level added edges.
//
// diagnostics() reproduces the from-scratch lint_augmentation(g, added(),
// target_allowed) byte for byte — same rules, order, messages and
// witnesses — which the differential tests (and the opt-in
// check_with_full_recompute mode) verify.
#pragma once

#include <vector>

#include "graph/dataflow.hpp"
#include "lint/diagnostic.hpp"

namespace ftrsn::lint {

class AugmentLintCache {
 public:
  /// Analyzes the base graph once (counts as one LintStats full recompute).
  /// `check_with_full_recompute` re-runs the from-scratch lint_augmentation
  /// on every diagnostics() call and aborts on any disagreement — the
  /// checking-oracle mode used by the differential tests.
  explicit AugmentLintCache(const DataflowGraph& g,
                            std::vector<bool> target_allowed = {},
                            bool check_with_full_recompute = false);

  /// Appends one candidate edge (out-of-range endpoints are tolerated and
  /// reported by aug-edge-range, mirroring lint_augmentation).
  void add_edge(const DfEdge& e);

  /// Removes the most recently added occurrence of `e`; no-op when absent.
  void remove_edge(const DfEdge& e);

  /// Rewrites the candidate set to exactly `edges` (in that order) via the
  /// longest-common-prefix suffix diff — consecutive engine iterates share
  /// long prefixes, so this is a few deltas, not a rebuild.
  void assign(const std::vector<DfEdge>& edges);

  /// The current candidate set, in insertion order.
  const std::vector<DfEdge>& added() const { return added_; }

  /// Vertex witness of a directed cycle among the *same-level* added edges
  /// (the only edges that can close a cycle when every added edge runs
  /// level-forward); empty when none.  Matches what find_cycle would report
  /// on the subgraph of exactly those edges.  Only meaningful for an
  /// acyclic base graph (returns empty otherwise).
  std::vector<NodeId> same_level_cycle() const;

  /// The same diagnostic list lint_augmentation(g, added(), target_allowed)
  /// would produce, from the cached/incremental state.
  std::vector<Diagnostic> diagnostics() const;

 private:
  void ensure_degree_caps() const;
  std::vector<NodeId> combined_find_cycle() const;

  const DataflowGraph& g_;
  std::vector<bool> allowed_;
  bool check_;
  std::size_t n_;
  bool base_cyclic_;

  std::vector<int> level_;        ///< base levels (empty when base_cyclic_)
  std::vector<char> is_root_, is_sink_;
  std::vector<int> base_in_, base_out_;  ///< base degree incl. duplicates

  std::vector<DfEdge> added_;     ///< candidate set, insertion order
  std::vector<int> add_in_, add_out_;  ///< added-edge degree tallies
  std::size_t suspect_count_ = 0; ///< added edges with level(to) <= level(from)

  /// Degree caps of eqs. 3-4 (min'd against 2), lazily computed: the
  /// engines only use the cycle queries and never pay the O(V^2) scan.
  mutable bool caps_ready_ = false;
  mutable std::vector<int> possible_in_, possible_out_;
};

}  // namespace ftrsn::lint
