#include "lint/sarif.hpp"

#include <unordered_map>

#include "lint/lint.hpp"
#include "util/common.hpp"

namespace ftrsn::lint {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strprintf("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

/// SARIF result levels: "note" | "warning" | "error".
const char* sarif_level(Severity s) {
  switch (s) {
    case Severity::kInfo: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "none";
}

std::string node_label(NodeId id, const std::vector<std::string>& names) {
  if (id == kInvalidNode) return "?";
  if (id < names.size() && !names[id].empty()) return names[id];
  return strprintf("n%u", id);
}

}  // namespace

std::string to_sarif(const std::vector<SarifArtifact>& artifacts) {
  const std::vector<RuleInfo>& rules = LintRunner::rules();
  std::unordered_map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rules.size(); ++i) rule_index[rules[i].id] = i;

  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"rsn-lint\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/ftrsn\",\n"
      "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleInfo& r = rules[i];
    out += strprintf(
        "            {\"id\": \"%s\", \"shortDescription\": {\"text\": "
        "\"%s\"}, \"defaultConfiguration\": {\"level\": \"%s\"}, "
        "\"properties\": {\"paperRef\": \"%s\"}}%s\n",
        escape(r.id).c_str(), escape(r.summary).c_str(),
        sarif_level(r.severity), escape(r.paper_ref).c_str(),
        i + 1 < rules.size() ? "," : "");
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"artifacts\": [\n";
  for (std::size_t a = 0; a < artifacts.size(); ++a) {
    out += strprintf("        {\"location\": {\"uri\": \"%s\"}}%s\n",
                     escape(artifacts[a].uri).c_str(),
                     a + 1 < artifacts.size() ? "," : "");
  }
  out +=
      "      ],\n"
      "      \"results\": [";
  bool first = true;
  for (std::size_t a = 0; a < artifacts.size(); ++a) {
    const SarifArtifact& art = artifacts[a];
    for (std::size_t di = 0; di < art.diags.size(); ++di) {
      const Diagnostic& d = art.diags[di];
      out += first ? "\n" : ",\n";
      first = false;
      out += strprintf(
          "        {\n"
          "          \"ruleId\": \"%s\",\n",
          escape(d.rule).c_str());
      const auto it = rule_index.find(d.rule);
      if (it != rule_index.end())
        out += strprintf("          \"ruleIndex\": %zu,\n", it->second);
      std::string text = d.message;
      if (!d.hint.empty()) text += " (hint: " + d.hint + ")";
      out += strprintf(
          "          \"level\": \"%s\",\n"
          "          \"message\": {\"text\": \"%s\"},\n",
          sarif_level(d.severity), escape(text).c_str());
      out += strprintf(
          "          \"locations\": [{\n"
          "            \"physicalLocation\": {\"artifactLocation\": "
          "{\"uri\": \"%s\", \"index\": %zu}}",
          escape(art.uri).c_str(), a);
      if (d.node != kInvalidNode || d.ctrl != kCtrlInvalid) {
        out += ",\n            \"logicalLocations\": [";
        bool first_loc = true;
        if (d.node != kInvalidNode) {
          out += strprintf(
              "{\"name\": \"%s\", \"kind\": \"member\"}",
              escape(node_label(d.node, art.names)).c_str());
          first_loc = false;
        }
        if (d.ctrl != kCtrlInvalid) {
          out += strprintf("%s{\"name\": \"e%d\", \"kind\": \"member\"}",
                           first_loc ? "" : ", ", d.ctrl);
        }
        out += "]";
      }
      out += "\n          }]";
      if (!d.witness.empty()) {
        out += ",\n          \"properties\": {\"witness\": [";
        for (std::size_t w = 0; w < d.witness.size(); ++w)
          out += strprintf(
              "%s\"%s\"", w ? ", " : "",
              escape(node_label(d.witness[w], art.names)).c_str());
        out += "]}";
      }
      const auto fit = art.fixes.find(di);
      if (fit != art.fixes.end()) {
        const SarifFix& fix = fit->second;
        out += strprintf(
            ",\n          \"fixes\": [{\n"
            "            \"description\": {\"text\": \"%s\"},\n"
            "            \"artifactChanges\": [{\n"
            "              \"artifactLocation\": {\"uri\": \"%s\", "
            "\"index\": %zu},\n"
            "              \"replacements\": [",
            escape(fix.description).c_str(), escape(art.uri).c_str(), a);
        for (std::size_t r = 0; r < fix.replacements.size(); ++r) {
          const SarifReplacement& rep = fix.replacements[r];
          // A whole-line region: [line:1, line+1:1).  Deletions carry no
          // insertedContent; replacements re-insert the new line.
          out += strprintf(
              "%s\n                {\"deletedRegion\": {\"startLine\": %d, "
              "\"startColumn\": 1, \"endLine\": %d, \"endColumn\": 1}",
              r ? "," : "", rep.line, rep.line + 1);
          if (!rep.delete_line)
            out += strprintf(", \"insertedContent\": {\"text\": \"%s\"}",
                             escape(rep.text + "\n").c_str());
          out += "}";
        }
        out +=
            "\n              ]\n"
            "            }]\n"
            "          }]";
      }
      out += "\n        }";
    }
  }
  out += first ? "]\n" : "\n      ]\n";
  out +=
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace ftrsn::lint
