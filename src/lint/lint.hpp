// ftrsn_lint — rule-based static analysis of reconfigurable scan networks.
//
// The analyzer checks the structural invariants the synthesis flow (paper
// §III–IV) silently assumes — DAG-ness of the scan interconnect, unique
// drivers, reachable/co-reachable scan elements, well-formed control
// expressions, TMR voter shape, hardened-select term coverage — and reports
// *all* violations as a list of Diagnostics instead of aborting on the
// first one.  Three entry points cover the three core IRs:
//
//   * lint_rsn(rsn)          — structural Rsn + its hash-consed ctrl pool;
//                              also covers post-synthesis output when
//                              LintOptions::ft_rules is set (§III-E checks);
//   * lint_dataflow(g)       — DataflowGraph sanity (roots, sinks, cycles);
//   * lint_augmentation(...) — augmentation postconditions (paper eqs. 2-5):
//                              acyclicity, level-forward edges, in/out-
//                              degree >= 2 where satisfiable.
//
// Rules are registered in a fixed order and iterate nodes in id order, so
// the diagnostic list is deterministic for a given input.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "graph/dataflow.hpp"
#include "lint/cone_oracle.hpp"
#include "lint/diagnostic.hpp"
#include "rsn/rsn.hpp"

namespace ftrsn::lint {

/// Which IR a rule inspects (used to group the catalog in reports).
enum class RuleStage : std::uint8_t {
  kStructure,  ///< scan interconnect netlist
  kControl,    ///< hash-consed control expression pool
  kSynthesis,  ///< TMR voters / hardened-select metadata
  kFaultTolerance,  ///< post-synthesis §III-E requirements (opt-in)
  kDataflow,   ///< DataflowGraph invariants
  kAugment,    ///< augmentation postconditions
};

struct RuleInfo {
  std::string id;          ///< stable kebab-case rule id, e.g. "scan-cycle"
  std::string summary;     ///< one-line description
  Severity severity;       ///< default severity
  RuleStage stage;
  std::string paper_ref;   ///< paper section motivating the rule
};

struct LintOptions {
  /// Enable the post-synthesis fault-tolerance rules (stage
  /// kFaultTolerance): duplicated ports, TMR address coverage, residual
  /// single points of failure.  Off by default — they are meaningless (or
  /// expensive) on pre-synthesis networks.
  bool ft_rules = false;

  /// Per-rule enable override (id -> on/off); unknown ids are ignored.
  std::map<std::string, bool> enabled;

  /// Per-rule severity override (id -> severity).
  std::map<std::string, Severity> severity;

  /// How the cone-based control rules decide their queries (cone_oracle.hpp):
  /// exhaustive enumeration, SAT, or the auto crossover.  Both backends are
  /// exact — there is no cone size above which analysis is skipped.
  ConeBackend cone_backend = ConeBackend::kAuto;

  /// kAuto crossover: cones with at most this many free atoms are decided
  /// by exhaustive enumeration, larger ones by the SAT solver.
  std::size_t cone_max_atoms = 10;
};

class LintRunner {
 public:
  LintRunner() = default;
  explicit LintRunner(LintOptions options) : options_(std::move(options)) {}

  /// The full rule catalog (all stages), in execution order.
  static const std::vector<RuleInfo>& rules();

  /// Runs all enabled Rsn rules; deterministic diagnostic order.
  std::vector<Diagnostic> run(const Rsn& rsn) const;

  /// Runs the DataflowGraph rules.
  std::vector<Diagnostic> run(const DataflowGraph& g) const;

  const LintOptions& options() const { return options_; }

 private:
  LintOptions options_;
};

/// Convenience wrappers around LintRunner.
std::vector<Diagnostic> lint_rsn(const Rsn& rsn, const LintOptions& opts = {});
std::vector<Diagnostic> lint_dataflow(const DataflowGraph& g,
                                      const LintOptions& opts = {});

/// Checks the result of connectivity augmentation: the augmented graph
/// (g + added) must stay acyclic, every added edge must run level-forward
/// w.r.t. the *original* levels, and every vertex must reach in/out-degree
/// >= 2 where the level structure (and `target_allowed`, if non-empty)
/// makes that satisfiable in principle.
std::vector<Diagnostic> lint_augmentation(
    const DataflowGraph& g, const std::vector<DfEdge>& added,
    const std::vector<bool>& target_allowed = {});

}  // namespace ftrsn::lint
