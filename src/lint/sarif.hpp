// SARIF 2.1.0 emitter for lint diagnostics.
//
// SARIF (Static Analysis Results Interchange Format, OASIS standard) is
// the exchange format code hosts and editors understand natively, so
// rsn-lint findings render inline next to the .rsn sources in review UIs.
// One log contains one run of the "rsn-lint" driver; the complete rule
// catalog is embedded (stable ruleIndex per finding) and every result
// carries the artifact URI of the analyzed network plus a logical location
// naming the offending node, since .rsn nodes have no line numbers.
//
// The output is deterministic for a given input: stable key order, stable
// rule indices, two-space indentation, trailing newline — suitable for
// golden-file testing and for diffing CI uploads.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"

namespace ftrsn::lint {

/// One whole-line textual edit inside a SARIF fix: the 1-based source line
/// `line` is either deleted outright (`delete_line`) or replaced with
/// `text` (one line, no trailing newline).  Both render as a SARIF
/// `replacement` whose deletedRegion spans [line:1, line+1:1).
struct SarifReplacement {
  int line = 0;
  bool delete_line = false;
  std::string text;
};

/// A verified auto-repair for one diagnostic (SARIF 2.1.0 `fix` object).
/// Replacements are kept in ascending line order; each fix is
/// self-contained with respect to the original artifact text.
struct SarifFix {
  std::string description;
  std::vector<SarifReplacement> replacements;
};

/// One analyzed artifact: its URI and the diagnostics found in it.
struct SarifArtifact {
  std::string uri;                 ///< e.g. "designs/u226_ft.rsn"
  std::vector<Diagnostic> diags;
  std::vector<std::string> names;  ///< NodeId -> display name (may be empty)
  /// Diagnostic index (into `diags`) -> verified repair, as produced by
  /// lint::sarif_fix_records (lint/fix.hpp).
  std::map<std::size_t, SarifFix> fixes;
};

/// Renders a complete SARIF 2.1.0 log (version + one run) for the given
/// artifacts.  Diagnostics keep their per-artifact order.
std::string to_sarif(const std::vector<SarifArtifact>& artifacts);

}  // namespace ftrsn::lint
