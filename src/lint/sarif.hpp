// SARIF 2.1.0 emitter for lint diagnostics.
//
// SARIF (Static Analysis Results Interchange Format, OASIS standard) is
// the exchange format code hosts and editors understand natively, so
// rsn-lint findings render inline next to the .rsn sources in review UIs.
// One log contains one run of the "rsn-lint" driver; the complete rule
// catalog is embedded (stable ruleIndex per finding) and every result
// carries the artifact URI of the analyzed network plus a logical location
// naming the offending node, since .rsn nodes have no line numbers.
//
// The output is deterministic for a given input: stable key order, stable
// rule indices, two-space indentation, trailing newline — suitable for
// golden-file testing and for diffing CI uploads.
#pragma once

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"

namespace ftrsn::lint {

/// One analyzed artifact: its URI and the diagnostics found in it.
struct SarifArtifact {
  std::string uri;                 ///< e.g. "designs/u226_ft.rsn"
  std::vector<Diagnostic> diags;
  std::vector<std::string> names;  ///< NodeId -> display name (may be empty)
};

/// Renders a complete SARIF 2.1.0 log (version + one run) for the given
/// artifacts.  Diagnostics keep their per-artifact order.
std::string to_sarif(const std::vector<SarifArtifact>& artifacts);

}  // namespace ftrsn::lint
