#include "lint/fix.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "fault/faults.hpp"
#include "fault/metric_engine.hpp"
#include "lint/cone_oracle.hpp"
#include "obs/obs.hpp"
#include "util/common.hpp"

namespace ftrsn::lint {

namespace {

// ---------------------------------------------------------------------------
// Workspace: a mutable copy of the network under repair.  Within one fix
// pass node ids and select-term indices are stable — removal only marks the
// `removed` / `term_removed` masks and rewires mutate fields in place, so
// the pass's diagnostics keep addressing the right nodes.  Between passes
// compact() renumbers into a fresh Rsn and composes the provenance maps.

struct Workspace {
  Rsn rsn;
  std::vector<char> removed;        ///< per node
  std::vector<char> term_removed;   ///< per select term
  std::vector<NodeId> to_orig;      ///< workspace id -> original id
  std::vector<std::size_t> term_to_orig;
  std::vector<CtrlRef> ctrl_to_orig;  ///< pool ref -> original ref

  bool present(NodeId id) const {
    return id != kInvalidNode && id < rsn.num_nodes() && removed[id] == 0;
  }
};

Workspace make_workspace(const Rsn& input) {
  Workspace ws;
  ws.rsn = input;
  ws.removed.assign(input.num_nodes(), 0);
  ws.term_removed.assign(input.select_terms().size(), 0);
  ws.to_orig.resize(input.num_nodes());
  std::iota(ws.to_orig.begin(), ws.to_orig.end(), NodeId{0});
  ws.term_to_orig.resize(input.select_terms().size());
  std::iota(ws.term_to_orig.begin(), ws.term_to_orig.end(), std::size_t{0});
  ws.ctrl_to_orig.resize(input.ctrl().size());
  std::iota(ws.ctrl_to_orig.begin(), ws.ctrl_to_orig.end(), CtrlRef{0});
  return ws;
}

/// Calls `fn(consumer, input)` for every present node whose scan input
/// references `target`; input is -1 for scan_in, 0/1 for mux data inputs.
template <typename Fn>
void for_each_consumer(const Workspace& ws, NodeId target, const Fn& fn) {
  for (NodeId id = 0; id < ws.rsn.num_nodes(); ++id) {
    if (!ws.present(id)) continue;
    const RsnNode& n = ws.rsn.node(id);
    if (n.kind == NodeKind::kSegment || n.kind == NodeKind::kPrimaryOut) {
      if (n.scan_in == target) fn(id, -1);
    } else if (n.is_mux()) {
      if (n.mux_in[0] == target) fn(id, 0);
      if (n.mux_in[1] == target) fn(id, 1);
    }
  }
}

bool has_present_consumer(const Workspace& ws, NodeId target) {
  bool found = false;
  for_each_consumer(ws, target, [&](NodeId, int) { found = true; });
  return found;
}

std::size_t count_present(const Workspace& ws, const std::vector<NodeId>& ids) {
  std::size_t n = 0;
  for (const NodeId id : ids)
    if (ws.present(id)) ++n;
  return n;
}

/// True if any non-removed select term references `node` as its successor
/// direction (bypassing such a mux would silently invalidate hardened-
/// select metadata, so those muxes are left to the human).
bool term_references(const Workspace& ws, NodeId node) {
  const auto& terms = ws.rsn.select_terms();
  for (std::size_t t = 0; t < terms.size(); ++t)
    if (ws.term_removed[t] == 0 &&
        (terms[t].succ == node || terms[t].seg == node))
      return true;
  return false;
}

// ---------------------------------------------------------------------------
// Verification: scan-path guard maps.
//
// For a scan element's input we resolve the chain of muxes in front of it
// into a map {source -> guard}: every non-mux node that can drive the
// element, guarded by the conjunction/disjunction of mux-address conditions
// under which it is forwarded.  The guards are built in a private
// verification pool `vp` (translated from the workspace pool), so guards
// produced from the pre- and post-rewrite networks are directly comparable:
// hash-consing makes syntactic equality a ref comparison, and the residual
// pairs are decided exactly by a ConeOracle SAT/enumeration query.

constexpr std::uint64_t kSrcDangling = ~std::uint64_t{0};

std::uint64_t cycle_src_key(NodeId id) {
  return (std::uint64_t{1} << 40) | static_cast<std::uint64_t>(id);
}

using GuardMap = std::map<std::uint64_t, CtrlRef>;

/// Translates workspace-pool expressions into the verification pool.  The
/// memo is shared between the pre- and post-rewrite resolutions (the two
/// workspaces share identical pool content within a pass).
class CtrlTranslator {
 public:
  CtrlTranslator(const CtrlPool& src, CtrlPool& dst) : src_(src), dst_(dst) {}

  CtrlRef xlat(CtrlRef r) {
    if (r < 0 || static_cast<std::size_t>(r) >= src_.size())
      return dst_.port_select_input(kUnknownAtom);  // broken ref: opaque atom
    const auto it = memo_.find(r);
    if (it != memo_.end()) return it->second;
    const CtrlNode& n = src_.node(r);
    CtrlRef out = kCtrlFalse;
    switch (n.op) {
      case CtrlOp::kConst: out = dst_.constant(n.bit != 0); break;
      case CtrlOp::kEnable: out = dst_.enable_input(); break;
      case CtrlOp::kPortSel: out = dst_.port_select_input(n.bit); break;
      case CtrlOp::kShadowBit:
        out = dst_.shadow_bit(n.seg, n.bit, n.replica);
        break;
      case CtrlOp::kNot: out = dst_.mk_not(xlat(n.kid[0]), n.bit); break;
      case CtrlOp::kAnd:
        out = dst_.mk_and(xlat(n.kid[0]), xlat(n.kid[1]), n.bit);
        break;
      case CtrlOp::kOr:
        out = dst_.mk_or(xlat(n.kid[0]), xlat(n.kid[1]), n.bit);
        break;
      case CtrlOp::kMaj3:
        out = dst_.mk_maj3(xlat(n.kid[0]), xlat(n.kid[1]), xlat(n.kid[2]),
                           n.bit);
        break;
    }
    memo_.emplace(r, out);
    return out;
  }

  const std::map<CtrlRef, CtrlRef>& memo() const { return memo_; }

 private:
  static constexpr std::uint16_t kUnknownAtom = 0xFFFE;
  const CtrlPool& src_;
  CtrlPool& dst_;
  std::map<CtrlRef, CtrlRef> memo_;
};

/// Light boolean construction with constant folding, so that trivially
/// equal guards compare equal by ref and never reach the solver.
CtrlRef mk_and2(CtrlPool& vp, CtrlRef a, CtrlRef b) {
  if (a == kCtrlTrue) return b;
  if (b == kCtrlTrue) return a;
  if (a == kCtrlFalse || b == kCtrlFalse) return kCtrlFalse;
  return vp.mk_and(a, b);
}
CtrlRef mk_or2(CtrlPool& vp, CtrlRef a, CtrlRef b) {
  if (a == kCtrlFalse) return b;
  if (b == kCtrlFalse) return a;
  if (a == kCtrlTrue || b == kCtrlTrue) return kCtrlTrue;
  return vp.mk_or(a, b);
}
CtrlRef mk_not2(CtrlPool& vp, CtrlRef a) {
  if (a == kCtrlTrue) return kCtrlFalse;
  if (a == kCtrlFalse) return kCtrlTrue;
  return vp.mk_not(a);
}

class PathResolver {
 public:
  PathResolver(const Workspace& ws, CtrlPool& vp, CtrlTranslator& xlat)
      : ws_(ws), vp_(vp), xlat_(xlat), gray_(ws.rsn.num_nodes(), 0) {}

  GuardMap resolve(NodeId driver) {
    bool tainted = false;
    return resolve_rec(driver, &tainted);
  }

 private:
  void merge_into(GuardMap& out, const GuardMap& m, CtrlRef cond) {
    for (const auto& [key, guard] : m) {
      const CtrlRef g = mk_and2(vp_, guard, cond);
      auto [it, fresh] = out.try_emplace(key, g);
      if (!fresh) it->second = mk_or2(vp_, it->second, g);
    }
  }

  GuardMap resolve_rec(NodeId d, bool* tainted) {
    if (!ws_.present(d)) return {{kSrcDangling, kCtrlTrue}};
    const RsnNode& n = ws_.rsn.node(d);
    if (!n.is_mux()) return {{static_cast<std::uint64_t>(d), kCtrlTrue}};
    if (gray_[d] != 0) {
      // Scan cycle: the mux stands in as a pseudo-source for whatever
      // comes around the loop; results touching it are not memoized.
      *tainted = true;
      return {{cycle_src_key(d), kCtrlTrue}};
    }
    const auto it = memo_.find(d);
    if (it != memo_.end()) return it->second;
    gray_[d] = 1;
    bool t = false;
    const CtrlRef addr = xlat_.xlat(n.addr);
    const GuardMap m0 = resolve_rec(n.mux_in[0], &t);
    const GuardMap m1 = resolve_rec(n.mux_in[1], &t);
    gray_[d] = 0;
    GuardMap out;
    merge_into(out, m0, mk_not2(vp_, addr));
    merge_into(out, m1, addr);
    if (t)
      *tainted = true;
    else
      memo_.emplace(d, out);
    return out;
  }

  const Workspace& ws_;
  CtrlPool& vp_;
  CtrlTranslator& xlat_;
  std::vector<char> gray_;
  std::map<NodeId, GuardMap> memo_;
};

/// The full pre/post equivalence check for one candidate rewrite.  Returns
/// an empty string on success, a reason on rejection.
std::string verify_rewrite(const Workspace& before, const Workspace& after,
                           const LintOptions& lint_opts) {
  const Rsn& rb = before.rsn;
  const Rsn& ra = after.rsn;
  if (ra.num_nodes() != rb.num_nodes()) return "node table size changed";

  // 1. Structural frame: removal is monotone and survivors keep every
  //    field except their scan inputs.  The fix vocabulary never edits
  //    control expressions, so expression refs must be identical (a
  //    stronger requirement than equivalence, checked for exactly that
  //    reason: any drift here means a broken rewrite primitive).
  for (NodeId id = 0; id < ra.num_nodes(); ++id) {
    if (after.removed[id] != 0) continue;
    if (before.removed[id] != 0) return "rewrite resurrected a removed node";
    const RsnNode& a = ra.node(id);
    const RsnNode& b = rb.node(id);
    if (a.kind != b.kind || a.name != b.name || a.length != b.length ||
        a.has_shadow != b.has_shadow ||
        a.shadow_replicas != b.shadow_replicas ||
        a.reset_shadow != b.reset_shadow || a.role != b.role)
      return strprintf("scalar fields of '%s' changed", b.name.c_str());
    if (a.select != b.select || a.cap_dis != b.cap_dis ||
        a.up_dis != b.up_dis || a.addr != b.addr)
      return strprintf("control expressions of '%s' changed", b.name.c_str());
  }

  // 2. Select terms: surviving terms are untouched and reference surviving
  //    nodes; a term may only disappear together with its segment or its
  //    successor direction.
  const auto& terms = ra.select_terms();
  for (std::size_t t = 0; t < terms.size(); ++t) {
    if (after.term_removed[t] != 0) {
      if (before.term_removed[t] != 0) continue;
      if (after.present(terms[t].seg) && after.present(terms[t].succ))
        return strprintf("select term %zu dropped but both ends survive", t);
      continue;
    }
    if (before.term_removed[t] != 0) return "rewrite resurrected a term";
    if (!after.present(terms[t].seg) || !after.present(terms[t].succ))
      return strprintf("surviving select term %zu references a removed node",
                       t);
  }

  // 3. Shadow closure: no surviving control cone may read a shadow bit of
  //    a removed segment.
  const CtrlPool& pool = rb.ctrl();
  const auto cone_reads_removed = [&](CtrlRef r) -> NodeId {
    if (r < 0 || static_cast<std::size_t>(r) >= pool.size())
      return kInvalidNode;
    for (const CtrlRef q : cone_of(pool, r)) {
      const CtrlNode& n = pool.node(q);
      if (n.op == CtrlOp::kShadowBit && n.seg != kInvalidNode &&
          n.seg < ra.num_nodes() && after.removed[n.seg] != 0)
        return n.seg;
    }
    return kInvalidNode;
  };
  for (NodeId id = 0; id < ra.num_nodes(); ++id) {
    if (after.removed[id] != 0) continue;
    const RsnNode& n = ra.node(id);
    NodeId bad = kInvalidNode;
    if (n.is_segment()) {
      bad = cone_reads_removed(n.select);
      if (bad == kInvalidNode) bad = cone_reads_removed(n.cap_dis);
      if (bad == kInvalidNode) bad = cone_reads_removed(n.up_dis);
    } else if (n.is_mux()) {
      bad = cone_reads_removed(n.addr);
    }
    if (bad != kInvalidNode)
      return strprintf("control of '%s' reads shadow of removed '%s'",
                       n.name.c_str(), rb.node(bad).name.c_str());
  }
  for (std::size_t t = 0; t < terms.size(); ++t) {
    if (after.term_removed[t] != 0) continue;
    const NodeId bad = cone_reads_removed(terms[t].term);
    if (bad != kInvalidNode)
      return strprintf("select term %zu reads shadow of removed '%s'", t,
                       rb.node(bad).name.c_str());
  }

  // 4. Data-path guard maps: for every surviving segment / primary-out,
  //    the set of possible scan-in sources and the address condition
  //    guarding each source must be equivalent.  Syntactically identical
  //    maps (the common case away from the rewrite site) short-circuit;
  //    the rest goes to the oracle.
  CtrlPool vp;
  CtrlTranslator xlat(pool, vp);
  PathResolver res_before(before, vp, xlat);
  PathResolver res_after(after, vp, xlat);
  struct SatCheck {
    CtrlRef diff;
    std::string what;
  };
  std::vector<SatCheck> checks;
  for (NodeId id = 0; id < ra.num_nodes(); ++id) {
    if (after.removed[id] != 0) continue;
    const RsnNode& n = ra.node(id);
    if (n.kind != NodeKind::kSegment && n.kind != NodeKind::kPrimaryOut)
      continue;
    const GuardMap gb = res_before.resolve(rb.node(id).scan_in);
    const GuardMap ga = res_after.resolve(n.scan_in);
    if (gb == ga) continue;
    // Union of source keys; an absent source has guard FALSE.
    std::vector<std::uint64_t> keys;
    for (const auto& [k, g] : gb) keys.push_back(k);
    for (const auto& [k, g] : ga)
      if (gb.find(k) == gb.end()) keys.push_back(k);
    for (const std::uint64_t key : keys) {
      const auto ib = gb.find(key);
      const auto ia = ga.find(key);
      const CtrlRef b = ib == gb.end() ? kCtrlFalse : ib->second;
      const CtrlRef a = ia == ga.end() ? kCtrlFalse : ia->second;
      if (a == b) continue;
      const CtrlRef diff = mk_or2(vp, mk_and2(vp, b, mk_not2(vp, a)),
                                  mk_and2(vp, mk_not2(vp, b), a));
      if (diff == kCtrlFalse) continue;
      std::string src = key == kSrcDangling ? std::string("<dangling>")
                        : (key >> 40) != 0
                            ? strprintf("<cycle via %s>",
                                        rb.node(static_cast<NodeId>(
                                                    key & 0xFFFFFFFFu))
                                            .name.c_str())
                            : rb.node(static_cast<NodeId>(key)).name;
      checks.push_back(
          {diff, strprintf("scan path of '%s': source '%s' guard changed",
                           n.name.c_str(), src.c_str())});
    }
  }
  if (!checks.empty()) {
    static obs::Counter sat_checks("lint.fix.sat_checks");
    ConeOracle oracle(vp, lint_opts.cone_backend, lint_opts.cone_max_atoms);
    for (const SatCheck& c : checks) {
      sat_checks.add();
      if (!oracle.provably_const(c.diff, false)) return c.what;
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// Rewrite primitives.  Each applies to a candidate workspace copy; the
// caller verifies the copy against the current workspace before committing.
// All return a skip reason ("" = the rewrite went through) and record
// removed nodes / rewires / dropped terms in original coordinates.

void drop_terms_touching(Workspace& ws, const std::vector<NodeId>& removed,
                         AppliedFix& fix) {
  std::vector<char> gone(ws.rsn.num_nodes(), 0);
  for (const NodeId id : removed) gone[id] = 1;
  const auto& terms = ws.rsn.select_terms();
  for (std::size_t t = 0; t < terms.size(); ++t) {
    if (ws.term_removed[t] != 0) continue;
    if (gone[terms[t].seg] != 0 || gone[terms[t].succ] != 0) {
      ws.term_removed[t] = 1;
      fix.removed_terms.push_back(ws.term_to_orig[t]);
    }
  }
}

/// Rewires every present consumer of `from` to `to` (skipping consumers in
/// `skip`, the nodes the fix removes).  With `miswire` a deliberately
/// wrong target is substituted — the test hook proving that verification
/// rejects broken rewrites.
void rewire_consumers(Workspace& ws, NodeId from, NodeId to,
                      const std::vector<NodeId>& skip, bool miswire,
                      AppliedFix& fix) {
  NodeId target = to;
  if (miswire) {
    for (NodeId id = 0; id < ws.rsn.num_nodes(); ++id) {
      if (!ws.present(id) || id == to || id == from) continue;
      if (ws.rsn.node(id).kind == NodeKind::kPrimaryOut) continue;
      if (std::find(skip.begin(), skip.end(), id) != skip.end()) continue;
      target = id;
      break;
    }
  }
  std::vector<std::pair<NodeId, int>> sites;
  for_each_consumer(ws, from, [&](NodeId c, int input) {
    if (std::find(skip.begin(), skip.end(), c) != skip.end()) return;
    sites.emplace_back(c, input);
  });
  for (const auto& [c, input] : sites) {
    if (input < 0)
      ws.rsn.set_scan_in(c, target);
    else
      ws.rsn.set_mux_in(c, input, target);
    fix.rewires.push_back({ws.to_orig[c], input, ws.to_orig[target]});
  }
}

std::string apply_mux_bypass(Workspace& ws, NodeId m, NodeId keep,
                             bool miswire, AppliedFix& fix) {
  if (!ws.present(m) || !ws.rsn.node(m).is_mux()) return "mux already gone";
  if (keep == m) return "kept: mux forwards itself (degenerate self-loop)";
  if (!ws.present(keep)) return "kept: forwarded input is dangling";
  if (ws.rsn.node(keep).kind == NodeKind::kPrimaryOut)
    return "kept: forwarded input is a primary scan-out";
  if (term_references(ws, m))
    return "kept: referenced by hardened-select terms";
  ws.removed[m] = 1;
  fix.removed.push_back(ws.to_orig[m]);
  rewire_consumers(ws, m, keep, {m}, miswire, fix);
  drop_terms_touching(ws, {m}, fix);
  return {};
}

std::string apply_drop_primary_in(Workspace& ws, NodeId pi, AppliedFix& fix) {
  if (!ws.present(pi)) return "port already gone";
  if (ws.rsn.node(pi).kind != NodeKind::kPrimaryIn) return "not a primary in";
  if (has_present_consumer(ws, pi)) return "kept: port gained consumers";
  if (count_present(ws, ws.rsn.primary_ins()) <= 1)
    return "kept: last primary scan-in";
  if (term_references(ws, pi)) return "kept: referenced by select terms";
  ws.removed[pi] = 1;
  fix.removed.push_back(ws.to_orig[pi]);
  drop_terms_touching(ws, {pi}, fix);
  return {};
}

std::string apply_prune(Workspace& ws, const std::vector<NodeId>& closure,
                        AppliedFix& fix) {
  for (const NodeId id : closure) {
    if (!ws.present(id)) continue;
    ws.removed[id] = 1;
    fix.removed.push_back(ws.to_orig[id]);
  }
  if (fix.removed.empty()) return "cone already gone";
  drop_terms_touching(ws, closure, fix);
  return {};
}

// ---------------------------------------------------------------------------
// Dead-cone candidate set.  The removable set S is the largest subset of
// the flagged nodes that is (a) successor-closed — no surviving node keeps
// a scan reference to a removed one — and (b) shadow-closed — no surviving
// control cone or surviving select term reads a shadow bit of a removed
// segment.  Nodes flagged dead that feed live logic drop out of S and stay
// diagnosed (the engine records a skip with the reason).

std::vector<char> prune_candidate_set(const Workspace& ws,
                                      const std::vector<NodeId>& flagged) {
  const std::size_t n = ws.rsn.num_nodes();
  std::vector<char> cand(n, 0);
  for (const NodeId id : flagged)
    if (ws.present(id)) cand[id] = 1;

  // Never remove the last primary port of either direction.
  const auto keep_one = [&](const std::vector<NodeId>& ports) {
    NodeId survivor = kInvalidNode;
    for (const NodeId p : ports)
      if (ws.present(p) && cand[p] == 0) survivor = p;
    if (survivor != kInvalidNode) return;
    for (const NodeId p : ports)
      if (ws.present(p)) {
        cand[p] = 0;
        return;
      }
  };
  keep_one(ws.rsn.primary_ins());
  keep_one(ws.rsn.primary_outs());

  const CtrlPool& pool = ws.rsn.ctrl();
  bool changed = true;
  while (changed) {
    changed = false;
    // Successor closure.
    for (NodeId id = 0; id < n; ++id) {
      if (cand[id] == 0) continue;
      bool live_consumer = false;
      for_each_consumer(ws, id, [&](NodeId c, int) {
        if (cand[c] == 0) live_consumer = true;
      });
      if (live_consumer) {
        cand[id] = 0;
        changed = true;
      }
    }
    // Shadow closure: shadow bits of candidate segments must not be read
    // by surviving control logic or surviving terms (terms touching a
    // candidate node are dropped with the fix and do not count).
    const auto scan_expr = [&](CtrlRef r) {
      if (r < 0 || static_cast<std::size_t>(r) >= pool.size()) return;
      for (const CtrlRef q : cone_of(pool, r)) {
        const CtrlNode& cn = pool.node(q);
        if (cn.op == CtrlOp::kShadowBit && cn.seg != kInvalidNode &&
            cn.seg < n && cand[cn.seg] != 0) {
          cand[cn.seg] = 0;
          changed = true;
        }
      }
    };
    for (NodeId id = 0; id < n; ++id) {
      if (!ws.present(id) || cand[id] != 0) continue;
      const RsnNode& node = ws.rsn.node(id);
      if (node.is_segment()) {
        scan_expr(node.select);
        scan_expr(node.cap_dis);
        scan_expr(node.up_dis);
      } else if (node.is_mux()) {
        scan_expr(node.addr);
      }
    }
    const auto& terms = ws.rsn.select_terms();
    for (std::size_t t = 0; t < terms.size(); ++t) {
      if (ws.term_removed[t] != 0) continue;
      if (terms[t].seg < n && cand[terms[t].seg] != 0) continue;
      if (terms[t].succ < n && cand[terms[t].succ] != 0) continue;
      scan_expr(terms[t].term);
    }
  }
  return cand;
}

/// Forward closure of `start` within the candidate set: the node plus all
/// transitive present consumers (all inside S by successor-closure), which
/// makes every per-diagnostic prune fix self-contained.
std::vector<NodeId> prune_closure(const Workspace& ws,
                                  const std::vector<char>& cand,
                                  NodeId start) {
  std::vector<NodeId> out;
  if (cand[start] == 0) return out;
  std::vector<char> seen(ws.rsn.num_nodes(), 0);
  std::vector<NodeId> queue{start};
  seen[start] = 1;
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    out.push_back(v);
    for_each_consumer(ws, v, [&](NodeId c, int) {
      if (seen[c] == 0 && cand[c] != 0) {
        seen[c] = 1;
        queue.push_back(c);
      }
    });
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Compaction: renumber the survivors into a fresh Rsn, garbage-collecting
// the control pool (only expressions referenced by survivors are
// translated), and compose the provenance maps.

CtrlRef compact_xlat(const CtrlPool& src, CtrlPool& dst,
                     const std::vector<NodeId>& old2new,
                     std::map<CtrlRef, CtrlRef>& memo, CtrlRef r) {
  if (r < 0 || static_cast<std::size_t>(r) >= src.size()) return kCtrlInvalid;
  const auto it = memo.find(r);
  if (it != memo.end()) return it->second;
  const CtrlNode& n = src.node(r);
  const auto kid = [&](int i) {
    return compact_xlat(src, dst, old2new, memo, n.kid[static_cast<std::size_t>(i)]);
  };
  CtrlRef out = kCtrlInvalid;
  switch (n.op) {
    case CtrlOp::kConst: out = dst.constant(n.bit != 0); break;
    case CtrlOp::kEnable: out = dst.enable_input(); break;
    case CtrlOp::kPortSel: out = dst.port_select_input(n.bit); break;
    case CtrlOp::kShadowBit: {
      // Shadow atoms of removed segments never occur in surviving cones
      // (verified); broken references are preserved as-is numerically only
      // when still in range, otherwise the atom keeps its old coordinate.
      const NodeId seg = (n.seg != kInvalidNode &&
                          n.seg < old2new.size() &&
                          old2new[n.seg] != kInvalidNode)
                             ? old2new[n.seg]
                             : n.seg;
      out = dst.shadow_bit(seg, n.bit, n.replica);
      break;
    }
    case CtrlOp::kNot: out = dst.mk_not(kid(0), n.bit); break;
    case CtrlOp::kAnd: out = dst.mk_and(kid(0), kid(1), n.bit); break;
    case CtrlOp::kOr: out = dst.mk_or(kid(0), kid(1), n.bit); break;
    case CtrlOp::kMaj3:
      out = dst.mk_maj3(kid(0), kid(1), kid(2), n.bit);
      break;
  }
  memo.emplace(r, out);
  return out;
}

void compact(Workspace& ws) {
  const Rsn old = std::move(ws.rsn);
  const std::size_t n = old.num_nodes();
  Rsn nu;
  std::vector<NodeId> old2new(n, kInvalidNode);
  for (NodeId id = 0; id < n; ++id) {
    if (ws.removed[id] != 0) continue;
    const RsnNode& node = old.node(id);
    switch (node.kind) {
      case NodeKind::kPrimaryIn:
        old2new[id] = nu.add_primary_in(node.name);
        break;
      case NodeKind::kPrimaryOut:
        old2new[id] = nu.add_primary_out(node.name, kInvalidNode);
        break;
      case NodeKind::kSegment:
        old2new[id] = nu.add_segment(node.name, node.length, kInvalidNode,
                                     node.has_shadow, node.role);
        break;
      case NodeKind::kMux:
        old2new[id] = nu.add_mux(node.name, kInvalidNode, kInvalidNode,
                                 kCtrlFalse);
        break;
    }
  }
  const auto map_node = [&](NodeId t) {
    return (t != kInvalidNode && t < n && ws.removed[t] == 0) ? old2new[t]
                                                             : kInvalidNode;
  };
  std::map<CtrlRef, CtrlRef> cmemo;
  const auto xlat = [&](CtrlRef r) {
    return compact_xlat(old.ctrl(), nu.ctrl(), old2new, cmemo, r);
  };
  for (NodeId id = 0; id < n; ++id) {
    if (ws.removed[id] != 0) continue;
    const RsnNode& node = old.node(id);
    const NodeId nid = old2new[id];
    nu.set_hier(nid, node.module, node.hier_level);
    switch (node.kind) {
      case NodeKind::kPrimaryIn:
        break;
      case NodeKind::kPrimaryOut:
        nu.node_mut(nid).scan_in = map_node(node.scan_in);
        break;
      case NodeKind::kSegment: {
        RsnNode& dst = nu.node_mut(nid);
        dst.scan_in = map_node(node.scan_in);
        dst.shadow_replicas = node.shadow_replicas;
        dst.reset_shadow = node.reset_shadow;
        dst.select = xlat(node.select);
        dst.cap_dis = xlat(node.cap_dis);
        dst.up_dis = xlat(node.up_dis);
        break;
      }
      case NodeKind::kMux: {
        RsnNode& dst = nu.node_mut(nid);
        dst.mux_in[0] = map_node(node.mux_in[0]);
        dst.mux_in[1] = map_node(node.mux_in[1]);
        dst.addr = xlat(node.addr);
        break;
      }
    }
  }
  std::vector<std::size_t> new_term_to_orig;
  const auto& terms = old.select_terms();
  for (std::size_t t = 0; t < terms.size(); ++t) {
    if (ws.term_removed[t] != 0) continue;
    const NodeId seg = map_node(terms[t].seg);
    const NodeId succ = map_node(terms[t].succ);
    if (seg == kInvalidNode || succ == kInvalidNode) continue;
    nu.add_select_term(seg, succ, xlat(terms[t].term));
    new_term_to_orig.push_back(ws.term_to_orig[t]);
  }
  // Compose the provenance maps through this renumbering.
  std::vector<NodeId> new_to_orig;
  new_to_orig.reserve(nu.num_nodes());
  for (NodeId id = 0; id < n; ++id)
    if (ws.removed[id] == 0) new_to_orig.push_back(ws.to_orig[id]);
  std::vector<CtrlRef> new_ctrl_to_orig(nu.ctrl().size(), kCtrlInvalid);
  new_ctrl_to_orig[kCtrlFalse] = ws.ctrl_to_orig[kCtrlFalse];
  new_ctrl_to_orig[kCtrlTrue] = ws.ctrl_to_orig[kCtrlTrue];
  for (const auto& [o, nw] : cmemo) {
    if (nw == kCtrlInvalid) continue;
    if (o >= 0 && static_cast<std::size_t>(o) < ws.ctrl_to_orig.size())
      new_ctrl_to_orig[nw] = ws.ctrl_to_orig[o];
  }
  ws.rsn = std::move(nu);
  ws.removed.assign(ws.rsn.num_nodes(), 0);
  ws.term_removed.assign(ws.rsn.select_terms().size(), 0);
  ws.to_orig = std::move(new_to_orig);
  ws.term_to_orig = std::move(new_term_to_orig);
  ws.ctrl_to_orig = std::move(new_ctrl_to_orig);
}

// ---------------------------------------------------------------------------
// Pass planning and the engine loop.

struct PassPlan {
  std::vector<NodeId> dedupe;
  std::vector<NodeId> collapse;
  std::vector<NodeId> drop_pi;
  std::vector<NodeId> prune;                 ///< diag order, unique
  std::map<NodeId, std::string> prune_rule;  ///< node -> flagging rule id

  bool empty() const {
    return dedupe.empty() && collapse.empty() && drop_pi.empty() &&
           prune.empty();
  }
};

PassPlan make_plan(const std::vector<Diagnostic>& diags, const Workspace& ws) {
  PassPlan plan;
  for (const Diagnostic& d : diags) {
    if (d.node == kInvalidNode || !ws.present(d.node)) continue;
    if (d.rule == "mux-identical-inputs") {
      plan.dedupe.push_back(d.node);
    } else if (d.rule == "const-mux-addr") {
      plan.collapse.push_back(d.node);
    } else if (d.rule == "unused-primary-in") {
      plan.drop_pi.push_back(d.node);
    } else if (d.rule == "unreachable-scan" || d.rule == "dead-end-scan") {
      if (plan.prune_rule.emplace(d.node, d.rule).second)
        plan.prune.push_back(d.node);
    }
  }
  return plan;
}

struct PassCtx {
  Workspace& ws;
  FixResult& res;
  const FixOptions& opts;
  int pass = 0;
  std::size_t applied_in_pass = 0;
  /// (rule, original node) -> index into res.fixes, so diagnostics retried
  /// across passes update their record instead of duplicating it.
  std::map<std::pair<std::string, NodeId>, std::size_t> index;
};

AppliedFix& record_fix(PassCtx& pc, FixKind kind, const std::string& rule,
                       NodeId ws_node) {
  const NodeId orig = pc.ws.to_orig[ws_node];
  const auto key = std::make_pair(rule, orig);
  const auto it = pc.index.find(key);
  std::size_t idx = 0;
  if (it == pc.index.end()) {
    idx = pc.res.fixes.size();
    pc.res.fixes.push_back({});
    pc.index.emplace(key, idx);
  } else {
    idx = it->second;
  }
  AppliedFix& f = pc.res.fixes[idx];
  f.kind = kind;
  f.rule = rule;
  f.node = orig;
  f.pass = pc.pass;
  f.status = FixStatus::kSkipped;
  f.note.clear();
  f.removed.clear();
  f.rewires.clear();
  f.removed_terms.clear();
  return f;
}

/// Applies one candidate rewrite: verifies the mutated copy against the
/// current workspace and commits or discards it.
void commit_or_reject(PassCtx& pc, Workspace&& cand, AppliedFix& fix) {
  static obs::Counter c_applied("lint.fix.applied");
  static obs::Counter c_verified("lint.fix.verified");
  static obs::Counter c_rejected("lint.fix.rejected");
  if (pc.opts.verify != FixVerify::kOff) {
    OBS_SPAN("lint.fix.verify");
    const std::string err = verify_rewrite(pc.ws, cand, pc.opts.lint);
    if (!err.empty()) {
      fix.status = FixStatus::kRejected;
      fix.note = "verification rejected the rewrite: " + err;
      c_rejected.add();
      return;
    }
    c_verified.add();
  }
  pc.ws = std::move(cand);
  fix.status = FixStatus::kApplied;
  ++pc.applied_in_pass;
  c_applied.add();
}

/// Re-derives the stuck value of a mux address (the lint rule's exact
/// query, not a parse of its message).
int const_mux_stuck(const Workspace& ws, ConeOracle& oracle, NodeId m) {
  const RsnNode& n = ws.rsn.node(m);
  if (n.addr < 0 || static_cast<std::size_t>(n.addr) >= ws.rsn.ctrl().size())
    return -1;
  if (n.addr == kCtrlFalse) return 0;
  if (n.addr == kCtrlTrue) return 1;
  if (oracle.provably_const(n.addr, false)) return 0;
  if (oracle.provably_const(n.addr, true)) return 1;
  return -1;
}

void run_pass(PassCtx& pc, const PassPlan& plan) {
  ConeOracle oracle(pc.ws.rsn.ctrl(), pc.opts.lint.cone_backend,
                    pc.opts.lint.cone_max_atoms);
  const bool miswire = pc.opts.debug_miswire != 0;

  for (const NodeId m : plan.dedupe) {
    AppliedFix& fix =
        record_fix(pc, FixKind::kDedupeMuxInputs, "mux-identical-inputs", m);
    if (!pc.ws.present(m) || !pc.ws.rsn.node(m).is_mux()) {
      fix.status = FixStatus::kApplied;  // removed by an earlier fix
      fix.note = "already removed by an earlier fix";
      continue;
    }
    const RsnNode& n = pc.ws.rsn.node(m);
    if (n.mux_in[0] == kInvalidNode || n.mux_in[0] != n.mux_in[1]) {
      fix.note = "kept: inputs no longer identical";
      continue;
    }
    Workspace cand = pc.ws;
    fix.note = strprintf("bypass mux '%s' onto its single input '%s'",
                         n.name.c_str(),
                         pc.ws.present(n.mux_in[0])
                             ? pc.ws.rsn.node(n.mux_in[0]).name.c_str()
                             : "?");
    const std::string skip =
        apply_mux_bypass(cand, m, n.mux_in[0], miswire, fix);
    if (!skip.empty()) {
      fix.note = skip;
      continue;
    }
    commit_or_reject(pc, std::move(cand), fix);
  }

  for (const NodeId m : plan.collapse) {
    AppliedFix& fix =
        record_fix(pc, FixKind::kCollapseConstMux, "const-mux-addr", m);
    if (!pc.ws.present(m) || !pc.ws.rsn.node(m).is_mux()) {
      fix.status = FixStatus::kApplied;
      fix.note = "already removed by an earlier fix";
      continue;
    }
    const int stuck = const_mux_stuck(pc.ws, oracle, m);
    if (stuck < 0) {
      fix.note = "kept: address no longer provably constant";
      continue;
    }
    const RsnNode& n = pc.ws.rsn.node(m);
    const NodeId keep = n.mux_in[static_cast<std::size_t>(stuck)];
    Workspace cand = pc.ws;
    fix.note = strprintf(
        "collapse constant-address mux '%s' onto forwarded input '%s'",
        n.name.c_str(),
        pc.ws.present(keep) ? pc.ws.rsn.node(keep).name.c_str() : "?");
    const std::string skip = apply_mux_bypass(cand, m, keep, miswire, fix);
    if (!skip.empty()) {
      fix.note = skip;
      continue;
    }
    commit_or_reject(pc, std::move(cand), fix);
  }

  for (const NodeId pi : plan.drop_pi) {
    AppliedFix& fix =
        record_fix(pc, FixKind::kDropUnusedPrimaryIn, "unused-primary-in", pi);
    if (!pc.ws.present(pi)) {
      fix.status = FixStatus::kApplied;
      fix.note = "already removed by an earlier fix";
      continue;
    }
    Workspace cand = pc.ws;
    fix.note = strprintf("remove unused primary scan-in '%s'",
                         pc.ws.rsn.node(pi).name.c_str());
    const std::string skip = apply_drop_primary_in(cand, pi, fix);
    if (!skip.empty()) {
      fix.note = skip;
      continue;
    }
    commit_or_reject(pc, std::move(cand), fix);
  }

  if (!plan.prune.empty()) {
    const std::vector<char> cand_set = prune_candidate_set(pc.ws, plan.prune);
    for (const NodeId v : plan.prune) {
      AppliedFix& fix = record_fix(pc, FixKind::kPruneDeadScan,
                                   plan.prune_rule.at(v), v);
      if (!pc.ws.present(v)) {
        fix.status = FixStatus::kApplied;
        fix.note = "already removed by an earlier fix";
        continue;
      }
      if (cand_set[v] == 0) {
        fix.note = "kept: feeds surviving logic (scan or shadow readers)";
        continue;
      }
      const std::vector<NodeId> closure = prune_closure(pc.ws, cand_set, v);
      Workspace cand = pc.ws;
      fix.note = strprintf("prune dead scan cone of '%s' (%zu node(s))",
                           pc.ws.rsn.node(v).name.c_str(), closure.size());
      const std::string skip = apply_prune(cand, closure, fix);
      if (!skip.empty()) {
        fix.note = skip;
        continue;
      }
      commit_or_reject(pc, std::move(cand), fix);
    }
  }
}

}  // namespace

const char* fix_kind_name(FixKind kind) {
  switch (kind) {
    case FixKind::kDropUnusedPrimaryIn: return "drop-unused-primary-in";
    case FixKind::kDedupeMuxInputs: return "dedupe-mux-inputs";
    case FixKind::kCollapseConstMux: return "collapse-const-mux";
    case FixKind::kPruneDeadScan: return "prune-dead-scan";
  }
  return "?";
}

const std::vector<std::string>& FixEngine::fixable_rules() {
  static const std::vector<std::string> kRules = {
      "mux-identical-inputs", "const-mux-addr", "unused-primary-in",
      "unreachable-scan", "dead-end-scan"};
  return kRules;
}

bool FixEngine::fixable_rule(const std::string& rule) {
  const auto& rules = fixable_rules();
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

FixResult FixEngine::run(const Rsn& input) const {
  OBS_SPAN("lint.fix");
  FixResult res;
  const LintRunner runner(options_.lint);
  res.initial = runner.run(input);
  Workspace ws = make_workspace(input);
  std::vector<Diagnostic> diags = res.initial;
  // (rule, original node) -> record index, carried across passes so a
  // diagnostic retried in a later pass updates its record in place.
  std::map<std::pair<std::string, NodeId>, std::size_t> fix_index;
  for (int pass = 1; pass <= options_.max_passes; ++pass) {
    const PassPlan plan = make_plan(diags, ws);
    if (plan.empty()) break;
    PassCtx pc{ws, res, options_, pass, 0, std::move(fix_index)};
    {
      OBS_SPAN("lint.fix.pass");
      run_pass(pc, plan);
    }
    fix_index = std::move(pc.index);
    if (pc.applied_in_pass == 0) break;
    res.passes = pass;
    compact(ws);
    diags = runner.run(ws.rsn);
  }
  res.residual = std::move(diags);
  for (const AppliedFix& f : res.fixes) {
    if (f.status == FixStatus::kApplied && !f.removed.empty()) ++res.applied;
    if (f.status == FixStatus::kRejected) ++res.rejected;
  }
  res.changed = false;
  for (const AppliedFix& f : res.fixes)
    if (f.status == FixStatus::kApplied) res.changed = true;
  res.node_map.assign(input.num_nodes(), kInvalidNode);
  for (NodeId id = 0; id < ws.rsn.num_nodes(); ++id)
    res.node_map[ws.to_orig[id]] = id;
  res.ctrl_map = std::move(ws.ctrl_to_orig);
  res.rsn = std::move(ws.rsn);

  if (options_.verify == FixVerify::kMetric && res.changed) {
    bool ran = false;
    res.metric_check_ok = metric_differential_check(
        input, res, &res.metric_check_note, options_.metric_max_nodes,
        options_.metric_max_faults, &ran);
    res.metric_check_ran = ran;
    if (ran && !res.metric_check_ok) {
      // Belt-and-braces rollback: the per-rewrite SAT proofs should make
      // this unreachable, and the randomized soak asserts exactly that.
      static obs::Counter c_rejected("lint.fix.rejected");
      for (AppliedFix& f : res.fixes) {
        if (f.status != FixStatus::kApplied) continue;
        f.status = FixStatus::kRejected;
        f.note = "differential fault-metric check failed: " +
                 res.metric_check_note;
        c_rejected.add();
      }
      res.rsn = input;
      res.changed = false;
      res.applied = 0;
      res.rejected = res.fixes.size();
      res.residual = res.initial;
      res.node_map.resize(input.num_nodes());
      std::iota(res.node_map.begin(), res.node_map.end(), NodeId{0});
      res.ctrl_map.resize(input.ctrl().size());
      std::iota(res.ctrl_map.begin(), res.ctrl_map.end(), CtrlRef{0});
    }
  }
  return res;
}

FixResult fix_rsn(const Rsn& rsn, const FixOptions& options) {
  return FixEngine(options).run(rsn);
}

// ---------------------------------------------------------------------------
// Differential fault-metric check (FixVerify::kMetric).

bool metric_differential_check(const Rsn& original, const FixResult& result,
                               std::string* why, std::size_t max_nodes,
                               std::size_t max_faults, bool* ran) {
  const auto note = [&](const std::string& s) {
    if (why) *why = s;
  };
  if (ran) *ran = false;
  if (result.rsn.num_nodes() > max_nodes ||
      original.num_nodes() > max_nodes) {
    note("skipped: network above metric_max_nodes");
    return true;
  }
  try {
    const FaultMetricEngine orig_engine(original);
    const FaultMetricEngine fixed_engine(result.rsn);
    const auto orig_scratch = orig_engine.make_scratch();
    const auto fixed_scratch = fixed_engine.make_scratch();

    // Map the repaired network's fault universe back onto the original.
    std::vector<NodeId> new2orig(result.rsn.num_nodes(), kInvalidNode);
    for (NodeId o = 0; o < result.node_map.size(); ++o)
      if (result.node_map[o] != kInvalidNode) new2orig[result.node_map[o]] = o;
    std::vector<Fault> fixed_faults = enumerate_faults(result.rsn);
    if (fixed_faults.size() > max_faults && max_faults > 0) {
      std::vector<Fault> sampled;
      sampled.reserve(max_faults);
      const std::size_t stride = fixed_faults.size() / max_faults + 1;
      for (std::size_t i = 0; i < fixed_faults.size(); i += stride)
        sampled.push_back(fixed_faults[i]);
      fixed_faults = std::move(sampled);
    }
    std::vector<Fault> orig_faults;
    std::vector<Fault> kept_fixed;
    orig_faults.reserve(fixed_faults.size());
    kept_fixed.reserve(fixed_faults.size());
    for (const Fault& f : fixed_faults) {
      Fault o = f;
      if (o.forcing.node != kInvalidNode) {
        if (o.forcing.node >= new2orig.size() ||
            new2orig[o.forcing.node] == kInvalidNode)
          continue;  // no original counterpart (does not happen in practice)
        o.forcing.node = new2orig[o.forcing.node];
      }
      if (o.forcing.ctrl != kCtrlInvalid) {
        if (o.forcing.ctrl < 0 ||
            static_cast<std::size_t>(o.forcing.ctrl) >=
                result.ctrl_map.size() ||
            result.ctrl_map[o.forcing.ctrl] == kCtrlInvalid)
          continue;
        o.forcing.ctrl = result.ctrl_map[o.forcing.ctrl];
      }
      orig_faults.push_back(o);
      kept_fixed.push_back(f);
    }

    // Surviving segments, in original/fixed coordinate pairs.
    std::vector<std::pair<NodeId, NodeId>> segs;
    for (NodeId o = 0; o < original.num_nodes(); ++o) {
      if (!original.node(o).is_segment()) continue;
      if (result.node_map[o] != kInvalidNode)
        segs.emplace_back(o, result.node_map[o]);
    }

    // Pruned segments must already be inaccessible in the original.
    const std::vector<bool> orig_free = orig_engine.accessible_fault_free();
    const std::vector<bool> fixed_free = fixed_engine.accessible_fault_free();
    for (NodeId o = 0; o < original.num_nodes(); ++o) {
      if (!original.node(o).is_segment()) continue;
      if (result.node_map[o] == kInvalidNode && orig_free[o]) {
        note(strprintf("pruned segment '%s' was accessible in the original",
                       original.node(o).name.c_str()));
        if (ran) *ran = true;
        return false;
      }
    }
    for (const auto& [o, f] : segs) {
      if (orig_free[o] != fixed_free[f]) {
        note(strprintf("fault-free accessibility of '%s' changed",
                       original.node(o).name.c_str()));
        if (ran) *ran = true;
        return false;
      }
    }

    // Per-fault accessibility of every surviving segment, plus the shared
    // aggregates folded on both sides in identical order.
    const double counted = static_cast<double>(segs.size());
    double orig_sum = 0.0;
    double orig_worst = 1.0;
    double fixed_sum = 0.0;
    double fixed_worst = 1.0;
    for (std::size_t i = 0; i < kept_fixed.size(); ++i) {
      const std::vector<bool> ao =
          orig_engine.accessible_under_set({orig_faults[i]}, *orig_scratch);
      const std::vector<bool> af = fixed_engine.accessible_under_set(
          {kept_fixed[i]}, *fixed_scratch);
      std::size_t no = 0;
      std::size_t nf = 0;
      for (const auto& [o, f] : segs) {
        if (ao[o] != af[f]) {
          note(strprintf(
              "fault %zu (%s): accessibility of '%s' diverges "
              "(original=%d, repaired=%d)",
              i, kept_fixed[i].describe(result.rsn).c_str(),
              original.node(o).name.c_str(), int(ao[o]), int(af[f])));
          if (ran) *ran = true;
          return false;
        }
        no += ao[o] ? 1 : 0;
        nf += af[f] ? 1 : 0;
      }
      const double fo = counted > 0 ? static_cast<double>(no) / counted : 1.0;
      const double ff = counted > 0 ? static_cast<double>(nf) / counted : 1.0;
      orig_sum += fo;
      fixed_sum += ff;
      orig_worst = std::min(orig_worst, fo);
      fixed_worst = std::min(fixed_worst, ff);
    }
    if (orig_sum != fixed_sum || orig_worst != fixed_worst) {
      note("aggregate fold diverged");
      if (ran) *ran = true;
      return false;
    }
    if (ran) *ran = true;
    note(strprintf("compared %zu fault(s) over %zu surviving segment(s)",
                   kept_fixed.size(), segs.size()));
    return true;
  } catch (const std::exception& e) {
    // Networks the metric engine cannot analyze (cycles, dangling refs
    // outside the repaired cone) are skipped, not failed.
    note(std::string("skipped: ") + e.what());
    return true;
  }
}

// ---------------------------------------------------------------------------
// SARIF fix records: whole-line textual edits of the original source.

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return out;
}

/// Replaces the value of the ` key=` token on an element line; values are
/// whitespace-free names, and '=' never occurs inside expressions, so a
/// plain token scan is exact.
bool substitute_key_value(std::string& line, const std::string& key,
                          const std::string& value) {
  const std::string pat = " " + key + "=";
  const std::size_t p = line.find(pat);
  if (p == std::string::npos) return false;
  const std::size_t vstart = p + pat.size();
  std::size_t vend = line.find(' ', vstart);
  if (vend == std::string::npos) vend = line.size();
  line.replace(vstart, vend - vstart, value);
  return true;
}

}  // namespace

std::map<std::size_t, SarifFix> sarif_fix_records(
    const FixResult& result, const Rsn& original,
    const std::string& source_text, const RsnSourceMap& src_map) {
  std::map<std::size_t, SarifFix> out;
  const std::vector<std::string> lines = split_lines(source_text);
  const auto line_ok = [&](int ln) {
    return ln >= 1 && static_cast<std::size_t>(ln) <= lines.size();
  };
  const auto node_line = [&](const std::vector<int>& map, NodeId id) {
    return id < map.size() ? map[id] : 0;
  };
  std::vector<char> diag_used(result.initial.size(), 0);
  for (const AppliedFix& fix : result.fixes) {
    if (fix.status != FixStatus::kApplied) continue;
    if (fix.removed.empty() && fix.rewires.empty() &&
        fix.removed_terms.empty())
      continue;
    // Match the fix to its initial diagnostic (original coordinates);
    // later-pass fixes of nodes that were clean initially have none.
    std::size_t di = result.initial.size();
    for (std::size_t i = 0; i < result.initial.size(); ++i) {
      if (diag_used[i] != 0) continue;
      if (result.initial[i].rule == fix.rule &&
          result.initial[i].node == fix.node) {
        di = i;
        break;
      }
    }
    if (di == result.initial.size()) continue;

    SarifFix record;
    record.description = fix.note;
    std::map<int, std::string> edited;  ///< line -> replacement text
    std::vector<int> deleted;
    bool renderable = true;
    for (const NodeId id : fix.removed) {
      const int decl = node_line(src_map.decl_line, id);
      const int elem = node_line(src_map.elem_line, id);
      if (!line_ok(decl)) {
        renderable = false;  // node has no source declaration to delete
        break;
      }
      deleted.push_back(decl);
      if (line_ok(elem)) deleted.push_back(elem);
    }
    for (const std::size_t t : fix.removed_terms) {
      const int ln = t < src_map.term_line.size() ? src_map.term_line[t] : 0;
      if (!line_ok(ln)) {
        renderable = false;
        break;
      }
      deleted.push_back(ln);
    }
    if (renderable) {
      const std::vector<std::string> names = original.node_names();
      for (const FixRewire& rw : fix.rewires) {
        const int ln = node_line(src_map.elem_line, rw.consumer);
        if (!line_ok(ln) || rw.new_driver >= names.size()) {
          renderable = false;
          break;
        }
        auto [it, fresh] = edited.try_emplace(
            ln, lines[static_cast<std::size_t>(ln - 1)]);
        const std::string key =
            rw.input < 0 ? "in" : (rw.input == 0 ? "in0" : "in1");
        if (!substitute_key_value(it->second, key, names[rw.new_driver])) {
          renderable = false;
          break;
        }
      }
    }
    if (!renderable) continue;
    std::sort(deleted.begin(), deleted.end());
    deleted.erase(std::unique(deleted.begin(), deleted.end()), deleted.end());
    for (const int ln : deleted)
      record.replacements.push_back({ln, true, {}});
    for (const auto& [ln, text] : edited)
      record.replacements.push_back({ln, false, text});
    std::sort(record.replacements.begin(), record.replacements.end(),
              [](const SarifReplacement& a, const SarifReplacement& b) {
                return a.line < b.line;
              });
    diag_used[di] = 1;
    out.emplace(di, std::move(record));
  }
  return out;
}

}  // namespace ftrsn::lint
