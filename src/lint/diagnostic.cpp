#include "lint/diagnostic.hpp"

#include <stdexcept>

#include "util/common.hpp"

namespace ftrsn::lint {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

bool has_errors(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags)
    if (d.severity == Severity::kError) return true;
  return false;
}

std::array<int, 3> count_by_severity(const std::vector<Diagnostic>& diags) {
  std::array<int, 3> counts{0, 0, 0};
  for (const Diagnostic& d : diags)
    ++counts[static_cast<std::size_t>(d.severity)];
  return counts;
}

namespace {

std::string node_label(NodeId id, const std::vector<std::string>& names) {
  if (id == kInvalidNode) return "?";
  if (id < names.size() && !names[id].empty()) return names[id];
  return strprintf("n%u", id);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strprintf("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

}  // namespace

std::string to_text(const std::vector<Diagnostic>& diags,
                    const std::vector<std::string>& names) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += strprintf("%s[%s]", severity_name(d.severity), d.rule.c_str());
    if (d.node != kInvalidNode)
      out += strprintf(" node '%s'", node_label(d.node, names).c_str());
    if (d.ctrl != kCtrlInvalid) out += strprintf(" expr e%d", d.ctrl);
    out += ": " + d.message;
    if (!d.witness.empty()) {
      out += " [";
      for (std::size_t i = 0; i < d.witness.size(); ++i) {
        if (i) out += " -> ";
        out += node_label(d.witness[i], names);
      }
      out += "]";
    }
    if (!d.hint.empty()) out += " (hint: " + d.hint + ")";
    out += "\n";
  }
  return out;
}

std::string to_json(const std::vector<Diagnostic>& diags,
                    const std::vector<std::string>& names) {
  const auto counts = count_by_severity(diags);
  std::string out = strprintf("{\"errors\":%d,\"warnings\":%d,\"infos\":%d,",
                              counts[static_cast<int>(Severity::kError)],
                              counts[static_cast<int>(Severity::kWarning)],
                              counts[static_cast<int>(Severity::kInfo)]);
  out += "\"diagnostics\":[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i) out += ",";
    out += strprintf("{\"rule\":\"%s\",\"severity\":\"%s\"",
                     json_escape(d.rule).c_str(), severity_name(d.severity));
    if (d.node != kInvalidNode) {
      out += strprintf(",\"node\":%u,\"node_name\":\"%s\"", d.node,
                       json_escape(node_label(d.node, names)).c_str());
    }
    if (d.ctrl != kCtrlInvalid) out += strprintf(",\"ctrl\":%d", d.ctrl);
    out += strprintf(",\"message\":\"%s\"", json_escape(d.message).c_str());
    if (!d.hint.empty())
      out += strprintf(",\"hint\":\"%s\"", json_escape(d.hint).c_str());
    if (!d.witness.empty()) {
      out += ",\"witness\":[";
      for (std::size_t w = 0; w < d.witness.size(); ++w)
        out += strprintf("%s%u", w ? "," : "", d.witness[w]);
      out += "],\"witness_names\":[";
      for (std::size_t w = 0; w < d.witness.size(); ++w)
        out += strprintf("%s\"%s\"", w ? "," : "",
                         json_escape(node_label(d.witness[w], names)).c_str());
      out += "]";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void throw_if_errors(const std::vector<Diagnostic>& diags,
                     const std::string& subject,
                     const std::vector<std::string>& names) {
  if (!has_errors(diags)) return;
  std::string what = subject + " failed validation:\n";
  for (const Diagnostic& d : diags) {
    if (d.severity != Severity::kError) continue;
    what += "  " + to_text({d}, names);
  }
  throw std::logic_error(what);
}

}  // namespace ftrsn::lint
