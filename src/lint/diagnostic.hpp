// Diagnostic model of the ftrsn static analyzer (lint/).
//
// A Diagnostic pinpoints one violated structural or control invariant of an
// RSN (or of a dataflow graph): the rule that fired, a severity, the
// offending node and/or control expression, a human-readable message, an
// optional fix hint and an optional witness (e.g. the vertex sequence of a
// scan-interconnect cycle).  Diagnostics are plain data; text and JSON
// emitters render them for humans and for machine consumption (CI).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "rsn/ctrl.hpp"

namespace ftrsn::lint {

enum class Severity : std::uint8_t {
  kInfo,
  kWarning,
  kError,
};

const char* severity_name(Severity s);

struct Diagnostic {
  std::string rule;                ///< rule id, e.g. "scan-cycle"
  Severity severity = Severity::kError;
  NodeId node = kInvalidNode;      ///< offending RSN node / graph vertex
  CtrlRef ctrl = kCtrlInvalid;     ///< offending control expression node
  std::string message;             ///< what is wrong
  std::string hint;                ///< how to fix it (may be empty)
  std::vector<NodeId> witness;     ///< e.g. the node sequence of a cycle
};

/// True if any diagnostic has Severity::kError.
bool has_errors(const std::vector<Diagnostic>& diags);

/// Counts per severity, indexed by static_cast<int>(Severity).
std::array<int, 3> count_by_severity(const std::vector<Diagnostic>& diags);

/// Human-readable report, one line per diagnostic:
///   error[scan-cycle] node 'B': scan interconnect cycle B -> m1 -> B
/// `names` maps NodeId -> display name (empty: numeric ids only).
std::string to_text(const std::vector<Diagnostic>& diags,
                    const std::vector<std::string>& names = {});

/// Machine-readable report:
///   {"errors":N,"warnings":N,"infos":N,"diagnostics":[{...},...]}
/// Stable key order, no trailing whitespace; safe to parse line-wise or with
/// any JSON parser.
std::string to_json(const std::vector<Diagnostic>& diags,
                    const std::vector<std::string>& names = {});

/// Aggregates all error-severity diagnostics into one std::logic_error and
/// throws it; no-op when `diags` contains no errors.  `subject` names the
/// checked object in the exception text (e.g. "RSN 'core'").
void throw_if_errors(const std::vector<Diagnostic>& diags,
                     const std::string& subject,
                     const std::vector<std::string>& names = {});

}  // namespace ftrsn::lint
