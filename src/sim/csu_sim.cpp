#include "sim/csu_sim.hpp"

#include <algorithm>

namespace ftrsn {

CsuSimulator::CsuSimulator(const Rsn& rsn) : rsn_(&rsn) {
  seg_state_.resize(rsn.num_nodes());
  ctrl_forced_.assign(rsn.ctrl().size(), -1);
  topo_ = rsn.topo_order();
  reset();
}

void CsuSimulator::reset() {
  for (NodeId id = 0; id < rsn_->num_nodes(); ++id) {
    const RsnNode& n = rsn_->node(id);
    if (!n.is_segment()) continue;
    SegState& s = seg_state_[id];
    s.shift.assign(static_cast<std::size_t>(n.length), 0);
    s.data_in.assign(static_cast<std::size_t>(n.length), 0);
    s.shadow.assign(static_cast<std::size_t>(n.length * n.shadow_replicas), 0);
    for (int b = 0; b < n.length && b < 64; ++b) {
      const bool v = (n.reset_shadow >> b) & 1;
      for (int r = 0; r < n.shadow_replicas; ++r)
        s.shadow[static_cast<std::size_t>(b * n.shadow_replicas + r)] = v;
    }
  }
}

void CsuSimulator::add_forcing(const Forcing& f) {
  forcings_.push_back(f);
  if (f.point == Forcing::Point::kCtrlNet) {
    FTRSN_CHECK(f.ctrl >= 0 &&
                static_cast<std::size_t>(f.ctrl) < ctrl_forced_.size());
    ctrl_forced_[static_cast<std::size_t>(f.ctrl)] = f.value ? 1 : 0;
  }
}

void CsuSimulator::clear_forcings() {
  forcings_.clear();
  ctrl_forced_.assign(rsn_->ctrl().size(), -1);
}

void CsuSimulator::set_data_in(NodeId seg, std::vector<std::uint8_t> bits) {
  const RsnNode& n = rsn_->node(seg);
  FTRSN_CHECK(n.is_segment());
  FTRSN_CHECK(bits.size() == static_cast<std::size_t>(n.length));
  seg_state_[seg].data_in = std::move(bits);
}

const Forcing* CsuSimulator::find_forcing(Forcing::Point p, NodeId node,
                                          int index, int bit) const {
  for (const Forcing& f : forcings_)
    if (f.point == p && f.node == node && f.index == index && f.bit == bit)
      return &f;
  return nullptr;
}

const Forcing* CsuSimulator::find_ctrl_forcing(CtrlRef r) const {
  for (const Forcing& f : forcings_)
    if (f.point == Forcing::Point::kCtrlNet && f.ctrl == r) return &f;
  return nullptr;
}

bool CsuSimulator::shadow_value(NodeId seg, int bit, int replica) const {
  if (const Forcing* f =
          find_forcing(Forcing::Point::kShadowReplica, seg, replica, bit))
    return f->value;
  const RsnNode& n = rsn_->node(seg);
  FTRSN_CHECK(n.is_segment() && bit < n.length && replica < n.shadow_replicas);
  return seg_state_[seg]
             .shadow[static_cast<std::size_t>(bit * n.shadow_replicas +
                                              replica)] != 0;
}

bool CsuSimulator::shadow_voted(NodeId seg, int bit) const {
  const RsnNode& n = rsn_->node(seg);
  int ones = 0;
  for (int r = 0; r < n.shadow_replicas; ++r)
    ones += shadow_value(seg, bit, r) ? 1 : 0;
  return 2 * ones > n.shadow_replicas;
}

void CsuSimulator::poke_shadow(NodeId seg, int bit, bool value) {
  const RsnNode& n = rsn_->node(seg);
  FTRSN_CHECK(n.is_segment() && n.has_shadow && bit < n.length);
  for (int r = 0; r < n.shadow_replicas; ++r)
    seg_state_[seg].shadow[static_cast<std::size_t>(bit * n.shadow_replicas +
                                                    r)] = value ? 1 : 0;
}

bool CsuSimulator::eval_ctrl(CtrlRef r) const {
  const auto atom = [this](const CtrlNode& n) -> bool {
    if (n.op == CtrlOp::kEnable) return enable_;
    if (n.op == CtrlOp::kPortSel) return port_select(n.bit);
    return shadow_value(n.seg, n.bit, n.replica);
  };
  return rsn_->ctrl().eval(r, atom, &ctrl_forced_);
}

bool CsuSimulator::mux_addr_value(NodeId mux) const {
  if (const Forcing* f = find_forcing(Forcing::Point::kMuxAddr, mux))
    return f->value;
  return eval_ctrl(rsn_->node(mux).addr);
}

bool CsuSimulator::segment_selected(NodeId seg) const {
  return eval_ctrl(rsn_->node(seg).select);
}

NodeId CsuSimulator::default_out(NodeId out_port) const {
  return out_port == kInvalidNode ? rsn_->primary_out() : out_port;
}

std::vector<NodeId> CsuSimulator::active_path(NodeId out_port,
                                              NodeId* in_port) const {
  std::vector<NodeId> path;
  NodeId node = rsn_->node(default_out(out_port)).scan_in;
  std::size_t guard = 0;
  while (rsn_->node(node).kind != NodeKind::kPrimaryIn) {
    FTRSN_CHECK_MSG(++guard <= rsn_->num_nodes(), "active path walk diverged");
    const RsnNode& n = rsn_->node(node);
    if (n.is_mux()) {
      node = n.mux_in[mux_addr_value(node) ? 1 : 0];
    } else {
      FTRSN_CHECK(n.is_segment());
      path.push_back(node);
      node = n.scan_in;
    }
  }
  if (in_port) *in_port = node;
  std::reverse(path.begin(), path.end());
  return path;
}

int CsuSimulator::active_path_bits(NodeId out_port) const {
  int bits = 0;
  for (NodeId seg : active_path(out_port)) bits += rsn_->node(seg).length;
  return bits;
}

void CsuSimulator::capture(NodeId out_port) {
  for (NodeId seg : active_path(out_port)) {
    const RsnNode& n = rsn_->node(seg);
    if (segment_selected(seg) && !eval_ctrl(n.cap_dis))
      seg_state_[seg].shift = seg_state_[seg].data_in;
  }
}

std::uint8_t CsuSimulator::shift_cycle(std::uint8_t in_bit, NodeId in_port,
                                       NodeId out_port) {
  const NodeId live_in =
      in_port == kInvalidNode ? rsn_->primary_in() : in_port;
  const NodeId out = default_out(out_port);

  // Combinational values at every node output, in topological order.
  static thread_local std::vector<std::uint8_t> value;
  value.assign(rsn_->num_nodes(), 0);
  for (NodeId id : topo_) {
    const RsnNode& n = rsn_->node(id);
    bool v = false;
    switch (n.kind) {
      case NodeKind::kPrimaryIn:
        v = (id == live_in) ? (in_bit != 0) : false;
        if (const Forcing* f = find_forcing(Forcing::Point::kPrimaryIn, id))
          v = f->value;
        break;
      case NodeKind::kSegment:
        v = !seg_state_[id].shift.empty() && seg_state_[id].shift.back() != 0;
        if (const Forcing* f = find_forcing(Forcing::Point::kSegmentOut, id))
          v = f->value;
        break;
      case NodeKind::kMux: {
        const int a = mux_addr_value(id) ? 1 : 0;
        v = value[n.mux_in[a]] != 0;
        if (const Forcing* f = find_forcing(Forcing::Point::kMuxIn, id, a))
          v = f->value;
        if (const Forcing* f = find_forcing(Forcing::Point::kMuxOut, id))
          v = f->value;
        break;
      }
      case NodeKind::kPrimaryOut:
        v = value[n.scan_in] != 0;
        if (const Forcing* f = find_forcing(Forcing::Point::kPrimaryOut, id))
          v = f->value;
        break;
    }
    value[id] = v ? 1 : 0;
  }

  const std::uint8_t out_bit = value[out];

  // Clock edge: every segment on the active path shifts by one.  Shift
  // enables are structural (derived from the path configuration); the
  // select predicate gates capture and update only.
  const auto path = active_path(out_port);
  for (NodeId seg : path) {
    const RsnNode& n = rsn_->node(seg);
    bool in_val = value[n.scan_in] != 0;
    if (const Forcing* f = find_forcing(Forcing::Point::kSegmentIn, seg))
      in_val = f->value;
    auto& shift = seg_state_[seg].shift;
    for (std::size_t i = shift.size(); i-- > 1;) shift[i] = shift[i - 1];
    shift[0] = in_val ? 1 : 0;
  }
  return out_bit;
}

void CsuSimulator::update(NodeId out_port) {
  // All shadow latches update on the same UpdateDR edge: the update
  // decisions (select / update-disable) must be evaluated on the
  // pre-update shadow state before any latch changes.
  std::vector<NodeId> updating;
  for (NodeId seg : active_path(out_port)) {
    const RsnNode& n = rsn_->node(seg);
    if (!n.has_shadow) continue;
    if (!segment_selected(seg) || eval_ctrl(n.up_dis)) continue;
    updating.push_back(seg);
  }
  for (NodeId seg : updating) {
    const RsnNode& n = rsn_->node(seg);
    SegState& s = seg_state_[seg];
    for (int b = 0; b < n.length; ++b)
      for (int r = 0; r < n.shadow_replicas; ++r) {
        // A stuck shadow latch keeps its forced value; the stored state is
        // irrelevant because reads go through shadow_value().
        s.shadow[static_cast<std::size_t>(b * n.shadow_replicas + r)] =
            s.shift[static_cast<std::size_t>(b)];
      }
  }
}

CsuResult CsuSimulator::csu(const std::vector<std::uint8_t>& in_bits,
                            NodeId in_port, NodeId out_port) {
  CsuResult result;
  result.path_segments = active_path(out_port);
  for (NodeId seg : result.path_segments)
    result.path_bits += rsn_->node(seg).length;
  capture(out_port);
  result.out_bits.reserve(in_bits.size());
  for (std::uint8_t bit : in_bits)
    result.out_bits.push_back(shift_cycle(bit, in_port, out_port));
  update(out_port);
  return result;
}

const std::vector<std::uint8_t>& CsuSimulator::shift_state(NodeId seg) const {
  FTRSN_CHECK(rsn_->node(seg).is_segment());
  return seg_state_[seg].shift;
}

}  // namespace ftrsn
