// Cycle-accurate CSU (capture - shift - update) simulator for structural
// RSNs (paper §II-A).
//
// The simulator executes scan accesses exactly as the hardware would:
//  * the active scan path is determined by walking back from a scan-out
//    port through the scan multiplexers, whose address signals are
//    evaluated on the current shadow-register state;
//  * `capture` loads instrument data into the shift registers of selected
//    segments (unless capture-disabled);
//  * each `shift` cycle moves data one flip-flop along the active path,
//    with deselected or faulty elements blocking/corrupting the stream;
//  * `update` latches shift registers into shadow registers of selected
//    segments (unless update-disabled), which reconfigures the network.
//
// Stuck-at faults are injected as *forcings* of structural points; the
// fault module translates its fault universe into these forcings.  The
// simulator is the ground truth used to validate access plans computed by
// the analysis engines.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rsn/rsn.hpp"

namespace ftrsn {

/// A structural point forced to a constant value (stuck-at fault site).
struct Forcing {
  enum class Point : std::uint8_t {
    kSegmentIn,      ///< net at the segment's scan-in port
    kSegmentOut,     ///< shift-register output / scan-out port
    kShadowReplica,  ///< one shadow latch replica (bit `bit`, replica `index`)
    kMuxIn,          ///< mux data input `index`
    kMuxOut,         ///< mux output net
    kMuxAddr,        ///< mux address input port (after any voter)
    kCtrlNet,        ///< control expression node `ctrl` (fanout stem / gate)
    kPrimaryIn,      ///< primary scan-in port drives a constant
    kPrimaryOut,     ///< primary scan-out port reads a constant
  };
  Point point = Point::kSegmentOut;
  NodeId node = kInvalidNode;
  CtrlRef ctrl = kCtrlInvalid;
  int index = 0;  ///< mux input index / shadow replica
  int bit = 0;    ///< shadow bit index
  bool value = false;
};

/// Result of one CSU operation.
struct CsuResult {
  std::vector<std::uint8_t> out_bits;     ///< observed at the scan-out port
  std::vector<NodeId> path_segments;      ///< selected path, scan-in first
  int path_bits = 0;                      ///< total shift bits on the path
};

class CsuSimulator {
 public:
  explicit CsuSimulator(const Rsn& rsn);

  /// Restores all shift and shadow registers to their reset values and
  /// clears instrument data.
  void reset();

  void add_forcing(const Forcing& f);
  void clear_forcings();

  /// Sets the data-input value of a segment (captured into its shift
  /// register by the next capture operation).  Bit vector length must equal
  /// the segment length.
  void set_data_in(NodeId seg, std::vector<std::uint8_t> bits);

  /// The active scan path to `out_port` (default: first primary scan-out)
  /// under the current shadow state: segments in scan-in -> scan-out order.
  /// `in_port` receives the reached primary scan-in (if non-null).
  std::vector<NodeId> active_path(NodeId out_port = kInvalidNode,
                                  NodeId* in_port = nullptr) const;

  /// Total shift bits on the current active path.
  int active_path_bits(NodeId out_port = kInvalidNode) const;

  /// Performs one full CSU operation: capture, |in_bits| shift cycles with
  /// the given scan-in stream (first element enters first), then update.
  /// `in_port`/`out_port` select the scan ports (defaults: primaries).
  CsuResult csu(const std::vector<std::uint8_t>& in_bits,
                NodeId in_port = kInvalidNode,
                NodeId out_port = kInvalidNode);

  /// Individual operations (a CSU is capture + n*shift + update).
  void capture(NodeId out_port = kInvalidNode);
  /// Shifts one cycle; returns the bit observed at the scan-out port.
  std::uint8_t shift_cycle(std::uint8_t in_bit, NodeId in_port = kInvalidNode,
                           NodeId out_port = kInvalidNode);
  void update(NodeId out_port = kInvalidNode);

  /// Register state inspection (tests / instrument readout).
  const std::vector<std::uint8_t>& shift_state(NodeId seg) const;
  /// Shadow value of bit `bit` as seen by control replica `replica`
  /// (respects forcings).
  bool shadow_value(NodeId seg, int bit, int replica = 0) const;
  /// Majority over replicas (what a voter would see).
  bool shadow_voted(NodeId seg, int bit) const;

  /// Directly writes a shadow bit (all replicas); used by tests to set up
  /// configurations without shifting.
  void poke_shadow(NodeId seg, int bit, bool value);

  /// Primary control pins (choose duplicated ports / root detours in
  /// fault-tolerant RSNs; see synth §III-E-4).
  void set_port_select(int index, bool value) {
    if (static_cast<std::size_t>(index) >= port_select_.size())
      port_select_.resize(static_cast<std::size_t>(index) + 1, 0);
    port_select_[static_cast<std::size_t>(index)] = value ? 1 : 0;
  }
  bool port_select(int index = 0) const {
    return static_cast<std::size_t>(index) < port_select_.size() &&
           port_select_[static_cast<std::size_t>(index)] != 0;
  }

 private:
  struct SegState {
    std::vector<std::uint8_t> shift;
    std::vector<std::uint8_t> shadow;  // bit-major: [bit * replicas + r]
    std::vector<std::uint8_t> data_in;
  };

  bool eval_ctrl(CtrlRef r) const;
  bool mux_addr_value(NodeId mux) const;
  /// Combinational value at a node's output during a shift cycle;
  /// `live_in` is the bit currently applied at `in_port`.
  bool net_value(NodeId node, NodeId in_port, std::uint8_t live_in) const;
  bool segment_selected(NodeId seg) const;
  NodeId default_out(NodeId out_port) const;
  const Forcing* find_forcing(Forcing::Point p, NodeId node, int index = 0,
                              int bit = 0) const;
  const Forcing* find_ctrl_forcing(CtrlRef r) const;

  const Rsn* rsn_;
  std::vector<NodeId> topo_;
  std::vector<SegState> seg_state_;  // indexed by NodeId (empty for non-segments)
  std::vector<Forcing> forcings_;
  std::vector<std::int8_t> ctrl_forced_;  // per CtrlRef, -1 = free
  bool enable_ = true;
  std::vector<std::uint8_t> port_select_;
};

}  // namespace ftrsn
