// rsn-obs diff/top engine (DESIGN.md §5j).
//
// Loads the two machine formats the repo emits — "ftrsn-run-report" (v1/v2)
// and "ftrsn-bench-1" envelopes — into one comparable RunDoc shape, then
// diffs counters (exact by default: they are deterministic algorithm counts,
// schedule- and hardware-independent) and optionally histogram quantiles /
// wall clock (tolerance-gated: those are timing).  The CI regression gate is
// `rsn-obs diff baseline.json fresh.json --counters=<globs>` with the
// counter families that are bit-deterministic at any thread count
// (metric.mask_evals, ilp.flow_*, lint.*, ...).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ftrsn::obs {

/// Comparable view of one run report or bench envelope.
struct RunDoc {
  std::string schema;       // "ftrsn-run-report" | "ftrsn-bench-1"
  std::string source;       // file path (for messages)
  int version = 0;          // report schema version (0 for bench)
  double wall_seconds = 0.0;

  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;

  struct Hist {
    double count = 0, sum = 0, max = 0, p50 = 0, p90 = 0, p99 = 0;
  };
  std::map<std::string, Hist> histograms;

  struct SpanAgg {
    double count = 0, total_seconds = 0, max_seconds = 0;
  };
  std::map<std::string, SpanAgg> spans;  // reports only
};

/// Parses `path` as a run report or bench envelope; nullopt + message on
/// unreadable / unrecognized input.
std::optional<RunDoc> load_run_doc(const std::string& path,
                                   std::string* error = nullptr);

/// `*`-wildcard match (any substring, including empty); no other
/// metacharacters.
bool glob_match(std::string_view pattern, std::string_view name);
/// True when `name` matches any pattern of the comma-separated-style list
/// (empty list = match everything).
bool matches_any(const std::vector<std::string>& patterns,
                 std::string_view name);

struct DiffOptions {
  /// Counter glob filters; empty compares every counter present in either
  /// document (missing counters compare as 0).
  std::vector<std::string> counter_filters;
  /// Relative tolerance for counters; 0 (the default) demands exact
  /// equality — the CI gate mode.
  double counter_rel_tol = 0.0;
  /// Also compare histogram p50/p90/p99 (timing — off by default so the
  /// default gate stays hardware-independent).
  bool compare_quantiles = false;
  std::vector<std::string> histogram_filters;
  double quantile_rel_tol = 0.25;
  /// Also compare wall_seconds.
  bool compare_wall = false;
  double wall_rel_tol = 0.5;
};

struct DiffRow {
  std::string kind;  // "counter" | "quantile" | "wall"
  std::string name;
  double a = 0.0;
  double b = 0.0;
  bool ok = true;
};

struct DiffResult {
  std::vector<DiffRow> rows;
  std::size_t compared = 0;
  std::size_t mismatches = 0;
  bool ok() const { return mismatches == 0; }

  /// Human-readable table (mismatches first).
  std::string table(const RunDoc& a, const RunDoc& b) const;
  /// Machine verdict ("ftrsn-obs-diff" schema, version 1).
  std::string verdict_json(const RunDoc& a, const RunDoc& b) const;
};

DiffResult diff_docs(const RunDoc& a, const RunDoc& b,
                     const DiffOptions& options = {});

struct TopOptions {
  enum class By { kWall, kCount, kP99 };
  By by = By::kWall;
  std::size_t limit = 20;
};

/// Ranks span families (joined with their histograms when present) by
/// total wall / count / p99 and renders a table.
std::string top_table(const RunDoc& doc, const TopOptions& options = {});

}  // namespace ftrsn::obs
