// ftrsn_obs — unified tracing, counters and run reports for the whole
// synthesis flow (DESIGN.md §5e).
//
// Three facilities behind one process-wide registry:
//
//  * Named counters and gauges.  Counters are always on: a handle caches a
//    pointer to a relaxed atomic cell, so incrementing costs one atomic
//    add.  They back both the run report and the LintStats-style snapshot
//    APIs, and they must keep counting even when tracing is off (the lint
//    perf-regression tests assert on them without ever enabling a trace).
//
//  * Scoped spans (`OBS_SPAN("bmc.solve")`).  Spans are recorded only
//    while `obs::enabled()`; when disabled a span construction is one
//    relaxed atomic load and a branch — no clock read, no allocation
//    (near-zero overhead, pinned by the obs test suite).  Events land in
//    per-thread logs (one mutex each, uncontended), so ThreadPool workers
//    get their own lanes in the exported trace.
//
//  * Exporters: `trace_json()` emits Chrome trace-event / Perfetto JSON
//    ("X" complete events plus thread-name metadata); `report_json()`
//    emits the schema-versioned run report (stage wall times from the
//    calling thread's depth-0 spans, per-span aggregates, all counters and
//    gauges, peak RSS).
//
// Thread-safety: everything here may be called from any thread.  Export
// may run concurrently with span recording, but spans still open at export
// time are not included.  `reset()` must not race active spans.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace ftrsn::obs {

/// Master switch for span recording (counters/gauges are always active).
bool enabled();
void enable(bool on);

/// Drops all recorded spans, zeroes every counter, clears gauges and
/// restarts the trace clock epoch.  For tests and bench harnesses.
void reset();

// --- counters and gauges ----------------------------------------------------

/// Cached handle to one named counter cell.  Construction interns the name
/// in the registry (mutex); `add` is a relaxed atomic increment.  Intended
/// usage on hot paths is a function-local static:
///
///   static obs::Counter solves("bmc.sat_calls");
///   solves.add();
class Counter {
 public:
  explicit Counter(std::string_view name);
  void add(std::uint64_t n = 1) { cell_->fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return cell_->load(std::memory_order_relaxed); }
  void reset() { cell_->store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t>* cell_;  // owned by the registry, never freed
};

/// Cold-path conveniences (one registry lookup per call).
void count(std::string_view name, std::uint64_t n = 1);
std::uint64_t counter_value(std::string_view name);
void gauge_set(std::string_view name, double value);
void gauge_max(std::string_view name, double value);

std::map<std::string, std::uint64_t> counters_snapshot();
std::map<std::string, double> gauges_snapshot();

// --- spans -------------------------------------------------------------------

/// Names the calling thread's lane in the exported trace (default: "main"
/// for the first registered thread, "thread-<tid>" otherwise).
void set_thread_name(std::string name);

/// RAII span: records a complete ("X") trace event on destruction.  A span
/// constructed while tracing is disabled records nothing, even if tracing
/// is enabled before it closes.
class Span {
 public:
  explicit Span(std::string name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

 private:
  std::string name_;
  std::uint64_t start_us_ = 0;
  std::int32_t depth_ = 0;
  bool active_ = false;
};

#define FTRSN_OBS_CONCAT2(a, b) a##b
#define FTRSN_OBS_CONCAT(a, b) FTRSN_OBS_CONCAT2(a, b)
#define OBS_SPAN(name) \
  ::ftrsn::obs::Span FTRSN_OBS_CONCAT(obs_span_, __LINE__)(name)

// --- export ------------------------------------------------------------------

/// Chrome trace-event JSON (load in Perfetto / chrome://tracing).
std::string trace_json();

// --- streaming trace export --------------------------------------------------
//
// Long runs (a traced 13-SoC batch sweep records millions of span events)
// must not hold every event in RAM until write_trace.  stream_trace_to
// opens `path`, writes the trace-event header, and from then on any span
// close that pushes the number of buffered events past
// `max_buffered_events` flushes all per-thread logs to the file and clears
// them — memory stays bounded by the threshold plus one flush burst.
//
// The streamed file is the same Chrome trace-event JSON as trace_json(),
// except events appear in flush order rather than grouped by lane (the
// format is order-independent).  Aggregates of flushed events are folded
// into report_json()'s span/stage tables, so run reports stay complete.
// trace_json() itself only ever sees the still-buffered tail.
//
// close_trace_stream() flushes the tail, writes the JSON trailer and
// closes the file; write_trace(path) on the stream's own path does the
// same.  reset() discards an active stream (the file is closed with a
// valid trailer but keeps only the events flushed so far).

/// Starts streaming; returns false if the file cannot be opened (an
/// already-active stream is finalized first).  Implies nothing about
/// enable(): callers still opt into span recording separately.
bool stream_trace_to(const std::string& path,
                     std::size_t max_buffered_events = 65536);
/// True while a stream is open.
bool trace_streaming();
/// Finalizes the active stream; returns false if none was open.
bool close_trace_stream();

struct ReportOptions {
  /// Include machine-dependent fields (peak RSS, hardware threads).  Off
  /// for the golden-file tests, which need byte-stable output.
  bool include_machine = true;
};

/// Structured run report ("ftrsn-run-report" schema, version 1).
std::string report_json(const ReportOptions& options = {});

bool write_file(const std::string& path, const std::string& contents);
bool write_trace(const std::string& path);
bool write_report(const std::string& path, const ReportOptions& options = {});

// --- environment wiring ------------------------------------------------------

/// FTRSN_TRACE / FTRSN_REPORT handling shared by every driver:
///   unset, "" or "0"  -> off
///   "1"               -> "<default_prefix>_trace.json" / "_report.json"
///   anything else     -> used as the output path verbatim
/// Enables span recording when either variable requests an output.  The
/// caller owns writing the files (write_trace / write_report) at exit.
struct EnvConfig {
  std::string trace_path;
  std::string report_path;
  bool any() const { return !trace_path.empty() || !report_path.empty(); }
};
EnvConfig init_from_env(std::string_view default_prefix);

namespace detail {
/// Microseconds since the trace epoch (process start or last reset()).
std::uint64_t now_us();
using ClockFn = std::uint64_t (*)();
/// Replaces the trace clock (nullptr restores the real one).  Test-only.
void set_clock_for_test(ClockFn fn);
/// Peak resident set size in kilobytes (getrusage), 0 if unavailable.
long peak_rss_kb();
/// Span events currently buffered in the per-thread logs (streaming tests
/// assert the flush threshold actually bounds this).
std::size_t buffered_span_events();
std::string json_escape(std::string_view s);
}  // namespace detail

}  // namespace ftrsn::obs
