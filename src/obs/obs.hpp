// ftrsn_obs — unified tracing, counters, histograms and run reports for
// the whole synthesis flow (DESIGN.md §5e, §5j).
//
// Aggregation is *scoped*: every counter add, gauge update, histogram
// record and closed span folds into the calling thread's current
// `ObsContext`.  A process-default context exists from the first use, so
// every plain call site behaves exactly as the old process-wide registry
// did; `BatchRunner` (and, later, `ftrsn serve`) attach one child context
// per flow/request with `ContextScope`, render a per-network report from
// it, and `merge_into()` the parent so the merged report still covers the
// whole run.
//
// Facilities:
//
//  * Named counters and gauges.  Counters are always on: a handle interns
//    the name once (mutex), and `add` is one thread-local load plus a
//    relaxed atomic add on the current context's cell.  They back both the
//    run report and the LintStats-style snapshot APIs, and they must keep
//    counting even when tracing is off (the lint perf-regression tests
//    assert on them without ever enabling a trace).
//
//  * Log2-bucketed latency histograms (`obs::Histogram`).  65 buckets —
//    value v lands in bucket bit_width(v), i.e. [2^(k-1), 2^k) — recorded
//    with relaxed atomics only (lock-free, merge-safe).  Snapshots expose
//    count/sum/max and interpolated p50/p90/p99.  One histogram per named
//    span family is recorded automatically when spans are enabled; hot
//    paths can also record explicitly (metric.class_eval_us,
//    metric.packed_batch_us, ilp.solve_us) — those are always on, like
//    counters.
//
//  * Scoped spans (`OBS_SPAN("bmc.solve")`).  Spans are recorded only
//    while `obs::enabled()`; when disabled a span construction is one
//    relaxed atomic load and a branch — no clock read, no allocation
//    (near-zero overhead, pinned by the obs test suite).  Trace events
//    land in per-thread logs (one mutex each, uncontended), so ThreadPool
//    workers get their own lanes in the exported trace; aggregates fold
//    into the current context when the span closes.  Context-depth-0 and
//    -1 spans also sample RSS at open/close, so the report attributes
//    memory growth to stages (§5j).
//
//  * Exporters: `trace_json()` emits Chrome trace-event / Perfetto JSON
//    ("X" complete events plus thread-name metadata); `report_json()`
//    emits the schema-versioned run report v2 (stage wall times from the
//    context owner's context-depth-0 spans, per-span aggregates,
//    histograms, memory deltas, all counters and gauges).
//
// Thread-safety: everything here may be called from any thread.  Export
// may run concurrently with span recording, but spans still open at export
// time are not included.  `reset()` must not race active spans.  A context
// must outlive every ContextScope attached to it and every span/counter
// update made under those scopes.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace ftrsn::obs {

class ObsContext;

/// Master switch for span recording (counters/gauges/histograms are
/// always active).  Process-global: one switch for every context.
bool enabled();
void enable(bool on);

/// Resets the *current* context: drops its span/stage/memory aggregates,
/// zeroes its counters and histograms, clears its gauges.  When the
/// current context is the process-default one this also clears all
/// recorded trace events, flushes and closes any open trace stream (the
/// streamed file gets a valid trailer containing everything recorded up
/// to the reset), and restarts the trace clock epoch.  For tests and
/// bench harnesses.
void reset();

// --- contexts ----------------------------------------------------------------

/// One aggregation scope: counters, gauges, histograms, span/stage/memory
/// aggregates.  Trace *events* stay global (one merged trace per process);
/// only aggregation is scoped.  The first thread to attach a context (or
/// the main thread, for the default context) is its stage owner: the
/// report's stage table is built from that thread's context-depth-0 spans.
class ObsContext {
 public:
  ObsContext();
  ObsContext(const ObsContext&) = delete;
  ObsContext& operator=(const ObsContext&) = delete;
  ~ObsContext();

  /// Folds this context's aggregates into `parent`: counters and
  /// histogram buckets add, gauges max-merge, span aggregates fold,
  /// stage and memory tables append/fold.  Safe to call concurrently
  /// from sibling children into one shared parent.
  void merge_into(ObsContext& parent) const;

  /// Scoped snapshots (same shapes as the free snapshot functions).
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, double> gauges() const;

  struct Impl;
  Impl& impl() const { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

/// The process-default context (owner: the "main" thread).
ObsContext& default_context();
/// The calling thread's current context (default unless a ContextScope is
/// active on this thread).
ObsContext& current_context();

/// RAII attach: makes `ctx` the calling thread's current context.  The
/// context-relative span depth restarts at the thread's depth at attach
/// time, so the first span opened under the scope is a context-depth-0
/// stage of `ctx`.  Re-attaching the context that is already current is a
/// no-op (the depth base is kept), so nested pool jobs that inherit their
/// submitter's context do not fracture its stage table.
class ContextScope {
 public:
  explicit ContextScope(ObsContext& ctx);
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;
  ~ContextScope();

 private:
  ObsContext* prev_ = nullptr;
  std::int32_t prev_base_ = 0;
  bool active_ = false;
};

// --- counters and gauges ----------------------------------------------------

/// Cached handle to one named counter.  Construction interns the name
/// (process-wide id, mutex once); `add` is a thread-local load plus a
/// relaxed atomic increment on the current context's cell.  Intended
/// usage on hot paths is a function-local static:
///
///   static obs::Counter solves("bmc.sat_calls");
///   solves.add();
class Counter {
 public:
  explicit Counter(std::string_view name);
  void add(std::uint64_t n = 1);
  /// Value in the calling thread's current context.
  std::uint64_t value() const;
  void reset();

 private:
  std::uint32_t id_;
};

/// Cold-path conveniences (one intern lookup per call); all operate on
/// the calling thread's current context.
void count(std::string_view name, std::uint64_t n = 1);
std::uint64_t counter_value(std::string_view name);
void gauge_set(std::string_view name, double value);
void gauge_max(std::string_view name, double value);

std::map<std::string, std::uint64_t> counters_snapshot();
std::map<std::string, double> gauges_snapshot();

// --- histograms --------------------------------------------------------------

/// Aggregated view of one histogram: 65 log2 buckets.  buckets[0] counts
/// zeros; buckets[k] (k >= 1) counts values in [2^(k-1), 2^k).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, 65> buckets{};

  /// Quantile estimate: cumulative walk to rank q*count, linear
  /// interpolation inside the landing bucket, clamped to the observed
  /// max.  Monotone in q.  Returns 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }
};

/// Cached handle to one named histogram, same interning scheme as
/// Counter.  `record` touches only relaxed atomics (bucket add, count,
/// sum, CAS-max) — safe on hot paths and always on, like counters.
class Histogram {
 public:
  explicit Histogram(std::string_view name);
  void record(std::uint64_t value);

 private:
  std::uint32_t id_;
};

/// RAII latency recorder: records elapsed wall microseconds into `h` on
/// destruction (steady clock, independent of the trace clock).
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& h);
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency();

 private:
  Histogram& h_;
  std::uint64_t t0_ns_;
};

void histogram_record(std::string_view name, std::uint64_t value);
/// Histograms of the calling thread's current context (empty ones are
/// omitted).
std::map<std::string, HistogramSnapshot> histograms_snapshot();
/// Bucket index for `value` (bit_width).  Exposed for tests.
std::size_t histogram_bucket(std::uint64_t value);

// --- spans -------------------------------------------------------------------

/// Names the calling thread's lane in the exported trace (default: "main"
/// for the first registered thread, "thread-<tid>" otherwise).
void set_thread_name(std::string name);

/// RAII span: records a complete ("X") trace event on destruction, folds
/// duration into the current context's span/stage aggregates and the
/// span-family histogram, and (at context depth <= 1) folds RSS deltas
/// into the context's memory table.  A span constructed while tracing is
/// disabled records nothing, even if tracing is enabled before it closes.
class Span {
 public:
  explicit Span(std::string_view name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

 private:
  std::string name_;
  ObsContext* ctx_ = nullptr;
  std::uint64_t start_us_ = 0;
  std::uint32_t hist_id_ = 0;
  std::int32_t depth_ = 0;
  std::int32_t ctx_depth_ = 0;
  long rss_open_kb_ = -1;  // -1: memory not sampled for this span
  long peak_open_kb_ = 0;
  bool active_ = false;
};

#define FTRSN_OBS_CONCAT2(a, b) a##b
#define FTRSN_OBS_CONCAT(a, b) FTRSN_OBS_CONCAT2(a, b)
#define OBS_SPAN(name) \
  ::ftrsn::obs::Span FTRSN_OBS_CONCAT(obs_span_, __LINE__)(name)

// --- export ------------------------------------------------------------------

/// Chrome trace-event JSON (load in Perfetto / chrome://tracing).
std::string trace_json();

// --- streaming trace export --------------------------------------------------
//
// Long runs (a traced 13-SoC batch sweep records millions of span events)
// must not hold every event in RAM until write_trace.  stream_trace_to
// opens `path`, writes the trace-event header, and from then on any span
// close that pushes the number of buffered events past
// `max_buffered_events` flushes all per-thread logs to the file and clears
// them — memory stays bounded by the threshold plus one flush burst.
//
// The streamed file is the same Chrome trace-event JSON as trace_json(),
// except events appear in flush order rather than grouped by lane (the
// format is order-independent).  Report aggregates are unaffected by
// flushing: they fold into the current context at span close, not at
// export time.  trace_json() itself only ever sees the still-buffered
// tail.
//
// close_trace_stream() flushes the tail, writes the JSON trailer and
// closes the file; write_trace(path) on the stream's own path does the
// same, and so does reset() — a reset mid-stream leaves a complete,
// loadable trace of everything recorded before the reset.

/// Starts streaming; returns false if the file cannot be opened (an
/// already-active stream is finalized first).  Implies nothing about
/// enable(): callers still opt into span recording separately.
bool stream_trace_to(const std::string& path,
                     std::size_t max_buffered_events = 65536);
/// True while a stream is open.
bool trace_streaming();
/// Finalizes the active stream; returns false if none was open.
bool close_trace_stream();

struct ReportOptions {
  /// Include machine-dependent fields (peak RSS, hardware threads, the
  /// memory section).  Off for the golden-file tests, which need
  /// byte-stable output.
  bool include_machine = true;
};

/// Structured run report ("ftrsn-run-report" schema, version 2: v1 fields
/// unchanged, plus "histograms" and — with include_machine — "mem").
/// Reports the calling thread's current context.
std::string report_json(const ReportOptions& options = {});

bool write_file(const std::string& path, const std::string& contents);
bool write_trace(const std::string& path);
bool write_report(const std::string& path, const ReportOptions& options = {});

// --- environment wiring ------------------------------------------------------

/// FTRSN_TRACE / FTRSN_REPORT handling shared by every driver:
///   unset, "" or "0"  -> off
///   "1"               -> "<default_prefix>_trace.json" / "_report.json"
///   anything else     -> used as the output path verbatim
/// Enables span recording when either variable requests an output.  The
/// caller owns writing the files (write_trace / write_report) at exit.
struct EnvConfig {
  std::string trace_path;
  std::string report_path;
  bool any() const { return !trace_path.empty() || !report_path.empty(); }
};
EnvConfig init_from_env(std::string_view default_prefix);

namespace detail {
/// Microseconds since the trace epoch (process start or last reset()).
std::uint64_t now_us();
using ClockFn = std::uint64_t (*)();
/// Replaces the trace clock (nullptr restores the real one).  Test-only.
void set_clock_for_test(ClockFn fn);
/// Peak resident set size in kilobytes (getrusage), 0 if unavailable.
long peak_rss_kb();
/// Current resident set size in kilobytes (/proc/self/statm), 0 if
/// unavailable.
long current_rss_kb();
/// Span events currently buffered in the per-thread logs (streaming tests
/// assert the flush threshold actually bounds this).
std::size_t buffered_span_events();
std::string json_escape(std::string_view s);
/// Shortest-round-trip decimal formatting (std::to_chars), locale
/// independent — the same policy as the corpus serializer, so golden obs
/// tests cannot flake on float formatting.
std::string format_double(double v);
}  // namespace detail

}  // namespace ftrsn::obs
