#include "obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "obs/obs.hpp"
#include "util/json.hpp"

namespace ftrsn::obs {

namespace {

void load_counter_object(const json::Value& obj,
                         std::map<std::string, double>& out) {
  for (const auto& [name, v] : obj.members)
    if (v.is_number()) out[name] = v.number;
}

RunDoc::Hist load_hist_members(const json::Value& h) {
  RunDoc::Hist out;
  out.count = h.num_or("count", 0);
  out.sum = h.num_or("sum", 0);
  out.max = h.num_or("max", 0);
  out.p50 = h.num_or("p50", 0);
  out.p90 = h.num_or("p90", 0);
  out.p99 = h.num_or("p99", 0);
  return out;
}

// Relative mismatch of two non-negative scalars against `tol`; equal
// values (including 0 vs 0) always pass, and tol == 0 demands equality.
bool within(double a, double b, double tol) {
  if (a == b) return true;
  const double denom = std::max(std::fabs(a), std::fabs(b));
  return denom > 0.0 && std::fabs(a - b) / denom <= tol;
}

std::string fmt_value(double v) {
  // Counters are integers; render them as such so tables stay readable.
  if (v == std::floor(v) && std::fabs(v) < 1e15)
    return std::to_string(static_cast<long long>(v));
  return detail::format_double(v);
}

}  // namespace

bool glob_match(std::string_view pattern, std::string_view name) {
  // Iterative '*' matcher with single-candidate backtracking.
  std::size_t p = 0, n = 0;
  std::size_t star = std::string_view::npos, star_n = 0;
  while (n < name.size()) {
    if (p < pattern.size() &&
        (pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_n = n;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool matches_any(const std::vector<std::string>& patterns,
                 std::string_view name) {
  if (patterns.empty()) return true;
  for (const std::string& p : patterns)
    if (glob_match(p, name)) return true;
  return false;
}

std::optional<RunDoc> load_run_doc(const std::string& path,
                                   std::string* error) {
  const auto root = json::parse_file(path, error);
  if (!root) return std::nullopt;
  if (!root->is_object()) {
    if (error != nullptr) *error = path + ": top-level value is not an object";
    return std::nullopt;
  }
  const json::Value* schema = root->find("schema");
  if (schema == nullptr || !schema->is_string()) {
    if (error != nullptr) *error = path + ": missing \"schema\"";
    return std::nullopt;
  }

  RunDoc doc;
  doc.schema = schema->text;
  doc.source = path;
  doc.version = static_cast<int>(root->num_or("version", 0));
  doc.wall_seconds = root->num_or("wall_seconds", 0);

  if (doc.schema == "ftrsn-run-report") {
    if (const json::Value* counters = root->find("counters"))
      load_counter_object(*counters, doc.counters);
    if (const json::Value* gauges = root->find("gauges"))
      load_counter_object(*gauges, doc.gauges);
    if (const json::Value* spans = root->find("spans"); spans && spans->is_array())
      for (const json::Value& s : spans->items) {
        const json::Value* name = s.find("name");
        if (name == nullptr || !name->is_string()) continue;
        doc.spans[name->text] = {s.num_or("count", 0),
                                 s.num_or("total_seconds", 0),
                                 s.num_or("max_seconds", 0)};
      }
    if (const json::Value* hists = root->find("histograms");
        hists && hists->is_array())
      for (const json::Value& h : hists->items) {
        const json::Value* name = h.find("name");
        if (name == nullptr || !name->is_string()) continue;
        doc.histograms[name->text] = load_hist_members(h);
      }
    return doc;
  }
  if (doc.schema == "ftrsn-bench-1") {
    if (const json::Value* counters = root->find("obs_counters"))
      load_counter_object(*counters, doc.counters);
    if (const json::Value* hists = root->find("histograms");
        hists && hists->is_object())
      for (const auto& [name, h] : hists->members)
        doc.histograms[name] = load_hist_members(h);
    return doc;
  }
  if (error != nullptr)
    *error = path + ": unrecognized schema \"" + doc.schema + "\"";
  return std::nullopt;
}

DiffResult diff_docs(const RunDoc& a, const RunDoc& b,
                     const DiffOptions& options) {
  DiffResult result;
  const auto push = [&](std::string kind, std::string name, double va,
                        double vb, double tol) {
    DiffRow row;
    row.kind = std::move(kind);
    row.name = std::move(name);
    row.a = va;
    row.b = vb;
    row.ok = within(va, vb, tol);
    ++result.compared;
    if (!row.ok) ++result.mismatches;
    result.rows.push_back(std::move(row));
  };

  std::set<std::string> counter_names;
  for (const auto& [name, v] : a.counters) counter_names.insert(name);
  for (const auto& [name, v] : b.counters) counter_names.insert(name);
  for (const std::string& name : counter_names) {
    if (!matches_any(options.counter_filters, name)) continue;
    const auto ita = a.counters.find(name);
    const auto itb = b.counters.find(name);
    push("counter", name, ita == a.counters.end() ? 0.0 : ita->second,
         itb == b.counters.end() ? 0.0 : itb->second,
         options.counter_rel_tol);
  }

  if (options.compare_quantiles) {
    std::set<std::string> hist_names;
    for (const auto& [name, h] : a.histograms) hist_names.insert(name);
    for (const auto& [name, h] : b.histograms) hist_names.insert(name);
    for (const std::string& name : hist_names) {
      if (!matches_any(options.histogram_filters, name)) continue;
      static const RunDoc::Hist kEmpty;
      const auto ita = a.histograms.find(name);
      const auto itb = b.histograms.find(name);
      const RunDoc::Hist& ha = ita == a.histograms.end() ? kEmpty : ita->second;
      const RunDoc::Hist& hb = itb == b.histograms.end() ? kEmpty : itb->second;
      push("quantile", name + ".p50", ha.p50, hb.p50,
           options.quantile_rel_tol);
      push("quantile", name + ".p90", ha.p90, hb.p90,
           options.quantile_rel_tol);
      push("quantile", name + ".p99", ha.p99, hb.p99,
           options.quantile_rel_tol);
    }
  }

  if (options.compare_wall)
    push("wall", "wall_seconds", a.wall_seconds, b.wall_seconds,
         options.wall_rel_tol);

  return result;
}

std::string DiffResult::table(const RunDoc& a, const RunDoc& b) const {
  std::string out;
  out += "diff " + a.source + " (" + a.schema + ") vs " + b.source + " (" +
         b.schema + ")\n";
  std::size_t name_w = 4;
  for (const DiffRow& row : rows) name_w = std::max(name_w, row.name.size());
  char line[512];
  std::snprintf(line, sizeof line, "  %-8s %-*s %16s %16s  %s\n", "kind",
                static_cast<int>(name_w), "name", "a", "b", "verdict");
  out += line;
  // Mismatches first, then matches, stable within each group.
  for (const bool want_ok : {false, true}) {
    for (const DiffRow& row : rows) {
      if (row.ok != want_ok) continue;
      std::snprintf(line, sizeof line, "  %-8s %-*s %16s %16s  %s\n",
                    row.kind.c_str(), static_cast<int>(name_w),
                    row.name.c_str(), fmt_value(row.a).c_str(),
                    fmt_value(row.b).c_str(), row.ok ? "ok" : "MISMATCH");
      out += line;
    }
  }
  std::snprintf(line, sizeof line,
                "verdict: %s (%zu compared, %zu mismatched)\n",
                ok() ? "MATCH" : "MISMATCH", compared, mismatches);
  out += line;
  return out;
}

std::string DiffResult::verdict_json(const RunDoc& a, const RunDoc& b) const {
  std::string out;
  out += "{\n  \"schema\": \"ftrsn-obs-diff\",\n  \"version\": 1,\n";
  out += "  \"a\": \"" + detail::json_escape(a.source) + "\",\n";
  out += "  \"b\": \"" + detail::json_escape(b.source) + "\",\n";
  out += "  \"compared\": " + std::to_string(compared) + ",\n";
  out += "  \"mismatches\": " + std::to_string(mismatches) + ",\n";
  out += std::string("  \"match\": ") + (ok() ? "true" : "false") + ",\n";
  out += "  \"rows\": [";
  bool first = true;
  for (const DiffRow& row : rows) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"kind\": \"" + row.kind + "\", \"name\": \"" +
           detail::json_escape(row.name) + "\", \"a\": " +
           detail::format_double(row.a) + ", \"b\": " +
           detail::format_double(row.b) + ", \"ok\": " +
           (row.ok ? "true" : "false") + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string top_table(const RunDoc& doc, const TopOptions& options) {
  struct Row {
    std::string name;
    double count = 0, wall = 0, p99 = 0, max_us = 0;
  };
  std::map<std::string, Row> by_name;
  for (const auto& [name, s] : doc.spans) {
    Row& row = by_name[name];
    row.name = name;
    row.count = s.count;
    row.wall = s.total_seconds;
  }
  for (const auto& [name, h] : doc.histograms) {
    Row& row = by_name[name];
    row.name = name;
    if (row.count == 0) row.count = h.count;
    if (row.wall == 0) row.wall = h.sum / 1e6;  // histogram sums are us
    row.p99 = h.p99;
    row.max_us = h.max;
  }
  std::vector<Row> rows;
  rows.reserve(by_name.size());
  for (auto& [name, row] : by_name) rows.push_back(std::move(row));
  std::stable_sort(rows.begin(), rows.end(), [&](const Row& x, const Row& y) {
    switch (options.by) {
      case TopOptions::By::kCount: return x.count > y.count;
      case TopOptions::By::kP99: return x.p99 > y.p99;
      case TopOptions::By::kWall:
      default: return x.wall > y.wall;
    }
  });
  if (rows.size() > options.limit) rows.resize(options.limit);

  std::string out = "top " + doc.source + " (" + doc.schema + ")\n";
  std::size_t name_w = 4;
  for (const Row& row : rows) name_w = std::max(name_w, row.name.size());
  char line[512];
  std::snprintf(line, sizeof line, "  %-*s %12s %14s %12s %12s\n",
                static_cast<int>(name_w), "name", "count", "wall_seconds",
                "p99_us", "max_us");
  out += line;
  for (const Row& row : rows) {
    std::snprintf(line, sizeof line, "  %-*s %12.0f %14.6f %12.0f %12.0f\n",
                  static_cast<int>(name_w), row.name.c_str(), row.count,
                  row.wall, row.p99, row.max_us);
    out += line;
  }
  return out;
}

}  // namespace ftrsn::obs
