#include "obs/obs.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ftrsn::obs {

namespace {

struct SpanEvent {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::int32_t depth = 0;
};

struct ThreadLog {
  int tid = 0;
  std::string name;          // guarded by mu
  std::vector<SpanEvent> events;  // guarded by mu
  std::int32_t depth = 0;    // touched only by the owning thread
  std::mutex mu;
};

struct Registry {
  std::mutex mu;
  // Counter cells are never deallocated while the registry lives, so
  // Counter handles stay valid for the whole program.
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>,
           std::less<>>
      counters;
  std::map<std::string, double, std::less<>> gauges;
  std::vector<std::unique_ptr<ThreadLog>> logs;
  std::atomic<std::uint64_t> epoch_ns{0};
  std::atomic<bool> enabled{false};
  std::atomic<detail::ClockFn> clock{nullptr};
};

Registry& reg() {
  static Registry r;
  return r;
}

thread_local ThreadLog* t_log = nullptr;

ThreadLog* tlog() {
  if (t_log == nullptr) {
    Registry& r = reg();
    auto log = std::make_unique<ThreadLog>();
    std::lock_guard<std::mutex> lock(r.mu);
    log->tid = static_cast<int>(r.logs.size());
    log->name = log->tid == 0 ? "main" : "thread-" + std::to_string(log->tid);
    t_log = log.get();
    r.logs.push_back(std::move(log));
  }
  return t_log;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<std::uint64_t>* counter_cell(std::string_view name) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters
             .emplace(std::string(name),
                      std::make_unique<std::atomic<std::uint64_t>>(0))
             .first;
  }
  return it->second.get();
}

void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  out += buf;
}

}  // namespace

bool enabled() { return reg().enabled.load(std::memory_order_relaxed); }

void enable(bool on) {
  Registry& r = reg();
  // Make sure the epoch exists before the first span can start.
  if (on) detail::now_us();
  r.enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, cell] : r.counters) cell->store(0, std::memory_order_relaxed);
  r.gauges.clear();
  for (auto& log : r.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    log->events.clear();
  }
  r.epoch_ns.store(steady_ns(), std::memory_order_relaxed);
}

Counter::Counter(std::string_view name) : cell_(counter_cell(name)) {}

void count(std::string_view name, std::uint64_t n) {
  counter_cell(name)->fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t counter_value(std::string_view name) {
  return counter_cell(name)->load(std::memory_order_relaxed);
}

void gauge_set(std::string_view name, double value) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end())
    r.gauges.emplace(std::string(name), value);
  else
    it->second = value;
}

void gauge_max(std::string_view name, double value) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end())
    r.gauges.emplace(std::string(name), value);
  else
    it->second = std::max(it->second, value);
}

std::map<std::string, std::uint64_t> counters_snapshot() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, cell] : r.counters)
    out.emplace(name, cell->load(std::memory_order_relaxed));
  return out;
}

std::map<std::string, double> gauges_snapshot() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  return {r.gauges.begin(), r.gauges.end()};
}

void set_thread_name(std::string name) {
  ThreadLog* log = tlog();
  std::lock_guard<std::mutex> lock(log->mu);
  log->name = std::move(name);
}

Span::Span(std::string name) {
  if (!enabled()) return;
  name_ = std::move(name);
  ThreadLog* log = tlog();
  depth_ = log->depth++;
  start_us_ = detail::now_us();
  active_ = true;
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end_us = detail::now_us();
  ThreadLog* log = tlog();
  --log->depth;
  std::lock_guard<std::mutex> lock(log->mu);
  log->events.push_back(
      {std::move(name_), start_us_,
       end_us >= start_us_ ? end_us - start_us_ : 0, depth_});
}

namespace detail {

std::uint64_t now_us() {
  Registry& r = reg();
  if (ClockFn fn = r.clock.load(std::memory_order_relaxed)) return fn();
  const std::uint64_t ns = steady_ns();
  std::uint64_t epoch = r.epoch_ns.load(std::memory_order_relaxed);
  if (epoch == 0) {
    std::lock_guard<std::mutex> lock(r.mu);
    epoch = r.epoch_ns.load(std::memory_order_relaxed);
    if (epoch == 0) {
      epoch = ns;
      r.epoch_ns.store(ns, std::memory_order_relaxed);
    }
  }
  return ns >= epoch ? (ns - epoch) / 1000 : 0;
}

void set_clock_for_test(ClockFn fn) {
  reg().clock.store(fn, std::memory_order_relaxed);
}

long peak_rss_kb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;  // kilobytes on Linux
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace detail

std::string trace_json() {
  Registry& r = reg();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& log : r.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    if (log->events.empty() && log->name.rfind("thread-", 0) == 0) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"ph\": \"M\", \"pid\": 1, \"tid\": " +
           std::to_string(log->tid) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
           detail::json_escape(log->name) + "\"}}";
    for (const SpanEvent& e : log->events) {
      out += ",\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": " +
             std::to_string(log->tid) + ", \"ts\": " +
             std::to_string(e.start_us) + ", \"dur\": " +
             std::to_string(e.dur_us) + ", \"name\": \"" +
             detail::json_escape(e.name) + "\", \"args\": {\"depth\": " +
             std::to_string(e.depth) + "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

std::string report_json(const ReportOptions& options) {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t max_us = 0;
  };

  Registry& r = reg();
  const std::uint64_t wall_us = detail::now_us();
  const int self_tid = tlog()->tid;

  // Stage decomposition: the calling thread's depth-0 spans, in first-start
  // order, aggregated by name.  Everything else lands in the per-span
  // aggregate table.
  std::vector<std::string> stage_order;
  std::map<std::string, Agg, std::less<>> stages;
  std::map<std::string, Agg, std::less<>> spans;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& log : r.logs) {
      std::lock_guard<std::mutex> log_lock(log->mu);
      for (const SpanEvent& e : log->events) {
        Agg& a = spans[e.name];
        ++a.count;
        a.total_us += e.dur_us;
        a.max_us = std::max(a.max_us, e.dur_us);
        if (log->tid == self_tid && e.depth == 0) {
          auto [it, inserted] = stages.try_emplace(e.name);
          if (inserted) stage_order.push_back(e.name);
          ++it->second.count;
          it->second.total_us += e.dur_us;
        }
      }
    }
  }
  // Depth-0 spans end in start order on one thread, so recorded order is
  // already the stage order.
  std::uint64_t stage_total_us = 0;
  for (const auto& [name, a] : stages) stage_total_us += a.total_us;

  std::string out;
  out += "{\n  \"schema\": \"ftrsn-run-report\",\n  \"version\": 1,\n";
  out += "  \"wall_seconds\": ";
  append_num(out, static_cast<double>(wall_us) / 1e6);
  out += ",\n";
  if (options.include_machine) {
    out += "  \"machine\": {\"hardware_threads\": " +
           std::to_string(std::thread::hardware_concurrency()) +
           ", \"peak_rss_kb\": " + std::to_string(detail::peak_rss_kb()) +
           "},\n";
  }
  out += "  \"stages\": [";
  for (std::size_t i = 0; i < stage_order.size(); ++i) {
    const Agg& a = stages.find(stage_order[i])->second;
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": \"" + detail::json_escape(stage_order[i]) +
           "\", \"count\": " + std::to_string(a.count) + ", \"seconds\": ";
    append_num(out, static_cast<double>(a.total_us) / 1e6);
    out += "}";
  }
  out += "\n  ],\n  \"stages_total_seconds\": ";
  append_num(out, static_cast<double>(stage_total_us) / 1e6);
  out += ",\n  \"spans\": [";
  bool first = true;
  for (const auto& [name, a] : spans) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"name\": \"" + detail::json_escape(name) +
           "\", \"count\": " + std::to_string(a.count) +
           ", \"total_seconds\": ";
    append_num(out, static_cast<double>(a.total_us) / 1e6);
    out += ", \"max_seconds\": ";
    append_num(out, static_cast<double>(a.max_us) / 1e6);
    out += "}";
  }
  out += "\n  ],\n  \"counters\": {";
  first = true;
  for (const auto& [name, value] : counters_snapshot()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "\"" + detail::json_escape(name) +
           "\": " + std::to_string(value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_snapshot()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "\"" + detail::json_escape(name) + "\": ";
    append_num(out, value);
  }
  out += "\n  }\n}\n";
  return out;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = std::fclose(f) == 0 && written == contents.size();
  return ok;
}

bool write_trace(const std::string& path) {
  return write_file(path, trace_json());
}

bool write_report(const std::string& path, const ReportOptions& options) {
  return write_file(path, report_json(options));
}

EnvConfig init_from_env(std::string_view default_prefix) {
  const auto resolve = [&](const char* var,
                           const char* suffix) -> std::string {
    const char* env = std::getenv(var);
    if (env == nullptr || !*env || std::string_view(env) == "0") return {};
    if (std::string_view(env) == "1")
      return std::string(default_prefix) + suffix;
    return env;
  };
  EnvConfig cfg;
  cfg.trace_path = resolve("FTRSN_TRACE", "_trace.json");
  cfg.report_path = resolve("FTRSN_REPORT", "_report.json");
  if (cfg.any()) enable(true);
  return cfg;
}

}  // namespace ftrsn::obs
