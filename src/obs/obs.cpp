#include "obs/obs.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ftrsn::obs {

namespace {

struct SpanEvent {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::int32_t depth = 0;
};

struct ThreadLog {
  int tid = 0;
  std::string name;          // guarded by mu
  std::vector<SpanEvent> events;  // guarded by mu
  std::int32_t depth = 0;    // touched only by the owning thread
  std::mutex mu;
};

// Aggregate of one span name (count / total / max duration), shared by the
// run report and the streaming flush path.
struct Agg {
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t max_us = 0;

  void fold(std::uint64_t dur_us) {
    ++count;
    total_us += dur_us;
    max_us = std::max(max_us, dur_us);
  }
};

// Depth-0 aggregates of one thread, in first-start order (the report's
// stage table for that thread).
struct StageAgg {
  std::vector<std::string> order;
  std::map<std::string, Agg, std::less<>> by_name;

  void fold(const std::string& name, std::uint64_t dur_us) {
    auto [it, inserted] = by_name.try_emplace(name);
    if (inserted) order.push_back(name);
    ++it->second.count;
    it->second.total_us += dur_us;
  }
};

// Active streaming-trace sink (guarded by Registry::mu).
struct Stream {
  std::FILE* f = nullptr;
  std::string path;
  bool any_line = false;          // comma control, mirrors trace_json
  std::vector<char> meta_emitted;  // per tid: thread_name record written
};

struct Registry {
  std::mutex mu;
  // Counter cells are never deallocated while the registry lives, so
  // Counter handles stay valid for the whole program.
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>,
           std::less<>>
      counters;
  std::map<std::string, double, std::less<>> gauges;
  std::vector<std::unique_ptr<ThreadLog>> logs;
  std::atomic<std::uint64_t> epoch_ns{0};
  std::atomic<bool> enabled{false};
  std::atomic<detail::ClockFn> clock{nullptr};

  // Streaming state.  `streaming`/`buffered`/`stream_threshold` are
  // atomics so Span::~Span can consult them without taking mu.
  std::unique_ptr<Stream> stream;  // guarded by mu
  std::atomic<bool> streaming{false};
  std::atomic<std::size_t> buffered{0};
  std::atomic<std::size_t> stream_threshold{0};
  // Report-side memory of everything already flushed to the stream.
  std::map<std::string, Agg, std::less<>> flushed_spans;  // guarded by mu
  std::map<int, StageAgg> flushed_stages;                 // guarded by mu
};

Registry& reg() {
  static Registry r;
  return r;
}

thread_local ThreadLog* t_log = nullptr;

ThreadLog* tlog() {
  if (t_log == nullptr) {
    Registry& r = reg();
    auto log = std::make_unique<ThreadLog>();
    std::lock_guard<std::mutex> lock(r.mu);
    log->tid = static_cast<int>(r.logs.size());
    log->name = log->tid == 0 ? "main" : "thread-" + std::to_string(log->tid);
    t_log = log.get();
    r.logs.push_back(std::move(log));
  }
  return t_log;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<std::uint64_t>* counter_cell(std::string_view name) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters
             .emplace(std::string(name),
                      std::make_unique<std::atomic<std::uint64_t>>(0))
             .first;
  }
  return it->second.get();
}

void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  out += buf;
}

// Shared trace-event line emitters: the streamed file and trace_json()
// must produce byte-identical records.
void append_meta_line(std::string& out, bool& any_line, int tid,
                      const std::string& name) {
  out += any_line ? ",\n" : "\n";
  any_line = true;
  out += "  {\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(tid) +
         ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
         detail::json_escape(name) + "\"}}";
}

void append_event_line(std::string& out, bool& any_line, int tid,
                       const SpanEvent& e) {
  out += any_line ? ",\n" : "\n";
  any_line = true;
  out += "  {\"ph\": \"X\", \"pid\": 1, \"tid\": " + std::to_string(tid) +
         ", \"ts\": " + std::to_string(e.start_us) + ", \"dur\": " +
         std::to_string(e.dur_us) + ", \"name\": \"" +
         detail::json_escape(e.name) + "\", \"args\": {\"depth\": " +
         std::to_string(e.depth) + "}}";
}

void ensure_meta_slot(Stream& s, const Registry& r, int tid) {
  if (s.meta_emitted.size() <= static_cast<std::size_t>(tid))
    s.meta_emitted.resize(std::max(r.logs.size(),
                                   static_cast<std::size_t>(tid) + 1),
                          0);
}

// Flushes every per-thread log to the stream file and folds the flushed
// events into the report-side aggregates.  Caller holds r.mu.
void flush_stream_locked(Registry& r) {
  Stream& s = *r.stream;
  std::string out;
  std::size_t flushed = 0;
  for (const auto& log : r.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    if (log->events.empty()) continue;
    ensure_meta_slot(s, r, log->tid);
    if (!s.meta_emitted[static_cast<std::size_t>(log->tid)]) {
      append_meta_line(out, s.any_line, log->tid, log->name);
      s.meta_emitted[static_cast<std::size_t>(log->tid)] = 1;
    }
    for (const SpanEvent& e : log->events) {
      append_event_line(out, s.any_line, log->tid, e);
      r.flushed_spans[e.name].fold(e.dur_us);
      if (e.depth == 0) r.flushed_stages[log->tid].fold(e.name, e.dur_us);
    }
    flushed += log->events.size();
    log->events.clear();
  }
  if (flushed == 0) return;
  std::fwrite(out.data(), 1, out.size(), s.f);
  std::fflush(s.f);
  // buffered may transiently exceed the true count (incremented before the
  // event lands in its log), never the other way, so this cannot wrap.
  r.buffered.fetch_sub(std::min(flushed, r.buffered.load(std::memory_order_relaxed)),
                       std::memory_order_relaxed);
}

// Flushes the tail, emits thread_name records for named-but-idle lanes
// (matching trace_json's lane rules), writes the trailer and closes the
// file.  Caller holds r.mu.
bool finalize_stream_locked(Registry& r) {
  if (!r.stream) return false;
  flush_stream_locked(r);
  Stream& s = *r.stream;
  std::string out;
  for (const auto& log : r.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    ensure_meta_slot(s, r, log->tid);
    if (!s.meta_emitted[static_cast<std::size_t>(log->tid)] &&
        log->name.rfind("thread-", 0) != 0) {
      append_meta_line(out, s.any_line, log->tid, log->name);
      s.meta_emitted[static_cast<std::size_t>(log->tid)] = 1;
    }
  }
  out += "\n]}\n";
  std::fwrite(out.data(), 1, out.size(), s.f);
  const bool ok = std::fclose(s.f) == 0;
  r.stream.reset();
  r.streaming.store(false, std::memory_order_relaxed);
  r.stream_threshold.store(0, std::memory_order_relaxed);
  r.buffered.store(0, std::memory_order_relaxed);
  return ok;
}

}  // namespace

bool enabled() { return reg().enabled.load(std::memory_order_relaxed); }

void enable(bool on) {
  Registry& r = reg();
  // Make sure the epoch exists before the first span can start.
  if (on) detail::now_us();
  r.enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.stream) finalize_stream_locked(r);
  r.flushed_spans.clear();
  r.flushed_stages.clear();
  r.buffered.store(0, std::memory_order_relaxed);
  for (auto& [name, cell] : r.counters) cell->store(0, std::memory_order_relaxed);
  r.gauges.clear();
  for (auto& log : r.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    log->events.clear();
  }
  r.epoch_ns.store(steady_ns(), std::memory_order_relaxed);
}

Counter::Counter(std::string_view name) : cell_(counter_cell(name)) {}

void count(std::string_view name, std::uint64_t n) {
  counter_cell(name)->fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t counter_value(std::string_view name) {
  return counter_cell(name)->load(std::memory_order_relaxed);
}

void gauge_set(std::string_view name, double value) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end())
    r.gauges.emplace(std::string(name), value);
  else
    it->second = value;
}

void gauge_max(std::string_view name, double value) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end())
    r.gauges.emplace(std::string(name), value);
  else
    it->second = std::max(it->second, value);
}

std::map<std::string, std::uint64_t> counters_snapshot() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, cell] : r.counters)
    out.emplace(name, cell->load(std::memory_order_relaxed));
  return out;
}

std::map<std::string, double> gauges_snapshot() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  return {r.gauges.begin(), r.gauges.end()};
}

void set_thread_name(std::string name) {
  ThreadLog* log = tlog();
  std::lock_guard<std::mutex> lock(log->mu);
  log->name = std::move(name);
}

Span::Span(std::string name) {
  if (!enabled()) return;
  name_ = std::move(name);
  ThreadLog* log = tlog();
  depth_ = log->depth++;
  start_us_ = detail::now_us();
  active_ = true;
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end_us = detail::now_us();
  ThreadLog* log = tlog();
  --log->depth;
  Registry& r = reg();
  // Count before pushing: `buffered` may transiently overestimate but
  // never underestimate, so a concurrent flush cannot drive it negative.
  const bool streaming = r.streaming.load(std::memory_order_relaxed);
  if (streaming) r.buffered.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(log->mu);
    log->events.push_back(
        {std::move(name_), start_us_,
         end_us >= start_us_ ? end_us - start_us_ : 0, depth_});
  }
  // Threshold check outside log->mu: the flush takes r.mu then each
  // log->mu, the same order as trace_json.
  if (streaming &&
      r.buffered.load(std::memory_order_relaxed) >=
          r.stream_threshold.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(r.mu);
    if (r.stream) flush_stream_locked(r);
  }
}

namespace detail {

std::uint64_t now_us() {
  Registry& r = reg();
  if (ClockFn fn = r.clock.load(std::memory_order_relaxed)) return fn();
  const std::uint64_t ns = steady_ns();
  std::uint64_t epoch = r.epoch_ns.load(std::memory_order_relaxed);
  if (epoch == 0) {
    std::lock_guard<std::mutex> lock(r.mu);
    epoch = r.epoch_ns.load(std::memory_order_relaxed);
    if (epoch == 0) {
      epoch = ns;
      r.epoch_ns.store(ns, std::memory_order_relaxed);
    }
  }
  return ns >= epoch ? (ns - epoch) / 1000 : 0;
}

void set_clock_for_test(ClockFn fn) {
  reg().clock.store(fn, std::memory_order_relaxed);
}

long peak_rss_kb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;  // kilobytes on Linux
}

std::size_t buffered_span_events() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  std::size_t n = 0;
  for (const auto& log : r.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    n += log->events.size();
  }
  return n;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace detail

std::string trace_json() {
  Registry& r = reg();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool any_line = false;
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& log : r.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    if (log->events.empty() && log->name.rfind("thread-", 0) == 0) continue;
    append_meta_line(out, any_line, log->tid, log->name);
    for (const SpanEvent& e : log->events)
      append_event_line(out, any_line, log->tid, e);
  }
  out += "\n]}\n";
  return out;
}

bool stream_trace_to(const std::string& path,
                     std::size_t max_buffered_events) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.stream) finalize_stream_locked(r);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string_view header =
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  std::fwrite(header.data(), 1, header.size(), f);
  auto stream = std::make_unique<Stream>();
  stream->f = f;
  stream->path = path;
  r.stream = std::move(stream);
  // Seed the buffered count with whatever the logs already hold, so the
  // first flush's accounting starts exact.
  std::size_t pending = 0;
  for (const auto& log : r.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    pending += log->events.size();
  }
  r.buffered.store(pending, std::memory_order_relaxed);
  r.stream_threshold.store(std::max<std::size_t>(max_buffered_events, 1),
                           std::memory_order_relaxed);
  r.streaming.store(true, std::memory_order_relaxed);
  return true;
}

bool trace_streaming() {
  return reg().streaming.load(std::memory_order_relaxed);
}

bool close_trace_stream() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  return finalize_stream_locked(r);
}

std::string report_json(const ReportOptions& options) {
  Registry& r = reg();
  const std::uint64_t wall_us = detail::now_us();
  const int self_tid = tlog()->tid;

  // Stage decomposition: the calling thread's depth-0 spans, in first-start
  // order, aggregated by name.  Everything else lands in the per-span
  // aggregate table.
  std::vector<std::string> stage_order;
  std::map<std::string, Agg, std::less<>> stages;
  std::map<std::string, Agg, std::less<>> spans;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    // Events already flushed to a trace stream first: report aggregates
    // must cover the whole run, not just the still-buffered tail.
    spans = r.flushed_spans;
    if (const auto it = r.flushed_stages.find(self_tid);
        it != r.flushed_stages.end()) {
      stage_order = it->second.order;
      stages = it->second.by_name;
    }
    for (const auto& log : r.logs) {
      std::lock_guard<std::mutex> log_lock(log->mu);
      for (const SpanEvent& e : log->events) {
        spans[e.name].fold(e.dur_us);
        if (log->tid == self_tid && e.depth == 0) {
          auto [it, inserted] = stages.try_emplace(e.name);
          if (inserted) stage_order.push_back(e.name);
          ++it->second.count;
          it->second.total_us += e.dur_us;
        }
      }
    }
  }
  // Depth-0 spans end in start order on one thread, so recorded order is
  // already the stage order.
  std::uint64_t stage_total_us = 0;
  for (const auto& [name, a] : stages) stage_total_us += a.total_us;

  std::string out;
  out += "{\n  \"schema\": \"ftrsn-run-report\",\n  \"version\": 1,\n";
  out += "  \"wall_seconds\": ";
  append_num(out, static_cast<double>(wall_us) / 1e6);
  out += ",\n";
  if (options.include_machine) {
    out += "  \"machine\": {\"hardware_threads\": " +
           std::to_string(std::thread::hardware_concurrency()) +
           ", \"peak_rss_kb\": " + std::to_string(detail::peak_rss_kb()) +
           "},\n";
  }
  out += "  \"stages\": [";
  for (std::size_t i = 0; i < stage_order.size(); ++i) {
    const Agg& a = stages.find(stage_order[i])->second;
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": \"" + detail::json_escape(stage_order[i]) +
           "\", \"count\": " + std::to_string(a.count) + ", \"seconds\": ";
    append_num(out, static_cast<double>(a.total_us) / 1e6);
    out += "}";
  }
  out += "\n  ],\n  \"stages_total_seconds\": ";
  append_num(out, static_cast<double>(stage_total_us) / 1e6);
  out += ",\n  \"spans\": [";
  bool first = true;
  for (const auto& [name, a] : spans) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"name\": \"" + detail::json_escape(name) +
           "\", \"count\": " + std::to_string(a.count) +
           ", \"total_seconds\": ";
    append_num(out, static_cast<double>(a.total_us) / 1e6);
    out += ", \"max_seconds\": ";
    append_num(out, static_cast<double>(a.max_us) / 1e6);
    out += "}";
  }
  out += "\n  ],\n  \"counters\": {";
  first = true;
  for (const auto& [name, value] : counters_snapshot()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "\"" + detail::json_escape(name) +
           "\": " + std::to_string(value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_snapshot()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "\"" + detail::json_escape(name) + "\": ";
    append_num(out, value);
  }
  out += "\n  }\n}\n";
  return out;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = std::fclose(f) == 0 && written == contents.size();
  return ok;
}

bool write_trace(const std::string& path) {
  Registry& r = reg();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    // When this path is the active stream's sink, "writing the trace"
    // means finalizing the stream (flush tail + trailer), not replacing
    // the file with only the still-buffered events.
    if (r.stream && r.stream->path == path) return finalize_stream_locked(r);
  }
  return write_file(path, trace_json());
}

bool write_report(const std::string& path, const ReportOptions& options) {
  return write_file(path, report_json(options));
}

EnvConfig init_from_env(std::string_view default_prefix) {
  const auto resolve = [&](const char* var,
                           const char* suffix) -> std::string {
    const char* env = std::getenv(var);
    if (env == nullptr || !*env || std::string_view(env) == "0") return {};
    if (std::string_view(env) == "1")
      return std::string(default_prefix) + suffix;
    return env;
  };
  EnvConfig cfg;
  cfg.trace_path = resolve("FTRSN_TRACE", "_trace.json");
  cfg.report_path = resolve("FTRSN_REPORT", "_report.json");
  if (cfg.any()) enable(true);
  return cfg;
}

}  // namespace ftrsn::obs
