#include "obs/obs.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ftrsn::obs {

namespace {

// ---------------------------------------------------------------------------
// Global (process-wide) state: trace-event logs, the streaming sink, the
// clock, and the name interners.  Aggregation state lives per-context in
// ObsContext::Impl.  Both are intentionally leaked so static Counter /
// Histogram handles and exit-time spans stay valid during shutdown.
// ---------------------------------------------------------------------------

struct SpanEvent {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::int32_t depth = 0;
};

struct ThreadLog {
  int tid = 0;
  std::string name;               // guarded by mu
  std::vector<SpanEvent> events;  // guarded by mu
  std::int32_t depth = 0;         // touched only by the owning thread
  std::mutex mu;
};

// Active streaming-trace sink (guarded by Global::mu).
struct Stream {
  std::FILE* f = nullptr;
  std::string path;
  bool any_line = false;           // comma control, mirrors trace_json
  std::vector<char> meta_emitted;  // per tid: thread_name record written
};

struct Global {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadLog>> logs;
  std::atomic<std::uint64_t> epoch_ns{0};
  std::atomic<bool> enabled{false};
  std::atomic<detail::ClockFn> clock{nullptr};

  // Streaming state.  `streaming`/`buffered`/`stream_threshold` are
  // atomics so Span::~Span can consult them without taking mu.
  std::unique_ptr<Stream> stream;  // guarded by mu
  std::atomic<bool> streaming{false};
  std::atomic<std::size_t> buffered{0};
  std::atomic<std::size_t> stream_threshold{0};
};

Global& glob() {
  static Global* g = new Global();
  return *g;
}

// Name interning: process-wide stable ids shared by every context, so a
// Counter/Histogram handle is one integer and context cell tables are
// plain arrays.
constexpr std::size_t kChunkBits = 8;
constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;  // 256
constexpr std::size_t kMaxChunks = 256;                           // 65536 ids

struct Interner {
  std::mutex mu;
  std::map<std::string, std::uint32_t, std::less<>> ids;
  std::vector<const std::string*> names;  // indexed by id, strings stable

  std::uint32_t intern(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = ids.find(name);
    if (it != ids.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(names.size());
    if (id >= kMaxChunks * kChunkSize) {
      std::fprintf(stderr, "ftrsn_obs: too many distinct metric names\n");
      std::abort();
    }
    it = ids.emplace(std::string(name), id).first;
    names.push_back(&it->first);
    return id;
  }

  std::vector<std::pair<std::string, std::uint32_t>> snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::pair<std::string, std::uint32_t>> out;
    out.reserve(names.size());
    for (std::uint32_t id = 0; id < names.size(); ++id)
      out.emplace_back(*names[id], id);
    return out;
  }

  std::uint32_t size() {
    std::lock_guard<std::mutex> lock(mu);
    return static_cast<std::uint32_t>(names.size());
  }
};

Interner& counter_interner() {
  static Interner* i = new Interner();
  return *i;
}

Interner& hist_interner() {
  static Interner* i = new Interner();
  return *i;
}

// Lock-free chunked id -> cell table.  Reads are one acquire load plus an
// index; chunks are allocated on first touch under a grow mutex and never
// freed while the table lives.
template <typename CellT>
struct CellTable {
  std::array<std::atomic<CellT*>, kMaxChunks> chunks{};
  std::mutex grow_mu;

  ~CellTable() {
    for (auto& c : chunks) delete[] c.load(std::memory_order_relaxed);
  }

  CellT* cell(std::uint32_t id) {
    const std::size_t chunk = id >> kChunkBits;
    CellT* p = chunks[chunk].load(std::memory_order_acquire);
    if (p == nullptr) {
      std::lock_guard<std::mutex> lock(grow_mu);
      p = chunks[chunk].load(std::memory_order_relaxed);
      if (p == nullptr) {
        p = new CellT[kChunkSize]();
        chunks[chunk].store(p, std::memory_order_release);
      }
    }
    return p + (id & (kChunkSize - 1));
  }

  // Read-only lookup: null when the chunk was never touched (reads must
  // not allocate, so empty contexts stay empty).
  const CellT* peek(std::uint32_t id) const {
    const CellT* p = chunks[id >> kChunkBits].load(std::memory_order_acquire);
    return p == nullptr ? nullptr : p + (id & (kChunkSize - 1));
  }
};

struct HistCell {
  std::array<std::atomic<std::uint64_t>, 65> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> max{0};

  void record(std::uint64_t value) {
    buckets[histogram_bucket(value)].fetch_add(1, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t m = max.load(std::memory_order_relaxed);
    while (value > m &&
           !max.compare_exchange_weak(m, value, std::memory_order_relaxed)) {
    }
  }

  void merge_from(const HistCell& src) {
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      const std::uint64_t v = src.buckets[b].load(std::memory_order_relaxed);
      if (v) buckets[b].fetch_add(v, std::memory_order_relaxed);
    }
    count.fetch_add(src.count.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    sum.fetch_add(src.sum.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    const std::uint64_t sm = src.max.load(std::memory_order_relaxed);
    std::uint64_t m = max.load(std::memory_order_relaxed);
    while (sm > m &&
           !max.compare_exchange_weak(m, sm, std::memory_order_relaxed)) {
    }
  }

  void clear() {
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
    count.store(0, std::memory_order_relaxed);
    sum.store(0, std::memory_order_relaxed);
    max.store(0, std::memory_order_relaxed);
  }
};

// Aggregate of one span name (count / total / max duration).
struct Agg {
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t max_us = 0;

  void fold(std::uint64_t dur_us) {
    ++count;
    total_us += dur_us;
    max_us = std::max(max_us, dur_us);
  }

  void merge(const Agg& o) {
    count += o.count;
    total_us += o.total_us;
    max_us = std::max(max_us, o.max_us);
  }
};

// Depth-0 aggregates of the context owner, in first-start order (the
// report's stage table).
struct StageAgg {
  std::vector<std::string> order;
  std::map<std::string, Agg, std::less<>> by_name;

  Agg& slot(const std::string& name) {
    auto [it, inserted] = by_name.try_emplace(name);
    if (inserted) order.push_back(name);
    return it->second;
  }

  void fold(const std::string& name, std::uint64_t dur_us) {
    Agg& a = slot(name);
    ++a.count;
    a.total_us += dur_us;
  }
};

// Memory attribution of one span name: signed RSS delta across the span
// (sum over closes + worst single span) and peak-RSS growth while open.
struct MemAgg {
  std::uint64_t count = 0;
  long long rss_delta_kb = 0;
  long long rss_delta_max_kb = 0;
  long long peak_delta_kb = 0;

  void fold(long long rss_delta, long long peak_delta) {
    rss_delta_max_kb =
        count == 0 ? rss_delta : std::max(rss_delta_max_kb, rss_delta);
    ++count;
    rss_delta_kb += rss_delta;
    peak_delta_kb += peak_delta;
  }

  void merge(const MemAgg& o) {
    if (o.count == 0) return;
    rss_delta_max_kb =
        count == 0 ? o.rss_delta_max_kb
                   : std::max(rss_delta_max_kb, o.rss_delta_max_kb);
    count += o.count;
    rss_delta_kb += o.rss_delta_kb;
    peak_delta_kb += o.peak_delta_kb;
  }
};

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local ThreadLog* t_log = nullptr;

ThreadLog* tlog() {
  if (t_log == nullptr) {
    Global& g = glob();
    auto log = std::make_unique<ThreadLog>();
    std::lock_guard<std::mutex> lock(g.mu);
    log->tid = static_cast<int>(g.logs.size());
    log->name = log->tid == 0 ? "main" : "thread-" + std::to_string(log->tid);
    t_log = log.get();
    g.logs.push_back(std::move(log));
  }
  return t_log;
}

// Current-context routing: nullptr means the process-default context.
// t_ctx_base is the thread's span depth at attach time — spans opened
// under the scope report context-relative depth for stage/memory
// attribution (trace events keep the absolute depth).
thread_local ObsContext* t_ctx = nullptr;
thread_local std::int32_t t_ctx_base = 0;

}  // namespace

// ---------------------------------------------------------------------------
// Contexts
// ---------------------------------------------------------------------------

struct ObsContext::Impl {
  CellTable<std::atomic<std::uint64_t>> counters;
  CellTable<HistCell> hists;

  std::mutex mu;  // guards gauges / span_aggs / stages / mem
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, Agg, std::less<>> span_aggs;
  StageAgg stages;
  std::map<std::string, MemAgg, std::less<>> mem;

  // First thread to attach (tid 0 = "main" for the default context); only
  // that thread's context-depth-0 spans become report stages.
  std::atomic<int> owner_tid{-1};
};

ObsContext::ObsContext() : impl_(std::make_unique<Impl>()) {}
ObsContext::~ObsContext() = default;

ObsContext& default_context() {
  static ObsContext* ctx = [] {
    auto* c = new ObsContext();
    c->impl().owner_tid.store(0, std::memory_order_relaxed);
    return c;
  }();
  return *ctx;
}

ObsContext& current_context() {
  return t_ctx != nullptr ? *t_ctx : default_context();
}

ContextScope::ContextScope(ObsContext& ctx) {
  if (&current_context() == &ctx) return;  // re-attach: keep the depth base
  prev_ = t_ctx;
  prev_base_ = t_ctx_base;
  t_ctx = &ctx;
  t_ctx_base = tlog()->depth;
  int expected = -1;
  ctx.impl().owner_tid.compare_exchange_strong(expected, tlog()->tid,
                                               std::memory_order_relaxed);
  active_ = true;
}

ContextScope::~ContextScope() {
  if (!active_) return;
  t_ctx = prev_;
  t_ctx_base = prev_base_;
}

void ObsContext::merge_into(ObsContext& parent) const {
  Impl& src = *impl_;
  Impl& dst = *parent.impl_;
  const std::uint32_t n_counters = counter_interner().size();
  for (std::uint32_t id = 0; id < n_counters; ++id) {
    const auto* cell = src.counters.peek(id);
    if (cell == nullptr) continue;
    const std::uint64_t v = cell->load(std::memory_order_relaxed);
    if (v) dst.counters.cell(id)->fetch_add(v, std::memory_order_relaxed);
  }
  const std::uint32_t n_hists = hist_interner().size();
  for (std::uint32_t id = 0; id < n_hists; ++id) {
    const HistCell* cell = src.hists.peek(id);
    if (cell == nullptr || cell->count.load(std::memory_order_relaxed) == 0)
      continue;
    dst.hists.cell(id)->merge_from(*cell);
  }
  std::scoped_lock lock(src.mu, dst.mu);
  for (const auto& [name, value] : src.gauges) {
    auto [it, inserted] = dst.gauges.emplace(name, value);
    if (!inserted) it->second = std::max(it->second, value);
  }
  for (const auto& [name, agg] : src.span_aggs) dst.span_aggs[name].merge(agg);
  for (const std::string& name : src.stages.order)
    dst.stages.slot(name).merge(src.stages.by_name.find(name)->second);
  for (const auto& [name, agg] : src.mem) dst.mem[name].merge(agg);
}

// ---------------------------------------------------------------------------
// Enable / reset
// ---------------------------------------------------------------------------

bool enabled() { return glob().enabled.load(std::memory_order_relaxed); }

void enable(bool on) {
  Global& g = glob();
  // Make sure the epoch exists before the first span can start.
  if (on) detail::now_us();
  g.enabled.store(on, std::memory_order_relaxed);
}

namespace {

void reset_context(ObsContext::Impl& c) {
  const std::uint32_t n_counters = counter_interner().size();
  for (std::uint32_t id = 0; id < n_counters; ++id)
    if (const auto* cell = c.counters.peek(id))
      const_cast<std::atomic<std::uint64_t>*>(cell)->store(
          0, std::memory_order_relaxed);
  const std::uint32_t n_hists = hist_interner().size();
  for (std::uint32_t id = 0; id < n_hists; ++id)
    if (const HistCell* cell = c.hists.peek(id))
      const_cast<HistCell*>(cell)->clear();
  std::lock_guard<std::mutex> lock(c.mu);
  c.gauges.clear();
  c.span_aggs.clear();
  c.stages.order.clear();
  c.stages.by_name.clear();
  c.mem.clear();
}

bool finalize_stream_locked(Global& g);

}  // namespace

void reset() {
  ObsContext& ctx = current_context();
  reset_context(ctx.impl());
  if (&ctx != &default_context()) return;
  Global& g = glob();
  std::lock_guard<std::mutex> lock(g.mu);
  if (g.stream) finalize_stream_locked(g);
  g.buffered.store(0, std::memory_order_relaxed);
  for (auto& log : g.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    log->events.clear();
  }
  g.epoch_ns.store(steady_ns(), std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

Counter::Counter(std::string_view name) : id_(counter_interner().intern(name)) {}

void Counter::add(std::uint64_t n) {
  current_context().impl().counters.cell(id_)->fetch_add(
      n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  const auto* cell = current_context().impl().counters.peek(id_);
  return cell == nullptr ? 0 : cell->load(std::memory_order_relaxed);
}

void Counter::reset() {
  current_context().impl().counters.cell(id_)->store(
      0, std::memory_order_relaxed);
}

void count(std::string_view name, std::uint64_t n) { Counter(name).add(n); }

std::uint64_t counter_value(std::string_view name) {
  return Counter(name).value();
}

namespace {

std::map<std::string, std::uint64_t> counters_of(ObsContext::Impl& c) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, id] : counter_interner().snapshot()) {
    const auto* cell = c.counters.peek(id);
    out.emplace(name,
                cell == nullptr ? 0 : cell->load(std::memory_order_relaxed));
  }
  return out;
}

std::map<std::string, double> gauges_of(ObsContext::Impl& c) {
  std::lock_guard<std::mutex> lock(c.mu);
  return {c.gauges.begin(), c.gauges.end()};
}

std::map<std::string, HistogramSnapshot> histograms_of(ObsContext::Impl& c) {
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, id] : hist_interner().snapshot()) {
    const HistCell* cell = c.hists.peek(id);
    if (cell == nullptr) continue;
    HistogramSnapshot s;
    s.count = cell->count.load(std::memory_order_relaxed);
    if (s.count == 0) continue;
    s.sum = cell->sum.load(std::memory_order_relaxed);
    s.max = cell->max.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < s.buckets.size(); ++b)
      s.buckets[b] = cell->buckets[b].load(std::memory_order_relaxed);
    out.emplace(name, s);
  }
  return out;
}

}  // namespace

void gauge_set(std::string_view name, double value) {
  ObsContext::Impl& c = current_context().impl();
  std::lock_guard<std::mutex> lock(c.mu);
  auto it = c.gauges.find(name);
  if (it == c.gauges.end())
    c.gauges.emplace(std::string(name), value);
  else
    it->second = value;
}

void gauge_max(std::string_view name, double value) {
  ObsContext::Impl& c = current_context().impl();
  std::lock_guard<std::mutex> lock(c.mu);
  auto it = c.gauges.find(name);
  if (it == c.gauges.end())
    c.gauges.emplace(std::string(name), value);
  else
    it->second = std::max(it->second, value);
}

std::map<std::string, std::uint64_t> counters_snapshot() {
  return counters_of(current_context().impl());
}

std::map<std::string, double> gauges_snapshot() {
  return gauges_of(current_context().impl());
}

std::map<std::string, std::uint64_t> ObsContext::counters() const {
  return counters_of(*impl_);
}

std::map<std::string, double> ObsContext::gauges() const {
  return gauges_of(*impl_);
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

std::size_t histogram_bucket(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const double prev = static_cast<double>(cum);
    cum += buckets[b];
    if (static_cast<double>(cum) >= rank) {
      if (b == 0) return 0.0;
      const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(b));
      const double frac = (rank - prev) / static_cast<double>(buckets[b]);
      return std::min(lo + frac * (hi - lo), static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

Histogram::Histogram(std::string_view name)
    : id_(hist_interner().intern(name)) {}

void Histogram::record(std::uint64_t value) {
  current_context().impl().hists.cell(id_)->record(value);
}

ScopedLatency::ScopedLatency(Histogram& h) : h_(h), t0_ns_(steady_ns()) {}

ScopedLatency::~ScopedLatency() {
  const std::uint64_t now = steady_ns();
  h_.record(now >= t0_ns_ ? (now - t0_ns_) / 1000 : 0);
}

void histogram_record(std::string_view name, std::uint64_t value) {
  Histogram(name).record(value);
}

std::map<std::string, HistogramSnapshot> histograms_snapshot() {
  return histograms_of(current_context().impl());
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

void set_thread_name(std::string name) {
  ThreadLog* log = tlog();
  std::lock_guard<std::mutex> lock(log->mu);
  log->name = std::move(name);
}

Span::Span(std::string_view name) {
  if (!enabled()) return;
  name_ = std::string(name);
  ctx_ = &current_context();
  hist_id_ = hist_interner().intern(name);
  ThreadLog* log = tlog();
  depth_ = log->depth++;
  ctx_depth_ = depth_ - (t_ctx != nullptr ? t_ctx_base : 0);
  if (ctx_depth_ <= 1) {
    rss_open_kb_ = detail::current_rss_kb();
    peak_open_kb_ = detail::peak_rss_kb();
  }
  start_us_ = detail::now_us();
  active_ = true;
}

namespace {
void flush_stream_if_due(Global& g);
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end_us = detail::now_us();
  ThreadLog* log = tlog();
  --log->depth;
  const std::uint64_t dur_us = end_us >= start_us_ ? end_us - start_us_ : 0;

  // Fold aggregates into the context that was current at open (name_ is
  // moved into the trace event afterwards).
  ObsContext::Impl& c = ctx_->impl();
  c.hists.cell(hist_id_)->record(dur_us);
  {
    std::lock_guard<std::mutex> lock(c.mu);
    c.span_aggs[name_].fold(dur_us);
    if (ctx_depth_ == 0 &&
        log->tid == c.owner_tid.load(std::memory_order_relaxed))
      c.stages.fold(name_, dur_us);
    if (rss_open_kb_ >= 0)
      c.mem[name_].fold(detail::current_rss_kb() - rss_open_kb_,
                        detail::peak_rss_kb() - peak_open_kb_);
  }

  Global& g = glob();
  // Count before pushing: `buffered` may transiently overestimate but
  // never underestimate, so a concurrent flush cannot drive it negative.
  const bool streaming = g.streaming.load(std::memory_order_relaxed);
  if (streaming) g.buffered.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(log->mu);
    log->events.push_back({std::move(name_), start_us_, dur_us, depth_});
  }
  // Threshold check outside log->mu: the flush takes g.mu then each
  // log->mu, the same order as trace_json.
  if (streaming) flush_stream_if_due(g);
}

// ---------------------------------------------------------------------------
// Detail helpers
// ---------------------------------------------------------------------------

namespace detail {

std::uint64_t now_us() {
  Global& g = glob();
  if (ClockFn fn = g.clock.load(std::memory_order_relaxed)) return fn();
  const std::uint64_t ns = steady_ns();
  std::uint64_t epoch = g.epoch_ns.load(std::memory_order_relaxed);
  if (epoch == 0) {
    std::lock_guard<std::mutex> lock(g.mu);
    epoch = g.epoch_ns.load(std::memory_order_relaxed);
    if (epoch == 0) {
      epoch = ns;
      g.epoch_ns.store(ns, std::memory_order_relaxed);
    }
  }
  return ns >= epoch ? (ns - epoch) / 1000 : 0;
}

void set_clock_for_test(ClockFn fn) {
  glob().clock.store(fn, std::memory_order_relaxed);
}

long peak_rss_kb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;  // kilobytes on Linux
}

long current_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long pages_total = 0;
  long pages_resident = 0;
  const int n = std::fscanf(f, "%ld %ld", &pages_total, &pages_resident);
  std::fclose(f);
  if (n != 2) return 0;
  static const long kPageKb = sysconf(_SC_PAGESIZE) / 1024;
  return pages_resident * kPageKb;
}

std::size_t buffered_span_events() {
  Global& g = glob();
  std::lock_guard<std::mutex> lock(g.mu);
  std::size_t n = 0;
  for (const auto& log : g.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    n += log->events.size();
  }
  return n;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc() ? std::string(buf, p) : "0";
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Trace export (global: one merged trace per process)
// ---------------------------------------------------------------------------

namespace {

// Shared trace-event line emitters: the streamed file and trace_json()
// must produce byte-identical records.
void append_meta_line(std::string& out, bool& any_line, int tid,
                      const std::string& name) {
  out += any_line ? ",\n" : "\n";
  any_line = true;
  out += "  {\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(tid) +
         ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
         detail::json_escape(name) + "\"}}";
}

void append_event_line(std::string& out, bool& any_line, int tid,
                       const SpanEvent& e) {
  out += any_line ? ",\n" : "\n";
  any_line = true;
  out += "  {\"ph\": \"X\", \"pid\": 1, \"tid\": " + std::to_string(tid) +
         ", \"ts\": " + std::to_string(e.start_us) + ", \"dur\": " +
         std::to_string(e.dur_us) + ", \"name\": \"" +
         detail::json_escape(e.name) + "\", \"args\": {\"depth\": " +
         std::to_string(e.depth) + "}}";
}

void ensure_meta_slot(Stream& s, const Global& g, int tid) {
  if (s.meta_emitted.size() <= static_cast<std::size_t>(tid))
    s.meta_emitted.resize(
        std::max(g.logs.size(), static_cast<std::size_t>(tid) + 1), 0);
}

// Flushes every per-thread log to the stream file.  Caller holds g.mu.
// (Report aggregates are unaffected: they folded at span close.)
void flush_stream_locked(Global& g) {
  Stream& s = *g.stream;
  std::string out;
  std::size_t flushed = 0;
  for (const auto& log : g.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    if (log->events.empty()) continue;
    ensure_meta_slot(s, g, log->tid);
    if (!s.meta_emitted[static_cast<std::size_t>(log->tid)]) {
      append_meta_line(out, s.any_line, log->tid, log->name);
      s.meta_emitted[static_cast<std::size_t>(log->tid)] = 1;
    }
    for (const SpanEvent& e : log->events)
      append_event_line(out, s.any_line, log->tid, e);
    flushed += log->events.size();
    log->events.clear();
  }
  if (flushed == 0) return;
  std::fwrite(out.data(), 1, out.size(), s.f);
  std::fflush(s.f);
  // buffered may transiently exceed the true count (incremented before the
  // event lands in its log), never the other way, so this cannot wrap.
  g.buffered.fetch_sub(
      std::min(flushed, g.buffered.load(std::memory_order_relaxed)),
      std::memory_order_relaxed);
}

void flush_stream_if_due(Global& g) {
  if (g.buffered.load(std::memory_order_relaxed) >=
      g.stream_threshold.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(g.mu);
    if (g.stream) flush_stream_locked(g);
  }
}

// Flushes the tail, emits thread_name records for named-but-idle lanes
// (matching trace_json's lane rules), writes the trailer and closes the
// file.  Caller holds g.mu.
bool finalize_stream_locked(Global& g) {
  if (!g.stream) return false;
  flush_stream_locked(g);
  Stream& s = *g.stream;
  std::string out;
  for (const auto& log : g.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    ensure_meta_slot(s, g, log->tid);
    if (!s.meta_emitted[static_cast<std::size_t>(log->tid)] &&
        log->name.rfind("thread-", 0) != 0) {
      append_meta_line(out, s.any_line, log->tid, log->name);
      s.meta_emitted[static_cast<std::size_t>(log->tid)] = 1;
    }
  }
  out += "\n]}\n";
  std::fwrite(out.data(), 1, out.size(), s.f);
  const bool ok = std::fclose(s.f) == 0;
  g.stream.reset();
  g.streaming.store(false, std::memory_order_relaxed);
  g.stream_threshold.store(0, std::memory_order_relaxed);
  g.buffered.store(0, std::memory_order_relaxed);
  return ok;
}

}  // namespace

std::string trace_json() {
  Global& g = glob();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool any_line = false;
  std::lock_guard<std::mutex> lock(g.mu);
  for (const auto& log : g.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    if (log->events.empty() && log->name.rfind("thread-", 0) == 0) continue;
    append_meta_line(out, any_line, log->tid, log->name);
    for (const SpanEvent& e : log->events)
      append_event_line(out, any_line, log->tid, e);
  }
  out += "\n]}\n";
  return out;
}

bool stream_trace_to(const std::string& path,
                     std::size_t max_buffered_events) {
  Global& g = glob();
  std::lock_guard<std::mutex> lock(g.mu);
  if (g.stream) finalize_stream_locked(g);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string_view header =
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  std::fwrite(header.data(), 1, header.size(), f);
  auto stream = std::make_unique<Stream>();
  stream->f = f;
  stream->path = path;
  g.stream = std::move(stream);
  // Seed the buffered count with whatever the logs already hold, so the
  // first flush's accounting starts exact.
  std::size_t pending = 0;
  for (const auto& log : g.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    pending += log->events.size();
  }
  g.buffered.store(pending, std::memory_order_relaxed);
  g.stream_threshold.store(std::max<std::size_t>(max_buffered_events, 1),
                           std::memory_order_relaxed);
  g.streaming.store(true, std::memory_order_relaxed);
  return true;
}

bool trace_streaming() {
  return glob().streaming.load(std::memory_order_relaxed);
}

bool close_trace_stream() {
  Global& g = glob();
  std::lock_guard<std::mutex> lock(g.mu);
  return finalize_stream_locked(g);
}

// ---------------------------------------------------------------------------
// Run report (v2): per-context stages / spans / histograms / memory /
// counters / gauges
// ---------------------------------------------------------------------------

namespace {

void append_num(std::string& out, double v) {
  out += detail::format_double(v);
}

std::string render_report(ObsContext::Impl& c, const ReportOptions& options) {
  const std::uint64_t wall_us = detail::now_us();

  std::vector<std::string> stage_order;
  std::map<std::string, Agg, std::less<>> stages;
  std::map<std::string, Agg, std::less<>> spans;
  std::map<std::string, MemAgg, std::less<>> mem;
  {
    std::lock_guard<std::mutex> lock(c.mu);
    stage_order = c.stages.order;
    stages = c.stages.by_name;
    spans = c.span_aggs;
    mem = c.mem;
  }
  std::uint64_t stage_total_us = 0;
  for (const auto& [name, a] : stages) stage_total_us += a.total_us;

  std::string out;
  out += "{\n  \"schema\": \"ftrsn-run-report\",\n  \"version\": 2,\n";
  out += "  \"wall_seconds\": ";
  append_num(out, static_cast<double>(wall_us) / 1e6);
  out += ",\n";
  if (options.include_machine) {
    out += "  \"machine\": {\"hardware_threads\": " +
           std::to_string(std::thread::hardware_concurrency()) +
           ", \"peak_rss_kb\": " + std::to_string(detail::peak_rss_kb()) +
           "},\n";
  }
  out += "  \"stages\": [";
  for (std::size_t i = 0; i < stage_order.size(); ++i) {
    const Agg& a = stages.find(stage_order[i])->second;
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": \"" + detail::json_escape(stage_order[i]) +
           "\", \"count\": " + std::to_string(a.count) + ", \"seconds\": ";
    append_num(out, static_cast<double>(a.total_us) / 1e6);
    out += "}";
  }
  out += "\n  ],\n  \"stages_total_seconds\": ";
  append_num(out, static_cast<double>(stage_total_us) / 1e6);
  out += ",\n  \"spans\": [";
  bool first = true;
  for (const auto& [name, a] : spans) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"name\": \"" + detail::json_escape(name) +
           "\", \"count\": " + std::to_string(a.count) +
           ", \"total_seconds\": ";
    append_num(out, static_cast<double>(a.total_us) / 1e6);
    out += ", \"max_seconds\": ";
    append_num(out, static_cast<double>(a.max_us) / 1e6);
    out += "}";
  }
  out += "\n  ],\n  \"histograms\": [";
  first = true;
  for (const auto& [name, h] : histograms_of(c)) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"name\": \"" + detail::json_escape(name) +
           "\", \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) +
           ", \"max\": " + std::to_string(h.max) + ", \"p50\": ";
    append_num(out, h.p50());
    out += ", \"p90\": ";
    append_num(out, h.p90());
    out += ", \"p99\": ";
    append_num(out, h.p99());
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      // [bucket lower bound, count]; bucket 0 holds exact zeros.
      const std::uint64_t lo = b == 0 ? 0 : std::uint64_t{1} << (b - 1);
      out += first_bucket ? "[" : ", [";
      first_bucket = false;
      out += std::to_string(lo) + ", " + std::to_string(h.buckets[b]) + "]";
    }
    out += "]}";
  }
  out += "\n  ],\n";
  if (options.include_machine) {
    out += "  \"mem\": {\"current_rss_kb\": " +
           std::to_string(detail::current_rss_kb()) +
           ", \"peak_rss_kb\": " + std::to_string(detail::peak_rss_kb()) +
           ", \"spans\": [";
    first = true;
    for (const auto& [name, m] : mem) {
      if (m.count == 0) continue;
      out += first ? "\n    " : ",\n    ";
      first = false;
      out += "{\"name\": \"" + detail::json_escape(name) +
             "\", \"count\": " + std::to_string(m.count) +
             ", \"rss_delta_kb\": " + std::to_string(m.rss_delta_kb) +
             ", \"rss_delta_max_kb\": " + std::to_string(m.rss_delta_max_kb) +
             ", \"peak_delta_kb\": " + std::to_string(m.peak_delta_kb) + "}";
    }
    out += first ? "]},\n" : "\n  ]},\n";
  }
  out += "  \"counters\": {";
  first = true;
  for (const auto& [name, value] : counters_of(c)) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "\"" + detail::json_escape(name) + "\": " + std::to_string(value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_of(c)) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "\"" + detail::json_escape(name) + "\": ";
    append_num(out, value);
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace

std::string report_json(const ReportOptions& options) {
  return render_report(current_context().impl(), options);
}

bool write_file(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written =
      std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = std::fclose(f) == 0 && written == contents.size();
  return ok;
}

bool write_trace(const std::string& path) {
  Global& g = glob();
  {
    std::lock_guard<std::mutex> lock(g.mu);
    // When this path is the active stream's sink, "writing the trace"
    // means finalizing the stream (flush tail + trailer), not replacing
    // the file with only the still-buffered events.
    if (g.stream && g.stream->path == path) return finalize_stream_locked(g);
  }
  return write_file(path, trace_json());
}

bool write_report(const std::string& path, const ReportOptions& options) {
  return write_file(path, report_json(options));
}

EnvConfig init_from_env(std::string_view default_prefix) {
  const auto resolve = [&](const char* var,
                           const char* suffix) -> std::string {
    const char* env = std::getenv(var);
    if (env == nullptr || !*env || std::string_view(env) == "0") return {};
    if (std::string_view(env) == "1")
      return std::string(default_prefix) + suffix;
    return env;
  };
  EnvConfig cfg;
  cfg.trace_path = resolve("FTRSN_TRACE", "_trace.json");
  cfg.report_path = resolve("FTRSN_REPORT", "_report.json");
  if (cfg.any()) enable(true);
  return cfg;
}

}  // namespace ftrsn::obs
