// Rsn::content_hash — the content address of a structural RSN.
//
// Lives in its own translation unit because the canonical serialization is
// the io/rsn_text writer (rsn/ headers must not pull io/ in, but the single
// static library links the definition fine).  The digest is domain-tagged
// and versioned: any change to the text format that alters bytes must bump
// the tag, or every serve-cache key and pinned golden silently changes
// meaning.
#include "io/rsn_text.hpp"
#include "rsn/rsn.hpp"
#include "util/sha256.hpp"

namespace ftrsn {

std::string Rsn::content_hash() const {
  Sha256 h;
  h.update("ftrsn-rsn-v1\n");
  h.update(write_rsn_text(*this));
  return h.hex();
}

}  // namespace ftrsn
