#include "rsn/rsn.hpp"

#include <algorithm>

#include "lint/lint.hpp"

namespace ftrsn {

NodeId Rsn::add_primary_in(std::string name) {
  RsnNode n;
  n.kind = NodeKind::kPrimaryIn;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  const NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  primary_ins_.push_back(id);
  return id;
}

NodeId Rsn::add_primary_out(std::string name, NodeId source) {
  RsnNode n;
  n.kind = NodeKind::kPrimaryOut;
  n.name = std::move(name);
  n.scan_in = source;
  nodes_.push_back(std::move(n));
  const NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  primary_outs_.push_back(id);
  return id;
}

NodeId Rsn::add_segment(std::string name, int length, NodeId source,
                        bool has_shadow, SegRole role) {
  FTRSN_CHECK(length >= 1);
  RsnNode n;
  n.kind = NodeKind::kSegment;
  n.name = std::move(name);
  n.length = length;
  n.has_shadow = has_shadow;
  n.role = role;
  n.scan_in = source;
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Rsn::add_mux(std::string name, NodeId in0, NodeId in1, CtrlRef addr) {
  RsnNode n;
  n.kind = NodeKind::kMux;
  n.name = std::move(name);
  n.mux_in = {in0, in1};
  n.addr = addr;
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Rsn::set_select(NodeId seg, CtrlRef expr) {
  FTRSN_CHECK(node(seg).is_segment());
  nodes_[seg].select = expr;
}
void Rsn::set_cap_dis(NodeId seg, CtrlRef expr) {
  FTRSN_CHECK(node(seg).is_segment());
  nodes_[seg].cap_dis = expr;
}
void Rsn::set_up_dis(NodeId seg, CtrlRef expr) {
  FTRSN_CHECK(node(seg).is_segment());
  nodes_[seg].up_dis = expr;
}
void Rsn::set_scan_in(NodeId n, NodeId source) {
  FTRSN_CHECK(node(n).kind == NodeKind::kSegment ||
              node(n).kind == NodeKind::kPrimaryOut);
  nodes_[n].scan_in = source;
}
void Rsn::set_mux_in(NodeId mux, int which, NodeId source) {
  FTRSN_CHECK(node(mux).is_mux() && (which == 0 || which == 1));
  nodes_[mux].mux_in[which] = source;
}
void Rsn::set_reset_shadow(NodeId seg, std::uint64_t value) {
  FTRSN_CHECK(node(seg).is_segment());
  nodes_[seg].reset_shadow = value;
}
void Rsn::set_hier(NodeId n, int module, int level) {
  nodes_[n].module = module;
  nodes_[n].hier_level = level;
}
void Rsn::set_shadow_replicas(NodeId seg, int replicas) {
  FTRSN_CHECK(node(seg).is_segment() && replicas >= 1 && replicas <= 3);
  nodes_[seg].shadow_replicas = replicas;
}

std::vector<std::vector<NodeId>> Rsn::successors() const {
  std::vector<std::vector<NodeId>> succ(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const RsnNode& n = nodes_[id];
    if (n.kind == NodeKind::kSegment || n.kind == NodeKind::kPrimaryOut) {
      if (n.scan_in != kInvalidNode) succ[n.scan_in].push_back(id);
    } else if (n.kind == NodeKind::kMux) {
      for (NodeId in : n.mux_in)
        if (in != kInvalidNode) succ[in].push_back(id);
    }
  }
  return succ;
}

std::vector<NodeId> Rsn::topo_order() const {
  // Kahn's algorithm over scan interconnects.
  std::vector<int> indeg(nodes_.size(), 0);
  for (const RsnNode& n : nodes_) {
    if (n.kind == NodeKind::kSegment || n.kind == NodeKind::kPrimaryOut) {
      if (n.scan_in != kInvalidNode) {
      }
    }
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const RsnNode& n = nodes_[id];
    if (n.kind == NodeKind::kSegment || n.kind == NodeKind::kPrimaryOut) {
      indeg[id] = (n.scan_in != kInvalidNode) ? 1 : 0;
    } else if (n.kind == NodeKind::kMux) {
      indeg[id] = int(n.mux_in[0] != kInvalidNode) +
                  int(n.mux_in[1] != kInvalidNode);
    }
  }
  const auto succ = successors();
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  std::vector<NodeId> queue;
  for (NodeId id = 0; id < nodes_.size(); ++id)
    if (indeg[id] == 0) queue.push_back(id);
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    order.push_back(v);
    for (NodeId s : succ[v])
      if (--indeg[s] == 0) queue.push_back(s);
  }
  FTRSN_CHECK_MSG(order.size() == nodes_.size(),
                  "scan interconnect structure contains a cycle");
  return order;
}

std::vector<std::string> Rsn::node_names() const {
  std::vector<std::string> names(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) names[id] = nodes_[id].name;
  return names;
}

RsnStats Rsn::stats() const {
  RsnStats s;
  s.primary_ins = static_cast<int>(primary_ins_.size());
  s.primary_outs = static_cast<int>(primary_outs_.size());
  const auto succ = successors();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const RsnNode& n = nodes_[id];
    s.levels = std::max(s.levels, n.hier_level);
    if (n.is_segment()) {
      ++s.segments;
      s.bits += n.length;
    } else if (n.is_mux()) {
      ++s.muxes;
    }
    if (!succ[id].empty()) ++s.nets;  // scan output net
  }
  // Control nets: every referenced expression node drives one net; a shadow
  // atom with r replicas contributes r physical wires.
  for (CtrlRef r = 0; static_cast<std::size_t>(r) < ctrl_.size(); ++r) {
    const CtrlNode& c = ctrl_.node(r);
    if (c.op == CtrlOp::kConst) continue;
    if (ctrl_.fanout(r) == 0) continue;
    if (c.op == CtrlOp::kShadowBit && c.seg < nodes_.size()) {
      s.nets += 1;
    } else {
      s.nets += 1;
    }
  }
  return s;
}

std::vector<lint::Diagnostic> Rsn::validate() const {
  return lint::lint_rsn(*this);
}

void Rsn::validate_or_die() const {
  lint::throw_if_errors(validate(), "RSN", node_names());
}

namespace {
/// Pool-order-independent canonical form of an expression: commutative
/// operands are sorted lexicographically, so two pools interned in
/// different orders compare equal.
std::string canonical_expr(const CtrlPool& pool, CtrlRef r,
                           const std::vector<std::string>& names) {
  const CtrlNode& n = pool.node(r);
  switch (n.op) {
    case CtrlOp::kConst:
      return n.bit ? "1" : "0";
    case CtrlOp::kEnable:
      return "EN";
    case CtrlOp::kPortSel:
      return strprintf("PSEL%u", n.bit);
    case CtrlOp::kShadowBit:
      return strprintf("@%s.%u.%u",
                       n.seg < names.size() ? names[n.seg].c_str() : "?",
                       n.bit, n.replica);
    case CtrlOp::kNot:
      return strprintf("!%u(", n.bit) + canonical_expr(pool, n.kid[0], names) +
             ")";
    case CtrlOp::kAnd:
    case CtrlOp::kOr:
    case CtrlOp::kMaj3: {
      std::vector<std::string> kids;
      for (int i = 0; i < n.arity(); ++i)
        kids.push_back(canonical_expr(pool, n.kid[i], names));
      std::sort(kids.begin(), kids.end());
      std::string out = strprintf(
          "%c%u(",
          n.op == CtrlOp::kAnd ? '&' : (n.op == CtrlOp::kOr ? '|' : 'M'),
          n.bit);
      for (const std::string& k : kids) out += k + ",";
      return out + ")";
    }
  }
  return "?";
}
}  // namespace

bool Rsn::structurally_equal(const Rsn& other) const {
  if (nodes_.size() != other.nodes_.size()) return false;
  if (primary_ins_ != other.primary_ins_) return false;
  if (primary_outs_ != other.primary_outs_) return false;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const RsnNode& a = nodes_[id];
    const RsnNode& b = other.nodes_[id];
    if (a.kind != b.kind || a.name != b.name || a.role != b.role ||
        a.length != b.length || a.has_shadow != b.has_shadow ||
        a.shadow_replicas != b.shadow_replicas ||
        a.reset_shadow != b.reset_shadow || a.scan_in != b.scan_in ||
        a.mux_in != b.mux_in)
      return false;
    // Control expressions compared in canonical form (pools may be
    // structurally identical but differently interned).
    const auto names_a = node_names();
    const auto names_b = other.node_names();
    if (canonical_expr(ctrl_, a.select, names_a) !=
            canonical_expr(other.ctrl_, b.select, names_b) ||
        canonical_expr(ctrl_, a.cap_dis, names_a) !=
            canonical_expr(other.ctrl_, b.cap_dis, names_b) ||
        canonical_expr(ctrl_, a.up_dis, names_a) !=
            canonical_expr(other.ctrl_, b.up_dis, names_b))
      return false;
    if (a.is_mux() && canonical_expr(ctrl_, a.addr, names_a) !=
                          canonical_expr(other.ctrl_, b.addr, names_b))
      return false;
  }
  return true;
}

Rsn make_example_rsn() {
  Rsn rsn;
  const NodeId in = rsn.add_primary_in("SI");
  const NodeId a = rsn.add_segment("A", 2, in, /*has_shadow=*/true);
  const NodeId b = rsn.add_segment("B", 3, a, /*has_shadow=*/true);
  CtrlPool& ctrl = rsn.ctrl();
  // mux1 forwards either A directly (addr 0) or through B (addr 1).
  const NodeId mux1 = rsn.add_mux("mux1", a, b, ctrl.shadow_bit(a, 0));
  const NodeId c = rsn.add_segment("C", 4, mux1, /*has_shadow=*/false);
  // mux2 forwards either mux1 directly (addr 0, C bypassed) or through C.
  const NodeId mux2 = rsn.add_mux("mux2", mux1, c, ctrl.shadow_bit(b, 0));
  const NodeId d = rsn.add_segment("D", 2, mux2, /*has_shadow=*/false);
  rsn.add_primary_out("SO", d);

  // Reset: A[0]=1 selects B onto the path; B[0]=0 bypasses C -> active path
  // is A, B, D as in Fig. 2.
  rsn.set_reset_shadow(a, 1);
  rsn.set_reset_shadow(b, 0);

  const CtrlRef en = ctrl.enable_input();
  rsn.set_select(a, en);
  rsn.set_select(d, en);
  rsn.set_select(b, ctrl.mk_and(en, ctrl.shadow_bit(a, 0)));
  rsn.set_select(c, ctrl.mk_and(en, ctrl.shadow_bit(b, 0)));
  rsn.set_hier(a, 0, 1);
  rsn.set_hier(b, 0, 2);
  rsn.set_hier(c, 0, 2);
  rsn.set_hier(d, 0, 1);
  rsn.validate_or_die();
  return rsn;
}

Rsn make_chain_rsn(int num_segments, int bits_per_segment) {
  FTRSN_CHECK(num_segments >= 1);
  Rsn rsn;
  NodeId prev = rsn.add_primary_in("SI");
  const CtrlRef en = rsn.ctrl().enable_input();
  for (int i = 0; i < num_segments; ++i) {
    prev = rsn.add_segment(strprintf("seg%d", i), bits_per_segment, prev);
    rsn.set_select(prev, en);
    rsn.set_hier(prev, 0, 1);
  }
  rsn.add_primary_out("SO", prev);
  rsn.validate_or_die();
  return rsn;
}

}  // namespace ftrsn
