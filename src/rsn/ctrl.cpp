#include "rsn/ctrl.hpp"

#include <functional>

namespace ftrsn {

std::size_t CtrlPool::NodeHash::operator()(const CtrlNode& n) const {
  std::size_t h = static_cast<std::size_t>(n.op);
  const auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (CtrlRef k : n.kid) mix(static_cast<std::size_t>(k) + 7);
  mix(n.seg);
  mix(n.bit);
  mix(n.replica);
  return h;
}

CtrlPool::CtrlPool() {
  CtrlNode f;
  f.op = CtrlOp::kConst;
  f.bit = 0;
  CtrlNode t;
  t.op = CtrlOp::kConst;
  t.bit = 1;
  nodes_ = {f, t};
  fanout_ = {0, 0};
  index_[f] = kCtrlFalse;
  index_[t] = kCtrlTrue;
}

CtrlRef CtrlPool::intern(const CtrlNode& n) {
  auto it = index_.find(n);
  if (it != index_.end()) return it->second;
  const CtrlRef r = static_cast<CtrlRef>(nodes_.size());
  nodes_.push_back(n);
  fanout_.push_back(0);
  index_.emplace(n, r);
  for (int i = 0; i < n.arity(); ++i) ++fanout_[check(n.kid[i])];
  return r;
}

CtrlRef CtrlPool::enable_input() {
  CtrlNode n;
  n.op = CtrlOp::kEnable;
  return intern(n);
}

CtrlRef CtrlPool::port_select_input(std::uint16_t index) {
  CtrlNode n;
  n.op = CtrlOp::kPortSel;
  n.bit = index;
  return intern(n);
}

CtrlRef CtrlPool::shadow_bit(NodeId seg, std::uint16_t bit,
                             std::uint8_t replica) {
  FTRSN_CHECK(seg != kInvalidNode);
  CtrlNode n;
  n.op = CtrlOp::kShadowBit;
  n.seg = seg;
  n.bit = bit;
  n.replica = replica;
  return intern(n);
}

CtrlRef CtrlPool::mk_not(CtrlRef a, std::uint16_t salt) {
  if (a == kCtrlFalse) return kCtrlTrue;
  if (a == kCtrlTrue) return kCtrlFalse;
  if (node(a).op == CtrlOp::kNot) return node(a).kid[0];
  CtrlNode n;
  n.op = CtrlOp::kNot;
  n.kid[0] = a;
  n.bit = salt;
  return intern(n);
}

CtrlRef CtrlPool::mk_and(CtrlRef a, CtrlRef b, std::uint16_t salt) {
  if (a == kCtrlFalse || b == kCtrlFalse) return kCtrlFalse;
  if (a == kCtrlTrue) return b;
  if (b == kCtrlTrue) return a;
  if (a == b) return a;
  if (a > b) std::swap(a, b);
  CtrlNode n;
  n.op = CtrlOp::kAnd;
  n.kid[0] = a;
  n.kid[1] = b;
  n.bit = salt;
  return intern(n);
}

CtrlRef CtrlPool::mk_or(CtrlRef a, CtrlRef b, std::uint16_t salt) {
  if (a == kCtrlTrue || b == kCtrlTrue) return kCtrlTrue;
  if (a == kCtrlFalse) return b;
  if (b == kCtrlFalse) return a;
  if (a == b) return a;
  if (a > b) std::swap(a, b);
  CtrlNode n;
  n.op = CtrlOp::kOr;
  n.kid[0] = a;
  n.kid[1] = b;
  n.bit = salt;
  return intern(n);
}

CtrlRef CtrlPool::mk_maj3(CtrlRef a, CtrlRef b, CtrlRef c,
                          std::uint16_t salt) {
  CtrlNode n;
  n.op = CtrlOp::kMaj3;
  n.kid = {a, b, c};
  n.bit = salt;
  return intern(n);
}

void CtrlPool::add_port_use(CtrlRef r) { ++fanout_[check(r)]; }

void CtrlPool::reset_port_uses() {
  // Recompute fanout from expression structure only.
  for (auto& f : fanout_) f = 0;
  for (const CtrlNode& n : nodes_)
    for (int i = 0; i < n.arity(); ++i) ++fanout_[check(n.kid[i])];
}

std::string CtrlPool::to_string(CtrlRef r,
                                const std::vector<std::string>& seg_name,
                                int max_depth) const {
  if (max_depth <= 0) return "...";
  const CtrlNode& n = node(r);
  const auto kid_str = [&](int i) {
    return to_string(n.kid[i], seg_name, max_depth - 1);
  };
  switch (n.op) {
    case CtrlOp::kConst: return n.bit ? "1" : "0";
    case CtrlOp::kEnable: return "EN";
    case CtrlOp::kPortSel: return "PSEL";
    case CtrlOp::kShadowBit: {
      std::string s = n.seg < seg_name.size() ? seg_name[n.seg]
                                              : strprintf("n%u", n.seg);
      if (n.bit != 0) s += strprintf("[%u]", n.bit);
      if (n.replica != 0) s += strprintf("{r%u}", n.replica);
      return s;
    }
    case CtrlOp::kNot: return "!" + kid_str(0);
    case CtrlOp::kAnd: return "(" + kid_str(0) + " & " + kid_str(1) + ")";
    case CtrlOp::kOr: return "(" + kid_str(0) + " | " + kid_str(1) + ")";
    case CtrlOp::kMaj3:
      return "MAJ(" + kid_str(0) + ", " + kid_str(1) + ", " + kid_str(2) + ")";
  }
  return "?";
}

}  // namespace ftrsn
