// Control-logic expressions of an RSN.
//
// Select / capture-disable / update-disable predicates and scan-multiplexer
// address signals are boolean functions over (a) shadow-register bits of
// scan segments and (b) the RSN's primary enable input.  They are stored in
// a hash-consed expression pool per RSN so that shared subexpressions
// (fanout stems, which are stuck-at fault sites in the paper's fault
// universe) are represented exactly once.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/common.hpp"

namespace ftrsn {

/// Index of a node in the RSN node table.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Index of an expression node in the control pool.
using CtrlRef = std::int32_t;
inline constexpr CtrlRef kCtrlInvalid = -1;
/// The pool always contains FALSE at index 0 and TRUE at index 1.
inline constexpr CtrlRef kCtrlFalse = 0;
inline constexpr CtrlRef kCtrlTrue = 1;

enum class CtrlOp : std::uint8_t {
  kConst,      ///< constant; value in `bit` (0/1)
  kEnable,     ///< primary enable/select input of the RSN
  kPortSel,    ///< primary scan-port-select input (chooses duplicated ports)
  kShadowBit,  ///< shadow-register bit `bit`, replica `replica`, of segment `seg`
  kNot,
  kAnd,
  kOr,
  kMaj3,       ///< majority of three (TMR voter); `bit` salts per-voter identity
};

struct CtrlNode {
  CtrlOp op = CtrlOp::kConst;
  std::array<CtrlRef, 3> kid{kCtrlInvalid, kCtrlInvalid, kCtrlInvalid};
  NodeId seg = kInvalidNode;  ///< kShadowBit: owning segment
  std::uint16_t bit = 0;      ///< kShadowBit: bit index; kConst: value
  std::uint8_t replica = 0;   ///< kShadowBit: shadow latch replica (TMR)

  int arity() const {
    switch (op) {
      case CtrlOp::kNot: return 1;
      case CtrlOp::kAnd:
      case CtrlOp::kOr: return 2;
      case CtrlOp::kMaj3: return 3;
      default: return 0;
    }
  }
  bool operator==(const CtrlNode& o) const {
    return op == o.op && kid == o.kid && seg == o.seg && bit == o.bit &&
           replica == o.replica;
  }
};

/// Hash-consed pool of control expression nodes.
class CtrlPool {
 public:
  CtrlPool();

  CtrlRef constant(bool value) { return value ? kCtrlTrue : kCtrlFalse; }
  CtrlRef enable_input();
  /// Primary control pin `index` (port/path selection from outside the
  /// network; excluded from the fault universe like all global control).
  CtrlRef port_select_input(std::uint16_t index = 0);
  CtrlRef shadow_bit(NodeId seg, std::uint16_t bit = 0, std::uint8_t replica = 0);
  CtrlRef mk_not(CtrlRef a, std::uint16_t salt = 0);
  /// `salt` separates physically duplicated gate instances (selective
  /// hardening synthesizes independent copies of the select logic).
  CtrlRef mk_and(CtrlRef a, CtrlRef b, std::uint16_t salt = 0);
  CtrlRef mk_or(CtrlRef a, CtrlRef b, std::uint16_t salt = 0);
  /// `salt` distinguishes physically separate voters with identical inputs
  /// (each driven mux gets its own TMR voter and thus its own fault site).
  CtrlRef mk_maj3(CtrlRef a, CtrlRef b, CtrlRef c, std::uint16_t salt = 0);

  const CtrlNode& node(CtrlRef r) const { return nodes_[check(r)]; }
  std::size_t size() const { return nodes_.size(); }

  /// Number of gates a node costs in hardware (constants and atoms: 0).
  static bool is_gate(const CtrlNode& n) {
    return n.op == CtrlOp::kNot || n.op == CtrlOp::kAnd ||
           n.op == CtrlOp::kOr || n.op == CtrlOp::kMaj3;
  }

  /// Fanout count of each node: number of parent expression nodes plus
  /// external port references (the caller adds port uses via `add_port_use`).
  /// Used to enumerate fanout-stem fault sites.
  void add_port_use(CtrlRef r);
  int fanout(CtrlRef r) const { return fanout_[check(r)]; }
  void reset_port_uses();

  /// Evaluates the expression with a callback for atoms and optional forced
  /// values.  `forced` maps CtrlRef -> 0/1 (use -1 entries for "not forced");
  /// may be empty.  `atom` is called for kEnable / kShadowBit leaves.
  template <typename AtomFn>
  bool eval(CtrlRef r, const AtomFn& atom,
            const std::vector<std::int8_t>* forced = nullptr) const {
    const std::size_t i = check(r);
    if (forced && i < forced->size() && (*forced)[i] >= 0)
      return (*forced)[i] != 0;
    const CtrlNode& n = nodes_[i];
    switch (n.op) {
      case CtrlOp::kConst: return n.bit != 0;
      case CtrlOp::kEnable:
      case CtrlOp::kPortSel:
      case CtrlOp::kShadowBit: return atom(n);
      case CtrlOp::kNot: return !eval(n.kid[0], atom, forced);
      case CtrlOp::kAnd:
        return eval(n.kid[0], atom, forced) && eval(n.kid[1], atom, forced);
      case CtrlOp::kOr:
        return eval(n.kid[0], atom, forced) || eval(n.kid[1], atom, forced);
      case CtrlOp::kMaj3: {
        const int s = int(eval(n.kid[0], atom, forced)) +
                      int(eval(n.kid[1], atom, forced)) +
                      int(eval(n.kid[2], atom, forced));
        return s >= 2;
      }
    }
    return false;
  }

  /// Pretty-print (for reports reproducing Fig. 5). `seg_name` maps a
  /// segment NodeId to a display name.  `max_depth` bounds the expansion:
  /// expression DAGs with heavy sharing would otherwise print as
  /// exponentially large trees; deeper subterms render as "...".
  std::string to_string(CtrlRef r, const std::vector<std::string>& seg_name,
                        int max_depth = 12) const;

 private:
  std::size_t check(CtrlRef r) const {
    FTRSN_CHECK_MSG(r >= 0 && static_cast<std::size_t>(r) < nodes_.size(),
                    "invalid CtrlRef");
    return static_cast<std::size_t>(r);
  }
  CtrlRef intern(const CtrlNode& n);

  struct NodeHash {
    std::size_t operator()(const CtrlNode& n) const;
  };
  std::vector<CtrlNode> nodes_;
  std::vector<int> fanout_;
  std::unordered_map<CtrlNode, CtrlRef, NodeHash> index_;
};

}  // namespace ftrsn
