// Structural model of a reconfigurable scan network (RSN), IEEE Std 1687
// style (paper §II-A).
//
// An RSN is a netlist of scan *nodes* — primary scan ports, scan segments
// and 2:1 scan multiplexers — connected by scan interconnects, plus control
// logic (select / capture-disable / update-disable predicates and mux
// address signals) expressed over shadow-register bits (rsn/ctrl.hpp).
//
// A scan segment (paper Fig. 3) has a shift register of `length` bits
// between its scan-in and scan-out port, and an optional shadow register,
// mandatory when the segment provides write access to an instrument or
// drives control logic.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "rsn/ctrl.hpp"
#include "util/common.hpp"

namespace ftrsn {

enum class NodeKind : std::uint8_t {
  kPrimaryIn,   ///< primary scan-in port (root of the dataflow)
  kPrimaryOut,  ///< primary scan-out port (sink of the dataflow)
  kSegment,     ///< scan segment (shift register + optional shadow)
  kMux,         ///< 2:1 scan multiplexer
};

/// Provenance of a segment, used for reporting and to keep the
/// fault-tolerance metric comparable between original and synthesized RSNs.
enum class SegRole : std::uint8_t {
  kInstrument,       ///< instrument access register (e.g. a core scan chain)
  kSibRegister,      ///< 1-bit segment-insertion-bit register
  kAddressRegister,  ///< control register added by the FT synthesis
  kOther,
};

struct RsnNode {
  NodeKind kind = NodeKind::kSegment;
  std::string name;
  SegRole role = SegRole::kInstrument;

  // Segment-only fields.
  int length = 0;            ///< shift register bits
  bool has_shadow = false;   ///< shadow register present (same width)
  int shadow_replicas = 1;   ///< shadow latch copies (3 under TMR hardening)
  std::uint64_t reset_shadow = 0;  ///< shadow reset value (bit i = bit i)
  CtrlRef select = kCtrlTrue;
  CtrlRef cap_dis = kCtrlFalse;
  CtrlRef up_dis = kCtrlFalse;

  // Scan-in source: Segment and PrimaryOut have exactly one; Mux has two.
  NodeId scan_in = kInvalidNode;
  std::array<NodeId, 2> mux_in{kInvalidNode, kInvalidNode};
  CtrlRef addr = kCtrlFalse;  ///< Mux: selects mux_in[addr]

  // Generator provenance (reporting only).
  int module = -1;       ///< owning SoC module, -1 if none
  int hier_level = 0;    ///< SIB-hierarchy depth (1 = top)

  bool is_segment() const { return kind == NodeKind::kSegment; }
  bool is_mux() const { return kind == NodeKind::kMux; }
};

/// Aggregate structural statistics (Table I "RSN Characteristics" and the
/// raw counts behind the area-overhead ratios).
struct RsnStats {
  int segments = 0;      ///< all scan segments (any role)
  int muxes = 0;
  long long bits = 0;    ///< total shift-register bits
  int nets = 0;          ///< driven scan + control interconnects
  int levels = 0;        ///< max SIB-hierarchy depth
  int primary_ins = 0;
  int primary_outs = 0;
};

/// Structural RSN netlist.
///
/// Invariants (checked by `validate()`):
///  * the scan interconnect structure is a DAG rooted at the primary
///    scan-in ports with all paths ending in a primary scan-out port;
///  * every segment / primary-out has exactly one scan-in driver and every
///    mux exactly two;
///  * every segment whose shadow bits are referenced by control logic has
///    `has_shadow == true` and enough bits;
///  * for every assignment of shadow registers there is at most one active
///    scan path per scan-out port (guaranteed structurally: every node has
///    a unique driver cone).
class Rsn {
 public:
  Rsn() = default;

  // --- construction -------------------------------------------------------
  NodeId add_primary_in(std::string name);
  NodeId add_primary_out(std::string name, NodeId source);
  NodeId add_segment(std::string name, int length, NodeId source,
                     bool has_shadow = false, SegRole role = SegRole::kInstrument);
  NodeId add_mux(std::string name, NodeId in0, NodeId in1, CtrlRef addr);

  void set_select(NodeId seg, CtrlRef expr);
  void set_cap_dis(NodeId seg, CtrlRef expr);
  void set_up_dis(NodeId seg, CtrlRef expr);
  void set_scan_in(NodeId node, NodeId source);
  void set_mux_in(NodeId mux, int which, NodeId source);
  void set_reset_shadow(NodeId seg, std::uint64_t value);
  void set_hier(NodeId node, int module, int level);
  void set_shadow_replicas(NodeId seg, int replicas);

  // --- access --------------------------------------------------------------
  std::size_t num_nodes() const { return nodes_.size(); }
  const RsnNode& node(NodeId id) const { return nodes_.at(id); }
  RsnNode& node_mut(NodeId id) { return nodes_.at(id); }
  CtrlPool& ctrl() { return ctrl_; }
  const CtrlPool& ctrl() const { return ctrl_; }

  const std::vector<NodeId>& primary_ins() const { return primary_ins_; }
  const std::vector<NodeId>& primary_outs() const { return primary_outs_; }
  NodeId primary_in() const { return primary_ins_.at(0); }
  NodeId primary_out() const { return primary_outs_.at(0); }

  /// Scan-fanout successors of each node (inverse of scan_in / mux_in).
  std::vector<std::vector<NodeId>> successors() const;

  /// All nodes in a topological order of the scan dataflow (roots first).
  /// Fails (FTRSN_CHECK) if the interconnect structure has a cycle.
  std::vector<NodeId> topo_order() const;

  /// Names of all nodes, indexed by NodeId (for expression printing).
  std::vector<std::string> node_names() const;

  RsnStats stats() const;

  /// Runs the structural / control / synthesis-metadata lint rules
  /// (lint/lint.hpp) over the netlist and returns the full diagnostic
  /// list — every violation, not just the first one.  An empty list (or a
  /// list of warnings only) means the RSN is well-formed.
  std::vector<lint::Diagnostic> validate() const;

  /// Shim for call sites that want the historical abort-on-broken behavior:
  /// throws std::logic_error listing all error-severity diagnostics.
  void validate_or_die() const;

  /// Deep equality of structure (used by io round-trip tests).
  bool structurally_equal(const Rsn& other) const;

  /// SHA-256 of the text serialization (io/rsn_text.hpp) under a
  /// version-tagged domain prefix: 64 lowercase hex chars.  Two networks
  /// hash equal iff their serializations are byte-identical.  Parsing is a
  /// deterministic function of the text, so for *parsed* networks the hash
  /// is a pure function of the source bytes — which is exactly what the
  /// serve cache keys on (serve/cache.hpp).  Note that re-serializing a
  /// parsed network may renumber the hash-consed control pool, so the hash
  /// identifies the construction, not the structural-equality class: two
  /// texts of one network can hash apart (a conservative cache miss,
  /// never a wrong hit).  Defined in src/rsn/content_hash.cpp
  /// (serialization lives in io/).
  std::string content_hash() const;

  /// Optional metadata written by the fault-tolerant synthesis: for a
  /// segment with hardened select logic, each OR-term of its select
  /// predicate corresponds to one scan-fanout successor direction.  The
  /// fault analyzer uses this to invalidate exactly the successor edge
  /// whose select term is killed by a control fault.
  struct SelectTerm {
    NodeId seg = kInvalidNode;   ///< segment whose select has this term
    NodeId succ = kInvalidNode;  ///< successor direction the term asserts
    CtrlRef term = kCtrlInvalid;
  };
  void add_select_term(NodeId seg, NodeId succ, CtrlRef term) {
    select_terms_.push_back({seg, succ, term});
  }
  const std::vector<SelectTerm>& select_terms() const { return select_terms_; }

 private:
  std::vector<SelectTerm> select_terms_;
  std::vector<RsnNode> nodes_;
  std::vector<NodeId> primary_ins_;
  std::vector<NodeId> primary_outs_;
  CtrlPool ctrl_;
};

/// Builds the running example RSN of the paper (Fig. 2): four scan segments
/// A, B, C, D with two scan multiplexers such that A, B, D lie on the active
/// path in the reset configuration and C is bypassed.
Rsn make_example_rsn();

/// A tiny linear RSN: scan-in -> seg_0 -> ... -> seg_{n-1} -> scan-out,
/// no multiplexers (every element is a single point of failure).
Rsn make_chain_rsn(int num_segments, int bits_per_segment);

}  // namespace ftrsn
