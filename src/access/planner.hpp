// Access planning: computes the series of CSU operations that configures
// an RSN so a target segment joins the active scan path (paper §II-B: the
// formal model yields a time-optimal series of CSU operations per access;
// this planner produces the hierarchical-opening series and the exact
// scan-in bit streams, which the CSU simulator then executes).
#pragma once

#include <vector>

#include "rsn/rsn.hpp"
#include "sim/csu_sim.hpp"

namespace ftrsn {

/// A concrete access plan: `csu_streams[k]` is the scan-in bit stream of
/// the k-th CSU operation (first element enters the network first).  After
/// executing all CSUs, the target segment lies on the active scan path.
struct AccessPlan {
  NodeId target = kInvalidNode;
  std::vector<std::vector<std::uint8_t>> csu_streams;
  /// Total access latency in shift cycles (sum of stream lengths), the
  /// quantity the paper's model minimizes.
  long long shift_cycles() const {
    long long total = 0;
    for (const auto& s : csu_streams) total += static_cast<long long>(s.size());
    return total;
  }
};

/// Plans fault-free access to `target` from the reset configuration.
/// Strategy: repeatedly write every control register currently on the
/// active path with its desired value (registers gating the target open;
/// all others keep their state) until the target joins the path.  For
/// SIB-style hierarchies this needs at most `levels` CSU operations and
/// reproduces the hierarchical-opening access sequences of the paper's
/// experimental setup.  Throws if the target cannot be brought onto the
/// path within a structural bound (e.g. the RSN is not tree-shaped).
AccessPlan plan_access(const Rsn& rsn, NodeId target);

/// Executes a plan on a fresh simulator and reports whether the target
/// ended up on the active scan path (used by tests and examples).
bool validate_plan(const Rsn& rsn, const AccessPlan& plan);

}  // namespace ftrsn
