#include "access/planner.hpp"

#include <map>

namespace ftrsn {

namespace {

/// Desired mux address settings that place `target` on an active path:
/// walks upstream from the target to a scan-in and downstream to a
/// scan-out, preferring mux inputs that are already selected in the reset
/// configuration (original interconnects) so the plan stays short.
std::map<std::pair<NodeId, std::uint16_t>, bool> desired_settings(
    const Rsn& rsn, NodeId target) {
  std::map<std::pair<NodeId, std::uint16_t>, bool> desired;
  const auto succ = rsn.successors();

  // The single register (seg, bit) steering a mux, if its address is an
  // atom or a TMR triple of one register; kInvalidNode otherwise.
  const auto addr_register = [&](NodeId mux) {
    const CtrlPool& pool = rsn.ctrl();
    CtrlRef r = rsn.node(mux).addr;
    const CtrlNode* n = &pool.node(r);
    if (n->op == CtrlOp::kMaj3) n = &pool.node(n->kid[0]);
    if (n->op == CtrlOp::kShadowBit)
      return std::make_pair(n->seg, n->bit);
    return std::make_pair(kInvalidNode, static_cast<std::uint16_t>(0));
  };
  // Pin-steered muxes (duplicated ports, root-anchored detours) are held
  // at their default side 0 by the plan; paths requiring their side 1 are
  // not used by this planner.
  const auto default_side = [&](NodeId mux) {
    const auto atom = [](const CtrlNode& c) {
      return c.op == CtrlOp::kEnable;  // EN=1, pins=0, shadows irrelevant
    };
    return rsn.ctrl().eval(rsn.node(mux).addr, atom);
  };
  const auto steerable = [&](NodeId mux, bool side) {
    return addr_register(mux).first != kInvalidNode ||
           default_side(mux) == side;
  };
  const auto require = [&](NodeId mux, bool side) {
    const auto reg = addr_register(mux);
    if (reg.first == kInvalidNode) {
      FTRSN_CHECK_MSG(default_side(mux) == side,
                      strprintf("mux %s needs a primary pin the planner does "
                                "not drive",
                                rsn.node(mux).name.c_str()));
      return;
    }
    const auto it = desired.find(reg);
    FTRSN_CHECK_MSG(it == desired.end() || it->second == side,
                    "conflicting mux requirements on one register");
    desired[reg] = side;
  };

  // Upstream: follow scan_in; at a mux keep the input it already selects
  // in the reset configuration (minimal disruption of other instruments).
  CsuSimulator reset_view(rsn);
  NodeId node = rsn.node(target).scan_in;
  std::size_t guard = 0;
  while (rsn.node(node).kind != NodeKind::kPrimaryIn) {
    FTRSN_CHECK(++guard <= 4 * rsn.num_nodes());
    const RsnNode& n = rsn.node(node);
    if (n.is_mux()) {
      const auto atom = [&](const CtrlNode& c) -> bool {
        if (c.op == CtrlOp::kEnable) return true;
        if (c.op == CtrlOp::kPortSel) return false;
        return reset_view.shadow_value(c.seg, c.bit, c.replica);
      };
      const bool side = rsn.ctrl().eval(n.addr, atom);
      require(node, side);
      node = n.mux_in[side ? 1 : 0];
    } else {
      node = n.scan_in;
    }
  }
  // Downstream: BFS toward any scan-out along a parent-tracked path, then
  // impose the mux sides of the chosen path.
  std::vector<NodeId> parent(rsn.num_nodes(), kInvalidNode);
  std::vector<bool> seen(rsn.num_nodes(), false);
  std::vector<NodeId> queue{target};
  seen[target] = true;
  NodeId out = kInvalidNode;
  for (std::size_t qi = 0; qi < queue.size() && out == kInvalidNode; ++qi) {
    const NodeId v = queue[qi];
    for (NodeId c : succ[v]) {
      if (seen[c]) continue;
      if (rsn.node(c).is_mux() && !steerable(c, rsn.node(c).mux_in[1] == v))
        continue;  // would need a primary pin the plan does not drive
      seen[c] = true;
      parent[c] = v;
      if (rsn.node(c).kind == NodeKind::kPrimaryOut) {
        out = c;
        break;
      }
      queue.push_back(c);
    }
  }
  FTRSN_CHECK_MSG(out != kInvalidNode, "target has no path to a scan-out");
  for (NodeId v = out; v != target; v = parent[v]) {
    const RsnNode& n = rsn.node(v);
    if (n.is_mux()) require(v, n.mux_in[1] == parent[v]);
  }
  return desired;
}

/// Builds the scan-in stream that, after shifting the whole active path
/// and updating, writes `desired` into the on-path registers and preserves
/// every other on-path shadow.
std::vector<std::uint8_t> build_stream(
    const Rsn& rsn, CsuSimulator& sim,
    const std::map<std::pair<NodeId, std::uint16_t>, bool>& desired) {
  const auto path = sim.active_path();
  int total_bits = 0;
  for (NodeId s : path) total_bits += rsn.node(s).length;
  std::vector<std::uint8_t> stream(static_cast<std::size_t>(total_bits), 0);
  int offset = 0;
  for (NodeId s : path) {
    const RsnNode& n = rsn.node(s);
    for (int b = 0; b < n.length; ++b) {
      bool v = false;
      const auto it = desired.find({s, static_cast<std::uint16_t>(b)});
      if (it != desired.end()) {
        v = it->second;
      } else if (n.has_shadow) {
        v = sim.shadow_value(s, b);  // preserve the current configuration
      }
      // After N shift cycles, segment bit (s, b) holds
      // stream[N - 1 - globalpos] where globalpos counts from the scan-in.
      stream[static_cast<std::size_t>(total_bits - 1 - (offset + b))] =
          v ? 1 : 0;
    }
    offset += n.length;
  }
  return stream;
}

bool on_active_path(const Rsn& rsn, CsuSimulator& sim, NodeId target) {
  for (NodeId out : rsn.primary_outs())
    for (NodeId s : sim.active_path(out))
      if (s == target) return true;
  return false;
}

}  // namespace

AccessPlan plan_access(const Rsn& rsn, NodeId target) {
  FTRSN_CHECK(rsn.node(target).is_segment());
  AccessPlan plan;
  plan.target = target;
  const auto desired = desired_settings(rsn, target);

  CsuSimulator sim(rsn);
  const int max_ops = rsn.stats().levels + 3;
  for (int op = 0; op < max_ops; ++op) {
    if (on_active_path(rsn, sim, target)) return plan;
    std::vector<std::uint8_t> stream = build_stream(rsn, sim, desired);
    sim.csu(stream);
    plan.csu_streams.push_back(std::move(stream));
  }
  FTRSN_CHECK_MSG(on_active_path(rsn, sim, target),
                  strprintf("no CSU series reaches segment %s within %d ops",
                            rsn.node(target).name.c_str(), max_ops));
  return plan;
}

bool validate_plan(const Rsn& rsn, const AccessPlan& plan) {
  CsuSimulator sim(rsn);
  for (const auto& stream : plan.csu_streams) sim.csu(stream);
  return on_active_path(rsn, sim, plan.target);
}

}  // namespace ftrsn
