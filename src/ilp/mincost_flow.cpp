#include "ilp/mincost_flow.hpp"

#include <algorithm>
#include <queue>

#include "obs/obs.hpp"

namespace ftrsn {

namespace {
constexpr long long kInf = std::numeric_limits<long long>::max() / 4;
}

MinCostFlow::MinCostFlow(int num_nodes) : head_(num_nodes, -1) {}

int MinCostFlow::add_arc(int from, int to, long long cap, long long cost) {
  FTRSN_CHECK(from >= 0 && from < num_nodes() && to >= 0 && to < num_nodes());
  FTRSN_CHECK(cap >= 0 && cost >= 0);
  const int id = static_cast<int>(original_cap_.size());
  arcs_.push_back({to, head_[static_cast<std::size_t>(from)], cap, cost});
  head_[static_cast<std::size_t>(from)] = static_cast<int>(arcs_.size() - 1);
  arcs_.push_back({from, head_[static_cast<std::size_t>(to)], 0, -cost});
  head_[static_cast<std::size_t>(to)] = static_cast<int>(arcs_.size() - 1);
  original_cap_.push_back(cap);
  return id;
}

long long MinCostFlow::flow_on(int id) const {
  return arcs_[static_cast<std::size_t>(2 * id + 1)].cap;
}

long long MinCostFlow::residual(int id) const {
  return arcs_[static_cast<std::size_t>(2 * id)].cap;
}

void MinCostFlow::set_capacity(int id, long long cap) {
  FTRSN_CHECK(cap >= 0);
  original_cap_[static_cast<std::size_t>(id)] = cap;
  reset_flow();
}

void MinCostFlow::reset_flow() {
  for (std::size_t i = 0; i < original_cap_.size(); ++i) {
    arcs_[2 * i].cap = original_cap_[i];
    arcs_[2 * i + 1].cap = 0;
  }
}

void MinCostFlow::publish_counters() const {
  // One batched add per solve: the flow family of ilp.* counters is
  // visible in run reports next to ilp.bb_nodes / ilp.lp_solves.
  static obs::Counter pushes("ilp.flow_pushes");
  static obs::Counter relabels("ilp.flow_relabels");
  static obs::Counter price_refines("ilp.flow_price_refines");
  static obs::Counter arcs_fixed("ilp.flow_arcs_fixed");
  static obs::Counter augmentations("ilp.flow_augmentations");
  static obs::Counter ssp_work("ilp.flow_ssp_work");
  if (stats_.pushes) pushes.add(stats_.pushes);
  if (stats_.relabels) relabels.add(stats_.relabels);
  if (stats_.price_refines) price_refines.add(stats_.price_refines);
  if (stats_.arcs_fixed) arcs_fixed.add(stats_.arcs_fixed);
  if (stats_.ssp_augmentations) augmentations.add(stats_.ssp_augmentations);
  if (stats_.ssp_work) ssp_work.add(stats_.ssp_work);
}

MinCostFlow::Result MinCostFlow::solve(int s, int t, long long limit,
                                       const MinCostFlowOptions& options) {
  FTRSN_CHECK(s >= 0 && s < num_nodes() && t >= 0 && t < num_nodes());
  stats_ = Stats{};
  Result result;
  if (s == t || limit <= 0) return result;
  switch (options.algorithm) {
    case MinCostFlowOptions::Algorithm::kSsp:
      result = solve_ssp(s, t, limit);
      break;
    case MinCostFlowOptions::Algorithm::kCostScaling:
      result = solve_cost_scaling(s, t, limit, options);
      break;
  }
  publish_counters();
  return result;
}

MinCostFlow::Result MinCostFlow::solve_ssp(int s, int t, long long limit) {
  Result result;
  const int n = num_nodes();
  std::vector<long long> potential(static_cast<std::size_t>(n), 0);
  // All arc costs are non-negative, so initial potentials of zero are valid.
  while (result.flow < limit) {
    // Dijkstra on reduced costs, stopped as soon as t is settled: every
    // augmentation only needs the shortest s-t path, and capping the
    // potential update at dist[t] keeps all reduced costs non-negative
    // (Johnson's early-termination rule).
    std::vector<long long> dist(static_cast<std::size_t>(n), kInf);
    std::vector<int> pred_arc(static_cast<std::size_t>(n), -1);
    using Item = std::pair<long long, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    dist[static_cast<std::size_t>(s)] = 0;
    heap.push({0, s});
    long long dist_t = kInf;
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d > dist[static_cast<std::size_t>(v)]) continue;
      if (v == t) {
        dist_t = d;
        break;
      }
      if (d >= dist_t) break;  // only worse-than-t labels remain
      for (int a = head_[static_cast<std::size_t>(v)]; a != -1;
           a = arcs_[static_cast<std::size_t>(a)].next) {
        const Arc& arc = arcs_[static_cast<std::size_t>(a)];
        ++stats_.ssp_work;
        if (arc.cap <= 0) continue;
        const long long nd = d + arc.cost +
                             potential[static_cast<std::size_t>(v)] -
                             potential[static_cast<std::size_t>(arc.to)];
        if (nd < dist[static_cast<std::size_t>(arc.to)] && nd < dist_t) {
          dist[static_cast<std::size_t>(arc.to)] = nd;
          pred_arc[static_cast<std::size_t>(arc.to)] = a;
          heap.push({nd, arc.to});
        }
      }
    }
    if (dist_t >= kInf) break;  // no more paths
    for (int v = 0; v < n; ++v)
      potential[static_cast<std::size_t>(v)] +=
          std::min(dist[static_cast<std::size_t>(v)], dist_t);
    // Bottleneck along the shortest path.
    long long push = limit - result.flow;
    for (int v = t; v != s;) {
      const Arc& a =
          arcs_[static_cast<std::size_t>(pred_arc[static_cast<std::size_t>(v)])];
      push = std::min(push, a.cap);
      v = arcs_[static_cast<std::size_t>(
                    pred_arc[static_cast<std::size_t>(v)] ^ 1)]
              .to;
    }
    long long path_cost = 0;
    for (int v = t; v != s;) {
      const int ai = pred_arc[static_cast<std::size_t>(v)];
      arcs_[static_cast<std::size_t>(ai)].cap -= push;
      arcs_[static_cast<std::size_t>(ai ^ 1)].cap += push;
      path_cost += arcs_[static_cast<std::size_t>(ai)].cost;
      v = arcs_[static_cast<std::size_t>(ai ^ 1)].to;
    }
    result.flow += push;
    result.cost += push * path_cost;
    ++stats_.ssp_augmentations;
  }
  return result;
}

DegreeCoverSolver::DegreeCoverSolver(int num_nodes,
                                     std::vector<Edge> candidates,
                                     std::vector<int> need_out,
                                     std::vector<int> need_in)
    : n_(num_nodes),
      candidates_(std::move(candidates)),
      need_out_(std::move(need_out)),
      need_in_(std::move(need_in)),
      state_(candidates_.size(), 0) {
  FTRSN_CHECK(need_out_.size() == static_cast<std::size_t>(n_));
  FTRSN_CHECK(need_in_.size() == static_cast<std::size_t>(n_));
}

void DegreeCoverSolver::forbid(int index) {
  state_[static_cast<std::size_t>(index)] = 1;
}
void DegreeCoverSolver::require(int index) {
  state_[static_cast<std::size_t>(index)] = 2;
}

DegreeCoverSolver::Result DegreeCoverSolver::solve() {
  OBS_SPAN("ilp.degree_cover");
  // Always-on latency histogram: one degree-cover LP solve per
  // augmentation candidate, so report p50/p99 localize ILP regressions
  // without a trace.
  static obs::Histogram solve_hist("ilp.solve_us");
  obs::ScopedLatency solve_timer(solve_hist);
  // Each call solves the degree-cover LP relaxation exactly (min-cost flow
  // = the LP's combinatorial dual), so it counts as an LP solve alongside
  // IlpSolver's per-node relaxations.  The kFlow engine — the default on
  // every SoC, including the p93791 headline run — previously registered
  // nothing here, leaving ilp.lp_solves empty in large-SoC reports.
  static obs::Counter lp_solves("ilp.lp_solves");
  lp_solves.add();
  // Network with arc lower bounds, reduced to plain min-cost max-flow via
  // the excess/deficit transformation:
  //   S -> out(u)  [need_out(u), inf]   cost 0
  //   out(u) -> in(v)  [0,1] (or [1,1] if required)  cost c(e)
  //   in(v) -> T  [need_in(v), inf]     cost 0
  //   T -> S  [0, inf]                  cost 0 (circulation closure)
  const int kS = 0, kT = 1;
  const int out_base = 2, in_base = 2 + n_;
  const int kSS = 2 + 2 * n_, kTT = 3 + 2 * n_;
  MinCostFlow flow(4 + 2 * n_);
  std::vector<long long> excess(static_cast<std::size_t>(4 + 2 * n_), 0);
  long long required_cost = 0;

  const auto add_lb_arc = [&](int from, int to, long long lo, long long hi,
                              long long cost) {
    // Mandatory part `lo` becomes node excess/deficit; rest is a plain arc.
    excess[static_cast<std::size_t>(to)] += lo;
    excess[static_cast<std::size_t>(from)] -= lo;
    required_cost += lo * cost;
    return flow.add_arc(from, to, hi - lo, cost);
  };

  for (int u = 0; u < n_; ++u) {
    if (need_out_[static_cast<std::size_t>(u)] > 0 ||
        need_in_[static_cast<std::size_t>(u)] > 0) {
      add_lb_arc(kS, out_base + u, need_out_[static_cast<std::size_t>(u)],
                 kInf, 0);
      add_lb_arc(in_base + u, kT, need_in_[static_cast<std::size_t>(u)], kInf,
                 0);
    } else {
      flow.add_arc(kS, out_base + u, kInf, 0);
      flow.add_arc(in_base + u, kT, kInf, 0);
    }
  }
  std::vector<int> edge_arc(candidates_.size(), -1);
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (state_[i] == 1) continue;  // forbidden
    const Edge& e = candidates_[i];
    const long long lo = state_[i] == 2 ? 1 : 0;
    edge_arc[i] =
        add_lb_arc(out_base + e.from, in_base + e.to, lo, 1, e.cost);
  }
  flow.add_arc(kT, kS, kInf, 0);

  long long total_excess = 0;
  for (int v = 0; v < 4 + 2 * n_; ++v) {
    const long long x = excess[static_cast<std::size_t>(v)];
    if (x > 0) {
      flow.add_arc(kSS, v, x, 0);
      total_excess += x;
    } else if (x < 0) {
      flow.add_arc(v, kTT, -x, 0);
    }
  }

  const MinCostFlow::Result fr = flow.solve(kSS, kTT, kInf, flow_options_);
  Result result;
  if (fr.flow != total_excess) {  // infeasible
    obs::count("ilp.lp_infeasible");
    return result;
  }
  result.feasible = true;
  result.cost = fr.cost + required_cost;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (state_[i] == 2) {
      result.chosen.push_back(static_cast<int>(i));
    } else if (edge_arc[i] >= 0 && flow.flow_on(edge_arc[i]) > 0) {
      result.chosen.push_back(static_cast<int>(i));
    }
  }
  return result;
}

}  // namespace ftrsn
