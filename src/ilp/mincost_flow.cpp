#include "ilp/mincost_flow.hpp"

#include <algorithm>
#include <queue>

#include "obs/obs.hpp"

namespace ftrsn {

namespace {
constexpr long long kInf = std::numeric_limits<long long>::max() / 4;
}

MinCostFlow::MinCostFlow(int num_nodes) : head_(num_nodes, -1) {}

int MinCostFlow::add_arc(int from, int to, long long cap, long long cost) {
  FTRSN_CHECK(from >= 0 && from < num_nodes() && to >= 0 && to < num_nodes());
  FTRSN_CHECK(cap >= 0 && cost >= 0);
  const int id = static_cast<int>(original_cap_.size());
  arcs_.push_back({to, head_[static_cast<std::size_t>(from)], cap, cost});
  head_[static_cast<std::size_t>(from)] = static_cast<int>(arcs_.size() - 1);
  arcs_.push_back({from, head_[static_cast<std::size_t>(to)], 0, -cost});
  head_[static_cast<std::size_t>(to)] = static_cast<int>(arcs_.size() - 1);
  original_cap_.push_back(cap);
  return id;
}

long long MinCostFlow::flow_on(int id) const {
  return arcs_[static_cast<std::size_t>(2 * id + 1)].cap;
}

long long MinCostFlow::residual(int id) const {
  return arcs_[static_cast<std::size_t>(2 * id)].cap;
}

void MinCostFlow::set_capacity(int id, long long cap) {
  FTRSN_CHECK(cap >= 0);
  original_cap_[static_cast<std::size_t>(id)] = cap;
  reset_flow();
}

void MinCostFlow::reset_flow() {
  for (std::size_t i = 0; i < original_cap_.size(); ++i) {
    arcs_[2 * i].cap = original_cap_[i];
    arcs_[2 * i + 1].cap = 0;
  }
}

MinCostFlow::Result MinCostFlow::solve(int s, int t, long long limit) {
  // Successive-shortest-path iterations across all LP solves; one of the
  // ilp.* family so the flow-backed LP engine is visible in run reports
  // next to the branch-and-bound solver's ilp.bb_nodes.
  static obs::Counter augmentations("ilp.flow_augmentations");
  Result result;
  const int n = num_nodes();
  std::vector<long long> potential(static_cast<std::size_t>(n), 0);
  // All arc costs are non-negative, so initial potentials of zero are valid.
  while (result.flow < limit) {
    // Dijkstra on reduced costs.
    std::vector<long long> dist(static_cast<std::size_t>(n), kInf);
    std::vector<int> pred_arc(static_cast<std::size_t>(n), -1);
    using Item = std::pair<long long, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    dist[static_cast<std::size_t>(s)] = 0;
    heap.push({0, s});
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d > dist[static_cast<std::size_t>(v)]) continue;
      for (int a = head_[static_cast<std::size_t>(v)]; a != -1;
           a = arcs_[static_cast<std::size_t>(a)].next) {
        const Arc& arc = arcs_[static_cast<std::size_t>(a)];
        if (arc.cap <= 0) continue;
        const long long nd = d + arc.cost +
                             potential[static_cast<std::size_t>(v)] -
                             potential[static_cast<std::size_t>(arc.to)];
        if (nd < dist[static_cast<std::size_t>(arc.to)]) {
          dist[static_cast<std::size_t>(arc.to)] = nd;
          pred_arc[static_cast<std::size_t>(arc.to)] = a;
          heap.push({nd, arc.to});
        }
      }
    }
    if (dist[static_cast<std::size_t>(t)] >= kInf) break;  // no more paths
    for (int v = 0; v < n; ++v)
      if (dist[static_cast<std::size_t>(v)] < kInf)
        potential[static_cast<std::size_t>(v)] +=
            dist[static_cast<std::size_t>(v)];
    // Bottleneck along the shortest path.
    long long push = limit - result.flow;
    for (int v = t; v != s;) {
      const Arc& a =
          arcs_[static_cast<std::size_t>(pred_arc[static_cast<std::size_t>(v)])];
      push = std::min(push, a.cap);
      v = arcs_[static_cast<std::size_t>(
                    pred_arc[static_cast<std::size_t>(v)] ^ 1)]
              .to;
    }
    long long path_cost = 0;
    for (int v = t; v != s;) {
      const int ai = pred_arc[static_cast<std::size_t>(v)];
      arcs_[static_cast<std::size_t>(ai)].cap -= push;
      arcs_[static_cast<std::size_t>(ai ^ 1)].cap += push;
      path_cost += arcs_[static_cast<std::size_t>(ai)].cost;
      v = arcs_[static_cast<std::size_t>(ai ^ 1)].to;
    }
    result.flow += push;
    result.cost += push * path_cost;
    augmentations.add();
  }
  return result;
}

DegreeCoverSolver::DegreeCoverSolver(int num_nodes,
                                     std::vector<Edge> candidates,
                                     std::vector<int> need_out,
                                     std::vector<int> need_in)
    : n_(num_nodes),
      candidates_(std::move(candidates)),
      need_out_(std::move(need_out)),
      need_in_(std::move(need_in)),
      state_(candidates_.size(), 0) {
  FTRSN_CHECK(need_out_.size() == static_cast<std::size_t>(n_));
  FTRSN_CHECK(need_in_.size() == static_cast<std::size_t>(n_));
}

void DegreeCoverSolver::forbid(int index) {
  state_[static_cast<std::size_t>(index)] = 1;
}
void DegreeCoverSolver::require(int index) {
  state_[static_cast<std::size_t>(index)] = 2;
}

DegreeCoverSolver::Result DegreeCoverSolver::solve() {
  // Each call solves the degree-cover LP relaxation exactly (min-cost flow
  // = the LP's combinatorial dual), so it counts as an LP solve alongside
  // IlpSolver's per-node relaxations.  The kFlow engine — the default on
  // every SoC, including the p93791 headline run — previously registered
  // nothing here, leaving ilp.lp_solves empty in large-SoC reports.
  static obs::Counter lp_solves("ilp.lp_solves");
  lp_solves.add();
  // Network with arc lower bounds, reduced to plain min-cost max-flow via
  // the excess/deficit transformation:
  //   S -> out(u)  [need_out(u), inf]   cost 0
  //   out(u) -> in(v)  [0,1] (or [1,1] if required)  cost c(e)
  //   in(v) -> T  [need_in(v), inf]     cost 0
  //   T -> S  [0, inf]                  cost 0 (circulation closure)
  const int kS = 0, kT = 1;
  const int out_base = 2, in_base = 2 + n_;
  const int kSS = 2 + 2 * n_, kTT = 3 + 2 * n_;
  MinCostFlow flow(4 + 2 * n_);
  std::vector<long long> excess(static_cast<std::size_t>(4 + 2 * n_), 0);
  long long required_cost = 0;

  const auto add_lb_arc = [&](int from, int to, long long lo, long long hi,
                              long long cost) {
    // Mandatory part `lo` becomes node excess/deficit; rest is a plain arc.
    excess[static_cast<std::size_t>(to)] += lo;
    excess[static_cast<std::size_t>(from)] -= lo;
    required_cost += lo * cost;
    return flow.add_arc(from, to, hi - lo, cost);
  };

  for (int u = 0; u < n_; ++u) {
    if (need_out_[static_cast<std::size_t>(u)] > 0 ||
        need_in_[static_cast<std::size_t>(u)] > 0) {
      add_lb_arc(kS, out_base + u, need_out_[static_cast<std::size_t>(u)],
                 kInf, 0);
      add_lb_arc(in_base + u, kT, need_in_[static_cast<std::size_t>(u)], kInf,
                 0);
    } else {
      flow.add_arc(kS, out_base + u, kInf, 0);
      flow.add_arc(in_base + u, kT, kInf, 0);
    }
  }
  std::vector<int> edge_arc(candidates_.size(), -1);
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (state_[i] == 1) continue;  // forbidden
    const Edge& e = candidates_[i];
    const long long lo = state_[i] == 2 ? 1 : 0;
    edge_arc[i] =
        add_lb_arc(out_base + e.from, in_base + e.to, lo, 1, e.cost);
  }
  flow.add_arc(kT, kS, kInf, 0);

  long long total_excess = 0;
  for (int v = 0; v < 4 + 2 * n_; ++v) {
    const long long x = excess[static_cast<std::size_t>(v)];
    if (x > 0) {
      flow.add_arc(kSS, v, x, 0);
      total_excess += x;
    } else if (x < 0) {
      flow.add_arc(v, kTT, -x, 0);
    }
  }

  const MinCostFlow::Result fr = flow.solve(kSS, kTT);
  Result result;
  if (fr.flow != total_excess) {  // infeasible
    obs::count("ilp.lp_infeasible");
    return result;
  }
  result.feasible = true;
  result.cost = fr.cost + required_cost;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (state_[i] == 2) {
      result.chosen.push_back(static_cast<int>(i));
    } else if (edge_arc[i] >= 0 && flow.flow_on(edge_arc[i]) > 0) {
      result.chosen.push_back(static_cast<int>(i));
    }
  }
  return result;
}

}  // namespace ftrsn
