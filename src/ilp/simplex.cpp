#include "ilp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ftrsn {

namespace {

constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Bounded-variable primal simplex on a dense tableau with Big-M
/// artificials.
///
/// Variable layout: [structural | slack/surplus | artificial].  Nonbasic
/// variables rest at their lower (0) or upper bound.  The matrix part of
/// the tableau stores B^-1 A; the basic variable *values* are kept in a
/// separate column `bval_` that is updated directly by every move (bound
/// flip or pivot), which keeps the at-upper bookkeeping straightforward.
class Simplex {
 public:
  explicit Simplex(const LpProblem& p) : p_(p) {
    const int n = static_cast<int>(p.cost.size());
    const int m = static_cast<int>(p.constraints.size());
    num_struct_ = n;
    for (const LinearConstraint& c : p.constraints)
      if (c.sense != Sense::kEq) ++num_slack_;
    num_art_ = m;
    cols_ = num_struct_ + num_slack_ + num_art_;
    rows_ = m;

    tab_.assign(static_cast<std::size_t>(rows_),
                std::vector<double>(static_cast<std::size_t>(cols_), 0.0));
    bval_.assign(static_cast<std::size_t>(rows_), 0.0);
    cost_.assign(static_cast<std::size_t>(cols_), 0.0);
    upper_.assign(static_cast<std::size_t>(cols_), kInf);
    at_upper_.assign(static_cast<std::size_t>(cols_), false);
    is_basic_.assign(static_cast<std::size_t>(cols_), false);
    basis_.assign(static_cast<std::size_t>(rows_), -1);

    double cost_scale = 1.0;
    for (int j = 0; j < n; ++j) {
      cost_[static_cast<std::size_t>(j)] = p.cost[static_cast<std::size_t>(j)];
      upper_[static_cast<std::size_t>(j)] =
          p.upper[static_cast<std::size_t>(j)];
      cost_scale = std::max(cost_scale,
                            std::abs(p.cost[static_cast<std::size_t>(j)]));
    }
    big_m_ = 1e7 * cost_scale;

    int slack = num_struct_;
    for (int i = 0; i < m; ++i) {
      const LinearConstraint& c = p.constraints[static_cast<std::size_t>(i)];
      double sign = 1.0;
      double rhs = c.rhs;
      Sense sense = c.sense;
      if (rhs < 0) {  // normalize to rhs >= 0 so artificials start feasible
        sign = -1.0;
        rhs = -rhs;
        if (sense == Sense::kLe)
          sense = Sense::kGe;
        else if (sense == Sense::kGe)
          sense = Sense::kLe;
      }
      auto& row = tab_[static_cast<std::size_t>(i)];
      for (const auto& [var, coef] : c.terms) {
        FTRSN_CHECK(var >= 0 && var < n);
        row[static_cast<std::size_t>(var)] += sign * coef;
      }
      if (sense == Sense::kLe) {
        row[static_cast<std::size_t>(slack++)] = 1.0;
      } else if (sense == Sense::kGe) {
        row[static_cast<std::size_t>(slack++)] = -1.0;
      }
      const int art = num_struct_ + num_slack_ + i;
      row[static_cast<std::size_t>(art)] = 1.0;
      cost_[static_cast<std::size_t>(art)] = big_m_;
      bval_[static_cast<std::size_t>(i)] = rhs;
      basis_[static_cast<std::size_t>(i)] = art;
      is_basic_[static_cast<std::size_t>(art)] = true;
    }
  }

  LpSolution run(int max_iters) {
    LpSolution sol;
    bool converged = false;
    int degenerate_streak = 0;
    for (int iter = 0; iter < max_iters; ++iter) {
      const int enter = pick_entering(degenerate_streak > rows_ + 16);
      if (enter < 0) {
        converged = true;
        break;
      }
      // Moving direction of the entering variable's *value*.
      const double dir =
          at_upper_[static_cast<std::size_t>(enter)] ? -1.0 : 1.0;

      // Ratio test: largest step t >= 0 keeping all basics within bounds.
      double limit = upper_[static_cast<std::size_t>(enter)];
      int leave_row = -1;
      bool leave_to_upper = false;
      for (int i = 0; i < rows_; ++i) {
        // x_B(t) = bval - t * dir * col.
        const double a =
            dir *
            tab_[static_cast<std::size_t>(i)][static_cast<std::size_t>(enter)];
        const double xb = bval_[static_cast<std::size_t>(i)];
        const int bv = basis_[static_cast<std::size_t>(i)];
        if (a > kEps) {  // basic decreases toward 0
          const double t = xb / a;
          if (t < limit - kEps) {
            limit = t;
            leave_row = i;
            leave_to_upper = false;
          }
        } else if (a < -kEps && upper_[static_cast<std::size_t>(bv)] < kInf) {
          const double t = (upper_[static_cast<std::size_t>(bv)] - xb) / (-a);
          if (t < limit - kEps) {
            limit = t;
            leave_row = i;
            leave_to_upper = true;
          }
        }
      }
      if (leave_row < 0 && !(limit < kInf / 2)) {
        sol.status = LpStatus::kUnbounded;
        return sol;
      }
      degenerate_streak = (limit < kEps) ? degenerate_streak + 1 : 0;

      // Apply the move to the basic values.
      for (int i = 0; i < rows_; ++i)
        bval_[static_cast<std::size_t>(i)] -=
            limit * dir *
            tab_[static_cast<std::size_t>(i)][static_cast<std::size_t>(enter)];

      if (leave_row < 0) {
        // Pure bound flip: the entering variable traverses its full range.
        at_upper_[static_cast<std::size_t>(enter)] =
            !at_upper_[static_cast<std::size_t>(enter)];
        continue;
      }

      // Pivot: entering becomes basic with its moved value.
      const double enter_value =
          dir > 0 ? limit : upper_[static_cast<std::size_t>(enter)] - limit;
      const int leave = basis_[static_cast<std::size_t>(leave_row)];
      pivot_matrix(leave_row, enter);
      basis_[static_cast<std::size_t>(leave_row)] = enter;
      is_basic_[static_cast<std::size_t>(enter)] = true;
      at_upper_[static_cast<std::size_t>(enter)] = false;
      is_basic_[static_cast<std::size_t>(leave)] = false;
      at_upper_[static_cast<std::size_t>(leave)] = leave_to_upper;
      bval_[static_cast<std::size_t>(leave_row)] = enter_value;
    }
    if (!converged) {
      sol.status = LpStatus::kIterLimit;
      return sol;
    }

    // Extract the solution.
    sol.x.assign(p_.cost.size(), 0.0);
    for (int j = 0; j < num_struct_; ++j)
      if (!is_basic_[static_cast<std::size_t>(j)] &&
          at_upper_[static_cast<std::size_t>(j)])
        sol.x[static_cast<std::size_t>(j)] =
            upper_[static_cast<std::size_t>(j)];
    double art_sum = 0.0;
    for (int i = 0; i < rows_; ++i) {
      const int bv = basis_[static_cast<std::size_t>(i)];
      const double v = bval_[static_cast<std::size_t>(i)];
      if (bv < num_struct_)
        sol.x[static_cast<std::size_t>(bv)] = v;
      else if (bv >= num_struct_ + num_slack_)
        art_sum += std::abs(v);
    }
    if (art_sum > 1e-6) {
      sol.status = LpStatus::kInfeasible;
      return sol;
    }
    sol.objective = 0.0;
    for (int j = 0; j < num_struct_; ++j)
      sol.objective += p_.cost[static_cast<std::size_t>(j)] *
                       sol.x[static_cast<std::size_t>(j)];
    sol.status = LpStatus::kOptimal;
    return sol;
  }

 private:
  double reduced_cost(int j) const {
    double r = cost_[static_cast<std::size_t>(j)];
    for (int i = 0; i < rows_; ++i) {
      const double a =
          tab_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (a != 0.0)
        r -= cost_[static_cast<std::size_t>(
                 basis_[static_cast<std::size_t>(i)])] *
             a;
    }
    return r;
  }

  /// Dantzig pricing; Bland's rule when degeneracy persists (anti-cycling).
  int pick_entering(bool bland) const {
    int best = -1;
    double best_score = kEps;
    for (int j = 0; j < cols_; ++j) {
      if (is_basic_[static_cast<std::size_t>(j)]) continue;
      const double r = reduced_cost(j);
      const double score = at_upper_[static_cast<std::size_t>(j)] ? r : -r;
      if (score > kEps) {
        if (bland) return j;
        if (score > best_score) {
          best_score = score;
          best = j;
        }
      }
    }
    return best;
  }

  void pivot_matrix(int row, int enter) {
    auto& prow = tab_[static_cast<std::size_t>(row)];
    const double piv = prow[static_cast<std::size_t>(enter)];
    FTRSN_CHECK(std::abs(piv) > kEps);
    for (double& v : prow) v /= piv;
    for (int i = 0; i < rows_; ++i) {
      if (i == row) continue;
      auto& r = tab_[static_cast<std::size_t>(i)];
      const double f = r[static_cast<std::size_t>(enter)];
      if (f == 0.0) continue;
      for (int j = 0; j < cols_; ++j)
        r[static_cast<std::size_t>(j)] -= f * prow[static_cast<std::size_t>(j)];
    }
  }

  const LpProblem& p_;
  int num_struct_ = 0, num_slack_ = 0, num_art_ = 0;
  int rows_ = 0, cols_ = 0;
  double big_m_ = 1e9;
  std::vector<std::vector<double>> tab_;
  std::vector<double> bval_;
  std::vector<double> cost_, upper_;
  std::vector<bool> at_upper_, is_basic_;
  std::vector<int> basis_;
};

}  // namespace

LpSolution solve_lp(const LpProblem& problem, int max_iters) {
  FTRSN_CHECK(problem.cost.size() == problem.upper.size());
  Simplex simplex(problem);
  return simplex.run(max_iters);
}

}  // namespace ftrsn
