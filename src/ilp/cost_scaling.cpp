// Cost-scaling min-cost flow engine (MinCostFlowOptions::kCostScaling).
//
// Pipeline:
//   1. Dinic max-flow fixes the flow value F = min(maxflow(s,t), limit);
//      its blocking-flow augmentations are level-monotone, so the
//      resulting flow is acyclic and every arc carries at most F units.
//      Residual capacities are then clamped to F: some acyclic optimal
//      flow of value F fits under the clamp, and it bounds every excess
//      the refine passes can create (no overflow from the kInf
//      "uncapacitated" arcs of the degree-cover reduction).
//   2. Costs are scaled by (n+1) and eps-scaling push/relabel refines the
//      flow: any feasible flow is eps-optimal for eps = max |scaled
//      cost|, and a flow that is eps-optimal for eps < 1 in scaled costs
//      is optimal in the original costs (Goldberg-Tarjan).  refine(eps)
//      first saturates every residual arc with negative reduced cost
//      (making the pseudo-flow 0-optimal w.r.t. admissibility), then
//      FIFO-discharges active nodes: push on admissible arcs, relabel
//      p(v) = max over residual arcs of (p(w) - c(v,w)) - eps otherwise.
//
// Reduced-cost convention: c_p(v,w) = c(v,w) + p(v) - p(w); the
// eps-optimality invariant is c_p(a) >= -eps for every residual arc a,
// and an arc is admissible when c_p(a) < 0.
//
// Heuristics (all differential-tested against the SSP oracle, each
// individually switchable through MinCostFlowOptions):
//   * global potential update: after ~n relabels, a Dial-bucket shortest
//     path computation from the deficit nodes assigns each node the
//     number of eps-steps its price must drop so an admissible path to a
//     deficit appears; ranks are capped, and capping is invariant-safe
//     (see rank_cap proof note below).
//   * price refinement: before each refine phase, bounded Bellman-Ford
//     passes try to repair eps-optimality by lowering prices only; if
//     they converge, the whole phase is skipped.  Aborting mid-way is
//     harmless because refine re-establishes optimality from any prices.
//   * arc fixing: once |c_p| > 2*n*eps the arc's flow is identical in
//     every eps'-optimal flow with eps' <= eps, so the pair drops out of
//     saturation, discharge, relabel and update scans; fixed arcs are
//     re-examined (and possibly unfixed) at every phase boundary because
//     prices keep moving.
#include <algorithm>
#include <queue>

#include "ilp/mincost_flow.hpp"

namespace ftrsn {

/// Dinic max flow on the residual network, bounded by `limit`.
long long MinCostFlow::dinic_max_flow(int s, int t, long long limit) {
  const int n = num_nodes();
  std::vector<int> level(static_cast<std::size_t>(n));
  std::vector<int> iter(static_cast<std::size_t>(n));
  long long flow = 0;

  const auto bfs = [&]() {
    std::fill(level.begin(), level.end(), -1);
    std::queue<int> q;
    level[static_cast<std::size_t>(s)] = 0;
    q.push(s);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int a = head_[static_cast<std::size_t>(v)]; a != -1;
           a = arcs_[static_cast<std::size_t>(a)].next) {
        const Arc& arc = arcs_[static_cast<std::size_t>(a)];
        if (arc.cap > 0 && level[static_cast<std::size_t>(arc.to)] < 0) {
          level[static_cast<std::size_t>(arc.to)] =
              level[static_cast<std::size_t>(v)] + 1;
          q.push(arc.to);
        }
      }
    }
    return level[static_cast<std::size_t>(t)] >= 0;
  };

  // Iterative blocking-flow DFS (the scaled instances are deep enough to
  // overflow the call stack with a recursive formulation).
  std::vector<int> path;
  while (flow < limit && bfs()) {
    for (int v = 0; v < n; ++v) iter[static_cast<std::size_t>(v)] = head_[static_cast<std::size_t>(v)];
    while (flow < limit) {
      path.clear();
      int v = s;
      while (v != t) {
        int& a = iter[static_cast<std::size_t>(v)];
        while (a != -1) {
          const Arc& arc = arcs_[static_cast<std::size_t>(a)];
          if (arc.cap > 0 && level[static_cast<std::size_t>(arc.to)] ==
                                 level[static_cast<std::size_t>(v)] + 1)
            break;
          a = arc.next;
        }
        if (a == -1) {
          // Dead end: retreat (or the blocking flow is complete at s).
          if (path.empty()) {
            v = -1;
            break;
          }
          level[static_cast<std::size_t>(v)] = -1;  // prune from this phase
          const int back = path.back();
          path.pop_back();
          v = arcs_[static_cast<std::size_t>(back ^ 1)].to;
          continue;
        }
        path.push_back(a);
        v = arcs_[static_cast<std::size_t>(a)].to;
      }
      if (v == -1) break;  // no more augmenting paths in this level graph
      long long push = limit - flow;
      for (int a : path)
        push = std::min(push, arcs_[static_cast<std::size_t>(a)].cap);
      for (int a : path) {
        arcs_[static_cast<std::size_t>(a)].cap -= push;
        arcs_[static_cast<std::size_t>(a ^ 1)].cap += push;
      }
      flow += push;
      // Restart the walk from s: saturated arcs are skipped by iter.
    }
  }
  return flow;
}

MinCostFlow::Result MinCostFlow::solve_cost_scaling(
    int s, int t, long long limit, const MinCostFlowOptions& options) {
  const int n = num_nodes();
  const std::size_t num_arc_slots = arcs_.size();
  Result result;
  result.flow = dinic_max_flow(s, t, limit);
  if (result.flow == 0 || num_arc_slots == 0) return result;

  // Residual clamp (see file comment): caps > F carry no information once
  // the value is fixed, and clamping bounds every excess by deg * F.
  for (Arc& arc : arcs_) arc.cap = std::min(arc.cap, result.flow);

  // Scaled costs.  cost_scale * max_cost must not overflow: costs and n
  // are both well under 2^31 in every instance the library builds.
  const long long cost_scale = static_cast<long long>(n) + 1;
  long long eps = 0;
  for (std::size_t a = 0; a < num_arc_slots; a += 2)
    eps = std::max(eps, arcs_[a].cost * cost_scale);
  const auto scaled_cost = [&](std::size_t a) {
    return arcs_[a].cost * cost_scale;
  };

  std::vector<long long> price(static_cast<std::size_t>(n), 0);
  std::vector<long long> excess(static_cast<std::size_t>(n), 0);
  std::vector<int> cur(static_cast<std::size_t>(n));
  std::vector<char> in_queue(static_cast<std::size_t>(n), 0);
  std::vector<char> fixed(num_arc_slots / 2, 0);
  std::queue<int> active;

  const auto cp = [&](std::size_t a) {
    // Reduced cost of residual arc a: from = arcs_[a ^ 1].to.
    return scaled_cost(a) +
           price[static_cast<std::size_t>(arcs_[a ^ 1].to)] -
           price[static_cast<std::size_t>(arcs_[a].to)];
  };

  // --- global potential update (Dial buckets from the deficit nodes) ----
  // rank(v) = #eps-steps price(v) must drop; capped ranks stay safe: for
  // any residual arc (v,w) the uncapped ranks satisfy rank(v) - rank(w)
  // <= (c_p + eps)/eps, and min(rank, cap) can only shrink the left side
  // when it shrinks rank(v), so the post-update invariant c_p >= -eps
  // still holds for every arc.
  std::vector<long long> rank(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> buckets;
  const long long rank_cap =
      std::min<long long>(3LL * n + 1, 1 << 20);
  const auto global_update = [&]() {
    ++stats_.global_updates;
    buckets.assign(static_cast<std::size_t>(rank_cap) + 1, {});
    std::fill(rank.begin(), rank.end(), rank_cap);
    bool any_deficit = false;
    for (int v = 0; v < n; ++v)
      if (excess[static_cast<std::size_t>(v)] < 0) {
        rank[static_cast<std::size_t>(v)] = 0;
        buckets[0].push_back(v);
        any_deficit = true;
      }
    if (!any_deficit) return;
    for (long long k = 0; k < rank_cap; ++k) {
      for (std::size_t bi = 0; bi < buckets[static_cast<std::size_t>(k)].size();
           ++bi) {
        const int w = buckets[static_cast<std::size_t>(k)][bi];
        if (rank[static_cast<std::size_t>(w)] != k) continue;  // stale
        // In-arcs of w are the pairs of w's adjacency slots.
        for (int a = head_[static_cast<std::size_t>(w)]; a != -1;
             a = arcs_[static_cast<std::size_t>(a)].next) {
          const std::size_t rev = static_cast<std::size_t>(a) ^ 1;
          if (arcs_[rev].cap <= 0) continue;  // (v, w) not residual
          if (options.arc_fixing && fixed[rev >> 1]) continue;
          const int v = arcs_[static_cast<std::size_t>(a)].to;
          const long long rc = cp(rev);
          const long long steps = rc >= 0 ? (rc + eps) / eps : 0;
          const long long cand =
              std::min(k + std::max<long long>(steps, 0), rank_cap);
          if (cand < rank[static_cast<std::size_t>(v)]) {
            rank[static_cast<std::size_t>(v)] = cand;
            if (cand < rank_cap)
              buckets[static_cast<std::size_t>(cand)].push_back(v);
          }
        }
      }
    }
    for (int v = 0; v < n; ++v)
      if (rank[static_cast<std::size_t>(v)] > 0) {
        price[static_cast<std::size_t>(v)] -=
            rank[static_cast<std::size_t>(v)] * eps;
        cur[static_cast<std::size_t>(v)] = head_[static_cast<std::size_t>(v)];
      }
  };

  // --- price refinement (bounded Bellman-Ford on prices) ----------------
  const auto price_refine = [&]() {
    constexpr int kMaxPasses = 8;
    for (int pass = 0; pass < kMaxPasses; ++pass) {
      bool violated = false;
      for (std::size_t a = 0; a < num_arc_slots; ++a) {
        if (arcs_[a].cap <= 0) continue;
        if (options.arc_fixing && fixed[a >> 1]) continue;
        const long long rc = cp(a);
        if (rc < -eps) {
          // Lower the head price just enough: new reduced cost == -eps.
          price[static_cast<std::size_t>(arcs_[a].to)] += rc + eps;
          violated = true;
        }
      }
      if (!violated) return true;
    }
    return false;
  };

  // --- arc fixing / unfixing at phase boundaries ------------------------
  // `opt_eps` is the eps-optimality the current flow actually satisfies
  // (the eps of the last completed phase, not the just-divided one): the
  // fixing lemma |c_p| > 2*n*eps only applies to an eps the flow is
  // optimal for, so thresholding with the smaller new eps would fix arcs
  // the lemma says nothing about.
  const auto fix_arcs = [&](long long opt_eps) {
    const long long thresh = 2LL * n * opt_eps;
    for (std::size_t a = 0; a < num_arc_slots; a += 2) {
      const long long rc = cp(a);
      const bool out = rc > thresh || rc < -thresh;
      if (out && !fixed[a >> 1]) {
        fixed[a >> 1] = 1;
        ++stats_.arcs_fixed;
      } else if (!out && fixed[a >> 1]) {
        fixed[a >> 1] = 0;
      }
    }
  };

  // --- refine(eps) ------------------------------------------------------
  const auto refine = [&]() {
    ++stats_.phases;
    // Saturate every residual arc with negative reduced cost.
    for (std::size_t a = 0; a < num_arc_slots; ++a) {
      if (arcs_[a].cap <= 0) continue;
      if (options.arc_fixing && fixed[a >> 1]) continue;
      if (cp(a) >= 0) continue;
      const long long delta = arcs_[a].cap;
      const int from = arcs_[a ^ 1].to;
      const int to = arcs_[a].to;
      arcs_[a].cap -= delta;
      arcs_[a ^ 1].cap += delta;
      excess[static_cast<std::size_t>(from)] -= delta;
      excess[static_cast<std::size_t>(to)] += delta;
    }
    for (int v = 0; v < n; ++v) {
      cur[static_cast<std::size_t>(v)] = head_[static_cast<std::size_t>(v)];
      if (excess[static_cast<std::size_t>(v)] > 0 &&
          !in_queue[static_cast<std::size_t>(v)]) {
        active.push(v);
        in_queue[static_cast<std::size_t>(v)] = 1;
      }
    }
    std::uint64_t relabels_since_update = 0;
    const std::uint64_t update_interval =
        static_cast<std::uint64_t>(n) / 2 + 16;
    while (!active.empty()) {
      const int v = active.front();
      active.pop();
      in_queue[static_cast<std::size_t>(v)] = 0;
      // Discharge v.
      while (excess[static_cast<std::size_t>(v)] > 0) {
        int& a = cur[static_cast<std::size_t>(v)];
        if (a == -1) {
          // Relabel: p(v) = max over residual arcs (p(w) - c(v,w)) - eps.
          long long best = std::numeric_limits<long long>::min();
          for (int b = head_[static_cast<std::size_t>(v)]; b != -1;
               b = arcs_[static_cast<std::size_t>(b)].next) {
            if (arcs_[static_cast<std::size_t>(b)].cap <= 0) continue;
            if (options.arc_fixing &&
                fixed[static_cast<std::size_t>(b) >> 1])
              continue;
            best = std::max(
                best,
                price[static_cast<std::size_t>(
                    arcs_[static_cast<std::size_t>(b)].to)] -
                    scaled_cost(static_cast<std::size_t>(b)));
          }
          FTRSN_CHECK_MSG(best != std::numeric_limits<long long>::min(),
                          "cost scaling: active node with no residual arc");
          price[static_cast<std::size_t>(v)] = best - eps;
          a = head_[static_cast<std::size_t>(v)];
          ++stats_.relabels;
          if (options.global_updates &&
              ++relabels_since_update >= update_interval) {
            relabels_since_update = 0;
            global_update();
            // Prices moved globally; restart this node's scan pointer.
            a = cur[static_cast<std::size_t>(v)];
          }
          continue;
        }
        const Arc& arc = arcs_[static_cast<std::size_t>(a)];
        const bool skip = arc.cap <= 0 ||
                          (options.arc_fixing &&
                           fixed[static_cast<std::size_t>(a) >> 1]) ||
                          cp(static_cast<std::size_t>(a)) >= 0;
        if (skip) {
          a = arc.next;
          continue;
        }
        const long long delta =
            std::min(excess[static_cast<std::size_t>(v)], arc.cap);
        const int w = arc.to;
        arcs_[static_cast<std::size_t>(a)].cap -= delta;
        arcs_[static_cast<std::size_t>(a) ^ 1].cap += delta;
        excess[static_cast<std::size_t>(v)] -= delta;
        excess[static_cast<std::size_t>(w)] += delta;
        ++stats_.pushes;
        if (excess[static_cast<std::size_t>(w)] > 0 &&
            !in_queue[static_cast<std::size_t>(w)]) {
          active.push(w);
          in_queue[static_cast<std::size_t>(w)] = 1;
        }
      }
    }
  };

  // --- scaling loop -----------------------------------------------------
  long long opt_eps = eps;  // the eps-optimality the current flow satisfies
  while (eps > 1) {
    eps = std::max<long long>(eps / std::max(options.alpha, 2), 1);
    if (options.arc_fixing) fix_arcs(opt_eps);
    if (options.price_refinement && price_refine()) {
      ++stats_.price_refines;
      opt_eps = eps;
      continue;
    }
    refine();
    opt_eps = eps;
  }

  // Recompute the objective from the final arc flows in original costs.
  result.cost = 0;
  for (std::size_t a = 1; a < num_arc_slots; a += 2)
    result.cost += arcs_[a].cap * arcs_[a ^ 1].cost;
  return result;
}

}  // namespace ftrsn
