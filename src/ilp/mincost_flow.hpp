// Minimum-cost flow with successive shortest paths and Johnson potentials,
// plus a wrapper for arc lower bounds (the standard excess/deficit
// transformation).
//
// This is the workhorse relaxation of the connectivity augmentation ILP
// (paper eqs. 2-5): with the acyclicity constraints dropped, the degree
// covering problem is a transportation problem whose LP relaxation is
// integral, so a min-cost flow solves it exactly.  Cycles are then
// eliminated by branching (augment/ilp_augmenter).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/common.hpp"

namespace ftrsn {

class MinCostFlow {
 public:
  explicit MinCostFlow(int num_nodes);

  /// Adds an arc; returns its id.  cap >= 0, cost >= 0.
  int add_arc(int from, int to, long long cap, long long cost);

  /// Computes a min-cost flow of value min(max_flow, `limit`) from s to t.
  /// Returns {flow, cost}.
  struct Result {
    long long flow = 0;
    long long cost = 0;
  };
  Result solve(int s, int t,
               long long limit = std::numeric_limits<long long>::max());

  /// Flow currently on arc `id` (valid after solve()).
  long long flow_on(int id) const;
  /// Remaining capacity of arc `id`.
  long long residual(int id) const;
  /// Sets the capacity of an existing arc (used by branch & bound to forbid
  /// edges); resets all flow.
  void set_capacity(int id, long long cap);
  /// Removes all flow (solve() can be called again).
  void reset_flow();

  int num_nodes() const { return static_cast<int>(head_.size()); }

 private:
  struct Arc {
    int to;
    int next;
    long long cap;   // residual capacity
    long long cost;
  };
  std::vector<Arc> arcs_;
  std::vector<int> head_;
  std::vector<long long> original_cap_;  // by arc id (forward arcs only)
};

/// Min-cost circulation-style helper: minimum cost selection of unit arcs
/// subject to per-node lower bounds on selected out-degree and in-degree.
///
/// Nodes are split into an out-side and an in-side; candidate edge (u, v)
/// becomes a unit arc between them.  `need_out[u]` / `need_in[v]` give the
/// lower bounds (0 where not required).  Returns the chosen edge set as arc
/// ids, or nullopt if infeasible.
class DegreeCoverSolver {
 public:
  struct Edge {
    int from, to;
    long long cost;
  };

  DegreeCoverSolver(int num_nodes, std::vector<Edge> candidates,
                    std::vector<int> need_out, std::vector<int> need_in);

  /// Forbids candidate edge `index` (before solve).
  void forbid(int index);
  /// Forces candidate edge `index` to be chosen (before solve).
  void require(int index);

  struct Result {
    bool feasible = false;
    long long cost = 0;
    std::vector<int> chosen;  ///< indices into the candidate list
  };
  Result solve();

 private:
  int n_;
  std::vector<Edge> candidates_;
  std::vector<int> need_out_, need_in_;
  std::vector<std::int8_t> state_;  // 0 free, 1 forbidden, 2 required
};

}  // namespace ftrsn
