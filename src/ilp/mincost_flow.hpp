// Minimum-cost flow with two interchangeable engines, plus a wrapper for
// arc lower bounds (the standard excess/deficit transformation).
//
//  * kSsp: successive shortest paths with Johnson potentials — the
//    original textbook engine, O(F * E log V).  Kept as the differential
//    oracle: every cost-scaling result is checked against it in the ilp
//    test suite, and benches report the work ratio between the two.
//  * kCostScaling (default): Goldberg-Tarjan epsilon-scaling push/relabel.
//    A Dinic max-flow phase fixes the flow value, then successive
//    refine(eps) passes (saturate negative reduced-cost arcs, discharge
//    active nodes with push/relabel) tighten eps-optimality until the
//    flow is provably optimal.  Three classic accelerators from the
//    Flowlessly/LEMON lineage are implemented and individually
//    switchable: a global potential update (bucket-based set-relabeling
//    from the deficit nodes), price refinement (skip a refine phase
//    entirely when Bellman-Ford passes certify the flow is already
//    eps-optimal), and arc fixing (arcs whose reduced cost exceeds
//    2*n*eps can never change flow again and drop out of every scan).
//
// This is the workhorse relaxation of the connectivity augmentation ILP
// (paper eqs. 2-5): with the acyclicity constraints dropped, the degree
// covering problem is a transportation problem whose LP relaxation is
// integral, so a min-cost flow solves it exactly.  Cycles are then
// eliminated by branching (augment/ilp_augmenter).  The cost-scaling
// engine keeps that relaxation tractable on synthetic-scale RSNs
// (10^5-10^6 scan elements, src/gen/scale.hpp) where the SSP engine's
// per-augmentation Dijkstra sweeps dominate.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/common.hpp"

namespace ftrsn {

/// Engine selection and heuristic switches for MinCostFlow::solve.
struct MinCostFlowOptions {
  enum class Algorithm {
    kSsp,          ///< successive shortest paths (differential oracle)
    kCostScaling,  ///< epsilon-scaling push/relabel (default)
  };
  Algorithm algorithm = Algorithm::kCostScaling;

  /// Epsilon division factor per scaling phase (alpha-scaling).
  int alpha = 8;
  /// Bucket-based global potential updates from the deficit nodes,
  /// triggered after ~n relabels.
  bool global_updates = true;
  /// Try to certify eps-optimality with bounded Bellman-Ford passes
  /// before each refine phase; success skips the phase.
  bool price_refinement = true;
  /// Drop arcs with |reduced cost| > 2*n*eps from all scans (their flow
  /// can never change again at this or any smaller eps).
  bool arc_fixing = true;
};

class MinCostFlow {
 public:
  explicit MinCostFlow(int num_nodes);

  /// Adds an arc; returns its id.  cap >= 0, cost >= 0.
  int add_arc(int from, int to, long long cap, long long cost);

  /// Computes a min-cost flow of value min(max_flow, `limit`) from s to t.
  /// Returns {flow, cost}.  Both engines produce a minimum-cost flow of
  /// the same (maximum) value; the arc-level flow assignment may differ
  /// between engines when the optimum is not unique.
  struct Result {
    long long flow = 0;
    long long cost = 0;
  };
  Result solve(int s, int t,
               long long limit = std::numeric_limits<long long>::max(),
               const MinCostFlowOptions& options = {});

  /// Work counters of the most recent solve() on this object.  All values
  /// are deterministic functions of the instance (no randomization, no
  /// threads), so tests and CI assert on them across hosts.
  struct Stats {
    // Cost-scaling engine.
    std::uint64_t pushes = 0;
    std::uint64_t relabels = 0;
    std::uint64_t phases = 0;         ///< refine phases executed
    std::uint64_t price_refines = 0;  ///< phases skipped by price refinement
    std::uint64_t global_updates = 0;
    std::uint64_t arcs_fixed = 0;     ///< fix transitions (not currently-fixed)
    // SSP engine.
    std::uint64_t ssp_augmentations = 0;
    std::uint64_t ssp_work = 0;  ///< arc relaxation scans across Dijkstras
  };
  const Stats& last_stats() const { return stats_; }

  /// Flow currently on arc `id` (valid after solve()).
  long long flow_on(int id) const;
  /// Remaining capacity of arc `id`.
  long long residual(int id) const;
  /// Sets the capacity of an existing arc (used by branch & bound to forbid
  /// edges); resets all flow.
  void set_capacity(int id, long long cap);
  /// Removes all flow (solve() can be called again).
  void reset_flow();

  int num_nodes() const { return static_cast<int>(head_.size()); }
  int num_arcs() const { return static_cast<int>(original_cap_.size()); }

 private:
  struct Arc {
    int to;
    int next;
    long long cap;   // residual capacity
    long long cost;
  };

  Result solve_ssp(int s, int t, long long limit);
  Result solve_cost_scaling(int s, int t, long long limit,
                            const MinCostFlowOptions& options);

  // Cost-scaling internals (cost_scaling.cpp).
  long long dinic_max_flow(int s, int t, long long limit);
  void publish_counters() const;

  std::vector<Arc> arcs_;
  std::vector<int> head_;
  std::vector<long long> original_cap_;  // by arc id (forward arcs only)
  Stats stats_;
};

/// Min-cost circulation-style helper: minimum cost selection of unit arcs
/// subject to per-node lower bounds on selected out-degree and in-degree.
///
/// Nodes are split into an out-side and an in-side; candidate edge (u, v)
/// becomes a unit arc between them.  `need_out[u]` / `need_in[v]` give the
/// lower bounds (0 where not required).  Returns the chosen edge set as arc
/// ids, or nullopt if infeasible.
class DegreeCoverSolver {
 public:
  struct Edge {
    int from, to;
    long long cost;
  };

  DegreeCoverSolver(int num_nodes, std::vector<Edge> candidates,
                    std::vector<int> need_out, std::vector<int> need_in);

  /// Forbids candidate edge `index` (before solve).
  void forbid(int index);
  /// Forces candidate edge `index` to be chosen (before solve).
  void require(int index);

  /// Flow engine used by solve(); cost-scaling by default, switchable to
  /// the SSP oracle for differential tests and benches.
  void set_flow_options(const MinCostFlowOptions& options) {
    flow_options_ = options;
  }
  const MinCostFlowOptions& flow_options() const { return flow_options_; }

  struct Result {
    bool feasible = false;
    long long cost = 0;
    std::vector<int> chosen;  ///< indices into the candidate list
  };
  Result solve();

 private:
  int n_;
  std::vector<Edge> candidates_;
  std::vector<int> need_out_, need_in_;
  std::vector<std::int8_t> state_;  // 0 free, 1 forbidden, 2 required
  MinCostFlowOptions flow_options_;
};

}  // namespace ftrsn
