// Dense bounded-variable primal simplex (Big-M) for small/medium linear
// programs.  Used as the LP relaxation inside the 0/1 ILP solver
// (ilp/ilp.hpp), which in turn verifies the flow-based augmentation engine
// on small instances and realizes the paper's eqs. (2)-(5) literally.
#pragma once

#include <vector>

#include "util/common.hpp"

namespace ftrsn {

enum class Sense : std::uint8_t { kLe, kGe, kEq };

struct LinearConstraint {
  std::vector<std::pair<int, double>> terms;  ///< (variable index, coeff)
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

struct LpProblem {
  /// Objective: minimize cost . x
  std::vector<double> cost;
  /// Per-variable upper bound (lower bound is always 0).
  std::vector<double> upper;
  std::vector<LinearConstraint> constraints;

  int add_variable(double c, double ub) {
    cost.push_back(c);
    upper.push_back(ub);
    return static_cast<int>(cost.size()) - 1;
  }
  void add_constraint(LinearConstraint c) { constraints.push_back(std::move(c)); }
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
};

/// Solves min cost.x subject to the constraints and 0 <= x <= upper.
LpSolution solve_lp(const LpProblem& problem, int max_iters = 200000);

}  // namespace ftrsn
