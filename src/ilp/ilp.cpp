#include "ilp/ilp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "obs/obs.hpp"

namespace ftrsn {

namespace {

/// A branch & bound node: variable fixings on top of the base problem.
struct BbNode {
  std::vector<std::pair<int, bool>> fixings;  // (var, value)
  double bound = 0.0;                         // parent LP bound
};

struct NodeOrder {
  bool operator()(const BbNode& a, const BbNode& b) const {
    return a.bound > b.bound;  // best-first
  }
};

}  // namespace

IlpSolver::IlpSolver(LpProblem problem, IlpOptions options)
    : base_(std::move(problem)), options_(options) {
  for (double u : base_.upper)
    FTRSN_CHECK_MSG(u == 0.0 || u == 1.0, "ILP variables must be binary");
}

IlpResult IlpSolver::solve() {
  OBS_SPAN("ilp.solve");
  static obs::Counter lp_solves("ilp.lp_solves");
  IlpResult result;
  // Lazily added cuts apply globally (they are valid for every node).
  std::vector<LinearConstraint> cuts;

  std::priority_queue<BbNode, std::vector<BbNode>, NodeOrder> open;
  open.push({});
  double incumbent = std::numeric_limits<double>::infinity();

  while (!open.empty() && result.explored_nodes < options_.max_nodes) {
    BbNode node = open.top();
    open.pop();
    if (node.bound >= incumbent - 1e-9) continue;  // pruned
    ++result.explored_nodes;

    // Build the node problem: base + cuts + fixings (via bounds).
    LpProblem p = base_;
    for (const LinearConstraint& c : cuts) p.add_constraint(c);
    std::vector<LinearConstraint> extra;  // fixing x=1 via lower bound row
    for (const auto& [var, value] : node.fixings) {
      if (value) {
        LinearConstraint c;
        c.terms = {{var, 1.0}};
        c.sense = Sense::kGe;
        c.rhs = 1.0;
        p.add_constraint(c);
      } else {
        p.upper[static_cast<std::size_t>(var)] = 0.0;
      }
    }

    lp_solves.add();
    const LpSolution lp = solve_lp(p, options_.max_lp_iters);
    if (lp.status == LpStatus::kInfeasible) continue;
    if (lp.status == LpStatus::kUnbounded || lp.status == LpStatus::kIterLimit)
      continue;  // treat as unusable node (sound: only weakens the search)
    if (lp.objective >= incumbent - 1e-9) continue;

    // Most-fractional branching.
    int branch_var = -1;
    double best_frac = options_.int_tol;
    for (std::size_t j = 0; j < base_.cost.size(); ++j) {
      const double f = std::abs(lp.x[j] - std::round(lp.x[j]));
      if (f > best_frac) {
        best_frac = f;
        branch_var = static_cast<int>(j);
      }
    }

    if (branch_var < 0) {
      // Integral candidate: round cleanly and run lazy separation.
      std::vector<double> x(lp.x);
      for (double& v : x) v = std::round(v);
      if (lazy_) {
        std::vector<LinearConstraint> violated = lazy_(x);
        if (!violated.empty()) {
          result.lazy_cuts_added += static_cast<int>(violated.size());
          for (LinearConstraint& c : violated) cuts.push_back(std::move(c));
          // Re-enqueue this node: it must respect the new cuts.
          open.push(std::move(node));
          continue;
        }
      }
      if (lp.objective < incumbent) {
        incumbent = lp.objective;
        result.feasible = true;
        result.objective = lp.objective;
        result.x = std::move(x);
      }
      continue;
    }

    BbNode zero = node, one = node;
    zero.bound = one.bound = lp.objective;
    zero.fixings.emplace_back(branch_var, false);
    one.fixings.emplace_back(branch_var, true);
    open.push(std::move(zero));
    open.push(std::move(one));
  }

  result.optimal = result.feasible && open.empty();
  obs::count("ilp.bb_nodes", static_cast<std::uint64_t>(result.explored_nodes));
  obs::count("ilp.lazy_cuts",
             static_cast<std::uint64_t>(result.lazy_cuts_added));
  return result;
}

}  // namespace ftrsn
