// 0/1 integer linear programming by branch & bound over the LP relaxation
// (ilp/simplex.hpp), with support for lazily separated constraints.
//
// The connectivity augmentation of the paper (eqs. 2-5) has exponentially
// many acyclicity constraints (4); they are generated lazily: whenever the
// solver finds an integral candidate, the callback may add violated cuts,
// which invalidates the candidate and continues the search.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ilp/simplex.hpp"

namespace ftrsn {

struct IlpOptions {
  int max_nodes = 200000;        ///< branch & bound node limit
  int max_lp_iters = 200000;     ///< per-LP simplex iteration limit
  double int_tol = 1e-6;         ///< integrality tolerance
};

struct IlpResult {
  bool optimal = false;          ///< proven optimal within limits
  bool feasible = false;         ///< an integral solution was found
  double objective = 0.0;
  std::vector<double> x;
  int explored_nodes = 0;
  int lazy_cuts_added = 0;
};

/// Lazy-constraint callback: inspects an integral candidate solution and
/// returns violated constraints to add (empty = candidate is valid).
using LazyCutFn =
    std::function<std::vector<LinearConstraint>(const std::vector<double>&)>;

class IlpSolver {
 public:
  /// All variables of `problem` are treated as binary {0,1}; variable upper
  /// bounds must be 1 (or 0 to fix a variable).
  explicit IlpSolver(LpProblem problem, IlpOptions options = {});

  void set_lazy_cuts(LazyCutFn fn) { lazy_ = std::move(fn); }

  IlpResult solve();

 private:
  LpProblem base_;
  IlpOptions options_;
  LazyCutFn lazy_;
};

}  // namespace ftrsn
