#include <gtest/gtest.h>

#include "access/planner.hpp"
#include "itc02/itc02.hpp"

namespace ftrsn {
namespace {

// Node ids in make_example_rsn(): 0=SI 1=A 2=B 4=C 6=D.
constexpr NodeId kA = 1, kB = 2, kC = 4, kD = 6;

TEST(Planner, ResetPathSegmentsNeedNoCsu) {
  const Rsn rsn = make_example_rsn();
  for (NodeId seg : {kA, kB, kD}) {
    const AccessPlan plan = plan_access(rsn, seg);
    EXPECT_TRUE(plan.csu_streams.empty()) << rsn.node(seg).name;
    EXPECT_TRUE(validate_plan(rsn, plan));
  }
}

TEST(Planner, BypassedSegmentNeedsOneCsu) {
  const Rsn rsn = make_example_rsn();
  const AccessPlan plan = plan_access(rsn, kC);
  EXPECT_EQ(plan.csu_streams.size(), 1u);
  EXPECT_EQ(plan.shift_cycles(), 7);  // reset path A(2)+B(3)+D(2)
  EXPECT_TRUE(validate_plan(rsn, plan));
}

TEST(Planner, PlanPreservesOtherConfiguration) {
  // Opening C must keep mux1 selecting B (A's shadow preserved at 1).
  const Rsn rsn = make_example_rsn();
  const AccessPlan plan = plan_access(rsn, kC);
  CsuSimulator sim(rsn);
  for (const auto& s : plan.csu_streams) sim.csu(s);
  EXPECT_TRUE(sim.shadow_value(kA, 0));
  EXPECT_TRUE(sim.shadow_value(kB, 0));
}

/// Property sweep: every scan segment of every 2-level SoC is reachable
/// within `levels` CSU operations, and the plan validates on a fresh
/// simulator.
class PlannerSocParam : public ::testing::TestWithParam<const char*> {};

TEST_P(PlannerSocParam, EverySegmentPlannable) {
  const Rsn rsn = itc02::generate_sib_rsn(*itc02::find_soc(GetParam()));
  const int levels = rsn.stats().levels;
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    if (!rsn.node(id).is_segment()) continue;
    const AccessPlan plan = plan_access(rsn, id);
    EXPECT_LE(plan.csu_streams.size(), static_cast<std::size_t>(levels) + 1)
        << rsn.node(id).name;
    EXPECT_TRUE(validate_plan(rsn, plan)) << rsn.node(id).name;
  }
}

INSTANTIATE_TEST_SUITE_P(Socs, PlannerSocParam,
                         ::testing::Values("u226", "x1331", "q12710"),
                         [](const auto& info) { return std::string(info.param); });

TEST(Planner, AccessLatencyGrowsWithDepth) {
  // Deeper targets need more CSU operations (the paper's latency model:
  // the sum of the cycles of each CSU in the computed series).
  const Rsn rsn = itc02::generate_sib_rsn(*itc02::find_soc("x1331"));
  long long max_shift = 0;
  std::size_t max_ops = 0;
  for (NodeId id = 0; id < rsn.num_nodes(); ++id) {
    if (!rsn.node(id).is_segment()) continue;
    const AccessPlan plan = plan_access(rsn, id);
    max_shift = std::max(max_shift, plan.shift_cycles());
    max_ops = std::max(max_ops, plan.csu_streams.size());
  }
  EXPECT_GE(max_ops, 3u);  // x1331 has 4 hierarchy levels
  EXPECT_GT(max_shift, 0);
}

}  // namespace
}  // namespace ftrsn
