// ftrsn_obs test suite (ctest -L obs).
//
// Each TEST runs as its own ctest entry (gtest_discover_tests), i.e. in a
// fresh process, so the process-wide obs registry starts empty: counter
// registration, thread-lane numbering and golden-file output are
// deterministic per test.
//
// The golden-file tests pin the exported trace-event and run-report JSON
// byte for byte under a fake clock (detail::set_clock_for_test) and with
// machine-dependent report fields disabled.  Regenerate the goldens after
// an intentional format change with:
//
//   FTRSN_REGOLD=1 ./ftrsn_obs_tests --gtest_filter='ObsGolden.*'
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace ftrsn {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(FTRSN_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void expect_matches_golden(const std::string& got, const std::string& file) {
  const std::string path = golden_path(file);
  if (std::getenv("FTRSN_REGOLD") != nullptr) {
    ASSERT_TRUE(obs::write_file(path, got)) << path;
    return;
  }
  EXPECT_EQ(got, read_file(path)) << "golden mismatch: " << path;
}

// Fake clock: every call advances time by 100 us, starting at 0.
std::atomic<std::uint64_t> fake_ticks{0};
std::uint64_t fake_clock() { return fake_ticks.fetch_add(1) * 100; }

struct FakeClockScope {
  FakeClockScope() {
    fake_ticks.store(0);
    obs::reset();
    obs::detail::set_clock_for_test(&fake_clock);
  }
  ~FakeClockScope() {
    obs::detail::set_clock_for_test(nullptr);
    obs::enable(false);
    obs::reset();
  }
};

// --- golden files (declared first; fresh process per test regardless) -------

TEST(ObsGolden, TraceJson) {
  FakeClockScope clock;
  obs::enable(true);
  {
    OBS_SPAN("parse");
    { OBS_SPAN("solve"); }
  }
  { OBS_SPAN("emit"); }
  expect_matches_golden(obs::trace_json(), "obs_golden_trace.json");
}

TEST(ObsGolden, ReportJson) {
  FakeClockScope clock;
  obs::enable(true);
  obs::Counter items("golden.items");
  items.add(3);
  obs::count("golden.retries");
  obs::gauge_set("golden.ratio", 0.5);
  obs::gauge_max("golden.ratio", 0.25);  // keeps the max (0.5)
  {
    OBS_SPAN("parse");
    { OBS_SPAN("solve"); }
  }
  { OBS_SPAN("emit"); }
  { OBS_SPAN("emit"); }  // aggregated: stage "emit" count 2
  obs::ReportOptions opt;
  opt.include_machine = false;  // byte-stable across machines
  expect_matches_golden(obs::report_json(opt), "obs_golden_report.json");
}

// --- counters ---------------------------------------------------------------

TEST(Obs, CountersAlwaysOnAndDeterministic) {
  obs::reset();
  ASSERT_FALSE(obs::enabled());  // counters must not depend on tracing
  obs::Counter hits("test.hits");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) hits.add();
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(hits.value(), kThreads * kPerThread);
  EXPECT_EQ(obs::counter_value("test.hits"), kThreads * kPerThread);
  EXPECT_EQ(obs::counters_snapshot().at("test.hits"), kThreads * kPerThread);
  hits.reset();
  EXPECT_EQ(hits.value(), 0u);
}

TEST(Obs, GaugeSetAndMax) {
  obs::reset();
  obs::gauge_set("test.g", 2.0);
  obs::gauge_max("test.g", 1.0);
  EXPECT_DOUBLE_EQ(obs::gauges_snapshot().at("test.g"), 2.0);
  obs::gauge_max("test.g", 5.0);
  EXPECT_DOUBLE_EQ(obs::gauges_snapshot().at("test.g"), 5.0);
}

// --- spans ------------------------------------------------------------------

TEST(Obs, DisabledSpansRecordNothing) {
  obs::reset();
  ASSERT_FALSE(obs::enabled());
  { OBS_SPAN("invisible"); }
  obs::enable(true);
  { OBS_SPAN("visible"); }
  obs::enable(false);
  const std::string trace = obs::trace_json();
  EXPECT_EQ(trace.find("invisible"), std::string::npos);
  EXPECT_NE(trace.find("visible"), std::string::npos);
}

TEST(Obs, SpanNestingAcrossThreads) {
  obs::reset();
  obs::enable(true);
  {
    OBS_SPAN("outer");
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t)
      workers.emplace_back([t] {
        obs::set_thread_name("nest-w" + std::to_string(t));
        OBS_SPAN("worker.outer");
        { OBS_SPAN("worker.inner"); }
      });
    for (auto& w : workers) w.join();
  }
  obs::enable(false);
  const std::string trace = obs::trace_json();
  // Every thread got its own named lane and both nesting levels landed.
  for (int t = 0; t < 3; ++t)
    EXPECT_NE(trace.find("nest-w" + std::to_string(t)), std::string::npos);
  EXPECT_NE(trace.find("\"worker.inner\", \"args\": {\"depth\": 1}"),
            std::string::npos);
  EXPECT_NE(trace.find("\"worker.outer\", \"args\": {\"depth\": 0}"),
            std::string::npos);
  EXPECT_NE(trace.find("\"outer\", \"args\": {\"depth\": 0}"),
            std::string::npos);
}

TEST(Obs, ThreadPoolWorkersGetNamedLanes) {
  obs::reset();
  obs::enable(true);
  {
    ThreadPool pool(4, "metric");
    pool.parallel_for(64, 1, [](int, std::size_t, std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  obs::enable(false);
  const std::string trace = obs::trace_json();
  EXPECT_NE(trace.find("metric.lane"), std::string::npos);
  EXPECT_NE(trace.find("metric-w1"), std::string::npos);
  EXPECT_GE(obs::counter_value("pool.chunks"), 64u);
}

TEST(Obs, ReportStagesSumMatchesDepthZeroSpans) {
  obs::reset();
  obs::enable(true);
  {
    OBS_SPAN("stage.a");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    OBS_SPAN("stage.b");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  obs::enable(false);
  const std::string report = obs::report_json();
  EXPECT_NE(report.find("\"schema\": \"ftrsn-run-report\""),
            std::string::npos);
  EXPECT_NE(report.find("stage.a"), std::string::npos);
  EXPECT_NE(report.find("stage.b"), std::string::npos);
  EXPECT_NE(report.find("\"stages_total_seconds\""), std::string::npos);
  EXPECT_NE(report.find("\"peak_rss_kb\""), std::string::npos);
}

TEST(Obs, DisabledModeOverheadSmoke) {
  obs::reset();
  ASSERT_FALSE(obs::enabled());
  // 10M disabled span constructions must be near-free (an atomic load and
  // a branch each).  The bound is ~100x slack over the expected cost so the
  // test only catches catastrophic regressions (e.g. a clock read or an
  // allocation sneaking into the disabled path).
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10'000'000; ++i) {
    OBS_SPAN("never.recorded");
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(secs, 2.0);
  EXPECT_EQ(obs::trace_json().find("never.recorded"), std::string::npos);
}

// --- environment wiring -----------------------------------------------------

TEST(Obs, InitFromEnvSemantics) {
  unsetenv("FTRSN_TRACE");
  unsetenv("FTRSN_REPORT");
  obs::enable(false);
  EXPECT_FALSE(obs::init_from_env("tool").any());
  EXPECT_FALSE(obs::enabled());

  setenv("FTRSN_TRACE", "0", 1);
  EXPECT_FALSE(obs::init_from_env("tool").any());

  setenv("FTRSN_TRACE", "1", 1);
  obs::EnvConfig cfg = obs::init_from_env("tool");
  EXPECT_EQ(cfg.trace_path, "tool_trace.json");
  EXPECT_TRUE(cfg.report_path.empty());
  EXPECT_TRUE(obs::enabled());

  obs::enable(false);
  setenv("FTRSN_TRACE", "/tmp/custom.json", 1);
  setenv("FTRSN_REPORT", "1", 1);
  cfg = obs::init_from_env("tool");
  EXPECT_EQ(cfg.trace_path, "/tmp/custom.json");
  EXPECT_EQ(cfg.report_path, "tool_report.json");
  EXPECT_TRUE(obs::enabled());

  unsetenv("FTRSN_TRACE");
  unsetenv("FTRSN_REPORT");
  obs::enable(false);
  obs::reset();
}

TEST(Obs, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "obs_roundtrip.json";
  ASSERT_TRUE(obs::write_file(path, "{\"x\": 1}\n"));
  EXPECT_EQ(read_file(path), "{\"x\": 1}\n");
  std::remove(path.c_str());
}

// --- streaming trace export --------------------------------------------------

// A streamed single-lane trace is byte-identical to trace_json() of the
// same workload, even when the tiny buffer threshold forces many
// incremental flushes along the way.
TEST(ObsStream, StreamedFileMatchesTraceJsonByteForByte) {
  const std::string path = ::testing::TempDir() + "obs_stream.json";
  const auto workload = [] {
    for (int i = 0; i < 20; ++i) {
      OBS_SPAN("stream.outer");
      { OBS_SPAN("stream.inner"); }
    }
  };
  std::string expected;
  {
    FakeClockScope clock;
    obs::enable(true);
    workload();
    expected = obs::trace_json();
  }
  {
    FakeClockScope clock;
    obs::enable(true);
    ASSERT_TRUE(obs::stream_trace_to(path, 4));
    EXPECT_TRUE(obs::trace_streaming());
    workload();
    ASSERT_TRUE(obs::close_trace_stream());
    EXPECT_FALSE(obs::trace_streaming());
  }
  EXPECT_EQ(read_file(path), expected);
  std::remove(path.c_str());
}

// Flush-on-threshold bounds the in-memory event buffer: after every span
// the buffered count stays at (threshold + concurrent slack); with a
// single thread the bound is exact.
TEST(ObsStream, FlushBoundsBufferedEvents) {
  const std::string path = ::testing::TempDir() + "obs_stream_bound.json";
  FakeClockScope clock;
  obs::enable(true);
  constexpr std::size_t kThreshold = 8;
  ASSERT_TRUE(obs::stream_trace_to(path, kThreshold));
  for (int i = 0; i < 100; ++i) {
    { OBS_SPAN("bound.span"); }
    EXPECT_LT(obs::detail::buffered_span_events(), kThreshold) << i;
  }
  ASSERT_TRUE(obs::close_trace_stream());
  EXPECT_EQ(obs::detail::buffered_span_events(), 0u);
  // All 100 events reached the file despite the 8-event buffer.
  const std::string trace = read_file(path);
  std::size_t events = 0;
  for (std::size_t pos = trace.find("bound.span"); pos != std::string::npos;
       pos = trace.find("bound.span", pos + 1))
    ++events;
  EXPECT_EQ(events, 100u);
  EXPECT_EQ(trace.substr(trace.size() - 4), "\n]}\n");
  std::remove(path.c_str());
}

// write_trace() on the active stream path finalizes the stream instead of
// re-dumping from (already drained) memory.
TEST(ObsStream, WriteTraceFinalizesActiveStream) {
  const std::string path = ::testing::TempDir() + "obs_stream_wt.json";
  FakeClockScope clock;
  obs::enable(true);
  ASSERT_TRUE(obs::stream_trace_to(path, 2));
  for (int i = 0; i < 10; ++i) {
    OBS_SPAN("wt.span");
  }
  ASSERT_TRUE(obs::write_trace(path));
  EXPECT_FALSE(obs::trace_streaming());
  const std::string trace = read_file(path);
  EXPECT_NE(trace.find("wt.span"), std::string::npos);
  EXPECT_EQ(trace.substr(trace.size() - 4), "\n]}\n");
  std::remove(path.c_str());
}

// The run report stays complete under streaming: spans flushed out of
// memory still appear in span aggregates and depth-0 stages.
TEST(ObsStream, ReportCompleteAfterFlushes) {
  const std::string path = ::testing::TempDir() + "obs_stream_rep.json";
  FakeClockScope clock;
  obs::enable(true);
  ASSERT_TRUE(obs::stream_trace_to(path, 3));
  for (int i = 0; i < 25; ++i) {
    OBS_SPAN("rep.stage");
  }
  ASSERT_TRUE(obs::close_trace_stream());
  obs::ReportOptions opt;
  opt.include_machine = false;
  const std::string report = obs::report_json(opt);
  EXPECT_NE(report.find("{\"name\": \"rep.stage\", \"count\": 25, "),
            std::string::npos)
      << report;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ftrsn
