// ftrsn_obs test suite (ctest -L obs).
//
// Each TEST runs as its own ctest entry (gtest_discover_tests), i.e. in a
// fresh process, so the process-wide obs registry starts empty: counter
// registration, thread-lane numbering and golden-file output are
// deterministic per test.
//
// The golden-file tests pin the exported trace-event and run-report JSON
// byte for byte under a fake clock (detail::set_clock_for_test) and with
// machine-dependent report fields disabled.  Regenerate the goldens after
// an intentional format change with:
//
//   FTRSN_REGOLD=1 ./ftrsn_obs_tests --gtest_filter='ObsGolden.*'
#include <gtest/gtest.h>

#include <atomic>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "obs/diff.hpp"
#include "obs/obs.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace ftrsn {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(FTRSN_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void expect_matches_golden(const std::string& got, const std::string& file) {
  const std::string path = golden_path(file);
  if (std::getenv("FTRSN_REGOLD") != nullptr) {
    ASSERT_TRUE(obs::write_file(path, got)) << path;
    return;
  }
  EXPECT_EQ(got, read_file(path)) << "golden mismatch: " << path;
}

// Fake clock: every call advances time by 100 us, starting at 0.
std::atomic<std::uint64_t> fake_ticks{0};
std::uint64_t fake_clock() { return fake_ticks.fetch_add(1) * 100; }

struct FakeClockScope {
  FakeClockScope() {
    fake_ticks.store(0);
    obs::reset();
    obs::detail::set_clock_for_test(&fake_clock);
  }
  ~FakeClockScope() {
    obs::detail::set_clock_for_test(nullptr);
    obs::enable(false);
    obs::reset();
  }
};

// --- golden files (declared first; fresh process per test regardless) -------

TEST(ObsGolden, TraceJson) {
  FakeClockScope clock;
  obs::enable(true);
  {
    OBS_SPAN("parse");
    { OBS_SPAN("solve"); }
  }
  { OBS_SPAN("emit"); }
  expect_matches_golden(obs::trace_json(), "obs_golden_trace.json");
}

TEST(ObsGolden, ReportJson) {
  FakeClockScope clock;
  obs::enable(true);
  obs::Counter items("golden.items");
  items.add(3);
  obs::count("golden.retries");
  obs::gauge_set("golden.ratio", 0.5);
  obs::gauge_max("golden.ratio", 0.25);  // keeps the max (0.5)
  {
    OBS_SPAN("parse");
    { OBS_SPAN("solve"); }
  }
  { OBS_SPAN("emit"); }
  { OBS_SPAN("emit"); }  // aggregated: stage "emit" count 2
  obs::ReportOptions opt;
  opt.include_machine = false;  // byte-stable across machines
  expect_matches_golden(obs::report_json(opt), "obs_golden_report.json");
}

// --- counters ---------------------------------------------------------------

TEST(Obs, CountersAlwaysOnAndDeterministic) {
  obs::reset();
  ASSERT_FALSE(obs::enabled());  // counters must not depend on tracing
  obs::Counter hits("test.hits");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) hits.add();
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(hits.value(), kThreads * kPerThread);
  EXPECT_EQ(obs::counter_value("test.hits"), kThreads * kPerThread);
  EXPECT_EQ(obs::counters_snapshot().at("test.hits"), kThreads * kPerThread);
  hits.reset();
  EXPECT_EQ(hits.value(), 0u);
}

TEST(Obs, GaugeSetAndMax) {
  obs::reset();
  obs::gauge_set("test.g", 2.0);
  obs::gauge_max("test.g", 1.0);
  EXPECT_DOUBLE_EQ(obs::gauges_snapshot().at("test.g"), 2.0);
  obs::gauge_max("test.g", 5.0);
  EXPECT_DOUBLE_EQ(obs::gauges_snapshot().at("test.g"), 5.0);
}

// --- spans ------------------------------------------------------------------

TEST(Obs, DisabledSpansRecordNothing) {
  obs::reset();
  ASSERT_FALSE(obs::enabled());
  { OBS_SPAN("invisible"); }
  obs::enable(true);
  { OBS_SPAN("visible"); }
  obs::enable(false);
  const std::string trace = obs::trace_json();
  EXPECT_EQ(trace.find("invisible"), std::string::npos);
  EXPECT_NE(trace.find("visible"), std::string::npos);
}

TEST(Obs, SpanNestingAcrossThreads) {
  obs::reset();
  obs::enable(true);
  {
    OBS_SPAN("outer");
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t)
      workers.emplace_back([t] {
        obs::set_thread_name("nest-w" + std::to_string(t));
        OBS_SPAN("worker.outer");
        { OBS_SPAN("worker.inner"); }
      });
    for (auto& w : workers) w.join();
  }
  obs::enable(false);
  const std::string trace = obs::trace_json();
  // Every thread got its own named lane and both nesting levels landed.
  for (int t = 0; t < 3; ++t)
    EXPECT_NE(trace.find("nest-w" + std::to_string(t)), std::string::npos);
  EXPECT_NE(trace.find("\"worker.inner\", \"args\": {\"depth\": 1}"),
            std::string::npos);
  EXPECT_NE(trace.find("\"worker.outer\", \"args\": {\"depth\": 0}"),
            std::string::npos);
  EXPECT_NE(trace.find("\"outer\", \"args\": {\"depth\": 0}"),
            std::string::npos);
}

TEST(Obs, ThreadPoolWorkersGetNamedLanes) {
  obs::reset();
  obs::enable(true);
  {
    ThreadPool pool(4, "metric");
    pool.parallel_for(64, 1, [](int, std::size_t, std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  obs::enable(false);
  const std::string trace = obs::trace_json();
  EXPECT_NE(trace.find("metric.lane"), std::string::npos);
  EXPECT_NE(trace.find("metric-w1"), std::string::npos);
  EXPECT_GE(obs::counter_value("pool.chunks"), 64u);
}

TEST(Obs, ReportStagesSumMatchesDepthZeroSpans) {
  obs::reset();
  obs::enable(true);
  {
    OBS_SPAN("stage.a");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    OBS_SPAN("stage.b");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  obs::enable(false);
  const std::string report = obs::report_json();
  EXPECT_NE(report.find("\"schema\": \"ftrsn-run-report\""),
            std::string::npos);
  EXPECT_NE(report.find("stage.a"), std::string::npos);
  EXPECT_NE(report.find("stage.b"), std::string::npos);
  EXPECT_NE(report.find("\"stages_total_seconds\""), std::string::npos);
  EXPECT_NE(report.find("\"peak_rss_kb\""), std::string::npos);
}

TEST(Obs, DisabledModeOverheadSmoke) {
  obs::reset();
  ASSERT_FALSE(obs::enabled());
  // 10M disabled span constructions must be near-free (an atomic load and
  // a branch each).  The bound is ~100x slack over the expected cost so the
  // test only catches catastrophic regressions (e.g. a clock read or an
  // allocation sneaking into the disabled path).
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10'000'000; ++i) {
    OBS_SPAN("never.recorded");
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(secs, 2.0);
  EXPECT_EQ(obs::trace_json().find("never.recorded"), std::string::npos);
}

// --- environment wiring -----------------------------------------------------

TEST(Obs, InitFromEnvSemantics) {
  unsetenv("FTRSN_TRACE");
  unsetenv("FTRSN_REPORT");
  obs::enable(false);
  EXPECT_FALSE(obs::init_from_env("tool").any());
  EXPECT_FALSE(obs::enabled());

  setenv("FTRSN_TRACE", "0", 1);
  EXPECT_FALSE(obs::init_from_env("tool").any());

  setenv("FTRSN_TRACE", "1", 1);
  obs::EnvConfig cfg = obs::init_from_env("tool");
  EXPECT_EQ(cfg.trace_path, "tool_trace.json");
  EXPECT_TRUE(cfg.report_path.empty());
  EXPECT_TRUE(obs::enabled());

  obs::enable(false);
  setenv("FTRSN_TRACE", "/tmp/custom.json", 1);
  setenv("FTRSN_REPORT", "1", 1);
  cfg = obs::init_from_env("tool");
  EXPECT_EQ(cfg.trace_path, "/tmp/custom.json");
  EXPECT_EQ(cfg.report_path, "tool_report.json");
  EXPECT_TRUE(obs::enabled());

  unsetenv("FTRSN_TRACE");
  unsetenv("FTRSN_REPORT");
  obs::enable(false);
  obs::reset();
}

TEST(Obs, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "obs_roundtrip.json";
  ASSERT_TRUE(obs::write_file(path, "{\"x\": 1}\n"));
  EXPECT_EQ(read_file(path), "{\"x\": 1}\n");
  std::remove(path.c_str());
}

// --- streaming trace export --------------------------------------------------

// A streamed single-lane trace is byte-identical to trace_json() of the
// same workload, even when the tiny buffer threshold forces many
// incremental flushes along the way.
TEST(ObsStream, StreamedFileMatchesTraceJsonByteForByte) {
  const std::string path = ::testing::TempDir() + "obs_stream.json";
  const auto workload = [] {
    for (int i = 0; i < 20; ++i) {
      OBS_SPAN("stream.outer");
      { OBS_SPAN("stream.inner"); }
    }
  };
  std::string expected;
  {
    FakeClockScope clock;
    obs::enable(true);
    workload();
    expected = obs::trace_json();
  }
  {
    FakeClockScope clock;
    obs::enable(true);
    ASSERT_TRUE(obs::stream_trace_to(path, 4));
    EXPECT_TRUE(obs::trace_streaming());
    workload();
    ASSERT_TRUE(obs::close_trace_stream());
    EXPECT_FALSE(obs::trace_streaming());
  }
  EXPECT_EQ(read_file(path), expected);
  std::remove(path.c_str());
}

// Flush-on-threshold bounds the in-memory event buffer: after every span
// the buffered count stays at (threshold + concurrent slack); with a
// single thread the bound is exact.
TEST(ObsStream, FlushBoundsBufferedEvents) {
  const std::string path = ::testing::TempDir() + "obs_stream_bound.json";
  FakeClockScope clock;
  obs::enable(true);
  constexpr std::size_t kThreshold = 8;
  ASSERT_TRUE(obs::stream_trace_to(path, kThreshold));
  for (int i = 0; i < 100; ++i) {
    { OBS_SPAN("bound.span"); }
    EXPECT_LT(obs::detail::buffered_span_events(), kThreshold) << i;
  }
  ASSERT_TRUE(obs::close_trace_stream());
  EXPECT_EQ(obs::detail::buffered_span_events(), 0u);
  // All 100 events reached the file despite the 8-event buffer.
  const std::string trace = read_file(path);
  std::size_t events = 0;
  for (std::size_t pos = trace.find("bound.span"); pos != std::string::npos;
       pos = trace.find("bound.span", pos + 1))
    ++events;
  EXPECT_EQ(events, 100u);
  EXPECT_EQ(trace.substr(trace.size() - 4), "\n]}\n");
  std::remove(path.c_str());
}

// write_trace() on the active stream path finalizes the stream instead of
// re-dumping from (already drained) memory.
TEST(ObsStream, WriteTraceFinalizesActiveStream) {
  const std::string path = ::testing::TempDir() + "obs_stream_wt.json";
  FakeClockScope clock;
  obs::enable(true);
  ASSERT_TRUE(obs::stream_trace_to(path, 2));
  for (int i = 0; i < 10; ++i) {
    OBS_SPAN("wt.span");
  }
  ASSERT_TRUE(obs::write_trace(path));
  EXPECT_FALSE(obs::trace_streaming());
  const std::string trace = read_file(path);
  EXPECT_NE(trace.find("wt.span"), std::string::npos);
  EXPECT_EQ(trace.substr(trace.size() - 4), "\n]}\n");
  std::remove(path.c_str());
}

// The run report stays complete under streaming: spans flushed out of
// memory still appear in span aggregates and depth-0 stages.
TEST(ObsStream, ReportCompleteAfterFlushes) {
  const std::string path = ::testing::TempDir() + "obs_stream_rep.json";
  FakeClockScope clock;
  obs::enable(true);
  ASSERT_TRUE(obs::stream_trace_to(path, 3));
  for (int i = 0; i < 25; ++i) {
    OBS_SPAN("rep.stage");
  }
  ASSERT_TRUE(obs::close_trace_stream());
  obs::ReportOptions opt;
  opt.include_machine = false;
  const std::string report = obs::report_json(opt);
  EXPECT_NE(report.find("{\"name\": \"rep.stage\", \"count\": 25, "),
            std::string::npos)
      << report;
  std::remove(path.c_str());
}

// --- histograms --------------------------------------------------------------

TEST(ObsHist, BucketBoundaries) {
  EXPECT_EQ(obs::histogram_bucket(0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1), 1u);
  for (std::size_t k = 1; k < 64; ++k) {
    EXPECT_EQ(obs::histogram_bucket((std::uint64_t{1} << k) - 1), k) << k;
    EXPECT_EQ(obs::histogram_bucket(std::uint64_t{1} << k), k + 1) << k;
  }
  for (std::size_t k = 1; k < 63; ++k)
    EXPECT_EQ(obs::histogram_bucket((std::uint64_t{1} << k) + 1), k + 1) << k;
  EXPECT_EQ(obs::histogram_bucket(UINT64_MAX), 64u);
}

TEST(ObsHist, SnapshotBucketPlacement) {
  obs::reset();
  obs::Histogram h("hist.place");
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{3},
        (std::uint64_t{1} << 40) - 1, std::uint64_t{1} << 40, UINT64_MAX})
    h.record(v);
  const auto snap = obs::histograms_snapshot().at("hist.place");
  EXPECT_EQ(snap.count, 7u);
  EXPECT_EQ(snap.max, UINT64_MAX);
  EXPECT_EQ(snap.buckets[0], 1u);   // 0
  EXPECT_EQ(snap.buckets[1], 1u);   // 1
  EXPECT_EQ(snap.buckets[2], 2u);   // 2, 3
  EXPECT_EQ(snap.buckets[40], 1u);  // 2^40 - 1
  EXPECT_EQ(snap.buckets[41], 1u);  // 2^40
  EXPECT_EQ(snap.buckets[64], 1u);  // UINT64_MAX
  std::uint64_t total = 0;
  for (const std::uint64_t b : snap.buckets) total += b;
  EXPECT_EQ(total, snap.count);
  obs::reset();
}

TEST(ObsHist, QuantilesMonotoneAndClampedToMax) {
  EXPECT_EQ(obs::HistogramSnapshot{}.quantile(0.5), 0.0);  // empty
  obs::reset();
  obs::Histogram h("hist.quant");
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const auto snap = obs::histograms_snapshot().at("hist.quant");
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, 500500u);
  EXPECT_EQ(snap.max, 1000u);
  double prev = -1.0;
  for (int i = 0; i <= 200; ++i) {
    const double q = i / 200.0;
    const double v = snap.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    EXPECT_LE(v, static_cast<double>(snap.max)) << "q=" << q;
    prev = v;
  }
  EXPECT_LE(snap.p50(), snap.p90());
  EXPECT_LE(snap.p90(), snap.p99());
  // p50 of 1..1000 lands in bucket [512, 1024); the interpolated value
  // must stay in that decade (coarse by design, never wildly off).
  EXPECT_GE(snap.p50(), 256.0);
  EXPECT_LE(snap.p50(), 1000.0);
  obs::reset();
}

// Bucket totals are exact sums of relaxed atomic increments, so the
// concurrent histogram must equal N serial copies of the same value
// stream, bucket for bucket.
TEST(ObsHist, ConcurrentRecordingDeterministicBucketTotals) {
  obs::reset();
  constexpr int kThreads = 8;
  const auto value_stream = [](obs::Histogram& h) {
    for (std::uint64_t j = 0; j < 20000; ++j) h.record((j * 37) % 4096);
    h.record(std::uint64_t{1} << 50);
  };
  obs::Histogram baseline("hist.conc.baseline");
  value_stream(baseline);
  obs::Histogram conc("hist.conc");
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&] { value_stream(conc); });
  for (auto& w : workers) w.join();
  const auto snaps = obs::histograms_snapshot();
  const auto& base = snaps.at("hist.conc.baseline");
  const auto& got = snaps.at("hist.conc");
  EXPECT_EQ(got.count, kThreads * base.count);
  EXPECT_EQ(got.sum, kThreads * base.sum);
  EXPECT_EQ(got.max, base.max);
  for (std::size_t b = 0; b < got.buckets.size(); ++b)
    EXPECT_EQ(got.buckets[b], kThreads * base.buckets[b]) << "bucket " << b;
  obs::reset();
}

// --- scoped contexts ---------------------------------------------------------

TEST(ObsContextScoping, ScopeIsolatesAggregationFromDefault) {
  obs::reset();
  obs::Counter c("ctx.iso");
  c.add(1);  // default context
  {
    obs::ObsContext child;
    obs::ContextScope scope(child);
    c.add(41);
    obs::histogram_record("ctx.iso.h", 5);
    EXPECT_EQ(c.value(), 41u);  // value() reads the *current* context
    EXPECT_EQ(child.counters().at("ctx.iso"), 41u);
    EXPECT_EQ(obs::histograms_snapshot().at("ctx.iso.h").count, 1u);
  }
  // Back in the default context: the child's updates never leaked.
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(obs::histograms_snapshot().count("ctx.iso.h"), 0u);
  obs::reset();
}

TEST(ObsContextScoping, MergeFoldsChildIntoParent) {
  obs::reset();
  obs::ObsContext parent;
  obs::ObsContext child;
  {
    obs::ContextScope scope(child);
    obs::count("merge.c", 5);
    obs::histogram_record("merge.h", 10);
    obs::histogram_record("merge.h", 1000);
    obs::gauge_max("merge.g", 2.5);
  }
  {
    obs::ContextScope scope(parent);
    obs::count("merge.c", 7);
    obs::histogram_record("merge.h", 10);
    obs::gauge_max("merge.g", 1.0);
  }
  child.merge_into(parent);
  EXPECT_EQ(parent.counters().at("merge.c"), 12u);
  EXPECT_DOUBLE_EQ(parent.gauges().at("merge.g"), 2.5);  // max-merge
  {
    obs::ContextScope scope(parent);
    const auto snap = obs::histograms_snapshot().at("merge.h");
    EXPECT_EQ(snap.count, 3u);
    EXPECT_EQ(snap.sum, 1020u);
    EXPECT_EQ(snap.max, 1000u);
    EXPECT_EQ(snap.buckets[4], 2u);   // two 10s: [8, 16)
    EXPECT_EQ(snap.buckets[10], 1u);  // 1000: [512, 1024)
  }
  // The default context saw none of it.
  EXPECT_EQ(obs::counter_value("merge.c"), 0u);
  obs::reset();
}

// Re-attaching the context that is already current must keep the span
// depth base: the nested span stays a context-depth-1 span (a span
// aggregate but not a stage), exactly as if the inner scope were absent.
TEST(ObsContextScoping, ReattachKeepsStageDepth) {
  FakeClockScope clock;
  obs::enable(true);
  obs::ObsContext ctx;
  {
    obs::ContextScope outer(ctx);
    obs::Span stage("ctx.stage");
    {
      obs::ContextScope inner(ctx);  // re-attach: must be a no-op
      obs::Span nested("ctx.inner");
    }
  }
  std::string report;
  {
    obs::ContextScope scope(ctx);
    obs::ReportOptions opt;
    opt.include_machine = false;
    report = obs::report_json(opt);
  }
  const auto doc = json::parse(report);
  ASSERT_TRUE(doc.has_value()) << report;
  std::vector<std::string> stages;
  if (const json::Value* arr = doc->find("stages"))
    for (const json::Value& s : arr->items)
      if (const json::Value* name = s.find("name")) stages.push_back(name->text);
  EXPECT_EQ(stages, std::vector<std::string>{"ctx.stage"});
  EXPECT_NE(report.find("\"name\": \"ctx.inner\", \"count\": 1"),
            std::string::npos)
      << report;  // still a span aggregate
}

TEST(ObsContextScoping, PoolJobsFoldIntoSubmitterContext) {
  obs::reset();
  obs::Counter work("ctx.pool.work");
  ThreadPool pool(4, "ctxpool");
  obs::ObsContext ctx;
  {
    obs::ContextScope scope(ctx);
    pool.parallel_for(256, 1, [&](int, std::size_t b, std::size_t e) {
      work.add(e - b);
    });
  }
  // Every chunk ran under the submitter's context, no matter which worker
  // thread picked it up.
  EXPECT_EQ(ctx.counters().at("ctx.pool.work"), 256u);
  EXPECT_GE(ctx.counters().at("pool.chunks"), 256u);
  EXPECT_EQ(work.value(), 0u);
  EXPECT_EQ(obs::counter_value("pool.chunks"), 0u);
  obs::reset();
}

// --- batch per-flow reports --------------------------------------------------

TEST(ObsBatch, PerFlowReportPathInsertsLabel) {
  EXPECT_EQ(per_flow_report_path("reports/run.json", "u226"),
            "reports/run.u226.json");
  EXPECT_EQ(per_flow_report_path("run", "d281"), "run.d281.json");
}

// The ISSUE acceptance gate: a traced batch run yields one report per
// network plus a merged parent whose counters are the sums of the
// children.  pool.* scheduling counters are excluded — the outer
// network-level chunks fold into the parent's own context by design.
TEST(ObsBatch, ParentCountersEqualSumOfChildren) {
  obs::reset();
  const std::string report_path = ::testing::TempDir() + "obs_batch_report.json";
  BatchOptions options;
  options.threads = 2;
  options.report_path = report_path;
  BatchRunner runner(options);
  const BatchResult result = runner.run_soc_flows({"u226", "d281"});
  obs::enable(false);

  ASSERT_EQ(result.flow_reports.size(), 2u);
  ASSERT_EQ(result.flow_labels, (std::vector<std::string>{"u226", "d281"}));

  // The per-network report files mirror BatchResult::flow_reports.
  for (std::size_t i = 0; i < 2; ++i) {
    const std::string path =
        per_flow_report_path(report_path, result.flow_labels[i]);
    EXPECT_EQ(read_file(path), result.flow_reports[i]) << path;
  }

  // Sum the children's counters.
  std::map<std::string, double> sums;
  for (const std::string& child_report : result.flow_reports) {
    const auto child = json::parse(child_report);
    ASSERT_TRUE(child.has_value());
    const json::Value* counters = child->find("counters");
    ASSERT_NE(counters, nullptr);
    for (const auto& [name, v] : counters->members) sums[name] += v.number;
  }
  EXPECT_GT(sums.at("metric.mask_evals"), 0.0);

  // Every non-pool counter of the merged parent equals the child sum, and
  // no summed counter is missing from the parent.
  const auto parent = json::parse_file(report_path);
  ASSERT_TRUE(parent.has_value());
  const json::Value* parent_counters = parent->find("counters");
  ASSERT_NE(parent_counters, nullptr);
  std::map<std::string, double> parent_vals;
  for (const auto& [name, v] : parent_counters->members)
    parent_vals[name] = v.number;
  for (const auto& [name, v] : parent_vals) {
    if (name.rfind("pool.", 0) == 0) continue;
    const auto it = sums.find(name);
    EXPECT_DOUBLE_EQ(v, it == sums.end() ? 0.0 : it->second) << name;
  }
  for (const auto& [name, v] : sums) {
    if (name.rfind("pool.", 0) == 0) continue;
    EXPECT_EQ(parent_vals.count(name), 1u) << name;
  }

  std::remove(report_path.c_str());
  for (const std::string& label : result.flow_labels)
    std::remove(per_flow_report_path(report_path, label).c_str());
  obs::reset();
}

// --- reset vs streaming ------------------------------------------------------

// reset() mid-stream must flush the tail and write the trailer (a
// complete, loadable trace of everything before the reset), and the
// streaming machinery must come back cleanly: a fresh stream after the
// reset is byte-identical to a buffered trace of the same workload.
TEST(ObsStream, ResetMidStreamFinalizesAndRecovers) {
  const std::string aborted = ::testing::TempDir() + "obs_reset_aborted.json";
  const std::string recovered = ::testing::TempDir() + "obs_reset_rec.json";
  const auto workload = [] {
    for (int i = 0; i < 12; ++i) {
      OBS_SPAN("recover.outer");
      { OBS_SPAN("recover.inner"); }
    }
  };
  std::string expected;
  {
    FakeClockScope clock;
    obs::enable(true);
    workload();
    expected = obs::trace_json();
  }
  FakeClockScope clock;
  obs::enable(true);
  ASSERT_TRUE(obs::stream_trace_to(aborted, 4));
  for (int i = 0; i < 10; ++i) {
    OBS_SPAN("doomed.span");
  }
  obs::reset();  // mid-stream: flush + trailer + close
  EXPECT_FALSE(obs::trace_streaming());
  const std::string aborted_trace = read_file(aborted);
  EXPECT_NE(aborted_trace.find("doomed.span"), std::string::npos);
  EXPECT_EQ(aborted_trace.substr(aborted_trace.size() - 4), "\n]}\n");
  // Recovery: same workload through a fresh stream, byte-compared against
  // the buffered reference.
  fake_ticks.store(0);
  obs::enable(true);  // same epoch warm-up tick as the reference run
  ASSERT_TRUE(obs::stream_trace_to(recovered, 4));
  workload();
  ASSERT_TRUE(obs::close_trace_stream());
  EXPECT_EQ(read_file(recovered), expected);
  std::remove(aborted.c_str());
  std::remove(recovered.c_str());
}

// --- float formatting --------------------------------------------------------

// Report floats use shortest-round-trip formatting: locale-independent,
// byte-stable (golden safe), and exact under re-parse.
TEST(Obs, FormatDoubleShortestRoundTrip) {
  EXPECT_EQ(obs::detail::format_double(0.0), "0");
  EXPECT_EQ(obs::detail::format_double(1.0), "1");
  EXPECT_EQ(obs::detail::format_double(0.5), "0.5");
  EXPECT_EQ(obs::detail::format_double(0.0009), "9e-04");
  EXPECT_EQ(obs::detail::format_double(NAN), "0");
  EXPECT_EQ(obs::detail::format_double(INFINITY), "0");
  for (const double v : {1.0 / 3.0, 1e-9, 123456.789, 0.1, 2.5e17,
                         0.30000000000000004}) {
    const std::string s = obs::detail::format_double(v);
    double back = 0.0;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), back);
    ASSERT_EQ(ec, std::errc()) << s;
    ASSERT_EQ(p, s.data() + s.size()) << s;
    EXPECT_EQ(back, v) << s;  // bit-exact round trip
  }
}

// --- json reader -------------------------------------------------------------

TEST(ObsJson, ParsesObjectsInOrderWithEscapes) {
  const auto doc = json::parse(
      "{\"b\": 1, \"a\": [true, null, \"x\\n\\u0041\"], \"n\": -2.5e1}");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  ASSERT_EQ(doc->members.size(), 3u);
  EXPECT_EQ(doc->members[0].first, "b");  // source order kept
  EXPECT_EQ(doc->members[0].second.text, "1");  // number source text kept
  const json::Value* arr = doc->find("a");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->items.size(), 3u);
  EXPECT_TRUE(arr->items[0].boolean);
  EXPECT_TRUE(arr->items[1].is_null());
  EXPECT_EQ(arr->items[2].text, "x\nA");
  EXPECT_DOUBLE_EQ(doc->num_or("n", 0.0), -25.0);
  EXPECT_DOUBLE_EQ(doc->num_or("missing", 7.0), 7.0);
}

TEST(ObsJson, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(json::parse("{\"a\": 1} garbage", &error).has_value());
  EXPECT_NE(error.find("trailing garbage"), std::string::npos);
  EXPECT_FALSE(json::parse("{\"a\": }").has_value());
  EXPECT_FALSE(json::parse("\"dangling\\").has_value());
  EXPECT_FALSE(json::parse("{\"a\": 1").has_value());
  EXPECT_FALSE(json::parse("tru").has_value());
  EXPECT_FALSE(json::parse("\"raw\x01control\"").has_value());
  // Depth cap: 100 nested arrays exceed kMaxDepth.
  EXPECT_FALSE(
      json::parse(std::string(100, '[') + std::string(100, ']')).has_value());
  EXPECT_TRUE(
      json::parse(std::string(60, '[') + std::string(60, ']')).has_value());
  EXPECT_FALSE(json::parse_file("/nonexistent/x.json", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

// --- diff engine -------------------------------------------------------------

TEST(ObsDiff, GlobMatch) {
  EXPECT_TRUE(obs::glob_match("*", ""));
  EXPECT_TRUE(obs::glob_match("*", "anything"));
  EXPECT_TRUE(obs::glob_match("ilp.flow_*", "ilp.flow_pushes"));
  EXPECT_FALSE(obs::glob_match("ilp.flow_*", "ilp.lp_solves"));
  EXPECT_TRUE(obs::glob_match("a*b*c", "aXXbYYc"));
  EXPECT_TRUE(obs::glob_match("a*b", "ab"));
  EXPECT_FALSE(obs::glob_match("a*b", "ac"));
  EXPECT_TRUE(obs::glob_match("exact", "exact"));
  EXPECT_FALSE(obs::glob_match("exact", "exactly"));
  EXPECT_TRUE(obs::matches_any({}, "anything"));  // empty list = match all
  EXPECT_TRUE(obs::matches_any({"x.*", "metric.*"}, "metric.mask_evals"));
  EXPECT_FALSE(obs::matches_any({"x.*"}, "metric.mask_evals"));
}

TEST(ObsDiff, CounterGateExactByDefault) {
  obs::RunDoc a, b;
  a.source = "a";
  b.source = "b";
  a.counters = {{"metric.mask_evals", 64832}, {"pool.chunks", 100}};
  b.counters = {{"metric.mask_evals", 64832}, {"pool.chunks", 250}};
  obs::DiffOptions options;
  options.counter_filters = {"metric.*"};
  EXPECT_TRUE(obs::diff_docs(a, b, options).ok());  // pool.* filtered out

  b.counters["metric.mask_evals"] = 64831;
  const auto result = obs::diff_docs(a, b, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.compared, 1u);
  EXPECT_EQ(result.mismatches, 1u);
  EXPECT_NE(result.table(a, b).find("MISMATCH"), std::string::npos);
  // The machine verdict parses and carries the failure.
  const auto verdict = json::parse(result.verdict_json(a, b));
  ASSERT_TRUE(verdict.has_value());
  const json::Value* match = verdict->find("match");
  ASSERT_NE(match, nullptr);
  EXPECT_FALSE(match->boolean);

  // A counter missing on one side compares against 0 (a silently dropped
  // family is a regression, not a skip).
  b.counters["metric.mask_evals"] = 64832;
  b.counters.erase("metric.mask_evals");
  EXPECT_FALSE(obs::diff_docs(a, b, options).ok());

  // Relative tolerance admits drift when asked.
  obs::DiffOptions loose;
  loose.counter_filters = {"pool.*"};
  loose.counter_rel_tol = 0.75;
  EXPECT_TRUE(obs::diff_docs(a, b, loose).ok());  // 100 vs 250 within 75%
  loose.counter_rel_tol = 0.1;
  EXPECT_FALSE(obs::diff_docs(a, b, loose).ok());
}

TEST(ObsDiff, LoadsRunReportAndBenchEnvelope) {
  // The checked-in v2 golden doubles as a loader fixture.
  std::string error;
  const auto report =
      obs::load_run_doc(golden_path("obs_golden_report.json"), &error);
  ASSERT_TRUE(report.has_value()) << error;
  EXPECT_EQ(report->schema, "ftrsn-run-report");
  EXPECT_EQ(report->version, 2);
  EXPECT_DOUBLE_EQ(report->counters.at("golden.items"), 3.0);
  EXPECT_DOUBLE_EQ(report->histograms.at("parse").p50, 300.0);
  EXPECT_DOUBLE_EQ(report->spans.at("emit").count, 2.0);

  const std::string bench_path = ::testing::TempDir() + "obs_diff_bench.json";
  ASSERT_TRUE(obs::write_file(
      bench_path,
      "{\"schema\": \"ftrsn-bench-1\", \"bench\": \"x\",\n"
      " \"obs_counters\": {\"metric.mask_evals\": 9}, \"histograms\":\n"
      " {\"h\": {\"count\": 2, \"sum\": 10, \"max\": 8, \"p50\": 4,\n"
      "  \"p90\": 8, \"p99\": 8}}}\n"));
  const auto bench = obs::load_run_doc(bench_path, &error);
  ASSERT_TRUE(bench.has_value()) << error;
  EXPECT_EQ(bench->schema, "ftrsn-bench-1");
  EXPECT_DOUBLE_EQ(bench->counters.at("metric.mask_evals"), 9.0);
  EXPECT_DOUBLE_EQ(bench->histograms.at("h").p90, 8.0);
  std::remove(bench_path.c_str());

  EXPECT_FALSE(obs::load_run_doc("/nonexistent/r.json", &error).has_value());
}

}  // namespace
}  // namespace ftrsn
