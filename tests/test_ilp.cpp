#include <gtest/gtest.h>

#include <cmath>

#include "ilp/ilp.hpp"
#include "ilp/mincost_flow.hpp"
#include "ilp/simplex.hpp"
#include "util/common.hpp"

namespace ftrsn {
namespace {

LinearConstraint cons(std::vector<std::pair<int, double>> terms, Sense s,
                      double rhs) {
  LinearConstraint c;
  c.terms = std::move(terms);
  c.sense = s;
  c.rhs = rhs;
  return c;
}

TEST(Simplex, BasicLp) {
  // min -x - 2y  s.t.  x + y <= 4, x <= 3, y <= 2  ->  x=2..3? optimum:
  // y=2, x=2, obj=-6.
  LpProblem p;
  p.add_variable(-1.0, 3.0);
  p.add_variable(-2.0, 2.0);
  p.add_constraint(cons({{0, 1.0}, {1, 1.0}}, Sense::kLe, 4.0));
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -6.0, 1e-6);
  EXPECT_NEAR(s.x[0], 2.0, 1e-6);
  EXPECT_NEAR(s.x[1], 2.0, 1e-6);
}

TEST(Simplex, GeConstraintsAndDegeneracy) {
  // min x + y  s.t.  x + y >= 2, x - y = 0  ->  x=y=1, obj=2.
  LpProblem p;
  p.add_variable(1.0, 10.0);
  p.add_variable(1.0, 10.0);
  p.add_constraint(cons({{0, 1.0}, {1, 1.0}}, Sense::kGe, 2.0));
  p.add_constraint(cons({{0, 1.0}, {1, -1.0}}, Sense::kEq, 0.0));
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-6);
  EXPECT_NEAR(s.x[0], 1.0, 1e-6);
}

TEST(Simplex, InfeasibleDetected) {
  LpProblem p;
  p.add_variable(1.0, 1.0);
  p.add_constraint(cons({{0, 1.0}}, Sense::kGe, 2.0));  // x >= 2 but x <= 1
  EXPECT_EQ(solve_lp(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x  s.t.  -x <= -1  (i.e. x >= 1).
  LpProblem p;
  p.add_variable(1.0, 5.0);
  p.add_constraint(cons({{0, -1.0}}, Sense::kLe, -1.0));
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 1.0, 1e-6);
}

TEST(Simplex, UpperBoundFlips) {
  // max x1 + x2 + x3 with pairwise sums <= 1.5 and ub 1: LP optimum is
  // x=(0.75,0.75,0.75), obj=-2.25 in min form.
  LpProblem p;
  for (int i = 0; i < 3; ++i) p.add_variable(-1.0, 1.0);
  p.add_constraint(cons({{0, 1.0}, {1, 1.0}}, Sense::kLe, 1.5));
  p.add_constraint(cons({{1, 1.0}, {2, 1.0}}, Sense::kLe, 1.5));
  p.add_constraint(cons({{0, 1.0}, {2, 1.0}}, Sense::kLe, 1.5));
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.25, 1e-6);
}

TEST(Ilp, KnapsackSmall) {
  // max 10a + 6b + 4c s.t. a+b+c<=2 (binary) -> pick a,b: obj -16.
  LpProblem p;
  p.add_variable(-10.0, 1.0);
  p.add_variable(-6.0, 1.0);
  p.add_variable(-4.0, 1.0);
  p.add_constraint(cons({{0, 1.0}, {1, 1.0}, {2, 1.0}}, Sense::kLe, 2.0));
  IlpSolver solver(p);
  const IlpResult r = solver.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.optimal);
  EXPECT_NEAR(r.objective, -16.0, 1e-6);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
  EXPECT_NEAR(r.x[2], 0.0, 1e-9);
}

TEST(Ilp, RequiresBranching) {
  // min x0+x1+x2 s.t. x0+x1>=1, x1+x2>=1, x0+x2>=1 (vertex cover of a
  // triangle): LP relaxation is 1.5 (all halves), ILP optimum is 2.
  LpProblem p;
  for (int i = 0; i < 3; ++i) p.add_variable(1.0, 1.0);
  p.add_constraint(cons({{0, 1.0}, {1, 1.0}}, Sense::kGe, 1.0));
  p.add_constraint(cons({{1, 1.0}, {2, 1.0}}, Sense::kGe, 1.0));
  p.add_constraint(cons({{0, 1.0}, {2, 1.0}}, Sense::kGe, 1.0));
  IlpSolver solver(p);
  const IlpResult r = solver.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
  EXPECT_GT(r.explored_nodes, 1);
}

TEST(Ilp, InfeasibleBinary) {
  LpProblem p;
  p.add_variable(1.0, 1.0);
  p.add_variable(1.0, 1.0);
  p.add_constraint(cons({{0, 1.0}, {1, 1.0}}, Sense::kGe, 3.0));
  IlpSolver solver(p);
  EXPECT_FALSE(solver.solve().feasible);
}

TEST(Ilp, LazyCutsDriveSolution) {
  // min -(x0+x1+x2); lazy rule: at most 1 variable may be set.  The solver
  // first proposes all-ones and must be cut down step by step.
  LpProblem p;
  for (int i = 0; i < 3; ++i) p.add_variable(-1.0, 1.0);
  IlpSolver solver(p);
  solver.set_lazy_cuts([](const std::vector<double>& x) {
    std::vector<LinearConstraint> cuts;
    double sum = 0;
    for (double v : x) sum += v;
    if (sum > 1.0 + 1e-6) {
      LinearConstraint c;
      for (int i = 0; i < 3; ++i) c.terms.push_back({i, 1.0});
      c.sense = Sense::kLe;
      c.rhs = 1.0;
      cuts.push_back(c);
    }
    return cuts;
  });
  const IlpResult r = solver.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, -1.0, 1e-6);
  EXPECT_GE(r.lazy_cuts_added, 1);
}

TEST(MinCostFlow, SimplePath) {
  MinCostFlow f(4);
  const int a = f.add_arc(0, 1, 2, 1);
  f.add_arc(1, 3, 2, 1);
  f.add_arc(0, 2, 1, 5);
  f.add_arc(2, 3, 1, 5);
  const auto r = f.solve(0, 3);
  EXPECT_EQ(r.flow, 3);
  EXPECT_EQ(r.cost, 2 * 2 + 10);
  EXPECT_EQ(f.flow_on(a), 2);
}

TEST(MinCostFlow, PrefersCheapRoutes) {
  MinCostFlow f(3);
  const int cheap = f.add_arc(0, 1, 1, 1);
  const int expensive = f.add_arc(0, 1, 1, 10);
  f.add_arc(1, 2, 2, 0);
  const auto r = f.solve(0, 2, 1);
  EXPECT_EQ(r.flow, 1);
  EXPECT_EQ(r.cost, 1);
  EXPECT_EQ(f.flow_on(cheap), 1);
  EXPECT_EQ(f.flow_on(expensive), 0);
}

TEST(MinCostFlow, LimitRespected) {
  MinCostFlow f(2);
  f.add_arc(0, 1, 10, 2);
  const auto r = f.solve(0, 1, 4);
  EXPECT_EQ(r.flow, 4);
  EXPECT_EQ(r.cost, 8);
}

TEST(DegreeCover, TinyInstance) {
  // 2 nodes; node 0 needs out-degree 2, node 1 needs in-degree 1.
  // Candidates: (0->1 cost 1) twice is not allowed (distinct edges),
  // so add (0->1, cost 1) and (0->0 is invalid) ... use 3 nodes.
  // Nodes: 0 needs out 2; 1,2 need in 1 each.
  std::vector<DegreeCoverSolver::Edge> cand = {
      {0, 1, 1}, {0, 2, 3}, {0, 2, 7}};
  DegreeCoverSolver solver(3, cand, {2, 0, 0}, {0, 1, 1});
  const auto r = solver.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, 4);  // picks edges 0 and 1
  EXPECT_EQ(r.chosen.size(), 2u);
}

TEST(DegreeCover, ForbidForcesAlternative) {
  std::vector<DegreeCoverSolver::Edge> cand = {{0, 1, 1}, {0, 1, 5}};
  // duplicate pair but distinct candidate entries (models parallel options)
  DegreeCoverSolver solver(2, cand, {1, 0}, {0, 1});
  auto r = solver.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, 1);
  DegreeCoverSolver solver2(2, cand, {1, 0}, {0, 1});
  solver2.forbid(0);
  r = solver2.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, 5);
}

TEST(DegreeCover, RequireIncluded) {
  std::vector<DegreeCoverSolver::Edge> cand = {{0, 1, 1}, {0, 1, 5}};
  DegreeCoverSolver solver(2, cand, {1, 0}, {0, 1});
  solver.require(1);
  const auto r = solver.solve();
  ASSERT_TRUE(r.feasible);
  // Requirement satisfies the needs; the cheap edge is not taken on top.
  EXPECT_EQ(r.cost, 5);
  ASSERT_EQ(r.chosen.size(), 1u);
  EXPECT_EQ(r.chosen[0], 1);
}

TEST(DegreeCover, InfeasibleWhenNoCandidates) {
  DegreeCoverSolver solver(2, {}, {1, 0}, {0, 0});
  EXPECT_FALSE(solver.solve().feasible);
}

/// Property check: on random covering instances the flow-based solver and
/// the generic ILP must agree on the optimal cost.
TEST(DegreeCover, AgreesWithIlpOnRandomInstances) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 4 + static_cast<int>(rng.next_below(4));
    std::vector<DegreeCoverSolver::Edge> cand;
    for (int u = 0; u < n; ++u)
      for (int v = 0; v < n; ++v) {
        if (u == v) continue;
        if (rng.next_below(100) < 60)
          cand.push_back({u, v, 1 + static_cast<long long>(rng.next_below(9))});
      }
    std::vector<int> need_out(static_cast<std::size_t>(n)),
        need_in(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      need_out[static_cast<std::size_t>(v)] =
          static_cast<int>(rng.next_below(2));
      need_in[static_cast<std::size_t>(v)] =
          static_cast<int>(rng.next_below(2));
    }
    DegreeCoverSolver flow_solver(n, cand, need_out, need_in);
    const auto flow_result = flow_solver.solve();

    LpProblem p;
    for (const auto& e : cand) p.add_variable(static_cast<double>(e.cost), 1.0);
    bool trivially_infeasible = false;
    for (int v = 0; v < n; ++v) {
      LinearConstraint out_c, in_c;
      out_c.sense = in_c.sense = Sense::kGe;
      out_c.rhs = need_out[static_cast<std::size_t>(v)];
      in_c.rhs = need_in[static_cast<std::size_t>(v)];
      for (std::size_t e = 0; e < cand.size(); ++e) {
        if (cand[e].from == v) out_c.terms.push_back({static_cast<int>(e), 1.0});
        if (cand[e].to == v) in_c.terms.push_back({static_cast<int>(e), 1.0});
      }
      if (out_c.rhs > 0 && out_c.terms.empty()) trivially_infeasible = true;
      if (in_c.rhs > 0 && in_c.terms.empty()) trivially_infeasible = true;
      if (!out_c.terms.empty()) p.add_constraint(out_c);
      if (!in_c.terms.empty()) p.add_constraint(in_c);
    }
    if (trivially_infeasible) {
      EXPECT_FALSE(flow_result.feasible);
      continue;
    }
    IlpSolver ilp(p);
    const IlpResult ir = ilp.solve();
    ASSERT_EQ(ir.feasible, flow_result.feasible) << "trial " << trial;
    if (ir.feasible)
      EXPECT_NEAR(ir.objective, static_cast<double>(flow_result.cost), 1e-5)
          << "trial " << trial;
  }
}

}  // namespace
}  // namespace ftrsn
