// ILP / LP / min-cost-flow unit tests plus the SSP-vs-cost-scaling
// differential suite (ctest -L ilp).  FTRSN_ILP_ITERS=N scales the
// randomized soak trial counts (default 1; CI runs higher under
// sanitizers).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "augment/augment.hpp"
#include "graph/dataflow.hpp"
#include "ilp/ilp.hpp"
#include "ilp/mincost_flow.hpp"
#include "ilp/simplex.hpp"
#include "itc02/itc02.hpp"
#include "util/common.hpp"

namespace ftrsn {
namespace {

int ilp_iters() {
  const char* env = std::getenv("FTRSN_ILP_ITERS");
  const int n = env ? std::atoi(env) : 1;
  return n > 0 ? n : 1;
}

MinCostFlowOptions ssp_engine() {
  MinCostFlowOptions o;
  o.algorithm = MinCostFlowOptions::Algorithm::kSsp;
  return o;
}

/// Cost-scaling option variants the differential tests sweep: the default
/// configuration plus every heuristic individually disabled and two alpha
/// extremes.  Each must match the SSP oracle exactly.
std::vector<MinCostFlowOptions> scaling_variants() {
  std::vector<MinCostFlowOptions> variants;
  MinCostFlowOptions base;
  base.algorithm = MinCostFlowOptions::Algorithm::kCostScaling;
  variants.push_back(base);
  MinCostFlowOptions no_global = base;
  no_global.global_updates = false;
  variants.push_back(no_global);
  MinCostFlowOptions no_refine = base;
  no_refine.price_refinement = false;
  variants.push_back(no_refine);
  MinCostFlowOptions no_fixing = base;
  no_fixing.arc_fixing = false;
  variants.push_back(no_fixing);
  MinCostFlowOptions plain = base;  // all heuristics off
  plain.global_updates = plain.price_refinement = plain.arc_fixing = false;
  variants.push_back(plain);
  MinCostFlowOptions alpha2 = base;
  alpha2.alpha = 2;
  variants.push_back(alpha2);
  MinCostFlowOptions alpha16 = base;
  alpha16.alpha = 16;
  variants.push_back(alpha16);
  return variants;
}

LinearConstraint cons(std::vector<std::pair<int, double>> terms, Sense s,
                      double rhs) {
  LinearConstraint c;
  c.terms = std::move(terms);
  c.sense = s;
  c.rhs = rhs;
  return c;
}

TEST(Simplex, BasicLp) {
  // min -x - 2y  s.t.  x + y <= 4, x <= 3, y <= 2  ->  x=2..3? optimum:
  // y=2, x=2, obj=-6.
  LpProblem p;
  p.add_variable(-1.0, 3.0);
  p.add_variable(-2.0, 2.0);
  p.add_constraint(cons({{0, 1.0}, {1, 1.0}}, Sense::kLe, 4.0));
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -6.0, 1e-6);
  EXPECT_NEAR(s.x[0], 2.0, 1e-6);
  EXPECT_NEAR(s.x[1], 2.0, 1e-6);
}

TEST(Simplex, GeConstraintsAndDegeneracy) {
  // min x + y  s.t.  x + y >= 2, x - y = 0  ->  x=y=1, obj=2.
  LpProblem p;
  p.add_variable(1.0, 10.0);
  p.add_variable(1.0, 10.0);
  p.add_constraint(cons({{0, 1.0}, {1, 1.0}}, Sense::kGe, 2.0));
  p.add_constraint(cons({{0, 1.0}, {1, -1.0}}, Sense::kEq, 0.0));
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-6);
  EXPECT_NEAR(s.x[0], 1.0, 1e-6);
}

TEST(Simplex, InfeasibleDetected) {
  LpProblem p;
  p.add_variable(1.0, 1.0);
  p.add_constraint(cons({{0, 1.0}}, Sense::kGe, 2.0));  // x >= 2 but x <= 1
  EXPECT_EQ(solve_lp(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x  s.t.  -x <= -1  (i.e. x >= 1).
  LpProblem p;
  p.add_variable(1.0, 5.0);
  p.add_constraint(cons({{0, -1.0}}, Sense::kLe, -1.0));
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 1.0, 1e-6);
}

TEST(Simplex, UpperBoundFlips) {
  // max x1 + x2 + x3 with pairwise sums <= 1.5 and ub 1: LP optimum is
  // x=(0.75,0.75,0.75), obj=-2.25 in min form.
  LpProblem p;
  for (int i = 0; i < 3; ++i) p.add_variable(-1.0, 1.0);
  p.add_constraint(cons({{0, 1.0}, {1, 1.0}}, Sense::kLe, 1.5));
  p.add_constraint(cons({{1, 1.0}, {2, 1.0}}, Sense::kLe, 1.5));
  p.add_constraint(cons({{0, 1.0}, {2, 1.0}}, Sense::kLe, 1.5));
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.25, 1e-6);
}

TEST(Ilp, KnapsackSmall) {
  // max 10a + 6b + 4c s.t. a+b+c<=2 (binary) -> pick a,b: obj -16.
  LpProblem p;
  p.add_variable(-10.0, 1.0);
  p.add_variable(-6.0, 1.0);
  p.add_variable(-4.0, 1.0);
  p.add_constraint(cons({{0, 1.0}, {1, 1.0}, {2, 1.0}}, Sense::kLe, 2.0));
  IlpSolver solver(p);
  const IlpResult r = solver.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.optimal);
  EXPECT_NEAR(r.objective, -16.0, 1e-6);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
  EXPECT_NEAR(r.x[2], 0.0, 1e-9);
}

TEST(Ilp, RequiresBranching) {
  // min x0+x1+x2 s.t. x0+x1>=1, x1+x2>=1, x0+x2>=1 (vertex cover of a
  // triangle): LP relaxation is 1.5 (all halves), ILP optimum is 2.
  LpProblem p;
  for (int i = 0; i < 3; ++i) p.add_variable(1.0, 1.0);
  p.add_constraint(cons({{0, 1.0}, {1, 1.0}}, Sense::kGe, 1.0));
  p.add_constraint(cons({{1, 1.0}, {2, 1.0}}, Sense::kGe, 1.0));
  p.add_constraint(cons({{0, 1.0}, {2, 1.0}}, Sense::kGe, 1.0));
  IlpSolver solver(p);
  const IlpResult r = solver.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
  EXPECT_GT(r.explored_nodes, 1);
}

TEST(Ilp, InfeasibleBinary) {
  LpProblem p;
  p.add_variable(1.0, 1.0);
  p.add_variable(1.0, 1.0);
  p.add_constraint(cons({{0, 1.0}, {1, 1.0}}, Sense::kGe, 3.0));
  IlpSolver solver(p);
  EXPECT_FALSE(solver.solve().feasible);
}

TEST(Ilp, LazyCutsDriveSolution) {
  // min -(x0+x1+x2); lazy rule: at most 1 variable may be set.  The solver
  // first proposes all-ones and must be cut down step by step.
  LpProblem p;
  for (int i = 0; i < 3; ++i) p.add_variable(-1.0, 1.0);
  IlpSolver solver(p);
  solver.set_lazy_cuts([](const std::vector<double>& x) {
    std::vector<LinearConstraint> cuts;
    double sum = 0;
    for (double v : x) sum += v;
    if (sum > 1.0 + 1e-6) {
      LinearConstraint c;
      for (int i = 0; i < 3; ++i) c.terms.push_back({i, 1.0});
      c.sense = Sense::kLe;
      c.rhs = 1.0;
      cuts.push_back(c);
    }
    return cuts;
  });
  const IlpResult r = solver.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, -1.0, 1e-6);
  EXPECT_GE(r.lazy_cuts_added, 1);
}

TEST(MinCostFlow, SimplePath) {
  MinCostFlow f(4);
  const int a = f.add_arc(0, 1, 2, 1);
  f.add_arc(1, 3, 2, 1);
  f.add_arc(0, 2, 1, 5);
  f.add_arc(2, 3, 1, 5);
  const auto r = f.solve(0, 3);
  EXPECT_EQ(r.flow, 3);
  EXPECT_EQ(r.cost, 2 * 2 + 10);
  EXPECT_EQ(f.flow_on(a), 2);
}

TEST(MinCostFlow, PrefersCheapRoutes) {
  MinCostFlow f(3);
  const int cheap = f.add_arc(0, 1, 1, 1);
  const int expensive = f.add_arc(0, 1, 1, 10);
  f.add_arc(1, 2, 2, 0);
  const auto r = f.solve(0, 2, 1);
  EXPECT_EQ(r.flow, 1);
  EXPECT_EQ(r.cost, 1);
  EXPECT_EQ(f.flow_on(cheap), 1);
  EXPECT_EQ(f.flow_on(expensive), 0);
}

TEST(MinCostFlow, LimitRespected) {
  MinCostFlow f(2);
  f.add_arc(0, 1, 10, 2);
  const auto r = f.solve(0, 1, 4);
  EXPECT_EQ(r.flow, 4);
  EXPECT_EQ(r.cost, 8);
}

TEST(DegreeCover, TinyInstance) {
  // 2 nodes; node 0 needs out-degree 2, node 1 needs in-degree 1.
  // Candidates: (0->1 cost 1) twice is not allowed (distinct edges),
  // so add (0->1, cost 1) and (0->0 is invalid) ... use 3 nodes.
  // Nodes: 0 needs out 2; 1,2 need in 1 each.
  std::vector<DegreeCoverSolver::Edge> cand = {
      {0, 1, 1}, {0, 2, 3}, {0, 2, 7}};
  DegreeCoverSolver solver(3, cand, {2, 0, 0}, {0, 1, 1});
  const auto r = solver.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, 4);  // picks edges 0 and 1
  EXPECT_EQ(r.chosen.size(), 2u);
}

TEST(DegreeCover, ForbidForcesAlternative) {
  std::vector<DegreeCoverSolver::Edge> cand = {{0, 1, 1}, {0, 1, 5}};
  // duplicate pair but distinct candidate entries (models parallel options)
  DegreeCoverSolver solver(2, cand, {1, 0}, {0, 1});
  auto r = solver.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, 1);
  DegreeCoverSolver solver2(2, cand, {1, 0}, {0, 1});
  solver2.forbid(0);
  r = solver2.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, 5);
}

TEST(DegreeCover, RequireIncluded) {
  std::vector<DegreeCoverSolver::Edge> cand = {{0, 1, 1}, {0, 1, 5}};
  DegreeCoverSolver solver(2, cand, {1, 0}, {0, 1});
  solver.require(1);
  const auto r = solver.solve();
  ASSERT_TRUE(r.feasible);
  // Requirement satisfies the needs; the cheap edge is not taken on top.
  EXPECT_EQ(r.cost, 5);
  ASSERT_EQ(r.chosen.size(), 1u);
  EXPECT_EQ(r.chosen[0], 1);
}

TEST(DegreeCover, InfeasibleWhenNoCandidates) {
  DegreeCoverSolver solver(2, {}, {1, 0}, {0, 0});
  EXPECT_FALSE(solver.solve().feasible);
}

/// Property check: on random covering instances the flow-based solver and
/// the generic ILP must agree on the optimal cost.
TEST(DegreeCover, AgreesWithIlpOnRandomInstances) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 4 + static_cast<int>(rng.next_below(4));
    std::vector<DegreeCoverSolver::Edge> cand;
    for (int u = 0; u < n; ++u)
      for (int v = 0; v < n; ++v) {
        if (u == v) continue;
        if (rng.next_below(100) < 60)
          cand.push_back({u, v, 1 + static_cast<long long>(rng.next_below(9))});
      }
    std::vector<int> need_out(static_cast<std::size_t>(n)),
        need_in(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      need_out[static_cast<std::size_t>(v)] =
          static_cast<int>(rng.next_below(2));
      need_in[static_cast<std::size_t>(v)] =
          static_cast<int>(rng.next_below(2));
    }
    DegreeCoverSolver flow_solver(n, cand, need_out, need_in);
    const auto flow_result = flow_solver.solve();

    LpProblem p;
    for (const auto& e : cand) p.add_variable(static_cast<double>(e.cost), 1.0);
    bool trivially_infeasible = false;
    for (int v = 0; v < n; ++v) {
      LinearConstraint out_c, in_c;
      out_c.sense = in_c.sense = Sense::kGe;
      out_c.rhs = need_out[static_cast<std::size_t>(v)];
      in_c.rhs = need_in[static_cast<std::size_t>(v)];
      for (std::size_t e = 0; e < cand.size(); ++e) {
        if (cand[e].from == v) out_c.terms.push_back({static_cast<int>(e), 1.0});
        if (cand[e].to == v) in_c.terms.push_back({static_cast<int>(e), 1.0});
      }
      if (out_c.rhs > 0 && out_c.terms.empty()) trivially_infeasible = true;
      if (in_c.rhs > 0 && in_c.terms.empty()) trivially_infeasible = true;
      if (!out_c.terms.empty()) p.add_constraint(out_c);
      if (!in_c.terms.empty()) p.add_constraint(in_c);
    }
    if (trivially_infeasible) {
      EXPECT_FALSE(flow_result.feasible);
      continue;
    }
    IlpSolver ilp(p);
    const IlpResult ir = ilp.solve();
    ASSERT_EQ(ir.feasible, flow_result.feasible) << "trial " << trial;
    if (ir.feasible) {
      EXPECT_NEAR(ir.objective, static_cast<double>(flow_result.cost), 1e-5)
          << "trial " << trial;
    }
  }
}

// ---------------------------------------------------------------------------
// SSP vs cost-scaling differential suite.
//
// The SSP engine is the trusted oracle (it predates the cost-scaling
// engine and is itself cross-checked against the generic ILP above).  For
// every instance both engines must report the same flow value and the
// same objective cost; the arc-level assignment may legitimately differ
// when the optimum is not unique, so the suite additionally verifies that
// the cost-scaling assignment is a *feasible* flow of the reported value
// and cost.

struct RandomArc {
  int from, to;
  long long cap, cost;
};

struct RandomNetwork {
  int n = 0;
  std::vector<RandomArc> arcs;
};

RandomNetwork random_network(Rng& rng) {
  RandomNetwork net;
  net.n = 3 + static_cast<int>(rng.next_below(10));
  const int m = 2 + static_cast<int>(rng.next_below(40));
  for (int i = 0; i < m; ++i) {
    const int from = static_cast<int>(rng.next_below(net.n));
    int to = static_cast<int>(rng.next_below(net.n));
    if (to == from) to = (to + 1) % net.n;
    // ~1/4 zero-cost arcs, ~1/4 zero-capacity arcs, and duplicates are
    // kept: parallel arcs between the same pair with different costs are
    // exactly where a buggy adjacency pairing would shear.
    const long long cap = rng.next_below(4) == 0
                              ? 0
                              : 1 + static_cast<long long>(rng.next_below(8));
    const long long cost =
        rng.next_below(4) == 0 ? 0
                               : 1 + static_cast<long long>(rng.next_below(20));
    net.arcs.push_back({from, to, cap, cost});
  }
  return net;
}

/// Loads `net` into a fresh MinCostFlow (returns arc ids in order).
MinCostFlow load(const RandomNetwork& net, std::vector<int>* ids = nullptr) {
  MinCostFlow f(net.n);
  for (const RandomArc& a : net.arcs) {
    const int id = f.add_arc(a.from, a.to, a.cap, a.cost);
    if (ids) ids->push_back(id);
  }
  return f;
}

/// Checks that the per-arc flows in `f` form a feasible s-t flow with the
/// claimed value and cost.
void expect_feasible_flow(const RandomNetwork& net, MinCostFlow& f,
                          const std::vector<int>& ids, int s, int t,
                          const MinCostFlow::Result& r) {
  std::vector<long long> net_out(static_cast<std::size_t>(net.n), 0);
  long long total_cost = 0;
  for (std::size_t i = 0; i < net.arcs.size(); ++i) {
    const long long x = f.flow_on(ids[i]);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, net.arcs[i].cap);
    net_out[static_cast<std::size_t>(net.arcs[i].from)] += x;
    net_out[static_cast<std::size_t>(net.arcs[i].to)] -= x;
    total_cost += x * net.arcs[i].cost;
  }
  EXPECT_EQ(total_cost, r.cost);
  for (int v = 0; v < net.n; ++v) {
    if (v == s)
      EXPECT_EQ(net_out[static_cast<std::size_t>(v)], r.flow);
    else if (v == t)
      EXPECT_EQ(net_out[static_cast<std::size_t>(v)], -r.flow);
    else
      EXPECT_EQ(net_out[static_cast<std::size_t>(v)], 0) << "node " << v;
  }
}

TEST(MinCostFlowDiff, RandomNetworksMatchSspOracle) {
  Rng rng(20260807);
  const auto variants = scaling_variants();
  const int trials = 40 * ilp_iters();
  for (int trial = 0; trial < trials; ++trial) {
    const RandomNetwork net = random_network(rng);
    const int s = static_cast<int>(rng.next_below(net.n));
    int t = static_cast<int>(rng.next_below(net.n));
    if (t == s) t = (t + 1) % net.n;
    // Mix unlimited and limited solves (limit below, at, and above max
    // flow all occur across trials).
    const long long limit =
        rng.next_below(3) == 0
            ? std::numeric_limits<long long>::max()
            : static_cast<long long>(rng.next_below(12));

    MinCostFlow oracle = load(net);
    const auto want = oracle.solve(s, t, limit, ssp_engine());

    for (std::size_t v = 0; v < variants.size(); ++v) {
      std::vector<int> ids;
      MinCostFlow f = load(net, &ids);
      const auto got = f.solve(s, t, limit, variants[v]);
      ASSERT_EQ(got.flow, want.flow)
          << "trial " << trial << " variant " << v;
      ASSERT_EQ(got.cost, want.cost)
          << "trial " << trial << " variant " << v;
      expect_feasible_flow(net, f, ids, s, t, got);
    }
  }
}

TEST(MinCostFlowDiff, ParallelArcsAndZeroCosts) {
  // Three parallel arcs of equal capacity, distinct costs, plus a
  // zero-cost bypass: the optimum is unique, both engines must pick it.
  for (const auto& options : scaling_variants()) {
    MinCostFlow f(3);
    f.add_arc(0, 1, 2, 5);
    f.add_arc(0, 1, 2, 1);
    f.add_arc(0, 1, 2, 3);
    f.add_arc(1, 2, 5, 0);
    f.add_arc(0, 2, 1, 0);
    const auto r = f.solve(0, 2, 6, options);
    EXPECT_EQ(r.flow, 6);
    // bypass 1@0 + cheap 2@1 + mid 2@3 + expensive 1@5 = 13.
    EXPECT_EQ(r.cost, 13);
  }
}

TEST(MinCostFlowDiff, DisconnectedAndZeroLimit) {
  for (const auto& options : scaling_variants()) {
    MinCostFlow f(4);
    f.add_arc(0, 1, 3, 2);
    f.add_arc(2, 3, 3, 2);  // t unreachable from s
    auto r = f.solve(0, 3, 10, options);
    EXPECT_EQ(r.flow, 0);
    EXPECT_EQ(r.cost, 0);
    r = f.solve(0, 1, 0, options);  // zero limit
    EXPECT_EQ(r.flow, 0);
  }
}

TEST(MinCostFlowDiff, StatsAreDeterministicWorkCounters) {
  const RandomNetwork net = [] {
    Rng rng(7);
    return random_network(rng);
  }();
  MinCostFlow a = load(net);
  a.solve(0, 1, std::numeric_limits<long long>::max(), ssp_engine());
  const auto ssp1 = a.last_stats();
  MinCostFlow b = load(net);
  b.solve(0, 1, std::numeric_limits<long long>::max(), ssp_engine());
  EXPECT_EQ(ssp1.ssp_work, b.last_stats().ssp_work);
  EXPECT_EQ(ssp1.pushes, 0u);  // SSP does not touch scaling counters

  MinCostFlow c = load(net);
  c.solve(0, 1);
  const auto cs1 = c.last_stats();
  MinCostFlow d = load(net);
  d.solve(0, 1);
  EXPECT_EQ(cs1.pushes, d.last_stats().pushes);
  EXPECT_EQ(cs1.relabels, d.last_stats().relabels);
  EXPECT_EQ(cs1.ssp_work, 0u);  // and vice versa
}

TEST(DegreeCoverDiff, RandomInstancesBothEngines) {
  Rng rng(4242);
  const int trials = 30 * ilp_iters();
  int infeasible_seen = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(6));
    std::vector<DegreeCoverSolver::Edge> cand;
    for (int u = 0; u < n; ++u)
      for (int v = 0; v < n; ++v) {
        if (u == v || rng.next_below(100) >= 50) continue;
        cand.push_back(
            {u, v, static_cast<long long>(rng.next_below(10))});
        if (rng.next_below(4) == 0)  // parallel candidate, distinct cost
          cand.push_back(
              {u, v, static_cast<long long>(rng.next_below(10))});
      }
    std::vector<int> need_out(static_cast<std::size_t>(n)),
        need_in(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      // 0..2 with a fat tail of 3: dense needs make infeasible instances
      // common enough to exercise that path in both engines.
      need_out[static_cast<std::size_t>(v)] =
          static_cast<int>(rng.next_below(4));
      need_in[static_cast<std::size_t>(v)] =
          static_cast<int>(rng.next_below(4));
    }
    std::vector<std::pair<int, bool>> tweaks;  // (index, required?)
    for (std::size_t i = 0; i < cand.size(); ++i) {
      const auto roll = rng.next_below(10);
      if (roll == 0) tweaks.push_back({static_cast<int>(i), false});
      if (roll == 1) tweaks.push_back({static_cast<int>(i), true});
    }

    const auto run = [&](const MinCostFlowOptions& options) {
      DegreeCoverSolver solver(n, cand, need_out, need_in);
      solver.set_flow_options(options);
      for (const auto& [idx, required] : tweaks)
        required ? solver.require(idx) : solver.forbid(idx);
      return solver.solve();
    };
    const auto want = run(ssp_engine());
    if (!want.feasible) ++infeasible_seen;
    for (const auto& options : scaling_variants()) {
      const auto got = run(options);
      ASSERT_EQ(got.feasible, want.feasible) << "trial " << trial;
      if (want.feasible) {
        ASSERT_EQ(got.cost, want.cost) << "trial " << trial;
      }
    }
  }
  EXPECT_GT(infeasible_seen, 0) << "soak never hit an infeasible instance";
}

TEST(DegreeCoverDiff, AllSocsAugmentationMatches) {
  // End to end through augment_connectivity: every ITC'02 SoC's
  // degree-cover LPs (one per branch & bound node) solved by both engines
  // must produce the same augmentation cost and optimality verdict.
  for (const itc02::Soc& soc : itc02::socs()) {
    const Rsn rsn = itc02::generate_sib_rsn(soc);
    const DataflowGraph g = DataflowGraph::from_rsn(rsn);

    AugmentOptions ssp_opt;
    ssp_opt.mcf = ssp_engine();
    const AugmentResult want = augment_connectivity(g, ssp_opt);

    AugmentOptions cs_opt;  // default engine: cost scaling
    const AugmentResult got = augment_connectivity(g, cs_opt);

    EXPECT_EQ(got.cost, want.cost) << soc.name;
    EXPECT_EQ(got.optimal, want.optimal) << soc.name;
    EXPECT_EQ(got.added_edges.size(), want.added_edges.size()) << soc.name;
  }
}

}  // namespace
}  // namespace ftrsn
