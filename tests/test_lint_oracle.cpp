// Differential tests of the exact cone-analysis and incremental-lint
// machinery.  Two properties are exercised at random:
//
//  * ConeOracle backends agree: for hundreds of random control cones, the
//    pure-SAT backend, the pure-enumeration backend and a brute-force
//    reference (tristate_eval over every atom assignment) must return the
//    same const-0 / const-1 / satisfiable verdicts.
//
//  * AugmentLintCache tracks lint_augmentation: over randomized
//    add/remove/assign sequences on random DAGs, the incrementally
//    maintained diagnostics must equal the from-scratch analysis byte for
//    byte (rule, node, message, hint, witness).
//
// Iteration counts scale with the FTRSN_ORACLE_ITERS environment variable
// (a multiplier in percent; 100 = default counts) so CI can run deeper
// soaks without a recompile.  These tests are labeled `oracle` in ctest.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <vector>

#include "augment/augment.hpp"
#include "graph/dataflow.hpp"
#include "lint/augment_cache.hpp"
#include "lint/cone_oracle.hpp"
#include "lint/lint.hpp"
#include "util/common.hpp"

namespace ftrsn {
namespace {

using lint::ConeBackend;
using lint::ConeOracle;
using lint::Diagnostic;

std::size_t scaled(std::size_t base) {
  const char* env = std::getenv("FTRSN_ORACLE_ITERS");
  if (env == nullptr || *env == '\0') return base;
  const long pct = std::strtol(env, nullptr, 10);
  if (pct <= 0) return base;
  return base * static_cast<std::size_t>(pct) / 100;
}

// --- random cones -----------------------------------------------------------

/// A random expression over `num_atoms` port-select atoms: starts from the
/// atoms and the constants, then stacks random gates whose operands are
/// drawn from everything built so far (so sharing/reconvergence is common).
CtrlRef random_cone(CtrlPool& pool, Rng& rng, int num_atoms, int num_gates) {
  std::vector<CtrlRef> refs{kCtrlFalse, kCtrlTrue};
  for (int i = 0; i < num_atoms; ++i)
    refs.push_back(pool.port_select_input(static_cast<std::uint16_t>(i)));
  const auto any = [&] {
    return refs[static_cast<std::size_t>(rng.next_below(refs.size()))];
  };
  for (int i = 0; i < num_gates; ++i) {
    CtrlRef r = kCtrlInvalid;
    switch (rng.next_below(4)) {
      case 0: r = pool.mk_not(any()); break;
      case 1: r = pool.mk_and(any(), any()); break;
      case 2: r = pool.mk_or(any(), any()); break;
      case 3: r = pool.mk_maj3(any(), any(), any()); break;
    }
    refs.push_back(r);
  }
  return refs.back();
}

/// Brute force over every assignment of the cone's atoms via tristate_eval
/// with a fully forced atom map — the simplest possible reference.
bool brute_satisfiable(const CtrlPool& pool, CtrlRef root, bool value) {
  const std::vector<CtrlRef> cone = lint::cone_of(pool, root);
  std::vector<CtrlRef> atoms;
  for (CtrlRef r : cone)
    if (lint::is_ctrl_atom(pool.node(r).op)) atoms.push_back(r);
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << atoms.size()); ++m) {
    std::map<CtrlRef, int> forced;
    for (std::size_t i = 0; i < atoms.size(); ++i)
      forced[atoms[i]] = static_cast<int>((m >> i) & 1);
    if (lint::tristate_eval(pool, cone, root, forced) == (value ? 1 : 0))
      return true;
  }
  return false;
}

TEST(LintOracle, BackendsAgreeOnRandomCones) {
  Rng rng(0x5eed0001);
  const std::size_t iters = scaled(500);
  for (std::size_t it = 0; it < iters; ++it) {
    CtrlPool pool;
    const int num_atoms = static_cast<int>(rng.next_range(1, 10));
    const int num_gates = static_cast<int>(rng.next_range(1, 24));
    const CtrlRef root = random_cone(pool, rng, num_atoms, num_gates);

    ConeOracle tri(pool, ConeBackend::kTristate);
    ConeOracle sat(pool, ConeBackend::kSat);
    ConeOracle aut(pool, ConeBackend::kAuto, /*max_atoms=*/4);
    for (const bool value : {false, true}) {
      const bool expect = brute_satisfiable(pool, root, value);
      EXPECT_EQ(tri.satisfiable(root, value), expect)
          << "tristate disagrees with brute force (iter " << it << ")";
      EXPECT_EQ(sat.satisfiable(root, value), expect)
          << "SAT disagrees with brute force (iter " << it << ")";
      EXPECT_EQ(aut.satisfiable(root, value), expect)
          << "auto disagrees with brute force (iter " << it << ")";
    }
    // The derived const-0/const-1 verdicts agree too (and at most one of
    // them can hold unless the cone has no satisfying value at all).
    EXPECT_EQ(tri.provably_const(root, false), sat.provably_const(root, false));
    EXPECT_EQ(tri.provably_const(root, true), sat.provably_const(root, true));
  }
}

TEST(LintOracle, BackendsAgreeUnderForcedAtoms) {
  Rng rng(0x5eed0002);
  const std::size_t iters = scaled(200);
  for (std::size_t it = 0; it < iters; ++it) {
    CtrlPool pool;
    const int num_atoms = static_cast<int>(rng.next_range(2, 8));
    const CtrlRef root = random_cone(pool, rng, num_atoms,
                                     static_cast<int>(rng.next_range(1, 16)));
    // Force a random subset of the atoms, as the select-bootstrap deadlock
    // check does with a segment's own reset-time shadow bits.
    std::map<CtrlRef, int> forced;
    for (int i = 0; i < num_atoms; ++i)
      if (rng.next_bool())
        forced[pool.port_select_input(static_cast<std::uint16_t>(i))] =
            static_cast<int>(rng.next_below(2));

    ConeOracle tri(pool, ConeBackend::kTristate);
    ConeOracle sat(pool, ConeBackend::kSat);
    for (const bool value : {false, true})
      EXPECT_EQ(tri.satisfiable(root, value, forced),
                sat.satisfiable(root, value, forced))
          << "backends disagree under forced atoms (iter " << it << ")";
  }
}

// --- cone_of boundary -------------------------------------------------------

TEST(LintOracle, ConeOfExactLimitIsReturnedInFull) {
  CtrlPool pool;
  // AND(p0, NOT(p1)) plus the two atoms: exactly 4 cone nodes.
  const CtrlRef p0 = pool.port_select_input(0);
  const CtrlRef p1 = pool.port_select_input(1);
  const CtrlRef root = pool.mk_and(p0, pool.mk_not(p1));
  ASSERT_EQ(lint::cone_of(pool, root).size(), 4u);
  // A budget of exactly the cone size admits the cone; one less rejects it.
  EXPECT_EQ(lint::cone_of(pool, root, 4).size(), 4u);
  EXPECT_TRUE(lint::cone_of(pool, root, 3).empty());
  // A single-node cone at budget 1 is likewise admitted.
  EXPECT_EQ(lint::cone_of(pool, p0, 1).size(), 1u);
}

// --- incremental augmentation lint ------------------------------------------

/// A random base graph: mostly forward (acyclic) edges from a root chain,
/// occasionally a deliberate back edge so the cyclic-base path is covered.
DataflowGraph random_graph(Rng& rng, std::size_t n, bool allow_cyclic) {
  std::vector<DfEdge> edges;
  // A spine keeps every vertex reachable-ish and levels interesting.
  for (NodeId v = 0; v + 1 < n; ++v)
    edges.push_back({v, static_cast<NodeId>(v + 1)});
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j)
      if (rng.next_below(100) < 15) edges.push_back({i, j});
  if (allow_cyclic && rng.next_below(100) < 20 && n > 2)
    edges.push_back({static_cast<NodeId>(n - 2), 1});
  return DataflowGraph::from_edges(n, edges, {0},
                                   {static_cast<NodeId>(n - 1)});
}

bool same_diags(const std::vector<Diagnostic>& a,
                const std::vector<Diagnostic>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].rule != b[i].rule || a[i].severity != b[i].severity ||
        a[i].node != b[i].node || a[i].ctrl != b[i].ctrl ||
        a[i].message != b[i].message || a[i].hint != b[i].hint ||
        a[i].witness != b[i].witness)
      return false;
  return true;
}

TEST(LintOracle, AugmentCacheMatchesFromScratchLint) {
  Rng rng(0x5eed0003);
  const std::size_t sequences = scaled(100);
  for (std::size_t seq = 0; seq < sequences; ++seq) {
    const std::size_t n = static_cast<std::size_t>(rng.next_range(4, 12));
    const DataflowGraph g = random_graph(rng, n, /*allow_cyclic=*/true);
    std::vector<bool> allowed;
    if (rng.next_bool()) {
      allowed.resize(n);
      for (std::size_t v = 0; v < n; ++v) allowed[v] = rng.next_bool();
    }

    lint::AugmentLintCache cache(g, allowed);
    std::vector<DfEdge> mirror;
    const auto random_edge = [&] {
      // Mostly in-range (level-forward and not), sometimes out of range so
      // the aug-edge-range path is exercised.
      const NodeId hi = static_cast<NodeId>(n + (rng.next_below(8) == 0));
      return DfEdge{static_cast<NodeId>(rng.next_below(hi + 1)),
                    static_cast<NodeId>(rng.next_below(hi + 1))};
    };

    const std::size_t steps = static_cast<std::size_t>(rng.next_range(5, 20));
    for (std::size_t s = 0; s < steps; ++s) {
      switch (rng.next_below(3)) {
        case 0:
          cache.add_edge(random_edge());
          break;
        case 1: {
          if (cache.added().empty()) {
            cache.add_edge(random_edge());
            break;
          }
          const std::size_t i = static_cast<std::size_t>(
              rng.next_below(cache.added().size()));
          cache.remove_edge(cache.added()[i]);
          break;
        }
        case 2: {
          std::vector<DfEdge> target;
          const std::size_t m =
              static_cast<std::size_t>(rng.next_below(6));
          for (std::size_t i = 0; i < m; ++i) target.push_back(random_edge());
          cache.assign(target);
          break;
        }
      }
      mirror = cache.added();
      const std::vector<Diagnostic> incr = cache.diagnostics();
      const std::vector<Diagnostic> full =
          lint::lint_augmentation(g, mirror, allowed);
      ASSERT_TRUE(same_diags(incr, full))
          << "incremental lint diverges (sequence " << seq << ", step " << s
          << ")\nincremental: " << lint::to_json(incr)
          << "\nfrom-scratch: " << lint::to_json(full);
    }
  }
}

TEST(LintOracle, AugmentCacheCheckingOracleAccepts) {
  // The retained from-scratch path: with check_with_full_recompute the
  // cache re-runs lint_augmentation on every diagnostics() call and aborts
  // on any divergence — a smoke test that the flag itself works.
  Rng rng(0x5eed0004);
  const DataflowGraph g = random_graph(rng, 8, /*allow_cyclic=*/false);
  lint::AugmentLintCache cache(g, {}, /*check_with_full_recompute=*/true);
  cache.add_edge({0, 5});
  cache.add_edge({3, 3});   // same-level: exercises the cycle DFS
  cache.add_edge({6, 2});   // level-backward
  EXPECT_NO_THROW(cache.diagnostics());
  cache.remove_edge({3, 3});
  EXPECT_NO_THROW(cache.diagnostics());
}

// --- perf counters ----------------------------------------------------------

TEST(LintOracle, FiftyEdgeSearchDoesOneFullRecompute) {
  Rng rng(0x5eed0005);
  const std::size_t n = 30;
  const DataflowGraph g = random_graph(rng, n, /*allow_cyclic=*/false);

  lint::reset_lint_stats();
  lint::AugmentLintCache cache(g);
  for (int i = 0; i < 50; ++i) {
    const NodeId from = static_cast<NodeId>(rng.next_below(n));
    const NodeId to = static_cast<NodeId>(rng.next_below(n));
    cache.add_edge({from, to});
    cache.same_level_cycle();  // what the engines poll per candidate flip
  }
  cache.diagnostics();
  const lint::LintStats& s = lint::lint_stats();
  EXPECT_LE(s.full_recomputes, 1u)
      << "a 50-edge search must not fall back to from-scratch lint";
  EXPECT_GE(s.incremental_updates, 50u);
}

TEST(LintOracle, AugmentEngineUsesIncrementalCycleChecks) {
  // End to end: the flow engine's candidate search maintains one
  // AugmentLintCache (one full recompute) and feeds every edge flip
  // through it, rather than re-linting from scratch per probe.
  Rng rng(0x5eed0006);
  const DataflowGraph g = random_graph(rng, 16, /*allow_cyclic=*/false);
  lint::reset_lint_stats();
  const AugmentResult r = augment_connectivity(g);
  const lint::LintStats& s = lint::lint_stats();
  EXPECT_FALSE(r.added_edges.empty());
  EXPECT_LE(s.full_recomputes, 2u);  // engine cache + final audit
}

}  // namespace
}  // namespace ftrsn
